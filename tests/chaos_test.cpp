// Chaos layer tests: the scenario DSL and its deterministic compilation,
// the nemesis executor, a short live thread-backend smoke (the suite the
// TSan CI job runs), and the live TCP crash/recovery regression — a
// 3-acceptor cluster with nodes SIGKILL'd mid-workload and restarted over
// the same data dirs, asserting bumped incarnations, bounded replay and
// exactly-once convergence.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "chaos/kv_chaos_cluster.hpp"
#include "chaos/nemesis.hpp"
#include "chaos/scenario.hpp"
#include "chaos/workload.hpp"

#ifndef MCPAXOS_SCENARIO_DIR
#define MCPAXOS_SCENARIO_DIR "tests/scenarios"
#endif

namespace mcp {
namespace {

namespace fs = std::filesystem;

std::string scenario_path(const std::string& name) {
  return std::string(MCPAXOS_SCENARIO_DIR) + "/" + name + ".chaos";
}

std::string fresh_data_root(const std::string& tag) {
  const fs::path root = fs::temp_directory_path() / ("mcpaxos_chaos_" + tag);
  fs::remove_all(root);
  return root.string();
}

chaos::RoleTable sample_roles() {
  chaos::RoleTable roles;
  roles.coordinators = {0, 1};
  roles.acceptors = {2, 3, 4};
  roles.servers = {5, 6};
  return roles;
}

// --- scenario DSL -------------------------------------------------------------

TEST(ChaosScenario, ParsesTheCheckedInScenarioFiles) {
  for (const char* name : {"smoke", "crash_restart", "partition", "mixed",
                           "group_kill"}) {
    const chaos::Scenario sc = chaos::parse_scenario_file(scenario_path(name));
    EXPECT_EQ(sc.name, name);
    EXPECT_GT(sc.duration_ms, 0);
    EXPECT_FALSE(sc.events.empty());
    // Every checked-in scenario must compile against the harness shape.
    const auto schedule = chaos::compile(sc, sample_roles(), /*seed=*/1);
    EXPECT_EQ(schedule.size(), sc.events.size());
  }
}

TEST(ChaosScenario, ParseRejectsMalformedInput) {
  EXPECT_THROW(chaos::parse_scenario_text("duration-ms 100\nat 5 heal\n"),
               std::runtime_error);  // missing name
  EXPECT_THROW(chaos::parse_scenario_text("name x\nat 5 heal\n"),
               std::runtime_error);  // missing duration
  EXPECT_THROW(
      chaos::parse_scenario_text("name x\nduration-ms 100\nat 5 explode node.1\n"),
      std::runtime_error);  // unknown verb
  EXPECT_THROW(
      chaos::parse_scenario_text("name x\nduration-ms 100\nat 5 heal junk\n"),
      std::runtime_error);  // trailing junk
  EXPECT_THROW(
      chaos::parse_scenario_text("name x\nduration-ms 100\nat 500 heal\n"),
      std::runtime_error);  // event past duration
  EXPECT_THROW(
      chaos::parse_scenario_text(
          "name x\nduration-ms 100\nat 5 drop node.1 node.2 1.5\n"),
      std::runtime_error);  // probability out of range
  EXPECT_THROW(chaos::parse_scenario_text("name x\nduration-ms 100\nat 5 kill\n"),
               std::runtime_error);  // missing target
}

TEST(ChaosScenario, CommentsAndSymbolicTargetsResolve) {
  const chaos::Scenario sc = chaos::parse_scenario_text(
      "# header comment\n"
      "name t\n"
      "duration-ms 1000\n"
      "at 100 kill acceptor.1   # inline comment\n"
      "at 50 partition coordinator.0 server.1\n"
      "at 200 slow node.6 25\n");
  const auto schedule = chaos::compile(sc, sample_roles(), /*seed=*/9);
  ASSERT_EQ(schedule.size(), 3u);
  // Sorted by time, symbolic targets mapped through the role table.
  EXPECT_EQ(schedule[0].kind, chaos::ActionKind::kPartition);
  EXPECT_EQ(schedule[0].a, 0);
  EXPECT_EQ(schedule[0].b, 6);
  EXPECT_EQ(schedule[1].kind, chaos::ActionKind::kKill);
  EXPECT_EQ(schedule[1].a, 3);
  EXPECT_EQ(schedule[2].kind, chaos::ActionKind::kSlow);
  EXPECT_EQ(schedule[2].a, 6);
  EXPECT_EQ(schedule[2].delay_ms, 25);
}

TEST(ChaosScenario, CompileIsDeterministicPerSeed) {
  const chaos::Scenario sc = chaos::parse_scenario_text(
      "name any\n"
      "duration-ms 1000\n"
      "at 100 kill any-acceptor\n"
      "at 200 restart any-acceptor\n"
      "at 300 slow any-server 10\n"
      "at 400 drop any-coordinator any-acceptor 0.5\n"
      "at 500 kill any-server\n");
  const auto roles = sample_roles();
  const std::string a = chaos::schedule_string(chaos::compile(sc, roles, 42));
  const std::string b = chaos::schedule_string(chaos::compile(sc, roles, 42));
  EXPECT_EQ(a, b);

  // A different seed must be able to produce a different resolution (42
  // vs 43 differ on this scenario; both are valid schedules either way).
  bool any_differs = false;
  for (std::uint64_t seed = 43; seed < 48 && !any_differs; ++seed) {
    any_differs = chaos::schedule_string(chaos::compile(sc, roles, seed)) != a;
  }
  EXPECT_TRUE(any_differs);
}

TEST(ChaosScenario, OutOfRangeTargetsThrow) {
  const auto roles = sample_roles();
  const chaos::Scenario bad_index = chaos::parse_scenario_text(
      "name t\nduration-ms 100\nat 5 kill acceptor.9\n");
  EXPECT_THROW(chaos::compile(bad_index, roles, 1), std::runtime_error);
  const chaos::Scenario bad_role = chaos::parse_scenario_text(
      "name t\nduration-ms 100\nat 5 kill client.0\n");
  EXPECT_THROW(chaos::compile(bad_role, roles, 1), std::runtime_error);
}

// --- nemesis ------------------------------------------------------------------

TEST(ChaosNemesis, ExecutesScheduleInOrderAndLogsIt) {
  const chaos::Scenario sc = chaos::parse_scenario_text(
      "name quick\n"
      "duration-ms 60\n"
      "at 10 kill any-acceptor\n"
      "at 20 partition any-coordinator any-server\n"
      "at 30 slow any-server 5\n"
      "at 40 heal\n"
      "at 50 restart any-acceptor\n");
  const auto schedule = chaos::compile(sc, sample_roles(), 7);

  auto run_once = [&](std::vector<std::string>* order) {
    chaos::Nemesis::Hooks hooks;
    hooks.kill = [order](sim::NodeId id) {
      order->push_back("kill " + std::to_string(id));
    };
    hooks.restart = [order](sim::NodeId id) {
      order->push_back("restart " + std::to_string(id));
    };
    hooks.partition = [order](sim::NodeId a, sim::NodeId b) {
      order->push_back("partition " + std::to_string(a) + " " + std::to_string(b));
    };
    hooks.heal = [order] { order->push_back("heal"); };
    hooks.slow = [order](sim::NodeId id, sim::Time ms) {
      order->push_back("slow " + std::to_string(id) + " " + std::to_string(ms));
    };
    chaos::Nemesis nemesis(schedule, hooks);
    nemesis.run();
    EXPECT_EQ(nemesis.executed_count(), schedule.size());
    EXPECT_EQ(nemesis.executed_log(), chaos::schedule_string(schedule));
  };

  std::vector<std::string> first;
  std::vector<std::string> second;
  run_once(&first);
  run_once(&second);
  ASSERT_EQ(first.size(), schedule.size());
  // Same schedule, same hooks, same order — the nemesis adds no randomness.
  EXPECT_EQ(first, second);
}

// --- live smoke (thread backend; the suite the TSan CI job runs) --------------

TEST(ChaosSmoke, ThreadClusterSurvivesTheSmokeScenario) {
  chaos::ChaosKvOptions options;
  options.backend = runtime::Backend::kThread;
  options.shape.coordinators = 2;
  options.shape.acceptors = 3;
  options.shape.servers = 2;
  options.shape.f = 1;
  options.shape.e = 1;
  options.data_root = fresh_data_root("smoke_thread");
  options.seed = 11;
  options.snapshot_every = 16;

  chaos::ChaosKvCluster cluster(options);
  cluster.start();
  const chaos::Scenario sc = chaos::parse_scenario_file(scenario_path("smoke"));
  chaos::Nemesis nemesis(chaos::compile(sc, cluster.roles(), options.seed),
                         cluster.hooks());

  chaos::WorkloadOptions wopt;
  wopt.clients = 3;
  wopt.ops_per_client = 15;
  wopt.op_delay = std::chrono::milliseconds(sc.duration_ms / wopt.ops_per_client);
  const chaos::WorkloadReport report =
      chaos::run_chaos_workload(cluster, nemesis, wopt);
  cluster.stop();

  EXPECT_EQ(nemesis.executed_count(), nemesis.schedule().size());
  EXPECT_GE(cluster.kill_count(), 1);
  EXPECT_GE(cluster.restart_count(), 1);
  EXPECT_GT(report.acked, 0);
  EXPECT_TRUE(report.converged) << "lost=" << report.lost_writes;
  EXPECT_EQ(report.lost_writes, 0);
  EXPECT_EQ(report.dup_applies, 0);
  EXPECT_EQ(report.stale_reads, 0);
  fs::remove_all(options.data_root);
}

// --- multi-group isolation (thread backend; runs under TSan too) --------------

/// Keys owned by `group` under the cluster's hash partition, in generation
/// order — the per-group pinned workloads below.
std::vector<std::string> keys_of_group(std::uint32_t group, std::uint32_t groups,
                                       int count) {
  const auto partition = service::KeyPartition::hashed(groups);
  std::vector<std::string> keys;
  for (int i = 0; keys.size() < static_cast<std::size_t>(count); ++i) {
    std::string key = "gk" + std::to_string(i);
    if (partition.group_of(key) == group) keys.push_back(std::move(key));
  }
  return keys;
}

/// The group_kill scenario live: group 1's coordinator dies mid-workload.
/// Group 0 has its own coordinator and its own consensus instance, so a
/// client pinned to group-0 keys must complete every op on a tight attempt
/// budget while group 1 stalls; after the restart, everything converges
/// exactly-once in both groups.
TEST(ChaosSmoke, GroupKillLeavesOtherGroupUnaffected) {
  chaos::ChaosKvOptions options;
  options.backend = runtime::Backend::kThread;
  options.shape.groups = 2;
  options.shape.coordinators = 1;  // per group: coordinator.G is group G's
  options.shape.acceptors = 3;
  options.shape.servers = 2;
  options.shape.f = 1;
  options.data_root = fresh_data_root("group_kill");
  options.seed = 31;
  options.snapshot_every = 16;

  chaos::ChaosKvCluster cluster(options);
  ASSERT_EQ(cluster.group_count(), 2);
  ASSERT_EQ(cluster.coordinator_node(1), 1);
  cluster.start();

  const chaos::Scenario sc = chaos::parse_scenario_file(scenario_path("group_kill"));
  chaos::Nemesis nemesis(chaos::compile(sc, cluster.roles(), options.seed),
                         cluster.hooks());

  constexpr int kOps = 20;
  const auto g0_keys = keys_of_group(0, 2, kOps);
  const auto g1_keys = keys_of_group(1, 2, kOps);
  const auto op_delay = std::chrono::milliseconds(sc.duration_ms / kOps);

  struct Outcome {
    int acked = 0;
    int failed = 0;
  };
  auto run_pinned = [&](int index, const std::vector<std::string>& keys,
                        int max_attempts, Outcome* out) {
    service::Client::Options co;
    co.client_id = 0x2000 + static_cast<std::uint64_t>(index);
    co.servers = cluster.server_ids();
    co.attempt_timeout = std::chrono::milliseconds(250);
    co.max_attempts = max_attempts;
    service::Client client(cluster.make_channel(cluster.client_endpoint_id(index)),
                           co);
    for (std::size_t j = 0; j < keys.size(); ++j) {
      if (j > 0) std::this_thread::sleep_for(op_delay);
      const auto put = client.put(keys[j], "v" + std::to_string(j));
      put.ok ? ++out->acked : ++out->failed;
    }
  };

  nemesis.start();
  Outcome g0;
  Outcome g1;
  std::thread t0([&] { run_pinned(0, g0_keys, /*max_attempts=*/12, &g0); });
  // Group 1's writes may stall the whole dead window (~2s); give them the
  // attempt budget to ride it out.
  std::thread t1([&] { run_pinned(1, g1_keys, /*max_attempts=*/60, &g1); });
  t0.join();
  t1.join();
  nemesis.join();

  // The isolation claim: the healthy group never noticed.
  EXPECT_EQ(g0.acked, kOps) << "group 0 throughput was affected by group 1's "
                               "coordinator dying";
  EXPECT_EQ(g0.failed, 0);
  EXPECT_EQ(g1.acked, kOps);
  EXPECT_GE(cluster.kill_count(), 1);
  EXPECT_GE(cluster.restart_count(), 1);

  // Settle and check convergence + exactly-once per group.
  cluster.faults().heal();
  cluster.revive_all();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  const auto servers = cluster.server_ids();
  bool converged = false;
  while (!converged && std::chrono::steady_clock::now() < deadline) {
    converged = true;
    const auto want = static_cast<std::size_t>(2 * kOps);
    for (const sim::NodeId id : servers) {
      if (cluster.applied_count(id) < want) converged = false;
    }
    if (!converged) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(converged) << "servers never applied all acked writes";
  EXPECT_EQ(cluster.store_data_snapshot(servers[0]),
            cluster.store_data_snapshot(servers[1]));
  for (const sim::NodeId id : servers) {
    std::size_t learned = 0;
    for (std::uint32_t g = 0; g < 2; ++g) {
      const auto history = cluster.learned_snapshot(id, g);
      EXPECT_EQ(history.size(), static_cast<std::size_t>(kOps))
          << "server " << id << " group " << g;
      learned += history.size();
    }
    EXPECT_EQ(cluster.applied_count(id), learned) << "duplicate application";
  }

  cluster.stop();
  fs::remove_all(options.data_root);
}

// --- live crash/recovery regression (TCP backend) -----------------------------

TEST(LiveRecoveryTcp, KilledNodesRejoinWithBumpedIncarnationExactlyOnce) {
  chaos::ChaosKvOptions options;
  options.backend = runtime::Backend::kTcp;
  options.shape.coordinators = 2;
  options.shape.acceptors = 3;
  options.shape.servers = 2;
  options.shape.f = 1;
  options.shape.e = 1;
  options.data_root = fresh_data_root("recovery_tcp");
  options.seed = 23;
  options.snapshot_every = 16;

  chaos::ChaosKvCluster cluster(options);
  cluster.start();

  const sim::NodeId acceptor = cluster.acceptor_ids()[1];
  const sim::NodeId server = cluster.server_ids()[0];
  ASSERT_EQ(cluster.incarnation(acceptor), 0);

  // Hand-built schedule: SIGKILL an acceptor and a server mid-workload,
  // restart each over its same data dir while traffic keeps flowing.
  std::vector<chaos::Action> schedule;
  schedule.push_back({200, chaos::ActionKind::kKill, acceptor});
  schedule.push_back({800, chaos::ActionKind::kRestart, acceptor});
  schedule.push_back({1100, chaos::ActionKind::kKill, server});
  schedule.push_back({1800, chaos::ActionKind::kRestart, server});
  chaos::Nemesis nemesis(schedule, cluster.hooks());

  chaos::WorkloadOptions wopt;
  wopt.clients = 3;
  wopt.ops_per_client = 25;
  const chaos::WorkloadReport report =
      chaos::run_chaos_workload(cluster, nemesis, wopt);

  // The restarted nodes recovered instead of starting fresh…
  EXPECT_GE(cluster.incarnation(acceptor), 1);
  EXPECT_GE(cluster.incarnation(server), 1);
  const auto [replayed, loaded_snapshot] = cluster.recovery_stats(acceptor);
  EXPECT_TRUE(replayed > 0 || loaded_snapshot)
      << "acceptor restart found no durable state to replay";
  // …with bounded replay: at most one snapshot-interval of log suffix.
  EXPECT_LE(replayed, options.snapshot_every);
  EXPECT_EQ(cluster.kill_count(), 2);
  EXPECT_GE(cluster.restart_count(), 2);
  EXPECT_LT(cluster.max_restart_ms(), 5000.0);

  // …and the service stayed exactly-once: everything acked survived, no
  // command was learned or applied twice, replicas converged.
  EXPECT_GT(report.acked, 0);
  EXPECT_TRUE(report.converged) << "lost=" << report.lost_writes;
  EXPECT_EQ(report.lost_writes, 0);
  EXPECT_EQ(report.dup_applies, 0);
  EXPECT_EQ(report.stale_reads, 0);

  cluster.stop();
  fs::remove_all(options.data_root);
}

}  // namespace
}  // namespace mcp
