// Integration tests for Fast Paxos (§2.2): 2-step fast path, collisions
// under concurrent proposals, and all three recovery mechanisms.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fast/fast_paxos.hpp"
#include "sim/simulation.hpp"

namespace mcp::fast {
namespace {

using cstruct::make_write;
using sim::NetworkConfig;
using sim::NodeId;
using sim::Simulation;
using sim::Time;

struct Cluster {
  std::unique_ptr<Simulation> sim;
  Config config;
  std::vector<Proposer*> proposers;
  std::vector<Coordinator*> coordinators;
  std::vector<Acceptor*> acceptors;
  std::vector<Learner*> learners;
};

struct ClusterSpec {
  int proposers = 1;
  int coordinators = 1;
  int acceptors = 5;
  int learners = 2;
  int f = 1;  // with n=5: classic quorum 4... use f=1,e=1 so both quorums = 4
  int e = 1;
  RecoveryMode recovery = RecoveryMode::kCoordinated;
  std::uint64_t seed = 1;
  NetworkConfig net{};
  bool liveness = true;
  Time disk_latency = 0;
};

Cluster build(const ClusterSpec& spec) {
  Cluster c;
  c.sim = std::make_unique<Simulation>(spec.seed, spec.net);
  NodeId next = 0;
  for (int i = 0; i < spec.coordinators; ++i) c.config.coordinators.push_back(next++);
  for (int i = 0; i < spec.acceptors; ++i) c.config.acceptors.push_back(next++);
  for (int i = 0; i < spec.learners; ++i) c.config.learners.push_back(next++);
  for (int i = 0; i < spec.proposers; ++i) c.config.proposers.push_back(next++);
  c.config.f = spec.f;
  c.config.e = spec.e;
  c.config.recovery = spec.recovery;
  c.config.enable_liveness = spec.liveness;
  c.config.disk_latency = spec.disk_latency;

  for (int i = 0; i < spec.coordinators; ++i) {
    c.coordinators.push_back(&c.sim->make_process<Coordinator>(c.config));
  }
  for (int i = 0; i < spec.acceptors; ++i) {
    c.acceptors.push_back(&c.sim->make_process<Acceptor>(c.config));
  }
  for (int i = 0; i < spec.learners; ++i) {
    c.learners.push_back(&c.sim->make_process<Learner>(c.config));
  }
  for (int i = 0; i < spec.proposers; ++i) {
    c.proposers.push_back(&c.sim->make_process<Proposer>(
        c.config, make_write(static_cast<std::uint64_t>(100 + i), "k",
                             "v" + std::to_string(i))));
  }
  return c;
}

bool all_learned(const Cluster& c) {
  for (const Learner* l : c.learners) {
    if (!l->learned()) return false;
  }
  return true;
}

void expect_consistent(const Cluster& c) {
  for (const Learner* l : c.learners) {
    ASSERT_TRUE(l->learned());
    EXPECT_EQ(l->value()->id, c.learners.front()->value()->id);
  }
}

TEST(FastPaxos, RejectsInvalidQuorumConfig) {
  ClusterSpec spec;
  spec.f = 2;
  spec.e = 2;  // 5 > 2·2+2 fails
  EXPECT_THROW(build(spec), std::invalid_argument);
}

TEST(FastPaxos, DecidesWithoutContention) {
  ClusterSpec spec;
  spec.liveness = false;
  Cluster c = build(spec);
  c.sim->run_to_completion();
  EXPECT_TRUE(all_learned(c));
  expect_consistent(c);
  EXPECT_EQ(c.learners[0]->value()->id, 100u);
}

TEST(FastPaxos, SteadyStateLatencyIsTwoSteps) {
  // Phase 1 + Any message pre-executed: a proposal at t reaches the
  // acceptors at t+1 and the learners at t+2 — the headline claim of §2.2.
  ClusterSpec spec;
  spec.liveness = false;
  spec.net.min_delay = 1;
  spec.net.max_delay = 1;
  Cluster c = build(spec);
  const Time kProposeAt = 10;
  c.proposers[0]->start_delay = kProposeAt;
  c.sim->run_to_completion();
  ASSERT_TRUE(all_learned(c));
  EXPECT_EQ(c.learners[0]->learned_at(), kProposeAt + 2);
}

TEST(FastPaxos, CollisionDetectedUnderSimultaneousProposals) {
  // Two proposals racing over a jittery network split the acceptors'
  // votes in some seeds; scan a few seeds and require that collisions do
  // happen and are always resolved consistently.
  int collided_runs = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    ClusterSpec spec;
    spec.seed = seed;
    spec.proposers = 2;
    spec.net.min_delay = 1;
    spec.net.max_delay = 30;
    Cluster c = build(spec);
    const bool ok = c.sim->run_until([&] { return all_learned(c); }, 2'000'000);
    ASSERT_TRUE(ok) << "seed " << seed;
    expect_consistent(c);
    if (c.sim->metrics().counter("fast.collisions_detected") > 0) ++collided_runs;
  }
  EXPECT_GT(collided_runs, 0) << "collision machinery never exercised";
}

struct RecoveryParam {
  RecoveryMode mode;
  std::uint64_t seed;
};

class FastPaxosRecovery : public testing::TestWithParam<RecoveryParam> {};

TEST_P(FastPaxosRecovery, ContentionResolvedConsistently) {
  ClusterSpec spec;
  spec.recovery = GetParam().mode;
  spec.seed = GetParam().seed;
  spec.proposers = 3;
  spec.net.min_delay = 1;
  spec.net.max_delay = 25;
  Cluster c = build(spec);
  const bool ok = c.sim->run_until([&] { return all_learned(c); }, 5'000'000);
  ASSERT_TRUE(ok);
  expect_consistent(c);
  const auto id = c.learners[0]->value()->id;
  EXPECT_GE(id, 100u);
  EXPECT_LE(id, 102u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, FastPaxosRecovery,
    testing::Values(RecoveryParam{RecoveryMode::kRestart, 1},
                    RecoveryParam{RecoveryMode::kRestart, 2},
                    RecoveryParam{RecoveryMode::kRestart, 3},
                    RecoveryParam{RecoveryMode::kCoordinated, 4},
                    RecoveryParam{RecoveryMode::kCoordinated, 5},
                    RecoveryParam{RecoveryMode::kCoordinated, 6},
                    RecoveryParam{RecoveryMode::kUncoordinated, 7},
                    RecoveryParam{RecoveryMode::kUncoordinated, 8},
                    RecoveryParam{RecoveryMode::kUncoordinated, 9}),
    [](const testing::TestParamInfo<RecoveryParam>& info) {
      const char* mode = info.param.mode == RecoveryMode::kRestart        ? "restart"
                         : info.param.mode == RecoveryMode::kCoordinated ? "coordinated"
                                                                          : "uncoordinated";
      return std::string(mode) + "_seed" + std::to_string(info.param.seed);
    });

TEST(FastPaxos, CollisionsCostAcceptorDiskWrites) {
  // §4.2's key observation: every value accepted in a fast round is a disk
  // write, even those discarded by a collision. Compare writes per decision
  // in a contended run vs an uncontended one.
  auto writes_per_decision = [](int proposers, std::uint64_t seed) {
    ClusterSpec spec;
    spec.seed = seed;
    spec.proposers = proposers;
    spec.net.min_delay = 1;
    spec.net.max_delay = 30;
    Cluster c = build(spec);
    c.sim->run_until(
        [&] {
          for (const Learner* l : c.learners) {
            if (!l->learned()) return false;
          }
          return true;
        },
        2'000'000);
    return c.sim->metrics().counter_prefix_sum("acceptor.");
  };
  // Aggregate across seeds to smooth out schedule luck.
  std::int64_t contended = 0, clean = 0;
  for (std::uint64_t s = 1; s <= 10; ++s) {
    contended += writes_per_decision(3, s);
    clean += writes_per_decision(1, s + 100);
  }
  EXPECT_GT(contended, clean);
}

TEST(FastPaxos, LeaderlessFastPathSurvivesCoordinatorCrashAfterSetup) {
  // Once the Any message is out, the coordinator is off the critical path:
  // crashing it must not prevent the decision (contrast with Classic).
  ClusterSpec spec;
  spec.liveness = false;  // freeze round structure
  spec.net.min_delay = 1;
  spec.net.max_delay = 1;
  Cluster c = build(spec);
  c.proposers[0]->start_delay = 10;
  c.sim->crash_at(5, c.coordinators[0]->id());  // after phase 1 done (t≤4)
  c.sim->run_to_completion();
  ASSERT_TRUE(all_learned(c));
  EXPECT_EQ(c.learners[0]->learned_at(), 12);
}

TEST(FastPaxos, AcceptorRecoveryRestoresVote) {
  ClusterSpec spec;
  spec.seed = 5;
  spec.net.min_delay = 1;
  spec.net.max_delay = 10;
  Cluster c = build(spec);
  Acceptor* victim = c.acceptors[0];
  c.sim->crash_at(50, victim->id());
  c.sim->recover_at(300, victim->id());
  const bool ok = c.sim->run_until([&] { return all_learned(c); }, 2'000'000);
  ASSERT_TRUE(ok);
  expect_consistent(c);
}

}  // namespace
}  // namespace mcp::fast
