// The service-layer suites: client protocol codec, session semantics
// (at-most-once under duplicated requests and lost replies), batching, and
// the acceptance test — a 3-acceptor live TCP cluster started from a
// cluster file serving >= 1000 client operations through service::Client
// with induced retries, every replica converging to the same KVStore.
//
// Suite naming: KvService* suites run real threads/sockets and are picked
// up by the ThreadSanitizer CI job next to the transport/runtime suites;
// the KvAcceptance scale test stays out of that job (see its comment).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "genpaxos/engine.hpp"
#include "runtime/cluster_file.hpp"
#include "runtime/kv_cluster.hpp"
#include "runtime/node.hpp"
#include "service/client.hpp"
#include "service/frontend.hpp"
#include "service/messages.hpp"
#include "service/sim_client.hpp"
#include "sim/simulation.hpp"
#include "transport/frame.hpp"
#include "transport/tcp_transport.hpp"

namespace mcp {
namespace {

using runtime::Backend;

// --- wire codec ---------------------------------------------------------------

TEST(ServiceMessages, RequestRoundTrip) {
  service::MsgClientRequest req;
  req.client_id = 0xDEADBEEFCAFEull;
  req.seq = 42;
  req.op = cstruct::OpType::kRead;
  req.key = std::string("key\0with-nul", 12);
  req.value = "";
  const wire::Envelope env = wire::make_envelope(req);
  wire::Reader r(env.body);
  const auto back = service::MsgClientRequest::decode(r);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(back.client_id, req.client_id);
  EXPECT_EQ(back.seq, req.seq);
  EXPECT_EQ(back.op, req.op);
  EXPECT_EQ(back.key, req.key);
  EXPECT_EQ(back.value, req.value);
}

TEST(ServiceMessages, ReplyRoundTripAndValidation) {
  service::MsgClientReply reply;
  reply.client_id = 7;
  reply.seq = 9;
  reply.status = service::ReplyStatus::kRedirect;
  reply.found = true;
  reply.value = "v";
  reply.redirect = 12;
  const wire::Envelope env = wire::make_envelope(reply);
  wire::Reader r(env.body);
  const auto back = service::MsgClientReply::decode(r);
  EXPECT_EQ(back.status, service::ReplyStatus::kRedirect);
  EXPECT_EQ(back.redirect, 12);
  EXPECT_TRUE(back.found);

  // A status byte outside the enum is malformed, not silently accepted.
  wire::Writer w;
  w.put_varint(1);
  w.put_varint(1);
  w.put_u8(9);
  wire::put_flag(w, false);
  w.put_bytes("");
  w.put_signed(-1);
  wire::Reader bad(w.data());
  EXPECT_THROW(service::MsgClientReply::decode(bad), std::invalid_argument);
}

TEST(ServiceMessages, SessionCommandIdIsDeterministicAndSpread) {
  EXPECT_EQ(service::session_command_id(10, 1), service::session_command_id(10, 1));
  EXPECT_NE(service::session_command_id(10, 1), service::session_command_id(10, 2));
  EXPECT_NE(service::session_command_id(10, 1), service::session_command_id(11, 1));
}

TEST(ClusterFile, ParsesRolesAndRejectsGarbage) {
  const auto members = runtime::parse_cluster_text(
      "# comment\n"
      "node 0 127.0.0.1 1900 coordinator\n"
      "node 1 127.0.0.1 1901 acceptor\n"
      "node 2 127.0.0.1 0 server  # ephemeral placeholder\n");
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[2].role, "server");
  EXPECT_EQ(runtime::members_with_role(members, "server").size(), 1u);

  // The shared role derivation: a server id lands in servers AND in both
  // the learner and proposer lists.
  const runtime::ClusterRoles roles = runtime::roles_of(members);
  EXPECT_EQ(roles.coordinators, std::vector<sim::NodeId>{0});
  EXPECT_EQ(roles.acceptors, std::vector<sim::NodeId>{1});
  EXPECT_EQ(roles.servers, std::vector<sim::NodeId>{2});
  EXPECT_EQ(roles.learners, std::vector<sim::NodeId>{2});
  EXPECT_EQ(roles.proposers, std::vector<sim::NodeId>{2});

  // Port 0 parses (the in-process tests patch ephemeral ports) but the
  // CLI entry points must refuse to dial it.
  EXPECT_THROW(runtime::require_dialable_ports(members), std::runtime_error);
  EXPECT_NO_THROW(runtime::require_dialable_ports(
      runtime::members_with_role(members, "coordinator")));

  EXPECT_THROW(runtime::parse_cluster_text(""), std::runtime_error);
  EXPECT_THROW(runtime::parse_cluster_text("peer 0 h 1 acceptor\n"), std::runtime_error);
  EXPECT_THROW(runtime::parse_cluster_text("node 0 h 1 warlock\n"), std::runtime_error);
  EXPECT_THROW(runtime::parse_cluster_text("node 0 h 1 acceptor\nnode 0 h 2 learner\n"),
               std::runtime_error);
}

// --- simulated service --------------------------------------------------------

struct SimService {
  static const cstruct::KeyConflict kConflicts;
  sim::Simulation sim;
  std::unique_ptr<paxos::RoundPolicy> policy;
  genpaxos::Config<cstruct::History> config;
  std::vector<service::Frontend*> frontends;

  SimService(std::uint64_t seed, sim::NetworkConfig net, int servers,
             service::Frontend::Options fopt = {},
             service::Frontend::Options fopt1 = {})
      : sim(seed, net) {
    const std::vector<sim::NodeId> coords{0};
    config.acceptors = {1, 2, 3};
    for (int i = 0; i < servers; ++i) {
      config.learners.push_back(4 + i);
      config.proposers.push_back(4 + i);
    }
    config.f = 1;
    config.bottom = cstruct::History(&kConflicts);
    policy = paxos::PatternPolicy::always_single(coords);
    config.policy = policy.get();
    sim.make_process<genpaxos::GenCoordinator<cstruct::History>>(config);
    for (int i = 0; i < 3; ++i) {
      sim.make_process<genpaxos::GenAcceptor<cstruct::History>>(config);
    }
    for (int i = 0; i < servers; ++i) {
      frontends.push_back(&sim.make_process<service::Frontend>(
          config, i == 0 ? fopt : fopt1));
    }
  }
};

const cstruct::KeyConflict SimService::kConflicts{};

TEST(ServiceSessionSim, LossyNetworkAppliesExactlyOnce) {
  sim::NetworkConfig net;
  net.min_delay = 1;
  net.max_delay = 5;
  net.loss_probability = 0.05;       // injected loss: client retries fire
  net.duplication_probability = 0.02;  // and the network duplicates requests
  service::Frontend::Options fopt;
  fopt.batch_size = 4;
  fopt.batch_delay = 3;
  SimService s(/*seed=*/7, net, /*servers=*/2, fopt, fopt);

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kOps = 25;
  std::vector<service::SimClient*> clients;
  for (std::size_t i = 0; i < kClients; ++i) {
    service::SimClient::Options copt;
    copt.client_id = 100 + i;
    copt.server = (i % 2) ? 5 : 4;
    copt.ops = kOps;
    clients.push_back(&s.sim.make_process<service::SimClient>(copt));
  }
  const std::size_t total = kClients * kOps;
  const bool done = s.sim.run_until(
      [&] {
        for (const auto* c : clients) {
          if (!c->done()) return false;
        }
        for (const auto* f : s.frontends) {
          if (f->applied() < total) return false;
        }
        return true;
      },
      5'000'000);
  ASSERT_TRUE(done);

  // Exactly-once: every op is exactly one command in the learned c-struct,
  // despite retries and network duplication...
  std::uint64_t retries = 0;
  for (const auto* c : clients) retries += c->retries();
  EXPECT_GT(retries, 0u) << "loss injection produced no retries; weak test";
  for (const auto* f : s.frontends) {
    EXPECT_EQ(f->learned().size(), total);
    EXPECT_EQ(f->applied(), total);
  }
  // ...and the replicas converge to the same store.
  EXPECT_EQ(s.frontends[0]->store(), s.frontends[1]->store());
  const std::uint64_t dups = s.frontends[0]->duplicates_dropped() +
                             s.frontends[1]->duplicates_dropped();
  EXPECT_GT(dups, 0u) << "no duplicate request ever reached a frontend";
}

TEST(ServiceSessionSim, StandbyRedirectsClientsToServingFrontend) {
  sim::NetworkConfig net;
  service::Frontend::Options standby;
  standby.redirect_to = 5;  // frontend 4 bounces everyone to 5
  SimService s(/*seed=*/3, net, /*servers=*/2, standby);

  service::SimClient::Options copt;
  copt.client_id = 77;
  copt.server = 4;  // starts at the standby
  copt.ops = 5;
  auto& client = s.sim.make_process<service::SimClient>(copt);
  const bool done = s.sim.run_until(
      [&] { return client.done() && s.frontends[1]->applied() >= 5; }, 1'000'000);
  ASSERT_TRUE(done);
  EXPECT_GE(client.redirects(), 1u);
  EXPECT_EQ(s.frontends[1]->learned().size(), 5u);
  EXPECT_EQ(s.frontends[0]->store(), s.frontends[1]->store());
}

/// A process that spams forged acceptor votes at a learner/frontend: the
/// live-cluster shape of this is a handshake-less client connection (or a
/// peer lying in its handshake) injecting Msg2b — LearnerCore must only
/// count votes from configured acceptors.
struct ForgedVoter final : public sim::Process {
  sim::NodeId target;
  cstruct::History payload;

  ForgedVoter(sim::NodeId target, cstruct::History payload)
      : target(target), payload(std::move(payload)) {
    genpaxos::register_wire_messages(decoders(), cstruct::History(payload.relation()));
  }
  std::string role() const override { return "rogue"; }
  void on_start() override {
    // A classic-ballot vote for a value nobody proposed, repeated so it
    // would pair with any real acceptor's vote if it were counted.
    const paxos::Ballot b(1, 0, 0, paxos::RoundType::kSingleCoord);
    for (int i = 0; i < 4; ++i) {
      send(target, genpaxos::Msg2b<cstruct::History>{
                       b, std::make_shared<const cstruct::History>(payload)});
    }
  }
  void on_message(sim::NodeId, const std::any&) override {}
};

TEST(ServiceSessionSim, ForgedVotesFromNonAcceptorsAreNotCounted) {
  sim::NetworkConfig net;
  SimService s(/*seed=*/5, net, /*servers=*/1);

  cstruct::History forged(&SimService::kConflicts);
  forged.append(cstruct::make_write(999999, "stolen", "gotcha"));
  s.sim.make_process<ForgedVoter>(/*target=*/4, forged);

  service::SimClient::Options copt;
  copt.client_id = 50;
  copt.server = 4;
  copt.ops = 5;
  copt.read_fraction = 0;
  auto& client = s.sim.make_process<service::SimClient>(copt);
  ASSERT_TRUE(s.sim.run_until(
      [&] { return client.done() && s.frontends[0]->applied() >= 5; }, 1'000'000));

  // The forged command never enters the learned structure or the store,
  // and the rejection is observable.
  EXPECT_EQ(s.frontends[0]->learned().size(), 5u);
  EXPECT_EQ(s.frontends[0]->store().data().count("stolen"), 0u);
  EXPECT_GT(s.sim.metrics().counter("gen.2b_from_non_acceptor"), 0);
}

TEST(ServiceSessionSim, BatchingGroupsConcurrentCommands) {
  sim::NetworkConfig net;
  net.min_delay = 2;
  net.max_delay = 4;
  service::Frontend::Options fopt;
  fopt.batch_size = 64;   // flush on the window, not the size cap
  fopt.batch_delay = 10;
  SimService s(/*seed=*/11, net, /*servers=*/1, fopt);

  constexpr std::size_t kClients = 6;
  constexpr std::size_t kOps = 10;
  std::vector<service::SimClient*> clients;
  for (std::size_t i = 0; i < kClients; ++i) {
    service::SimClient::Options copt;
    copt.client_id = 200 + i;
    copt.server = 4;
    copt.ops = kOps;
    clients.push_back(&s.sim.make_process<service::SimClient>(copt));
  }
  const bool done = s.sim.run_until(
      [&] { return s.frontends[0]->applied() >= kClients * kOps; }, 5'000'000);
  ASSERT_TRUE(done);
  const auto& f = *s.frontends[0];
  EXPECT_EQ(f.learned().size(), kClients * kOps);
  // Concurrent clients share flush windows: far fewer batches than ops.
  EXPECT_LT(f.batches_flushed(), kClients * kOps / 2)
      << "batching never grouped concurrent commands";
}

// --- loss/duplication-injecting channel for the live backends -----------------

/// Wraps a real channel and misbehaves on purpose: every request is sent
/// twice (duplicate injection) and every `drop_nth`-th reply is swallowed
/// (forcing the client's timeout retransmission — the "induced retries").
class LossyChannel final : public service::ClientChannel {
 public:
  LossyChannel(std::unique_ptr<service::ClientChannel> inner, int drop_nth)
      : inner_(std::move(inner)), drop_nth_(drop_nth) {}

  bool connect(sim::NodeId server) override { return inner_->connect(server); }
  bool send(std::string_view payload) override {
    const bool first = inner_->send(payload);
    inner_->send(payload);  // the duplicate the session layer must absorb
    ++sends_;
    return first;
  }
  std::optional<std::string> recv(std::chrono::milliseconds timeout) override {
    auto reply = inner_->recv(timeout);
    if (reply && drop_nth_ > 0 && ++replies_ % drop_nth_ == 0) {
      ++dropped_;
      return std::nullopt;  // swallowed: the client will retransmit
    }
    return reply;
  }
  void close() override { inner_->close(); }

  int dropped() const { return dropped_; }

 private:
  std::unique_ptr<service::ClientChannel> inner_;
  int drop_nth_;
  int sends_ = 0;
  int replies_ = 0;
  int dropped_ = 0;
};

/// Satellite check: duplicate MsgClientRequest retries (same client id +
/// seq) under injected loss apply exactly once and the retried op's reply
/// matches the original outcome.
void run_duplicate_retry_dedup(Backend backend) {
  runtime::KvShape shape;
  shape.frontend.batch_size = 8;
  shape.frontend.batch_delay = 2;
  runtime::ClusterOptions options;
  options.backend = backend;
  options.tick = std::chrono::microseconds(200);
  runtime::KvServiceCluster cluster(shape, options);
  cluster.start();

  constexpr int kOps = 24;
  auto* lossy = new LossyChannel(cluster.make_channel(cluster.client_endpoint_id(0)),
                                 /*drop_nth=*/4);
  service::Client::Options copt;
  copt.client_id = 0xABCDEF;
  copt.servers = cluster.server_ids();
  copt.attempt_timeout = std::chrono::milliseconds(400);
  service::Client client(std::unique_ptr<service::ClientChannel>(lossy), copt);

  for (int i = 0; i < kOps; ++i) {
    const std::string key = "dup" + std::to_string(i);
    const auto put = client.put(key, "v" + std::to_string(i));
    ASSERT_TRUE(put.ok) << "put " << i << " got no reply";
    const auto got = client.get(key);
    ASSERT_TRUE(got.ok);
    EXPECT_TRUE(got.found);
    EXPECT_EQ(got.value, "v" + std::to_string(i)) << "retried op diverged";
  }
  EXPECT_GT(lossy->dropped(), 0) << "no replies dropped; retries not induced";
  EXPECT_GT(client.retries(), 0u);

  // Exactly-once application: 2 ops per iteration, each one command in the
  // learned structure and one application per replica, duplicates dropped
  // at the sessions (every request was sent at least twice). The client
  // only proves ONE frontend replied per op; the other converges via 2b
  // retransmission, so give it the retry window before asserting.
  const std::size_t total = 2 * kOps;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  std::uint64_t dups = 0;
  for (int i = 0; i < 2; ++i) {
    auto& f = cluster.frontend(i);
    auto& node = cluster.server_node(i);
    while (node.call([&] { return f.applied(); }) < total &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(node.call([&] { return f.learned().size(); }), total);
    EXPECT_EQ(node.call([&] { return f.applied(); }), total);
    dups += node.call([&] { return f.duplicates_dropped(); });
  }
  EXPECT_GT(dups, 0u);
  EXPECT_EQ(cluster.store_snapshot(0), cluster.store_snapshot(1));
  cluster.stop();
}

TEST(KvServiceThread, DuplicateRetriesApplyExactlyOnce) {
  run_duplicate_retry_dedup(Backend::kThread);
}

TEST(KvServiceTcp, DuplicateRetriesApplyExactlyOnce) {
  run_duplicate_retry_dedup(Backend::kTcp);
}

/// The sharding acceptance criterion, live: a 2-group TCP cluster (each
/// group its own coordinator node, acceptor nodes hosting one process per
/// group) serves keys hash-partitioned across the groups through ONE
/// frontend per server, with induced retries. Replicas of every group
/// converge and the shared session table keeps application exactly-once.
TEST(KvServiceTcp, MultiGroupPartitionedKeysConvergeExactlyOnce) {
  runtime::KvShape shape;
  shape.groups = 2;
  shape.frontend.batch_size = 8;
  shape.frontend.batch_delay = 2;
  runtime::ClusterOptions options;
  options.backend = Backend::kTcp;
  options.tick = std::chrono::microseconds(200);
  runtime::KvServiceCluster cluster(shape, options);
  ASSERT_EQ(cluster.group_count(), 2);
  cluster.start();

  constexpr int kOps = 32;
  const auto partition = service::KeyPartition::hashed(2);
  auto* lossy = new LossyChannel(cluster.make_channel(cluster.client_endpoint_id(0)),
                                 /*drop_nth=*/4);
  service::Client::Options copt;
  copt.client_id = 0x6A0;
  copt.servers = cluster.server_ids();
  copt.attempt_timeout = std::chrono::milliseconds(400);
  service::Client client(std::unique_ptr<service::ClientChannel>(lossy), copt);

  // Writes land in whichever group owns the key; the workload must span
  // both, or the test silently degenerates to the unsharded case.
  std::size_t per_group[2] = {0, 0};
  for (int i = 0; i < kOps; ++i) {
    const std::string key = "shard" + std::to_string(i);
    per_group[partition.group_of(key)] += 2;  // the put and the get
    const auto put = client.put(key, "v" + std::to_string(i));
    ASSERT_TRUE(put.ok) << "put " << i << " got no reply";
    const auto got = client.get(key);
    ASSERT_TRUE(got.ok);
    EXPECT_TRUE(got.found);
    EXPECT_EQ(got.value, "v" + std::to_string(i));
  }
  ASSERT_GT(per_group[0], 0u) << "workload never touched group 0";
  ASSERT_GT(per_group[1], 0u) << "workload never touched group 1";
  EXPECT_GT(lossy->dropped(), 0) << "no replies dropped; retries not induced";

  // Exactly-once across the shards: every op is one command in exactly one
  // group's history, applied once per replica; retries died at the shared
  // session table. Both frontends learn both groups' streams over the same
  // acceptor connections — the envelope group id is the only discriminator.
  const std::size_t total = 2 * kOps;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  std::uint64_t dups = 0;
  for (int i = 0; i < 2; ++i) {
    auto& f = cluster.frontend(i);
    auto& node = cluster.server_node(i);
    while (node.call([&] { return f.applied(); }) < total &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(node.call([&] { return f.applied(); }), total);
    for (std::uint32_t g = 0; g < 2; ++g) {
      EXPECT_EQ(cluster.learned_snapshot(i, g).size(), per_group[g])
          << "server " << i << " group " << g;
    }
    dups += node.call([&] { return f.duplicates_dropped(); });
  }
  EXPECT_GT(dups, 0u);
  // Replicas of every group converge: the merged stores are identical and
  // hold every written key.
  const auto data0 = cluster.store_data_snapshot(0);
  EXPECT_EQ(data0, cluster.store_data_snapshot(1));
  EXPECT_EQ(data0.size(), static_cast<std::size_t>(kOps));
  cluster.stop();
}

TEST(KvServiceThread, ConcurrentClientsConvergeAndBatch) {
  runtime::KvShape shape;
  shape.frontend.batch_size = 32;
  shape.frontend.batch_delay = 5;
  runtime::ClusterOptions options;
  options.backend = Backend::kThread;
  options.tick = std::chrono::microseconds(200);
  runtime::KvServiceCluster cluster(shape, options);
  cluster.start();

  constexpr int kClients = 4;
  constexpr int kOps = 30;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      service::Client::Options copt;
      copt.client_id = static_cast<std::uint64_t>(900 + t);
      copt.servers = cluster.server_ids();
      copt.attempt_timeout = std::chrono::milliseconds(500);
      service::Client client(cluster.make_channel(cluster.client_endpoint_id(t)), copt);
      for (int i = 0; i < kOps; ++i) {
        const auto r =
            client.put("c" + std::to_string(t) + "-" + std::to_string(i), "x");
        if (r.ok) ok.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients * kOps);

  // All replicas drained (the learner keeps retransmitting; wait briefly).
  const std::size_t total = static_cast<std::size_t>(kClients) * kOps;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (int i = 0; i < 2; ++i) {
    auto& f = cluster.frontend(i);
    auto& node = cluster.server_node(i);
    while (node.call([&] { return f.applied(); }) < total &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(node.call([&] { return f.applied(); }), total);
  }
  EXPECT_EQ(cluster.store_snapshot(0), cluster.store_snapshot(1));

  // Batching grouped concurrent commands: fewer flushes than commands.
  std::uint64_t batches = 0;
  for (int i = 0; i < 2; ++i) {
    auto& f = cluster.frontend(i);
    batches += cluster.server_node(i).call([&] { return f.batches_flushed(); });
  }
  EXPECT_LT(batches, total);
  cluster.stop();
}

/// Live counterpart of the forged-vote sim test, at the dispatch altitude:
/// a handshake-less TCP connection may deliver client-allowed tags only —
/// a protocol message (here a 1a that would advance the acceptor's round)
/// is dropped by runtime::Node before it reaches the process.
TEST(KvServiceTcp, ClientConnectionsCannotInjectProtocolMessages) {
  static const cstruct::KeyConflict conflicts;
  genpaxos::Config<cstruct::History> config;
  config.acceptors = {0};
  auto policy = paxos::PatternPolicy::always_single({1});
  config.policy = policy.get();
  config.f = 0;
  config.bottom = cstruct::History(&conflicts);

  transport::TcpConfig tcp_config;
  tcp_config.self = 0;
  transport::TcpTransport transport(tcp_config);
  const auto port = transport.bind_and_listen();
  runtime::NodeOptions node_options;
  node_options.id = 0;
  node_options.tick = std::chrono::microseconds(200);
  runtime::Node node(node_options, transport);
  auto& acceptor =
      node.make_process<genpaxos::GenAcceptor<cstruct::History>>(config);
  node.start();

  // Raw connection, no handshake, carrying a forged 1a for round 5.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  const genpaxos::Msg1a<cstruct::History> forged{policy->make_ballot(5, 1, 0)};
  const std::string payload = wire::make_envelope(forged).encode();
  const std::string framed = transport::frame(payload);
  ASSERT_EQ(::send(fd, framed.data(), framed.size(), 0),
            static_cast<ssize_t>(framed.size()));

  // The rejection is observable; the acceptor never saw the 1a.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (node.call([&] { return node.metrics().counter("net.client_rejected"); }) == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(node.call([&] { return node.metrics().counter("net.client_rejected"); }), 1);
  EXPECT_TRUE(node.call([&] { return acceptor.rnd().is_zero(); }))
      << "forged 1a reached the acceptor through a client connection";

  ::close(fd);
  node.stop();
}

// --- the acceptance test ------------------------------------------------------

/// One in-process live node built the way mcpaxos_node builds one from a
/// cluster file: a TcpTransport per member (ephemeral ports patched into
/// every peer table) hosting the member's role process.
struct FileClusterNode {
  std::unique_ptr<transport::TcpTransport> transport;
  std::unique_ptr<runtime::Node> node;
  service::Frontend* frontend = nullptr;
};

// Suite name deliberately outside the TSan job's KvService regex: this is
// the *scale* acceptance criterion (1000 ops, timeout-driven retries), and
// under TSan's ~15x slowdown the 400 ms attempt timeouts turn into retry
// storms that run for tens of minutes. The concurrency shapes it uses are
// exactly the ones the KvService suites above run under TSan.
TEST(KvAcceptance, ClusterFileThousandOpsOverTcp) {
  // The cluster file of the acceptance criterion: 1 coordinator, 3
  // acceptors, 2 servers. Port 0 = ephemeral, patched after binding.
  const std::string cluster_text =
      "# acceptance cluster\n"
      "node 0 127.0.0.1 0 coordinator\n"
      "node 1 127.0.0.1 0 acceptor\n"
      "node 2 127.0.0.1 0 acceptor\n"
      "node 3 127.0.0.1 0 acceptor\n"
      "node 4 127.0.0.1 0 server\n"
      "node 5 127.0.0.1 0 server\n";
  const auto members = runtime::parse_cluster_text(cluster_text, "acceptance");

  // The same role → membership derivation mcpaxos_node ships (servers in
  // both learners and proposers), from the same shared helper.
  static const cstruct::KeyConflict conflicts;
  const runtime::ClusterRoles roles = runtime::roles_of(members);
  const std::vector<sim::NodeId>& servers = roles.servers;
  genpaxos::Config<cstruct::History> config;
  config.acceptors = roles.acceptors;
  config.learners = roles.learners;
  config.proposers = roles.proposers;
  auto policy = paxos::PatternPolicy::always_single(roles.coordinators);
  config.policy = policy.get();
  config.f = 1;
  config.bottom = cstruct::History(&conflicts);

  // Bind every listener, then hand everyone the patched peer table.
  std::vector<FileClusterNode> nodes(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    transport::TcpConfig tcp;
    tcp.self = members[i].id;
    tcp.listen_host = members[i].host;
    tcp.listen_port = members[i].port;  // 0: ephemeral
    nodes[i].transport = std::make_unique<transport::TcpTransport>(tcp);
    nodes[i].transport->bind_and_listen();
  }
  std::map<sim::NodeId, service::ServerAddr> server_addrs;
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = 0; j < members.size(); ++j) {
      if (i == j) continue;
      nodes[i].transport->set_peer(
          members[j].id, {members[j].host, nodes[j].transport->listen_port()});
    }
    runtime::NodeOptions node_options;
    node_options.id = members[i].id;
    node_options.tick = std::chrono::microseconds(200);
    nodes[i].node =
        std::make_unique<runtime::Node>(node_options, *nodes[i].transport);
    if (members[i].role == "coordinator") {
      nodes[i].node->make_process<genpaxos::GenCoordinator<cstruct::History>>(config);
    } else if (members[i].role == "acceptor") {
      nodes[i].node->make_process<genpaxos::GenAcceptor<cstruct::History>>(config);
    } else {
      service::Frontend::Options fopt;
      fopt.batch_size = 32;
      fopt.batch_delay = 3;
      nodes[i].frontend =
          &nodes[i].node->make_process<service::Frontend>(config, fopt);
      server_addrs[members[i].id] = {members[i].host,
                                     nodes[i].transport->listen_port()};
    }
  }
  for (auto& n : nodes) n.node->start();

  // >= 1000 operations from 4 concurrent sessions, every request sent in
  // duplicate and every 8th reply dropped (induced retries) — split across
  // both servers.
  constexpr int kClients = 4;
  constexpr int kOps = 250;
  std::atomic<int> ok{0};
  std::atomic<int> dropped{0};
  std::vector<std::thread> client_threads;
  for (int t = 0; t < kClients; ++t) {
    client_threads.emplace_back([&, t] {
      auto* lossy = new LossyChannel(
          std::make_unique<service::TcpClientChannel>(server_addrs),
          /*drop_nth=*/8);
      service::Client::Options copt;
      copt.client_id = static_cast<std::uint64_t>(5000 + t);
      copt.servers = {servers[static_cast<std::size_t>(t) % servers.size()],
                      servers[(static_cast<std::size_t>(t) + 1) % servers.size()]};
      copt.attempt_timeout = std::chrono::milliseconds(400);
      copt.max_attempts = 50;
      service::Client client(std::unique_ptr<service::ClientChannel>(lossy), copt);
      for (int i = 0; i < kOps; ++i) {
        const std::string key = "c" + std::to_string(t) + "-" + std::to_string(i);
        const bool read = i % 5 == 4;
        const auto r = read ? client.get("c" + std::to_string(t) + "-" +
                                         std::to_string(i - 1))
                            : client.put(key, "v" + std::to_string(i));
        if (r.ok) ok.fetch_add(1);
        if (read && r.ok) {
          EXPECT_TRUE(r.found);
          EXPECT_EQ(r.value, "v" + std::to_string(i - 1));
        }
      }
      dropped.fetch_add(lossy->dropped());
    });
  }
  for (auto& t : client_threads) t.join();
  EXPECT_EQ(ok.load(), kClients * kOps);
  EXPECT_GE(ok.load(), 1000);
  EXPECT_GT(dropped.load(), 0) << "no induced retries";

  // Every op is exactly one command; both replicas converge.
  const std::size_t total = static_cast<std::size_t>(kClients) * kOps;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (auto& n : nodes) {
    if (n.frontend == nullptr) continue;
    while (n.node->call([&] { return n.frontend->applied(); }) < total &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(n.node->call([&] { return n.frontend->learned().size(); }), total);
    EXPECT_EQ(n.node->call([&] { return n.frontend->applied(); }), total);
    EXPECT_GT(n.node->call([&] { return n.frontend->duplicates_dropped(); }), 0u);
  }
  const auto store4 =
      nodes[4].node->call([&] { return nodes[4].frontend->store(); });
  const auto store5 =
      nodes[5].node->call([&] { return nodes[5].frontend->store(); });
  EXPECT_EQ(store4, store5);
  EXPECT_EQ(store4.applied_count(), total);

  for (auto& n : nodes) n.node->stop();
}

}  // namespace
}  // namespace mcp
