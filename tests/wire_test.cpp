// Round-trip and robustness tests for the binary wire codec, plus the
// message-size observation that motivates delta-encoding of c-structs
// (Lamport's "dealing with large c-structs" discussion referenced in §3.2).

#include <gtest/gtest.h>

#include "paxos/wire.hpp"
#include "util/rng.hpp"

namespace mcp::wire {
namespace {

using cstruct::CSet;
using cstruct::History;
using cstruct::make_read;
using cstruct::make_write;
using cstruct::SingleValue;
using paxos::Ballot;
using paxos::RoundType;

const cstruct::KeyConflict kKeyRel;

TEST(Wire, VarintRoundTrip) {
  Writer w;
  const std::uint64_t values[] = {0, 1, 127, 128, 300, 1u << 20, ~0ull};
  for (auto v : values) w.put_varint(v);
  Reader r(w.data());
  for (auto v : values) EXPECT_EQ(r.get_varint(), v);
  EXPECT_TRUE(r.at_end());
}

TEST(Wire, SignedZigZagRoundTrip) {
  Writer w;
  const std::int64_t values[] = {0, -1, 1, -64, 64, -1000000, 1000000,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (auto v : values) w.put_signed(v);
  Reader r(w.data());
  for (auto v : values) EXPECT_EQ(r.get_signed(), v);
}

TEST(Wire, SmallValuesAreCompact) {
  Writer w;
  w.put_varint(5);
  EXPECT_EQ(w.size(), 1u);  // single byte for small ints
  w.put_signed(-2);
  EXPECT_EQ(w.size(), 2u);
}

TEST(Wire, TruncatedInputThrows) {
  Writer w;
  w.put_bytes("hello");
  const std::string data = w.data();
  Reader r(std::string_view(data).substr(0, 3));
  EXPECT_THROW(r.get_bytes(), std::invalid_argument);
  Reader r2("");
  EXPECT_THROW(r2.get_varint(), std::invalid_argument);
  EXPECT_THROW(r2.get_u8(), std::invalid_argument);
}

TEST(Wire, AdversarialLengthCannotWrapPastEnd) {
  // Regression: get_bytes used to compare `pos_ + len > size`, which wraps
  // for huge varint lengths and would read far out of bounds.
  for (const std::uint64_t evil : {~std::uint64_t{0}, ~std::uint64_t{0} - 1,
                                   std::uint64_t{1} << 63}) {
    Writer w;
    w.put_varint(evil);
    w.put_bytes("short");
    Reader r(w.data());
    // Consume the length-prefix as if it prefixed a byte string: the read
    // must throw, never index past the buffer.
    Reader evil_reader(w.data());
    EXPECT_THROW(evil_reader.get_bytes(), std::invalid_argument);
    (void)r;
  }
  // A length that exactly wraps pos_ + len to a small value.
  Writer w;
  w.put_varint(~0ull);  // len = 2^64 - 1; with pos_ > 0 the old sum wrapped
  const std::string data = "x" + w.take();
  Reader r(data);
  (void)r.get_u8();  // pos_ = 1; old check: 1 + (2^64-1) == 0 → "fits"
  EXPECT_THROW(r.get_bytes(), std::invalid_argument);
}

TEST(Wire, AdversarialElementCountRejectedBeforeAllocation) {
  // A tiny message claiming 2^61 elements must be rejected up front
  // (std::invalid_argument), not via a multi-GB vector reserve.
  Writer w;
  w.put_varint(std::uint64_t{1} << 61);
  Reader r(w.data());
  EXPECT_THROW(get_commands(r), std::invalid_argument);

  Writer w2;
  w2.put_varint(std::uint64_t{1} << 61);
  Reader r2(w2.data());
  EXPECT_THROW(get_node_ids(r2), std::invalid_argument);
}

TEST(Wire, BallotRoundTrip) {
  for (const Ballot& b :
       {Ballot::zero(), Ballot{7, 2, 1, RoundType::kFast},
        Ballot{1'000'000, 31, 4, RoundType::kMultiCoord}}) {
    Writer w;
    put_ballot(w, b);
    Reader r(w.data());
    EXPECT_EQ(get_ballot(r), b);
    EXPECT_TRUE(r.at_end());
  }
}

TEST(Wire, BadRoundTypeRejected) {
  Writer w;
  w.put_signed(1);
  w.put_signed(0);
  w.put_signed(0);
  w.put_u8(99);
  Reader r(w.data());
  EXPECT_THROW(get_ballot(r), std::invalid_argument);
}

TEST(Wire, CommandRoundTripWithBinaryPayload) {
  cstruct::Command c = make_write(42, std::string("k\0ey", 4), std::string("\xff\x00v", 3), 7);
  Writer w;
  put_command(w, c);
  Reader r(w.data());
  const auto back = get_command(r);
  EXPECT_EQ(back.id, 42u);
  EXPECT_EQ(back.proposer, 7);
  EXPECT_EQ(back.key, c.key);
  EXPECT_EQ(back.value, c.value);
}

TEST(Wire, CStructRoundTrips) {
  History h(&kKeyRel);
  h.append(make_write(1, "a", "x"));
  h.append(make_read(2, "a"));
  h.append(make_write(3, "b", "y"));
  Writer w;
  put_cstruct(w, h);
  Reader r(w.data());
  EXPECT_EQ(get_cstruct(r, History(&kKeyRel)), h);

  CSet s;
  s.append(make_write(4, "k", "v"));
  Writer w2;
  put_cstruct(w2, s);
  Reader r2(w2.data());
  EXPECT_EQ(get_cstruct(r2, CSet{}), s);

  Writer w3;
  put_cstruct(w3, SingleValue{});
  put_cstruct(w3, SingleValue{make_write(5, "k", "v")});
  Reader r3(w3.data());
  EXPECT_EQ(get_cstruct(r3, SingleValue{}), SingleValue{});
  EXPECT_EQ(get_cstruct(r3, SingleValue{}), SingleValue{make_write(5, "k", "v")});
}

TEST(Wire, FuzzRoundTripRandomHistories) {
  util::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    History h(&kKeyRel);
    const int len = static_cast<int>(rng.uniform(0, 20));
    for (int i = 0; i < len; ++i) {
      h.append(make_write(static_cast<std::uint64_t>(rng.uniform(1, 30)),
                          "k" + std::to_string(rng.uniform(0, 3)),
                          std::string(static_cast<std::size_t>(rng.uniform(0, 8)), 'x')));
    }
    Writer w;
    put_cstruct(w, h);
    Reader r(w.data());
    EXPECT_EQ(get_cstruct(r, History(&kKeyRel)), h);
    EXPECT_TRUE(r.at_end());
  }
}

TEST(Wire, FullCStruct2aGrowsLinearly) {
  // The engine retransmits the whole cval in each 2a (faithful to the
  // paper's message structure). This documents the resulting wire cost —
  // the reason real deployments send deltas (future-work hook).
  History h(&kKeyRel);
  std::size_t last = wire_size(h);
  for (std::uint64_t i = 1; i <= 64; ++i) {
    h.append(make_write(i, "key" + std::to_string(i), "value"));
    const std::size_t now = wire_size(h);
    EXPECT_GT(now, last);
    last = now;
  }
  EXPECT_GT(last, 64u * 10);  // at least ~10 bytes per carried command
}

}  // namespace
}  // namespace mcp::wire
