// Tests for the Appendix-A safety auditor, and auditor-instrumented runs of
// the generalized engine over all three c-struct sets (History, CSet,
// SingleValue). The positive sweeps double as end-to-end safety proofs for
// the engine: any violated invariant (conservative rounds, Prop. 1 chosen
// compatibility, the safe-at extension invariant) is reported by name.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "genpaxos/auditor.hpp"
#include "genpaxos/engine.hpp"
#include "smr/kv.hpp"

namespace mcp::genpaxos {
namespace {

using cstruct::CSet;
using cstruct::History;
using cstruct::make_write;
using cstruct::SingleValue;
using paxos::Ballot;
using paxos::PatternPolicy;
using paxos::RoundType;
using sim::NodeId;
using sim::Simulation;
using sim::Time;

const cstruct::KeyConflict kKeyRel;

// --- direct (simulation-free) auditor checks -----------------------------------

struct AuditorFixture {
  std::unique_ptr<paxos::RoundPolicy> policy = PatternPolicy::multi_then_single({0, 1, 2});
  Config<History> config;
  Simulation sim{1};
  SafetyAuditor<History>* auditor = nullptr;

  AuditorFixture() {
    config.acceptors = {3, 4, 5, 6, 7};
    config.learners = {8};
    config.policy = policy.get();
    config.f = 2;
    config.e = 1;
    config.bottom = History(&kKeyRel);
    auditor = &sim.make_process<SafetyAuditor<History>>(config);
  }

  History h(std::vector<std::uint64_t> ids, const std::string& key = "hot") {
    History out(&kKeyRel);
    for (auto id : ids) out.append(make_write(id, key, "v"));
    return out;
  }
};

TEST(SafetyAuditor, CleanStreamAccepted) {
  AuditorFixture fx;
  const Ballot b{1, 0, 0, RoundType::kMultiCoord};
  for (NodeId a : fx.config.acceptors) {
    fx.auditor->record(a, b, fx.h({1}));
    fx.auditor->record(a, b, fx.h({1, 2}));  // growing re-vote
  }
  EXPECT_TRUE(fx.auditor->ok()) << fx.auditor->violations().front();
  ASSERT_EQ(fx.auditor->chosen().size(), 1u);
  EXPECT_EQ(fx.auditor->chosen().at(b).size(), 2u);
}

TEST(SafetyAuditor, FlagsNonMonotonicRevote) {
  AuditorFixture fx;
  const Ballot b{1, 0, 0, RoundType::kMultiCoord};
  fx.auditor->record(3, b, fx.h({1, 2}));
  fx.auditor->record(3, b, fx.h({3}));  // unrelated value, same round
  ASSERT_FALSE(fx.auditor->ok());
  EXPECT_NE(fx.auditor->violations().front().find("neither extends"), std::string::npos);
}

TEST(SafetyAuditor, FlagsNonConservativeClassicRound) {
  AuditorFixture fx;
  const Ballot b{1, 0, 0, RoundType::kMultiCoord};
  fx.auditor->record(3, b, fx.h({1, 2}));
  fx.auditor->record(4, b, fx.h({2, 1}));  // conflicting order at same classic round
  ASSERT_FALSE(fx.auditor->ok());
  EXPECT_NE(fx.auditor->violations().front().find("not conservative"), std::string::npos);
}

TEST(SafetyAuditor, AllowsIncompatibleVotesInFastRounds) {
  AuditorFixture fx;
  const Ballot b{1, 0, 0, RoundType::kFast};
  fx.auditor->record(3, b, fx.h({1, 2}));
  fx.auditor->record(4, b, fx.h({2, 1}));  // fast rounds may diverge
  EXPECT_TRUE(fx.auditor->ok());
}

TEST(SafetyAuditor, FlagsVoteIgnoringChosenValue) {
  AuditorFixture fx;
  const Ballot b1{1, 0, 0, RoundType::kMultiCoord};
  const Ballot b2{2, 0, 0, RoundType::kSingleCoord};
  // {1} is chosen at b1 by a full quorum (n−f = 3).
  fx.auditor->record(3, b1, fx.h({1}));
  fx.auditor->record(4, b1, fx.h({1}));
  fx.auditor->record(5, b1, fx.h({1}));
  ASSERT_TRUE(fx.auditor->ok());
  // A vote at b2 that does not extend {1} violates the safe-at invariant.
  fx.auditor->record(6, b2, fx.h({9}));
  ASSERT_FALSE(fx.auditor->ok());
  EXPECT_NE(fx.auditor->violations().front().find("chosen"), std::string::npos);
}

TEST(SafetyAuditor, FlagsLateChosenDiscoveryAgainstEarlierHighVote) {
  AuditorFixture fx;
  const Ballot b1{1, 0, 0, RoundType::kMultiCoord};
  const Ballot b2{2, 0, 0, RoundType::kSingleCoord};
  // Higher-round vote arrives first (message reordering at the auditor)...
  fx.auditor->record(6, b2, fx.h({9}));
  EXPECT_TRUE(fx.auditor->ok());
  // ...then round b1 turns out to have chosen {1}: the backward check fires.
  fx.auditor->record(3, b1, fx.h({1}));
  fx.auditor->record(4, b1, fx.h({1}));
  fx.auditor->record(5, b1, fx.h({1}));
  ASSERT_FALSE(fx.auditor->ok());
}

// --- auditor-instrumented engine sweeps over every c-struct set -----------------

template <typename CS>
struct EngineHarness {
  std::unique_ptr<Simulation> sim;
  std::unique_ptr<paxos::RoundPolicy> policy;
  Config<CS> config;
  std::vector<GenProposer<CS>*> proposers;
  std::vector<GenLearner<CS>*> learners;
  SafetyAuditor<CS>* auditor = nullptr;

  EngineHarness(CS bottom, std::uint64_t seed, bool fast_policy, double loss) {
    sim::NetworkConfig net;
    net.min_delay = 1;
    net.max_delay = 25;
    net.loss_probability = loss;
    sim = std::make_unique<Simulation>(seed, net);
    std::vector<NodeId> coords{0, 1, 2};
    policy = fast_policy ? PatternPolicy::fast_then_single(coords)
                         : PatternPolicy::multi_then_single(coords);
    config.acceptors = {3, 4, 5, 6, 7};
    config.learners = {8, 9, 10};  // learner 10 is the auditor
    config.proposers = {11, 12, 13};
    config.policy = policy.get();
    config.f = fast_policy ? 1 : 2;
    config.e = 1;
    config.bottom = std::move(bottom);
    for (int i = 0; i < 3; ++i) sim->make_process<GenCoordinator<CS>>(config);
    for (int i = 0; i < 5; ++i) sim->make_process<GenAcceptor<CS>>(config);
    for (int i = 0; i < 2; ++i) {
      learners.push_back(&sim->make_process<GenLearner<CS>>(config));
    }
    auditor = &sim->make_process<SafetyAuditor<CS>>(config);
    for (int i = 0; i < 3; ++i) {
      proposers.push_back(&sim->make_process<GenProposer<CS>>(config));
    }
  }
};

struct AuditSweepParam {
  std::uint64_t seed;
  bool fast_policy;
  double loss;
  double conflict;
};

class AuditedHistoryRuns : public testing::TestWithParam<AuditSweepParam> {};

TEST_P(AuditedHistoryRuns, NoInvariantViolations) {
  const auto& p = GetParam();
  EngineHarness<History> h(History(&kKeyRel), p.seed, p.fast_policy, p.loss);
  util::Rng wl_rng(p.seed * 31);
  smr::Workload workload({15, p.conflict, 0.0, 1}, wl_rng);
  for (std::size_t i = 0; i < workload.commands().size(); ++i) {
    h.sim->at(static_cast<Time>(6 * i), [&, i] {
      h.proposers[i % h.proposers.size()]->propose(workload.commands()[i]);
    });
  }
  const bool ok = h.sim->run_until(
      [&] {
        for (const auto* l : h.learners) {
          if (l->learned().size() < 15) return false;
        }
        return true;
      },
      30'000'000);
  ASSERT_TRUE(ok);
  EXPECT_TRUE(h.auditor->ok()) << h.auditor->violations().front();
  // The learners' results must extend (be consistent with) every chosen
  // value the auditor discovered.
  for (const auto& [b, v] : h.auditor->chosen()) {
    for (const auto* l : h.learners) {
      EXPECT_TRUE(l->learned().compatible(v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AuditedHistoryRuns,
    testing::Values(AuditSweepParam{1, false, 0.0, 0.0}, AuditSweepParam{2, false, 0.0, 1.0},
                    AuditSweepParam{3, false, 0.15, 0.5}, AuditSweepParam{4, true, 0.0, 0.0},
                    AuditSweepParam{5, true, 0.0, 1.0}, AuditSweepParam{6, true, 0.1, 0.5},
                    AuditSweepParam{7, false, 0.25, 1.0}, AuditSweepParam{8, true, 0.2, 0.3}),
    [](const testing::TestParamInfo<AuditSweepParam>& info) {
      return std::string(info.param.fast_policy ? "fast" : "multi") + "_seed" +
             std::to_string(info.param.seed);
    });

TEST(AuditedCSetRun, CommuteEverythingNeverViolates) {
  EngineHarness<CSet> h(CSet{}, 11, false, 0.1);
  for (std::size_t i = 0; i < 12; ++i) {
    h.sim->at(static_cast<Time>(5 * i), [&, i] {
      h.proposers[i % 3]->propose(make_write(i + 1, "k" + std::to_string(i % 2), "v"));
    });
  }
  const bool ok = h.sim->run_until(
      [&] {
        for (const auto* l : h.learners) {
          if (l->learned().size() < 12) return false;
        }
        return true;
      },
      30'000'000);
  ASSERT_TRUE(ok);
  EXPECT_TRUE(h.auditor->ok()) << h.auditor->violations().front();
}

TEST(AuditedSingleValueRun, GeneralizedEngineSolvesConsensus) {
  // With the SingleValue c-struct the generalized engine *is* a consensus
  // protocol: exactly one of the proposed commands is ever learned, and the
  // Appendix-A invariants hold.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    EngineHarness<SingleValue> h(SingleValue{}, seed, false, 0.1);
    for (int i = 0; i < 3; ++i) {
      h.sim->at(static_cast<Time>(2 * i), [&, i] {
        h.proposers[static_cast<std::size_t>(i)]->propose(
            make_write(static_cast<std::uint64_t>(i + 1), "k", "v"));
      });
    }
    const bool ok = h.sim->run_until(
        [&] {
          for (const auto* l : h.learners) {
            if (l->learned().size() < 1) return false;
          }
          return true;
        },
        30'000'000);
    ASSERT_TRUE(ok) << "seed " << seed;
    EXPECT_TRUE(h.auditor->ok()) << h.auditor->violations().front();
    // Consensus: both learners hold the same single command.
    ASSERT_TRUE(h.learners[0]->learned().value().has_value());
    EXPECT_EQ(h.learners[0]->learned(), h.learners[1]->learned());
    const auto id = h.learners[0]->learned().value()->id;
    EXPECT_GE(id, 1u);
    EXPECT_LE(id, 3u);
  }
}

}  // namespace
}  // namespace mcp::genpaxos
