// Property tests for the c-struct axioms CS0–CS4 (§2.3.1 of the paper),
// exercised over randomized command universes and all three conflict
// relations. These are the load-bearing invariants: Generalized Paxos'
// safety proof leans on CS3 (existence of ⊓, and of ⊔ for compatible sets)
// and CS4 (⊓ preserves common commands).

#include <gtest/gtest.h>

#include "cstruct/cset.hpp"
#include "cstruct/cstruct.hpp"
#include "cstruct/history.hpp"
#include "cstruct/single_value.hpp"
#include "util/rng.hpp"

namespace mcp::cstruct {
namespace {

const KeyConflict kKey;
const AlwaysConflict kAlways;
const NeverConflict kNever;

struct AxiomParam {
  const ConflictRelation* rel;
  std::uint64_t seed;
  int universe;  ///< number of distinct commands
  int keys;      ///< key space (smaller = more conflicts)
};

std::string param_name(const testing::TestParamInfo<AxiomParam>& info) {
  return info.param.rel->name() + "_s" + std::to_string(info.param.seed) + "_u" +
         std::to_string(info.param.universe) + "_k" + std::to_string(info.param.keys);
}

class HistoryAxioms : public testing::TestWithParam<AxiomParam> {
 protected:
  Command random_command(util::Rng& rng) {
    const auto id = static_cast<std::uint64_t>(rng.uniform(1, GetParam().universe));
    const std::string key = "k" + std::to_string(rng.uniform(0, GetParam().keys - 1));
    return rng.chance(0.5) ? make_write(id, key, "v") : make_read(id, key);
  }

  /// Builds a random history by appending commands (so it is always an
  /// element of Str(Cmd) by construction — CS1).
  History random_history(util::Rng& rng, int max_len) {
    History h(GetParam().rel);
    const int len = static_cast<int>(rng.uniform(0, max_len));
    for (int i = 0; i < len; ++i) h.append(command_for(rng));
    return h;
  }

  /// Commands must be globally consistent: one id ↔ one command.
  Command command_for(util::Rng& rng) {
    const Command c = random_command(rng);
    auto [it, inserted] = universe_.try_emplace(c.id, c);
    return it->second;
  }

  std::map<std::uint64_t, Command> universe_;
};

TEST_P(HistoryAxioms, CS0AppendStaysClosed) {
  util::Rng rng(GetParam().seed);
  for (int i = 0; i < 50; ++i) {
    History h = random_history(rng, 12);
    const Command c = command_for(rng);
    History extended = h;
    extended.append(c);
    EXPECT_TRUE(extended.contains(c));
    EXPECT_TRUE(extended.extends(h));
  }
}

TEST_P(HistoryAxioms, CS2PartialOrder) {
  util::Rng rng(GetParam().seed + 1);
  for (int i = 0; i < 30; ++i) {
    History u = random_history(rng, 10);
    History v = random_history(rng, 10);
    History w = random_history(rng, 10);
    // Reflexivity.
    EXPECT_TRUE(u.extends(u));
    // Antisymmetry: u ⊒ v ∧ v ⊒ u ⇒ u = v.
    if (u.extends(v) && v.extends(u)) {
      EXPECT_EQ(u, v);
    }
    // Transitivity: u ⊒ v ∧ v ⊒ w ⇒ u ⊒ w.
    if (u.extends(v) && v.extends(w)) {
      EXPECT_TRUE(u.extends(w));
    }
  }
}

TEST_P(HistoryAxioms, CS3MeetIsGreatestLowerBound) {
  util::Rng rng(GetParam().seed + 2);
  for (int i = 0; i < 40; ++i) {
    History v = random_history(rng, 10);
    History w = random_history(rng, 10);
    const History m = v.meet(w);
    // Lower bound.
    EXPECT_TRUE(v.extends(m)) << "meet not a prefix of v";
    EXPECT_TRUE(w.extends(m)) << "meet not a prefix of w";
    // Symmetry (as posets).
    EXPECT_EQ(m, w.meet(v));
    // Greatest: no single-command extension of m is still a lower bound.
    for (const Command& c : v.sequence()) {
      History m2 = m;
      m2.append(c);
      if (m2 == m) continue;
      EXPECT_FALSE(v.extends(m2) && w.extends(m2))
          << "meet is not maximal: can still add command " << c.id;
    }
  }
}

TEST_P(HistoryAxioms, CS3JoinIsLeastUpperBoundWhenCompatible) {
  util::Rng rng(GetParam().seed + 3);
  int compatible_pairs = 0;
  for (int i = 0; i < 60; ++i) {
    // Build compatible pairs by extending a common base with commuting-or-
    // ordered suffixes, then check ⊔.
    History base = random_history(rng, 6);
    History v = base;
    History w = base;
    for (int j = 0; j < 4; ++j) {
      const Command c = command_for(rng);
      v.append(c);
      if (rng.chance(0.5)) w.append(c);
    }
    if (!v.compatible(w)) continue;
    ++compatible_pairs;
    const History j = v.join(w);
    EXPECT_TRUE(j.extends(v));
    EXPECT_TRUE(j.extends(w));
    // Least: the join contains exactly the union of the commands.
    for (const Command& c : j.sequence()) {
      EXPECT_TRUE(v.contains(c) || w.contains(c));
    }
    // Join is symmetric as a poset.
    EXPECT_EQ(j, w.join(v));
  }
  EXPECT_GT(compatible_pairs, 10);
}

TEST_P(HistoryAxioms, CS3CompatibleTriple) {
  // If {u, v, w} is compatible then u and v ⊔ w are compatible.
  util::Rng rng(GetParam().seed + 4);
  for (int i = 0; i < 40; ++i) {
    History base = random_history(rng, 5);
    History u = base, v = base, w = base;
    for (int j = 0; j < 3; ++j) {
      const Command c = command_for(rng);
      if (rng.chance(0.6)) u.append(c);
      if (rng.chance(0.6)) v.append(c);
      if (rng.chance(0.6)) w.append(c);
    }
    if (!(u.compatible(v) && u.compatible(w) && v.compatible(w))) continue;
    const History vw = v.join(w);
    EXPECT_TRUE(u.compatible(vw))
        << "CS3 violated: u compatible with v and w but not with v ⊔ w";
  }
}

TEST_P(HistoryAxioms, CS4MeetPreservesCommonCommands) {
  util::Rng rng(GetParam().seed + 5);
  for (int i = 0; i < 60; ++i) {
    History base = random_history(rng, 6);
    History v = base, w = base;
    const Command c = command_for(rng);
    v.append(c);
    w.append(c);
    for (int j = 0; j < 3; ++j) {
      const Command d = command_for(rng);
      if (rng.chance(0.5)) v.append(d);
      if (rng.chance(0.5)) w.append(d);
    }
    if (!v.compatible(w)) continue;
    EXPECT_TRUE(v.meet(w).contains(c))
        << "CS4 violated: common command dropped by ⊓";
  }
}

TEST_P(HistoryAxioms, CompatibilityIsSymmetric) {
  util::Rng rng(GetParam().seed + 6);
  for (int i = 0; i < 80; ++i) {
    History v = random_history(rng, 8);
    History w = random_history(rng, 8);
    EXPECT_EQ(v.compatible(w), w.compatible(v));
  }
}

TEST_P(HistoryAxioms, MeetJoinIdempotent) {
  util::Rng rng(GetParam().seed + 7);
  for (int i = 0; i < 40; ++i) {
    History v = random_history(rng, 8);
    EXPECT_EQ(v.meet(v), v);
    EXPECT_EQ(v.join(v), v);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HistoryAxioms,
    testing::Values(AxiomParam{&kKey, 1, 12, 3}, AxiomParam{&kKey, 2, 20, 2},
                    AxiomParam{&kKey, 3, 8, 8}, AxiomParam{&kAlways, 4, 10, 2},
                    AxiomParam{&kAlways, 5, 16, 1}, AxiomParam{&kNever, 6, 10, 2},
                    AxiomParam{&kNever, 7, 16, 4}, AxiomParam{&kKey, 8, 30, 4},
                    AxiomParam{&kKey, 9, 6, 1}, AxiomParam{&kAlways, 10, 25, 3}),
    param_name);

// --- The same lattice laws for the other two c-struct sets ------------------

TEST(SingleValueAxioms, LatticeLaws) {
  util::Rng rng(17);
  std::vector<SingleValue> vals{SingleValue{}};
  for (int i = 1; i <= 5; ++i) vals.push_back(SingleValue{make_write(static_cast<std::uint64_t>(i), "k", "v")});
  for (const auto& v : vals) {
    for (const auto& w : vals) {
      EXPECT_EQ(v.compatible(w), w.compatible(v));
      const SingleValue m = v.meet(w);
      EXPECT_TRUE(v.extends(m));
      EXPECT_TRUE(w.extends(m));
      if (v.compatible(w)) {
        const SingleValue j = v.join(w);
        EXPECT_TRUE(j.extends(v));
        EXPECT_TRUE(j.extends(w));
      }
    }
  }
}

TEST(CSetAxioms, LatticeLaws) {
  util::Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    CSet v, w;
    for (int i = 0; i < 8; ++i) {
      const auto id = static_cast<std::uint64_t>(rng.uniform(1, 10));
      if (rng.chance(0.5)) v.append(make_write(id, "k", "v"));
      if (rng.chance(0.5)) w.append(make_write(id, "k", "v"));
    }
    EXPECT_TRUE(v.compatible(w));  // c-sets are always compatible
    EXPECT_TRUE(v.extends(v.meet(w)));
    EXPECT_TRUE(w.extends(v.meet(w)));
    EXPECT_TRUE(v.join(w).extends(v));
    EXPECT_TRUE(v.join(w).extends(w));
    EXPECT_EQ(v.meet(w), w.meet(v));
    EXPECT_EQ(v.join(w), w.join(v));
    // Absorption: v ⊔ (v ⊓ w) = v.
    EXPECT_EQ(v.join(v.meet(w)), v);
  }
}

}  // namespace
}  // namespace mcp::cstruct
