#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"

namespace mcp::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  Time now = 0;
  while (!q.empty()) q.run_next(now);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(now, 30);
}

TEST(EventQueue, StableAtSameInstant) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) q.schedule(5, [&order, i] { order.push_back(i); });
  Time now = 0;
  while (!q.empty()) q.run_next(now);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, RejectsNegativeTime) {
  EventQueue q;
  EXPECT_THROW(q.schedule(-1, [] {}), std::invalid_argument);
}

struct Echo final : Process {
  std::vector<std::string> received;
  NodeId peer = kNoNode;
  bool reply = false;

  void on_message(NodeId from, const std::any& msg) override {
    received.push_back(std::any_cast<std::string>(msg));
    if (reply) send(from, std::string("ack"));
  }
};

TEST(Simulation, DeliversMessages) {
  Simulation s(1);
  auto& a = s.make_process<Echo>();
  auto& b = s.make_process<Echo>();
  b.reply = true;
  s.at(0, [&] { a.send(b.id(), std::string("hello")); });
  s.run_to_completion();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0], "hello");
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_EQ(a.received[0], "ack");
}

TEST(Simulation, UnitDelayMeansOneTickPerHop) {
  NetworkConfig net;
  net.min_delay = 1;
  net.max_delay = 1;
  Simulation s(1, net);
  auto& a = s.make_process<Echo>();
  auto& b = s.make_process<Echo>();
  b.reply = true;
  s.at(0, [&] { a.send(b.id(), std::string("x")); });
  s.run_to_completion();
  EXPECT_EQ(s.now(), 2);  // one hop there, one hop back
}

TEST(Simulation, CrashedProcessReceivesNothing) {
  Simulation s(1);
  auto& a = s.make_process<Echo>();
  auto& b = s.make_process<Echo>();
  s.at(0, [&] { s.crash(b.id()); });
  s.at(1, [&] { a.send(b.id(), std::string("lost")); });
  s.run_to_completion();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(s.metrics().counter("net.dropped_at_crashed"), 1);
}

struct TimerProc final : Process {
  std::vector<int> fired;
  int cancel_handle = 0;

  void on_start() override {
    set_timer(10, 1);
    cancel_handle = set_timer(20, 2);
    set_timer(30, 3);
  }
  void on_message(NodeId, const std::any&) override {}
  void on_timer(int token) override {
    fired.push_back(token);
    if (token == 1) cancel_timer(cancel_handle);
  }
};

TEST(Simulation, TimersFireAndCancel) {
  Simulation s(1);
  auto& p = s.make_process<TimerProc>();
  s.run_to_completion();
  EXPECT_EQ(p.fired, (std::vector<int>{1, 3}));  // 2 was cancelled
}

struct RecoverProc final : Process {
  int recoveries = 0;
  void on_message(NodeId, const std::any&) override {}
  void on_timer(int) override { ADD_FAILURE() << "stale timer fired after crash"; }
  void on_start() override { set_timer(100, 1); }
  void on_recover() override { ++recoveries; }
};

TEST(Simulation, CrashCancelsTimersAndRecoverBumpsIncarnation) {
  Simulation s(1);
  auto& p = s.make_process<RecoverProc>();
  s.crash_at(50, p.id());
  s.recover_at(200, p.id());
  s.run_until(1000);
  EXPECT_EQ(p.recoveries, 1);
  EXPECT_EQ(p.incarnation(), 1);
  EXPECT_FALSE(p.crashed());
}

TEST(Simulation, MessageLossIsApplied) {
  NetworkConfig net;
  net.loss_probability = 1.0;
  Simulation s(1, net);
  auto& a = s.make_process<Echo>();
  auto& b = s.make_process<Echo>();
  s.at(0, [&] { a.send(b.id(), std::string("gone")); });
  s.run_to_completion();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(s.metrics().counter("net.lost"), 1);
}

TEST(Simulation, SelfMessagesAreNeverLost) {
  NetworkConfig net;
  net.loss_probability = 1.0;
  Simulation s(1, net);
  auto& a = s.make_process<Echo>();
  s.at(0, [&] { a.send(a.id(), std::string("self")); });
  s.run_to_completion();
  ASSERT_EQ(a.received.size(), 1u);
}

TEST(Simulation, DuplicationDeliversTwice) {
  NetworkConfig net;
  net.duplication_probability = 1.0;
  Simulation s(1, net);
  auto& a = s.make_process<Echo>();
  auto& b = s.make_process<Echo>();
  s.at(0, [&] { a.send(b.id(), std::string("twice")); });
  s.run_to_completion();
  EXPECT_EQ(b.received.size(), 2u);
}

TEST(Simulation, CutLinkDropsDirectionally) {
  Simulation s(1);
  auto& a = s.make_process<Echo>();
  auto& b = s.make_process<Echo>();
  s.network().cut_link(a.id(), b.id());
  s.at(0, [&] { a.send(b.id(), std::string("blocked")); });
  s.at(0, [&] { b.send(a.id(), std::string("open")); });
  s.run_to_completion();
  EXPECT_TRUE(b.received.empty());
  ASSERT_EQ(a.received.size(), 1u);
  s.network().restore_link(a.id(), b.id());
  s.at(s.now(), [&] { a.send(b.id(), std::string("ok")); });
  s.run_to_completion();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(Simulation, RunUntilPredicate) {
  Simulation s(1);
  auto& a = s.make_process<Echo>();
  auto& b = s.make_process<Echo>();
  s.at(5, [&] { a.send(b.id(), std::string("one")); });
  s.at(500, [&] { a.send(b.id(), std::string("two")); });
  const bool ok = s.run_until([&] { return !b.received.empty(); }, 10000);
  EXPECT_TRUE(ok);
  EXPECT_LT(s.now(), 500);
}

TEST(Simulation, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    NetworkConfig net;
    net.min_delay = 1;
    net.max_delay = 50;
    net.loss_probability = 0.1;
    Simulation s(seed, net);
    auto& a = s.make_process<Echo>();
    auto& b = s.make_process<Echo>();
    b.reply = true;
    for (Time t = 0; t < 100; t += 10) {
      s.at(t, [&, t] { a.send(b.id(), std::string("m") + std::to_string(t)); });
    }
    s.run_to_completion();
    return std::make_pair(b.received, s.now());
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

TEST(StableStorage, SurvivesAndCounts) {
  StableStorage st(25);
  EXPECT_EQ(st.write("k", "v"), 25);
  EXPECT_EQ(st.write_int("n", 42), 25);
  EXPECT_EQ(st.write_count(), 2);
  EXPECT_EQ(st.read("k"), "v");
  EXPECT_EQ(st.read_int("n"), 42);
  EXPECT_FALSE(st.read("missing").has_value());
}

}  // namespace
}  // namespace mcp::sim
