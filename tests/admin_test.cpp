// The admin/metrics endpoint: the Prometheus exposition format itself,
// and a live TCP service cluster scraped over a real socket — /metrics
// families, /healthz group/leader lines, 404/405 handling — while client
// traffic is in flight. Suite named AdminEndpoint so the ThreadSanitizer
// CI job picks it up next to the transport suites (the scrape races the
// node loop and the reactor by design).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include "audit/inspect.hpp"
#include "runtime/admin.hpp"
#include "runtime/kv_cluster.hpp"
#include "runtime/node.hpp"
#include "service/client.hpp"
#include "transport/tcp_transport.hpp"
#include "util/exposition.hpp"
#include "util/metrics.hpp"

namespace mcp {
namespace {

TEST(AdminExposition, NamesMapOntoThePrometheusGrammar) {
  EXPECT_EQ(util::prometheus_name("svc.replies"), "mcp_svc_replies");
  EXPECT_EQ(util::prometheus_name("g0.svc.lat.consensus"),
            "mcp_g0_svc_lat_consensus");
  EXPECT_EQ(util::prometheus_name("net.bytes-sent/total"),
            "mcp_net_bytes_sent_total");
}

TEST(AdminExposition, RendersCountersAndSummaries) {
  util::Metrics metrics;
  metrics.incr("svc.replies", 42);
  for (int i = 1; i <= 100; ++i) metrics.sample("svc.lat.reply", i);

  const std::string text = util::prometheus_exposition(metrics);
  EXPECT_NE(text.find("# TYPE mcp_svc_replies counter"), std::string::npos);
  EXPECT_NE(text.find("mcp_svc_replies 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mcp_svc_lat_reply summary"), std::string::npos);
  for (const char* q : {"quantile=\"0.5\"", "quantile=\"0.9\"", "quantile=\"0.99\""}) {
    EXPECT_NE(text.find(q), std::string::npos) << q;
  }
  EXPECT_NE(text.find("mcp_svc_lat_reply_count 100"), std::string::npos);
  EXPECT_NE(text.find("mcp_svc_lat_reply_sum 5050"), std::string::npos);
  EXPECT_NE(text.find("mcp_svc_lat_reply_min 1"), std::string::npos);
  EXPECT_NE(text.find("mcp_svc_lat_reply_max 100"), std::string::npos);
  // Every non-comment line is "name[{labels}] value" — two tokens.
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "exposition must end with a newline";
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    EXPECT_EQ(std::count(line.begin(), line.end(), ' '), 1) << line;
  }
}

/// Blocking HTTP/1.0 GET against the admin port: send the request, read to
/// EOF (the server closes after the response — Connection: close).
std::string http_request(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    ADD_FAILURE() << "connect to admin port " << port << ": " << std::strerror(errno);
    return {};
  }
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::send(fd, request.data() + off, request.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(std::uint16_t port, const std::string& path) {
  return http_request(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

TEST(AdminEndpoint, ScrapesLiveTcpCluster) {
  runtime::KvShape shape;
  shape.frontend.batch_size = 8;
  shape.frontend.batch_delay = 2;
  runtime::ClusterOptions options;
  options.backend = runtime::Backend::kTcp;
  options.tick = std::chrono::microseconds(200);
  // Flight recorders on: /dump has something to flush, and the journals
  // left behind get audited below.
  const std::string journal_root =
      (std::filesystem::temp_directory_path() / "mcpaxos_admin_journal").string();
  std::filesystem::remove_all(journal_root);
  options.journal_root = journal_root;
  runtime::KvServiceCluster cluster(shape, options);

  // The admin listener must exist before the reactor runs; port 0 asks the
  // kernel for an ephemeral one.
  const sim::NodeId server_id = cluster.server_ids().front();
  const std::uint16_t admin_port = runtime::install_admin(
      cluster.server_node(0), *cluster.cluster().tcp_transport(server_id), 0);
  ASSERT_NE(admin_port, 0);
  cluster.start();

  service::Client::Options copt;
  copt.client_id = 0x5CA;
  copt.servers = cluster.server_ids();
  copt.attempt_timeout = std::chrono::milliseconds(400);
  service::Client client(cluster.make_channel(cluster.client_endpoint_id(0)), copt);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client.put("adm" + std::to_string(i), "v").ok);
  }

  // /metrics: a Prometheus page with the service + transport families the
  // CI smoke job requires.
  const std::string metrics = http_get(admin_port, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("Content-Type: text/plain"), std::string::npos);
  for (const char* family :
       {"# TYPE mcp_svc_replies counter", "mcp_net_bytes_sent",
        "mcp_svc_lat_reply", "mcp_svc_lat_consensus"}) {
    EXPECT_NE(metrics.find(family), std::string::npos)
        << "missing " << family << " in:\n" << metrics;
  }

  // /healthz: node line + one line per consensus group with a leader hint.
  const std::string health = http_get(admin_port, "/healthz");
  EXPECT_NE(health.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(health.find("node " + std::to_string(server_id) + " running=1"),
            std::string::npos)
      << health;
  EXPECT_NE(health.find("group 0 role=server"), std::string::npos) << health;
  EXPECT_NE(health.find("incarnation="), std::string::npos);
  // The server's group line carries consensus progress: learned prefix
  // length, replica apply count, and the lag between them.
  EXPECT_NE(health.find(" learned="), std::string::npos) << health;
  EXPECT_NE(health.find(" applied="), std::string::npos) << health;
  EXPECT_NE(health.find(" lag="), std::string::npos) << health;
  // A query string is stripped before path dispatch.
  EXPECT_NE(http_get(admin_port, "/healthz?verbose=1").find("HTTP/1.0 200 OK"),
            std::string::npos);

  // /trace serves the live ring without waiting for process exit — always
  // valid Perfetto JSON, even with tracing disabled (empty ring).
  const std::string trace = http_get(admin_port, "/trace");
  EXPECT_NE(trace.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos) << trace;

  // /dump makes the journal durable and says where it went.
  const std::string dump = http_get(admin_port, "/dump");
  EXPECT_NE(dump.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(dump.find("journal: flushed"), std::string::npos) << dump;
  EXPECT_NE(dump.find("events="), std::string::npos) << dump;

  // Unknown path -> 404; non-GET -> 405. Either way the connection closes
  // cleanly and the next scrape still works.
  EXPECT_NE(http_get(admin_port, "/nope").find("404"), std::string::npos);
  EXPECT_NE(http_request(admin_port, "POST /metrics HTTP/1.0\r\n\r\n").find("405"),
            std::string::npos);
  EXPECT_NE(http_get(admin_port, "/metrics").find("HTTP/1.0 200 OK"),
            std::string::npos);

  // The scrape path is read-only: the service still serves afterwards.
  const auto got = client.get("adm0");
  ASSERT_TRUE(got.ok);
  EXPECT_TRUE(got.found);
  EXPECT_EQ(got.value, "v");
  cluster.stop();

  // The journals the cluster left behind replay cleanly through the
  // offline auditor: events were recorded and no invariant tripped.
  const auto report = audit::inspect(audit::find_journal_dirs(journal_root));
  EXPECT_GT(report.events, 0u);
  EXPECT_TRUE(report.ok()) << audit::render_text(report);
  std::filesystem::remove_all(journal_root);
}

TEST(AdminEndpoint, EnableAfterStartThrows) {
  runtime::KvShape shape;
  shape.servers = 1;
  runtime::ClusterOptions options;
  options.backend = runtime::Backend::kTcp;
  options.tick = std::chrono::microseconds(200);
  runtime::KvServiceCluster cluster(shape, options);
  cluster.start();
  auto* tcp = cluster.cluster().tcp_transport(cluster.server_ids().front());
  EXPECT_THROW(tcp->enable_admin(0, [](const std::string&) {
                 return std::optional<std::string>{};
               }),
               std::logic_error);
  cluster.stop();
}

}  // namespace
}  // namespace mcp
