// Scale sanity: a longer command stream through the generalized engine
// with mixed conflicts, replicas attached and the safety auditor watching.
// Guards against superlinear blow-ups in the c-struct hot paths (the
// common-prefix factoring of §3.3.1's operators) as much as against
// correctness regressions under sustained load.

#include <gtest/gtest.h>

#include <memory>

#include "genpaxos/auditor.hpp"
#include "genpaxos/engine.hpp"
#include "smr/kv.hpp"
#include "smr/replica.hpp"

namespace mcp::genpaxos {
namespace {

using cstruct::History;
using sim::NodeId;
using sim::Simulation;
using sim::Time;

const cstruct::KeyConflict kKeyRel;

TEST(Soak, HundredCommandStreamWithReplicasAndAuditor) {
  sim::NetworkConfig net;
  net.min_delay = 2;
  net.max_delay = 10;
  net.loss_probability = 0.02;
  // Perf-sensitive run: skip the wire codec (the escape hatch). Outcomes
  // are identical either way — tests/envelope_test.cpp asserts it — this
  // soak just doesn't need the serialization work on every 2a/2b.
  net.encode_messages = false;
  Simulation s(31, net);

  std::vector<NodeId> coords{0, 1, 2};
  auto policy = paxos::PatternPolicy::multi_then_single(coords);
  Config<History> config;
  config.acceptors = {3, 4, 5, 6, 7};
  config.learners = {8, 9, 10};  // 10 = auditor
  config.proposers = {11, 12, 13};
  config.policy = policy.get();
  config.f = 2;
  config.e = 1;
  config.bottom = History(&kKeyRel);

  for (int i = 0; i < 3; ++i) s.make_process<GenCoordinator<History>>(config);
  std::vector<GenAcceptor<History>*> acceptors;
  for (int i = 0; i < 5; ++i) acceptors.push_back(&s.make_process<GenAcceptor<History>>(config));
  std::vector<GenLearner<History>*> learners;
  for (int i = 0; i < 2; ++i) learners.push_back(&s.make_process<GenLearner<History>>(config));
  auto& auditor = s.make_process<SafetyAuditor<History>>(config);
  std::vector<GenProposer<History>*> proposers;
  for (int i = 0; i < 3; ++i) proposers.push_back(&s.make_process<GenProposer<History>>(config));
  std::vector<smr::Replica*> replicas;
  for (auto* l : learners) replicas.push_back(&s.make_process<smr::Replica>(*l));

  constexpr std::size_t kCount = 100;
  util::Rng wl_rng(777);
  smr::Workload workload({kCount, 0.15, 0.3, 1}, wl_rng);
  for (std::size_t i = 0; i < workload.commands().size(); ++i) {
    s.at(static_cast<Time>(8 * i), [&, i] {
      proposers[i % 3]->propose(workload.commands()[i]);
    });
  }
  // Mid-stream acceptor crash/recovery: the §4.4 conservative rnd restore
  // puts the recovered acceptor above the current round, so its nacks force
  // the leader into fresh rounds — churn that must not leave stale
  // per-ballot state behind (asserted below).
  s.crash_at(250, acceptors[0]->id());
  s.recover_at(450, acceptors[0]->id());

  const bool ok = s.run_until(
      [&] {
        for (const auto* l : learners) {
          if (l->learned().size() < kCount) return false;
        }
        return true;
      },
      30'000'000);
  ASSERT_TRUE(ok);
  EXPECT_TRUE(auditor.ok()) << auditor.violations().front();
  EXPECT_TRUE(learners[0]->learned().compatible(learners[1]->learned()));
  for (auto* r : replicas) r->poll();
  std::vector<const smr::Replica*> views(replicas.begin(), replicas.end());
  EXPECT_TRUE(smr::replicas_converged(views));
  EXPECT_EQ(replicas[0]->applied(), kCount);
  // Every proposer got all its commands acknowledged.
  std::size_t delivered = 0;
  s.run_until(s.now() + 5'000);  // drain acks
  for (const auto* p : proposers) delivered += p->delivered_count();
  EXPECT_EQ(delivered, kCount);
  // Stale-round bookkeeping must not accumulate over a long run: joining a
  // higher round prunes the per-ballot 2a/collision maps, so after the
  // whole stream each acceptor tracks at most the current round's 2a state
  // plus its collision flag.
  const std::int64_t rounds = s.metrics().counter("gen.rounds_started") +
                              s.metrics().counter("gen.collisions_detected");
  EXPECT_GT(rounds, 1) << "round churn never exercised the pruning path";
  for (const auto* a : acceptors) {
    EXPECT_LE(a->tracked_round_states(), 2u)
        << "acceptor " << a->id() << " retains stale per-ballot state";
    // The fast-path proposal buffer prunes accepted commands on the retry
    // timer; after the whole stream settles it must not hold the run's
    // command count (a long-lived service cluster would otherwise leak).
    EXPECT_LT(a->pending_proposals(), kCount / 2)
        << "acceptor " << a->id() << " accumulates accepted proposals";
  }
  // Learners prune symmetrically: every quorum-complete round drops the
  // vote maps below it.
  for (const auto* l : learners) {
    EXPECT_LE(l->tracked_vote_rounds(), 2u)
        << "learner " << l->id() << " retains stale per-ballot votes";
  }
}

}  // namespace
}  // namespace mcp::genpaxos
