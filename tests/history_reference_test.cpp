// Differential fuzzing of the command-history operators (§3.3.1) against
// independent reference oracles:
//   - extends:    the logical characterization of W ⊑ H (set inclusion,
//                 order agreement, and appended commands ordered after all
//                 conflicting existing ones),
//   - compatible: brute-force search for a common upper bound (A extended
//                 by every permutation of B's extra commands),
//   - meet:       maximality over every subset-induced common prefix.
// Any divergence between History and these oracles is a bug in one of the
// §3.3.1 recursions.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cstruct/history.hpp"
#include "util/rng.hpp"

namespace mcp::cstruct {
namespace {

const KeyConflict kKey;
const AlwaysConflict kAlways;

struct Oracle {
  const ConflictRelation* rel;

  bool conflicts(const Command& a, const Command& b) const {
    return a.id != b.id && rel->conflicts(a, b);
  }

  /// Position of id in seq, or npos.
  static std::size_t pos(const std::vector<Command>& seq, std::uint64_t id) {
    for (std::size_t i = 0; i < seq.size(); ++i) {
      if (seq[i].id == id) return i;
    }
    return static_cast<std::size_t>(-1);
  }

  /// Reference ⊑: H extends W iff (1) W's commands ⊆ H's, (2) conflicting
  /// pairs common to both keep their W-order in H, (3) every command of
  /// H ∖ W follows all conflicting commands of W in H.
  bool extends(const History& h, const History& w) const {
    const auto& hs = h.sequence();
    const auto& ws = w.sequence();
    for (const Command& c : ws) {
      if (pos(hs, c.id) == static_cast<std::size_t>(-1)) return false;
    }
    for (std::size_t i = 0; i < ws.size(); ++i) {
      for (std::size_t j = i + 1; j < ws.size(); ++j) {
        if (!conflicts(ws[i], ws[j])) continue;
        if (pos(hs, ws[i].id) > pos(hs, ws[j].id)) return false;
      }
    }
    for (const Command& c : hs) {
      if (pos(ws, c.id) != static_cast<std::size_t>(-1)) continue;  // in W
      for (const Command& wcmd : ws) {
        if (conflicts(c, wcmd) && pos(hs, c.id) < pos(hs, wcmd.id)) return false;
      }
    }
    return true;
  }

  /// Reference compatibility: some permutation of B ∖ A appended to A
  /// yields a common upper bound (CS3 guarantees the lub lives in
  /// Str(cmds(A) ∪ cmds(B)), so searching that set is complete).
  bool compatible(const History& a, const History& b) const {
    std::vector<Command> extra;
    for (const Command& c : b.sequence()) {
      if (!a.contains(c)) extra.push_back(c);
    }
    std::sort(extra.begin(), extra.end());
    do {
      History candidate = a;
      for (const Command& c : extra) candidate.append(c);
      if (extends(candidate, a) && extends(candidate, b)) return true;
    } while (std::next_permutation(extra.begin(), extra.end()));
    return false;
  }
};

History random_history(util::Rng& rng, const ConflictRelation* rel, int max_len,
                       int universe, int keys) {
  History h(rel);
  const int len = static_cast<int>(rng.uniform(0, max_len));
  for (int i = 0; i < len; ++i) {
    const auto id = static_cast<std::uint64_t>(rng.uniform(1, universe));
    h.append(make_write(id, "k" + std::to_string(id % static_cast<std::uint64_t>(keys)), "v"));
  }
  return h;
}

struct FuzzParam {
  const ConflictRelation* rel;
  std::uint64_t seed;
  int universe;
  int keys;
};

class HistoryVsOracle : public testing::TestWithParam<FuzzParam> {};

TEST_P(HistoryVsOracle, ExtendsMatchesLogicalCharacterization) {
  const auto& p = GetParam();
  util::Rng rng(p.seed);
  Oracle oracle{p.rel};
  int positives = 0;
  for (int trial = 0; trial < 300; ++trial) {
    // Mix free pairs with genuine extension pairs so both answers occur.
    History w = random_history(rng, p.rel, 6, p.universe, p.keys);
    History h = rng.chance(0.5) ? random_history(rng, p.rel, 8, p.universe, p.keys) : w;
    if (rng.chance(0.6)) {
      for (int i = 0; i < 3; ++i) {
        const auto id = static_cast<std::uint64_t>(rng.uniform(1, p.universe));
        h.append(make_write(id, "k" + std::to_string(id % static_cast<std::uint64_t>(p.keys)), "v"));
      }
    }
    const bool expected = oracle.extends(h, w);
    EXPECT_EQ(h.extends(w), expected)
        << "extends mismatch (trial " << trial << ", |h|=" << h.size()
        << ", |w|=" << w.size() << ")";
    if (expected) ++positives;
  }
  EXPECT_GT(positives, 20) << "fuzz produced too few true extensions";
}

TEST_P(HistoryVsOracle, CompatibleMatchesBruteForce) {
  const auto& p = GetParam();
  util::Rng rng(p.seed + 1);
  Oracle oracle{p.rel};
  int compatible_count = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const History a = random_history(rng, p.rel, 5, p.universe, p.keys);
    const History b = random_history(rng, p.rel, 5, p.universe, p.keys);
    const bool expected = oracle.compatible(a, b);
    EXPECT_EQ(a.compatible(b), expected)
        << "compatible mismatch at trial " << trial;
    if (expected) ++compatible_count;
  }
  EXPECT_GT(compatible_count, 10);
}

TEST_P(HistoryVsOracle, MeetIsMaximalOverSubsetPrefixes) {
  const auto& p = GetParam();
  util::Rng rng(p.seed + 2);
  Oracle oracle{p.rel};
  for (int trial = 0; trial < 80; ++trial) {
    const History a = random_history(rng, p.rel, 5, p.universe, p.keys);
    const History b = random_history(rng, p.rel, 5, p.universe, p.keys);
    const History m = a.meet(b);
    ASSERT_TRUE(oracle.extends(a, m));
    ASSERT_TRUE(oracle.extends(b, m));
    // Enumerate the common commands; every common prefix induced by any
    // subset must itself be a prefix of the meet (greatestness).
    std::vector<Command> common;
    for (const Command& c : a.sequence()) {
      if (b.contains(c)) common.push_back(c);
    }
    const std::size_t k = common.size();
    ASSERT_LT(k, 12u);
    for (std::size_t mask = 0; mask < (1u << k); ++mask) {
      History candidate(p.rel);
      for (std::size_t i = 0; i < k; ++i) {
        if (mask & (1u << i)) candidate.append(common[i]);
      }
      if (oracle.extends(a, candidate) && oracle.extends(b, candidate)) {
        EXPECT_TRUE(oracle.extends(m, candidate))
            << "meet not greatest: a lower bound is not its prefix";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, HistoryVsOracle,
    testing::Values(FuzzParam{&kKey, 1, 8, 2}, FuzzParam{&kKey, 2, 6, 1},
                    FuzzParam{&kKey, 3, 10, 4}, FuzzParam{&kAlways, 4, 8, 2},
                    FuzzParam{&kAlways, 5, 6, 1}, FuzzParam{&kKey, 6, 12, 3}),
    [](const testing::TestParamInfo<FuzzParam>& info) {
      return info.param.rel->name() + "_s" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace mcp::cstruct
