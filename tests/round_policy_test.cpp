// Tests for the §4.5 round-structure policies: clustered fast ranges and
// the gradually shrinking multicoordinated ladder, plus end-to-end runs of
// the generalized engine under both.

#include <gtest/gtest.h>

#include <memory>

#include "genpaxos/engine.hpp"
#include "paxos/round_config.hpp"
#include "smr/kv.hpp"

namespace mcp::paxos {
namespace {

TEST(ClusteredPolicy, FastRangesWithSingleRecoveryRounds) {
  auto policy = PatternPolicy::clustered({10, 11, 12}, 3);
  EXPECT_EQ(policy->type_of(1), RoundType::kFast);
  EXPECT_EQ(policy->type_of(2), RoundType::kFast);
  EXPECT_EQ(policy->type_of(3), RoundType::kFast);
  EXPECT_EQ(policy->type_of(4), RoundType::kSingleCoord);
  EXPECT_EQ(policy->type_of(5), RoundType::kFast);
  EXPECT_EQ(policy->type_of(8), RoundType::kSingleCoord);
  EXPECT_THROW(PatternPolicy::clustered({10}, 0), std::invalid_argument);
}

TEST(ShrinkingMultiPolicy, WidthDecreasesToSingle) {
  ShrinkingMultiPolicy policy({10, 11, 12, 13, 14}, 2);
  EXPECT_EQ(policy.width_of(1), 5u);
  EXPECT_EQ(policy.width_of(2), 3u);
  EXPECT_EQ(policy.width_of(3), 1u);
  EXPECT_EQ(policy.width_of(100), 1u);

  const Ballot round1 = policy.make_ballot(1, 10, 0);
  EXPECT_EQ(round1.type, RoundType::kMultiCoord);
  const RoundInfo info1 = policy.info(round1);
  EXPECT_EQ(info1.coordinators.size(), 5u);
  EXPECT_EQ(info1.coord_quorum_size, 3u);

  const Ballot round2 = policy.make_ballot(2, 11, 0);
  const RoundInfo info2 = policy.info(round2);
  EXPECT_EQ(info2.coordinators.size(), 3u);
  EXPECT_EQ(info2.coord_quorum_size, 2u);

  const Ballot round3 = policy.make_ballot(3, 11, 0);
  EXPECT_EQ(round3.type, RoundType::kSingleCoord);
  const RoundInfo info3 = policy.info(round3);
  EXPECT_EQ(info3.coordinators, (std::vector<sim::NodeId>{11}));  // initiator owns it
}

TEST(ShrinkingMultiPolicy, QuorumsAlwaysIntersect) {
  // Assumption 3 must hold at every width the ladder passes through.
  ShrinkingMultiPolicy policy({0, 1, 2, 3, 4, 5, 6}, 1);
  for (std::int64_t count = 1; count <= 8; ++count) {
    const RoundInfo info = policy.info(policy.make_ballot(count, 0, 0));
    EXPECT_GT(2 * info.coord_quorum_size, info.coordinators.size())
        << "round " << count;
  }
}

TEST(ShrinkingMultiPolicy, RejectsBadArguments) {
  EXPECT_THROW(ShrinkingMultiPolicy({}, 1), std::invalid_argument);
  EXPECT_THROW(ShrinkingMultiPolicy({0, 1}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace mcp::paxos

namespace mcp::genpaxos {
namespace {

using cstruct::History;
using sim::NodeId;
using sim::Simulation;
using sim::Time;

const cstruct::KeyConflict kKeyRel;

template <typename MakePolicy>
bool run_policy(MakePolicy&& make_policy, std::uint64_t seed, double conflict,
                std::size_t commands, int f = 2, int e = 1) {
  sim::NetworkConfig net;
  net.min_delay = 1;
  net.max_delay = 20;
  Simulation s(seed, net);
  std::vector<NodeId> coords{0, 1, 2};
  auto policy = make_policy(coords);
  Config<History> config;
  config.acceptors = {3, 4, 5, 6, 7};
  config.learners = {8, 9};
  config.proposers = {10, 11};
  config.policy = policy.get();
  config.f = f;
  config.e = e;
  config.bottom = History(&kKeyRel);
  for (int i = 0; i < 3; ++i) s.make_process<GenCoordinator<History>>(config);
  for (int i = 0; i < 5; ++i) s.make_process<GenAcceptor<History>>(config);
  std::vector<GenLearner<History>*> learners;
  for (int i = 0; i < 2; ++i) learners.push_back(&s.make_process<GenLearner<History>>(config));
  std::vector<GenProposer<History>*> proposers;
  for (int i = 0; i < 2; ++i) proposers.push_back(&s.make_process<GenProposer<History>>(config));

  util::Rng wl_rng(seed * 57);
  smr::Workload workload({commands, conflict, 0.0, 1}, wl_rng);
  for (std::size_t i = 0; i < workload.commands().size(); ++i) {
    s.at(static_cast<Time>(5 * i), [&, i] {
      proposers[i % 2]->propose(workload.commands()[i]);
    });
  }
  return s.run_until(
      [&] {
        for (const auto* l : learners) {
          if (l->learned().size() < commands) return false;
        }
        return true;
      },
      30'000'000);
}

class PolicyLiveness : public testing::TestWithParam<std::uint64_t> {};

TEST_P(PolicyLiveness, ClusteredPolicyConvergesUnderConflicts) {
  EXPECT_TRUE(run_policy(
      [](std::vector<NodeId> coords) {
        return paxos::PatternPolicy::clustered(std::move(coords), 2);
      },
      GetParam(), 0.6, 12, /*f=*/1, /*e=*/1));
}

TEST_P(PolicyLiveness, ShrinkingPolicyConvergesUnderConflicts) {
  EXPECT_TRUE(run_policy(
      [](std::vector<NodeId> coords) {
        return std::make_unique<paxos::ShrinkingMultiPolicy>(std::move(coords), 1);
      },
      GetParam(), 0.6, 12));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyLiveness, testing::Range<std::uint64_t>(1, 6),
                         [](const testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace mcp::genpaxos
