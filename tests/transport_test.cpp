// Transport-layer tests: the incremental frame decoder's robustness
// (torn frames, partial reads, garbage and oversized length prefixes —
// the stream-level mirror of the wire::Reader::get_bytes hardening), the
// in-process thread transport under concurrent senders, and the TCP
// transport end to end, including deliberately fragmented writes from a
// raw socket and a framing-violation teardown.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "transport/frame.hpp"
#include "transport/tcp_transport.hpp"
#include "transport/thread_transport.hpp"

namespace mcp::transport {
namespace {

using namespace std::chrono_literals;

// --- FrameBuffer -------------------------------------------------------------

TEST(FrameBufferTest, RoundTripsSingleFrame) {
  FrameBuffer buf;
  buf.feed(frame("hello"));
  const auto got = buf.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "hello");
  EXPECT_FALSE(buf.next().has_value());
  EXPECT_EQ(buf.buffered(), 0u);
}

TEST(FrameBufferTest, RoundTripsEmptyFrame) {
  FrameBuffer buf;
  buf.feed(frame(""));
  const auto got = buf.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "");
}

TEST(FrameBufferTest, ManyFramesInOneFeed) {
  FrameBuffer buf;
  std::string stream;
  for (int i = 0; i < 100; ++i) stream += frame("payload-" + std::to_string(i));
  buf.feed(stream);
  for (int i = 0; i < 100; ++i) {
    const auto got = buf.next();
    ASSERT_TRUE(got.has_value()) << i;
    EXPECT_EQ(*got, "payload-" + std::to_string(i));
  }
  EXPECT_FALSE(buf.next().has_value());
}

TEST(FrameBufferTest, TornFrameReassemblesByteByByte) {
  // A frame with a multi-byte length prefix (payload > 127 bytes), fed one
  // byte at a time: next() must stay empty until the very last byte.
  const std::string payload(300, 'x');
  const std::string encoded = frame(payload);
  ASSERT_GT(encoded.size(), payload.size() + 1);  // 2-byte varint prefix
  FrameBuffer buf;
  for (std::size_t i = 0; i + 1 < encoded.size(); ++i) {
    buf.feed(std::string_view(&encoded[i], 1));
    EXPECT_FALSE(buf.next().has_value()) << "complete after byte " << i;
  }
  buf.feed(std::string_view(&encoded[encoded.size() - 1], 1));
  const auto got = buf.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
}

TEST(FrameBufferTest, PartialReadAcrossFrameBoundary) {
  // Two frames, split mid-way through the second's payload.
  const std::string stream = frame("first") + frame("second");
  FrameBuffer buf;
  buf.feed(stream.substr(0, stream.size() - 3));
  auto got = buf.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "first");
  EXPECT_FALSE(buf.next().has_value());  // second is torn
  buf.feed(stream.substr(stream.size() - 3));
  got = buf.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "second");
}

TEST(FrameBufferTest, GarbagePrefixRejected) {
  // 0x80 continuation bytes forever: not a varint. Must throw, and keep
  // throwing (the stream has no resync point).
  FrameBuffer buf;
  buf.feed(std::string(11, '\x80'));
  EXPECT_THROW(buf.next(), FramingError);
  EXPECT_THROW(buf.next(), FramingError);
}

TEST(FrameBufferTest, OversizedLengthRejectedBeforeAllocation) {
  // A valid varint claiming 2^40 bytes. With a small max_frame the claim
  // is rejected while only the handful of prefix bytes are buffered —
  // i.e. before any allocation sized by the claim could happen.
  FrameBuffer buf(/*max_frame=*/1024);
  std::string prefix;
  std::uint64_t len = 1ull << 40;
  while (len >= 0x80) {
    prefix.push_back(static_cast<char>((len & 0x7F) | 0x80));
    len >>= 7;
  }
  prefix.push_back(static_cast<char>(len));
  buf.feed(prefix);
  const std::size_t buffered_before = buf.buffered();
  EXPECT_LE(buffered_before, 16u);
  EXPECT_THROW(buf.next(), FramingError);
}

TEST(FrameBufferTest, MaxFrameBoundary) {
  FrameBuffer buf(/*max_frame=*/8);
  buf.feed(frame("12345678"));  // exactly max: fine
  const auto got = buf.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "12345678");
  FrameBuffer buf2(/*max_frame=*/8);
  buf2.feed(frame("123456789"));  // one over: rejected
  EXPECT_THROW(buf2.next(), FramingError);
}

TEST(FrameBufferTest, TenBytePrefixOverflowRejectedNotTruncated) {
  // A 10-byte prefix whose final byte carries bits above bit 63 used to
  // truncate silently (e.g. to length 0), desyncing framing; it must be a
  // FramingError instead.
  FrameBuffer buf;
  buf.feed(std::string(9, '\x80') + '\x7e');
  EXPECT_THROW(buf.next(), FramingError);

  // Bit 63 alone is a *valid* 10-byte varint (length 2^63) — it dies on
  // the max_frame check, not on truncation.
  FrameBuffer buf2;
  buf2.feed(std::string(9, '\x80') + '\x01');
  EXPECT_THROW(buf2.next(), FramingError);
}

TEST(FrameBufferTest, NonMinimalLengthPrefixAccepted) {
  // "\x80\x00" is a 2-byte encoding of length 0: wasteful but
  // unambiguous, so it frames an empty payload rather than erroring
  // (matching wire::Reader's varint semantics).
  FrameBuffer buf;
  buf.feed(std::string("\x80\x00", 2) + frame("next"));
  auto got = buf.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "");
  got = buf.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "next");
}

TEST(FrameBufferTest, TornPrefixThenCompletion) {
  // The length prefix itself arrives torn across feeds.
  const std::string payload(300, 'y');
  const std::string encoded = frame(payload);
  FrameBuffer buf;
  buf.feed(encoded.substr(0, 1));  // half the 2-byte varint
  EXPECT_FALSE(buf.next().has_value());
  buf.feed(encoded.substr(1));
  const auto got = buf.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
}

// --- receivers ---------------------------------------------------------------

/// Collects delivered frames; wait_for blocks until `n` arrived (or fails
/// the test on timeout).
class Sink {
 public:
  void operator()(PeerId from, std::string payload) {
    std::lock_guard<std::mutex> lock(mu_);
    received_.emplace_back(from, std::move(payload));
    cv_.notify_all();
  }

  Transport::FrameHandler handler() {
    return [this](PeerId from, std::string payload) {
      (*this)(from, std::move(payload));
    };
  }

  bool wait_for(std::size_t n, std::chrono::milliseconds timeout = 10s) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [&] { return received_.size() >= n; });
  }

  std::vector<std::pair<PeerId, std::string>> snapshot() {
    std::lock_guard<std::mutex> lock(mu_);
    return received_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::pair<PeerId, std::string>> received_;
};

// --- ThreadHub ---------------------------------------------------------------

TEST(ThreadTransportTest, DeliversBetweenEndpoints) {
  ThreadHub hub;
  Transport& a = hub.endpoint(0);
  Transport& b = hub.endpoint(1);
  Sink sink_a, sink_b;
  a.start(sink_a.handler());
  b.start(sink_b.handler());
  EXPECT_TRUE(a.send(1, "ping"));
  EXPECT_TRUE(b.send(0, "pong"));
  ASSERT_TRUE(sink_b.wait_for(1));
  ASSERT_TRUE(sink_a.wait_for(1));
  EXPECT_EQ(sink_b.snapshot()[0], (std::pair<PeerId, std::string>{0, "ping"}));
  EXPECT_EQ(sink_a.snapshot()[0], (std::pair<PeerId, std::string>{1, "pong"}));
  hub.stop_all();
}

TEST(ThreadTransportTest, SendToUnknownPeerDropped) {
  ThreadHub hub;
  Transport& a = hub.endpoint(0);
  Sink sink;
  a.start(sink.handler());
  EXPECT_FALSE(a.send(42, "void"));
  hub.stop_all();
}

TEST(ThreadTransportTest, ConcurrentSendersLoseNothing) {
  constexpr int kSenders = 4;
  constexpr int kPerSender = 250;
  ThreadHub hub;
  Transport& rx = hub.endpoint(0);
  for (PeerId id = 1; id <= kSenders; ++id) hub.endpoint(id);
  Sink sink;
  rx.start(sink.handler());

  std::vector<std::thread> threads;
  for (PeerId id = 1; id <= kSenders; ++id) {
    threads.emplace_back([&hub, id] {
      Transport& ep = hub.endpoint(id);
      for (int i = 0; i < kPerSender; ++i) {
        ASSERT_TRUE(ep.send(0, std::to_string(id) + ":" + std::to_string(i)));
      }
    });
  }
  for (auto& t : threads) t.join();

  ASSERT_TRUE(sink.wait_for(kSenders * kPerSender));
  // Per-sender FIFO and intact payloads.
  std::map<PeerId, int> next;
  for (const auto& [from, payload] : sink.snapshot()) {
    EXPECT_EQ(payload, std::to_string(from) + ":" + std::to_string(next[from]));
    ++next[from];
  }
  for (PeerId id = 1; id <= kSenders; ++id) EXPECT_EQ(next[id], kPerSender);
  hub.stop_all();
}

TEST(ThreadTransportTest, StoppedEndpointDropsSends) {
  ThreadHub hub;
  Transport& a = hub.endpoint(0);
  Transport& b = hub.endpoint(1);
  Sink sink;
  b.start(sink.handler());
  b.stop();
  EXPECT_FALSE(a.send(1, "after-stop"));
}

// --- TcpTransport ------------------------------------------------------------

TcpConfig loopback_config(PeerId self) {
  TcpConfig config;
  config.self = self;
  return config;
}

TEST(TcpTransportTest, DeliversBothDirections) {
  TcpTransport a(loopback_config(0)), b(loopback_config(1));
  const auto port_a = a.bind_and_listen();
  const auto port_b = b.bind_and_listen();
  a.set_peer(1, {"127.0.0.1", port_b});
  b.set_peer(0, {"127.0.0.1", port_a});
  Sink sink_a, sink_b;
  a.start(sink_a.handler());
  b.start(sink_b.handler());

  EXPECT_TRUE(a.send(1, "ping"));
  ASSERT_TRUE(sink_b.wait_for(1));
  EXPECT_TRUE(b.send(0, "pong"));
  ASSERT_TRUE(sink_a.wait_for(1));
  EXPECT_EQ(sink_b.snapshot()[0], (std::pair<PeerId, std::string>{0, "ping"}));
  EXPECT_EQ(sink_a.snapshot()[0], (std::pair<PeerId, std::string>{1, "pong"}));
  a.stop();
  b.stop();
}

TEST(TcpTransportTest, LargeFrameSurvivesPartialReads) {
  // 1 MiB payload: far above the 64 KiB read chunk, so reassembly from
  // partial reads is exercised for real.
  TcpTransport a(loopback_config(0)), b(loopback_config(1));
  b.set_peer(0, {"127.0.0.1", a.bind_and_listen()});
  b.bind_and_listen();
  Sink sink;
  a.start(sink.handler());
  b.start([](PeerId, std::string) {});

  std::string big(1u << 20, '\0');
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<char>(i * 31);
  EXPECT_TRUE(b.send(0, big));
  ASSERT_TRUE(sink.wait_for(1));
  EXPECT_EQ(sink.snapshot()[0].second, big);
  a.stop();
  b.stop();
}

TEST(TcpTransportTest, SendToDownPeerDropsAndRecovers) {
  TcpTransport a(loopback_config(0));
  a.bind_and_listen();
  // Point at a (very likely) closed port. The first send is accepted —
  // it rides the (asynchronous) dial attempt — and drops when the dial
  // fails; once the failure lands, the backoff gate refuses sends fast.
  a.set_peer(1, {"127.0.0.1", 1});
  Sink sink;
  a.start(sink.handler());
  EXPECT_TRUE(a.send(1, "lost"));
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (a.send(1, "probe")) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "dial to a closed port never failed";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(a.send(1, "still backoff"));
  EXPECT_GE(a.stats().conn_drops, 1);  // the in-flight frames were dropped

  // Bring a real peer up at a fresh address and repoint: next send heals.
  TcpTransport b(loopback_config(1));
  const auto port_b = b.bind_and_listen();
  Sink sink_b;
  b.start(sink_b.handler());
  a.set_peer(1, {"127.0.0.1", port_b});
  EXPECT_TRUE(a.send(1, "found"));
  ASSERT_TRUE(sink_b.wait_for(1));
  EXPECT_EQ(sink_b.snapshot()[0].second, "found");
  a.stop();
  b.stop();
}

/// Dial `port` with a plain blocking socket (test-side raw writer).
int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

void raw_write_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
}

TEST(TcpTransportTest, TornWritesFromRawSocketReassemble) {
  TcpTransport rx(loopback_config(0));
  const auto port = rx.bind_and_listen();
  Sink sink;
  rx.start(sink.handler());

  const int fd = raw_connect(port);
  const std::string stream =
      TcpTransport::handshake_frame(7) + frame("alpha") + frame("beta");
  // Dribble the whole stream a byte at a time; TCP_NODELAY-free raw socket
  // plus 1-byte writes forces the reader through every torn-frame path.
  for (std::size_t i = 0; i < stream.size(); ++i) {
    raw_write_all(fd, std::string_view(&stream[i], 1));
  }
  ASSERT_TRUE(sink.wait_for(2));
  const auto got = sink.snapshot();
  EXPECT_EQ(got[0], (std::pair<PeerId, std::string>{7, "alpha"}));
  EXPECT_EQ(got[1], (std::pair<PeerId, std::string>{7, "beta"}));
  ::close(fd);
  rx.stop();
}

TEST(TcpTransportTest, OversizedPrefixTearsDownStreamOnly) {
  TcpConfig config = loopback_config(0);
  config.max_frame = 1024;
  TcpTransport rx(config);
  const auto port = rx.bind_and_listen();
  Sink sink;
  rx.start(sink.handler());

  // Connection 1: handshake, one good frame, then a prefix claiming 2^40
  // bytes. The good frame arrives; the stream then dies without crashing
  // the transport, and nothing after the violation is delivered.
  const int bad = raw_connect(port);
  std::string huge_prefix;
  std::uint64_t len = 1ull << 40;
  while (len >= 0x80) {
    huge_prefix.push_back(static_cast<char>((len & 0x7F) | 0x80));
    len >>= 7;
  }
  huge_prefix.push_back(static_cast<char>(len));
  raw_write_all(bad, TcpTransport::handshake_frame(3) + frame("good") + huge_prefix +
                         std::string(64, 'z'));
  ASSERT_TRUE(sink.wait_for(1));

  // Connection 2 still works fine afterwards.
  const int ok = raw_connect(port);
  raw_write_all(ok, TcpTransport::handshake_frame(4) + frame("still-alive"));
  ASSERT_TRUE(sink.wait_for(2));
  const auto got = sink.snapshot();
  EXPECT_EQ(got[0], (std::pair<PeerId, std::string>{3, "good"}));
  EXPECT_EQ(got[1], (std::pair<PeerId, std::string>{4, "still-alive"}));
  ::close(bad);
  ::close(ok);
  rx.stop();
}

TEST(TcpTransportTest, NoHandshakeStreamBecomesClientConnection) {
  TcpTransport rx(loopback_config(0));
  const auto port = rx.bind_and_listen();
  Sink sink;
  rx.start(sink.handler());

  // A first frame that is not a pure-varint handshake marks a *client*
  // connection: both its frames (the first one included) are delivered
  // under a synthetic id from the client range, and send() to that id
  // answers over the same socket. A proper peer coexists untouched.
  const int client = raw_connect(port);
  raw_write_all(client, frame("\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff") + frame("x"));
  const int ok = raw_connect(port);
  raw_write_all(ok, TcpTransport::handshake_frame(9) + frame("legit"));
  ASSERT_TRUE(sink.wait_for(3));
  const auto got = sink.snapshot();
  ASSERT_EQ(got.size(), 3u);
  PeerId conn_id = sim::kNoNode;
  bool saw_legit = false;
  for (const auto& [from, payload] : got) {
    if (payload == "legit") {
      EXPECT_EQ(from, 9);
      saw_legit = true;
    } else {
      EXPECT_TRUE(TcpTransport::is_client_conn(from));
      conn_id = from;
    }
  }
  EXPECT_TRUE(saw_legit);
  ASSERT_TRUE(TcpTransport::is_client_conn(conn_id));

  // Reply path: a frame sent to the synthetic id arrives on the raw socket.
  ASSERT_TRUE(rx.send(conn_id, "pong"));
  std::string buf;
  char chunk[64];
  const std::string want = frame("pong");
  while (buf.size() < want.size()) {
    const ssize_t n = ::recv(client, chunk, sizeof chunk, 0);
    ASSERT_GT(n, 0);
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  EXPECT_EQ(buf, want);

  // The connection dies with the socket: once the reader notices the EOF
  // and unpublishes the synthetic id, a late reply reports false. Asserted
  // BEFORE stop() — afterwards send() short-circuits on stopping_ and the
  // check would pass vacuously.
  ::close(client);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool late_send_ok = true;
  while (std::chrono::steady_clock::now() < deadline) {
    late_send_ok = rx.send(conn_id, "late");
    if (!late_send_ok) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(late_send_ok) << "client teardown never unpublished the connection";

  ::close(ok);
  rx.stop();
}

}  // namespace
}  // namespace mcp::transport
