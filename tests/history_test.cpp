#include <gtest/gtest.h>

#include "cstruct/cset.hpp"
#include "cstruct/history.hpp"
#include "cstruct/serialize.hpp"
#include "cstruct/single_value.hpp"

namespace mcp::cstruct {
namespace {

const KeyConflict kKey;
const AlwaysConflict kAlways;
const NeverConflict kNever;

Command W(std::uint64_t id, const std::string& key) { return make_write(id, key, "v"); }
Command R(std::uint64_t id, const std::string& key) { return make_read(id, key); }

History H(const ConflictRelation* rel, std::vector<Command> cmds) {
  History h(rel);
  for (const auto& c : cmds) h.append(c);
  return h;
}

// --- append / contains ------------------------------------------------------

TEST(History, AppendIgnoresDuplicates) {
  History h(&kKey);
  h.append(W(1, "a"));
  h.append(W(1, "a"));
  EXPECT_EQ(h.size(), 1u);
  EXPECT_TRUE(h.contains(W(1, "a")));
  EXPECT_FALSE(h.contains(W(2, "a")));
}

// --- poset equality ---------------------------------------------------------

TEST(History, CommutingCommandsReorderEqual) {
  // Writes to different keys commute: the two linearizations denote the
  // same poset.
  auto h1 = H(&kKey, {W(1, "a"), W(2, "b")});
  auto h2 = H(&kKey, {W(2, "b"), W(1, "a")});
  EXPECT_EQ(h1, h2);
}

TEST(History, ConflictingCommandsOrderMatters) {
  auto h1 = H(&kKey, {W(1, "a"), W(2, "a")});
  auto h2 = H(&kKey, {W(2, "a"), W(1, "a")});
  EXPECT_NE(h1, h2);
}

TEST(History, ReadsOnSameKeyCommute) {
  auto h1 = H(&kKey, {R(1, "a"), R(2, "a")});
  auto h2 = H(&kKey, {R(2, "a"), R(1, "a")});
  EXPECT_EQ(h1, h2);
}

TEST(History, ReadWriteSameKeyConflict) {
  auto h1 = H(&kKey, {R(1, "a"), W(2, "a")});
  auto h2 = H(&kKey, {W(2, "a"), R(1, "a")});
  EXPECT_NE(h1, h2);
}

// --- extends (⊑) ------------------------------------------------------------

TEST(History, ExtendsLiteralPrefix) {
  auto shorter = H(&kAlways, {W(1, "a"), W(2, "a")});
  auto longer = H(&kAlways, {W(1, "a"), W(2, "a"), W(3, "a")});
  EXPECT_TRUE(longer.extends(shorter));
  EXPECT_FALSE(shorter.extends(longer));
  EXPECT_TRUE(shorter.extends(shorter));
}

TEST(History, ExtendsUpToCommutation) {
  auto base = H(&kKey, {W(1, "a"), W(2, "b")});
  auto ext = H(&kKey, {W(2, "b"), W(1, "a"), W(3, "a")});
  EXPECT_TRUE(ext.extends(base));
}

TEST(History, ExtendsFailsWhenOrderFlipped) {
  auto base = H(&kKey, {W(1, "a"), W(2, "a")});
  auto other = H(&kKey, {W(2, "a"), W(1, "a"), W(3, "b")});
  EXPECT_FALSE(other.extends(base));
}

TEST(History, EverythingExtendsBottom) {
  History bottom(&kKey);
  auto h = H(&kKey, {W(1, "a"), W(2, "a")});
  EXPECT_TRUE(h.extends(bottom));
  EXPECT_TRUE(bottom.extends(bottom));
}

// --- meet (⊓ / Prefix of §3.3.1) ---------------------------------------------

TEST(History, MeetLongestCommonPrefixTotalOrder) {
  auto h1 = H(&kAlways, {W(1, "a"), W(2, "a"), W(3, "a")});
  auto h2 = H(&kAlways, {W(1, "a"), W(2, "a"), W(4, "a")});
  auto expected = H(&kAlways, {W(1, "a"), W(2, "a")});
  EXPECT_EQ(h1.meet(h2), expected);
  EXPECT_EQ(h2.meet(h1), expected);
}

TEST(History, MeetIsIntersectionWhenNothingConflicts) {
  auto h1 = H(&kNever, {W(1, "a"), W(2, "a"), W(3, "a")});
  auto h2 = H(&kNever, {W(3, "a"), W(5, "a"), W(1, "a")});
  auto m = h1.meet(h2);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.contains(W(1, "a")));
  EXPECT_TRUE(m.contains(W(3, "a")));
}

TEST(History, MeetDropsDescendantsOfMissingCommand) {
  // h1 = w1(a) ≺ w3(a); h2 lacks w1, so w3 (a descendant of w1 in h1)
  // cannot be in the common prefix even though h2 contains w3.
  auto h1 = H(&kKey, {W(1, "a"), W(3, "a")});
  auto h2 = H(&kKey, {W(3, "a")});
  auto m = h1.meet(h2);
  EXPECT_EQ(m.size(), 0u);
}

TEST(History, MeetKeepsIndependentSibling) {
  auto h1 = H(&kKey, {W(1, "a"), W(2, "b")});
  auto h2 = H(&kKey, {W(2, "b"), W(9, "c")});
  auto m = h1.meet(h2);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.contains(W(2, "b")));
}

TEST(History, MeetWithBottomIsBottom) {
  auto h = H(&kKey, {W(1, "a")});
  History bottom(&kKey);
  EXPECT_EQ(h.meet(bottom), bottom);
  EXPECT_EQ(bottom.meet(h), bottom);
}

// --- compatible / join -------------------------------------------------------

TEST(History, CompatibleWhenCommuting) {
  auto h1 = H(&kKey, {W(1, "a")});
  auto h2 = H(&kKey, {W(2, "b")});
  EXPECT_TRUE(h1.compatible(h2));
  auto j = h1.join(h2);
  EXPECT_EQ(j.size(), 2u);
  EXPECT_TRUE(j.extends(h1));
  EXPECT_TRUE(j.extends(h2));
}

TEST(History, IncompatibleWhenConflictingOrdersDiffer) {
  auto h1 = H(&kKey, {W(1, "a"), W(2, "a")});
  auto h2 = H(&kKey, {W(2, "a"), W(1, "a")});
  EXPECT_FALSE(h1.compatible(h2));
  EXPECT_THROW(h1.join(h2), std::logic_error);
}

TEST(History, IncompatibleViaMissingAncestor) {
  // h1 has w1 before w2 (conflict); h2 contains w2 but not w1. Appending w1
  // to h2 would place it after w2 — incompatible with h1's order.
  auto h1 = H(&kKey, {W(1, "a"), W(2, "a")});
  auto h2 = H(&kKey, {W(2, "a"), W(3, "b")});
  EXPECT_FALSE(h1.compatible(h2));
  EXPECT_FALSE(h2.compatible(h1));
}

TEST(History, JoinOfPrefixChain) {
  auto h1 = H(&kAlways, {W(1, "a"), W(2, "a")});
  auto h2 = H(&kAlways, {W(1, "a"), W(2, "a"), W(3, "a")});
  EXPECT_EQ(h1.join(h2), h2);
  EXPECT_EQ(h2.join(h1), h2);
}

TEST(History, JoinMergesDivergentCommutingSuffixes) {
  auto h1 = H(&kKey, {W(1, "x"), W(2, "a")});
  auto h2 = H(&kKey, {W(1, "x"), W(3, "b")});
  auto j = h1.join(h2);
  EXPECT_EQ(j.size(), 3u);
  EXPECT_TRUE(j.extends(h1));
  EXPECT_TRUE(j.extends(h2));
}

TEST(History, PaperExampleDiamond) {
  // The diamond of §3.3.1: ⊥ → {a, b} → c, d where (say) c conflicts with
  // both a and b, d conflicts with b only, a ∥ b. Several linearizations
  // denote the same history.
  const Command a = W(1, "ka");
  const Command b = W(2, "kb");
  const Command c = make_write(3, "ka", "x");  // conflicts with a
  const Command d = make_write(4, "kb", "y");  // conflicts with b
  // Make c conflict with b as well by putting it on both keys? KeyConflict
  // is per-key; emulate the figure with a dedicated ordering instead:
  auto h1 = H(&kKey, {a, b, c, d});
  auto h2 = H(&kKey, {b, a, d, c});
  auto h3 = H(&kKey, {a, c, b, d});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1, h3);
}

// --- serialization -----------------------------------------------------------

TEST(History, EncodeDecodeRoundTrip) {
  auto h = H(&kKey, {W(1, "a"), R(2, "a"), W(3, "b")});
  const auto blob = encode(h);
  const auto back = decode(History(&kKey), blob);
  EXPECT_EQ(back, h);
  EXPECT_EQ(back.relation(), &kKey);
}

TEST(Command, EncodeDecodeRoundTrip) {
  Command c = make_write(77, "key:with|chars", "value 1:2", 5);
  const Command back = decode_command(encode(c));
  EXPECT_EQ(back.id, c.id);
  EXPECT_EQ(back.proposer, 5);
  EXPECT_EQ(back.key, c.key);
  EXPECT_EQ(back.value, c.value);
  EXPECT_EQ(back.type, OpType::kWrite);
}

// --- SingleValue -------------------------------------------------------------

TEST(SingleValue, ConsensusSemantics) {
  SingleValue bot;
  SingleValue v1{W(1, "a")};
  SingleValue v2{W(2, "a")};
  EXPECT_TRUE(bot.is_bottom());
  EXPECT_TRUE(v1.compatible(bot));
  EXPECT_FALSE(v1.compatible(v2));
  EXPECT_EQ(v1.meet(v2), bot);
  EXPECT_EQ(v1.join(bot), v1);
  EXPECT_THROW(v1.join(v2), std::logic_error);
  // Appending to a decided value is a no-op.
  SingleValue v = v1;
  v.append(W(9, "z"));
  EXPECT_EQ(v, v1);
}

TEST(SingleValue, SerializeRoundTrip) {
  SingleValue v{W(3, "k")};
  EXPECT_EQ(decode(SingleValue{}, encode(v)), v);
  EXPECT_EQ(decode(SingleValue{}, encode(SingleValue{})), SingleValue{});
}

// --- CSet ---------------------------------------------------------------------

TEST(CSet, LatticeOps) {
  CSet a;
  a.append(W(1, "x"));
  a.append(W(2, "x"));
  CSet b;
  b.append(W(2, "x"));
  b.append(W(3, "x"));
  EXPECT_TRUE(a.compatible(b));
  EXPECT_EQ(a.meet(b).size(), 1u);
  EXPECT_EQ(a.join(b).size(), 3u);
  EXPECT_TRUE(a.join(b).extends(a));
  EXPECT_TRUE(a.join(b).extends(b));
  EXPECT_TRUE(a.meet(b).contains(W(2, "x")));
}

TEST(CSet, SerializeRoundTrip) {
  CSet a;
  a.append(W(5, "k"));
  a.append(W(6, "j"));
  EXPECT_EQ(decode(CSet{}, encode(a)), a);
}

}  // namespace
}  // namespace mcp::cstruct
