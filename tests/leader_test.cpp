// Unit tests for the heartbeat failure detector / Ω leader oracle (§4.3's
// liveness substrate).

#include <gtest/gtest.h>

#include "paxos/leader.hpp"
#include "sim/simulation.hpp"

namespace mcp::paxos {
namespace {

using sim::NodeId;
using sim::Simulation;
using sim::Time;

/// Minimal process hosting just a failure detector.
struct Member final : sim::Process {
  std::unique_ptr<FailureDetector> fd;

  void setup(std::vector<NodeId> group, FailureDetector::Config cfg) {
    fd = std::make_unique<FailureDetector>(*this, std::move(group), cfg);
  }
  void on_start() override { fd->start(); }
  void on_message(NodeId from, const std::any& m) override { fd->handle_message(from, m); }
  void on_timer(int token) override { fd->handle_timer(token); }
  void on_recover() override { fd->start(); }
};

struct Fixture {
  Simulation sim{1};
  std::vector<Member*> members;

  explicit Fixture(int n, FailureDetector::Config cfg = {}) {
    std::vector<NodeId> group;
    for (int i = 0; i < n; ++i) group.push_back(i);
    for (int i = 0; i < n; ++i) {
      auto& m = sim.make_process<Member>();
      m.setup(group, cfg);
      members.push_back(&m);
    }
  }
};

TEST(FailureDetector, LowestIdLeadsWhenAllAlive) {
  Fixture fx(3);
  fx.sim.run_until(1000);
  for (const Member* m : fx.members) {
    EXPECT_EQ(m->fd->leader(), 0);
    EXPECT_TRUE(m->fd->is_alive(0));
    EXPECT_TRUE(m->fd->is_alive(2));
  }
}

TEST(FailureDetector, CrashedLeaderIsSuspectedAndReplaced) {
  Fixture fx(3);
  fx.sim.run_until(500);
  fx.sim.crash(0);
  fx.sim.run_until(500 + 175 + 100);  // past the suspicion timeout
  EXPECT_FALSE(fx.members[1]->fd->is_alive(0));
  EXPECT_EQ(fx.members[1]->fd->leader(), 1);
  EXPECT_EQ(fx.members[2]->fd->leader(), 1);
}

TEST(FailureDetector, RecoveredLeaderRegainsLeadership) {
  Fixture fx(3);
  fx.sim.run_until(500);
  fx.sim.crash(0);
  fx.sim.run_until(1000);
  ASSERT_EQ(fx.members[1]->fd->leader(), 1);
  fx.sim.recover(0);
  fx.sim.run_until(2000);
  EXPECT_EQ(fx.members[1]->fd->leader(), 0);
  EXPECT_EQ(fx.members[2]->fd->leader(), 0);
}

TEST(FailureDetector, PartitionCausesMutualSuspicion) {
  Fixture fx(2);
  fx.sim.run_until(500);
  fx.sim.network().cut_both(0, 1);
  fx.sim.run_until(1000);
  // Each side believes itself the lowest live member.
  EXPECT_EQ(fx.members[0]->fd->leader(), 0);
  EXPECT_EQ(fx.members[1]->fd->leader(), 1);
  fx.sim.network().restore_both(0, 1);
  fx.sim.run_until(1500);
  EXPECT_EQ(fx.members[1]->fd->leader(), 0);
}

TEST(FailureDetector, SlowLinksWithGenerousTimeoutStayStable) {
  sim::NetworkConfig net;
  net.min_delay = 10;
  net.max_delay = 40;  // < timeout (175) even with heartbeat interval 50
  Simulation sim(3, net);
  std::vector<NodeId> group{0, 1, 2};
  std::vector<Member*> members;
  for (int i = 0; i < 3; ++i) {
    auto& m = sim.make_process<Member>();
    m.setup(group, {});
    members.push_back(&m);
  }
  sim.run_until(5000);
  for (const Member* m : members) EXPECT_EQ(m->fd->leader(), 0);
}

TEST(FailureDetector, SelfIsAlwaysAlive) {
  Fixture fx(1);
  fx.sim.run_until(1000);
  EXPECT_TRUE(fx.members[0]->fd->is_alive(0));
  EXPECT_EQ(fx.members[0]->fd->leader(), 0);
}

}  // namespace
}  // namespace mcp::paxos
