#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace mcp::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(0, 1000000), b.uniform(0, 1000000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform(0, 1000000) != b.uniform(0, 1000000)) ++differing;
  }
  EXPECT_GT(differing, 40);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, SampleIndicesDistinctAndSorted) {
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    auto s = rng.sample_indices(10, 4);
    ASSERT_EQ(s.size(), 4u);
    for (std::size_t i = 1; i < s.size(); ++i) {
      EXPECT_LT(s[i - 1], s[i]);
      EXPECT_LT(s[i], 10u);
    }
  }
}

TEST(Rng, SampleIndicesFullSet) {
  Rng rng(3);
  auto s = rng.sample_indices(5, 5);
  EXPECT_EQ(s, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Rng, SampleIndicesRejectsOverdraw) {
  Rng rng(3);
  EXPECT_THROW(rng.sample_indices(3, 4), std::invalid_argument);
}

TEST(Rng, ExponentialPositiveWithMeanNearTarget) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.exponential(10.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 10.0, 0.5);
}

TEST(Histogram, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 5.0);
}

TEST(Histogram, EmptyThrows) {
  Histogram h;
  EXPECT_THROW(h.mean(), std::logic_error);
  EXPECT_THROW(h.min(), std::logic_error);
  EXPECT_THROW(h.percentile(0.5), std::logic_error);
}

TEST(Histogram, StddevOfConstantIsZero) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.add(4.2);
  EXPECT_NEAR(h.stddev(), 0.0, 1e-9);
}

TEST(Metrics, CountersDefaultZeroAndAccumulate) {
  Metrics m;
  EXPECT_EQ(m.counter("x"), 0);
  m.incr("x");
  m.incr("x", 4);
  EXPECT_EQ(m.counter("x"), 5);
}

TEST(Metrics, PrefixSum) {
  Metrics m;
  m.incr("acceptor.0.disk_writes", 3);
  m.incr("acceptor.1.disk_writes", 2);
  m.incr("acceptor.10.disk_writes", 1);
  m.incr("coord.0.disk_writes", 99);
  EXPECT_EQ(m.counter_prefix_sum("acceptor."), 6);
  EXPECT_EQ(m.counters_with_prefix("acceptor.").size(), 3u);
}

TEST(Metrics, HistogramAccess) {
  Metrics m;
  m.sample("lat", 1.0);
  m.sample("lat", 3.0);
  EXPECT_DOUBLE_EQ(m.histogram("lat").mean(), 2.0);
  EXPECT_THROW(m.histogram("nope"), std::out_of_range);
  EXPECT_TRUE(m.has_histogram("lat"));
  EXPECT_FALSE(m.has_histogram("nope"));
}

TEST(Histogram, BoundedFootprintAtScale) {
  // The log-bucket design is the point: 200k samples across six decades
  // land in fixed storage, with exact scalar stats and percentiles within
  // one bucket width. (The old vector-of-samples design this replaced grew
  // by 8 bytes per add.)
  Histogram h;
  Rng rng(99);
  double sum = 0;
  constexpr int kSamples = 200'000;
  for (int i = 0; i < kSamples; ++i) {
    // Log-uniform over [1, 1e6): every octave gets traffic.
    const double v = std::exp(rng.uniform01() * std::log(1e6));
    h.add(v);
    sum += v;
  }
  EXPECT_EQ(h.count(), static_cast<std::size_t>(kSamples));
  EXPECT_DOUBLE_EQ(h.sum(), sum);
  EXPECT_GE(h.min(), 1.0);
  EXPECT_LT(h.max(), 1e6);
  // Log-uniform percentiles are exp(q * ln(1e6)); 32 sub-buckets per
  // octave keep the representative within ~2.2%, so 3% relative slack.
  for (const double q : {0.5, 0.9, 0.99}) {
    const double expected = std::exp(q * std::log(1e6));
    EXPECT_NEAR(h.percentile(q), expected, expected * 0.03) << "q=" << q;
  }
}

TEST(Histogram, MergeMatchesCombinedDistribution) {
  Histogram a, b, combined;
  for (int i = 1; i <= 1000; ++i) {
    const double v = static_cast<double>(i);
    (i % 2 == 0 ? a : b).add(v);
    combined.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  EXPECT_NEAR(a.stddev(), combined.stddev(), 1e-9);
  for (const double q : {0.25, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.percentile(q), combined.percentile(q)) << "q=" << q;
  }
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  Histogram a, empty;
  a.add(7.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 7.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.max(), 7.0);
}

TEST(Histogram, UnderflowBucketCatchesZeroAndNegatives) {
  Histogram h;
  h.add(0.0);
  h.add(-3.0);
  h.add(1.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
  EXPECT_DOUBLE_EQ(h.max(), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1.0);
}

/// Concurrent writers and readers on one registry: the exact contract the
/// live node relies on (loop thread samples, reactor counts bytes, an
/// admin scrape snapshots everything). Run under TSan in CI.
TEST(MetricsThreaded, ConcurrentWritersAndScrapersAreSafe) {
  Metrics m;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load()) {
      (void)m.all_counters();
      for (const auto& [name, hist] : m.all_histograms()) {
        if (hist.count() > 0) (void)hist.percentile(0.9);
      }
      (void)m.counter_prefix_sum("t");
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&m, t] {
      const std::string counter = "t" + std::to_string(t) + ".ops";
      for (int i = 0; i < kPerThread; ++i) {
        m.incr(counter);
        m.incr("shared.ops");
        m.sample("shared.lat", static_cast<double>(i % 100));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  scraper.join();
  EXPECT_EQ(m.counter("shared.ops"), kThreads * kPerThread);
  EXPECT_EQ(m.counter_prefix_sum("t"), kThreads * kPerThread);
  EXPECT_EQ(m.histogram("shared.lat").count(),
            static_cast<std::size_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace mcp::util
