#include <gtest/gtest.h>

#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace mcp::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(0, 1000000), b.uniform(0, 1000000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform(0, 1000000) != b.uniform(0, 1000000)) ++differing;
  }
  EXPECT_GT(differing, 40);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, SampleIndicesDistinctAndSorted) {
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    auto s = rng.sample_indices(10, 4);
    ASSERT_EQ(s.size(), 4u);
    for (std::size_t i = 1; i < s.size(); ++i) {
      EXPECT_LT(s[i - 1], s[i]);
      EXPECT_LT(s[i], 10u);
    }
  }
}

TEST(Rng, SampleIndicesFullSet) {
  Rng rng(3);
  auto s = rng.sample_indices(5, 5);
  EXPECT_EQ(s, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Rng, SampleIndicesRejectsOverdraw) {
  Rng rng(3);
  EXPECT_THROW(rng.sample_indices(3, 4), std::invalid_argument);
}

TEST(Rng, ExponentialPositiveWithMeanNearTarget) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.exponential(10.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 10.0, 0.5);
}

TEST(Histogram, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 5.0);
}

TEST(Histogram, EmptyThrows) {
  Histogram h;
  EXPECT_THROW(h.mean(), std::logic_error);
  EXPECT_THROW(h.min(), std::logic_error);
  EXPECT_THROW(h.percentile(0.5), std::logic_error);
}

TEST(Histogram, StddevOfConstantIsZero) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.add(4.2);
  EXPECT_NEAR(h.stddev(), 0.0, 1e-9);
}

TEST(Metrics, CountersDefaultZeroAndAccumulate) {
  Metrics m;
  EXPECT_EQ(m.counter("x"), 0);
  m.incr("x");
  m.incr("x", 4);
  EXPECT_EQ(m.counter("x"), 5);
}

TEST(Metrics, PrefixSum) {
  Metrics m;
  m.incr("acceptor.0.disk_writes", 3);
  m.incr("acceptor.1.disk_writes", 2);
  m.incr("acceptor.10.disk_writes", 1);
  m.incr("coord.0.disk_writes", 99);
  EXPECT_EQ(m.counter_prefix_sum("acceptor."), 6);
  EXPECT_EQ(m.counters_with_prefix("acceptor.").size(), 3u);
}

TEST(Metrics, HistogramAccess) {
  Metrics m;
  m.sample("lat", 1.0);
  m.sample("lat", 3.0);
  EXPECT_DOUBLE_EQ(m.histogram("lat").mean(), 2.0);
  EXPECT_THROW(m.histogram("nope"), std::out_of_range);
  EXPECT_TRUE(m.has_histogram("lat"));
  EXPECT_FALSE(m.has_histogram("nope"));
}

}  // namespace
}  // namespace mcp::util
