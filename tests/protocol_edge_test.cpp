// Directed edge-case tests across the protocol engines: the §4.4
// sentinel-recovery nack path (a recovered acceptor forces rounds above its
// persisted block), duplicate-heavy networks, and zero-size corner cases.

#include <gtest/gtest.h>

#include <memory>

#include "classic/classic_paxos.hpp"
#include "genpaxos/engine.hpp"
#include "multicoord/mc_consensus.hpp"
#include "sim/simulation.hpp"

namespace mcp {
namespace {

using cstruct::History;
using cstruct::make_write;
using sim::NodeId;
using sim::Simulation;
using sim::Time;

const cstruct::KeyConflict kKeyRel;

struct GenFixture {
  std::unique_ptr<Simulation> sim;
  std::unique_ptr<paxos::RoundPolicy> policy;
  genpaxos::Config<History> config;
  std::vector<genpaxos::GenCoordinator<History>*> coordinators;
  std::vector<genpaxos::GenAcceptor<History>*> acceptors;
  std::vector<genpaxos::GenLearner<History>*> learners;
  std::vector<genpaxos::GenProposer<History>*> proposers;

  GenFixture(std::uint64_t seed, sim::NetworkConfig net, std::int64_t rnd_block = 8) {
    sim = std::make_unique<Simulation>(seed, net);
    std::vector<NodeId> coords{0, 1, 2};
    policy = paxos::PatternPolicy::multi_then_single(coords);
    config.acceptors = {3, 4, 5, 6, 7};
    config.learners = {8, 9};
    config.proposers = {10, 11};
    config.policy = policy.get();
    config.f = 2;
    config.e = 1;
    config.bottom = History(&kKeyRel);
    config.rnd_block = rnd_block;
    for (int i = 0; i < 3; ++i) {
      coordinators.push_back(&sim->make_process<genpaxos::GenCoordinator<History>>(config));
    }
    for (int i = 0; i < 5; ++i) {
      acceptors.push_back(&sim->make_process<genpaxos::GenAcceptor<History>>(config));
    }
    for (int i = 0; i < 2; ++i) {
      learners.push_back(&sim->make_process<genpaxos::GenLearner<History>>(config));
    }
    for (int i = 0; i < 2; ++i) {
      proposers.push_back(&sim->make_process<genpaxos::GenProposer<History>>(config));
    }
  }

  bool all_learned(std::size_t n) const {
    for (const auto* l : learners) {
      if (l->learned().size() < n) return false;
    }
    return true;
  }
};

TEST(ProtocolEdge, SentinelRecoveryForcesHigherRoundsViaNacks) {
  // §4.4: with volatile rnd, a recovered acceptor restores rnd to the top
  // of its persisted block — strictly above everything it promised. When a
  // quorum depends on recovered acceptors, coordinators must learn the new
  // floor through nacks and mint higher rounds.
  sim::NetworkConfig net;
  net.min_delay = 2;
  net.max_delay = 8;
  GenFixture fx(3, net, /*rnd_block=*/8);
  fx.sim->at(0, [&] { fx.proposers[0]->propose(make_write(1, "a", "v")); });
  ASSERT_TRUE(fx.sim->run_until([&] { return fx.all_learned(1); }, 1'000'000));

  // Take down 3 of 5 acceptors (no quorum without them); after recovery
  // every quorum contains at least one sentinel-rnd acceptor.
  fx.sim->crash(fx.acceptors[0]->id());
  fx.sim->crash(fx.acceptors[1]->id());
  fx.sim->crash(fx.acceptors[2]->id());
  fx.sim->at(fx.sim->now() + 100, [&] {
    fx.sim->recover(fx.acceptors[0]->id());
    fx.sim->recover(fx.acceptors[1]->id());
    fx.sim->recover(fx.acceptors[2]->id());
  });
  fx.sim->at(fx.sim->now() + 150, [&] { fx.proposers[1]->propose(make_write(2, "b", "v")); });
  ASSERT_TRUE(fx.sim->run_until([&] { return fx.all_learned(2); }, 5'000'000));

  // The recovered acceptors' sentinel is the next block boundary; progress
  // past it proves the nack path ran.
  EXPECT_GE(fx.acceptors[0]->rnd().count, 8);
  EXPECT_GE(fx.acceptors[0]->vrnd().count, 8);
  EXPECT_TRUE(fx.learners[0]->learned().compatible(fx.learners[1]->learned()));
}

TEST(ProtocolEdge, FullDuplicationIsHarmless) {
  // Every message delivered twice: dedup/idempotence must hold everywhere.
  sim::NetworkConfig net;
  net.min_delay = 1;
  net.max_delay = 10;
  net.duplication_probability = 1.0;
  GenFixture fx(5, net);
  for (std::size_t i = 0; i < 8; ++i) {
    fx.sim->at(static_cast<Time>(10 * i), [&, i] {
      fx.proposers[i % 2]->propose(make_write(i + 1, i % 2 ? "hot" : "k" + std::to_string(i), "v"));
    });
  }
  ASSERT_TRUE(fx.sim->run_until([&] { return fx.all_learned(8); }, 10'000'000));
  EXPECT_TRUE(fx.learners[0]->learned().compatible(fx.learners[1]->learned()));
  EXPECT_EQ(fx.learners[0]->learned().size(), 8u);
}

TEST(ProtocolEdge, ClassicFullDuplicationDecidesOnce) {
  sim::NetworkConfig net;
  net.min_delay = 1;
  net.max_delay = 10;
  net.duplication_probability = 1.0;
  Simulation s(9, net);
  classic::Config config;
  NodeId next = 0;
  for (int i = 0; i < 3; ++i) config.coordinators.push_back(next++);
  for (int i = 0; i < 5; ++i) config.acceptors.push_back(next++);
  for (int i = 0; i < 2; ++i) config.learners.push_back(next++);
  for (int i = 0; i < 2; ++i) config.proposers.push_back(next++);
  config.f = 2;
  std::vector<classic::Learner*> learners;
  for (int i = 0; i < 3; ++i) s.make_process<classic::Coordinator>(config);
  for (int i = 0; i < 5; ++i) s.make_process<classic::Acceptor>(config);
  for (int i = 0; i < 2; ++i) learners.push_back(&s.make_process<classic::Learner>(config));
  for (int i = 0; i < 2; ++i) {
    s.make_process<classic::Proposer>(config,
                                      make_write(static_cast<std::uint64_t>(100 + i), "k", "v"));
  }
  ASSERT_TRUE(s.run_until(
      [&] { return learners[0]->learned() && learners[1]->learned(); }, 2'000'000));
  EXPECT_EQ(learners[0]->value()->id, learners[1]->value()->id);
  EXPECT_EQ(s.metrics().counter("classic.decisions"), 2);  // one per learner
}

TEST(ProtocolEdge, EmptyWorkloadStaysQuiet) {
  // No proposals: the engine may run phase 1 but must learn nothing and
  // write no votes beyond round joins.
  sim::NetworkConfig net;
  net.min_delay = 1;
  net.max_delay = 5;
  GenFixture fx(1, net);
  fx.sim->run_until(5'000);
  EXPECT_EQ(fx.learners[0]->learned().size(), 0u);
  for (const auto* a : fx.acceptors) {
    EXPECT_EQ(a->vval().size(), 0u);
  }
}

TEST(ProtocolEdge, DuplicateProposalIsLearnedOnce) {
  sim::NetworkConfig net;
  net.min_delay = 1;
  net.max_delay = 8;
  GenFixture fx(2, net);
  const auto cmd = make_write(7, "k", "v");
  // The same command proposed by both proposers, several times.
  for (int rep = 0; rep < 3; ++rep) {
    fx.sim->at(10 * rep, [&] { fx.proposers[0]->propose(cmd); });
    fx.sim->at(10 * rep + 5, [&] { fx.proposers[1]->propose(cmd); });
  }
  ASSERT_TRUE(fx.sim->run_until([&] { return fx.all_learned(1); }, 1'000'000));
  fx.sim->run_until(fx.sim->now() + 2'000);
  EXPECT_EQ(fx.learners[0]->learned().size(), 1u);  // contained exactly once
}

TEST(ProtocolEdge, McConsensusDuplicationAndLossMix) {
  sim::NetworkConfig net;
  net.min_delay = 1;
  net.max_delay = 15;
  net.duplication_probability = 0.4;
  net.loss_probability = 0.15;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Simulation s(seed, net);
    std::vector<NodeId> coords{0, 1, 2};
    auto policy = paxos::PatternPolicy::multi_then_single(coords);
    multicoord::Config config;
    config.acceptors = {3, 4, 5, 6, 7};
    config.learners = {8, 9};
    config.proposers = {10, 11};
    config.policy = policy.get();
    config.f = 2;
    config.e = 1;
    std::vector<multicoord::Learner*> learners;
    for (int i = 0; i < 3; ++i) s.make_process<multicoord::Coordinator>(config);
    for (int i = 0; i < 5; ++i) s.make_process<multicoord::Acceptor>(config);
    for (int i = 0; i < 2; ++i) learners.push_back(&s.make_process<multicoord::Learner>(config));
    for (int i = 0; i < 2; ++i) {
      s.make_process<multicoord::Proposer>(
          config, make_write(static_cast<std::uint64_t>(100 + i), "k", "v"));
    }
    ASSERT_TRUE(s.run_until(
        [&] { return learners[0]->learned() && learners[1]->learned(); }, 5'000'000))
        << "seed " << seed;
    EXPECT_EQ(learners[0]->value()->id, learners[1]->value()->id);
  }
}

}  // namespace
}  // namespace mcp
