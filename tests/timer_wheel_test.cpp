// The runtime timer wheel must reproduce the simulator's timer contract
// (sim::EventQueue ordering + Simulation::post_timer cancellation): same-
// deadline timers fire in scheduling order, cancellation wins even at the
// deadline instant (including cancels issued by an earlier action of the
// same instant), and actions scheduling work due "now" run in the same
// drain. One fixed scenario runs against both implementations and the
// firing logs must match exactly; a real-clock Node run checks the wheel
// against actual time.

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/node.hpp"
#include "runtime/timer_wheel.hpp"
#include "sim/process.hpp"
#include "sim/simulation.hpp"
#include "transport/thread_transport.hpp"

namespace mcp {
namespace {

using runtime::TimerWheel;

/// (fire time, token) log both harnesses produce.
using Log = std::vector<std::pair<sim::Time, int>>;

/// The fixed scenario, expressed against any timer service exposing
/// set(delay, token) -> handle and cancel(handle), with `now` and a log
/// provided by the harness. Tokens: A=1, B=2, C=3, D=4, E=5, F=6, G=7.
///
///  t=0: set A@+5, B@+5, C@+3, D@+3; cancel D immediately.
///  t=3: C fires; its action cancels B (due t=5!) and sets E@+0 — E must
///       still fire at t=3, in the same drain, after C.
///       E's action sets F@+2 (due t=5).
///  t=5: A fires first (oldest), then F; B stays cancelled. A's action
///       sets G@+0, which joins the t=5 drain after F (scheduling order).
///
/// Expected log: (3,C) (3,E) (5,A) (5,F) (5,G).
template <typename SetFn, typename CancelFn>
void run_scenario_setup(SetFn set, CancelFn cancel, int* handle_b) {
  set(5, 1);                  // A
  *handle_b = set(5, 2);      // B
  set(3, 3);                  // C
  const int d = set(3, 4);    // D
  cancel(d);
}

Log expected_log() {
  return Log{{3, 3}, {3, 5}, {5, 1}, {5, 6}, {5, 7}};
}

// --- harness 1: the simulator -------------------------------------------------

class ScenarioProcess final : public sim::Process {
 public:
  explicit ScenarioProcess(Log* log) : log_(log) {}

  void on_start() override {
    run_scenario_setup([this](sim::Time d, int t) { return set_timer(d, t); },
                       [this](int h) { cancel_timer(h); }, &handle_b_);
  }

  void on_message(sim::NodeId, const std::any&) override {}

  void on_timer(int token) override {
    log_->emplace_back(now(), token);
    switch (token) {
      case 3:  // C: cancel B (same-instant rule is t=5, cross-instant here),
               // then schedule E due immediately.
        cancel_timer(handle_b_);
        set_timer(0, 5);
        break;
      case 5:  // E: schedule F two ticks out.
        set_timer(2, 6);
        break;
      case 1:  // A: schedule G due immediately — joins the current drain.
        set_timer(0, 7);
        break;
      default:
        break;
    }
  }

 private:
  Log* log_;
  int handle_b_ = 0;
};

TEST(TimerContractTest, SimulatorBaselineLog) {
  Log log;
  sim::Simulation s(/*seed=*/1);
  s.make_process<ScenarioProcess>(&log);
  s.run_until(100);
  EXPECT_EQ(log, expected_log());
}

// --- harness 2: the wheel, driven with synthetic time -------------------------

TEST(TimerContractTest, WheelMatchesSimulatorLog) {
  Log log;
  TimerWheel wheel;
  sim::Time now = 0;
  int handle_b = 0;

  // The wheel's schedule() takes absolute deadlines and raw actions; wrap
  // it into the scenario's set(delay, token) shape with the same token
  // behaviours as ScenarioProcess::on_timer.
  std::function<int(sim::Time, int)> set = [&](sim::Time delay, int token) {
    return wheel.schedule(now + delay, [&, token] {
      log.emplace_back(now, token);
      switch (token) {
        case 3:
          wheel.cancel(handle_b);
          set(0, 5);
          break;
        case 5:
          set(2, 6);
          break;
        case 1:
          set(0, 7);
          break;
        default:
          break;
      }
    });
  };
  run_scenario_setup([&](sim::Time d, int t) { return set(d, t); },
                     [&](int h) { wheel.cancel(h); }, &handle_b);

  // Drive the clock tick by tick, as the node loop does with real time.
  for (now = 0; now <= 10; ++now) wheel.fire_due(now);
  EXPECT_EQ(log, expected_log());
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelTest, SameInstantCancelFromEarlierAction) {
  // Two timers due at the same instant; the first one's action cancels the
  // second — it must not fire, exactly like Simulation::cancel_timer.
  TimerWheel wheel;
  Log log;
  int second = 0;
  wheel.schedule(5, [&] {
    log.emplace_back(5, 1);
    wheel.cancel(second);
  });
  second = wheel.schedule(5, [&] { log.emplace_back(5, 2); });
  wheel.fire_due(5);
  EXPECT_EQ(log, (Log{{5, 1}}));
}

TEST(TimerWheelTest, CancelFiredOrUnknownHandleIsNoop) {
  TimerWheel wheel;
  int fired = 0;
  const int h = wheel.schedule(1, [&] { ++fired; });
  wheel.fire_due(1);
  EXPECT_EQ(fired, 1);
  wheel.cancel(h);      // already fired
  wheel.cancel(12345);  // never existed
  wheel.cancel(-3);     // nonsense
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelTest, NextDeadlineTracksEarliest) {
  TimerWheel wheel;
  EXPECT_FALSE(wheel.next_deadline().has_value());
  wheel.schedule(9, [] {});
  wheel.schedule(4, [] {});
  ASSERT_TRUE(wheel.next_deadline().has_value());
  EXPECT_EQ(*wheel.next_deadline(), 4);
  wheel.fire_due(4);
  EXPECT_EQ(*wheel.next_deadline(), 9);
}

// --- harness 3: a live Node against the real clock ----------------------------

class RealClockProbe final : public sim::Process {
 public:
  void on_start() override {
    // Out-of-order scheduling, one cancellation; expect 1, 2, 3 by time.
    set_timer(30, 3);
    set_timer(10, 1);
    const int doomed = set_timer(15, 9);
    set_timer(20, 2);
    cancel_timer(doomed);
  }
  void on_message(sim::NodeId, const std::any&) override {}
  void on_timer(int token) override { fired.push_back(token); }

  std::vector<int> fired;
};

TEST(TimerContractTest, RealClockNodeFiresInOrder) {
  transport::ThreadHub hub;
  runtime::NodeOptions options;
  options.id = 0;
  options.tick = std::chrono::microseconds(500);  // 30 ticks = 15 ms
  runtime::Node node(options, hub.endpoint(0));
  auto& probe = node.make_process<RealClockProbe>();
  node.start();
  // Wait (generously — sanitized CI is slow) for all three to fire.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (node.call([&] { return probe.fired.size(); }) >= 3) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  node.stop();
  EXPECT_EQ(probe.fired, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace mcp
