// Network-partition tests: quorum availability and safety across splits and
// healing, for both the consensus engine and the generalized engine. The
// FLP-inspired ground rules: a side holding an acceptor quorum (and a live
// coordinator quorum) may decide; the minority side must not; healing must
// reconcile without ever contradicting a decision.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "genpaxos/engine.hpp"
#include "multicoord/mc_consensus.hpp"
#include "sim/simulation.hpp"

namespace mcp {
namespace {

using cstruct::History;
using cstruct::make_write;
using sim::NodeId;
using sim::Simulation;
using sim::Time;

const cstruct::KeyConflict kKeyRel;

struct McFixture {
  std::unique_ptr<Simulation> sim;
  std::unique_ptr<paxos::RoundPolicy> policy;
  multicoord::Config config;
  std::vector<multicoord::Coordinator*> coordinators;
  std::vector<multicoord::Acceptor*> acceptors;
  std::vector<multicoord::Learner*> learners;
  std::vector<multicoord::Proposer*> proposers;

  explicit McFixture(std::uint64_t seed) {
    sim::NetworkConfig net;
    net.min_delay = 2;
    net.max_delay = 8;
    sim = std::make_unique<Simulation>(seed, net);
    std::vector<NodeId> coords{0, 1, 2};
    policy = paxos::PatternPolicy::multi_then_single(coords);
    config.acceptors = {3, 4, 5, 6, 7};
    config.learners = {8, 9};
    config.proposers = {10, 11};
    config.policy = policy.get();
    config.f = 2;
    config.e = 1;
    for (int i = 0; i < 3; ++i) {
      coordinators.push_back(&sim->make_process<multicoord::Coordinator>(config));
    }
    for (int i = 0; i < 5; ++i) {
      acceptors.push_back(&sim->make_process<multicoord::Acceptor>(config));
    }
    for (int i = 0; i < 2; ++i) {
      learners.push_back(&sim->make_process<multicoord::Learner>(config));
    }
    for (int i = 0; i < 2; ++i) {
      proposers.push_back(&sim->make_process<multicoord::Proposer>(
          config, make_write(static_cast<std::uint64_t>(100 + i), "k", "v")));
    }
  }

  /// Cut every link between `island` and the rest of the world.
  void isolate(const std::vector<NodeId>& island) {
    for (NodeId a : island) {
      for (NodeId b : sim->all_ids()) {
        const bool b_inside =
            std::find(island.begin(), island.end(), b) != island.end();
        if (!b_inside) sim->network().cut_both(a, b);
      }
    }
  }
  void heal_all() {
    for (NodeId a : sim->all_ids()) {
      for (NodeId b : sim->all_ids()) sim->network().restore_both(a, b);
    }
  }
};

TEST(Partition, MinorityAcceptorIslandCannotDecide) {
  McFixture fx(1);
  // 3 of 5 acceptors (a quorum) are cut away from everything else — the
  // remaining 2 cannot form a quorum, so nothing can be learned.
  fx.sim->at(0, [&] { fx.isolate({3, 4, 5}); });
  fx.sim->run_until(100'000);
  EXPECT_FALSE(fx.learners[0]->learned());
  EXPECT_FALSE(fx.learners[1]->learned());
}

TEST(Partition, MajoritySideDecidesDespiteIsolatedMinority) {
  McFixture fx(2);
  // Cut off one coordinator and two acceptors: the main side keeps a
  // coordinator quorum (2 of 3) and an acceptor quorum (3 of 5).
  fx.sim->at(0, [&] { fx.isolate({2, 6, 7}); });
  const bool ok = fx.sim->run_until(
      [&] { return fx.learners[0]->learned() && fx.learners[1]->learned(); }, 2'000'000);
  ASSERT_TRUE(ok);
  EXPECT_EQ(fx.learners[0]->value()->id, fx.learners[1]->value()->id);
}

TEST(Partition, HealedMinorityLearnsTheSameDecision) {
  McFixture fx(3);
  fx.sim->at(0, [&] { fx.isolate({2, 6, 7}); });
  ASSERT_TRUE(fx.sim->run_until([&] { return fx.learners[0]->learned(); }, 2'000'000));
  const auto decided = fx.learners[0]->value()->id;
  fx.sim->at(fx.sim->now() + 10, [&] { fx.heal_all(); });
  // After healing, retransmissions bring the isolated acceptors back in
  // sync and any new round must re-decide the same value.
  fx.sim->at(fx.sim->now() + 50, [&] { fx.coordinators[0]->start_round(10); });
  ASSERT_TRUE(fx.sim->run_until(
      [&] {
        return fx.learners[0]->learned() && fx.learners[1]->learned();
      },
      4'000'000));
  EXPECT_EQ(fx.learners[0]->value()->id, decided);
  EXPECT_EQ(fx.learners[1]->value()->id, decided);
}

TEST(Partition, FlappingLinkEventuallyDecides) {
  McFixture fx(4);
  // The link between the leader and the acceptors flaps several times.
  for (int k = 0; k < 6; ++k) {
    fx.sim->at(100 * k, [&] {
      for (NodeId a : fx.config.acceptors) fx.sim->network().cut_both(0, a);
    });
    fx.sim->at(100 * k + 50, [&] {
      for (NodeId a : fx.config.acceptors) fx.sim->network().restore_both(0, a);
    });
  }
  const bool ok = fx.sim->run_until(
      [&] { return fx.learners[0]->learned() && fx.learners[1]->learned(); }, 3'000'000);
  ASSERT_TRUE(ok);
  EXPECT_EQ(fx.learners[0]->value()->id, fx.learners[1]->value()->id);
}

// --- generalized engine under partitions ------------------------------------------

TEST(Partition, GeneralizedStreamSurvivesRollingPartitions) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    sim::NetworkConfig net;
    net.min_delay = 2;
    net.max_delay = 10;
    Simulation s(seed, net);
    std::vector<NodeId> coords{0, 1, 2};
    auto policy = paxos::PatternPolicy::multi_then_single(coords);
    genpaxos::Config<History> config;
    config.acceptors = {3, 4, 5, 6, 7};
    config.learners = {8, 9};
    config.proposers = {10, 11};
    config.policy = policy.get();
    config.f = 2;
    config.e = 1;
    config.bottom = History(&kKeyRel);
    for (int i = 0; i < 3; ++i) s.make_process<genpaxos::GenCoordinator<History>>(config);
    std::vector<genpaxos::GenAcceptor<History>*> acceptors;
    for (int i = 0; i < 5; ++i) {
      acceptors.push_back(&s.make_process<genpaxos::GenAcceptor<History>>(config));
    }
    std::vector<genpaxos::GenLearner<History>*> learners;
    for (int i = 0; i < 2; ++i) {
      learners.push_back(&s.make_process<genpaxos::GenLearner<History>>(config));
    }
    std::vector<genpaxos::GenProposer<History>*> proposers;
    for (int i = 0; i < 2; ++i) {
      proposers.push_back(&s.make_process<genpaxos::GenProposer<History>>(config));
    }

    constexpr std::size_t kCount = 10;
    for (std::size_t i = 0; i < kCount; ++i) {
      s.at(static_cast<Time>(120 * i), [&, i] {
        proposers[i % 2]->propose(
            make_write(i + 1, i % 2 ? "hot" : "k" + std::to_string(i), "v"));
      });
    }
    // Rolling partitions: each acceptor is isolated for a 150-tick window.
    for (int k = 0; k < 5; ++k) {
      const NodeId victim = acceptors[static_cast<std::size_t>(k)]->id();
      s.at(100 + 200 * k, [&s, victim] {
        s.network().isolate(victim, s.all_ids());
      });
      s.at(100 + 200 * k + 150, [&s, victim] {
        s.network().heal(victim, s.all_ids());
      });
    }
    const bool ok = s.run_until(
        [&] {
          for (const auto* l : learners) {
            if (l->learned().size() < kCount) return false;
          }
          return true;
        },
        30'000'000);
    ASSERT_TRUE(ok) << "seed " << seed;
    EXPECT_TRUE(learners[0]->learned().compatible(learners[1]->learned()));
  }
}

}  // namespace
}  // namespace mcp
