// Torture tests for storage::FileStorage — the crash shapes a real disk
// can leave behind: torn tails, corrupt records, lost (truncated) fsyncs,
// snapshot + suffix replay — plus equivalence with the simulator's
// in-memory medium on identical op sequences.

#include "storage/file_storage.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "sim/storage.hpp"

namespace mcp {
namespace {

namespace fs = std::filesystem;

class FileStorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           (std::string("mcpaxos_fs_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }
  fs::path log_path() const { return dir_ / storage::FileStorage::kLogName; }
  fs::path snapshot_path() const {
    return dir_ / storage::FileStorage::kSnapshotName;
  }

  /// Overwrite one byte of a file at `offset` from the end.
  void corrupt_byte_from_end(const fs::path& path, std::size_t offset) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::size_t>(f.tellg());
    ASSERT_GT(size, offset);
    f.seekp(static_cast<std::streamoff>(size - 1 - offset));
    char c = 0;
    f.seekg(static_cast<std::streamoff>(size - 1 - offset));
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x5a);
    f.seekp(static_cast<std::streamoff>(size - 1 - offset));
    f.write(&c, 1);
  }

  fs::path dir_;
};

TEST_F(FileStorageTest, RoundTripAndReopen) {
  {
    storage::FileStorage st(dir());
    EXPECT_FALSE(st.recovered());
    st.write("vrnd", "17");
    st.write("vval", std::string("\x00\x01payload\xff", 10));
    st.write_int("rnd_block", 4);
    EXPECT_EQ(st.write_count(), 3);
  }
  storage::FileStorage st(dir());
  EXPECT_TRUE(st.recovered());
  EXPECT_EQ(st.replayed_records(), 3);
  EXPECT_EQ(st.read("vrnd"), "17");
  EXPECT_EQ(st.read("vval"), std::string("\x00\x01payload\xff", 10));
  EXPECT_EQ(st.read_int("rnd_block"), 4);
  // Replay must not count as writes: write_count() is the §4.4 quantity.
  EXPECT_EQ(st.write_count(), 0);
}

TEST_F(FileStorageTest, OverwritesKeepLastValue) {
  {
    storage::FileStorage st(dir());
    for (int i = 0; i < 10; ++i) st.write("k", "v" + std::to_string(i));
  }
  storage::FileStorage st(dir());
  EXPECT_EQ(st.read("k"), "v9");
  EXPECT_EQ(st.replayed_records(), 10);
}

TEST_F(FileStorageTest, TornTailGarbageIsDroppedAtRecovery) {
  {
    storage::FileStorage st(dir());
    st.write("a", "1");
    st.write("b", "2");
  }
  // A crash mid-append leaves a partial record: model it as trailing junk
  // that is not even a complete varint-framed record.
  {
    std::ofstream f(log_path(), std::ios::app | std::ios::binary);
    f << "\x1fgarbage-torn-tail";
  }
  storage::FileStorage st(dir());
  EXPECT_TRUE(st.recovered());
  EXPECT_EQ(st.replayed_records(), 2);
  EXPECT_EQ(st.read("a"), "1");
  EXPECT_EQ(st.read("b"), "2");
  // The torn tail was truncated away: appending must work and survive.
  st.write("c", "3");
  storage::FileStorage again(dir());
  EXPECT_EQ(again.replayed_records(), 3);
  EXPECT_EQ(again.read("c"), "3");
}

TEST_F(FileStorageTest, CorruptTailChecksumDropsOnlyThatRecord) {
  {
    storage::FileStorage st(dir());
    st.write("a", "1");
    st.write("b", "2");
    st.write("c", "3");
  }
  // Flip a bit inside the last record's checksum.
  corrupt_byte_from_end(log_path(), 1);
  storage::FileStorage st(dir());
  EXPECT_EQ(st.replayed_records(), 2);
  EXPECT_EQ(st.read("a"), "1");
  EXPECT_EQ(st.read("b"), "2");
  EXPECT_EQ(st.read("c"), std::nullopt);
}

TEST_F(FileStorageTest, LostTailWriteViaTruncation) {
  // The write-then-truncate model of a partial fsync: bytes the kernel
  // never persisted simply aren't there after the "crash".
  {
    storage::FileStorage st(dir());
    st.write("a", "1");
    st.write("b", "2");
    st.write("c", "3");
  }
  const auto full = fs::file_size(log_path());
  fs::resize_file(log_path(), full - 3);
  storage::FileStorage st(dir());
  EXPECT_EQ(st.replayed_records(), 2);
  EXPECT_EQ(st.read("b"), "2");
  EXPECT_EQ(st.read("c"), std::nullopt);
  // And the truncated tail was cleaned: new writes recover fine.
  st.write("d", "4");
  storage::FileStorage again(dir());
  EXPECT_EQ(again.read("d"), "4");
}

TEST_F(FileStorageTest, SnapshotBoundsReplay) {
  storage::FileStorageOptions options;
  options.snapshot_every = 8;
  {
    storage::FileStorage st(dir(), options);
    for (int i = 0; i < 30; ++i) {
      st.write("k" + std::to_string(i % 5), "v" + std::to_string(i));
    }
    EXPECT_GE(st.snapshots_written(), 3);
  }
  ASSERT_TRUE(fs::exists(snapshot_path()));
  storage::FileStorage st(dir(), options);
  EXPECT_TRUE(st.recovered());
  EXPECT_TRUE(st.loaded_snapshot());
  // Replay is bounded by the snapshot cadence, not the node's lifetime.
  EXPECT_LE(st.replayed_records(), options.snapshot_every);
  for (int i = 25; i < 30; ++i) {
    EXPECT_EQ(st.read("k" + std::to_string(i % 5)), "v" + std::to_string(i));
  }
}

TEST_F(FileStorageTest, CorruptSnapshotKeepsLogSuffix) {
  storage::FileStorageOptions options;
  options.snapshot_every = 4;
  {
    storage::FileStorage st(dir(), options);
    for (int i = 0; i < 4; ++i) st.write("snap" + std::to_string(i), "s");
    // Snapshot taken (log truncated); these live only in the log suffix.
    st.write("suffix", "x");
  }
  // Flip the last byte: the trailing whole-image checksum. Every entry's
  // own checksum still holds, so recovery salvages them all — and the
  // fsync'd log suffix is still replayed on top.
  corrupt_byte_from_end(snapshot_path(), 0);
  storage::FileStorage st(dir(), options);
  EXPECT_TRUE(st.loaded_snapshot());
  EXPECT_EQ(st.snapshot_entries_dropped(), 0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(st.read("snap" + std::to_string(i)), "s");
  }
  EXPECT_EQ(st.read("suffix"), "x");
}

TEST_F(FileStorageTest, FlippedSnapshotByteDiscardsOneEntryNotTheImage) {
  storage::FileStorageOptions options;
  options.snapshot_every = 8;
  {
    storage::FileStorage st(dir(), options);
    for (int i = 0; i < 8; ++i) {
      st.write("key" + std::to_string(i), "value" + std::to_string(i));
    }
    EXPECT_EQ(st.snapshots_written(), 1);
  }
  // Flip one byte inside some entry's payload, clear of the image's
  // trailing checksum and of the last entry's frame bytes: that entry's
  // checksum now disagrees, every other entry's still holds.
  corrupt_byte_from_end(snapshot_path(), 40);
  storage::FileStorage st(dir(), options);
  EXPECT_TRUE(st.recovered());
  EXPECT_TRUE(st.loaded_snapshot());
  EXPECT_EQ(st.snapshot_entries_dropped(), 1);
  int present = 0;
  for (int i = 0; i < 8; ++i) {
    const auto got = st.read("key" + std::to_string(i));
    if (got.has_value()) {
      EXPECT_EQ(*got, "value" + std::to_string(i));
      ++present;
    }
  }
  EXPECT_EQ(present, 7) << "exactly the rotted entry is gone";
}

TEST_F(FileStorageTest, SnapshotSalvageNeverPoisonsTheCache) {
  // Scribble over a whole region (many entries, frames included): recovery
  // must keep only entries whose checksums hold — whatever survives must
  // read back exactly what was written, never garbage.
  storage::FileStorageOptions options;
  options.snapshot_every = 16;
  {
    storage::FileStorage st(dir(), options);
    for (int i = 0; i < 16; ++i) {
      st.write("key" + std::to_string(i), "value" + std::to_string(i));
    }
  }
  {
    std::fstream f(snapshot_path(), std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(10);
    const std::string junk(60, '\x5a');
    f.write(junk.data(), static_cast<std::streamoff>(junk.size()));
  }
  storage::FileStorage st(dir(), options);
  EXPECT_GT(st.snapshot_entries_dropped(), 0);
  for (int i = 0; i < 16; ++i) {
    const auto got = st.read("key" + std::to_string(i));
    if (got.has_value()) {
      EXPECT_EQ(*got, "value" + std::to_string(i)) << i;
    }
  }
}

TEST_F(FileStorageTest, EquivalentToInMemoryOnSameOpSequence) {
  // Interleaved puts/overwrites/int-writes applied to both media, with a
  // crash/reopen in the middle for the file side — every read must agree.
  storage::FileStorageOptions options;
  options.snapshot_every = 6;  // force snapshot + suffix on reopen
  sim::StableStorage mem;
  std::vector<std::string> keys;
  auto apply = [&](sim::StableStorage& st, int i) {
    const std::string key = "key" + std::to_string(i % 7);
    if (i % 3 == 0) {
      st.write_int(key, i * 11);
    } else {
      st.write(key, "value-" + std::to_string(i));
    }
  };
  {
    storage::FileStorage file(dir(), options);
    for (int i = 0; i < 17; ++i) {
      apply(mem, i);
      apply(file, i);
    }
    EXPECT_EQ(file.write_count(), mem.write_count());
  }
  storage::FileStorage file(dir(), options);
  for (int i = 17; i < 25; ++i) {
    apply(mem, i);
    apply(file, i);
  }
  for (int i = 0; i < 7; ++i) {
    const std::string key = "key" + std::to_string(i);
    EXPECT_EQ(file.read(key), mem.read(key)) << key;
  }
  EXPECT_EQ(file.read("absent"), mem.read("absent"));
}

TEST_F(FileStorageTest, WipeDestroysDurableState) {
  {
    storage::FileStorage st(dir());
    st.write("a", "1");
    st.wipe();
    EXPECT_EQ(st.read("a"), std::nullopt);
    st.write("after", "wipe");
  }
  storage::FileStorage st(dir());
  EXPECT_EQ(st.read("a"), std::nullopt);
  EXPECT_EQ(st.read("after"), "wipe");
}

TEST_F(FileStorageTest, FreshDirIsNotARecovery) {
  storage::FileStorage st(dir());
  EXPECT_FALSE(st.recovered());
  EXPECT_EQ(st.replayed_records(), 0);
  EXPECT_FALSE(st.loaded_snapshot());
}

}  // namespace
}  // namespace mcp
