#include <gtest/gtest.h>

#include "cstruct/history.hpp"
#include "cstruct/single_value.hpp"
#include "paxos/ballot.hpp"
#include "paxos/proved_safe.hpp"
#include "paxos/quorum.hpp"
#include "paxos/round_config.hpp"

namespace mcp::paxos {
namespace {

using cstruct::Command;
using cstruct::History;
using cstruct::KeyConflict;
using cstruct::make_write;
using cstruct::SingleValue;

// --- Ballot ------------------------------------------------------------------

TEST(Ballot, LexicographicOrder) {
  const Ballot a{1, 0, 0, RoundType::kSingleCoord};
  const Ballot b{1, 1, 0, RoundType::kSingleCoord};
  const Ballot c{2, 0, 0, RoundType::kFast};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(Ballot::zero(), a);
  EXPECT_EQ(a, (Ballot{1, 0, 0, RoundType::kMultiCoord}));  // type never orders
}

TEST(Ballot, IncarnationDistinguishesRecoveredCoordinator) {
  const Ballot before{3, 2, 0, RoundType::kSingleCoord};
  const Ballot after{3, 2, 1, RoundType::kSingleCoord};
  EXPECT_LT(before, after);  // §4.4: recovered coordinator = fresh identity
}

TEST(Ballot, ZeroIsFloor) {
  EXPECT_TRUE(Ballot::zero().is_zero());
  EXPECT_FALSE((Ballot{1, 0, 0, RoundType::kFast}).is_zero());
}

TEST(Ballot, EncodeDecodeRoundTrip) {
  const Ballot b{42, 3, 7, RoundType::kFast};
  const Ballot back = decode_ballot(encode(b));
  EXPECT_EQ(back, b);
  EXPECT_EQ(back.type, RoundType::kFast);
  EXPECT_THROW(decode_ballot("garbage"), std::invalid_argument);
}

// --- QuorumSystem -------------------------------------------------------------

std::vector<sim::NodeId> ids(int n) {
  std::vector<sim::NodeId> out;
  for (int i = 0; i < n; ++i) out.push_back(i);
  return out;
}

TEST(QuorumSystem, ClassicAndFastSizes) {
  const QuorumSystem qs(ids(5), 2, 1);
  EXPECT_EQ(qs.classic_quorum_size(), 3u);
  EXPECT_EQ(qs.fast_quorum_size(), 4u);
  EXPECT_TRUE(qs.meets_classic_requirement());
  EXPECT_TRUE(qs.meets_fast_requirement());  // 5 > 2·1 + 2
}

TEST(QuorumSystem, FastRequirementRejected) {
  const QuorumSystem qs(ids(5), 2, 2);  // 5 > 2·2+2 is false
  EXPECT_TRUE(qs.meets_classic_requirement());
  EXPECT_FALSE(qs.meets_fast_requirement());
}

TEST(QuorumSystem, PaperQuorumFormulas) {
  // §2.2: with majority classic quorums, fast quorums need ⌈3n/4⌉-ish
  // sizes; check the ceiling formula n − E with max E s.t. n > 2E + F.
  for (int n = 3; n <= 13; ++n) {
    const auto qs = QuorumSystem::with_max_tolerance(ids(n));
    EXPECT_TRUE(qs.meets_fast_requirement()) << "n=" << n;
    // Classic quorums are majorities.
    EXPECT_EQ(qs.classic_quorum_size(), static_cast<std::size_t>(n / 2 + 1));
    // Fast quorums must satisfy the Fast Learning Theorem bound: any two
    // fast quorums + one classic quorum intersect.
    EXPECT_GT(2 * qs.fast_quorum_size() + qs.classic_quorum_size(),
              2 * static_cast<std::size_t>(n));
  }
}

TEST(QuorumSystem, InvalidConfigsThrow) {
  EXPECT_THROW(QuorumSystem(ids(0), 0, 0), std::invalid_argument);
  EXPECT_THROW(QuorumSystem(ids(3), -1, 0), std::invalid_argument);
  EXPECT_THROW(QuorumSystem(ids(3), 1, 2), std::invalid_argument);  // E > F
  EXPECT_THROW(QuorumSystem(ids(3), 3, 0), std::invalid_argument);  // F >= n
}

TEST(QuorumSystem, ProvedSafeThreshold) {
  const QuorumSystem qs(ids(5), 2, 1);
  // |Q| = n−F = 3; classic k: |Q|−F = 1 (the paper's n−2F).
  EXPECT_EQ(qs.proved_safe_threshold(3, false), 1u);
  // fast k: |Q|−E = 2 (n−F−E).
  EXPECT_EQ(qs.proved_safe_threshold(3, true), 2u);
  // A quorum small enough that a k-quorum could dodge it entirely is a
  // configuration error.
  EXPECT_THROW(qs.proved_safe_threshold(2, false), std::logic_error);
}

TEST(Combinations, EnumeratesAllSubsets) {
  const auto subsets = combinations(5, 3);
  EXPECT_EQ(subsets.size(), 10u);  // C(5,3)
  for (const auto& s : subsets) {
    EXPECT_EQ(s.size(), 3u);
    EXPECT_LT(s[0], s[1]);
    EXPECT_LT(s[1], s[2]);
  }
  EXPECT_EQ(combinations(4, 0).size(), 1u);  // the empty subset
  EXPECT_TRUE(combinations(3, 4).empty());
}

// --- RoundPolicy ---------------------------------------------------------------

TEST(PatternPolicy, AlwaysSingleMatchesClassicPaxos) {
  auto policy = PatternPolicy::always_single({10, 11, 12});
  const Ballot b = policy->make_ballot(5, 11, 0);
  EXPECT_EQ(b.type, RoundType::kSingleCoord);
  const RoundInfo info = policy->info(b);
  EXPECT_EQ(info.coordinators, (std::vector<sim::NodeId>{11}));
  EXPECT_EQ(info.coord_quorum_size, 1u);
}

TEST(PatternPolicy, AlwaysMultiUsesMajorityCoordQuorums) {
  auto policy = PatternPolicy::always_multi({10, 11, 12});
  const Ballot b = policy->make_ballot(1, 10, 0);
  EXPECT_EQ(b.type, RoundType::kMultiCoord);
  const RoundInfo info = policy->info(b);
  EXPECT_EQ(info.coordinators.size(), 3u);
  EXPECT_EQ(info.coord_quorum_size, 2u);
  EXPECT_TRUE(info.is_coord(11));
  EXPECT_FALSE(info.is_coord(99));
}

TEST(PatternPolicy, MultiThenSingleLadder) {
  auto policy = PatternPolicy::multi_then_single({10, 11, 12});
  EXPECT_EQ(policy->type_of(1), RoundType::kMultiCoord);
  EXPECT_EQ(policy->type_of(2), RoundType::kSingleCoord);
  EXPECT_EQ(policy->type_of(3), RoundType::kMultiCoord);
}

TEST(PatternPolicy, FastLadders) {
  auto coordinated = PatternPolicy::fast_then_single({10});
  EXPECT_EQ(coordinated->type_of(1), RoundType::kFast);
  EXPECT_EQ(coordinated->type_of(2), RoundType::kSingleCoord);
  auto uncoordinated = PatternPolicy::always_fast({10});
  EXPECT_EQ(uncoordinated->type_of(1), RoundType::kFast);
  EXPECT_EQ(uncoordinated->type_of(2), RoundType::kFast);
}

TEST(PatternPolicy, RejectsNonIntersectingCoordQuorums) {
  EXPECT_THROW(PatternPolicy({RoundType::kMultiCoord}, {1, 2, 3, 4}, 2),
               std::invalid_argument);
}

// --- pick_single_value (Classic/Fast picking rule, §2.1–2.2) -------------------

Command cmd(std::uint64_t id) { return make_write(id, "k", "v"); }

TEST(PickSingleValue, FreeWhenNoVotes) {
  const QuorumSystem qs(ids(5), 2, 1);
  std::vector<SingleVoteReport<Command>> reports;
  for (int a = 0; a < 3; ++a) {
    reports.push_back({a, Ballot::zero(), std::nullopt});
  }
  EXPECT_FALSE(pick_single_value(qs, reports).has_value());
}

TEST(PickSingleValue, ClassicVoteForces) {
  const QuorumSystem qs(ids(5), 2, 1);
  const Ballot k{3, 0, 0, RoundType::kSingleCoord};
  std::vector<SingleVoteReport<Command>> reports{
      {0, k, cmd(7)},
      {1, Ballot::zero(), std::nullopt},
      {2, Ballot::zero(), std::nullopt},
  };
  const auto picked = pick_single_value(qs, reports);
  ASSERT_TRUE(picked.has_value());
  EXPECT_EQ(picked->id, 7u);
}

TEST(PickSingleValue, HighestRoundWins) {
  const QuorumSystem qs(ids(5), 2, 1);
  const Ballot k1{1, 0, 0, RoundType::kSingleCoord};
  const Ballot k2{2, 0, 0, RoundType::kSingleCoord};
  std::vector<SingleVoteReport<Command>> reports{
      {0, k1, cmd(1)},
      {1, k2, cmd(2)},
      {2, k1, cmd(1)},
  };
  const auto picked = pick_single_value(qs, reports);
  ASSERT_TRUE(picked.has_value());
  EXPECT_EQ(picked->id, 2u);
}

TEST(PickSingleValue, FastCase1NoValueChoosable) {
  // §2.2 case 1: votes at fast k too scattered for any k-quorum — free.
  const QuorumSystem qs(ids(5), 2, 1);  // |Q|=3, fast threshold = 2
  const Ballot k{1, 0, 0, RoundType::kFast};
  std::vector<SingleVoteReport<Command>> reports{
      {0, k, cmd(1)},
      {1, k, cmd(2)},
      {2, k, cmd(3)},
  };
  EXPECT_FALSE(pick_single_value(qs, reports).has_value());
}

TEST(PickSingleValue, FastCase2OneValueChoosable) {
  // §2.2 case 2: exactly one value v with enough support that some fast
  // quorum might have chosen it — v is forced.
  const QuorumSystem qs(ids(5), 2, 1);
  const Ballot k{1, 0, 0, RoundType::kFast};
  std::vector<SingleVoteReport<Command>> reports{
      {0, k, cmd(1)},
      {1, k, cmd(1)},
      {2, k, cmd(3)},
  };
  const auto picked = pick_single_value(qs, reports);
  ASSERT_TRUE(picked.has_value());
  EXPECT_EQ(picked->id, 1u);
}

TEST(PickSingleValue, FastCase3ImpossibleUnderAssumption2) {
  // §2.2 case 3: two values each with a possible quorum would need
  // |Q| ≥ 2·threshold; with a valid configuration the rule throws if fed
  // such an (impossible) report set.
  const QuorumSystem qs(ids(8), 3, 2);  // |Q|=5, fast threshold=3
  const Ballot k{1, 0, 0, RoundType::kFast};
  std::vector<SingleVoteReport<Command>> reports{
      {0, k, cmd(1)}, {1, k, cmd(1)}, {2, k, cmd(1)},
      {3, k, cmd(2)}, {4, k, cmd(2)},
  };
  const auto picked = pick_single_value(qs, reports);
  ASSERT_TRUE(picked.has_value());
  EXPECT_EQ(picked->id, 1u);  // only cmd(1) reaches the threshold
}

// --- proved_safe on c-structs (Definition 1 / §3.3.2) ---------------------------

const KeyConflict kKeyRel;

History hist(std::initializer_list<Command> cmds) {
  History h(&kKeyRel);
  for (const auto& c : cmds) h.append(c);
  return h;
}

TEST(ProvedSafe, BottomEverywherePicksBottom) {
  const QuorumSystem qs(ids(5), 2, 1);
  std::vector<VoteReport<History>> reports;
  for (int a = 0; a < 3; ++a) reports.push_back({a, Ballot::zero(), History(&kKeyRel)});
  const auto safe = proved_safe(qs, reports);
  ASSERT_EQ(safe.size(), 1u);
  EXPECT_TRUE(safe[0].empty());
}

TEST(ProvedSafe, QuorumIncompleteReturnsAllKVals) {
  // |kacceptors| below the threshold: nothing chosen at k, any reported
  // value at k is pickable.
  const QuorumSystem qs(ids(5), 2, 1);
  const Ballot k{2, 0, 0, RoundType::kFast};  // fast threshold = 2
  std::vector<VoteReport<History>> reports{
      {0, k, hist({cmd(1)})},
      {1, Ballot::zero(), History(&kKeyRel)},
      {2, Ballot::zero(), History(&kKeyRel)},
  };
  const auto safe = proved_safe(qs, reports);
  ASSERT_EQ(safe.size(), 1u);
  EXPECT_TRUE(safe[0].contains(cmd(1)));
}

TEST(ProvedSafe, LubOfGlbsOnDivergentFastVotes) {
  // Two acceptors extended a common prefix differently (commuting tails):
  // the pick must extend the glb of every possible quorum intersection, so
  // it equals the lub of those glbs and contains all three commands.
  const QuorumSystem qs(ids(5), 2, 1);
  const Ballot k{2, 0, 0, RoundType::kFast};
  const Command base = make_write(1, "x", "v");
  const Command left = make_write(2, "a", "v");
  const Command right = make_write(3, "b", "v");
  std::vector<VoteReport<History>> reports{
      {0, k, hist({base, left})},
      {1, k, hist({base, right})},
      {2, k, hist({base})},
  };
  const auto safe = proved_safe(qs, reports);
  ASSERT_EQ(safe.size(), 1u);
  // Threshold 2: the pairwise glbs are {base,left}⊓{base,right} = {base},
  // {base,left}⊓{base} = {base}, ... lub = must contain base at least; and
  // since the 2-subsets {0,1},{0,2},{1,2} all reduce to {base}, the safe
  // value is exactly {base}.
  EXPECT_TRUE(safe[0].contains(base));
  EXPECT_EQ(safe[0].size(), 1u);
}

TEST(ProvedSafe, FullAgreementPicksTheValue) {
  const QuorumSystem qs(ids(5), 2, 1);
  const Ballot k{2, 0, 0, RoundType::kMultiCoord};
  const auto v = hist({cmd(1), cmd(2)});
  std::vector<VoteReport<History>> reports{{0, k, v}, {1, k, v}, {2, k, v}};
  const auto safe = proved_safe(qs, reports);
  ASSERT_EQ(safe.size(), 1u);
  EXPECT_EQ(safe[0], v);
}

TEST(ProvedSafe, ClassicKeepsLongestChosenPrefix) {
  // Classic k with majority quorums: threshold = |Q|−F = 1, so every
  // reported value bounds a possible quorum; the pick is the lub of all
  // their glbs.
  const QuorumSystem qs(ids(3), 1, 1);
  const Ballot k{2, 0, 0, RoundType::kMultiCoord};
  const Command a = make_write(1, "x", "v");
  const Command b = make_write(2, "y", "v");
  std::vector<VoteReport<History>> reports{
      {0, k, hist({a, b})},
      {1, k, hist({a})},
  };
  const auto safe = proved_safe(qs, reports);
  ASSERT_EQ(safe.size(), 1u);
  EXPECT_TRUE(safe[0].contains(a));
  EXPECT_TRUE(safe[0].contains(b));  // lub of {a,b} and {a}
}

TEST(ProvedSafe, EmptyQuorumRejected) {
  const QuorumSystem qs(ids(3), 1, 1);
  EXPECT_THROW(proved_safe(qs, std::vector<VoteReport<History>>{}), std::invalid_argument);
}

}  // namespace
}  // namespace mcp::paxos
