// Integration tests for Multicoordinated Generalized Paxos (§3.2) applied
// to Generic Broadcast (§3.3): command streams, conflict-dependent
// collisions, replica convergence, fault injection, and the §4.4 disk-write
// reduction.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "genpaxos/engine.hpp"
#include "smr/replica.hpp"
#include "util/strings.hpp"

namespace mcp::genpaxos {
namespace {

using cstruct::Command;
using cstruct::History;
using cstruct::KeyConflict;
using cstruct::make_write;
using paxos::PatternPolicy;
using sim::NetworkConfig;
using sim::NodeId;
using sim::Simulation;
using sim::Time;

const KeyConflict kKeyRel;

enum class PolicyKind { kSingle, kMulti, kMultiThenSingle, kGenPaxosFast };

struct Cluster {
  std::unique_ptr<Simulation> sim;
  std::unique_ptr<paxos::RoundPolicy> policy;
  Config<History> config;
  std::vector<GenProposer<History>*> proposers;
  std::vector<GenCoordinator<History>*> coordinators;
  std::vector<GenAcceptor<History>*> acceptors;
  std::vector<GenLearner<History>*> learners;
  std::vector<smr::Replica*> replicas;
};

struct ClusterSpec {
  int proposers = 2;
  int coordinators = 3;
  int acceptors = 5;
  int learners = 2;
  int f = 2;
  int e = 1;
  PolicyKind policy = PolicyKind::kMultiThenSingle;
  std::uint64_t seed = 1;
  NetworkConfig net{};
  bool liveness = true;
  bool reduce_rnd_writes = true;
  bool with_replicas = false;
  Time disk_latency = 0;
};

Cluster build(const ClusterSpec& spec) {
  Cluster c;
  c.sim = std::make_unique<Simulation>(spec.seed, spec.net);
  NodeId next = 0;
  std::vector<NodeId> coords;
  for (int i = 0; i < spec.coordinators; ++i) coords.push_back(next++);
  for (int i = 0; i < spec.acceptors; ++i) c.config.acceptors.push_back(next++);
  for (int i = 0; i < spec.learners; ++i) c.config.learners.push_back(next++);
  for (int i = 0; i < spec.proposers; ++i) c.config.proposers.push_back(next++);
  switch (spec.policy) {
    case PolicyKind::kSingle:
      c.policy = PatternPolicy::always_single(coords);
      break;
    case PolicyKind::kMulti:
      c.policy = PatternPolicy::always_multi(coords);
      break;
    case PolicyKind::kMultiThenSingle:
      c.policy = PatternPolicy::multi_then_single(coords);
      break;
    case PolicyKind::kGenPaxosFast:
      // Generalized Paxos baseline: fast rounds with a single coordinator,
      // classic single-coordinated recovery rounds.
      c.policy = PatternPolicy::fast_then_single(coords);
      break;
  }
  c.config.policy = c.policy.get();
  c.config.f = spec.f;
  c.config.e = spec.e;
  c.config.bottom = History(&kKeyRel);
  c.config.enable_liveness = spec.liveness;
  c.config.reduce_rnd_writes = spec.reduce_rnd_writes;
  c.config.disk_latency = spec.disk_latency;

  for (int i = 0; i < spec.coordinators; ++i) {
    c.coordinators.push_back(&c.sim->make_process<GenCoordinator<History>>(c.config));
  }
  for (int i = 0; i < spec.acceptors; ++i) {
    c.acceptors.push_back(&c.sim->make_process<GenAcceptor<History>>(c.config));
  }
  for (int i = 0; i < spec.learners; ++i) {
    c.learners.push_back(&c.sim->make_process<GenLearner<History>>(c.config));
  }
  for (int i = 0; i < spec.proposers; ++i) {
    c.proposers.push_back(&c.sim->make_process<GenProposer<History>>(c.config));
  }
  if (spec.with_replicas) {
    for (int i = 0; i < spec.learners; ++i) {
      c.replicas.push_back(&c.sim->make_process<smr::Replica>(*c.learners[i]));
    }
  }
  return c;
}

// GCC 12/13 -Wrestrict false-positive workaround for the key-building
// lambdas below (see util/strings.hpp).
using util::concat;

bool all_learned(const Cluster& c, std::size_t count) {
  for (const auto* l : c.learners) {
    if (l->learned().size() < count) return false;
  }
  return true;
}

void expect_consistent(const Cluster& c) {
  for (std::size_t i = 1; i < c.learners.size(); ++i) {
    EXPECT_TRUE(c.learners[0]->learned().compatible(c.learners[i]->learned()))
        << "learners " << 0 << " and " << i << " diverged";
  }
}

TEST(GenPaxos, SingleCommandLearnedEverywhere) {
  ClusterSpec spec;
  Cluster c = build(spec);
  c.sim->at(0, [&] { c.proposers[0]->propose(make_write(1, "x", "1")); });
  const bool ok = c.sim->run_until([&] { return all_learned(c, 1); }, 1'000'000);
  ASSERT_TRUE(ok);
  expect_consistent(c);
  EXPECT_TRUE(c.learners[0]->learned().contains(make_write(1, "x", "1")));
  c.sim->run_until(c.sim->now() + 100);  // let the acks drain
  EXPECT_EQ(c.proposers[0]->delivered_count(), 1u);
}

TEST(GenPaxos, StreamOfCommutingCommandsInOneRound) {
  // Disjoint keys: no conflicts, so the whole stream should be absorbed by
  // round 1 without collisions or round changes.
  ClusterSpec spec;
  spec.policy = PolicyKind::kMulti;
  Cluster c = build(spec);
  constexpr std::size_t kCount = 30;
  for (std::size_t i = 0; i < kCount; ++i) {
    const Time at = static_cast<Time>(10 * i);
    c.sim->at(at, [&, i] {
      c.proposers[i % c.proposers.size()]->propose(
          make_write(i + 1, concat("k", i), "v"));
    });
  }
  const bool ok = c.sim->run_until([&] { return all_learned(c, kCount); }, 5'000'000);
  ASSERT_TRUE(ok);
  expect_consistent(c);
  EXPECT_EQ(c.sim->metrics().counter("gen.collisions_detected"), 0);
}

TEST(GenPaxos, ConflictingCommandsStillConvergeMultiCoord) {
  // All commands write the hot key: coordinators may forward them in
  // different orders (collisions), yet learners converge on compatible
  // histories containing everything.
  int collided = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ClusterSpec spec;
    spec.seed = seed;
    spec.proposers = 3;
    spec.net.min_delay = 1;
    spec.net.max_delay = 30;
    Cluster c = build(spec);
    constexpr std::size_t kCount = 12;
    for (std::size_t i = 0; i < kCount; ++i) {
      c.sim->at(static_cast<Time>(3 * i), [&, i] {
        c.proposers[i % c.proposers.size()]->propose(
            make_write(i + 1, "hot", concat("v", i)));
      });
    }
    const bool ok = c.sim->run_until([&] { return all_learned(c, kCount); }, 10'000'000);
    ASSERT_TRUE(ok) << "seed " << seed;
    expect_consistent(c);
    if (c.sim->metrics().counter("gen.collisions_detected") > 0) ++collided;
  }
  EXPECT_GT(collided, 0) << "collision path never exercised";
}

TEST(GenPaxos, FastRoundsLearnCommutingCommandsInTwoSteps) {
  // Generalized Paxos baseline (fast rounds): once the round is set up, a
  // commuting command proposed at t is at the acceptors at t+1 and learned
  // at t+2.
  ClusterSpec spec;
  spec.policy = PolicyKind::kGenPaxosFast;
  spec.liveness = false;
  spec.net.min_delay = 1;
  spec.net.max_delay = 1;
  spec.f = 1;  // fast quorums: n−e = 4 with n=5, e=1; need n > 2e+f
  Cluster c = build(spec);
  c.sim->at(20, [&] { c.proposers[0]->propose(make_write(1, "a", "v")); });
  const bool ok = c.sim->run_until([&] { return all_learned(c, 1); }, 1'000'000);
  ASSERT_TRUE(ok);
  const auto& times = c.learners[0]->learn_times();
  ASSERT_TRUE(times.count(1));
  EXPECT_EQ(times.at(1), 22);  // two communication steps after propose
}

TEST(GenPaxos, MultiCoordRoundsLearnInThreeSteps) {
  ClusterSpec spec;
  spec.policy = PolicyKind::kMulti;
  spec.liveness = false;
  spec.net.min_delay = 1;
  spec.net.max_delay = 1;
  Cluster c = build(spec);
  c.sim->at(20, [&] { c.proposers[0]->propose(make_write(1, "a", "v")); });
  const bool ok = c.sim->run_until([&] { return all_learned(c, 1); }, 1'000'000);
  ASSERT_TRUE(ok);
  EXPECT_EQ(c.learners[0]->learn_times().at(1), 23);  // three steps
}

TEST(GenPaxos, CoordinatorCrashDoesNotStallMultiCoordRound) {
  ClusterSpec spec;
  spec.policy = PolicyKind::kMulti;
  spec.liveness = false;
  spec.net.min_delay = 1;
  spec.net.max_delay = 1;
  Cluster c = build(spec);
  c.sim->crash_at(10, c.coordinators[1]->id());
  c.sim->at(20, [&] { c.proposers[0]->propose(make_write(1, "a", "v")); });
  const bool ok = c.sim->run_until([&] { return all_learned(c, 1); }, 1'000'000);
  ASSERT_TRUE(ok);
  EXPECT_EQ(c.learners[0]->learn_times().at(1), 23);  // latency unchanged
  EXPECT_EQ(c.sim->metrics().counter("gen.rounds_started"), 1);
}

TEST(GenPaxos, SingleCoordinatedCrashStallsWithoutLiveness) {
  ClusterSpec spec;
  spec.policy = PolicyKind::kSingle;
  spec.liveness = false;
  spec.net.min_delay = 1;
  spec.net.max_delay = 1;
  Cluster c = build(spec);
  c.sim->crash_at(10, c.coordinators[0]->id());
  c.sim->at(20, [&] { c.proposers[0]->propose(make_write(1, "a", "v")); });
  c.sim->run_until(5'000);
  EXPECT_EQ(c.learners[0]->learned().size(), 0u);
}

TEST(GenPaxos, ReplicasConvergeOnSameKVState) {
  ClusterSpec spec;
  spec.seed = 4;
  spec.proposers = 3;
  spec.with_replicas = true;
  spec.net.min_delay = 1;
  spec.net.max_delay = 20;
  Cluster c = build(spec);
  constexpr std::size_t kCount = 20;
  for (std::size_t i = 0; i < kCount; ++i) {
    c.sim->at(static_cast<Time>(5 * i), [&, i] {
      // Mix of hot-key (conflicting) and cold-key (commuting) writes.
      const std::string key = (i % 3 == 0) ? "hot" : concat("k", i);
      c.proposers[i % c.proposers.size()]->propose(
          make_write(i + 1, key, concat("v", i)));
    });
  }
  const bool ok = c.sim->run_until([&] { return all_learned(c, kCount); }, 10'000'000);
  ASSERT_TRUE(ok);
  for (auto* r : c.replicas) r->poll();
  std::vector<const smr::Replica*> replicas(c.replicas.begin(), c.replicas.end());
  EXPECT_TRUE(smr::replicas_converged(replicas));
  EXPECT_EQ(c.replicas[0]->applied(), kCount);
}

TEST(GenPaxos, AcceptorCrashRecoveryKeepsHistoryAndRefusesOldRounds) {
  ClusterSpec spec;
  spec.seed = 6;
  spec.net.min_delay = 1;
  spec.net.max_delay = 10;
  Cluster c = build(spec);
  c.sim->at(0, [&] { c.proposers[0]->propose(make_write(1, "a", "v")); });
  ASSERT_TRUE(c.sim->run_until([&] { return all_learned(c, 1); }, 1'000'000));
  GenAcceptor<History>* victim = c.acceptors[0];
  const std::size_t before = victim->vval().size();
  c.sim->crash(victim->id());
  c.sim->at(c.sim->now() + 100, [&] { c.sim->recover(victim->id()); });
  c.sim->run_until(c.sim->now() + 200);
  // Votes restored from disk; rnd restored to a strict upper bound.
  EXPECT_GE(victim->vval().size(), before);
  EXPECT_GE(victim->rnd().count, victim->vrnd().count);
  // And the system keeps making progress afterwards.
  c.sim->at(c.sim->now(), [&] { c.proposers[1]->propose(make_write(2, "b", "v")); });
  ASSERT_TRUE(c.sim->run_until([&] { return all_learned(c, 2); }, 2'000'000));
  expect_consistent(c);
}

TEST(GenPaxos, RndWriteReductionSavesDiskWrites) {
  // §4.4 ablation: with block-persisted rnd, repeated round changes cost
  // far fewer disk writes than write-through rnd.
  auto run = [](bool reduce) {
    ClusterSpec spec;
    spec.seed = 8;
    spec.reduce_rnd_writes = reduce;
    spec.net.min_delay = 1;
    spec.net.max_delay = 5;
    Cluster c = build(spec);
    // Force many round changes.
    c.sim->at(0, [&] { c.proposers[0]->propose(make_write(1, "a", "v")); });
    for (int r = 2; r <= 12; ++r) {
      c.sim->at(r * 300, [&] {
        // A nack-triggering higher round via direct coordinator restarts is
        // internal; instead crash/recover an acceptor to churn rounds.
      });
    }
    c.sim->run_until([&](){ return false; }, 15'000);
    return c.sim->metrics().counter_prefix_sum("acceptor.") -
           c.sim->metrics().counter_prefix_sum("acceptor.zzz");  // total acceptor writes
  };
  // Same schedule; the reduced variant can only write less or equal.
  EXPECT_LE(run(true), run(false));
}

TEST(GenPaxos, NontrivialityOnlyProposedCommandsLearned) {
  ClusterSpec spec;
  spec.seed = 10;
  spec.proposers = 2;
  spec.net.min_delay = 1;
  spec.net.max_delay = 15;
  Cluster c = build(spec);
  std::set<std::uint64_t> proposed;
  for (std::size_t i = 1; i <= 10; ++i) {
    proposed.insert(i);
    c.sim->at(static_cast<Time>(10 * i), [&, i] {
      c.proposers[i % 2]->propose(make_write(i, concat("k", i % 4), "v"));
    });
  }
  ASSERT_TRUE(c.sim->run_until([&] { return all_learned(c, 10); }, 5'000'000));
  for (const Command& cmd : c.learners[0]->learned().sequence()) {
    EXPECT_TRUE(proposed.count(cmd.id)) << "learned unproposed command " << cmd.id;
  }
}

TEST(GenPaxos, StabilityLearnedOnlyGrows) {
  // Track the learner's history at several points; later snapshots must
  // extend earlier ones.
  ClusterSpec spec;
  spec.seed = 12;
  spec.proposers = 2;
  spec.net.min_delay = 1;
  spec.net.max_delay = 10;
  Cluster c = build(spec);
  std::vector<History> snapshots;
  for (std::size_t i = 1; i <= 8; ++i) {
    c.sim->at(static_cast<Time>(40 * i), [&, i] {
      c.proposers[i % 2]->propose(make_write(i, "hot", "v"));
    });
    c.sim->at(static_cast<Time>(40 * i + 20),
              [&] { snapshots.push_back(c.learners[0]->learned()); });
  }
  ASSERT_TRUE(c.sim->run_until([&] { return all_learned(c, 8); }, 5'000'000));
  snapshots.push_back(c.learners[0]->learned());
  for (std::size_t i = 1; i < snapshots.size(); ++i) {
    EXPECT_TRUE(snapshots[i].extends(snapshots[i - 1])) << "stability violated at " << i;
  }
}

// --- diverging 2a values across a coordinator recovery --------------------------

namespace divergence {

std::shared_ptr<const History> hot(std::uint64_t id, const char* v) {
  History h(&kKeyRel);
  h.append(make_write(id, "hot", v));
  return std::make_shared<const History>(std::move(h));
}

}  // namespace divergence

TEST(GenPaxos, Stale2aAfterCoordinatorRecoveryCannotShadowNewerValue) {
  // Regression for the handle_2a diverging-value path: a pre-crash 2a
  // delivered out of order *after* the recovered coordinator's new 2a used
  // to overwrite the newer value (last arrival won), fabricating a
  // collision between the stale value and the other coordinators' 2as.
  // Incarnation ordering in the message resolves it. Messages are injected
  // directly (the simulation is never run), so delivery order is exact.
  ClusterSpec spec;
  spec.policy = PolicyKind::kMulti;
  spec.liveness = false;
  Cluster c = build(spec);
  GenAcceptor<History>* acc = c.acceptors[0];
  const NodeId coord0 = c.coordinators[0]->id();
  const NodeId coord1 = c.coordinators[1]->id();
  const paxos::Ballot b = c.policy->make_ballot(1, coord0, 0);

  // The recovered coordinator's 2a (incarnation 1) arrives first...
  acc->on_message(coord0, std::any(Msg2a<History>{b, divergence::hot(2, "new"), 1}));
  // ...then its conflicting pre-crash 2a (incarnation 0) straggles in: it
  // must be discarded, not stored.
  acc->on_message(coord0, std::any(Msg2a<History>{b, divergence::hot(1, "old"), 0}));
  // A second coordinator forwards the post-recovery value: a coordinator
  // quorum (2 of 3) now supports it, so the acceptor accepts it.
  acc->on_message(coord1, std::any(Msg2a<History>{b, divergence::hot(2, "new"), 0}));

  EXPECT_EQ(acc->vrnd(), b);
  EXPECT_TRUE(acc->vval().contains(make_write(2, "hot", "new")));
  // No collision was fabricated from the stale value.
  EXPECT_EQ(c.sim->metrics().counter("gen.collisions_detected"), 0);
}

TEST(GenPaxos, DivergenceAcrossRecoveryIsCountedAndNewIncarnationWins) {
  // The other delivery order: pre-crash 2a first, then the diverging
  // post-recovery 2a. The overwrite is legitimate (newer incarnation wins)
  // and must bump the gen.2a_divergence metric so it is observable.
  ClusterSpec spec;
  spec.policy = PolicyKind::kMulti;
  spec.liveness = false;
  Cluster c = build(spec);
  GenAcceptor<History>* acc = c.acceptors[0];
  const NodeId coord0 = c.coordinators[0]->id();
  const NodeId coord1 = c.coordinators[1]->id();
  const paxos::Ballot b = c.policy->make_ballot(1, coord0, 0);

  acc->on_message(coord0, std::any(Msg2a<History>{b, divergence::hot(1, "old"), 0}));
  EXPECT_EQ(c.sim->metrics().counter("gen.2a_divergence"), 0);
  acc->on_message(coord0, std::any(Msg2a<History>{b, divergence::hot(2, "new"), 1}));
  EXPECT_EQ(c.sim->metrics().counter("gen.2a_divergence"), 1);
  acc->on_message(coord1, std::any(Msg2a<History>{b, divergence::hot(2, "new"), 0}));

  EXPECT_EQ(acc->vrnd(), b);
  EXPECT_TRUE(acc->vval().contains(make_write(2, "hot", "new")));
  EXPECT_EQ(c.sim->metrics().counter("gen.collisions_detected"), 0);
}

// --- randomized safety/liveness sweeps over policies, loss and conflicts -------

struct SweepParam {
  PolicyKind policy;
  std::uint64_t seed;
  double loss;
  double conflict;  ///< fraction of commands on the hot key
  std::size_t commands;
};

class GenPaxosSweep : public testing::TestWithParam<SweepParam> {};

TEST_P(GenPaxosSweep, ConvergesConsistently) {
  const auto& p = GetParam();
  ClusterSpec spec;
  spec.policy = p.policy;
  spec.seed = p.seed;
  spec.proposers = 3;
  spec.net.min_delay = 1;
  spec.net.max_delay = 25;
  spec.net.loss_probability = p.loss;
  if (p.policy == PolicyKind::kGenPaxosFast) spec.f = 1;
  Cluster c = build(spec);
  util::Rng wl_rng(p.seed * 77);
  smr::Workload workload({p.commands, p.conflict, 0.0, 1}, wl_rng);
  for (std::size_t i = 0; i < workload.commands().size(); ++i) {
    c.sim->at(static_cast<Time>(7 * i), [&, i] {
      c.proposers[i % c.proposers.size()]->propose(workload.commands()[i]);
    });
  }
  const bool ok =
      c.sim->run_until([&] { return all_learned(c, p.commands); }, 30'000'000);
  ASSERT_TRUE(ok) << "not all commands learned";
  expect_consistent(c);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GenPaxosSweep,
    testing::Values(
        SweepParam{PolicyKind::kMultiThenSingle, 1, 0.0, 0.0, 20},
        SweepParam{PolicyKind::kMultiThenSingle, 2, 0.0, 0.5, 20},
        SweepParam{PolicyKind::kMultiThenSingle, 3, 0.1, 0.3, 15},
        SweepParam{PolicyKind::kMultiThenSingle, 4, 0.2, 1.0, 10},
        SweepParam{PolicyKind::kMulti, 5, 0.0, 0.2, 20},
        SweepParam{PolicyKind::kMulti, 6, 0.1, 0.6, 12},
        SweepParam{PolicyKind::kSingle, 7, 0.1, 0.5, 15},
        SweepParam{PolicyKind::kSingle, 8, 0.2, 1.0, 10},
        SweepParam{PolicyKind::kGenPaxosFast, 9, 0.0, 0.0, 20},
        SweepParam{PolicyKind::kGenPaxosFast, 10, 0.1, 0.4, 12},
        SweepParam{PolicyKind::kGenPaxosFast, 11, 0.0, 1.0, 10},
        SweepParam{PolicyKind::kMultiThenSingle, 12, 0.3, 0.5, 8}),
    [](const testing::TestParamInfo<SweepParam>& info) {
      const char* kind = info.param.policy == PolicyKind::kSingle     ? "single"
                         : info.param.policy == PolicyKind::kMulti    ? "multi"
                         : info.param.policy == PolicyKind::kGenPaxosFast ? "genfast"
                                                                         : "ladder";
      return std::string(kind) + "_seed" + std::to_string(info.param.seed);
    });

// --- churn sweeps -----------------------------------------------------------------

class GenPaxosChurn : public testing::TestWithParam<std::uint64_t> {};

TEST_P(GenPaxosChurn, SurvivesProcessChurn) {
  ClusterSpec spec;
  spec.seed = GetParam();
  spec.proposers = 2;
  spec.net.min_delay = 2;
  spec.net.max_delay = 20;
  Cluster c = build(spec);
  constexpr std::size_t kCount = 10;
  for (std::size_t i = 0; i < kCount; ++i) {
    c.sim->at(static_cast<Time>(100 * i), [&, i] {
      c.proposers[i % 2]->propose(
          make_write(i + 1, i % 2 ? std::string("hot") : concat("k", i), "v"));
    });
  }
  c.sim->crash_at(150, c.coordinators[1]->id());
  c.sim->crash_at(250, c.acceptors[2]->id());
  c.sim->recover_at(2000, c.coordinators[1]->id());
  c.sim->recover_at(2400, c.acceptors[2]->id());
  c.sim->crash_at(3000, c.coordinators[0]->id());  // the initial leader
  c.sim->recover_at(6000, c.coordinators[0]->id());
  const bool ok = c.sim->run_until([&] { return all_learned(c, kCount); }, 30'000'000);
  ASSERT_TRUE(ok);
  expect_consistent(c);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GenPaxosChurn, testing::Range<std::uint64_t>(1, 7),
                         [](const testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace mcp::genpaxos
