// Tests for the typed message-envelope layer: per-message round-trips for
// every protocol message (over all three c-structs where templated),
// decode robustness against truncation and garbage, byte accounting in the
// simulator, and the guarantee that serializing the traffic does not
// change protocol outcomes (encode_messages on/off determinism).

#include <gtest/gtest.h>

#include <any>
#include <memory>
#include <string>
#include <vector>

#include "classic/classic_paxos.hpp"
#include "classic/multi_paxos.hpp"
#include "fast/fast_paxos.hpp"
#include "genpaxos/engine.hpp"
#include "multicoord/mc_consensus.hpp"
#include "paxos/wire.hpp"
#include "util/rng.hpp"

namespace mcp {
namespace {

using cstruct::CSet;
using cstruct::History;
using cstruct::KeyConflict;
using cstruct::make_read;
using cstruct::make_write;
using cstruct::SingleValue;
using paxos::Ballot;
using paxos::RoundType;

const KeyConflict kKeyRel;

const Ballot kBallot{7, 2, 1, RoundType::kMultiCoord};
const Ballot kFastBallot{9, 0, 0, RoundType::kFast};

/// Encode → envelope bytes → envelope → registry decode; returns the typed
/// message a receiving process would see.
template <typename M>
M round_trip(const wire::DecoderRegistry& reg, const M& m) {
  const wire::Envelope env = wire::make_envelope(m);
  const std::string bytes = env.encode();
  EXPECT_EQ(env.wire_size(), bytes.size());
  const wire::Envelope back = wire::Envelope::decode(bytes);
  EXPECT_EQ(back.tag, M::kTag);
  return std::any_cast<M>(reg.decode(back));
}

/// Every strict prefix of an encoded envelope must throw, and bit flips
/// must either decode cleanly or throw std::invalid_argument — never crash
/// or report success with a half-read body.
template <typename M>
void expect_robust_decode(const wire::DecoderRegistry& reg, const M& m) {
  const std::string bytes = wire::make_envelope(m).encode();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(wire::Envelope::decode(bytes.substr(0, len)), std::invalid_argument)
        << M::kName << " prefix of " << len << "/" << bytes.size();
  }
  // Body-level truncation (a transport that framed correctly but lost
  // payload bytes): the registry must reject every strict prefix.
  const wire::Envelope whole = wire::Envelope::decode(bytes);
  for (std::size_t len = 0; len < whole.body.size(); ++len) {
    wire::Envelope cut{whole.tag, 0, whole.body.substr(0, len)};
    EXPECT_THROW(reg.decode(cut), std::invalid_argument)
        << M::kName << " body prefix of " << len << "/" << whole.body.size();
  }
  // Garbage bytes: flipping any byte to any of a few patterns must not UB.
  for (std::size_t i = 0; i < whole.body.size(); ++i) {
    for (const char flip : {'\x00', '\x01', '\x7f', '\x80', '\xff'}) {
      wire::Envelope fuzzed = whole;
      fuzzed.body[i] = flip;
      try {
        (void)reg.decode(fuzzed);
      } catch (const std::invalid_argument&) {
        // rejected — fine; anything else propagates and fails the test
      }
    }
  }
}

cstruct::Command cmd(std::uint64_t id) {
  return make_write(id, "key" + std::to_string(id), "value" + std::to_string(id),
                    static_cast<int>(id % 3));
}

/// Command::operator== compares ids only (protocol identity); the codec
/// must preserve every field.
void expect_full_command(const cstruct::Command& got, const cstruct::Command& want) {
  EXPECT_EQ(got.id, want.id);
  EXPECT_EQ(got.proposer, want.proposer);
  EXPECT_EQ(got.type, want.type);
  EXPECT_EQ(got.key, want.key);
  EXPECT_EQ(got.value, want.value);
}

// --- per-message round trips -------------------------------------------------

TEST(Envelope, ClassicMessagesRoundTrip) {
  wire::DecoderRegistry reg;
  classic::msg::register_wire_messages(reg);

  expect_full_command(round_trip(reg, classic::msg::Propose{cmd(1)}).v, cmd(1));
  EXPECT_EQ(round_trip(reg, classic::msg::P1a{kBallot}).b, kBallot);
  const auto p1b = round_trip(reg, classic::msg::P1b{kBallot, Ballot::zero(), cmd(2)});
  EXPECT_EQ(p1b.b, kBallot);
  EXPECT_EQ(p1b.vrnd, Ballot::zero());
  EXPECT_EQ(p1b.vval, cmd(2));
  const auto empty1b = round_trip(reg, classic::msg::P1b{kBallot, Ballot::zero(), {}});
  EXPECT_FALSE(empty1b.vval.has_value());
  EXPECT_EQ(round_trip(reg, classic::msg::P2a{kBallot, cmd(3)}).v, cmd(3));
  EXPECT_EQ(round_trip(reg, classic::msg::P2b{kBallot, cmd(4)}).b, kBallot);
  EXPECT_EQ(round_trip(reg, classic::msg::Nack{kBallot}).heard, kBallot);
  EXPECT_EQ(round_trip(reg, classic::msg::Learned{cmd(5)}).v, cmd(5));
  (void)round_trip(reg, paxos::Heartbeat{});  // any_cast inside asserts the type
}

TEST(Envelope, MultiPaxosMessagesRoundTrip) {
  wire::DecoderRegistry reg;
  classic::mmsg::register_wire_messages(reg);

  expect_full_command(round_trip(reg, classic::mmsg::Propose{cmd(1)}).cmd, cmd(1));
  const auto p1a = round_trip(reg, classic::mmsg::P1a{kBallot, 42});
  EXPECT_EQ(p1a.b, kBallot);
  EXPECT_EQ(p1a.from_instance, 42);
  classic::mmsg::P1b p1b{kBallot, {{3, kBallot, cmd(6)}, {4, Ballot::zero(), cmd(7)}}};
  const auto back = round_trip(reg, p1b);
  ASSERT_EQ(back.votes.size(), 2u);
  EXPECT_EQ(back.votes[0].instance, 3);
  EXPECT_EQ(back.votes[0].vrnd, kBallot);
  EXPECT_EQ(back.votes[0].vval, cmd(6));
  EXPECT_EQ(back.votes[1].instance, 4);
  const auto p2a = round_trip(reg, classic::mmsg::P2a{kBallot, 9, cmd(8)});
  EXPECT_EQ(p2a.instance, 9);
  EXPECT_EQ(p2a.v, cmd(8));
  EXPECT_EQ(round_trip(reg, classic::mmsg::P2b{kBallot, 10, cmd(9)}).instance, 10);
  EXPECT_EQ(round_trip(reg, classic::mmsg::Nack{kBallot}).heard, kBallot);
  const auto learned = round_trip(reg, classic::mmsg::Learned{11, cmd(10)});
  EXPECT_EQ(learned.instance, 11);
  EXPECT_EQ(learned.v, cmd(10));
}

TEST(Envelope, FastMessagesRoundTrip) {
  wire::DecoderRegistry reg;
  fast::msg::register_wire_messages(reg);

  EXPECT_EQ(round_trip(reg, fast::msg::Propose{cmd(1)}).v, cmd(1));
  EXPECT_EQ(round_trip(reg, fast::msg::P1a{kFastBallot}).b, kFastBallot);
  EXPECT_EQ(round_trip(reg, fast::msg::P1b{kFastBallot, Ballot::zero(), cmd(2)}).vval,
            cmd(2));
  // The special value Any (nullopt) must survive the wire.
  EXPECT_FALSE(round_trip(reg, fast::msg::P2a{kFastBallot, std::nullopt}).v.has_value());
  EXPECT_EQ(round_trip(reg, fast::msg::P2a{kFastBallot, cmd(3)}).v, cmd(3));
  EXPECT_EQ(round_trip(reg, fast::msg::P2b{kFastBallot, cmd(4)}).v, cmd(4));
  EXPECT_EQ(round_trip(reg, fast::msg::Nack{kFastBallot}).heard, kFastBallot);
  EXPECT_EQ(round_trip(reg, fast::msg::Learned{cmd(5)}).v, cmd(5));
}

TEST(Envelope, MulticoordMessagesRoundTrip) {
  wire::DecoderRegistry reg;
  multicoord::msg::register_wire_messages(reg);

  multicoord::msg::Propose p{cmd(1), {3, 4, 6}};
  const auto back = round_trip(reg, p);
  expect_full_command(back.v, cmd(1));
  EXPECT_EQ(back.target_acceptors, (std::vector<sim::NodeId>{3, 4, 6}));
  EXPECT_TRUE(
      round_trip(reg, multicoord::msg::Propose{cmd(2), {}}).target_acceptors.empty());
  EXPECT_EQ(round_trip(reg, multicoord::msg::P1a{kBallot}).b, kBallot);
  EXPECT_EQ(round_trip(reg, multicoord::msg::P1b{kBallot, Ballot::zero(), cmd(3)}).vval,
            cmd(3));
  EXPECT_FALSE(round_trip(reg, multicoord::msg::P2a{kBallot, std::nullopt}).v.has_value());
  EXPECT_EQ(round_trip(reg, multicoord::msg::P2b{kBallot, cmd(4)}).v, cmd(4));
  EXPECT_EQ(round_trip(reg, multicoord::msg::Nack{kBallot}).heard, kBallot);
  EXPECT_EQ(round_trip(reg, multicoord::msg::Learned{cmd(5)}).v, cmd(5));
}

/// Builds a representative non-⊥ value of each c-struct type.
SingleValue sample(const SingleValue&) { return SingleValue{cmd(1)}; }
CSet sample(const CSet&) {
  CSet s;
  s.append(cmd(1));
  s.append(cmd(2));
  return s;
}
History sample(const History& bottom) {
  History h(bottom.relation());
  h.append(make_write(1, "a", "x"));
  h.append(make_read(2, "a"));
  h.append(make_write(3, "b", "y"));
  return h;
}

template <typename CS>
void gen_round_trip(const CS& bottom) {
  wire::DecoderRegistry reg;
  genpaxos::register_wire_messages(reg, bottom);

  EXPECT_EQ(round_trip(reg, genpaxos::MsgPropose{cmd(1)}).c, cmd(1));
  EXPECT_EQ(round_trip(reg, genpaxos::MsgNack{kBallot}).heard, kBallot);
  EXPECT_EQ(round_trip(reg, genpaxos::MsgAck{99}).command_id, 99u);

  EXPECT_EQ(round_trip(reg, genpaxos::Msg1a<CS>{kBallot}).b, kBallot);

  const CS value = sample(bottom);
  const auto p1b = round_trip(reg, genpaxos::Msg1b<CS>{kBallot, Ballot::zero(), value});
  EXPECT_EQ(p1b.b, kBallot);
  EXPECT_TRUE(p1b.vval == value);
  const auto bottom1b =
      round_trip(reg, genpaxos::Msg1b<CS>{kBallot, Ballot::zero(), bottom});
  EXPECT_TRUE(bottom1b.vval == bottom);

  const auto p2a = round_trip(
      reg, genpaxos::Msg2a<CS>{kBallot, std::make_shared<const CS>(value)});
  ASSERT_TRUE(p2a.val != nullptr);
  EXPECT_TRUE(*p2a.val == value);
  const auto p2b = round_trip(
      reg, genpaxos::Msg2b<CS>{kFastBallot, std::make_shared<const CS>(value)});
  EXPECT_EQ(p2b.b, kFastBallot);
  EXPECT_TRUE(*p2b.val == value);

  expect_robust_decode(reg, genpaxos::Msg1b<CS>{kBallot, Ballot::zero(), value});
  expect_robust_decode(reg,
                       genpaxos::Msg2a<CS>{kBallot, std::make_shared<const CS>(value)});
}

TEST(Envelope, GenMessagesRoundTripAllCStructs) {
  gen_round_trip(SingleValue{});
  gen_round_trip(CSet{});
  gen_round_trip(History(&kKeyRel));
}

// --- decode robustness -------------------------------------------------------

TEST(Envelope, TruncatedAndGarbageInputNeverSucceedsSilently) {
  wire::DecoderRegistry reg;
  classic::msg::register_wire_messages(reg);
  expect_robust_decode(reg, classic::msg::Propose{cmd(1)});
  expect_robust_decode(reg, classic::msg::P1b{kBallot, Ballot::zero(), cmd(2)});
  expect_robust_decode(reg, classic::msg::P2a{kBallot, cmd(3)});

  wire::DecoderRegistry mreg;
  classic::mmsg::register_wire_messages(mreg);
  expect_robust_decode(
      mreg, classic::mmsg::P1b{kBallot, {{3, kBallot, cmd(6)}, {4, kBallot, cmd(7)}}});

  wire::DecoderRegistry mcreg;
  multicoord::msg::register_wire_messages(mcreg);
  expect_robust_decode(mcreg, multicoord::msg::Propose{cmd(1), {3, 4, 6}});
}

TEST(Envelope, TrailingBytesRejected) {
  const std::string bytes = wire::make_envelope(classic::msg::P1a{kBallot}).encode();
  EXPECT_THROW(wire::Envelope::decode(bytes + "x"), std::invalid_argument);

  // A body with valid content followed by junk must be rejected by the
  // registry's full-consumption check.
  wire::DecoderRegistry reg;
  classic::msg::register_wire_messages(reg);
  wire::Envelope env = wire::Envelope::decode(bytes);
  env.body += '\x00';
  EXPECT_THROW(reg.decode(env), std::invalid_argument);
}

TEST(Envelope, UnknownTagIsALogicError) {
  wire::DecoderRegistry reg;
  EXPECT_FALSE(reg.knows(classic::msg::P1a::kTag));
  EXPECT_THROW(reg.decode(wire::make_envelope(classic::msg::P1a{kBallot})),
               std::logic_error);
}

TEST(Envelope, TagCollisionDetected) {
  // Two different names under one tag is a registration bug, not a decode
  // error: it must fail loudly at registration time. (Register the real
  // name first so this test is order-independent and never pollutes the
  // global table with the bogus name.)
  wire::register_message_name(classic::msg::P1a::kTag, classic::msg::P1a::kName);
  EXPECT_THROW(wire::register_message_name(classic::msg::P1a::kTag, "some.other"),
               std::logic_error);
}

// --- simulator integration ---------------------------------------------------

struct GenCluster {
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<paxos::RoundPolicy> policy;
  genpaxos::Config<History> config;
  std::vector<genpaxos::GenProposer<History>*> proposers;
  std::vector<genpaxos::GenLearner<History>*> learners;
};

GenCluster build_gen(std::uint64_t seed, bool encode_messages) {
  GenCluster c;
  sim::NetworkConfig net;
  net.min_delay = 1;
  net.max_delay = 9;
  net.loss_probability = 0.02;
  net.duplication_probability = 0.01;
  net.encode_messages = encode_messages;
  c.sim = std::make_unique<sim::Simulation>(seed, net);
  sim::NodeId next = 0;
  std::vector<sim::NodeId> coords;
  for (int i = 0; i < 2; ++i) coords.push_back(next++);
  for (int i = 0; i < 3; ++i) c.config.acceptors.push_back(next++);
  for (int i = 0; i < 2; ++i) c.config.learners.push_back(next++);
  for (int i = 0; i < 2; ++i) c.config.proposers.push_back(next++);
  c.policy = paxos::PatternPolicy::multi_then_single(coords);
  c.config.policy = c.policy.get();
  c.config.f = 1;
  c.config.e = 0;
  c.config.bottom = History(&kKeyRel);
  for (int i = 0; i < 2; ++i) {
    c.sim->make_process<genpaxos::GenCoordinator<History>>(c.config);
  }
  for (int i = 0; i < 3; ++i) {
    c.sim->make_process<genpaxos::GenAcceptor<History>>(c.config);
  }
  for (int i = 0; i < 2; ++i) {
    c.learners.push_back(&c.sim->make_process<genpaxos::GenLearner<History>>(c.config));
  }
  for (int i = 0; i < 2; ++i) {
    c.proposers.push_back(&c.sim->make_process<genpaxos::GenProposer<History>>(c.config));
  }
  return c;
}

constexpr std::size_t kCommands = 12;

void drive(GenCluster& c) {
  for (std::size_t i = 0; i < kCommands; ++i) {
    c.sim->at(static_cast<sim::Time>(7 * i), [&c, i] {
      c.proposers[i % c.proposers.size()]->propose(
          make_write(i + 1, i % 3 == 0 ? "hot" : "k" + std::to_string(i), "v"));
    });
  }
  const bool ok = c.sim->run_until(
      [&c] {
        for (const auto* l : c.learners) {
          if (l->learned().size() < kCommands) return false;
        }
        return true;
      },
      5'000'000);
  ASSERT_TRUE(ok);
}

TEST(Envelope, EncodingDoesNotChangeProtocolOutcomes) {
  for (std::uint64_t seed : {1ull, 7ull, 23ull}) {
    GenCluster encoded = build_gen(seed, true);
    GenCluster raw = build_gen(seed, false);
    drive(encoded);
    drive(raw);
    // Identical event order ⇒ identical clocks and event counts; identical
    // outcomes ⇒ the same learned sequence at every learner.
    EXPECT_EQ(encoded.sim->now(), raw.sim->now()) << "seed " << seed;
    EXPECT_EQ(encoded.sim->events_processed(), raw.sim->events_processed())
        << "seed " << seed;
    for (std::size_t l = 0; l < encoded.learners.size(); ++l) {
      const auto& a = encoded.learners[l]->learned().sequence();
      const auto& b = raw.learners[l]->learned().sequence();
      ASSERT_EQ(a.size(), b.size()) << "seed " << seed;
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i]) << "seed " << seed << " pos " << i;
      }
    }
    EXPECT_EQ(encoded.sim->metrics().counter("net.sent"),
              raw.sim->metrics().counter("net.sent"))
        << "seed " << seed;
  }
}

TEST(Envelope, ByteCountersTrackEveryProtocolMessage) {
  GenCluster c = build_gen(3, true);
  drive(c);
  const auto& m = c.sim->metrics();
  const std::int64_t total = m.counter("net.bytes_sent");
  EXPECT_GT(total, 0);

  // Per-message-type counters must partition the total.
  std::int64_t by_type = 0;
  for (const auto& [name, bytes] : m.counters_with_prefix("net.bytes.")) {
    EXPECT_GT(bytes, 0) << name;
    by_type += bytes;
  }
  EXPECT_EQ(by_type, total);
  // The protocol's heavy hitters must be visible by name.
  EXPECT_GT(m.counter("net.bytes.gen.2b"), 0);
  EXPECT_GT(m.counter("net.bytes.gen.propose"), 0);

  // Per-link counters must partition the total as well.
  std::int64_t by_link = 0;
  for (sim::NodeId from : c.sim->all_ids()) {
    by_link += m.counter_prefix_sum("net." + std::to_string(from) + ".bytes_to.");
  }
  EXPECT_EQ(by_link, total);
}

TEST(Envelope, EscapeHatchDisablesByteAccounting) {
  GenCluster c = build_gen(3, false);
  drive(c);
  EXPECT_EQ(c.sim->metrics().counter("net.bytes_sent"), 0);
  EXPECT_GT(c.sim->metrics().counter("net.sent"), 0);
}

}  // namespace
}  // namespace mcp
