// Random exploration of Abstract Multicoordinated Paxos (Appendix A.2):
// executes thousands of randomly chosen enabled actions on small universes
// and validates after every step
//   - the three Appendix A.2 state invariants (maxTried / bA / learned),
//   - Proposition 2: every value returned by the production `proved_safe`
//     rule is safe at the round being started per the literal Definition 5,
//   - the Generalized Consensus safety properties.
// This is small-scope model checking of the same object the paper proves
// correct, with our production picking rule in the loop.

#include <gtest/gtest.h>

#include <vector>

#include "cstruct/history.hpp"
#include "genpaxos/abstract.hpp"
#include "util/rng.hpp"

namespace mcp::genpaxos {
namespace {

using cstruct::Command;
using cstruct::History;
using cstruct::make_write;
using paxos::Ballot;
using paxos::RoundType;

const cstruct::KeyConflict kKeyRel;

using Spec = AbstractMCPaxos<History>;

Spec::Config small_universe(int n_acceptors, int f, int e) {
  std::vector<sim::NodeId> ids;
  for (int i = 0; i < n_acceptors; ++i) ids.push_back(i);
  Spec::Config config{paxos::QuorumSystem(std::move(ids), f, e),
                      {
                          Ballot{1, 0, 0, RoundType::kMultiCoord},
                          Ballot{2, 0, 0, RoundType::kFast},
                          Ballot{3, 1, 0, RoundType::kSingleCoord},
                          Ballot{4, 0, 0, RoundType::kFast},
                      },
                      History(&kKeyRel),
                      2};
  return config;
}

std::vector<Command> command_universe() {
  return {make_write(1, "a", "v"), make_write(2, "a", "w"), make_write(3, "b", "v"),
          make_write(4, "c", "v")};
}

/// One random exploration; returns via out-param the number of actions
/// that executed (ASSERT_* requires a void-returning function).
void explore(std::uint64_t seed, int steps, int n_acceptors, int f, int e,
             int* executed_out) {
  util::Rng rng(seed);
  Spec spec(small_universe(n_acceptors, f, e));
  const auto cmds = command_universe();
  const auto balnums = small_universe(n_acceptors, f, e).balnums;
  int executed = 0;

  auto random_ballot = [&]() -> Ballot { return rng.pick(balnums); };
  auto random_acceptor = [&]() -> std::size_t {
    return rng.index(static_cast<std::size_t>(n_acceptors));
  };

  for (int step = 0; step < steps; ++step) {
    const int action = static_cast<int>(rng.uniform(0, 6));
    bool did = false;
    switch (action) {
      case 0:  // Propose
        did = spec.propose(rng.pick(cmds));
        break;
      case 1:  // JoinBallot
        did = spec.join_ballot(random_acceptor(), random_ballot());
        break;
      case 2: {  // StartBallot via the production ProvedSafe rule (Prop. 2)
        const Ballot m = random_ballot();
        if (spec.max_tried(m).has_value()) break;
        // Collect a quorum of acceptors that joined >= m.
        std::vector<std::size_t> joined;
        for (std::size_t a = 0; a < static_cast<std::size_t>(n_acceptors); ++a) {
          if (!(spec.mbal(a) < m)) joined.push_back(a);
        }
        const paxos::QuorumSystem qs = small_universe(n_acceptors, f, e).quorums;
        if (joined.size() < qs.quorum_size(m)) break;
        joined.resize(qs.quorum_size(m));
        const auto picks = spec.proved_safe_for(joined, m);
        ASSERT_FALSE(picks.empty()) << "ProvedSafe returned nothing (Prop. 3 violated)";
        for (const auto& w : picks) {
          EXPECT_TRUE(spec.is_safe_at(w, m))
              << "Proposition 2 violated: ProvedSafe pick not safe at " << m;
        }
        History w = rng.pick(picks);
        if (rng.chance(0.5) && !spec.prop_cmd().empty()) {
          // Extend with a proposed command before starting (w • σ).
          auto it = spec.prop_cmd().begin();
          std::advance(it, static_cast<long>(rng.index(spec.prop_cmd().size())));
          w.append(*it);
        }
        did = spec.start_ballot(m, w);
        break;
      }
      case 3: {  // Suggest
        const Ballot m = random_ballot();
        if (!spec.max_tried(m) || spec.prop_cmd().empty()) break;
        auto it = spec.prop_cmd().begin();
        std::advance(it, static_cast<long>(rng.index(spec.prop_cmd().size())));
        did = spec.suggest(m, {*it});
        break;
      }
      case 4: {  // ClassicVote for maxTried[m]
        const Ballot m = random_ballot();
        const auto tried = spec.max_tried(m);
        if (!tried || m.is_fast()) break;
        did = spec.classic_vote(random_acceptor(), m, *tried);
        break;
      }
      case 5: {  // FastVote
        if (spec.prop_cmd().empty()) break;
        auto it = spec.prop_cmd().begin();
        std::advance(it, static_cast<long>(rng.index(spec.prop_cmd().size())));
        did = spec.fast_vote(random_acceptor(), *it);
        break;
      }
      case 6: {  // AbstractLearn of a currently chosen per-round bound
        const Ballot m = random_ballot();
        // Use the spec's own chosen-at test on the glb of a random quorum.
        std::vector<History> votes;
        for (std::size_t a = 0; a < static_cast<std::size_t>(n_acceptors); ++a) {
          if (auto v = spec.vote(a, m)) votes.push_back(*v);
        }
        if (votes.size() < 2) break;
        const History candidate = votes[0].meet(votes[1]);
        if (spec.is_chosen(candidate)) {
          did = spec.abstract_learn(rng.index(2), candidate);
        }
        break;
      }
    }
    if (!did) continue;
    ++executed;
    const auto violation = spec.check_invariants();
    EXPECT_FALSE(violation.has_value())
        << "after step " << step << ": " << *violation;
    if (violation) break;
  }
  *executed_out = executed;
}

struct ExploreParam {
  std::uint64_t seed;
  int acceptors;
  int f;
  int e;
};

class AbstractExploration : public testing::TestWithParam<ExploreParam> {};

TEST_P(AbstractExploration, InvariantsHoldOnRandomSchedules) {
  const auto& p = GetParam();
  int executed = 0;
  explore(p.seed, 400, p.acceptors, p.f, p.e, &executed);
  // The exploration must actually exercise the machine.
  EXPECT_GT(executed, 50) << "exploration too shallow";
}

INSTANTIATE_TEST_SUITE_P(
    Universes, AbstractExploration,
    testing::Values(ExploreParam{1, 3, 1, 0}, ExploreParam{2, 3, 1, 0},
                    ExploreParam{3, 4, 1, 1}, ExploreParam{4, 4, 1, 1},
                    ExploreParam{5, 5, 2, 1}, ExploreParam{6, 5, 2, 1},
                    ExploreParam{7, 5, 1, 1}, ExploreParam{8, 4, 1, 0}),
    [](const testing::TestParamInfo<ExploreParam>& info) {
      return "n" + std::to_string(info.param.acceptors) + "f" +
             std::to_string(info.param.f) + "e" + std::to_string(info.param.e) + "_s" +
             std::to_string(info.param.seed);
    });

// --- directed scenarios on the abstract machine --------------------------------

TEST(AbstractSpec, ChosenAtRequiresFullQuorum) {
  Spec spec(small_universe(3, 1, 0));
  const Ballot m{1, 0, 0, RoundType::kMultiCoord};
  spec.propose(make_write(1, "a", "v"));
  History v(&kKeyRel);
  v.append(make_write(1, "a", "v"));
  // Nothing is safe at m until a quorum has joined it: Definition 4 makes
  // every value choosable at round 0 while an all-unjoined 0-quorum exists.
  EXPECT_FALSE(spec.start_ballot(m, History(&kKeyRel)));
  ASSERT_TRUE(spec.join_ballot(0, m));
  ASSERT_TRUE(spec.join_ballot(1, m));
  ASSERT_TRUE(spec.start_ballot(m, History(&kKeyRel)));
  ASSERT_TRUE(spec.suggest(m, {make_write(1, "a", "v")}));
  ASSERT_TRUE(spec.classic_vote(0, m, v));
  EXPECT_FALSE(spec.is_chosen_at(v, m));  // 1 of 3 voted; quorum is 2
  ASSERT_TRUE(spec.classic_vote(1, m, v));
  EXPECT_TRUE(spec.is_chosen_at(v, m));
}

TEST(AbstractSpec, ChoosableReflectsJoinedAcceptors) {
  Spec spec(small_universe(3, 1, 0));
  const Ballot m{1, 0, 0, RoundType::kMultiCoord};
  const Ballot higher{3, 1, 0, RoundType::kSingleCoord};
  History v(&kKeyRel);
  v.append(make_write(1, "a", "v"));
  // Nothing joined past m: everything is choosable at m.
  EXPECT_TRUE(spec.is_choosable_at(v, m));
  // All acceptors move past m without voting at it: nothing — not even ⊥ —
  // remains choosable at m, while ⊥ stays choosable at round 0 (everyone
  // voted ⊥ there by initialization).
  for (std::size_t a = 0; a < 3; ++a) spec.join_ballot(a, higher);
  EXPECT_FALSE(spec.is_choosable_at(v, m));
  EXPECT_FALSE(spec.is_choosable_at(History(&kKeyRel), m));
  EXPECT_TRUE(spec.is_choosable_at(History(&kKeyRel), Ballot::zero()));
}

TEST(AbstractSpec, SafeAtForcesChosenPrefix) {
  Spec spec(small_universe(3, 1, 0));
  const Ballot m{1, 0, 0, RoundType::kMultiCoord};
  const Ballot next{3, 1, 0, RoundType::kSingleCoord};
  spec.propose(make_write(1, "a", "v"));
  spec.propose(make_write(2, "a", "w"));
  History v(&kKeyRel);
  v.append(make_write(1, "a", "v"));
  ASSERT_TRUE(spec.join_ballot(0, m));
  ASSERT_TRUE(spec.join_ballot(1, m));
  ASSERT_TRUE(spec.start_ballot(m, v));
  ASSERT_TRUE(spec.classic_vote(0, m, v));
  ASSERT_TRUE(spec.classic_vote(1, m, v));  // v chosen at m
  ASSERT_TRUE(spec.join_ballot(2, next));
  ASSERT_TRUE(spec.join_ballot(1, next));
  // A conflicting history that does not extend v is not safe at the next
  // round; v itself is.
  History other(&kKeyRel);
  other.append(make_write(2, "a", "w"));
  EXPECT_FALSE(spec.is_safe_at(other, next));
  EXPECT_TRUE(spec.is_safe_at(v, next));
  // And start_ballot refuses the unsafe value.
  EXPECT_FALSE(spec.start_ballot(next, other));
  EXPECT_TRUE(spec.start_ballot(next, v));
}

}  // namespace
}  // namespace mcp::genpaxos
