// Reactor-specific TCP transport tests: the properties the epoll rewrite
// introduced on top of the frame/handshake contract that transport_test.cpp
// already pins. Three behaviours matter here:
//
//  1. Backpressure instead of blocking: a peer that stops draining fills
//     its bounded outbound queue; further sends to it are refused (and
//     counted) while every other connection keeps flowing, and the write
//     stall eventually tears the connection down cleanly.
//  2. writev coalescing: a burst of small frames rides few syscalls but
//     arrives intact and in order.
//  3. Constant thread count: client connections are reactor state, not
//     threads — 64 concurrent clients add zero threads.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "transport/frame.hpp"
#include "transport/tcp_transport.hpp"

namespace mcp::transport {
namespace {

using namespace std::chrono_literals;

class Sink {
 public:
  void operator()(PeerId from, std::string payload) {
    std::lock_guard<std::mutex> lock(mu_);
    received_.emplace_back(from, std::move(payload));
    cv_.notify_all();
  }

  Transport::FrameHandler handler() {
    return [this](PeerId from, std::string payload) {
      (*this)(from, std::move(payload));
    };
  }

  bool wait_for(std::size_t n, std::chrono::milliseconds timeout = 10s) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [&] { return received_.size() >= n; });
  }

  std::vector<std::pair<PeerId, std::string>> snapshot() {
    std::lock_guard<std::mutex> lock(mu_);
    return received_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::pair<PeerId, std::string>> received_;
};

/// A listening socket that accepts one connection and drains it only as
/// told — the "slow consumer" end of the backpressure tests. Small kernel
/// buffers so the sender hits EAGAIN with kilobytes, not megabytes.
class SlowDrainer {
 public:
  SlowDrainer() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd_, 0);
    const int tiny = 4096;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof tiny);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    EXPECT_EQ(::listen(listen_fd_, 1), 0);
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
  }

  ~SlowDrainer() {
    if (conn_fd_ >= 0) ::close(conn_fd_);
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  std::uint16_t port() const { return port_; }

  bool accept_one() {
    conn_fd_ = ::accept(listen_fd_, nullptr, nullptr);
    return conn_fd_ >= 0;
  }

  /// Drain a single byte (blocking); false on EOF/error.
  bool drain_byte() {
    char c;
    return ::recv(conn_fd_, &c, 1, 0) == 1;
  }

 private:
  int listen_fd_ = -1;
  int conn_fd_ = -1;
  std::uint16_t port_ = 0;
};

TcpConfig loopback_config(PeerId self) {
  TcpConfig config;
  config.self = self;
  return config;
}

TEST(TcpReactorTest, SlowDrainerHitsQueueBoundNotOtherConnections) {
  TcpConfig config = loopback_config(0);
  config.max_outbound_bytes = 256u << 10;  // small bound: fills fast
  config.write_stall_timeout = 400ms;
  config.dial_backoff = 5s;  // wide window so the post-teardown refusal
                             // cannot race a backoff expiry on a slow runner
  config.so_sndbuf = 4096;   // pin the kernel buffer: autotuned SNDBUF would
                             // silently absorb the whole queue and hide the stall
  TcpTransport a(config);
  a.bind_and_listen();

  SlowDrainer slow;
  a.set_peer(1, {"127.0.0.1", slow.port()});
  TcpTransport b(loopback_config(2));
  a.set_peer(2, {"127.0.0.1", b.bind_and_listen()});

  Sink sink_a, sink_b;
  a.start(sink_a.handler());
  b.start(sink_b.handler());

  // Fill peer 1's queue: 64 KiB frames against a 256 KiB bound and a
  // drainer that reads one byte per poll. The first send opens the dial
  // (connections are lazy), then the kernel buffers absorb a few frames
  // and the bound refuses the rest.
  const std::string big(64u << 10, 'q');
  ASSERT_TRUE(a.send(1, big));
  ASSERT_TRUE(slow.accept_one());
  bool refused = false;
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (!refused && std::chrono::steady_clock::now() < deadline) {
    if (!a.send(1, big)) {
      refused = true;
      break;
    }
    ASSERT_TRUE(slow.drain_byte());  // one byte per send "poll interval"
  }
  ASSERT_TRUE(refused) << "bounded queue never refused a frame";
  EXPECT_GE(a.stats().backpressure_drops, 1);

  // The reactor is not wedged: a frame to the healthy peer still flows
  // while peer 1's queue sits full.
  EXPECT_TRUE(a.send(2, "alive"));
  ASSERT_TRUE(sink_b.wait_for(1));
  EXPECT_EQ(sink_b.snapshot()[0].second, "alive");

  // Stop draining entirely: the write stall trips, the connection tears
  // down, its queued frames are dropped (counted), and the dial backoff
  // refuses follow-up sends instead of re-queueing onto a dead drainer.
  const auto stall_deadline = std::chrono::steady_clock::now() + 10s;
  while (a.stats().conn_drops == 0 &&
         std::chrono::steady_clock::now() < stall_deadline) {
    std::this_thread::sleep_for(20ms);
  }
  EXPECT_GE(a.stats().conn_drops, 1) << "write stall never tore down the connection";
  EXPECT_FALSE(a.send(1, "into backoff"));

  // Clean teardown: the rest of the transport still works.
  EXPECT_TRUE(a.send(2, "still alive"));
  ASSERT_TRUE(sink_b.wait_for(2));
  a.stop();
  b.stop();
}

TEST(TcpReactorTest, WritevCoalescesBurstIntact) {
  TcpTransport a(loopback_config(0)), b(loopback_config(1));
  a.bind_and_listen();
  a.set_peer(1, {"127.0.0.1", b.bind_and_listen()});
  Sink sink;
  a.start([](PeerId, std::string) {});
  b.start(sink.handler());

  // Burst from the sender thread: the first send opens the (asynchronous)
  // dial, so the rest of the burst queues behind the handshake and the
  // first flush carries many frames in one syscall.
  constexpr int kBurst = 200;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(a.send(1, "burst-" + std::to_string(i)));
  }
  ASSERT_TRUE(sink.wait_for(kBurst));

  // Intact and in order (one connection = FIFO).
  const auto got = sink.snapshot();
  for (int i = 0; i < kBurst; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)].second,
              "burst-" + std::to_string(i));
  }

  // Coalescing happened: strictly more frames than syscalls.
  const auto stats = a.stats();
  EXPECT_GE(stats.flushed_frames, kBurst);
  EXPECT_GT(stats.flushes, 0);
  EXPECT_GT(stats.flushed_frames, stats.flushes)
      << "every flush carried exactly one frame — no coalescing";
  a.stop();
  b.stop();
}

/// Threads of this process, from /proc/self/status.
int thread_count() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  int threads = -1;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "Threads: %d", &threads) == 1) break;
  }
  std::fclose(f);
  return threads;
}

TEST(TcpReactorTest, SixtyFourClientsAddNoThreads) {
  TcpTransport rx(loopback_config(0));
  const auto port = rx.bind_and_listen();
  Sink sink;
  rx.start(sink.handler());
  const int baseline = thread_count();
  ASSERT_GT(baseline, 0);

  // 64 concurrent client connections, each sending one frame and waiting
  // for its echo. Under the old transport this spawned 64 reader threads;
  // the reactor serves them all from the one thread it already had.
  constexpr int kClients = 64;
  std::vector<int> fds;
  for (int i = 0; i < kClients; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    fds.push_back(fd);
    const std::string payload = frame("client-" + std::to_string(i));
    ASSERT_EQ(::send(fd, payload.data(), payload.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(payload.size()));
  }
  ASSERT_TRUE(sink.wait_for(kClients));
  EXPECT_EQ(thread_count(), baseline) << "client connections grew the thread count";

  // Each synthetic client id answers over its own socket, duplex.
  for (const auto& [from, payload] : sink.snapshot()) {
    ASSERT_TRUE(TcpTransport::is_client_conn(from));
    ASSERT_TRUE(rx.send(from, "echo:" + payload));
  }
  for (std::size_t i = 0; i < fds.size(); ++i) {
    FrameBuffer buf;
    std::optional<std::string> reply;
    char chunk[512];
    while (!reply.has_value()) {
      const ssize_t n = ::recv(fds[i], chunk, sizeof chunk, 0);
      ASSERT_GT(n, 0) << "client " << i << " got no echo";
      buf.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
      reply = buf.next();
    }
    EXPECT_EQ(reply->rfind("echo:client-", 0), 0u) << *reply;
  }
  EXPECT_EQ(thread_count(), baseline);
  for (const int fd : fds) ::close(fd);
  rx.stop();
}

}  // namespace
}  // namespace mcp::transport
