// Differential test of the production ProvedSafe rule (cardinality
// formulation, §3.3.2) against a literal implementation of Definition 1:
// explicit enumeration of every k-quorum R, the intersections-of-interest
// QinterRAtk, the glb set Γ, and the final pick. Any state where the two
// disagree would be a soundness or completeness bug in the fast rule.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cstruct/history.hpp"
#include "paxos/proved_safe.hpp"
#include "util/rng.hpp"

namespace mcp::paxos {
namespace {

using cstruct::History;
using cstruct::make_write;

const cstruct::KeyConflict kKeyRel;

/// Literal Definition 1 over an explicit acceptor universe.
std::vector<History> proved_safe_oracle(const QuorumSystem& qs,
                                        const std::vector<VoteReport<History>>& reports) {
  // k = highest vrnd in the reports.
  const Ballot k = std::max_element(reports.begin(), reports.end(),
                                    [](const auto& a, const auto& b) { return a.vrnd < b.vrnd; })
                       ->vrnd;
  std::vector<sim::NodeId> kacceptors;
  std::vector<History> kvals;
  for (const auto& r : reports) {
    if (r.vrnd == k) {
      kacceptors.push_back(r.acceptor);
      kvals.push_back(r.vval);
    }
  }
  auto val_of = [&](sim::NodeId a) {
    for (const auto& r : reports) {
      if (r.acceptor == a) return r.vval;
    }
    throw std::logic_error("unknown acceptor");
  };

  // Q = the reporting acceptors; enumerate every k-quorum R over the full
  // universe and keep the intersections Q ∩ R that lie inside kacceptors.
  std::vector<sim::NodeId> q_members;
  for (const auto& r : reports) q_members.push_back(r.acceptor);
  const std::size_t qk = qs.quorum_size(k.is_fast());
  std::vector<std::vector<sim::NodeId>> inters_of_interest;
  for (const auto& idx : combinations(qs.acceptors().size(), qk)) {
    std::vector<sim::NodeId> R;
    for (std::size_t i : idx) R.push_back(qs.acceptors()[i]);
    std::vector<sim::NodeId> inter;
    for (sim::NodeId a : q_members) {
      if (std::find(R.begin(), R.end(), a) != R.end()) inter.push_back(a);
    }
    const bool all_at_k = std::all_of(inter.begin(), inter.end(), [&](sim::NodeId a) {
      return std::find(kacceptors.begin(), kacceptors.end(), a) != kacceptors.end();
    });
    if (all_at_k) inters_of_interest.push_back(inter);
  }

  if (inters_of_interest.empty()) return kvals;  // QinterRAtk = {}

  std::vector<History> gamma;
  for (const auto& inter : inters_of_interest) {
    if (inter.empty()) continue;  // cannot happen under valid assumptions
    std::vector<History> vals;
    for (sim::NodeId a : inter) vals.push_back(val_of(a));
    gamma.push_back(cstruct::meet_all(vals));
  }
  return {cstruct::join_all(gamma)};
}

History hist(std::initializer_list<std::uint64_t> ids, const std::string& key = "hot") {
  History h(&kKeyRel);
  for (auto id : ids) h.append(make_write(id, key, "v"));
  return h;
}

void expect_equivalent(const QuorumSystem& qs, const std::vector<VoteReport<History>>& reports) {
  const auto fast_rule = proved_safe(qs, reports);
  const auto oracle = proved_safe_oracle(qs, reports);
  ASSERT_EQ(fast_rule.size(), oracle.size());
  if (fast_rule.size() == 1) {
    EXPECT_EQ(fast_rule[0], oracle[0]);
  } else {
    // "any reported value at k" — same candidate multiset up to poset eq.
    for (const auto& v : fast_rule) {
      EXPECT_TRUE(std::any_of(oracle.begin(), oracle.end(),
                              [&](const History& w) { return w == v; }));
    }
  }
}

std::vector<sim::NodeId> ids(int n) {
  std::vector<sim::NodeId> out;
  for (int i = 0; i < n; ++i) out.push_back(i);
  return out;
}

TEST(ProvedSafeOracle, DirectedClassicK) {
  const QuorumSystem qs(ids(5), 2, 1);
  const Ballot k{2, 0, 0, RoundType::kMultiCoord};
  expect_equivalent(qs, {{0, k, hist({1, 2})}, {1, k, hist({1})}, {2, k, hist({1, 2, 3})}});
}

TEST(ProvedSafeOracle, DirectedFastKDivergent) {
  const QuorumSystem qs(ids(5), 2, 1);
  const Ballot k{2, 0, 0, RoundType::kFast};
  const auto base = make_write(1, "x", "v");
  History a(&kKeyRel), b(&kKeyRel), c(&kKeyRel);
  a.append(base);
  a.append(make_write(2, "a", "v"));
  b.append(base);
  b.append(make_write(3, "b", "v"));
  c.append(base);
  expect_equivalent(qs, {{0, k, a}, {1, k, b}, {2, k, c}});
}

TEST(ProvedSafeOracle, DirectedIncompleteKQuorum) {
  const QuorumSystem qs(ids(5), 2, 1);
  const Ballot k{3, 0, 0, RoundType::kFast};
  expect_equivalent(qs, {{0, k, hist({9})},
                         {1, Ballot::zero(), History(&kKeyRel)},
                         {2, Ballot::zero(), History(&kKeyRel)}});
}

struct OracleFuzzParam {
  std::uint64_t seed;
  int n;
  int f;
  int e;
};

class ProvedSafeFuzz : public testing::TestWithParam<OracleFuzzParam> {};

TEST_P(ProvedSafeFuzz, MatchesDefinitionOne) {
  const auto& p = GetParam();
  const QuorumSystem qs(ids(p.n), p.f, p.e);
  util::Rng rng(p.seed);
  for (int trial = 0; trial < 150; ++trial) {
    // Random reachable-ish state: a shared base extended per-acceptor with
    // commuting or conflicting commands, votes spread over two rounds.
    const bool k_fast = rng.chance(0.5);
    const Ballot k{2, 0, 0, k_fast ? RoundType::kFast : RoundType::kMultiCoord};
    const Ballot low{1, 0, 0, RoundType::kMultiCoord};
    History base(&kKeyRel);
    const int base_len = static_cast<int>(rng.uniform(0, 3));
    for (int i = 0; i < base_len; ++i) {
      base.append(make_write(static_cast<std::uint64_t>(i + 1), "hot", "v"));
    }
    std::vector<VoteReport<History>> reports;
    const std::size_t q_size = qs.quorum_size(false);
    for (std::size_t a = 0; a < q_size; ++a) {
      History v = base;
      const int extra = static_cast<int>(rng.uniform(0, 2));
      for (int i = 0; i < extra; ++i) {
        const auto id = static_cast<std::uint64_t>(rng.uniform(10, 14));
        // In classic rounds all votes at k must stay compatible
        // (conservative ballot arrays); keep extensions commuting there.
        const std::string key = k_fast ? "hot" : "cold" + std::to_string(id);
        v.append(make_write(id, key, "v"));
      }
      const Ballot vrnd = rng.chance(0.7) ? k : low;
      reports.push_back({static_cast<sim::NodeId>(a), vrnd, vrnd == low ? base : v});
    }
    expect_equivalent(qs, reports);
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, ProvedSafeFuzz,
                         testing::Values(OracleFuzzParam{1, 5, 2, 1}, OracleFuzzParam{2, 5, 2, 1},
                                         OracleFuzzParam{3, 5, 1, 1}, OracleFuzzParam{4, 7, 3, 1},
                                         OracleFuzzParam{5, 4, 1, 1}, OracleFuzzParam{6, 7, 2, 2}),
                         [](const testing::TestParamInfo<OracleFuzzParam>& info) {
                           return "n" + std::to_string(info.param.n) + "f" +
                                  std::to_string(info.param.f) + "e" +
                                  std::to_string(info.param.e) + "_s" +
                                  std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace mcp::paxos
