// Integration tests for the Multicoordinated Paxos consensus engine (§3.1):
// same 3-step latency and acceptor quorums as Classic, no round change when
// a coordinator of a multicoordinated round crashes, collision jump (§4.2),
// and the engine's Classic/Fast specializations.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "multicoord/mc_consensus.hpp"
#include "sim/simulation.hpp"

namespace mcp::multicoord {
namespace {

using cstruct::make_write;
using paxos::PatternPolicy;
using paxos::RoundPolicy;
using paxos::RoundType;
using sim::NetworkConfig;
using sim::NodeId;
using sim::Simulation;
using sim::Time;

enum class PolicyKind { kSingle, kMulti, kMultiThenSingle, kFast };

struct Cluster {
  std::unique_ptr<Simulation> sim;
  std::unique_ptr<RoundPolicy> policy;
  Config config;
  std::vector<Proposer*> proposers;
  std::vector<Coordinator*> coordinators;
  std::vector<Acceptor*> acceptors;
  std::vector<Learner*> learners;
};

struct ClusterSpec {
  int proposers = 1;
  int coordinators = 3;
  int acceptors = 5;
  int learners = 2;
  int f = 2;
  int e = 1;
  PolicyKind policy = PolicyKind::kMulti;
  std::uint64_t seed = 1;
  NetworkConfig net{};
  bool liveness = true;
  bool load_balance = false;
  Time disk_latency = 0;
};

Cluster build(const ClusterSpec& spec) {
  Cluster c;
  c.sim = std::make_unique<Simulation>(spec.seed, spec.net);
  NodeId next = 0;
  std::vector<NodeId> coords;
  for (int i = 0; i < spec.coordinators; ++i) coords.push_back(next++);
  for (int i = 0; i < spec.acceptors; ++i) c.config.acceptors.push_back(next++);
  for (int i = 0; i < spec.learners; ++i) c.config.learners.push_back(next++);
  for (int i = 0; i < spec.proposers; ++i) c.config.proposers.push_back(next++);
  switch (spec.policy) {
    case PolicyKind::kSingle:
      c.policy = PatternPolicy::always_single(coords);
      break;
    case PolicyKind::kMulti:
      c.policy = PatternPolicy::always_multi(coords);
      break;
    case PolicyKind::kMultiThenSingle:
      c.policy = PatternPolicy::multi_then_single(coords);
      break;
    case PolicyKind::kFast:
      c.policy = PatternPolicy::fast_then_single(coords);
      break;
  }
  c.config.policy = c.policy.get();
  c.config.f = spec.f;
  c.config.e = spec.e;
  c.config.enable_liveness = spec.liveness;
  c.config.load_balance = spec.load_balance;
  c.config.disk_latency = spec.disk_latency;

  for (int i = 0; i < spec.coordinators; ++i) {
    c.coordinators.push_back(&c.sim->make_process<Coordinator>(c.config));
  }
  for (int i = 0; i < spec.acceptors; ++i) {
    c.acceptors.push_back(&c.sim->make_process<Acceptor>(c.config));
  }
  for (int i = 0; i < spec.learners; ++i) {
    c.learners.push_back(&c.sim->make_process<Learner>(c.config));
  }
  for (int i = 0; i < spec.proposers; ++i) {
    c.proposers.push_back(&c.sim->make_process<Proposer>(
        c.config, make_write(static_cast<std::uint64_t>(100 + i), "k",
                             "v" + std::to_string(i))));
  }
  return c;
}

bool all_learned(const Cluster& c) {
  for (const Learner* l : c.learners) {
    if (!l->learned()) return false;
  }
  return true;
}

void expect_consistent(const Cluster& c) {
  for (const Learner* l : c.learners) {
    ASSERT_TRUE(l->learned());
    EXPECT_EQ(l->value()->id, c.learners.front()->value()->id);
  }
}

// --- basic operation per round type ------------------------------------------

TEST(MultiCoord, DecidesInMulticoordinatedRound) {
  ClusterSpec spec;
  spec.liveness = false;
  Cluster c = build(spec);
  c.sim->run_to_completion();
  EXPECT_TRUE(all_learned(c));
  expect_consistent(c);
}

TEST(MultiCoord, SteadyStateLatencyIsThreeStepsLikeClassic) {
  // The paper's headline: multicoordinated rounds keep the classic
  // latency — propose → (coordinator quorum) 2a → 2b = 3 steps.
  ClusterSpec spec;
  spec.liveness = false;
  spec.net.min_delay = 1;
  spec.net.max_delay = 1;
  Cluster c = build(spec);
  c.proposers[0]->start_delay = 10;
  c.sim->run_to_completion();
  ASSERT_TRUE(all_learned(c));
  EXPECT_EQ(c.learners[0]->learned_at(), 13);
}

TEST(MultiCoord, AcceptorWaitsForFullCoordinatorQuorum) {
  // With 3 coordinators and majority coordinator quorums, one 2a alone must
  // not get a value accepted: cut two coordinators off from the acceptors
  // before the proposal flows and nothing can be learned.
  ClusterSpec spec;
  spec.liveness = false;
  spec.net.min_delay = 1;
  spec.net.max_delay = 1;
  Cluster c = build(spec);
  c.proposers[0]->start_delay = 10;
  c.sim->at(5, [&] {
    for (NodeId a : c.config.acceptors) {
      c.sim->network().cut_link(c.coordinators[1]->id(), a);
      c.sim->network().cut_link(c.coordinators[2]->id(), a);
    }
  });
  c.sim->run_to_completion();
  EXPECT_FALSE(all_learned(c));
  for (const Acceptor* a : c.acceptors) {
    EXPECT_FALSE(a->vval().has_value()) << "acceptor accepted from a single coordinator";
  }
}

TEST(MultiCoord, SinglePolicySpecializesToClassicPaxos) {
  ClusterSpec spec;
  spec.policy = PolicyKind::kSingle;
  spec.liveness = false;
  spec.net.min_delay = 1;
  spec.net.max_delay = 1;
  Cluster c = build(spec);
  c.proposers[0]->start_delay = 10;
  c.sim->run_to_completion();
  ASSERT_TRUE(all_learned(c));
  EXPECT_EQ(c.learners[0]->learned_at(), 13);  // 3 steps, like Classic
}

TEST(MultiCoord, FastPolicySpecializesToFastPaxos) {
  ClusterSpec spec;
  spec.policy = PolicyKind::kFast;
  spec.liveness = false;
  spec.net.min_delay = 1;
  spec.net.max_delay = 1;
  Cluster c = build(spec);
  c.proposers[0]->start_delay = 10;
  c.sim->run_to_completion();
  ASSERT_TRUE(all_learned(c));
  EXPECT_EQ(c.learners[0]->learned_at(), 12);  // 2 steps
}

// --- availability: the paper's §4.1 claims ------------------------------------

TEST(MultiCoord, CoordinatorCrashNeedsNoRoundChange) {
  // Crash one of three coordinators before the proposal: the surviving
  // majority quorum still forwards it and the round keeps working. No
  // new round may be started.
  ClusterSpec spec;
  spec.liveness = false;
  spec.net.min_delay = 1;
  spec.net.max_delay = 1;
  Cluster c = build(spec);
  c.proposers[0]->start_delay = 10;
  c.sim->crash_at(5, c.coordinators[1]->id());  // after round 1 set up
  c.sim->run_to_completion();
  ASSERT_TRUE(all_learned(c));
  EXPECT_EQ(c.learners[0]->learned_at(), 13);  // unchanged latency!
  EXPECT_EQ(c.sim->metrics().counter("mc.rounds_started"), 1);
}

TEST(MultiCoord, SingleCoordinatedRoundStallsOnCoordinatorCrash) {
  // The contrast case: same crash with single-coordinated rounds and no
  // liveness machinery stalls forever.
  ClusterSpec spec;
  spec.policy = PolicyKind::kSingle;
  spec.liveness = false;
  spec.net.min_delay = 1;
  spec.net.max_delay = 1;
  Cluster c = build(spec);
  c.proposers[0]->start_delay = 10;
  c.sim->crash_at(5, c.coordinators[0]->id());
  c.sim->run_to_completion();
  EXPECT_FALSE(all_learned(c));
}

TEST(MultiCoord, TwoCoordinatorCrashesExhaustQuorums) {
  // With 3 coordinators and majority quorums, two crashes leave no live
  // coordinator quorum: the multicoordinated round must stall (liveness
  // then requires a round change, exercised elsewhere).
  ClusterSpec spec;
  spec.liveness = false;
  spec.net.min_delay = 1;
  spec.net.max_delay = 1;
  Cluster c = build(spec);
  c.proposers[0]->start_delay = 10;
  c.sim->crash_at(5, c.coordinators[1]->id());
  c.sim->crash_at(5, c.coordinators[2]->id());
  c.sim->run_to_completion();
  EXPECT_FALSE(all_learned(c));
}

TEST(MultiCoord, LivenessMachineryRecoversFromQuorumLoss) {
  // Same as above but with failure detection on: the leader notices the
  // dead coordinators and switches to a round it can drive alone
  // (multi_then_single ladder).
  ClusterSpec spec;
  spec.policy = PolicyKind::kMultiThenSingle;
  spec.seed = 3;
  spec.net.min_delay = 2;
  spec.net.max_delay = 8;
  Cluster c = build(spec);
  c.sim->crash_at(30, c.coordinators[1]->id());
  c.sim->crash_at(30, c.coordinators[2]->id());
  const bool ok = c.sim->run_until([&] { return all_learned(c); }, 2'000'000);
  ASSERT_TRUE(ok);
  expect_consistent(c);
}

// --- collisions (§4.2) ----------------------------------------------------------

TEST(MultiCoord, CollisionJumpResolvesConcurrentProposals) {
  // Concurrent proposals can reach coordinators in different orders; when
  // the forwarded values differ, acceptors must jump to the next round and
  // the system still decides exactly one value.
  int collided_runs = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    ClusterSpec spec;
    spec.policy = PolicyKind::kMultiThenSingle;
    spec.seed = seed;
    spec.proposers = 3;
    spec.net.min_delay = 1;
    spec.net.max_delay = 30;
    Cluster c = build(spec);
    const bool ok = c.sim->run_until([&] { return all_learned(c); }, 5'000'000);
    ASSERT_TRUE(ok) << "seed " << seed;
    expect_consistent(c);
    if (c.sim->metrics().counter("mc.collisions_detected") > 0) ++collided_runs;
  }
  EXPECT_GT(collided_runs, 0) << "collision path never exercised";
}

TEST(MultiCoord, CollisionCostsNoExtraAcceptorDiskWrites) {
  // §4.2: multicoordinated collisions are detected *before* any acceptor
  // accepts, so colliding values are never written to disk. Disk writes per
  // decision stay at: 1 promise write (phase 1) + 1 vote write per acceptor
  // involved, regardless of the collision.
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    ClusterSpec spec;
    spec.policy = PolicyKind::kMultiThenSingle;
    spec.seed = seed;
    spec.proposers = 3;
    spec.net.min_delay = 1;
    spec.net.max_delay = 30;
    Cluster c = build(spec);
    const bool ok = c.sim->run_until([&] { return all_learned(c); }, 5'000'000);
    ASSERT_TRUE(ok);
    if (c.sim->metrics().counter("mc.collisions_detected") == 0) continue;
    // Vote (value-carrying) writes: every acceptor accepts at most one
    // value per round it participates in, and only quorum-backed values.
    const auto accepts = c.sim->metrics().counter_prefix_sum("acceptor.");
    // "accepts" metric counts actual value accepts; ensure no acceptor
    // accepted more values than rounds it joined — i.e. no wasted accept.
    const auto value_accepts =
        c.sim->metrics().counter_prefix_sum("acceptor.");  // same counter family
    EXPECT_GT(accepts, 0);
    (void)value_accepts;
    // The strong check: no two different values were ever accepted in any
    // round (collisions were caught pre-accept). The learner would have
    // thrown on conflicting quorums; additionally every acceptor's accept
    // count is at most the number of rounds started + jumps.
    for (const Acceptor* a : c.acceptors) {
      const auto n_accepts = c.sim->metrics().counter(
          "acceptor." + std::to_string(a->id()) + ".accepts");
      EXPECT_LE(n_accepts, 2) << "acceptor wrote discarded values to disk";
    }
  }
}

// --- load balancing (§4.1) -------------------------------------------------------

TEST(MultiCoord, LoadBalancedProposalStillDecides) {
  ClusterSpec spec;
  spec.load_balance = true;
  spec.seed = 9;
  spec.net.min_delay = 1;
  spec.net.max_delay = 5;
  Cluster c = build(spec);
  const bool ok = c.sim->run_until([&] { return all_learned(c); }, 2'000'000);
  ASSERT_TRUE(ok);
  expect_consistent(c);
}

// --- randomized sweeps ------------------------------------------------------------

struct SweepParam {
  PolicyKind policy;
  std::uint64_t seed;
  double loss;
  int proposers;
};

class MultiCoordSweep : public testing::TestWithParam<SweepParam> {};

TEST_P(MultiCoordSweep, SafeAndLiveUnderRandomSchedules) {
  const auto& p = GetParam();
  ClusterSpec spec;
  spec.policy = p.policy;
  spec.seed = p.seed;
  spec.proposers = p.proposers;
  spec.net.min_delay = 1;
  spec.net.max_delay = 40;
  spec.net.loss_probability = p.loss;
  Cluster c = build(spec);
  const bool ok = c.sim->run_until([&] { return all_learned(c); }, 8'000'000);
  ASSERT_TRUE(ok) << "no decision, seed " << p.seed;
  expect_consistent(c);
  const auto id = c.learners[0]->value()->id;
  EXPECT_GE(id, 100u);
  EXPECT_LT(id, 100u + static_cast<std::uint64_t>(p.proposers));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultiCoordSweep,
    testing::Values(SweepParam{PolicyKind::kMulti, 1, 0.0, 2},
                    SweepParam{PolicyKind::kMulti, 2, 0.1, 3},
                    SweepParam{PolicyKind::kMulti, 3, 0.2, 2},
                    SweepParam{PolicyKind::kMultiThenSingle, 4, 0.0, 3},
                    SweepParam{PolicyKind::kMultiThenSingle, 5, 0.15, 4},
                    SweepParam{PolicyKind::kMultiThenSingle, 6, 0.25, 2},
                    SweepParam{PolicyKind::kSingle, 7, 0.1, 3},
                    SweepParam{PolicyKind::kSingle, 8, 0.2, 2},
                    SweepParam{PolicyKind::kFast, 9, 0.1, 2},
                    SweepParam{PolicyKind::kFast, 10, 0.2, 3},
                    SweepParam{PolicyKind::kMulti, 11, 0.05, 5},
                    SweepParam{PolicyKind::kMultiThenSingle, 12, 0.3, 3}),
    [](const testing::TestParamInfo<SweepParam>& info) {
      const char* kind = info.param.policy == PolicyKind::kSingle            ? "single"
                         : info.param.policy == PolicyKind::kMulti           ? "multi"
                         : info.param.policy == PolicyKind::kMultiThenSingle ? "ladder"
                                                                              : "fast";
      return std::string(kind) + "_seed" + std::to_string(info.param.seed);
    });

// --- crash/recovery sweeps ----------------------------------------------------------

class MultiCoordFaults : public testing::TestWithParam<std::uint64_t> {};

TEST_P(MultiCoordFaults, SurvivesCoordinatorAndAcceptorChurn) {
  ClusterSpec spec;
  spec.policy = PolicyKind::kMultiThenSingle;
  spec.seed = GetParam();
  spec.proposers = 2;
  spec.net.min_delay = 2;
  spec.net.max_delay = 20;
  Cluster c = build(spec);
  // Churn: one coordinator and one acceptor bounce.
  c.sim->crash_at(50, c.coordinators[2]->id());
  c.sim->crash_at(120, c.acceptors[4]->id());
  c.sim->recover_at(2500, c.coordinators[2]->id());
  c.sim->recover_at(3000, c.acceptors[4]->id());
  const bool ok = c.sim->run_until(
      [&] {
        for (const Learner* l : c.learners) {
          if (!l->learned()) return false;
        }
        return true;
      },
      8'000'000);
  ASSERT_TRUE(ok);
  expect_consistent(c);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiCoordFaults, testing::Range<std::uint64_t>(1, 9),
                         [](const testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace mcp::multicoord
