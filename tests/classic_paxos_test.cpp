// Integration tests for the standalone Classic Paxos baseline (§2.1):
// latency shape, value forcing across rounds, leader failover, crash
// recovery, and randomized-schedule safety sweeps.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "classic/classic_paxos.hpp"
#include "sim/simulation.hpp"

namespace mcp::classic {
namespace {

using cstruct::make_write;
using sim::NetworkConfig;
using sim::NodeId;
using sim::Simulation;
using sim::Time;

struct Cluster {
  std::unique_ptr<Simulation> sim;
  Config config;
  std::vector<Proposer*> proposers;
  std::vector<Coordinator*> coordinators;
  std::vector<Acceptor*> acceptors;
  std::vector<Learner*> learners;
};

struct ClusterSpec {
  int proposers = 1;
  int coordinators = 3;
  int acceptors = 5;
  int learners = 2;
  std::uint64_t seed = 1;
  NetworkConfig net{};
  bool liveness = true;
  Time disk_latency = 0;
};

Cluster build(const ClusterSpec& spec) {
  Cluster c;
  c.sim = std::make_unique<Simulation>(spec.seed, spec.net);
  // Ids are assigned densely in creation order: coordinators, acceptors,
  // learners, proposers.
  NodeId next = 0;
  for (int i = 0; i < spec.coordinators; ++i) c.config.coordinators.push_back(next++);
  for (int i = 0; i < spec.acceptors; ++i) c.config.acceptors.push_back(next++);
  for (int i = 0; i < spec.learners; ++i) c.config.learners.push_back(next++);
  for (int i = 0; i < spec.proposers; ++i) c.config.proposers.push_back(next++);
  c.config.f = (spec.acceptors - 1) / 2;
  c.config.enable_liveness = spec.liveness;
  c.config.disk_latency = spec.disk_latency;

  for (int i = 0; i < spec.coordinators; ++i) {
    c.coordinators.push_back(&c.sim->make_process<Coordinator>(c.config));
  }
  for (int i = 0; i < spec.acceptors; ++i) {
    c.acceptors.push_back(&c.sim->make_process<Acceptor>(c.config));
  }
  for (int i = 0; i < spec.learners; ++i) {
    c.learners.push_back(&c.sim->make_process<Learner>(c.config));
  }
  for (int i = 0; i < spec.proposers; ++i) {
    c.proposers.push_back(&c.sim->make_process<Proposer>(
        c.config, make_write(static_cast<std::uint64_t>(100 + i), "k",
                             "v" + std::to_string(i))));
  }
  return c;
}

bool all_learned(const Cluster& c) {
  for (const Learner* l : c.learners) {
    if (!l->learned()) return false;
  }
  return true;
}

void expect_consistent(const Cluster& c) {
  for (const Learner* l : c.learners) {
    ASSERT_TRUE(l->learned());
    EXPECT_EQ(l->value()->id, c.learners.front()->value()->id);
  }
}

TEST(ClassicPaxos, DecidesWithoutLivenessMachinery) {
  ClusterSpec spec;
  spec.liveness = false;
  Cluster c = build(spec);
  c.sim->run_to_completion();
  EXPECT_TRUE(all_learned(c));
  expect_consistent(c);
  EXPECT_EQ(c.learners[0]->value()->id, 100u);
}

TEST(ClassicPaxos, SteadyStateLatencyIsThreeSteps) {
  // Unit-delay network, zero disk latency, phase 1 pre-executed: a command
  // proposed at t is learned at t+3 (propose → 2a → 2b), §2.1.2.
  ClusterSpec spec;
  spec.liveness = false;
  spec.net.min_delay = 1;
  spec.net.max_delay = 1;
  Cluster c = build(spec);
  const Time kProposeAt = 10;
  c.proposers[0]->start_delay = kProposeAt;
  c.sim->run_to_completion();
  ASSERT_TRUE(all_learned(c));
  EXPECT_EQ(c.learners[0]->learned_at(), kProposeAt + 3);
}

TEST(ClassicPaxos, FirstCommandPaysForPhaseOne) {
  // Without the a-priori phase 1 the decision costs 5 steps from t=0
  // (1a, 1b, then propose-already-there → 2a, 2b... here propose overlaps
  // phase 1, so: 1a@1, 1b@2, 2a@3, 2b@4).
  ClusterSpec spec;
  spec.liveness = false;
  spec.net.min_delay = 1;
  spec.net.max_delay = 1;
  Cluster c = build(spec);
  c.sim->run_to_completion();
  ASSERT_TRUE(all_learned(c));
  EXPECT_EQ(c.learners[0]->learned_at(), 4);
}

TEST(ClassicPaxos, HigherRoundPreservesDecision) {
  // Stability across rounds: after a decision, a different coordinator
  // starting a higher round must re-decide the same value (the picking
  // rule forces it).
  ClusterSpec spec;
  spec.liveness = false;
  Cluster c = build(spec);
  c.sim->run_to_completion();
  ASSERT_TRUE(all_learned(c));
  const auto decided = *c.learners[0]->value();

  c.sim->at(c.sim->now() + 10, [&] { c.coordinators[1]->start_round(10); });
  c.sim->run_to_completion();
  expect_consistent(c);
  EXPECT_EQ(c.learners[0]->value()->id, decided.id);
}

TEST(ClassicPaxos, DiskLatencyDelaysDecision) {
  ClusterSpec spec;
  spec.liveness = false;
  spec.net.min_delay = 1;
  spec.net.max_delay = 1;
  spec.disk_latency = 10;
  Cluster c = build(spec);
  c.proposers[0]->start_delay = 50;  // phase 1 (incl. its disk write) done
  c.sim->run_to_completion();
  ASSERT_TRUE(all_learned(c));
  // 3 network steps + 1 synchronous vote write.
  EXPECT_EQ(c.learners[0]->learned_at(), 50 + 3 + 10);
}

TEST(ClassicPaxos, LeaderCrashFailsOverAndStillDecides) {
  ClusterSpec spec;
  spec.seed = 7;
  spec.net.min_delay = 5;
  spec.net.max_delay = 15;
  Cluster c = build(spec);
  // Kill the initial leader before it can finish anything.
  c.sim->crash_at(1, c.coordinators[0]->id());
  const bool ok = c.sim->run_until([&] { return all_learned(c); }, 1'000'000);
  ASSERT_TRUE(ok) << "no decision after leader crash";
  expect_consistent(c);
  EXPECT_GE(c.sim->metrics().counter("classic.rounds_started"), 1);
}

TEST(ClassicPaxos, LeaderCrashMidRoundRecovered) {
  ClusterSpec spec;
  spec.seed = 11;
  spec.net.min_delay = 5;
  spec.net.max_delay = 15;
  spec.proposers = 2;
  Cluster c = build(spec);
  // Crash the leader while phase 2 may be in flight; recover it later.
  c.sim->crash_at(40, c.coordinators[0]->id());
  c.sim->recover_at(5000, c.coordinators[0]->id());
  const bool ok = c.sim->run_until([&] { return all_learned(c); }, 1'000'000);
  ASSERT_TRUE(ok);
  expect_consistent(c);
}

TEST(ClassicPaxos, AcceptorCrashRecoverKeepsVote) {
  ClusterSpec spec;
  spec.seed = 3;
  spec.liveness = true;
  spec.net.min_delay = 5;
  spec.net.max_delay = 15;
  Cluster c = build(spec);
  Acceptor* victim = c.acceptors[0];
  c.sim->crash_at(30, victim->id());
  c.sim->recover_at(400, victim->id());
  const bool ok = c.sim->run_until([&] { return all_learned(c); }, 1'000'000);
  ASSERT_TRUE(ok);
  expect_consistent(c);
  // If the victim voted before crashing, its recovered state must match
  // what it persisted (never regress).
  if (victim->vval().has_value()) {
    EXPECT_GE(victim->vrnd().count, 1);
  }
}

TEST(ClassicPaxos, MinorityAcceptorCrashHarmless) {
  ClusterSpec spec;
  spec.seed = 13;
  spec.net.min_delay = 5;
  spec.net.max_delay = 15;
  Cluster c = build(spec);
  c.sim->crash_at(1, c.acceptors[0]->id());
  c.sim->crash_at(1, c.acceptors[1]->id());  // f = 2 with n = 5
  const bool ok = c.sim->run_until([&] { return all_learned(c); }, 1'000'000);
  ASSERT_TRUE(ok);
  expect_consistent(c);
}

struct SweepParam {
  std::uint64_t seed;
  double loss;
  double dup;
  int proposers;
};

class ClassicPaxosSweep : public testing::TestWithParam<SweepParam> {};

TEST_P(ClassicPaxosSweep, SafeAndLiveUnderRandomSchedules) {
  const auto& p = GetParam();
  ClusterSpec spec;
  spec.seed = p.seed;
  spec.proposers = p.proposers;
  spec.net.min_delay = 1;
  spec.net.max_delay = 40;
  spec.net.loss_probability = p.loss;
  spec.net.duplication_probability = p.dup;
  Cluster c = build(spec);
  const bool ok = c.sim->run_until([&] { return all_learned(c); }, 5'000'000);
  ASSERT_TRUE(ok) << "no decision under seed " << p.seed;
  expect_consistent(c);
  // Nontriviality: the decision is one of the proposed commands.
  const auto id = c.learners[0]->value()->id;
  EXPECT_GE(id, 100u);
  EXPECT_LT(id, 100u + static_cast<std::uint64_t>(p.proposers));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClassicPaxosSweep,
    testing::Values(SweepParam{1, 0.0, 0.0, 1}, SweepParam{2, 0.0, 0.0, 3},
                    SweepParam{3, 0.1, 0.0, 2}, SweepParam{4, 0.2, 0.1, 2},
                    SweepParam{5, 0.1, 0.2, 3}, SweepParam{6, 0.3, 0.0, 1},
                    SweepParam{7, 0.2, 0.2, 4}, SweepParam{8, 0.05, 0.05, 5},
                    SweepParam{9, 0.15, 0.1, 3}, SweepParam{10, 0.25, 0.15, 2}),
    [](const testing::TestParamInfo<SweepParam>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace mcp::classic
