// Tests for the delta-encoded 2a/2b layer: suffix_after/apply_suffix
// round-trips for all three c-structs, wire round-trips of the delta and
// resync messages, an acceptor fed a mixed full/delta 2a stream (including
// chain gaps, stale duplicates and incarnation changes), a learner fed a
// mixed 2b stream, and the guarantee that turning deltas on does not change
// protocol outcomes for a fixed seed.

#include <gtest/gtest.h>

#include <any>
#include <memory>
#include <string>
#include <vector>

#include "genpaxos/engine.hpp"
#include "paxos/wire.hpp"

namespace mcp {
namespace {

using cstruct::Command;
using cstruct::CSet;
using cstruct::History;
using cstruct::KeyConflict;
using cstruct::make_write;
using cstruct::SingleValue;
using paxos::Ballot;

const KeyConflict kKeyRel;

// --- suffix_after / apply_suffix ---------------------------------------------

TEST(DeltaCodec, HistoryLiteralPrefixSuffixRoundTrips) {
  History base(&kKeyRel);
  base.append(make_write(1, "a", "x"));
  base.append(make_write(2, "b", "y"));
  History grown = base;
  grown.append(make_write(3, "a", "z"));
  grown.append(make_write(4, "c", "w"));

  const auto suffix = grown.suffix_after(base);
  ASSERT_TRUE(suffix.has_value());
  ASSERT_EQ(suffix->size(), 2u);
  EXPECT_EQ((*suffix)[0].id, 3u);
  EXPECT_EQ((*suffix)[1].id, 4u);

  History rebuilt = base;
  rebuilt.apply_suffix(*suffix);
  EXPECT_TRUE(rebuilt == grown);

  // Empty suffix: a value trivially extends itself.
  const auto empty = grown.suffix_after(grown);
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

TEST(DeltaCodec, HistoryInterleavedCommutingSuffixRoundTrips) {
  // `grown` extends `base` but base is not a literal prefix of grown's
  // linearization: commuting commands are interleaved.
  History base(&kKeyRel);
  base.append(make_write(1, "a", "x"));
  base.append(make_write(2, "b", "y"));
  History grown(&kKeyRel);
  grown.append(make_write(1, "a", "x"));
  grown.append(make_write(3, "c", "z"));
  grown.append(make_write(2, "b", "y"));
  grown.append(make_write(4, "a", "w"));
  ASSERT_TRUE(grown.extends(base));

  const auto suffix = grown.suffix_after(base);
  ASSERT_TRUE(suffix.has_value());
  ASSERT_EQ(suffix->size(), 2u);
  EXPECT_EQ((*suffix)[0].id, 3u);
  EXPECT_EQ((*suffix)[1].id, 4u);

  History rebuilt = base;
  rebuilt.apply_suffix(*suffix);
  EXPECT_TRUE(rebuilt == grown);  // poset equality, not same linearization
}

TEST(DeltaCodec, HistoryNonExtensionHasNoSuffix) {
  History a(&kKeyRel);
  a.append(make_write(1, "hot", "x"));
  History b(&kKeyRel);
  b.append(make_write(2, "hot", "y"));
  EXPECT_FALSE(a.suffix_after(b).has_value());
  EXPECT_FALSE(b.suffix_after(a).has_value());
  // A shorter value never extends a longer one.
  History longer = a;
  longer.append(make_write(3, "k", "z"));
  EXPECT_FALSE(a.suffix_after(longer).has_value());
}

TEST(DeltaCodec, CSetSuffixRoundTrips) {
  CSet base;
  base.append(make_write(1, "a", "x"));
  base.append(make_write(2, "b", "y"));
  CSet grown = base;
  grown.append(make_write(4, "d", "w"));
  grown.append(make_write(3, "c", "z"));

  const auto suffix = grown.suffix_after(base);
  ASSERT_TRUE(suffix.has_value());
  ASSERT_EQ(suffix->size(), 2u);  // id order
  EXPECT_EQ((*suffix)[0].id, 3u);
  EXPECT_EQ((*suffix)[1].id, 4u);

  CSet rebuilt = base;
  rebuilt.apply_suffix(*suffix);
  EXPECT_TRUE(rebuilt == grown);

  EXPECT_FALSE(base.suffix_after(grown).has_value());
}

TEST(DeltaCodec, SingleValueSuffixRoundTrips) {
  const SingleValue bottom;
  const SingleValue decided{make_write(1, "a", "x")};
  const SingleValue other{make_write(2, "a", "y")};

  const auto from_bottom = decided.suffix_after(bottom);
  ASSERT_TRUE(from_bottom.has_value());
  ASSERT_EQ(from_bottom->size(), 1u);
  SingleValue rebuilt = bottom;
  rebuilt.apply_suffix(*from_bottom);
  EXPECT_TRUE(rebuilt == decided);

  const auto self = decided.suffix_after(decided);
  ASSERT_TRUE(self.has_value());
  EXPECT_TRUE(self->empty());

  EXPECT_TRUE(bottom.suffix_after(bottom).has_value());
  EXPECT_FALSE(bottom.suffix_after(decided).has_value());
  EXPECT_FALSE(decided.suffix_after(other).has_value());
}

// --- wire round trips of the delta messages ----------------------------------

template <typename M>
M round_trip(const wire::DecoderRegistry& reg, const M& m) {
  const wire::Envelope env = wire::make_envelope(m);
  const wire::Envelope back = wire::Envelope::decode(env.encode());
  EXPECT_EQ(back.tag, M::kTag);
  return std::any_cast<M>(reg.decode(back));
}

TEST(DeltaCodec, DeltaMessagesRoundTripOnTheWire) {
  wire::DecoderRegistry reg;
  genpaxos::register_wire_messages(reg, History(&kKeyRel));

  const Ballot b{7, 2, 1, paxos::RoundType::kMultiCoord};
  genpaxos::Msg2aDelta d2a{b, 3, wire::Delta{5, {make_write(9, "k", "v")}}};
  const auto back2a = round_trip(reg, d2a);
  EXPECT_EQ(back2a.b, b);
  EXPECT_EQ(back2a.inc, 3);
  EXPECT_EQ(back2a.delta.base_size, 5u);
  ASSERT_EQ(back2a.delta.suffix.size(), 1u);
  EXPECT_EQ(back2a.delta.suffix[0].id, 9u);
  EXPECT_EQ(back2a.delta.suffix[0].key, "k");

  genpaxos::Msg2bDelta d2b{b, wire::Delta{2, {make_write(4, "a", "x"), make_write(5, "b", "y")}}};
  const auto back2b = round_trip(reg, d2b);
  EXPECT_EQ(back2b.b, b);
  EXPECT_EQ(back2b.delta.base_size, 2u);
  ASSERT_EQ(back2b.delta.suffix.size(), 2u);

  // Empty suffix (a retransmission heartbeat) survives too.
  genpaxos::Msg2bDelta empty{b, wire::Delta{4, {}}};
  EXPECT_TRUE(round_trip(reg, empty).delta.suffix.empty());

  EXPECT_EQ(round_trip(reg, genpaxos::MsgResync2a{b}).b, b);
  EXPECT_EQ(round_trip(reg, genpaxos::MsgResync2b{b}).b, b);

  // The full 2a now carries the sender incarnation.
  genpaxos::Msg2a<History> full{b, std::make_shared<const History>(History(&kKeyRel)), 2};
  EXPECT_EQ(round_trip(reg, full).inc, 2);

  // Truncated delta bodies must throw, never half-apply.
  const wire::Envelope whole = wire::Envelope::decode(wire::make_envelope(d2a).encode());
  for (std::size_t len = 0; len < whole.body.size(); ++len) {
    EXPECT_THROW(reg.decode(wire::Envelope{whole.tag, 0, whole.body.substr(0, len)}),
                 std::invalid_argument);
  }
}

// --- acceptor: mixed full/delta 2a stream ------------------------------------

struct Cluster {
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<paxos::RoundPolicy> policy;
  genpaxos::Config<History> config;
  std::vector<genpaxos::GenCoordinator<History>*> coordinators;
  std::vector<genpaxos::GenAcceptor<History>*> acceptors;
  std::vector<genpaxos::GenLearner<History>*> learners;
  std::vector<genpaxos::GenProposer<History>*> proposers;

  bool all_learned(std::size_t n) const {
    for (const auto* l : learners) {
      if (l->learned().size() < n) return false;
    }
    return true;
  }
};

Cluster build(std::uint64_t seed, bool deltas, bool multi_coord = false,
              sim::NetworkConfig net = {}, bool liveness = false) {
  Cluster c;
  c.sim = std::make_unique<sim::Simulation>(seed, net);
  sim::NodeId next = 0;
  std::vector<sim::NodeId> coords;
  for (int i = 0; i < 3; ++i) coords.push_back(next++);
  for (int i = 0; i < 5; ++i) c.config.acceptors.push_back(next++);
  for (int i = 0; i < 2; ++i) c.config.learners.push_back(next++);
  for (int i = 0; i < 2; ++i) c.config.proposers.push_back(next++);
  c.policy = multi_coord ? paxos::PatternPolicy::always_multi(coords)
                         : paxos::PatternPolicy::always_single(coords);
  c.config.policy = c.policy.get();
  c.config.f = 2;
  c.config.e = 1;
  c.config.bottom = History(&kKeyRel);
  c.config.delta_messages = deltas;
  c.config.enable_liveness = liveness;
  for (int i = 0; i < 3; ++i) {
    c.coordinators.push_back(
        &c.sim->make_process<genpaxos::GenCoordinator<History>>(c.config));
  }
  for (int i = 0; i < 5; ++i) {
    c.acceptors.push_back(&c.sim->make_process<genpaxos::GenAcceptor<History>>(c.config));
  }
  for (int i = 0; i < 2; ++i) {
    c.learners.push_back(&c.sim->make_process<genpaxos::GenLearner<History>>(c.config));
  }
  for (int i = 0; i < 2; ++i) {
    c.proposers.push_back(&c.sim->make_process<genpaxos::GenProposer<History>>(c.config));
  }
  return c;
}

std::shared_ptr<const History> hist(std::vector<Command> cmds) {
  History h(&kKeyRel);
  for (const Command& c : cmds) h.append(c);
  return std::make_shared<const History>(std::move(h));
}

TEST(DeltaCodec, AcceptorAppliesMixedFullAndDeltaStream) {
  // Messages are injected directly into the acceptor (the simulation is
  // never run), so every transition is deterministic and observable.
  Cluster c = build(1, true);
  auto* acc = c.acceptors[0];
  const sim::NodeId coord = c.coordinators[0]->id();
  const Ballot b = c.policy->make_ballot(1, coord, 0);

  // Full 2a opens the chain; a singleton coordinator quorum accepts it.
  acc->on_message(coord, std::any(genpaxos::Msg2a<History>{
                             b, hist({make_write(1, "a", "x")}), 0}));
  EXPECT_EQ(acc->vrnd(), b);
  EXPECT_TRUE(acc->vval().contains(make_write(1, "a", "x")));

  // Delta extends it.
  acc->on_message(coord, std::any(genpaxos::Msg2aDelta{
                             b, 0, wire::Delta{1, {make_write(2, "b", "y")}}}));
  EXPECT_EQ(acc->vval().size(), 2u);
  EXPECT_TRUE(acc->vval().contains(make_write(2, "b", "y")));

  // Chain gap (a lost delta): rejected with a resync request, no state change.
  acc->on_message(coord, std::any(genpaxos::Msg2aDelta{
                             b, 0, wire::Delta{5, {make_write(9, "c", "z")}}}));
  EXPECT_EQ(acc->vval().size(), 2u);
  EXPECT_EQ(c.sim->metrics().counter("gen.2a_resync_requests"), 1);

  // Stale duplicate (an old delta redelivered): silently ignored.
  acc->on_message(coord, std::any(genpaxos::Msg2aDelta{
                             b, 0, wire::Delta{1, {make_write(2, "b", "y")}}}));
  EXPECT_EQ(acc->vval().size(), 2u);
  EXPECT_EQ(c.sim->metrics().counter("gen.2a_resync_requests"), 1);

  // A delta from an incarnation we have no base for: resync, not apply.
  acc->on_message(coord, std::any(genpaxos::Msg2aDelta{
                             b, 1, wire::Delta{2, {make_write(3, "c", "z")}}}));
  EXPECT_EQ(acc->vval().size(), 2u);
  EXPECT_EQ(c.sim->metrics().counter("gen.2a_resync_requests"), 2);

  // The resync fallback: a full 2a re-establishes the chain and the next
  // delta applies again.
  acc->on_message(coord, std::any(genpaxos::Msg2a<History>{
                             b, hist({make_write(1, "a", "x"), make_write(2, "b", "y"),
                                      make_write(3, "c", "z")}),
                             1}));
  acc->on_message(coord, std::any(genpaxos::Msg2aDelta{
                             b, 1, wire::Delta{3, {make_write(4, "d", "w")}}}));
  EXPECT_EQ(acc->vval().size(), 4u);
}

TEST(DeltaCodec, LearnerAppliesMixedFullAndDelta2bStream) {
  Cluster c = build(1, true);
  auto* learner = c.learners[0];
  const Ballot b = c.policy->make_ballot(1, c.coordinators[0]->id(), 0);
  const auto v1 = hist({make_write(1, "a", "x")});

  // Full 2b from a quorum (3 of 5 with f = 2): the command is learned.
  for (int i = 0; i < 3; ++i) {
    learner->on_message(c.acceptors[i]->id(), std::any(genpaxos::Msg2b<History>{b, v1}));
  }
  EXPECT_EQ(learner->learned().size(), 1u);

  // Delta 2bs from the same quorum: the extension is learned.
  for (int i = 0; i < 3; ++i) {
    learner->on_message(c.acceptors[i]->id(),
                        std::any(genpaxos::Msg2bDelta{
                            b, wire::Delta{1, {make_write(2, "b", "y")}}}));
  }
  EXPECT_EQ(learner->learned().size(), 2u);
  EXPECT_TRUE(learner->learned().contains(make_write(2, "b", "y")));

  // First contact via delta (no cached base): resync request, nothing learned.
  learner->on_message(c.acceptors[3]->id(),
                      std::any(genpaxos::Msg2bDelta{
                          b, wire::Delta{2, {make_write(3, "c", "z")}}}));
  EXPECT_EQ(learner->learned().size(), 2u);
  EXPECT_EQ(c.sim->metrics().counter("gen.2b_resync_requests"), 1);
}

// --- deltas on/off determinism ------------------------------------------------

constexpr std::size_t kCommands = 12;

void drive(Cluster& c) {
  for (std::size_t i = 0; i < kCommands; ++i) {
    c.sim->at(static_cast<sim::Time>(7 * i), [&c, i] {
      c.proposers[i % c.proposers.size()]->propose(
          make_write(i + 1, i % 3 == 0 ? "hot" : "k" + std::to_string(i), "v"));
    });
  }
  const bool ok = c.sim->run_until([&c] { return c.all_learned(kCommands); }, 5'000'000);
  ASSERT_TRUE(ok);
}

TEST(DeltaCodec, DeltasDoNotChangeOutcomesFixedDelay) {
  // With a constant delay and no loss the RNG is never consumed, deliveries
  // keep send order, and no resync is ever needed — so the delta run must
  // be event-for-event identical to the full-value run, at a fraction of
  // the bytes.
  for (std::uint64_t seed : {1ull, 7ull}) {
    sim::NetworkConfig net;
    net.min_delay = 3;
    net.max_delay = 3;
    Cluster delta = build(seed, true, /*multi_coord=*/true, net);
    Cluster full = build(seed, false, /*multi_coord=*/true, net);
    drive(delta);
    drive(full);
    EXPECT_EQ(delta.sim->now(), full.sim->now()) << "seed " << seed;
    EXPECT_EQ(delta.sim->events_processed(), full.sim->events_processed())
        << "seed " << seed;
    for (std::size_t l = 0; l < delta.learners.size(); ++l) {
      const auto& a = delta.learners[l]->learned().sequence();
      const auto& b = full.learners[l]->learned().sequence();
      ASSERT_EQ(a.size(), b.size()) << "seed " << seed;
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i]) << "seed " << seed << " pos " << i;
      }
    }
    EXPECT_EQ(delta.sim->metrics().counter("gen.2a_resync_requests"), 0);
    EXPECT_EQ(delta.sim->metrics().counter("gen.2b_resync_requests"), 0);
    // Same outcome, fewer bytes: the point of the encoding.
    EXPECT_LT(delta.sim->metrics().counter("net.bytes_sent"),
              full.sim->metrics().counter("net.bytes_sent"))
        << "seed " << seed;
    EXPECT_LT(delta.sim->metrics().counter("net.bytes.gen.2a"),
              full.sim->metrics().counter("net.bytes.gen.2a"))
        << "seed " << seed;
  }
}

TEST(DeltaCodec, DeltasConvergeUnderLossAndJitter) {
  // Under loss the two runs diverge in traffic (resyncs), so assert the
  // protocol guarantees instead: both complete and stay consistent.
  for (std::uint64_t seed : {3ull, 11ull}) {
    sim::NetworkConfig net;
    net.min_delay = 1;
    net.max_delay = 9;
    net.loss_probability = 0.05;
    net.duplication_probability = 0.02;
    // Liveness machinery is required to recover from lost messages.
    Cluster delta = build(seed, true, /*multi_coord=*/true, net, /*liveness=*/true);
    Cluster full = build(seed, false, /*multi_coord=*/true, net, /*liveness=*/true);
    drive(delta);
    drive(full);
    for (const Cluster* c : {&delta, &full}) {
      EXPECT_TRUE(c->learners[0]->learned().compatible(c->learners[1]->learned()))
          << "seed " << seed;
      EXPECT_GE(c->learners[0]->learned().size(), kCommands) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace mcp
