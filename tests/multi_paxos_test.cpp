// Integration tests for the MultiPaxos (log replication) baseline and the
// KV state machine / workload substrate.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "classic/multi_paxos.hpp"
#include "sim/simulation.hpp"
#include "smr/kv.hpp"

namespace mcp::classic {
namespace {

using cstruct::Command;
using cstruct::make_read;
using cstruct::make_write;
using sim::NetworkConfig;
using sim::NodeId;
using sim::Simulation;
using sim::Time;

struct Cluster {
  std::unique_ptr<Simulation> sim;
  MultiConfig config;
  std::vector<MultiProposer*> proposers;
  std::vector<MultiCoordinator*> coordinators;
  std::vector<MultiAcceptor*> acceptors;
  std::vector<MultiLearner*> learners;
};

struct ClusterSpec {
  int proposers = 2;
  int coordinators = 3;
  int acceptors = 5;
  int learners = 2;
  std::uint64_t seed = 1;
  NetworkConfig net{};
};

Cluster build(const ClusterSpec& spec) {
  Cluster c;
  c.sim = std::make_unique<Simulation>(spec.seed, spec.net);
  NodeId next = 0;
  for (int i = 0; i < spec.coordinators; ++i) c.config.coordinators.push_back(next++);
  for (int i = 0; i < spec.acceptors; ++i) c.config.acceptors.push_back(next++);
  for (int i = 0; i < spec.learners; ++i) c.config.learners.push_back(next++);
  for (int i = 0; i < spec.proposers; ++i) c.config.proposers.push_back(next++);
  c.config.f = (spec.acceptors - 1) / 2;
  for (int i = 0; i < spec.coordinators; ++i) {
    c.coordinators.push_back(&c.sim->make_process<MultiCoordinator>(c.config));
  }
  for (int i = 0; i < spec.acceptors; ++i) {
    c.acceptors.push_back(&c.sim->make_process<MultiAcceptor>(c.config));
  }
  for (int i = 0; i < spec.learners; ++i) {
    c.learners.push_back(&c.sim->make_process<MultiLearner>(c.config));
  }
  for (int i = 0; i < spec.proposers; ++i) {
    c.proposers.push_back(&c.sim->make_process<MultiProposer>(c.config));
  }
  return c;
}

bool all_decided(const Cluster& c, std::size_t count) {
  for (const auto* l : c.learners) {
    if (l->decided_count() < count) return false;
  }
  return true;
}

void expect_same_logs(const Cluster& c) {
  const auto& ref = c.learners.front()->log();
  for (const auto* l : c.learners) {
    for (const auto& [inst, cmd] : l->log()) {
      auto it = ref.find(inst);
      if (it != ref.end()) {
        EXPECT_EQ(it->second.id, cmd.id) << "logs disagree at instance " << inst;
      }
    }
  }
}

TEST(MultiPaxos, StreamDecidedInSubmissionOrderUnderOneLeader) {
  ClusterSpec spec;
  spec.net.min_delay = 1;
  spec.net.max_delay = 1;
  Cluster c = build(spec);
  constexpr std::size_t kCount = 10;
  for (std::size_t i = 0; i < kCount; ++i) {
    c.sim->at(static_cast<Time>(50 + 10 * i), [&, i] {
      c.proposers[0]->propose(make_write(i + 1, "k", "v" + std::to_string(i)));
    });
  }
  ASSERT_TRUE(c.sim->run_until([&] { return all_decided(c, kCount); }, 1'000'000));
  expect_same_logs(c);
  EXPECT_EQ(c.learners[0]->contiguous_prefix(), kCount);
  // FIFO under a stable leader: instance order = submission order.
  std::uint64_t expect_id = 1;
  for (const auto& [inst, cmd] : c.learners[0]->log()) {
    EXPECT_EQ(cmd.id, expect_id++);
  }
}

TEST(MultiPaxos, PerCommandLatencyIsThreeSteps) {
  ClusterSpec spec;
  spec.net.min_delay = 1;
  spec.net.max_delay = 1;
  Cluster c = build(spec);
  c.sim->at(100, [&] { c.proposers[0]->propose(make_write(1, "k", "v")); });
  ASSERT_TRUE(c.sim->run_until([&] { return all_decided(c, 1); }, 1'000'000));
  // Proposed at 100: propose → 2a → 2b = 3 hops.
  EXPECT_EQ(c.sim->now(), 103);
}

TEST(MultiPaxos, LeaderFailoverMidStream) {
  ClusterSpec spec;
  spec.seed = 5;
  spec.net.min_delay = 2;
  spec.net.max_delay = 10;
  Cluster c = build(spec);
  constexpr std::size_t kCount = 8;
  for (std::size_t i = 0; i < kCount; ++i) {
    c.sim->at(static_cast<Time>(30 + 40 * i), [&, i] {
      c.proposers[i % 2]->propose(make_write(i + 1, "k", "v"));
    });
  }
  c.sim->crash_at(120, c.coordinators[0]->id());  // leader dies mid-stream
  ASSERT_TRUE(c.sim->run_until([&] { return all_decided(c, kCount); }, 5'000'000));
  expect_same_logs(c);
  EXPECT_EQ(c.learners[0]->decided_count(), kCount);
}

TEST(MultiPaxos, SurvivesMessageLoss) {
  ClusterSpec spec;
  spec.seed = 9;
  spec.net.min_delay = 1;
  spec.net.max_delay = 20;
  spec.net.loss_probability = 0.15;
  Cluster c = build(spec);
  constexpr std::size_t kCount = 6;
  for (std::size_t i = 0; i < kCount; ++i) {
    c.sim->at(static_cast<Time>(20 * i), [&, i] {
      c.proposers[i % 2]->propose(make_write(i + 1, "k", "v"));
    });
  }
  ASSERT_TRUE(c.sim->run_until([&] { return all_decided(c, kCount); }, 5'000'000));
  expect_same_logs(c);
}

TEST(MultiPaxos, AcceptorRecoveryReplaysPersistedVotes) {
  ClusterSpec spec;
  spec.seed = 3;
  spec.net.min_delay = 1;
  spec.net.max_delay = 8;
  Cluster c = build(spec);
  for (std::size_t i = 0; i < 4; ++i) {
    c.sim->at(static_cast<Time>(20 * i), [&, i] {
      c.proposers[0]->propose(make_write(i + 1, "k", "v"));
    });
  }
  c.sim->crash_at(50, c.acceptors[0]->id());
  c.sim->recover_at(500, c.acceptors[0]->id());
  ASSERT_TRUE(c.sim->run_until([&] { return all_decided(c, 4); }, 5'000'000));
  expect_same_logs(c);
}

}  // namespace
}  // namespace mcp::classic

namespace mcp::smr {
namespace {

using cstruct::make_read;
using cstruct::make_write;

TEST(KVStore, AppliesWritesAndReads) {
  KVStore kv;
  EXPECT_TRUE(kv.apply(make_write(1, "a", "x")).found);
  EXPECT_EQ(kv.apply(make_read(2, "a")).value, "x");
  EXPECT_FALSE(kv.apply(make_read(3, "missing")).found);
  EXPECT_EQ(kv.applied_count(), 3u);
}

TEST(KVStore, StateEqualityIgnoresReadOrder) {
  KVStore a, b;
  a.apply(make_write(1, "k", "v"));
  a.apply(make_read(2, "k"));
  b.apply(make_read(2, "k"));
  b.apply(make_write(1, "k", "v"));
  EXPECT_EQ(a, b);
}

TEST(Workload, ConflictFractionShapesKeys) {
  util::Rng rng(42);
  Workload all_hot({200, 1.0, 0.0, 1}, rng);
  for (const auto& c : all_hot.commands()) EXPECT_EQ(c.key, "hot");
  Workload all_cold({200, 0.0, 0.0, 1000}, rng);
  for (const auto& c : all_cold.commands()) EXPECT_NE(c.key, "hot");
  Workload mixed({2000, 0.3, 0.0, 5000}, rng);
  int hot = 0;
  for (const auto& c : mixed.commands()) {
    if (c.key == "hot") ++hot;
  }
  EXPECT_NEAR(hot / 2000.0, 0.3, 0.05);
}

TEST(Workload, IdsAreSequentialFromFirstId) {
  util::Rng rng(7);
  Workload w({10, 0.5, 0.5, 100}, rng);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(w.commands()[i].id, 100 + i);
  }
}

}  // namespace
}  // namespace mcp::smr
