// The tentpole acceptance test: a 3-acceptor / 1-coordinator loopback
// cluster of *live* nodes — real threads, real clocks, and for the TCP
// backend real sockets — reaches consensus on the generalized engine, and
// the learned c-struct matches a simulator run of the same command
// sequence. The protocol processes and their wire::DecoderRegistry are the
// exact classes the simulator runs; only the host differs.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "cstruct/command.hpp"
#include "cstruct/history.hpp"
#include "genpaxos/engine.hpp"
#include "runtime/cluster_file.hpp"
#include "runtime/gen_cluster.hpp"
#include "service/partition.hpp"
#include "sim/simulation.hpp"

namespace mcp {
namespace {

using cstruct::History;
using cstruct::make_write;
using runtime::Backend;

constexpr std::size_t kCommands = 8;

/// The fixed workload: a mix of commuting (private-key) and conflicting
/// (shared-key) writes, proposed strictly sequentially — each command is
/// proposed only after the previous one was acknowledged, so the learned
/// history is the same deterministic sequence under any host.
cstruct::Command command(std::uint64_t id) {
  const std::string key = (id % 2 == 0) ? "shared" : "user" + std::to_string(id);
  return make_write(id, key, "v" + std::to_string(id));
}

std::vector<std::uint64_t> ids_of(const History& h) {
  std::vector<std::uint64_t> ids;
  for (const auto& c : h.sequence()) ids.push_back(c.id);
  return ids;
}

/// Run the workload on live nodes over the given backend; returns the
/// learned command-id sequence.
std::vector<std::uint64_t> run_live(Backend backend) {
  runtime::GenShape shape;  // 1 coordinator, 3 acceptors, 1 learner, 1 proposer
  runtime::ClusterOptions options;
  options.backend = backend;
  options.tick = std::chrono::microseconds(200);  // retry at 80 ms real time
  runtime::GenHistoryCluster cluster(shape, options);
  cluster.start();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  for (std::size_t i = 1; i <= kCommands; ++i) {
    cluster.propose(0, command(i));
    while (cluster.delivered_count(0) < i) {
      if (std::chrono::steady_clock::now() > deadline) {
        ADD_FAILURE() << runtime::backend_name(backend) << ": command " << i
                      << " not acknowledged before deadline";
        cluster.stop();
        return {};
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  // The proposer's ack already proves a learner learned each command; take
  // the learner's view, then check runtime-only invariants while live.
  const History learned = cluster.learned(0);

  // Bytes really crossed the transport, accounted with the simulator's
  // counter names.
  EXPECT_GT(cluster.cluster().counter_sum("net.bytes_sent"), 0)
      << runtime::backend_name(backend);
  EXPECT_GT(cluster.cluster().counter_sum("net.delivered"), 0)
      << runtime::backend_name(backend);
  EXPECT_EQ(cluster.cluster().counter_sum("net.decode_errors"), 0)
      << runtime::backend_name(backend);

  // Learner vote-map pruning holds on live nodes too.
  auto& learner = cluster.learner(0);
  const std::size_t tracked = cluster.node_of(learner).call(
      [&] { return learner.tracked_vote_rounds(); });
  EXPECT_LE(tracked, 2u) << runtime::backend_name(backend);

  cluster.stop();
  return ids_of(learned);
}

/// The same workload, same shape, same ids, in the discrete-event
/// simulator: the reference the live runs must match.
std::vector<std::uint64_t> run_sim() {
  namespace gp = genpaxos;
  static const cstruct::KeyConflict kConflicts;
  sim::Simulation s(/*seed=*/1);

  gp::Config<History> config;
  auto policy = paxos::PatternPolicy::always_single({0});
  config.policy = policy.get();
  config.acceptors = {1, 2, 3};
  config.learners = {4};
  config.proposers = {5};
  config.f = 1;
  config.e = 0;
  config.bottom = History(&kConflicts);

  s.make_process<gp::GenCoordinator<History>>(config);
  for (int i = 0; i < 3; ++i) s.make_process<gp::GenAcceptor<History>>(config);
  auto& learner = s.make_process<gp::GenLearner<History>>(config);
  auto& proposer = s.make_process<gp::GenProposer<History>>(config);

  for (std::size_t i = 1; i <= kCommands; ++i) {
    s.at(s.now(), [&, i] { proposer.propose(command(i)); });
    const bool ok = s.run_until(
        [&] { return proposer.delivered_count() >= i; }, s.now() + 1'000'000);
    EXPECT_TRUE(ok) << "sim: command " << i << " not acknowledged";
  }
  return ids_of(learner.learned());
}

TEST(RuntimeClusterTest, ThreadBackendMatchesSimulator) {
  const auto live = run_live(Backend::kThread);
  ASSERT_EQ(live.size(), kCommands);
  EXPECT_EQ(live, run_sim());
}

TEST(RuntimeClusterTest, TcpBackendMatchesSimulator) {
  const auto live = run_live(Backend::kTcp);
  ASSERT_EQ(live.size(), kCommands);
  EXPECT_EQ(live, run_sim());
}

TEST(RuntimeClusterTest, ThreadAndTcpAgree) {
  // Transitively implied by the two tests above, but cheap to state the
  // acceptance criterion directly: both backends learn the same history.
  EXPECT_EQ(run_live(Backend::kThread), run_live(Backend::kTcp));
}

// --- cluster-file group declarations ------------------------------------------

// The node lines every group test below builds on: two coordinators, three
// acceptors, one server.
const char* kGroupNodes =
    "node 0 127.0.0.1 1900 coordinator\n"
    "node 1 127.0.0.1 1901 coordinator\n"
    "node 2 127.0.0.1 1902 acceptor\n"
    "node 3 127.0.0.1 1903 acceptor\n"
    "node 4 127.0.0.1 1904 acceptor\n"
    "node 5 127.0.0.1 1905 server\n";

TEST(RuntimeClusterTest, ClusterFileParsesGroupDeclarations) {
  const auto layout = runtime::parse_cluster_layout_text(
      std::string(kGroupNodes) +
      "group 0 hash 0 2 3 4\n"
      "group 1 hash 1 2 3 4\n");
  ASSERT_EQ(layout.groups.size(), 2u);
  EXPECT_EQ(layout.groups[0].mode, "hash");
  EXPECT_EQ(layout.groups[1].id, 1u);

  // Per-group role derivation: each group sees only its own coordinators
  // and acceptors; learners/proposers/servers stay cluster-wide.
  const auto g1 = runtime::roles_of_group(layout.members, layout.groups[1]);
  EXPECT_EQ(g1.coordinators, std::vector<sim::NodeId>{1});
  EXPECT_EQ(g1.acceptors, (std::vector<sim::NodeId>{2, 3, 4}));
  EXPECT_EQ(g1.servers, std::vector<sim::NodeId>{5});
  EXPECT_EQ(g1.learners, std::vector<sim::NodeId>{5});

  // The partition every party derives from the same declarations.
  const auto p = service::KeyPartition::from_groups(layout.groups);
  EXPECT_EQ(p.group_count(), 2u);

  // A group-less file still parses (the implicit single group 0), and the
  // membership-only view is unchanged.
  EXPECT_TRUE(runtime::parse_cluster_layout_text(kGroupNodes).groups.empty());
  EXPECT_EQ(runtime::parse_cluster_text(kGroupNodes).size(), 6u);
}

TEST(RuntimeClusterTest, ClusterFileParsesRangeGroups) {
  const auto layout = runtime::parse_cluster_layout_text(
      std::string(kGroupNodes) +
      "group 0 range a m 0 2 3 4\n"
      "group 1 range m + 1 2 3 4\n");
  const auto p = service::KeyPartition::from_groups(layout.groups);
  EXPECT_EQ(p.group_of("apple"), 0u);
  EXPECT_EQ(p.group_of("zebra"), 1u);  // "+" = unbounded upper bound
}

TEST(RuntimeClusterTest, ClusterFileRejectsDuplicateGroupIds) {
  EXPECT_THROW(runtime::parse_cluster_layout_text(
                   std::string(kGroupNodes) +
                   "group 0 hash 0 2 3 4\n"
                   "group 0 hash 1 2 3 4\n"),
               std::runtime_error);
}

TEST(RuntimeClusterTest, ClusterFileRejectsOverlappingKeyRanges) {
  EXPECT_THROW(runtime::parse_cluster_layout_text(
                   std::string(kGroupNodes) +
                   "group 0 range a m 0 2 3 4\n"
                   "group 1 range g + 1 2 3 4\n"),
               std::runtime_error);
}

TEST(RuntimeClusterTest, ClusterFileRejectsGroupWithEmptyAcceptorSet) {
  // Members exist, but none of them carries the acceptor role.
  EXPECT_THROW(runtime::parse_cluster_layout_text(
                   std::string(kGroupNodes) + "group 0 hash 0 1 5\n"),
               std::runtime_error);
  // And a group listing no members at all is rejected at parse time.
  EXPECT_THROW(runtime::parse_cluster_layout_text(
                   std::string(kGroupNodes) + "group 0 hash\n"),
               std::runtime_error);
}

TEST(RuntimeClusterTest, ClusterFileRejectsMalformedGroups) {
  // Unknown node id.
  EXPECT_THROW(runtime::parse_cluster_layout_text(
                   std::string(kGroupNodes) + "group 0 hash 9 2 3 4\n"),
               std::runtime_error);
  // Unknown partition mode.
  EXPECT_THROW(runtime::parse_cluster_layout_text(
                   std::string(kGroupNodes) + "group 0 modulo 0 2 3 4\n"),
               std::runtime_error);
  // Hash ids must be dense 0..n-1 (routing is hash % n).
  EXPECT_THROW(runtime::parse_cluster_layout_text(
                   std::string(kGroupNodes) +
                   "group 0 hash 0 2 3 4\n"
                   "group 2 hash 1 2 3 4\n"),
               std::runtime_error);
  // Mixing hash and range groups in one cluster.
  EXPECT_THROW(runtime::parse_cluster_layout_text(
                   std::string(kGroupNodes) +
                   "group 0 hash 0 2 3 4\n"
                   "group 1 range a + 1 2 3 4\n"),
               std::runtime_error);
}

}  // namespace
}  // namespace mcp
