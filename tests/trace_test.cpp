// End-to-end command tracing: the TraceRecorder ring's overwrite and
// concurrency contract, the optional trace-id wire fields (byte-compatible
// with the pre-tracing encodings when unsampled), the Perfetto export, and
// a simulated pipeline producing receive -> reply spans plus the stage
// histograms and slow-op log.

#include <gtest/gtest.h>

#include <algorithm>
#include <any>
#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cstruct/history.hpp"
#include "genpaxos/engine.hpp"
#include "paxos/round_config.hpp"
#include "service/frontend.hpp"
#include "service/messages.hpp"
#include "service/sim_client.hpp"
#include "sim/simulation.hpp"
#include "util/trace.hpp"

namespace {

using namespace mcp;
using util::TraceEvent;
using util::TracePoint;
using util::TraceRecorder;

TraceEvent event(std::uint64_t trace_id, std::uint64_t ts,
                 TracePoint p = TracePoint::kClientRecv) {
  return TraceEvent{trace_id, ts, /*node=*/4, /*group=*/0, p, /*arg=*/0};
}

TEST(TraceRecorder, DisabledRecordsNothing) {
  TraceRecorder rec(16);
  EXPECT_FALSE(rec.enabled());
  rec.record(event(1, 10));
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.snapshot().empty());
}

TEST(TraceRecorder, CapacityRoundsToPowerOfTwo) {
  EXPECT_EQ(TraceRecorder(1).capacity(), 2u);  // floor of 2
  EXPECT_EQ(TraceRecorder(12).capacity(), 16u);
  EXPECT_EQ(TraceRecorder(64).capacity(), 64u);
}

TEST(TraceRecorder, RingOverwriteKeepsNewest) {
  TraceRecorder rec(8);
  rec.set_enabled(true);
  for (std::uint64_t i = 1; i <= 20; ++i) rec.record(event(i, i));
  EXPECT_EQ(rec.recorded(), 20u);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Exactly the newest 8 survive, oldest -> newest.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].trace_id, 13 + i);
    EXPECT_EQ(events[i].ts_us, 13 + i);
  }
}

TEST(TraceRecorder, EventFieldsSurviveTheRing) {
  TraceRecorder rec(8);
  rec.set_enabled(true);
  rec.record(TraceEvent{0xABCDEF12345ull, 777, /*node=*/42, /*group=*/3,
                        TracePoint::kAcceptorVote, /*arg=*/99});
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].trace_id, 0xABCDEF12345ull);
  EXPECT_EQ(events[0].ts_us, 777u);
  EXPECT_EQ(events[0].node, 42);
  EXPECT_EQ(events[0].group, 3u);
  EXPECT_EQ(events[0].point, TracePoint::kAcceptorVote);
  EXPECT_EQ(events[0].arg, 99u);
}

/// Writers on several threads racing a snapshotting reader: nothing tears
/// (every surviving event is one that was actually written) and the ring
/// ends at capacity. Run under TSan in CI.
TEST(TraceRecorder, ConcurrentWritersAndReaderAreSafe) {
  TraceRecorder rec(64);
  rec.set_enabled(true);
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 2000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      for (const TraceEvent& e : rec.snapshot()) {
        // trace_id and ts_us were written as (w*kPerWriter + i) and i:
        // a torn slot would break the relation.
        ASSERT_EQ(e.trace_id % kPerWriter, e.ts_us);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&rec, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        rec.record(event(static_cast<std::uint64_t>(w) * kPerWriter + i, i));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(rec.recorded(), kWriters * kPerWriter);
  EXPECT_EQ(rec.snapshot().size(), rec.capacity());
}

TEST(TraceRecorder, PerfettoJsonHasSlicesAndMetadata) {
  std::vector<TraceEvent> events;
  events.push_back(TraceEvent{5, 10, 4, 0, TracePoint::kClientRecv, 1});
  events.push_back(TraceEvent{5, 14, 4, 0, TracePoint::kBatchFlush, 8});
  events.push_back(TraceEvent{5, 30, 4, 0, TracePoint::kReplySent, 20});
  const std::string json = TraceRecorder::perfetto_json(events);
  // Structural shape chrome://tracing requires.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // metadata
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete slices
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instants
  // Stage naming: the slice between consecutive points takes the name of
  // the stage ENDING at the later point.
  EXPECT_NE(json.find("\"batch_wait\""), std::string::npos);
  // The receive -> reply pair with no interior points still tiles.
  EXPECT_NE(json.find("\"client_recv\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// --- wire compatibility -------------------------------------------------------

template <typename M>
M registry_round_trip(const wire::DecoderRegistry& reg, const M& m) {
  const wire::Envelope env = wire::make_envelope(m);
  const wire::Envelope back = wire::Envelope::decode(env.encode());
  EXPECT_EQ(back.tag, M::kTag);
  return std::any_cast<M>(reg.decode(back));
}

/// The message's payload bytes (the part the optional trailing varint
/// extends); the envelope around it only re-lengths its size prefix.
template <typename M>
std::string payload_bytes(const M& m) {
  wire::Writer w;
  m.encode(w);
  return w.take();
}

/// An unsampled batch must encode byte-identically to the pre-tracing
/// format (no trailing field at all), and a sampled one must round-trip
/// through the registry — which rejects trailing bytes, proving the
/// optional varint is consumed exactly.
TEST(TraceWire, ProposeBatchTraceIdIsOptionalAndExact) {
  static const cstruct::KeyConflict kConflicts;
  wire::DecoderRegistry reg;
  genpaxos::register_wire_messages(reg, cstruct::History(&kConflicts));

  genpaxos::MsgProposeBatch untraced;
  untraced.commands.push_back(cstruct::make_write(7, "k", "v"));
  genpaxos::MsgProposeBatch traced = untraced;
  traced.trace_id = 0x1D;

  const std::string u = payload_bytes(untraced);
  const std::string t = payload_bytes(traced);
  // The only byte difference is the appended one-byte varint: unsampled
  // traffic is byte-identical to the previous release's encoding.
  EXPECT_EQ(t.size(), u.size() + 1);
  EXPECT_EQ(t.substr(0, u.size()), u);

  const auto u2 = registry_round_trip(reg, untraced);
  EXPECT_EQ(u2.trace_id, 0u);
  ASSERT_EQ(u2.commands.size(), 1u);
  EXPECT_EQ(u2.commands[0].id, 7u);
  const auto t2 = registry_round_trip(reg, traced);
  EXPECT_EQ(t2.trace_id, 0x1Du);
}

TEST(TraceWire, ClientReplyTraceIdIsOptionalAndExact) {
  wire::DecoderRegistry reg;
  service::register_client_messages(reg);

  service::MsgClientReply untraced;
  untraced.client_id = 9;
  untraced.seq = 4;
  untraced.found = true;
  untraced.value = "v";
  service::MsgClientReply traced = untraced;
  traced.trace_id = 0x77;

  const std::string u = payload_bytes(untraced);
  const std::string t = payload_bytes(traced);
  EXPECT_EQ(t.size(), u.size() + 1);
  EXPECT_EQ(t.substr(0, u.size()), u);

  EXPECT_EQ(registry_round_trip(reg, untraced).trace_id, 0u);
  const auto t2 = registry_round_trip(reg, traced);
  EXPECT_EQ(t2.trace_id, 0x77u);
  EXPECT_EQ(t2.value, "v");
}

// --- simulated pipeline -------------------------------------------------------

struct TracedSim {
  static constexpr int kOps = 24;
  cstruct::KeyConflict conflicts;
  sim::Simulation sim;
  std::unique_ptr<paxos::RoundPolicy> policy;
  genpaxos::Config<cstruct::History> config;
  service::Frontend* frontend = nullptr;
  service::SimClient* client = nullptr;

  explicit TracedSim(service::Frontend::Options fopt)
      : sim(/*seed=*/11, [] {
          sim::NetworkConfig net;
          net.min_delay = 1;
          net.max_delay = 4;
          return net;
        }()) {
    config.acceptors = {1, 2, 3};
    config.learners = {4};
    config.proposers = {4};
    config.f = 1;
    config.bottom = cstruct::History(&conflicts);
    policy = paxos::PatternPolicy::always_single({0});
    config.policy = policy.get();
    sim.make_process<genpaxos::GenCoordinator<cstruct::History>>(config);
    for (int i = 0; i < 3; ++i) {
      sim.make_process<genpaxos::GenAcceptor<cstruct::History>>(config);
    }
    frontend = &sim.make_process<service::Frontend>(config, fopt);
    service::SimClient::Options copt;
    copt.client_id = 100;
    copt.server = 4;
    copt.ops = kOps;
    client = &sim.make_process<service::SimClient>(copt);
  }

  bool run() {
    return sim.run_until([&] { return client->done(); }, 1'000'000);
  }
};

/// With every request sampled, a traced command leaves span events at both
/// client-facing edges and through the consensus interior — receive,
/// flush, 2a, vote, learned, applied, reply — and the Perfetto export of
/// the run loads as slices.
TEST(TracePipeline, SimSpansCoverReceiveToReply) {
  service::Frontend::Options fopt;
  fopt.batch_size = 4;
  fopt.batch_delay = 3;
  fopt.trace_sample_every = 1;
  TracedSim s(fopt);
  s.sim.trace().set_enabled(true);
  ASSERT_TRUE(s.run());

  const auto events = s.sim.trace().snapshot();
  ASSERT_FALSE(events.empty());
  // Pick a trace id that has a kClientRecv event and collect its points.
  std::set<TracePoint> points;
  std::uint64_t picked = 0;
  for (const TraceEvent& e : events) {
    if (e.point == TracePoint::kClientRecv) picked = e.trace_id;
  }
  ASSERT_NE(picked, 0u);
  std::uint64_t prev_ts = 0;
  for (const TraceEvent& e : events) {
    if (e.trace_id != picked) continue;
    points.insert(e.point);
    EXPECT_GE(e.ts_us, prev_ts) << "span points out of causal order";
    prev_ts = e.ts_us;
  }
  for (const TracePoint p :
       {TracePoint::kClientRecv, TracePoint::kBatchFlush, TracePoint::kCoord2a,
        TracePoint::kAcceptorVote, TracePoint::kLearned, TracePoint::kApplied,
        TracePoint::kReplySent}) {
    EXPECT_TRUE(points.count(p))
        << "missing span point " << util::trace_point_name(p);
  }
  // The whole run renders: interior stages show up as named slices.
  const std::string json = TraceRecorder::perfetto_json(events);
  EXPECT_NE(json.find("\"quorum_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"vote_2b\""), std::string::npos);
  EXPECT_NE(json.find("\"reply\""), std::string::npos);

  // The traced reply carries the id back to the client.
  EXPECT_GT(s.client->traced_replies(), 0u);
}

/// Sampling off (the default): zero trace events, zero trace ids on the
/// wire — but the stage histograms still populate (they are metrics, not
/// traces).
TEST(TracePipeline, UnsampledRunRecordsNoEventsButKeepsStageHistograms) {
  service::Frontend::Options fopt;
  fopt.batch_size = 4;
  fopt.batch_delay = 3;
  TracedSim s(fopt);
  ASSERT_TRUE(s.run());
  EXPECT_EQ(s.sim.trace().recorded(), 0u);
  EXPECT_EQ(s.client->traced_replies(), 0u);

  const auto hists = s.sim.metrics().all_histograms();
  for (const char* name : {"svc.lat.batch_wait", "svc.lat.consensus",
                           "svc.lat.apply", "svc.lat.reply"}) {
    bool found = false;
    for (const auto& [n, h] : hists) {
      if (n == name) {
        found = true;
        EXPECT_EQ(h.count(), static_cast<std::size_t>(TracedSim::kOps)) << n;
      }
    }
    EXPECT_TRUE(found) << "missing stage histogram " << name;
  }
  // Per-group consensus latency rides its own family.
  bool per_group = false;
  for (const auto& [n, h] : hists) per_group |= n == "g0.svc.lat.consensus";
  EXPECT_TRUE(per_group);
}

/// A threshold of one tick marks every command slow: the counter, the
/// bounded log (newest kept), and the trace point all fire.
TEST(SlowOps, ThresholdTriggersCounterAndBoundedLog) {
  service::Frontend::Options fopt;
  fopt.batch_size = 4;
  fopt.batch_delay = 3;
  fopt.slow_op_threshold = 1;
  TracedSim s(fopt);
  ASSERT_TRUE(s.run());

  const auto& slow = s.frontend->slow_ops();
  ASSERT_FALSE(slow.empty());
  EXPECT_LE(slow.size(), 64u);
  EXPECT_EQ(s.sim.metrics().counter("svc.slow_ops"),
            static_cast<std::int64_t>(TracedSim::kOps));
  for (const auto& op : slow) {
    EXPECT_EQ(op.client_id, 100u);
    EXPECT_GE(op.total, 1);
    EXPECT_FALSE(op.key.empty());
  }
  // Entries arrive oldest -> newest.
  for (std::size_t i = 1; i < slow.size(); ++i) {
    EXPECT_GE(slow[i].seq, slow[i - 1].seq);
  }
}

TEST(SlowOps, BelowThresholdLogsNothing) {
  service::Frontend::Options fopt;
  fopt.batch_size = 1;
  fopt.batch_delay = 0;
  fopt.slow_op_threshold = 1'000'000;  // far above any sim latency
  TracedSim s(fopt);
  ASSERT_TRUE(s.run());
  EXPECT_TRUE(s.frontend->slow_ops().empty());
  EXPECT_EQ(s.sim.metrics().counter("svc.slow_ops"), 0);
}

}  // namespace
