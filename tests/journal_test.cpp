// Crash-durability tests for the protocol flight recorder plus regression
// tests for the offline auditor: a torn trailing frame truncates to the
// intact prefix, a flipped byte rejects exactly that segment while earlier
// ones stay replayable, and a deliberately corrupted 2b stream makes
// audit::inspect report precisely the injected safety violation.

#include "storage/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "audit/inspect.hpp"
#include "cstruct/command.hpp"
#include "cstruct/history.hpp"
#include "cstruct/serialize.hpp"
#include "util/journal.hpp"

namespace mcp {
namespace {

namespace fs = std::filesystem;
using storage::FlightRecorder;
using storage::FlightRecorderOptions;
using util::JournalKind;
using util::JournalRecord;

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           (std::string("mcpaxos_journal_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

  std::vector<fs::path> segments(const std::string& d) const {
    std::vector<fs::path> out;
    for (const auto& entry : fs::directory_iterator(d)) {
      if (entry.path().extension() == ".mcj") out.push_back(entry.path());
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  static void flip_byte(const fs::path& path, std::size_t offset) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    char c = 0;
    f.seekg(static_cast<std::streamoff>(offset));
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x5a);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&c, 1);
  }

  static JournalRecord record(JournalKind kind, std::uint64_t a,
                              std::string payload = {}) {
    JournalRecord rec;
    rec.kind = kind;
    rec.group = 3;
    rec.ballot_count = 7;
    rec.ballot_coord = 2;
    rec.ballot_inc = 1;
    rec.ballot_type = 1;
    rec.a = a;
    rec.b = 42;
    rec.payload = std::move(payload);
    return rec;
  }

  fs::path dir_;
};

TEST_F(JournalTest, RoundTripPreservesEveryField) {
  {
    FlightRecorderOptions opt;
    opt.sync = false;
    FlightRecorder rec(/*node=*/5, dir(), opt);
    rec.append(record(JournalKind::kPhase2b, 11, "payload-bytes"));
    rec.append(record(JournalKind::kLearn, 12));
    EXPECT_EQ(rec.events(), 2u);
  }
  const auto segs = FlightRecorder::read_dir(dir());
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_FALSE(segs[0].torn);
  EXPECT_FALSE(segs[0].rejected);
  ASSERT_EQ(segs[0].records.size(), 2u);
  const JournalRecord& r = segs[0].records[0];
  EXPECT_EQ(r.kind, JournalKind::kPhase2b);
  EXPECT_EQ(r.node, 5);
  EXPECT_GT(r.ts_us, 0u);
  EXPECT_EQ(r.group, 3u);
  EXPECT_EQ(r.ballot_count, 7);
  EXPECT_EQ(r.ballot_coord, 2);
  EXPECT_EQ(r.ballot_inc, 1);
  EXPECT_EQ(r.ballot_type, 1);
  EXPECT_EQ(r.a, 11u);
  EXPECT_EQ(r.b, 42u);
  EXPECT_EQ(r.payload, "payload-bytes");
  // The sink stamps non-decreasing wall-clock timestamps.
  EXPECT_LE(r.ts_us, segs[0].records[1].ts_us);
}

TEST_F(JournalTest, RotatesAndPrunesSegments) {
  FlightRecorderOptions opt;
  opt.sync = false;
  opt.segment_bytes = 256;  // tiny: force many rotations
  opt.keep_segments = 3;
  {
    FlightRecorder rec(0, dir(), opt);
    for (int i = 0; i < 200; ++i) {
      rec.append(record(JournalKind::kApply, static_cast<std::uint64_t>(i),
                        std::string(16, 'x')));
    }
    EXPECT_GT(rec.segments_created(), 3u);
  }
  EXPECT_LE(segments(dir()).size(), 3u);
  // The survivors still replay, in order.
  const auto segs = FlightRecorder::read_dir(dir());
  std::uint64_t prev = 0;
  for (const auto& seg : segs) {
    EXPECT_FALSE(seg.rejected);
    for (const auto& r : seg.records) {
      EXPECT_GE(r.a, prev);
      prev = r.a;
    }
  }
  EXPECT_GT(prev, 0u);
}

TEST_F(JournalTest, RestartContinuesAfterHighestSegment) {
  FlightRecorderOptions opt;
  opt.sync = false;
  {
    FlightRecorder rec(0, dir(), opt);
    rec.append(record(JournalKind::kApply, 1));
  }
  {
    // A restarted node must never append into the previous incarnation's
    // segment (that could tear records the old process already wrote).
    FlightRecorder rec(0, dir(), opt);
    rec.append(record(JournalKind::kApply, 2));
  }
  EXPECT_EQ(segments(dir()).size(), 2u);
  const auto segs = FlightRecorder::read_dir(dir());
  ASSERT_EQ(segs.size(), 2u);
  ASSERT_EQ(segs[0].records.size(), 1u);
  ASSERT_EQ(segs[1].records.size(), 1u);
  EXPECT_EQ(segs[0].records[0].a, 1u);
  EXPECT_EQ(segs[1].records[0].a, 2u);
}

TEST_F(JournalTest, TornTailKeepsIntactPrefix) {
  FlightRecorderOptions opt;
  opt.sync = false;
  {
    FlightRecorder rec(0, dir(), opt);
    for (int i = 0; i < 10; ++i) {
      rec.append(record(JournalKind::kApply, static_cast<std::uint64_t>(i)));
    }
  }
  const auto segs_before = segments(dir());
  ASSERT_EQ(segs_before.size(), 1u);
  // Simulate a crash mid-append: drop the last 3 bytes of the file.
  const auto size = fs::file_size(segs_before[0]);
  fs::resize_file(segs_before[0], size - 3);

  const auto segs = FlightRecorder::read_dir(dir());
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_TRUE(segs[0].torn);
  EXPECT_FALSE(segs[0].rejected);
  ASSERT_EQ(segs[0].records.size(), 9u);  // all but the torn final record
  EXPECT_EQ(segs[0].records.back().a, 8u);
}

TEST_F(JournalTest, MidSegmentCorruptionRejectsOnlyThatSegment) {
  FlightRecorderOptions opt;
  opt.sync = false;
  opt.segment_bytes = 512;
  opt.keep_segments = 0;  // keep everything
  {
    FlightRecorder rec(0, dir(), opt);
    for (int i = 0; i < 100; ++i) {
      rec.append(record(JournalKind::kApply, static_cast<std::uint64_t>(i),
                        std::string(16, 'x')));
    }
  }
  const auto paths = segments(dir());
  ASSERT_GE(paths.size(), 3u);
  // Flip a byte in the MIDDLE of the second segment: a complete frame now
  // fails its checksum, which is corruption, not a torn tail — the whole
  // segment is rejected, and both its neighbours are unaffected.
  flip_byte(paths[1], fs::file_size(paths[1]) / 2);

  const auto segs = FlightRecorder::read_dir(dir());
  ASSERT_EQ(segs.size(), paths.size());
  EXPECT_FALSE(segs[0].rejected);
  EXPECT_FALSE(segs[0].records.empty());
  EXPECT_TRUE(segs[1].rejected);
  EXPECT_TRUE(segs[1].records.empty());
  for (std::size_t i = 2; i < segs.size(); ++i) {
    EXPECT_FALSE(segs[i].rejected) << "segment " << i;
    EXPECT_FALSE(segs[i].records.empty()) << "segment " << i;
  }
}

// ---------------------------------------------------------------------------
// audit::inspect over crafted journals.

class InspectTest : public JournalTest {
 protected:
  /// A 2b vote record as GenAcceptor journals it: ballot = vrnd, payload =
  /// the full voted c-struct.
  static JournalRecord vote(std::int64_t ballot_count, std::uint8_t type,
                            const cstruct::History& vval) {
    JournalRecord rec;
    rec.kind = JournalKind::kPhase2b;
    rec.group = 0;
    rec.ballot_count = ballot_count;
    rec.ballot_coord = 0;
    rec.ballot_inc = 0;
    rec.ballot_type = type;
    rec.a = vval.size();
    rec.payload = cstruct::encode(vval);
    return rec;
  }

  std::string node_journal(int node) {
    const std::string d = dir() + "/node" + std::to_string(node) + "/journal";
    fs::create_directories(d);
    return d;
  }

  /// A delta 2b record as GenAcceptor journals it: payload = only the
  /// suffix since this acceptor's previous 2b, `a` = the full size after.
  static JournalRecord delta_vote(std::int64_t ballot_count, std::uint8_t type,
                                  std::uint64_t full_size,
                                  const std::vector<cstruct::Command>& suffix) {
    JournalRecord rec;
    rec.kind = JournalKind::kPhase2bDelta;
    rec.group = 0;
    rec.ballot_count = ballot_count;
    rec.ballot_coord = 0;
    rec.ballot_inc = 0;
    rec.ballot_type = type;
    rec.a = full_size;
    rec.payload = cstruct::encode(suffix);
    return rec;
  }
};

TEST_F(InspectTest, HealthyVoteStreamPasses) {
  const cstruct::KeyConflict rel;
  cstruct::History h(&rel);
  h.append(cstruct::make_write(1, "k", "v1"));

  FlightRecorderOptions opt;
  opt.sync = false;
  // Three acceptors all vote the same growing history at a classic round.
  for (int acceptor = 0; acceptor < 3; ++acceptor) {
    FlightRecorder rec(acceptor, node_journal(acceptor), opt);
    rec.append(vote(1, 0, h));
    cstruct::History h2 = h;
    h2.append(cstruct::make_write(2, "k", "v2"));
    rec.append(vote(1, 0, h2));
  }

  const auto report = audit::inspect(audit::find_journal_dirs(dir()));
  EXPECT_EQ(report.events, 6u);
  ASSERT_EQ(report.groups.size(), 1u);
  EXPECT_EQ(report.groups[0].votes_replayed, 6u);
  EXPECT_EQ(report.groups[0].acceptors_seen, 3u);
  EXPECT_TRUE(report.ok()) << audit::render_text(report);
}

TEST_F(InspectTest, DeltaVoteChainsReconstructFullValues) {
  const cstruct::KeyConflict rel;
  cstruct::History h1(&rel);
  h1.append(cstruct::make_write(1, "k", "v1"));
  const std::vector<cstruct::Command> tail2{cstruct::make_write(2, "k", "v2")};
  const std::vector<cstruct::Command> tail3{cstruct::make_write(3, "k", "v3")};

  FlightRecorderOptions opt;
  opt.sync = false;
  // Acceptors 0 and 1: a full vote then two deltas — the normal steady
  // state. Acceptor 2: a delta with no prior full record, as if its chain
  // base rode a segment rotation pruned — incomplete evidence, skipped,
  // NOT a violation.
  for (int acceptor = 0; acceptor < 2; ++acceptor) {
    FlightRecorder rec(acceptor, node_journal(acceptor), opt);
    rec.append(vote(1, 0, h1));
    rec.append(delta_vote(1, 0, 2, tail2));
    rec.append(delta_vote(1, 0, 3, tail3));
  }
  {
    FlightRecorder rec(2, node_journal(2), opt);
    rec.append(delta_vote(1, 0, 3, tail3));
  }

  const auto report = audit::inspect(audit::find_journal_dirs(dir()));
  EXPECT_TRUE(report.ok()) << audit::render_text(report);
  ASSERT_EQ(report.groups.size(), 1u);
  EXPECT_EQ(report.groups[0].votes_replayed, 6u);
  EXPECT_EQ(report.groups[0].orphan_votes, 1u);
  EXPECT_EQ(report.groups[0].acceptors_seen, 3u);
}

TEST_F(InspectTest, DeltaVoteThatDoesNotChainIsAViolation) {
  const cstruct::KeyConflict rel;
  cstruct::History h1(&rel);
  h1.append(cstruct::make_write(1, "k", "v1"));
  const std::vector<cstruct::Command> tail{cstruct::make_write(2, "k", "v2")};

  FlightRecorderOptions opt;
  opt.sync = false;
  {
    FlightRecorder rec(0, node_journal(0), opt);
    rec.append(vote(1, 0, h1));
    // Claims the full value is 5 commands after a one-command suffix on a
    // one-command base: a forged or buggy journal.
    rec.append(delta_vote(1, 0, 5, tail));
  }

  const auto report = audit::inspect(audit::find_journal_dirs(dir()));
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const std::string& v : report.violations) {
    if (v.find("does not chain") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << audit::render_text(report);
}

TEST_F(InspectTest, CorruptedVoteStreamReportsInjectedViolation) {
  const cstruct::KeyConflict rel;
  cstruct::History chosen_val(&rel);
  chosen_val.append(cstruct::make_write(1, "k", "v1"));
  cstruct::History divergent(&rel);
  divergent.append(cstruct::make_write(2, "k", "OTHER"));

  FlightRecorderOptions opt;
  opt.sync = false;
  // Acceptors 0 and 1 vote `chosen_val` at classic round 1 — a majority of
  // the 3-acceptor cluster, so round 1 chooses it. Acceptor 2 then votes a
  // conflicting history at round 2 that does NOT extend the chosen value:
  // exactly the kind of 2b stream a buggy (or tampered-with) acceptor
  // would emit, and exactly what the safe-at invariant forbids.
  {
    FlightRecorder rec(0, node_journal(0), opt);
    rec.append(vote(1, 0, chosen_val));
  }
  {
    FlightRecorder rec(1, node_journal(1), opt);
    rec.append(vote(1, 0, chosen_val));
  }
  {
    FlightRecorder rec(2, node_journal(2), opt);
    rec.append(vote(2, 0, divergent));
  }

  audit::InspectOptions iopt;
  iopt.f = 1;
  iopt.e = 0;
  const auto report = audit::inspect(audit::find_journal_dirs(dir()), iopt);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const std::string& v : report.violations) {
    if (v.find("does not extend the value chosen") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << audit::render_text(report);
  // And the JSON the CI gate consumes says not-ok.
  EXPECT_NE(audit::render_json(report).find("\"ok\": false"), std::string::npos);
}

TEST_F(InspectTest, DuplicateLearnIsAViolation) {
  const cstruct::KeyConflict rel;
  cstruct::History h(&rel);
  h.append(cstruct::make_write(9, "k", "v"));

  FlightRecorderOptions opt;
  opt.sync = false;
  {
    FlightRecorder rec(0, node_journal(0), opt);
    JournalRecord learn;
    learn.kind = JournalKind::kLearn;
    learn.group = 0;
    learn.a = 1;
    learn.payload = cstruct::encode(h.sequence());
    rec.append(learn);
    learn.a = 2;
    rec.append(learn);  // same command id learned "again"
  }
  const auto report = audit::inspect(audit::find_journal_dirs(dir()));
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].find("learned command 9 twice"),
            std::string::npos)
      << audit::render_text(report);
}

TEST_F(InspectTest, ConflictingLearnOrderAcrossNodesIsAViolation) {
  const cstruct::KeyConflict rel;
  const auto w1 = cstruct::make_write(1, "k", "a");
  const auto w2 = cstruct::make_write(2, "k", "b");

  FlightRecorderOptions opt;
  opt.sync = false;
  auto write_learns = [&](int node, const cstruct::Command& first,
                          const cstruct::Command& second) {
    FlightRecorder rec(node, node_journal(node), opt);
    cstruct::History h(&rel);
    h.append(first);
    JournalRecord learn;
    learn.kind = JournalKind::kLearn;
    learn.group = 0;
    learn.a = 1;
    learn.payload = cstruct::encode(h.sequence());
    rec.append(learn);
    cstruct::History h2(&rel);
    h2.append(second);
    learn.a = 2;
    learn.payload = cstruct::encode(h2.sequence());
    rec.append(learn);
  };
  write_learns(0, w1, w2);  // node 0 learns k:=a then k:=b
  write_learns(1, w2, w1);  // node 1 learns them in the opposite order

  const auto report = audit::inspect(audit::find_journal_dirs(dir()));
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const std::string& v : report.violations) {
    if (v.find("opposite orders") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << audit::render_text(report);
}

TEST_F(InspectTest, RejectedSegmentIsReportedButNotAViolation) {
  const cstruct::KeyConflict rel;
  cstruct::History h(&rel);
  h.append(cstruct::make_write(1, "k", "v"));

  FlightRecorderOptions opt;
  opt.sync = false;
  opt.segment_bytes = 128;
  opt.keep_segments = 0;
  const std::string d = node_journal(0);
  {
    FlightRecorder rec(0, d, opt);
    for (int i = 0; i < 30; ++i) rec.append(vote(1, 0, h));
  }
  auto paths = segments(d);
  ASSERT_GE(paths.size(), 2u);
  // Flip the last byte: the final frame's checksum. The frame is complete
  // (nothing torn), its checksum no longer matches — corruption, so the
  // whole segment is rejected. (A flip inside a length varint would read
  // as a torn tail instead, which is the other test's territory.)
  flip_byte(paths[0], fs::file_size(paths[0]) - 1);

  const auto report = audit::inspect(audit::find_journal_dirs(dir()));
  EXPECT_GE(report.rejected_segments, 1u);
  EXPECT_TRUE(report.ok()) << audit::render_text(report);
  EXPECT_GT(report.events, 0u);
}

TEST_F(InspectTest, ManifestSuppliesQuorumTolerances) {
  std::ofstream(dir() + "/manifest.txt") << "# bundle\nf=1\ne=0\nscenario=t\n";
  const auto manifest = audit::read_manifest(dir());
  EXPECT_EQ(manifest.at("f"), "1");
  EXPECT_EQ(manifest.at("e"), "0");
  EXPECT_EQ(manifest.at("scenario"), "t");
}

}  // namespace
}  // namespace mcp
