// Edge-case tests for the simulator substrate: self-message semantics,
// post-sync sends, event ordering under re-entrant scheduling, metrics
// plumbing, and process lifecycle corner cases.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulation.hpp"

namespace mcp::sim {
namespace {

struct Recorder final : Process {
  std::vector<std::pair<Time, std::string>> events;
  void on_message(NodeId, const std::any& m) override {
    events.emplace_back(now(), std::any_cast<std::string>(m));
  }
};

TEST(SimEdge, SelfMessageDeliveredSameInstantButAsync) {
  Simulation s(1);
  auto& p = s.make_process<Recorder>();
  bool sent_after = false;
  s.at(5, [&] {
    p.send(p.id(), std::string("self"));
    sent_after = true;  // runs before delivery (asynchrony preserved)
  });
  s.run_to_completion();
  ASSERT_EQ(p.events.size(), 1u);
  EXPECT_EQ(p.events[0].first, 5);
  EXPECT_TRUE(sent_after);
}

TEST(SimEdge, DelaySelfMessagesFlag) {
  NetworkConfig net;
  net.min_delay = 10;
  net.max_delay = 10;
  net.delay_self_messages = true;
  Simulation s(1, net);
  auto& p = s.make_process<Recorder>();
  s.at(0, [&] { p.send(p.id(), std::string("late self")); });
  s.run_to_completion();
  ASSERT_EQ(p.events.size(), 1u);
  EXPECT_EQ(p.events[0].first, 10);
}

TEST(SimEdge, SendAfterSyncAddsLatency) {
  NetworkConfig net;
  net.min_delay = 3;
  net.max_delay = 3;
  Simulation s(1, net);
  auto& a = s.make_process<Recorder>();
  auto& b = s.make_process<Recorder>();
  s.at(0, [&] { a.send_after_sync(b.id(), std::string("synced"), 20); });
  s.run_to_completion();
  ASSERT_EQ(b.events.size(), 1u);
  EXPECT_EQ(b.events[0].first, 23);  // 20 disk + 3 network
}

TEST(SimEdge, EventsScheduledDuringRunAreHonored) {
  Simulation s(1);
  std::vector<int> order;
  s.at(10, [&] {
    order.push_back(1);
    s.at(10, [&] { order.push_back(2); });  // same instant, scheduled inside
    s.at(15, [&] { order.push_back(3); });
  });
  s.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimEdge, SchedulingInThePastThrows) {
  Simulation s(1);
  s.at(10, [&] {
    EXPECT_THROW(s.at(5, [] {}), std::invalid_argument);
  });
  s.run_to_completion();
}

TEST(SimEdge, RecoverIsIdempotentAndCrashTwiceSafe) {
  Simulation s(1);
  auto& p = s.make_process<Recorder>();
  s.crash(p.id());
  s.crash(p.id());  // no-op
  EXPECT_TRUE(p.crashed());
  s.recover(p.id());
  s.recover(p.id());  // no-op
  EXPECT_FALSE(p.crashed());
  EXPECT_EQ(p.incarnation(), 1);
  EXPECT_EQ(s.metrics().counter("sim.crashes"), 1);
  EXPECT_EQ(s.metrics().counter("sim.recoveries"), 1);
}

TEST(SimEdge, MessageToUnknownDestinationThrows) {
  Simulation s(1);
  auto& p = s.make_process<Recorder>();
  s.at(0, [&] { EXPECT_THROW(p.send(99, std::string("x")), std::out_of_range); });
  s.run_to_completion();
}

TEST(SimEdge, ProcessesAddedMidRunAreStarted) {
  Simulation s(1);
  auto& a = s.make_process<Recorder>();
  Recorder* late = nullptr;
  s.at(50, [&] { late = &s.make_process<Recorder>(); });
  s.at(60, [&] { a.send(late->id(), std::string("hi")); });
  s.run_to_completion();
  ASSERT_NE(late, nullptr);
  ASSERT_EQ(late->events.size(), 1u);
}

TEST(SimEdge, RunUntilDeadlineStopsClockAtDeadline) {
  Simulation s(1);
  auto& p = s.make_process<Recorder>();
  s.at(100, [&] { p.send(p.id(), std::string("beyond")); });
  const Time stopped = s.run_until(50);
  EXPECT_EQ(stopped, 50);
  EXPECT_TRUE(p.events.empty());
  s.run_until(200);
  EXPECT_EQ(p.events.size(), 1u);
}

TEST(SimEdge, PerNodeDeliveryCountersTrack) {
  Simulation s(1);
  auto& a = s.make_process<Recorder>();
  auto& b = s.make_process<Recorder>();
  s.at(0, [&] {
    a.send(b.id(), std::string("1"));
    a.send(b.id(), std::string("2"));
    b.send(a.id(), std::string("3"));
  });
  s.run_to_completion();
  EXPECT_EQ(s.metrics().counter("node." + std::to_string(b.id()) + ".delivered"), 2);
  EXPECT_EQ(s.metrics().counter("node." + std::to_string(a.id()) + ".delivered"), 1);
  EXPECT_EQ(s.metrics().counter("net.sent"), 3);
  EXPECT_EQ(s.metrics().counter("net.delivered"), 3);
}

TEST(SimEdge, LossAndDupCountersConsistent) {
  NetworkConfig net;
  net.loss_probability = 0.5;
  net.duplication_probability = 0.3;
  Simulation s(7, net);
  auto& a = s.make_process<Recorder>();
  auto& b = s.make_process<Recorder>();
  constexpr int kSends = 2000;
  s.at(0, [&] {
    for (int i = 0; i < kSends; ++i) a.send(b.id(), std::string("m"));
  });
  s.run_to_completion();
  const auto lost = s.metrics().counter("net.lost");
  const auto dup = s.metrics().counter("net.duplicated");
  const auto delivered = s.metrics().counter("net.delivered");
  EXPECT_EQ(delivered, kSends - lost + dup);
  // "lost" counts messages with *no* delivered copy: P = 0.5 · (1 − 0.3);
  // "duplicated" counts second copies next to a delivered primary:
  // P = (1 − 0.5) · 0.3.
  EXPECT_NEAR(static_cast<double>(lost) / kSends, 0.35, 0.04);
  EXPECT_NEAR(static_cast<double>(dup) / kSends, 0.15, 0.04);
}

}  // namespace
}  // namespace mcp::sim
