#pragma once

#include <any>
#include <memory>

#include "sim/time.hpp"
#include "util/journal.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace mcp::sim {

class Process;
class StableStorage;

/// The world a Process runs in. Protocol code only ever talks to this
/// interface (via the Process helpers), so the same Process subclasses run
/// under two hosts:
///
///  - sim::Simulation — the discrete-event simulator: virtual time, a
///    modelled network with loss/duplication/partitions, deterministic
///    randomness.
///  - runtime::Node — one live process: real-clock timers and a
///    transport::Transport carrying wire::Envelope frames between actual
///    threads or TCP sockets.
///
/// The contract mirrors what Simulation always provided; see each method's
/// comment for the parts host implementations must preserve.
class Host {
 public:
  virtual ~Host() = default;

  /// Current time in ticks. Simulated hosts advance this per event; real
  /// hosts map a fixed wall-clock duration onto one tick.
  virtual Time now() const = 0;

  virtual util::Metrics& metrics() = 0;
  virtual util::Rng& rng() = 0;

  /// Per-host trace ring. Off by default (TraceRecorder::enabled());
  /// processes record span events through Process::trace_point, external
  /// tooling snapshots/export via the recorder itself.
  util::TraceRecorder& trace() { return trace_; }
  const util::TraceRecorder& trace() const { return trace_; }

  /// Protocol flight recorder, or nullptr when journaling is off (the
  /// default — simulated hosts never journal; runtime::Node installs a
  /// storage::FlightRecorder when configured with a journal directory).
  /// Processes emit through Process::journal_event, which no-ops on null.
  util::JournalSink* journal() { return journal_; }
  void set_journal(util::JournalSink* sink) { journal_ = sink; }

  /// Timestamp for trace events: microseconds since start on live hosts;
  /// simulated hosts default to the tick clock (one tick = one "us" in
  /// the exported trace, which keeps sim traces loadable and ordered).
  virtual std::uint64_t trace_now_us() const {
    const Time t = now();
    return t > 0 ? static_cast<std::uint64_t>(t) : 0;
  }

  /// Whether Process::send must serialize self-encoding messages into
  /// wire::Envelope payloads. Real transports can only carry bytes, so
  /// every non-simulated host returns true.
  virtual bool encode_messages() const = 0;

  /// Ship a payload (a shared_ptr<const wire::Envelope>, or an arbitrary
  /// std::any under a non-encoding simulated host) to process `to`,
  /// delayed by at least `extra_delay` ticks (disk-write modelling).
  virtual void post_message(NodeId from, NodeId to, std::any payload,
                            Time extra_delay) = 0;

  /// Arrange for owner's on_timer(token) after `delay` ticks; returns a
  /// cancellation handle. Two timers due at the same instant fire in the
  /// order they were scheduled; cancellation wins over firing even when
  /// the cancel happens at the deadline instant itself. The owner is passed
  /// by reference (not id) because a host may run several processes — one
  /// per consensus group — and must fire the right one's on_timer.
  virtual int post_timer(Process& owner, Time delay, int token) = 0;
  virtual void cancel_timer(int handle) = 0;

 protected:
  /// Adopt a process: set its host pointer and identity. Hosts call this
  /// exactly once per process, before any handler runs (defined in
  /// process.cpp, where Process is complete).
  static void bind(Process& process, Host* host, NodeId id);

  /// Replace the process's storage medium (e.g. with a file-backed
  /// implementation). Must happen at adoption time, before any handler
  /// runs; the previous medium — and any writes the process's constructor
  /// made to it — is discarded, but its configured write latency carries
  /// over. Defined in process.cpp.
  static void attach_storage(Process& process,
                             std::unique_ptr<StableStorage> storage);

  /// Restore the crash counter after a real restart: the simulator bumps
  /// incarnation_ directly on recover(); a live host persists it and hands
  /// the bumped value back here before running on_recover.
  static void set_incarnation(Process& process, int incarnation);

  /// Assign the process's consensus group (default 0). Must happen at
  /// adoption time, before any handler runs, so every envelope the process
  /// emits carries the group id. Defined in process.cpp.
  static void set_group(Process& process, std::uint32_t group);

 private:
  util::TraceRecorder trace_;
  util::JournalSink* journal_ = nullptr;
};

}  // namespace mcp::sim
