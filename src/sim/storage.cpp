#include "sim/storage.hpp"

#include <utility>

namespace mcp::sim {

Time StableStorage::write(const std::string& key, std::string value) {
  data_[key] = std::move(value);
  ++write_count_;
  return write_latency_;
}

Time StableStorage::write_int(const std::string& key, std::int64_t value) {
  return write(key, std::to_string(value));
}

std::optional<std::string> StableStorage::read(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::int64_t> StableStorage::read_int(const std::string& key) const {
  auto s = read(key);
  if (!s) return std::nullopt;
  return std::stoll(*s);
}

}  // namespace mcp::sim
