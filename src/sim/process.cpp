#include "sim/process.hpp"

#include <stdexcept>
#include <utility>

#include "sim/simulation.hpp"

namespace mcp::sim {

namespace {
Simulation& require_sim(Simulation* sim) {
  if (!sim) throw std::logic_error("Process used before being added to a Simulation");
  return *sim;
}
}  // namespace

void Process::send(NodeId to, std::any msg) {
  require_sim(sim_).post_message(id_, to, std::move(msg));
}

void Process::multicast(const std::vector<NodeId>& to, const std::any& msg) {
  Simulation& s = require_sim(sim_);
  for (NodeId dst : to) s.post_message(id_, dst, msg);
}

void Process::send_after_sync(NodeId to, std::any msg, Time sync_latency) {
  require_sim(sim_).post_message(id_, to, std::move(msg), sync_latency);
}

void Process::multicast_after_sync(const std::vector<NodeId>& to, const std::any& msg,
                                   Time sync_latency) {
  Simulation& s = require_sim(sim_);
  for (NodeId dst : to) s.post_message(id_, dst, msg, sync_latency);
}

int Process::set_timer(Time delay, int token) {
  return require_sim(sim_).post_timer(id_, delay, token);
}

void Process::cancel_timer(int handle) { require_sim(sim_).cancel_timer(handle); }

Time Process::now() const { return require_sim(sim_).now(); }

}  // namespace mcp::sim
