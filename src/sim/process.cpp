#include "sim/process.hpp"

#include <stdexcept>
#include <utility>

#include "sim/host.hpp"

namespace mcp::sim {

namespace {
Host& require_host(Host* host) {
  if (!host) throw std::logic_error("Process used before being added to a host");
  return *host;
}
}  // namespace

void Host::bind(Process& process, Host* host, NodeId id) {
  process.host_ = host;
  process.id_ = id;
}

bool Process::wire_encoding_on() const {
  return require_host(host_).encode_messages();
}

void Process::post_payload(NodeId to, std::any payload, Time extra_delay) {
  require_host(host_).post_message(id_, to, std::move(payload), extra_delay);
}

int Process::set_timer(Time delay, int token) {
  return require_host(host_).post_timer(id_, delay, token);
}

void Process::cancel_timer(int handle) { require_host(host_).cancel_timer(handle); }

Time Process::now() const { return require_host(host_).now(); }

}  // namespace mcp::sim
