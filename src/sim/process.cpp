#include "sim/process.hpp"

#include <stdexcept>
#include <utility>

#include "sim/host.hpp"

namespace mcp::sim {

namespace {
Host& require_host(Host* host) {
  if (!host) throw std::logic_error("Process used before being added to a host");
  return *host;
}
}  // namespace

void Host::bind(Process& process, Host* host, NodeId id) {
  process.host_ = host;
  process.id_ = id;
}

void Host::attach_storage(Process& process, std::unique_ptr<StableStorage> storage) {
  if (!storage) throw std::invalid_argument("attach_storage: null storage");
  // Constructors tune the medium before adoption (set_write_latency); the
  // tuning survives the swap, the (empty) contents do not.
  storage->set_write_latency(process.storage_->write_latency());
  process.storage_ = std::move(storage);
}

void Host::set_incarnation(Process& process, int incarnation) {
  process.incarnation_ = incarnation;
}

void Host::set_group(Process& process, std::uint32_t group) {
  process.group_ = group;
}

bool Process::wire_encoding_on() const {
  return require_host(host_).encode_messages();
}

void Process::post_payload(NodeId to, std::any payload, Time extra_delay) {
  require_host(host_).post_message(id_, to, std::move(payload), extra_delay);
}

int Process::set_timer(Time delay, int token) {
  return require_host(host_).post_timer(*this, delay, token);
}

void Process::cancel_timer(int handle) { require_host(host_).cancel_timer(handle); }

Time Process::now() const { return require_host(host_).now(); }

}  // namespace mcp::sim
