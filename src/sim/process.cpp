#include "sim/process.hpp"

#include <stdexcept>
#include <utility>

#include "sim/simulation.hpp"

namespace mcp::sim {

namespace {
Simulation& require_sim(Simulation* sim) {
  if (!sim) throw std::logic_error("Process used before being added to a Simulation");
  return *sim;
}
}  // namespace

bool Process::wire_encoding_on() const {
  return require_sim(sim_).network().config().encode_messages;
}

void Process::post_payload(NodeId to, std::any payload, Time extra_delay) {
  require_sim(sim_).post_message(id_, to, std::move(payload), extra_delay);
}

int Process::set_timer(Time delay, int token) {
  return require_sim(sim_).post_timer(id_, delay, token);
}

void Process::cancel_timer(int handle) { require_sim(sim_).cancel_timer(handle); }

Time Process::now() const { return require_sim(sim_).now(); }

}  // namespace mcp::sim
