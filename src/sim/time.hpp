#pragma once

#include <cstdint>

namespace mcp::sim {

/// Simulated time. The unit is abstract; benches that count communication
/// steps configure every network hop to take exactly 1 tick and everything
/// else 0, so elapsed time equals message depth. Latency-oriented benches
/// interpret ticks as microseconds.
using Time = std::int64_t;

/// Identifier of a process inside one Simulation (dense, assigned in
/// creation order).
using NodeId = int;

inline constexpr NodeId kNoNode = -1;

}  // namespace mcp::sim
