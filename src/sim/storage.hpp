#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "sim/time.hpp"

namespace mcp::sim {

/// Per-process stable storage (the paper's "disk").
///
/// Contents survive crashes; the write counter is the quantity Section 4.4
/// of the paper reasons about. A synchronous write costs `write_latency`
/// simulated time, which protocol code must account for before sending any
/// message that depends on the written state (see Process::send_after_sync).
///
/// The base class is the simulator's in-memory medium and the interface
/// real backends implement: storage::FileStorage overrides `write` (and
/// `wipe`) to make the contents durable across actual process restarts
/// while keeping this class's map as its read cache. The contract for
/// overrides: when write() returns, the data must be as durable as the
/// medium gets — protocol code sends acknowledgements immediately after,
/// so a backend that buffers without syncing silently breaks the paper's
/// write-before-reply invariant.
class StableStorage {
 public:
  explicit StableStorage(Time write_latency = 0) : write_latency_(write_latency) {}
  virtual ~StableStorage() = default;

  /// Durably store `value` under `key`. Returns the latency the *sender*
  /// must account for before acting on the write: the modelled latency in
  /// simulation, 0 for real backends (they pay it synchronously inside
  /// this call).
  virtual Time write(const std::string& key, std::string value);

  /// Durably store an integer.
  Time write_int(const std::string& key, std::int64_t value);

  virtual std::optional<std::string> read(const std::string& key) const;
  std::optional<std::int64_t> read_int(const std::string& key) const;

  std::int64_t write_count() const { return write_count_; }
  Time write_latency() const { return write_latency_; }
  void set_write_latency(Time latency) { write_latency_ = latency; }

  /// Model catastrophic loss of the medium (used only by tests that check
  /// the algorithm's assumptions; acceptors never lose their disks).
  virtual void wipe() { data_.clear(); }

 protected:
  /// Install a recovered key/value without counting it as a new write:
  /// backends replaying their log at open must not inflate write_count(),
  /// the §4.4 quantity benches compare across protocols.
  void preload(const std::string& key, std::string value) {
    data_[key] = std::move(value);
  }
  const std::map<std::string, std::string>& contents() const { return data_; }

 private:
  std::map<std::string, std::string> data_;
  std::int64_t write_count_ = 0;
  Time write_latency_ = 0;
};

}  // namespace mcp::sim
