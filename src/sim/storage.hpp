#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "sim/time.hpp"

namespace mcp::sim {

/// Per-process stable storage (the paper's "disk").
///
/// Contents survive crashes; the write counter is the quantity Section 4.4
/// of the paper reasons about. A synchronous write costs `write_latency`
/// simulated time, which protocol code must account for before sending any
/// message that depends on the written state (see Process::send_after_sync).
class StableStorage {
 public:
  explicit StableStorage(Time write_latency = 0) : write_latency_(write_latency) {}

  /// Durably store `value` under `key`. Returns the latency of the write.
  Time write(const std::string& key, std::string value);

  /// Durably store an integer.
  Time write_int(const std::string& key, std::int64_t value);

  std::optional<std::string> read(const std::string& key) const;
  std::optional<std::int64_t> read_int(const std::string& key) const;

  std::int64_t write_count() const { return write_count_; }
  Time write_latency() const { return write_latency_; }
  void set_write_latency(Time latency) { write_latency_ = latency; }

  /// Model catastrophic loss of the medium (used only by tests that check
  /// the algorithm's assumptions; acceptors never lose their disks).
  void wipe() { data_.clear(); }

 private:
  std::map<std::string, std::string> data_;
  std::int64_t write_count_ = 0;
  Time write_latency_ = 0;
};

}  // namespace mcp::sim
