#include "sim/simulation.hpp"

#include <stdexcept>
#include <utility>

namespace mcp::sim {

Simulation::Simulation(std::uint64_t seed, NetworkConfig net_config)
    : network_(net_config), rng_(seed) {}

NodeId Simulation::add_process(std::unique_ptr<Process> process) {
  if (!process) throw std::invalid_argument("add_process: null process");
  const NodeId id = static_cast<NodeId>(processes_.size());
  bind(*process, this, id);
  processes_.push_back(std::move(process));
  return id;
}

std::vector<NodeId> Simulation::all_ids() const {
  std::vector<NodeId> ids(processes_.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<NodeId>(i);
  return ids;
}

void Simulation::crash(NodeId id) {
  Process& p = process(id);
  if (p.crashed_) return;
  p.crashed_ = true;
  ++p.timer_epoch_;  // invalidates every outstanding timer
  metrics_.incr("sim.crashes");
}

void Simulation::recover(NodeId id) {
  Process& p = process(id);
  if (!p.crashed_) return;
  p.crashed_ = false;
  ++p.incarnation_;
  metrics_.incr("sim.recoveries");
  p.on_recover();
}

void Simulation::crash_at(Time at_time, NodeId id) {
  at(at_time, [this, id] { crash(id); });
}

void Simulation::recover_at(Time at_time, NodeId id) {
  at(at_time, [this, id] { recover(id); });
}

void Simulation::at(Time when, std::function<void()> action) {
  if (when < now_) throw std::invalid_argument("Simulation::at: time in the past");
  queue_.schedule(when, std::move(action));
}

void Simulation::start_pending_processes() {
  // Processes added after the run began get their on_start lazily; loop
  // because on_start itself may add processes.
  while (started_ < processes_.size()) {
    Process& p = *processes_[started_++];
    if (!p.crashed_) p.on_start();
  }
}

Time Simulation::run_until(Time deadline) {
  start_pending_processes();
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    queue_.run_next(now_);
    ++events_processed_;
    start_pending_processes();
  }
  if (queue_.empty()) return now_;
  now_ = deadline;
  return now_;
}

bool Simulation::run_until(const std::function<bool()>& done, Time deadline) {
  start_pending_processes();
  if (done()) return true;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    queue_.run_next(now_);
    ++events_processed_;
    start_pending_processes();
    if (done()) return true;
  }
  return false;
}

void Simulation::run_to_completion() {
  start_pending_processes();
  while (!queue_.empty()) {
    queue_.run_next(now_);
    ++events_processed_;
    start_pending_processes();
  }
}

void Simulation::post_message(NodeId from, NodeId to, std::any msg, Time extra_delay) {
  if (to < 0 || static_cast<std::size_t>(to) >= processes_.size()) {
    throw std::out_of_range("post_message: unknown destination");
  }
  metrics_.incr("net.sent");
  if (const auto* env = std::any_cast<std::shared_ptr<const wire::Envelope>>(&msg)) {
    const auto bytes = static_cast<std::int64_t>((*env)->wire_size());
    metrics_.incr("net.bytes_sent", bytes);
    metrics_.incr("net.bytes." + wire::message_name((*env)->tag), bytes);
    metrics_.incr("net." + std::to_string(from) + ".bytes_to." + std::to_string(to),
                  bytes);
  }
  const std::vector<Time> copies = network_.plan_delivery(rng_, from, to);
  if (copies.empty()) {
    metrics_.incr("net.lost");
    return;
  }
  for (std::size_t i = 0; i < copies.size(); ++i) {
    if (i > 0) metrics_.incr("net.duplicated");
    // Copy the payload per delivered copy; cheap for shared_ptr payloads.
    std::any payload = msg;
    queue_.schedule(now_ + extra_delay + copies[i],
                    [this, from, to, payload = std::move(payload)] {
                      deliver(from, to, payload);
                    });
  }
}

void Simulation::deliver(NodeId from, NodeId to, const std::any& msg) {
  Process& p = process(to);
  if (p.crashed_) {
    metrics_.incr("net.dropped_at_crashed");
    return;
  }
  metrics_.incr("net.delivered");
  metrics_.incr("node." + std::to_string(to) + ".delivered");
  if (const auto* env = std::any_cast<std::shared_ptr<const wire::Envelope>>(&msg)) {
    // Decode at the receiving edge with the destination's registry, so
    // on_message keeps seeing the typed messages it pattern-matches on.
    p.on_message(from, p.decoders().decode(**env));
    return;
  }
  p.on_message(from, msg);
}

int Simulation::post_timer(NodeId owner, Time delay, int token) {
  if (delay < 0) throw std::invalid_argument("post_timer: negative delay");
  const int handle = next_timer_handle_++;
  const int epoch = process(owner).timer_epoch_;
  queue_.schedule(now_ + delay, [this, owner, token, handle, epoch] {
    if (cancelled_timers_.erase(handle) > 0) return;
    Process& p = process(owner);
    if (p.crashed_ || p.timer_epoch_ != epoch) return;  // stale
    p.on_timer(token);
  });
  return handle;
}

void Simulation::cancel_timer(int handle) {
  if (handle > 0) cancelled_timers_.insert(handle);
}

}  // namespace mcp::sim
