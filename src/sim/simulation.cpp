#include "sim/simulation.hpp"

#include <stdexcept>
#include <utility>

namespace mcp::sim {

Simulation::Simulation(std::uint64_t seed, NetworkConfig net_config)
    : network_(net_config), rng_(seed) {}

NodeId Simulation::add_process(std::unique_ptr<Process> process) {
  if (!process) throw std::invalid_argument("add_process: null process");
  const NodeId id = static_cast<NodeId>(processes_.size());
  bind(*process, this, id);
  processes_.push_back(std::move(process));
  return id;
}

std::vector<NodeId> Simulation::all_ids() const {
  std::vector<NodeId> ids(processes_.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<NodeId>(i);
  return ids;
}

void Simulation::crash(NodeId id) {
  Process& p = process(id);
  if (p.crashed_) return;
  p.crashed_ = true;
  ++p.timer_epoch_;  // invalidates every outstanding timer
  metrics_.incr("sim.crashes");
}

void Simulation::recover(NodeId id) {
  Process& p = process(id);
  if (!p.crashed_) return;
  p.crashed_ = false;
  ++p.incarnation_;
  metrics_.incr("sim.recoveries");
  p.on_recover();
}

void Simulation::crash_at(Time at_time, NodeId id) {
  at(at_time, [this, id] { crash(id); });
}

void Simulation::recover_at(Time at_time, NodeId id) {
  at(at_time, [this, id] { recover(id); });
}

void Simulation::at(Time when, std::function<void()> action) {
  if (when < now_) throw std::invalid_argument("Simulation::at: time in the past");
  queue_.schedule(when, std::move(action));
}

void Simulation::start_pending_processes() {
  // Processes added after the run began get their on_start lazily; loop
  // because on_start itself may add processes.
  while (started_ < processes_.size()) {
    Process& p = *processes_[started_++];
    if (!p.crashed_) p.on_start();
  }
}

Time Simulation::run_until(Time deadline) {
  start_pending_processes();
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    queue_.run_next(now_);
    ++events_processed_;
    start_pending_processes();
  }
  if (queue_.empty()) return now_;
  now_ = deadline;
  return now_;
}

bool Simulation::run_until(const std::function<bool()>& done, Time deadline) {
  start_pending_processes();
  if (done()) return true;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    queue_.run_next(now_);
    ++events_processed_;
    start_pending_processes();
    if (done()) return true;
  }
  return false;
}

void Simulation::run_to_completion() {
  start_pending_processes();
  while (!queue_.empty()) {
    queue_.run_next(now_);
    ++events_processed_;
    start_pending_processes();
  }
}

void Simulation::post_message(NodeId from, NodeId to, std::any msg, Time extra_delay) {
  if (to < 0 || static_cast<std::size_t>(to) >= processes_.size()) {
    throw std::out_of_range("post_message: unknown destination");
  }
  metrics_.incr("net.sent");
  std::int64_t bytes = 0;
  if (const auto* env = std::any_cast<std::shared_ptr<const wire::Envelope>>(&msg)) {
    bytes = static_cast<std::int64_t>((*env)->wire_size());
    metrics_.incr("net.bytes_sent", bytes);
    metrics_.incr("net.bytes." + wire::message_name((*env)->tag), bytes);
    metrics_.incr("net." + std::to_string(from) + ".bytes_to." + std::to_string(to),
                  bytes);
    // Per-consensus-group byte accounting (g<G>.net.bytes.*): the sharded
    // benches read these to show how load splits across groups.
    const std::string gp = "g" + std::to_string((*env)->group);
    metrics_.incr(gp + ".net.bytes_sent", bytes);
    metrics_.incr(gp + ".net.bytes." + wire::message_name((*env)->tag), bytes);
  }
  const std::vector<Time> copies = network_.plan_delivery(rng_, from, to);
  if (copies.empty()) {
    metrics_.incr("net.lost");
    return;
  }
  const Time bpt = network_.config().bytes_per_tick;
  for (std::size_t i = 0; i < copies.size(); ++i) {
    if (i > 0) metrics_.incr("net.duplicated");
    Time deliver_at = now_ + extra_delay + copies[i];
    if (bpt > 0 && bytes > 0) {
      // Store-and-forward receive queue: this copy starts draining when it
      // arrives AND everything queued ahead of it at `to` has drained, then
      // takes ceil(bytes / bytes_per_tick) ticks of the receiver's link.
      if (rx_busy_until_.size() < processes_.size()) {
        rx_busy_until_.resize(processes_.size(), 0);
      }
      Time& busy = rx_busy_until_[static_cast<std::size_t>(to)];
      const Time start = deliver_at > busy ? deliver_at : busy;
      deliver_at = start + (bytes + bpt - 1) / bpt;
      busy = deliver_at;
    }
    // Copy the payload per delivered copy; cheap for shared_ptr payloads.
    std::any payload = msg;
    queue_.schedule(deliver_at, [this, from, to, payload = std::move(payload)] {
      deliver(from, to, payload);
    });
  }
}

void Simulation::deliver(NodeId from, NodeId to, const std::any& msg) {
  Process& p = process(to);
  if (p.crashed_) {
    metrics_.incr("net.dropped_at_crashed");
    return;
  }
  metrics_.incr("net.delivered");
  metrics_.incr("node." + std::to_string(to) + ".delivered");
  if (const auto* env = std::any_cast<std::shared_ptr<const wire::Envelope>>(&msg)) {
    // Decode at the receiving edge with the destination's registry, so
    // on_message keeps seeing the typed messages it pattern-matches on.
    // Dispatch carries the envelope's group id so multi-group processes
    // can demultiplex; single-group processes inherit the default
    // (group-dropping) forward to on_message.
    p.on_group_message((*env)->group, from, p.decoders().decode(**env));
    return;
  }
  // Non-envelope payloads carry no group id; attribute them to the
  // sender's group (sim processes have distinct ids per group).
  const bool known_sender = from >= 0 && static_cast<std::size_t>(from) < processes_.size();
  p.on_group_message(known_sender ? process(from).group() : 0, from, msg);
}

int Simulation::post_timer(Process& owner, Time delay, int token) {
  if (delay < 0) throw std::invalid_argument("post_timer: negative delay");
  const int handle = next_timer_handle_++;
  const int epoch = owner.timer_epoch_;
  // Owned by processes_ (stable address for the simulation's lifetime).
  Process* o = &owner;
  queue_.schedule(now_ + delay, [this, o, token, handle, epoch] {
    if (cancelled_timers_.erase(handle) > 0) return;
    if (o->crashed_ || o->timer_epoch_ != epoch) return;  // stale
    o->on_timer(token);
  });
  return handle;
}

void Simulation::cancel_timer(int handle) {
  if (handle > 0) cancelled_timers_.insert(handle);
}

}  // namespace mcp::sim
