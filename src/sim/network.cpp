#include "sim/network.hpp"

namespace mcp::sim {

void Network::isolate(NodeId node, const std::vector<NodeId>& peers) {
  for (NodeId p : peers) {
    if (p != node) cut_both(node, p);
  }
}

void Network::heal(NodeId node, const std::vector<NodeId>& peers) {
  for (NodeId p : peers) {
    if (p != node) restore_both(node, p);
  }
}

Time Network::one_delay(util::Rng& rng) const {
  if (config_.min_delay >= config_.max_delay) return config_.min_delay;
  return rng.uniform(config_.min_delay, config_.max_delay);
}

std::vector<Time> Network::plan_delivery(util::Rng& rng, NodeId from, NodeId to) {
  std::vector<Time> copies;
  if (link_cut(from, to)) return copies;
  if (from == to && !config_.delay_self_messages) {
    copies.push_back(0);  // local delivery: still asynchronous, but free
    return copies;
  }
  if (!rng.chance(config_.loss_probability)) {
    copies.push_back(one_delay(rng));
  }
  // At most one duplicate; enough to exercise at-least-once handling.
  if (rng.chance(config_.duplication_probability)) {
    copies.push_back(one_delay(rng));
  }
  return copies;
}

}  // namespace mcp::sim
