#pragma once

#include <set>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "util/rng.hpp"

namespace mcp::sim {

/// Message-delay and fault model of the simulated network.
///
/// The paper's model: messages may be lost or duplicated, never corrupted,
/// and take unbounded time. We bound delays within a run (min/max uniform)
/// because benches need finite executions; loss/duplication probabilities
/// and explicit link cuts model the asynchrony-induced pathologies.
struct NetworkConfig {
  Time min_delay = 1;  ///< inclusive lower bound for one hop
  Time max_delay = 1;  ///< inclusive upper bound for one hop
  double loss_probability = 0.0;
  double duplication_probability = 0.0;
  /// Delivery to self is immediate-but-asynchronous (next event, delay 0)
  /// unless this is set, in which case self messages use the normal delays.
  bool delay_self_messages = false;
  /// Serialize protocol messages into wire::Envelope bytes at the
  /// Process::send boundary (enables the net.bytes_* counters). Off is the
  /// escape hatch for perf-sensitive soak runs; protocol outcomes are
  /// identical either way for a fixed seed.
  bool encode_messages = true;
  /// Receive-side capacity model: when > 0, each destination drains at most
  /// this many encoded bytes per tick, store-and-forward — a message is
  /// handed to the process only after every earlier-arriving byte for that
  /// destination has drained. 0 (default) keeps the classic infinite-
  /// capacity model. This is what makes a single hot coordinator a genuine
  /// deterministic bottleneck, so throughput scales when load is sharded
  /// across consensus groups instead of averaging away in zero-cost links.
  /// Requires encode_messages (non-envelope payloads have no byte size and
  /// bypass the queue).
  Time bytes_per_tick = 0;
};

class Network {
 public:
  explicit Network(NetworkConfig config = {}) : config_(config) {}

  const NetworkConfig& config() const { return config_; }
  void set_config(const NetworkConfig& config) { config_ = config; }

  /// Cut / restore a directed link. Cut links silently drop messages,
  /// modelling a partition (cut both directions for a symmetric one).
  void cut_link(NodeId from, NodeId to) { cut_.insert({from, to}); }
  void restore_link(NodeId from, NodeId to) { cut_.erase({from, to}); }
  void cut_both(NodeId a, NodeId b) {
    cut_link(a, b);
    cut_link(b, a);
  }
  void restore_both(NodeId a, NodeId b) {
    restore_link(a, b);
    restore_link(b, a);
  }
  /// Isolate a node entirely from a set of peers.
  void isolate(NodeId node, const std::vector<NodeId>& peers);
  void heal(NodeId node, const std::vector<NodeId>& peers);
  bool link_cut(NodeId from, NodeId to) const { return cut_.count({from, to}) != 0; }

  /// Decide the fate of one message: the returned vector holds one delay per
  /// copy that will be delivered (empty means the message is lost).
  std::vector<Time> plan_delivery(util::Rng& rng, NodeId from, NodeId to);

 private:
  Time one_delay(util::Rng& rng) const;

  NetworkConfig config_;
  std::set<std::pair<NodeId, NodeId>> cut_;
};

}  // namespace mcp::sim
