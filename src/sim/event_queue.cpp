#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace mcp::sim {

void EventQueue::schedule(Time at, Action action) {
  if (at < 0) throw std::invalid_argument("EventQueue::schedule: negative time");
  heap_.push(Entry{at, next_seq_++, std::move(action)});
}

Time EventQueue::next_time() const {
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time on empty queue");
  return heap_.top().at;
}

void EventQueue::run_next(Time& now) {
  if (heap_.empty()) throw std::logic_error("EventQueue::run_next on empty queue");
  // priority_queue::top returns const&; move out via const_cast is UB-free
  // here because we pop immediately and never reheapify the moved-from entry.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now = entry.at;
  entry.action();
}

void EventQueue::clear() {
  heap_ = {};
  next_seq_ = 0;
}

}  // namespace mcp::sim
