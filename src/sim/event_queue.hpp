#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace mcp::sim {

/// A time-ordered queue of closures. Events scheduled for the same instant
/// fire in insertion order (stable), which keeps simulations deterministic.
class EventQueue {
 public:
  using Action = std::function<void()>;

  void schedule(Time at, Action action);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Requires !empty().
  Time next_time() const;

  /// Pop and run the earliest event, advancing `now` to its time.
  /// Requires !empty().
  void run_next(Time& now);

  void clear();

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace mcp::sim
