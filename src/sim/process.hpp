#pragma once

#include <any>
#include <string>
#include <vector>

#include "sim/storage.hpp"
#include "sim/time.hpp"

namespace mcp::sim {

class Simulation;

/// One simulated process (proposer, coordinator, acceptor, learner, client,
/// or any combination). Subclasses implement the message/timer handlers and
/// use the protected helpers to interact with the world.
///
/// Crash-recovery semantics follow the paper: a crashed process handles no
/// messages and fires no timers; volatile state (the C++ members) survives
/// in this in-memory model, so `on_recover` implementations must explicitly
/// reset anything the real process would have lost, reading back only what
/// they persisted in `storage()`.
class Process {
 public:
  virtual ~Process() = default;

  NodeId id() const { return id_; }
  bool crashed() const { return crashed_; }
  /// How many times this process has crashed and recovered (the
  /// "incarnation" counter of Section 4.4).
  int incarnation() const { return incarnation_; }

  /// Short role label used for metrics ("acceptor", "coord", ...).
  virtual std::string role() const { return "process"; }

  /// Called once when the simulation starts.
  virtual void on_start() {}
  /// Called for every delivered message.
  virtual void on_message(NodeId from, const std::any& msg) = 0;
  /// Called when a timer set via set_timer fires (token identifies it).
  virtual void on_timer(int token) { (void)token; }
  /// Called when the process recovers after a crash.
  virtual void on_recover() {}

  StableStorage& storage() { return storage_; }
  const StableStorage& storage() const { return storage_; }

  // Interaction helpers are public so that reusable components owned by a
  // process (e.g. the failure detector) can drive them on its behalf.

  /// Send a message; delivery is scheduled through the simulated network.
  void send(NodeId to, std::any msg);
  /// Send the same message to every node in `to`.
  void multicast(const std::vector<NodeId>& to, const std::any& msg);
  /// Durably write to stable storage, then send; the send is delayed by the
  /// disk-write latency, modelling "write before ack".
  void send_after_sync(NodeId to, std::any msg, Time sync_latency);
  void multicast_after_sync(const std::vector<NodeId>& to, const std::any& msg,
                            Time sync_latency);

  /// Arrange for on_timer(token) after `delay`. Returns a handle usable
  /// with cancel_timer. Timers are implicitly cancelled by a crash.
  int set_timer(Time delay, int token);
  void cancel_timer(int handle);

  Time now() const;
  Simulation& sim() { return *sim_; }
  const Simulation& sim() const { return *sim_; }

 private:
  friend class Simulation;

  Simulation* sim_ = nullptr;
  NodeId id_ = kNoNode;
  bool crashed_ = false;
  int incarnation_ = 0;
  /// Timers scheduled before this epoch are stale (cancelled or pre-crash).
  int timer_epoch_ = 0;
  StableStorage storage_;
};

}  // namespace mcp::sim
