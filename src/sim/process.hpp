#pragma once

#include <any>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "paxos/wire.hpp"
#include "sim/host.hpp"
#include "sim/storage.hpp"
#include "sim/time.hpp"

namespace mcp::sim {

class Simulation;

/// One protocol process (proposer, coordinator, acceptor, learner, client,
/// or any combination). Subclasses implement the message/timer handlers and
/// use the protected helpers to interact with the world — which is either
/// the discrete-event Simulation or a live runtime::Node; protocol code
/// cannot tell the difference (see sim::Host).
///
/// Crash-recovery semantics follow the paper: a crashed process handles no
/// messages and fires no timers; volatile state (the C++ members) survives
/// in this in-memory model, so `on_recover` implementations must explicitly
/// reset anything the real process would have lost, reading back only what
/// they persisted in `storage()`.
class Process {
 public:
  virtual ~Process() = default;

  NodeId id() const { return id_; }
  /// Consensus group this process serves (0 in an unsharded cluster). Set
  /// by the host at adoption; stamped into every outgoing envelope so the
  /// receiving host can route the frame to its same-group process.
  std::uint32_t group() const { return group_; }
  bool crashed() const { return crashed_; }
  /// How many times this process has crashed and recovered (the
  /// "incarnation" counter of Section 4.4).
  int incarnation() const { return incarnation_; }

  /// Short role label used for metrics ("acceptor", "coord", ...).
  virtual std::string role() const { return "process"; }
  /// Best-effort leadership hint for health endpoints: the node this
  /// process currently believes coordinates its group, or kNoNode when the
  /// role has no such notion. Purely informational — never used by the
  /// protocol itself.
  virtual NodeId leader_hint() const { return kNoNode; }

  /// Called once when the simulation starts.
  virtual void on_start() {}
  /// Called for every delivered message.
  virtual void on_message(NodeId from, const std::any& msg) = 0;
  /// Group-aware delivery hook: hosts dispatch through this, passing the
  /// envelope's group id. The default drops the group and forwards to
  /// on_message — correct for every single-group process. A process serving
  /// several groups at once (e.g. a sharded service frontend) overrides
  /// this to demultiplex.
  virtual void on_group_message(std::uint32_t group, NodeId from,
                                const std::any& msg) {
    (void)group;
    on_message(from, msg);
  }
  /// Called when a timer set via set_timer fires (token identifies it).
  virtual void on_timer(int token) { (void)token; }
  /// Called when the process recovers after a crash.
  virtual void on_recover() {}

  StableStorage& storage() { return *storage_; }
  const StableStorage& storage() const { return *storage_; }

  // Interaction helpers are public so that reusable components owned by a
  // process (e.g. the failure detector) can drive them on its behalf.
  //
  // Messages modelling self-encoding wire types (wire::SelfEncoding) are
  // serialized into a wire::Envelope at this boundary, so the network
  // carries bytes and the byte counters see every protocol message;
  // anything else (ad-hoc test payloads) rides along as a plain std::any.
  // NetworkConfig::encode_messages = false restores the in-memory
  // hand-off for perf-sensitive runs.

  /// Send a message; delivery is scheduled through the simulated network.
  template <typename M>
  void send(NodeId to, M msg) {
    post_payload(to, make_payload(std::move(msg), group_), 0);
  }

  /// Send the same message to every node in `to` (encoded once).
  template <typename M>
  void multicast(const std::vector<NodeId>& to, const M& msg) {
    const std::any payload = make_payload(msg, group_);
    for (NodeId dst : to) post_payload(dst, payload, 0);
  }

  /// Send addressed to an explicit consensus group (instead of this
  /// process's own). Used by multi-group processes — e.g. a sharded
  /// frontend proposing into each shard's coordinator/acceptor set.
  template <typename M>
  void send_group(std::uint32_t group, NodeId to, M msg) {
    post_payload(to, make_payload(std::move(msg), group), 0);
  }

  template <typename M>
  void multicast_group(std::uint32_t group, const std::vector<NodeId>& to,
                       const M& msg) {
    const std::any payload = make_payload(msg, group);
    for (NodeId dst : to) post_payload(dst, payload, 0);
  }

  /// Durably write to stable storage, then send; the send is delayed by the
  /// disk-write latency, modelling "write before ack".
  template <typename M>
  void send_after_sync(NodeId to, M msg, Time sync_latency) {
    post_payload(to, make_payload(std::move(msg), group_), sync_latency);
  }

  template <typename M>
  void multicast_after_sync(const std::vector<NodeId>& to, const M& msg,
                            Time sync_latency) {
    const std::any payload = make_payload(msg, group_);
    for (NodeId dst : to) post_payload(dst, payload, sync_latency);
  }

  /// Decoders for the message types this process understands; protocol
  /// roles register their full message set at construction.
  wire::DecoderRegistry& decoders() { return decoders_; }
  const wire::DecoderRegistry& decoders() const { return decoders_; }

  /// Arrange for on_timer(token) after `delay`. Returns a handle usable
  /// with cancel_timer. Timers are implicitly cancelled by a crash.
  int set_timer(Time delay, int token);
  void cancel_timer(int handle);

  Time now() const;
  /// The hosting world. Named for the common case (protocol code says
  /// `sim().metrics()`); under a live runtime::Node the same calls hit the
  /// node's metrics/rng instead.
  Host& sim() { return *host_; }
  const Host& sim() const { return *host_; }

  /// Record a pipeline span event on the host's trace ring. A cheap no-op
  /// (one relaxed load) unless tracing is enabled. `group` defaults to the
  /// process's own; multi-group processes (the sharded frontend) pass the
  /// command's shard explicitly.
  void trace_point(util::TracePoint point, std::uint64_t trace_id,
                   std::uint64_t arg = 0, std::uint32_t group = kOwnGroup) {
    util::TraceRecorder& t = host_->trace();
    if (!t.enabled()) return;
    t.record({trace_id, host_->trace_now_us(), static_cast<std::int64_t>(id_),
              group == kOwnGroup ? group_ : group, point, arg});
  }

  /// Whether the host carries a flight recorder. Emit sites that build a
  /// payload (e.g. encoding a c-struct) should gate on this so journaling
  /// costs nothing when off.
  bool journaling() const { return host_->journal() != nullptr; }

  /// Append a protocol event to the host's flight recorder (no-op when
  /// journaling is off). The sink stamps timestamp and node id; the group
  /// defaults to this process's own.
  void journal_event(util::JournalRecord rec, std::uint32_t group = kOwnGroup) {
    if (util::JournalSink* sink = host_->journal()) {
      rec.group = group == kOwnGroup ? group_ : group;
      sink->append(std::move(rec));
    }
  }

  /// Per-group health snapshot for /healthz: the learned prefix length and
  /// how much of it this process has applied. Roles with no learner state
  /// return false; the frontend and learner override.
  virtual bool group_progress(std::uint32_t group, std::uint64_t* learned,
                              std::uint64_t* applied) const {
    (void)group;
    (void)learned;
    (void)applied;
    return false;
  }

 private:
  friend class Host;        // Host::bind adopts the process
  friend class Simulation;  // crash/recovery bookkeeping (sim-only concepts)

  /// Sentinel for trace_point's group parameter: "use this process's own".
  static constexpr std::uint32_t kOwnGroup = 0xFFFFFFFFu;

  /// The encoding boundary: self-encoding messages become a
  /// shared_ptr<const Envelope> (per-destination and per-duplicate
  /// std::any copies inside the simulation are refcount bumps, not deep
  /// copies of the body bytes); everything else rides as a plain std::any.
  template <typename M>
  std::any make_payload(M&& msg, std::uint32_t group) {
    if constexpr (wire::SelfEncoding<std::decay_t<M>>) {
      if (wire_encoding_on()) {
        return std::make_shared<const wire::Envelope>(
            wire::make_envelope(msg, group));
      }
    }
    return std::any(std::forward<M>(msg));
  }

  /// True when messages must be serialized at this boundary (the host's
  /// encode_messages policy; always true under a real transport).
  bool wire_encoding_on() const;
  /// Hand a ready payload (envelope or raw std::any) to the host.
  void post_payload(NodeId to, std::any payload, Time extra_delay);

  Host* host_ = nullptr;
  NodeId id_ = kNoNode;
  std::uint32_t group_ = 0;
  bool crashed_ = false;
  int incarnation_ = 0;
  /// Timers scheduled before this epoch are stale (cancelled or pre-crash).
  int timer_epoch_ = 0;
  /// Owned medium: in-memory by default; a host may swap in a durable
  /// backend (Host::attach_storage) at adoption time, before any handler
  /// runs — protocol code must not cache the storage() reference across
  /// that boundary (constructors only tune it, e.g. set_write_latency).
  std::unique_ptr<StableStorage> storage_ = std::make_unique<StableStorage>();
  wire::DecoderRegistry decoders_;
};

}  // namespace mcp::sim
