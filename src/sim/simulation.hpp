#pragma once

#include <any>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/host.hpp"
#include "sim/network.hpp"
#include "sim/process.hpp"
#include "sim/time.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace mcp::sim {

/// The discrete-event simulation engine: owns processes, the network, the
/// clock, randomness and metrics. Deterministic given (seed, config,
/// process behaviour). One of the two Host implementations — the other is
/// runtime::Node, which runs a single process over a real transport.
class Simulation final : public Host {
 public:
  explicit Simulation(std::uint64_t seed, NetworkConfig net_config = {});

  /// Register a process; returns its id (dense, in registration order).
  /// The simulation takes ownership.
  NodeId add_process(std::unique_ptr<Process> process);

  template <typename P, typename... Args>
  P& make_process(Args&&... args) {
    auto owned = std::make_unique<P>(std::forward<Args>(args)...);
    P& ref = *owned;
    add_process(std::move(owned));
    return ref;
  }

  Process& process(NodeId id) { return *processes_.at(static_cast<std::size_t>(id)); }
  const Process& process(NodeId id) const {
    return *processes_.at(static_cast<std::size_t>(id));
  }
  std::size_t process_count() const { return processes_.size(); }
  std::vector<NodeId> all_ids() const;

  Network& network() { return network_; }
  util::Rng& rng() override { return rng_; }
  util::Metrics& metrics() override { return metrics_; }
  Time now() const override { return now_; }
  bool encode_messages() const override { return network_.config().encode_messages; }

  // --- fault injection -----------------------------------------------------
  void crash(NodeId id);
  void recover(NodeId id);
  void crash_at(Time at, NodeId id);
  void recover_at(Time at, NodeId id);

  // --- execution -----------------------------------------------------------
  /// Run an arbitrary closure at an absolute simulated time.
  void at(Time when, std::function<void()> action);

  /// Run until the queue drains or `deadline` passes. Returns the time the
  /// run stopped.
  Time run_until(Time deadline);

  /// Run until `done()` holds (checked after every event) or the deadline
  /// passes / queue drains. Returns true iff the predicate held.
  bool run_until(const std::function<bool()>& done, Time deadline);

  /// Run until the queue is completely empty (use with protocols that stop
  /// retransmitting once done, or with a bounded message budget).
  void run_to_completion();

  /// Events processed so far (proxy for work / message complexity).
  std::uint64_t events_processed() const { return events_processed_; }

  // --- used by Process helpers (the Host contract) ---------------------------
  void post_message(NodeId from, NodeId to, std::any msg, Time extra_delay) override;
  void post_message(NodeId from, NodeId to, std::any msg) {
    post_message(from, to, std::move(msg), 0);
  }
  int post_timer(Process& owner, Time delay, int token) override;
  void cancel_timer(int handle) override;

  /// Assign a process to a consensus group (see Process::group()). Sim-side
  /// processes get distinct ids per group, so this only stamps outgoing
  /// envelopes / dispatches on_group_message — it does not multiplex.
  void assign_group(NodeId id, std::uint32_t group) {
    set_group(process(id), group);
  }

 private:
  void start_pending_processes();
  void deliver(NodeId from, NodeId to, const std::any& msg);

  EventQueue queue_;
  Network network_;
  util::Rng rng_;
  util::Metrics metrics_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::size_t started_ = 0;  // processes whose on_start already ran
  Time now_ = 0;
  std::uint64_t events_processed_ = 0;
  int next_timer_handle_ = 1;
  std::set<int> cancelled_timers_;
  /// Per-destination receive-queue horizon for the bytes_per_tick capacity
  /// model: the tick at which everything already bound for that process
  /// has drained. Unused (empty) when the model is off.
  std::vector<Time> rx_busy_until_;
};

}  // namespace mcp::sim
