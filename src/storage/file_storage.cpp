#include "storage/file_storage.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "paxos/wire.hpp"

namespace mcp::storage {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("FileStorage: " + what + " " + path + ": " +
                           std::strerror(errno));
}

/// FNV-1a over the record payload: 4 bytes is plenty to tell a torn or
/// bit-rotted tail from a clean record (this is tamper-evidence against
/// crashes, not adversaries).
std::uint32_t checksum(std::string_view data) {
  std::uint32_t h = 2166136261u;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 16777619u;
  }
  return h;
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32(wire::Reader& r) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(r.get_u8()) << (8 * i);
  return v;
}

std::string read_file(const std::string& path, bool* existed) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      *existed = false;
      return {};
    }
    fail("open", path);
  }
  *existed = true;
  std::string out;
  char buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      ::close(fd);
      fail("read", path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

}  // namespace

FileStorage::FileStorage(std::string dir, FileStorageOptions options)
    : dir_(std::move(dir)), options_(options) {
  if (dir_.empty()) throw std::invalid_argument("FileStorage: empty data dir");
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) fail("mkdir", dir_);
  recover();
}

FileStorage::~FileStorage() {
  if (log_fd_ >= 0) ::close(log_fd_);
}

std::string FileStorage::log_path() const { return dir_ + "/" + kLogName; }
std::string FileStorage::snapshot_path() const { return dir_ + "/" + kSnapshotName; }

void FileStorage::sync_fd(int fd) {
  if (!options_.sync) return;
  if (::fsync(fd) != 0) fail("fsync", dir_);
  ++syncs_;
}

void FileStorage::sync_dir() {
  if (!options_.sync) return;
  const int fd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) fail("open dir", dir_);
  if (::fsync(fd) != 0) {
    ::close(fd);
    fail("fsync dir", dir_);
  }
  ::close(fd);
  ++syncs_;
}

void FileStorage::recover() {
  // Snapshot first (the bounded prefix), then the log suffix on top.
  bool have_snapshot = false;
  const std::string snap = read_file(snapshot_path(), &have_snapshot);
  if (have_snapshot && load_snapshot(snap) > 0) {
    loaded_snapshot_ = true;
    recovered_ = true;
  }

  bool have_log = false;
  const std::string log = read_file(log_path(), &have_log);
  const std::size_t valid = replay_log(log);
  if (replayed_records_ > 0) recovered_ = true;

  // Re-open for appending, truncated at the first bad record: bytes past
  // it were never acknowledged to anyone.
  log_fd_ = ::open(log_path().c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (log_fd_ < 0) fail("open", log_path());
  if (::ftruncate(log_fd_, static_cast<off_t>(valid)) != 0) fail("truncate", log_path());
  if (::lseek(log_fd_, 0, SEEK_END) < 0) fail("seek", log_path());
  log_records_ = replayed_records_;
}

std::size_t FileStorage::load_snapshot(const std::string& snap) {
  // Every preload below is gated by a per-entry checksum, so corruption —
  // wherever it lands — discards entries, never poisons the cache. One
  // flipped byte in an entry costs that entry; a broken frame costs the
  // entries behind it; either way the log replay (which the snapshot
  // protocol only truncates after a durable rename) layers the fsync'd
  // suffix on top of whatever was salvaged.
  if (snap.size() < 4) return 0;
  const std::string_view view(snap);
  std::size_t loaded = 0;
  try {
    wire::Reader r(view.substr(0, snap.size() - 4));
    const std::uint64_t count = r.get_varint();
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::string_view payload = r.get_bytes();
      const std::uint32_t stored = get_u32(r);
      if (stored != checksum(payload)) {
        ++snapshot_entries_dropped_;  // this entry rotted; the frame held
        continue;
      }
      wire::Reader pr(payload);
      const std::string key(pr.get_bytes());
      preload(key, std::string(pr.get_bytes()));
      ++loaded;
    }
  } catch (const std::invalid_argument&) {
    ++snapshot_entries_dropped_;  // frame lost: entries past here are gone
  }
  return loaded;
}

std::size_t FileStorage::replay_log(const std::string& data) {
  std::size_t valid = 0;
  wire::Reader r(data);
  while (r.remaining() > 0) {
    try {
      const std::string_view payload = r.get_bytes();
      const std::uint32_t stored = get_u32(r);
      if (stored != checksum(payload)) break;  // corrupt: cut here
      wire::Reader pr(payload);
      const std::string key(pr.get_bytes());
      preload(key, std::string(pr.get_bytes()));
    } catch (const std::invalid_argument&) {
      break;  // torn tail: record frame ran past end of file
    }
    ++replayed_records_;
    valid = data.size() - r.remaining();
  }
  return valid;
}

sim::Time FileStorage::write(const std::string& key, std::string value) {
  append_record(key, value);
  // Base write: cache for reads + the §4.4 write counter. The returned
  // modelled latency is irrelevant here — the fsync above already paid the
  // real one, so callers' send_after_sync delays stay 0.
  sim::StableStorage::write(key, std::move(value));
  if (log_records_ >= options_.snapshot_every) write_snapshot();
  return 0;
}

void FileStorage::append_record(const std::string& key, const std::string& value) {
  wire::Writer pw;
  pw.put_bytes(key);
  pw.put_bytes(value);
  std::string payload = pw.take();

  wire::Writer fw;
  fw.put_bytes(payload);
  std::string frame = fw.take();
  put_u32(frame, checksum(payload));

  const char* p = frame.data();
  std::size_t left = frame.size();
  while (left > 0) {
    const ssize_t n = ::write(log_fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write", log_path());
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  sync_fd(log_fd_);
  ++log_records_;
  ++appended_records_;
}

void FileStorage::write_snapshot() {
  // Each entry is framed and checksummed exactly like a log record, so
  // recovery can salvage around a rotted entry; the trailing whole-body
  // checksum is an integrity summary for external tooling.
  wire::Writer w;
  w.put_varint(contents().size());
  std::string body = w.take();
  for (const auto& [key, value] : contents()) {
    wire::Writer ew;
    ew.put_bytes(key);
    ew.put_bytes(value);
    const std::string payload = ew.take();
    wire::Writer fw;
    fw.put_bytes(payload);
    body += fw.take();
    put_u32(body, checksum(payload));
  }
  put_u32(body, checksum(body));

  const std::string tmp = dir_ + "/snapshot.tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) fail("open", tmp);
  const char* p = body.data();
  std::size_t left = body.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      fail("write", tmp);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  sync_fd(fd);
  ::close(fd);
  if (::rename(tmp.c_str(), snapshot_path().c_str()) != 0) fail("rename", tmp);
  sync_dir();

  // Only now may the log shrink: a crash anywhere above replays the old
  // log over the old (or new — replay is idempotent) snapshot.
  if (::ftruncate(log_fd_, 0) != 0) fail("truncate", log_path());
  if (::lseek(log_fd_, 0, SEEK_SET) < 0) fail("seek", log_path());
  sync_fd(log_fd_);
  log_records_ = 0;
  ++snapshots_written_;
}

void FileStorage::wipe() {
  sim::StableStorage::wipe();
  if (log_fd_ >= 0) {
    if (::ftruncate(log_fd_, 0) != 0) fail("truncate", log_path());
    if (::lseek(log_fd_, 0, SEEK_SET) < 0) fail("seek", log_path());
    sync_fd(log_fd_);
  }
  ::unlink(snapshot_path().c_str());
  sync_dir();
  log_records_ = 0;
}

}  // namespace mcp::storage
