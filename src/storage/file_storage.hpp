#pragma once

#include <cstdint>
#include <string>

#include "sim/storage.hpp"

namespace mcp::storage {

struct FileStorageOptions {
  /// Take a full snapshot once this many records accumulated in the log
  /// since the last one, then truncate the log — recovery replay is
  /// bounded by `snapshot_every` records however long the node ran.
  std::int64_t snapshot_every = 256;
  /// fsync every append and snapshot (the durability the paper assumes).
  /// Off is for tests that deliberately model lost tail writes.
  bool sync = true;
};

/// File-backed sim::StableStorage: the durable medium a live node's
/// acceptor/coordinator state survives real restarts on.
///
/// Layout inside the data directory:
///
///   wal.log       append-only records, one per write():
///                   varint(payload len) · payload · 4-byte FNV-1a checksum
///                 where payload = put_bytes(key) · put_bytes(value)
///                 (the wire codec's framing, so torn tails are detected
///                 by length, checksum by corruption)
///   snapshot.bin  full key→value image: varint(count), then per entry
///                   varint(payload len) · payload · 4-byte FNV-1a checksum
///                 (payload = put_bytes(key) · put_bytes(value) — the log's
///                 record frame), and a trailing 4-byte checksum over the
///                 whole body; written to snapshot.tmp, fsync'd, then
///                 atomically renamed. The per-entry checksums localize
///                 media corruption: one flipped byte discards that entry,
///                 not the whole image — recovery salvages every entry
///                 whose own checksum still holds.
///
/// write() appends + fsyncs before returning and only then updates the
/// in-memory cache (the base class map, which serves every read), so the
/// paper's write-before-reply invariant holds: by the time protocol code
/// can send a message that depends on the write, the record is on disk.
/// Recovery (the constructor) loads the snapshot, replays the log suffix
/// on top, and truncates the log at the first torn or corrupt record —
/// everything before it was fsync'd and must be kept, everything after
/// was never acknowledged and may be dropped.
class FileStorage final : public sim::StableStorage {
 public:
  /// Opens (creating if needed) the data directory and recovers any prior
  /// state. Throws std::runtime_error on I/O errors.
  explicit FileStorage(std::string dir, FileStorageOptions options = {});
  ~FileStorage() override;

  FileStorage(const FileStorage&) = delete;
  FileStorage& operator=(const FileStorage&) = delete;

  sim::Time write(const std::string& key, std::string value) override;

  /// Delete both files and the cache (a lost disk).
  void wipe() override;

  /// True when the constructor found prior state (snapshot or log records)
  /// — the signal runtime::Node uses to run on_recover instead of on_start.
  bool recovered() const { return recovered_; }

  // --- recovery/replay accounting (tests + the recovery bench) --------------
  std::int64_t replayed_records() const { return replayed_records_; }
  bool loaded_snapshot() const { return loaded_snapshot_; }
  /// Snapshot entries recovery had to discard (failed per-entry checksum
  /// or unparseable frame) — corruption localized to single entries.
  std::int64_t snapshot_entries_dropped() const { return snapshot_entries_dropped_; }
  std::int64_t snapshots_written() const { return snapshots_written_; }
  std::int64_t appended_records() const { return appended_records_; }
  std::int64_t syncs() const { return syncs_; }
  const std::string& dir() const { return dir_; }

  static constexpr const char* kLogName = "wal.log";
  static constexpr const char* kSnapshotName = "snapshot.bin";

 private:
  std::string log_path() const;
  std::string snapshot_path() const;
  void recover();
  /// Load a snapshot image, salvaging entry by entry; returns entries kept.
  std::size_t load_snapshot(const std::string& snap);
  /// Replay `data` (full log contents); returns the byte offset of the
  /// first torn/corrupt record (== size when the whole log is clean).
  std::size_t replay_log(const std::string& data);
  void append_record(const std::string& key, const std::string& value);
  void write_snapshot();
  void sync_fd(int fd);
  void sync_dir();

  std::string dir_;
  FileStorageOptions options_;
  int log_fd_ = -1;
  bool recovered_ = false;
  bool loaded_snapshot_ = false;
  std::int64_t log_records_ = 0;  ///< records in the log since last snapshot
  std::int64_t replayed_records_ = 0;
  std::int64_t snapshot_entries_dropped_ = 0;
  std::int64_t snapshots_written_ = 0;
  std::int64_t appended_records_ = 0;
  std::int64_t syncs_ = 0;
};

}  // namespace mcp::storage
