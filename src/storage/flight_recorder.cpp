#include "storage/flight_recorder.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "paxos/wire.hpp"

namespace mcp::storage {

namespace {

constexpr const char* kSegmentPrefix = "journal-";
constexpr const char* kSegmentSuffix = ".mcj";

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("FlightRecorder: " + what + " " + path + ": " +
                           std::strerror(errno));
}

/// Same FNV-1a the FileStorage WAL frames with.
std::uint32_t checksum(std::string_view data) {
  std::uint32_t h = 2166136261u;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 16777619u;
  }
  return h;
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32(wire::Reader& r) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(r.get_u8()) << (8 * i);
  return v;
}

std::string segment_name(std::uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s%06llu%s", kSegmentPrefix,
                static_cast<unsigned long long>(seq), kSegmentSuffix);
  return buf;
}

/// journal-000042.mcj -> 42, or 0 for anything else.
std::uint64_t segment_seq(const std::string& name) {
  const std::size_t prefix = std::strlen(kSegmentPrefix);
  const std::size_t suffix = std::strlen(kSegmentSuffix);
  if (name.size() <= prefix + suffix) return 0;
  if (name.compare(0, prefix, kSegmentPrefix) != 0) return 0;
  if (name.compare(name.size() - suffix, suffix, kSegmentSuffix) != 0) return 0;
  std::uint64_t seq = 0;
  for (std::size_t i = prefix; i < name.size() - suffix; ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    seq = seq * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return seq;
}

std::vector<std::pair<std::uint64_t, std::string>> list_segments(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (const dirent* e = ::readdir(d)) {
    const std::uint64_t seq = segment_seq(e->d_name);
    if (seq > 0) out.emplace_back(seq, dir + "/" + e->d_name);
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t wall_clock_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::string read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail("open", path);
  std::string out;
  char buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      ::close(fd);
      fail("read", path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

}  // namespace

FlightRecorder::FlightRecorder(std::int64_t node, std::string dir,
                               FlightRecorderOptions options)
    : node_(node), dir_(std::move(dir)), options_(options) {
  if (dir_.empty()) throw std::invalid_argument("FlightRecorder: empty dir");
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) fail("mkdir", dir_);
  const auto existing = list_segments(dir_);
  const std::uint64_t last = existing.empty() ? 0 : existing.back().first;
  open_segment(last + 1);
}

FlightRecorder::~FlightRecorder() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    if (options_.sync) ::fsync(fd);
    ::close(fd);
  }
}

void FlightRecorder::open_segment(std::uint64_t seq) {
  const std::string path = dir_ + "/" + segment_name(seq);
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) fail("open", path);
  fd_.store(fd, std::memory_order_release);
  current_seq_ = seq;
  current_bytes_ = 0;
  ++segments_created_;
}

std::string FlightRecorder::encode_record(const util::JournalRecord& rec) {
  wire::Writer w;
  w.put_u8(static_cast<std::uint8_t>(rec.kind));
  w.put_varint(rec.ts_us);
  w.put_signed(rec.node);
  w.put_varint(rec.group);
  w.put_signed(rec.ballot_count);
  w.put_signed(rec.ballot_coord);
  w.put_signed(rec.ballot_inc);
  w.put_u8(rec.ballot_type);
  w.put_varint(rec.a);
  w.put_varint(rec.b);
  w.put_bytes(rec.payload);
  return std::move(w).take();
}

void FlightRecorder::append(util::JournalRecord rec) {
  rec.ts_us = wall_clock_us();
  rec.node = node_;
  const std::string payload = encode_record(rec);
  wire::Writer framed;
  framed.put_bytes(payload);
  std::string frame = std::move(framed).take();
  put_u32(frame, checksum(payload));

  std::lock_guard<std::mutex> lock(mu_);
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return;
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write", dir_);
    }
    off += static_cast<std::size_t>(n);
  }
  current_bytes_ += frame.size();
  events_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(frame.size(), std::memory_order_relaxed);
  if (current_bytes_ >= options_.segment_bytes) rotate_locked();
}

void FlightRecorder::rotate_locked() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) {
    if (options_.sync) ::fsync(fd);
    // Swap in the next segment's fd before closing, so a concurrent
    // signal_flush never sees a closed descriptor.
    open_segment(current_seq_ + 1);
    ::close(fd);
  }
  prune_locked();
}

void FlightRecorder::prune_locked() {
  if (options_.keep_segments == 0) return;
  const auto segments = list_segments(dir_);
  if (segments.size() <= options_.keep_segments) return;
  const std::size_t excess = segments.size() - options_.keep_segments;
  for (std::size_t i = 0; i < excess; ++i) {
    ::unlink(segments[i].second.c_str());
  }
}

void FlightRecorder::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0 && options_.sync) ::fsync(fd);
}

void FlightRecorder::signal_flush() noexcept {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::fsync(fd);
}

FlightRecorder::SegmentData FlightRecorder::read_segment_bytes(
    std::string path, const std::string& data) {
  SegmentData out;
  out.path = std::move(path);
  wire::Reader r(data);
  try {
    while (!r.at_end()) {
      const std::string_view payload = r.get_bytes();
      const std::uint32_t expect = get_u32(r);
      if (checksum(payload) != expect) {
        // A complete frame whose bytes changed after the write: corruption,
        // not a crash. Everything in this segment is suspect.
        out.rejected = true;
        out.records.clear();
        return out;
      }
      wire::Reader pr(payload);
      util::JournalRecord rec;
      rec.kind = static_cast<util::JournalKind>(pr.get_u8());
      rec.ts_us = pr.get_varint();
      rec.node = pr.get_signed();
      rec.group = static_cast<std::uint32_t>(pr.get_varint());
      rec.ballot_count = pr.get_signed();
      rec.ballot_coord = pr.get_signed();
      rec.ballot_inc = pr.get_signed();
      rec.ballot_type = pr.get_u8();
      rec.a = pr.get_varint();
      rec.b = pr.get_varint();
      rec.payload = std::string(pr.get_bytes());
      out.records.push_back(std::move(rec));
    }
  } catch (const std::invalid_argument&) {
    // The frame ran past end-of-file: the writer died mid-append. The
    // records before it are intact.
    out.torn = true;
  }
  return out;
}

FlightRecorder::SegmentData FlightRecorder::read_segment(const std::string& path) {
  return read_segment_bytes(path, read_file(path));
}

std::vector<FlightRecorder::SegmentData> FlightRecorder::read_dir(
    const std::string& dir) {
  std::vector<SegmentData> out;
  for (const auto& [seq, path] : list_segments(dir)) {
    (void)seq;
    out.push_back(read_segment(path));
  }
  return out;
}

}  // namespace mcp::storage
