#pragma once

// Protocol flight recorder: the production util::JournalSink. A bounded,
// binary, crash-durable journal of protocol events written from the node
// event loop and rotated in fixed-size segments under the node's data
// directory:
//
//   <dir>/journal-000001.mcj, journal-000002.mcj, ...
//
// Each record is framed exactly like a FileStorage WAL entry — varint
// length-prefixed payload followed by a 4-byte FNV-1a checksum of the
// payload — so the same torn-tail semantics apply. Records are written
// (not fsync'd) per event: the page cache makes them durable against a
// *process* crash, which is the incident class the recorder exists for;
// flush() fsyncs for machine-crash durability and is called on rotation,
// clean shutdown, the admin /dump trigger, and (via signal_flush) fatal
// signals.
//
// Reader semantics, per segment:
//  - an incomplete trailing frame is a torn tail (the writer died
//    mid-append): the intact prefix is returned, `torn` is set;
//  - a checksum mismatch on a *complete* frame is corruption: the whole
//    segment is rejected (`rejected` set, no records returned), and other
//    segments are unaffected — the payoff of per-segment isolation over
//    one long log.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/journal.hpp"

namespace mcp::storage {

struct FlightRecorderOptions {
  /// Rotate to a new segment once the current one crosses this size.
  std::uint64_t segment_bytes = 1u << 20;
  /// Oldest segments beyond this count are deleted at rotation; the journal
  /// is a bounded black box, not an unbounded log. 0 = keep everything.
  std::size_t keep_segments = 16;
  /// fsync on rotation/flush (tests turn this off for speed).
  bool sync = true;
};

class FlightRecorder final : public util::JournalSink {
 public:
  /// Opens `dir` (created if missing; parent must exist) and continues
  /// after the highest existing segment — a restart never appends into a
  /// previous incarnation's segment, so recovery cannot tear old records.
  FlightRecorder(std::int64_t node, std::string dir,
                 FlightRecorderOptions options = {});
  ~FlightRecorder() override;

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Stamp (ts_us = wall clock, node) and append one framed record.
  void append(util::JournalRecord rec) override;
  /// fsync the current segment. Safe from any thread.
  void flush() override;
  /// Async-signal-safe flush for fatal-signal handlers: one ::fsync on the
  /// current fd, no locks, no allocation.
  void signal_flush() noexcept;

  const std::string& dir() const { return dir_; }
  std::uint64_t events() const { return events_.load(std::memory_order_relaxed); }
  std::uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  std::uint64_t segments_created() const { return segments_created_; }

  // -- offline reading ------------------------------------------------

  struct SegmentData {
    std::string path;
    std::vector<util::JournalRecord> records;
    bool torn = false;      ///< incomplete trailing frame truncated
    bool rejected = false;  ///< checksum/decode failure: whole segment dropped
  };

  /// Decode one segment's bytes (see reader semantics above).
  static SegmentData read_segment_bytes(std::string path, const std::string& data);
  /// Read + decode one segment file.
  static SegmentData read_segment(const std::string& path);
  /// All `journal-*.mcj` segments in one directory, in segment order.
  static std::vector<SegmentData> read_dir(const std::string& dir);

  /// Record codec (exposed for tests that craft synthetic journals).
  static std::string encode_record(const util::JournalRecord& rec);

 private:
  void open_segment(std::uint64_t seq);
  void rotate_locked();
  void prune_locked();

  std::int64_t node_;
  std::string dir_;
  FlightRecorderOptions options_;
  std::mutex mu_;
  std::atomic<int> fd_{-1};
  std::uint64_t current_seq_ = 0;
  std::uint64_t current_bytes_ = 0;
  std::uint64_t segments_created_ = 0;
  std::atomic<std::uint64_t> events_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace mcp::storage
