#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "transport/transport.hpp"

namespace mcp::transport {

/// In-process transport: every cluster member is an endpoint of one hub,
/// and a send is a locked push onto the destination's mailbox, drained by
/// that endpoint's dedicated delivery thread. The cheapest way to run a
/// whole cluster of real (concurrent) nodes in one process — used by the
/// loopback-cluster tests and as the socket-free baseline in
/// bench_transport.
///
/// Delivery is per-endpoint FIFO and lossless until a mailbox overflows
/// (`max_queue` frames, then the oldest behaviour a real NIC has: drop).
class ThreadHub {
 public:
  explicit ThreadHub(std::size_t max_queue = 1u << 16) : max_queue_(max_queue) {}
  ~ThreadHub() { stop_all(); }

  ThreadHub(const ThreadHub&) = delete;
  ThreadHub& operator=(const ThreadHub&) = delete;

  /// The endpoint for peer `id` (created on first use). References stay
  /// valid for the hub's lifetime.
  Transport& endpoint(PeerId id);

  /// Replace `id`'s endpoint with a fresh, startable one (a stopped
  /// endpoint refuses start() forever — the mailbox thread is gone). The
  /// chaos driver's process-restart path. The old endpoint is stopped and
  /// retired, not destroyed: a concurrent send may still hold its pointer,
  /// and enqueueing on a stopped endpoint is a well-defined drop.
  Transport& restart_endpoint(PeerId id);

  /// Stop every endpoint (idempotent; also run by the destructor).
  void stop_all();

 private:
  class Endpoint;

  Endpoint* find(PeerId id);

  std::size_t max_queue_;
  std::mutex mu_;
  std::map<PeerId, std::unique_ptr<Endpoint>> endpoints_;
  std::vector<std::unique_ptr<Endpoint>> retired_;  // keep pointers valid
};

class ThreadHub::Endpoint final : public Transport {
 public:
  Endpoint(ThreadHub& hub, PeerId self, std::size_t max_queue)
      : hub_(hub), self_(self), max_queue_(max_queue) {}
  ~Endpoint() override { stop(); }

  void start(FrameHandler handler) override;
  bool send(PeerId to, std::string_view payload) override;
  void stop() override;
  std::string name() const override { return "thread"; }

 private:
  friend class ThreadHub;

  /// A peer's send lands here (any thread).
  bool enqueue(PeerId from, std::string payload);
  void run();

  ThreadHub& hub_;
  PeerId self_;
  std::size_t max_queue_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::pair<PeerId, std::string>> mailbox_;
  FrameHandler handler_;  // set under mu_ by start()
  bool started_ = false;
  bool stopping_ = false;
  std::mutex join_mu_;  // serializes stop() callers around the join
  std::thread thread_;
};

}  // namespace mcp::transport
