#include "transport/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "transport/socket_util.hpp"

namespace mcp::transport {

namespace {

constexpr std::size_t kReadChunk = 64u << 10;

/// Minimal-varint parse of a handshake payload; nullopt on garbage.
std::optional<std::uint64_t> parse_varint(std::string_view bytes) {
  std::uint64_t value = 0;
  int shift = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const auto byte = static_cast<std::uint8_t>(bytes[i]);
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      return i + 1 == bytes.size() ? std::optional<std::uint64_t>(value)
                                   : std::nullopt;  // trailing bytes
    }
    shift += 7;
    if (shift >= 64) return std::nullopt;
  }
  return std::nullopt;  // unterminated
}

}  // namespace

TcpTransport::TcpTransport(TcpConfig config) : config_(std::move(config)) {}

TcpTransport::~TcpTransport() { stop(); }

std::string TcpTransport::handshake_frame(PeerId self) {
  std::string payload;
  auto value = static_cast<std::uint64_t>(self);
  while (value >= 0x80) {
    payload.push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  payload.push_back(static_cast<char>(value));
  return frame(payload);
}

std::uint16_t TcpTransport::bind_and_listen() {
  if (listen_fd_ >= 0) return bound_port_;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("tcp: socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.listen_port);
  if (::inet_pton(AF_INET, config_.listen_host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("tcp: bad listen host " + config_.listen_host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("tcp: bind/listen failed: ") +
                             std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  return bound_port_;
}

void TcpTransport::set_peer(PeerId id, TcpPeer peer) {
  config_.peers[id] = std::move(peer);
  // The address changed: drop the cached connection and its dial backoff
  // so the next send dials the new address immediately.
  std::shared_ptr<OutConn> conn;
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    const auto it = out_.find(id);
    if (it == out_.end()) return;
    conn = it->second;
  }
  std::lock_guard<std::mutex> lock(conn->mu);
  if (conn->fd >= 0) ::close(conn->fd);
  conn->fd = -1;
  conn->next_dial = {};
}

void TcpTransport::start(FrameHandler handler) {
  bind_and_listen();
  handler_ = std::move(handler);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void TcpTransport::reap_finished_readers() {
  // Splice finished entries out under the lock, join them outside it (a
  // finishing reader's last step takes mu_; joining while holding it
  // would deadlock).
  std::list<std::unique_ptr<InConn>> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = in_.begin(); it != in_.end();) {
      if ((*it)->done) {
        finished.push_back(std::move(*it));
        it = in_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void TcpTransport::accept_loop() {
  while (!stopping_.load()) {
    reap_finished_readers();
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EBADF || errno == EINVAL) return;  // listen socket gone
      // Transient resource exhaustion (EMFILE, ENFILE, ENOMEM, ...):
      // inbound connectivity must survive it, so back off and retry
      // instead of silently ending all future accepts.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    set_nodelay(fd);
    // Bound reply writes the same way outbound peer writes are bounded: a
    // client that stops draining its socket costs the replying node at
    // most the write budget per send, never a wedged loop.
    set_send_timeout(fd, 4 * config_.dial_timeout);
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    auto conn = std::make_unique<InConn>();
    InConn* raw = conn.get();
    raw->fd = fd;
    in_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] {
      reader_loop(raw);
      // Mark-then-close under mu_: stop() only shuts down fds of entries
      // not yet done, so a recycled fd number can never be hit. A client
      // connection is unpublished (done + erased from clients_) *before*
      // its fd closes, and the close happens under the ClientConn mutex —
      // a sender that already holds the shared_ptr serializes on that
      // mutex and then sees fd = -1 instead of a recycled descriptor.
      std::shared_ptr<ClientConn> client;
      {
        std::lock_guard<std::mutex> l(mu_);
        client = raw->client;
        if (client) {
          clients_.erase(raw->client_id);
          raw->done = true;
        }
      }
      if (client) {
        std::lock_guard<std::mutex> write_lock(client->mu);
        ::close(client->fd);
        client->fd = -1;
        return;
      }
      std::lock_guard<std::mutex> l(mu_);
      ::close(raw->fd);
      raw->done = true;
    });
  }
}

PeerId TcpTransport::adopt_client_conn(InConn* conn) {
  auto client = std::make_shared<ClientConn>();
  client->fd = conn->fd;
  std::lock_guard<std::mutex> lock(mu_);
  const PeerId id = next_client_id_--;
  conn->client = client;
  conn->client_id = id;
  clients_.emplace(id, std::move(client));
  return id;
}

void TcpTransport::reader_loop(InConn* conn) {
  const int fd = conn->fd;
  FrameBuffer frames(config_.max_frame);
  PeerId peer = sim::kNoNode;
  bool first_frame = true;
  char chunk[kReadChunk];
  while (!stopping_.load()) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n == 0) return;  // orderly EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // torn connection (or shutdown() from stop())
    }
    frames.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
    try {
      while (auto payload = frames.next()) {
        if (first_frame) {
          first_frame = false;
          // A peer opens with a handshake frame: its PeerId as a single
          // varint. Anything else marks a client connection — no
          // handshake, the stream goes straight into envelopes delivered
          // under a synthetic connection id (and answered over this same
          // socket).
          const auto id = parse_varint(*payload);
          if (id) {
            peer = static_cast<PeerId>(*id);
            continue;
          }
          peer = adopt_client_conn(conn);
          // fall through: the first frame is already client data
        }
        handler_(peer, std::move(*payload));
      }
    } catch (const FramingError&) {
      // Garbage or oversized length prefix: the stream has no recovery
      // point. Close it; the dialer re-establishes on its next send.
      return;
    }
  }
}

int TcpTransport::dial(PeerId to) {
  const auto it = config_.peers.find(to);
  if (it == config_.peers.end()) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(it->second.port);
  if (::inet_pton(AF_INET, it->second.host.c_str(), &addr.sin_addr) != 1 ||
      !connect_with_timeout(fd, addr, config_.dial_timeout)) {
    ::close(fd);
    return -1;
  }
  // Bound writes too: a peer that accepts but never drains would
  // otherwise block send_all indefinitely.
  set_send_timeout(fd, 4 * config_.dial_timeout);
  if (!send_all(fd, handshake_frame(config_.self), write_deadline())) {
    ::close(fd);
    return -1;
  }
  set_nodelay(fd);
  return fd;
}

bool TcpTransport::send_to_client(PeerId to, std::string_view payload) {
  std::shared_ptr<ClientConn> client;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = clients_.find(to);
    if (it == clients_.end()) return false;  // connection already gone
    client = it->second;
  }
  std::lock_guard<std::mutex> lock(client->mu);
  if (client->fd < 0) return false;
  if (!send_all(client->fd, frame(payload), write_deadline())) {
    // Broken or wedged client: drop the reply (the client's retry path
    // re-asks) and let the reader thread notice the dead stream and tear
    // the connection down.
    ::shutdown(client->fd, SHUT_RDWR);
    return false;
  }
  return true;
}

bool TcpTransport::send(PeerId to, std::string_view payload) {
  if (stopping_.load()) return false;
  if (is_client_conn(to)) return send_to_client(to, payload);
  std::shared_ptr<OutConn> conn;
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    auto& slot = out_[to];
    if (!slot) slot = std::make_shared<OutConn>();
    conn = slot;
  }
  // Per-peer lock only: all I/O below can block (bounded), but only for
  // senders talking to this same peer.
  std::lock_guard<std::mutex> lock(conn->mu);
  if (stopping_.load()) return false;
  if (conn->fd < 0) {
    const auto now = std::chrono::steady_clock::now();
    if (now < conn->next_dial) return false;  // recent failure: drop fast
    conn->fd = dial(to);
    if (conn->fd < 0) {
      // Peer down: frame lost, retransmission heals. Gate the next dial so
      // a dead peer costs one bounded attempt per backoff window.
      conn->next_dial = now + config_.dial_backoff;
      return false;
    }
  }
  if (!send_all(conn->fd, frame(payload), write_deadline())) {
    ::close(conn->fd);
    conn->fd = -1;
    // A wedged peer (accepts, never drains) fails here after SO_SNDTIMEO;
    // without the backoff each retransmission would immediately re-dial
    // and stall for the full timeout again, re-wedging the caller's loop
    // every cycle instead of once per backoff window.
    conn->next_dial = std::chrono::steady_clock::now() + config_.dial_backoff;
    return false;
  }
  return true;
}

void TcpTransport::close_all_connections() {
  std::vector<std::shared_ptr<OutConn>> outs;
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    for (auto& [peer, conn] : out_) outs.push_back(conn);
    out_.clear();
  }
  for (auto& conn : outs) {
    // Waits for any in-flight send to that peer (bounded by SO_SNDTIMEO).
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->fd >= 0) ::close(conn->fd);
    conn->fd = -1;
  }
  // Wake blocked readers; they close their own fds on exit.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& conn : in_) {
    if (!conn->done) ::shutdown(conn->fd, SHUT_RDWR);
  }
}

void TcpTransport::stop() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);  // unblock accept()
  close_all_connections();
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept thread is gone, so in_ gains no new entries; join whatever
  // readers remain (finished ones included — reap just joins + erases).
  reap_finished_readers();
  std::list<std::unique_ptr<InConn>> rest;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rest.swap(in_);
  }
  for (auto& conn : rest) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  // Closed only after the accept thread died: closing earlier would let a
  // concurrent dial() recycle the fd number while accept() still held it.
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
}

}  // namespace mcp::transport
