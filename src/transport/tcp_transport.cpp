#include "transport/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <utility>

#include "transport/socket_util.hpp"

namespace mcp::transport {

namespace {

constexpr std::size_t kReadChunk = 64u << 10;
/// recv() calls per readiness event before yielding to other connections
/// (level-triggered epoll re-arms anything left unread).
constexpr int kMaxReadsPerEvent = 4;
/// iovec entries per writev — far below any IOV_MAX, far above the frame
/// counts a flush window realistically accumulates.
constexpr std::size_t kMaxIov = 64;
/// Bound on one admin connection's buffered request bytes. A GET line plus
/// a few headers fits in a fraction of this; anything larger is not a
/// scrape and the connection is dropped.
constexpr std::size_t kMaxAdminRequest = 8192;

/// Minimal-varint parse of a handshake payload; nullopt on garbage.
std::optional<std::uint64_t> parse_varint(std::string_view bytes) {
  std::uint64_t value = 0;
  int shift = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const auto byte = static_cast<std::uint8_t>(bytes[i]);
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      return i + 1 == bytes.size() ? std::optional<std::uint64_t>(value)
                                   : std::nullopt;  // trailing bytes
    }
    shift += 7;
    if (shift >= 64) return std::nullopt;
  }
  return std::nullopt;  // unterminated
}

}  // namespace

TcpTransport::TcpTransport(TcpConfig config) : config_(std::move(config)) {}

TcpTransport::~TcpTransport() { stop(); }

std::string TcpTransport::handshake_frame(PeerId self) {
  std::string payload;
  auto value = static_cast<std::uint64_t>(self);
  while (value >= 0x80) {
    payload.push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  payload.push_back(static_cast<char>(value));
  return frame(payload);
}

std::uint16_t TcpTransport::bind_and_listen() {
  if (listen_fd_ >= 0) return bound_port_;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) throw std::runtime_error("tcp: socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.listen_port);
  if (::inet_pton(AF_INET, config_.listen_host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("tcp: bad listen host " + config_.listen_host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 256) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("tcp: bind/listen failed: ") +
                             std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  return bound_port_;
}

void TcpTransport::set_peer(PeerId id, TcpPeer peer) {
  std::shared_ptr<OutQueue> old;
  {
    std::lock_guard<std::mutex> lock(mu_);
    config_.peers[id] = std::move(peer);
    const auto it = peers_.find(id);
    if (it != peers_.end()) {
      old = it->second;
      peers_.erase(it);  // next send builds a fresh queue for the new address
    }
  }
  if (old) {
    // Retire the old queue: senders still holding it get a refusal, and
    // the reactor's sweep closes its connection.
    std::lock_guard<std::mutex> lock(old->mu);
    old->state = OutQueue::State::kDead;
    old->q.clear();
    old->q_bytes = 0;
  }
  if (reactor_.joinable()) wake();
}

std::uint16_t TcpTransport::enable_admin(std::uint16_t port,
                                         AdminHandler handler) {
  if (reactor_.joinable()) {
    throw std::logic_error("tcp: enable_admin must precede start");
  }
  if (admin_listen_fd_ >= 0) return admin_port_;  // idempotent
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) throw std::runtime_error("tcp: admin socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, config_.listen_host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("tcp: bad listen host " + config_.listen_host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("tcp: admin bind/listen failed: ") +
                             std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  admin_port_ = ntohs(bound.sin_port);
  admin_listen_fd_ = fd;
  admin_handler_ = std::move(handler);
  return admin_port_;
}

void TcpTransport::start(FrameHandler handler) {
  bind_and_listen();
  handler_ = std::move(handler);
  epoll_fd_ = ::epoll_create1(0);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    throw std::runtime_error("tcp: epoll_create1/eventfd failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = nullptr;  // nullptr marks the listen socket
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  if (admin_listen_fd_ >= 0) {
    epoll_event aev{};
    aev.events = EPOLLIN;
    aev.data.ptr = &admin_listen_fd_;  // sentinel: the admin listen socket
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, admin_listen_fd_, &aev);
  }
  epoll_event wev{};
  wev.events = EPOLLIN;
  wev.data.ptr = const_cast<int*>(&wake_fd_);  // sentinel: the wake eventfd
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &wev);
  reactor_ = std::thread([this] { reactor_loop(); });
}

TransportStats TcpTransport::stats() const {
  TransportStats s;
  s.backpressure_drops = backpressure_drops_.load(std::memory_order_relaxed);
  s.flushes = flushes_.load(std::memory_order_relaxed);
  s.flushed_frames = flushed_frames_.load(std::memory_order_relaxed);
  s.conn_drops = conn_drops_.load(std::memory_order_relaxed);
  return s;
}

void TcpTransport::wake() {
  if (wake_pending_.exchange(true)) return;  // a wakeup is already in flight
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

bool TcpTransport::enqueue(const std::shared_ptr<OutQueue>& out, PeerId to,
                          std::string_view payload) {
  const std::size_t framed_size = payload.size() + 10;  // prefix upper bound
  {
    std::lock_guard<std::mutex> lock(out->mu);
    switch (out->state) {
      case OutQueue::State::kDead:
        return false;  // connection (or address) gone for good
      case OutQueue::State::kBackoff:
        if (std::chrono::steady_clock::now() < out->next_dial) {
          return false;  // recent failure: drop fast, retransmission heals
        }
        out->state = OutQueue::State::kIdle;
        break;
      default:
        break;
    }
    if (out->q_bytes + framed_size > config_.max_outbound_bytes) {
      backpressure_drops_.fetch_add(1, std::memory_order_relaxed);
      return false;  // bounded queue: refuse, never block
    }
    // Frame straight into the owned queue entry: one allocation per frame,
    // reserved once (prefix + payload), no intermediate string.
    std::string entry;
    entry.reserve(framed_size);
    std::uint64_t len = payload.size();
    while (len >= 0x80) {
      entry.push_back(static_cast<char>((len & 0x7F) | 0x80));
      len >>= 7;
    }
    entry.push_back(static_cast<char>(len));
    entry.append(payload);
    out->q_bytes += entry.size();
    out->q.push_back(std::move(entry));
    if (out->state == OutQueue::State::kIdle) {
      out->state = OutQueue::State::kDialing;  // reactor starts the connect
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    dial_requests_.push_back(to);
  }
  wake();
  return true;
}

bool TcpTransport::send(PeerId to, std::string_view payload) {
  if (stopping_.load() || !reactor_.joinable()) return false;
  std::shared_ptr<OutQueue> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (is_client_conn(to)) {
      const auto it = clients_.find(to);
      if (it == clients_.end()) return false;  // connection already gone
      out = it->second;
    } else {
      auto& slot = peers_[to];
      if (!slot) {
        if (config_.peers.find(to) == config_.peers.end()) {
          peers_.erase(to);
          return false;  // unknown peer: nothing to dial
        }
        slot = std::make_shared<OutQueue>();
      }
      out = slot;
    }
  }
  return enqueue(out, to, payload);
}

// --- reactor thread ----------------------------------------------------------

void TcpTransport::reactor_loop() {
  std::vector<epoll_event> events(128);
  std::vector<std::unique_ptr<Conn>> graveyard;
  while (!stopping_.load()) {
    const int timeout =
        static_cast<int>(std::min<std::int64_t>(poll_timeout().count(), 500));
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout);
    if (n < 0 && errno != EINTR) break;  // epoll fd gone: shutting down
    for (int i = 0; i < std::max(n, 0); ++i) {
      if (stopping_.load()) break;
      void* tag = events[static_cast<std::size_t>(i)].data.ptr;
      const std::uint32_t ev = events[static_cast<std::size_t>(i)].events;
      if (tag == nullptr) {
        handle_listen_ready();
        continue;
      }
      if (tag == &admin_listen_fd_) {
        handle_admin_listen_ready();
        continue;
      }
      if (tag == &wake_fd_) {
        std::uint64_t drain;
        while (::read(wake_fd_, &drain, sizeof drain) > 0) {
        }
        wake_pending_.store(false);
        continue;
      }
      auto* conn = static_cast<Conn*>(tag);
      if (conn->fd < 0) continue;  // closed earlier in this batch
      if (conn->connecting) {
        if (ev & (EPOLLOUT | EPOLLERR | EPOLLHUP)) {
          int err = 0;
          socklen_t len = sizeof err;
          ::getsockopt(conn->fd, SOL_SOCKET, SO_ERROR, &err, &len);
          finish_dial(conn, err == 0 && !(ev & (EPOLLERR | EPOLLHUP)));
        }
        continue;
      }
      if (ev & (EPOLLERR | EPOLLHUP)) {
        close_conn(conn, /*drop_queue=*/true);
        continue;
      }
      if (ev & EPOLLIN) handle_readable(conn);
      if (conn->fd >= 0 && (ev & EPOLLOUT)) handle_writable(conn);
    }
    start_dials();
    check_deadlines();
    // Deferred reclamation: a Conn closed mid-batch may still be named by
    // a later event of the same batch (its fd is -1, so handlers skip it);
    // erase the corpses only once the batch is done.
    for (auto it = conns_.begin(); it != conns_.end();) {
      it = (*it)->fd < 0 ? conns_.erase(it) : std::next(it);
    }
  }
  // Reactor exit: every socket closes here, on the thread that owns them.
  for (auto& conn : conns_) {
    if (conn->fd >= 0) ::close(conn->fd);
    conn->fd = -1;
  }
  conns_.clear();
  std::lock_guard<std::mutex> lock(mu_);
  clients_.clear();
}

void TcpTransport::handle_listen_ready() {
  for (int i = 0; i < 64; ++i) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      // EAGAIN: drained. Transient exhaustion (EMFILE, ENFILE, ENOMEM,
      // ECONNABORTED, ...): leave the rest for the next loop iteration —
      // level-triggered epoll re-reports the listen socket while
      // connections are pending, so nothing is forgotten.
      return;
    }
    set_nodelay(fd);
    auto conn = std::make_unique<Conn>(config_.max_frame);
    conn->fd = fd;
    conn->awaiting_first = true;
    conn->last_write_progress = std::chrono::steady_clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = conn.get();
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.push_back(std::move(conn));
  }
}

void TcpTransport::handle_admin_listen_ready() {
  for (int i = 0; i < 64; ++i) {
    const int fd = ::accept4(admin_listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) return;  // EAGAIN (drained) or transient exhaustion
    auto conn = std::make_unique<Conn>(config_.max_frame);
    conn->fd = fd;
    conn->is_admin = true;
    conn->last_write_progress = std::chrono::steady_clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = conn.get();
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.push_back(std::move(conn));
  }
}

void TcpTransport::handle_admin_readable(Conn* conn) {
  char chunk[kReadChunk];
  while (conn->fd >= 0) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
    if (n == 0) {  // client gave up before finishing the request
      close_conn(conn, /*drop_queue=*/true);
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // headers pending
      close_conn(conn, /*drop_queue=*/true);
      return;
    }
    conn->admin_in.append(chunk, static_cast<std::size_t>(n));
    if (conn->out) return;  // response already built; ignore extra bytes
    if (conn->admin_in.size() > kMaxAdminRequest) {
      close_conn(conn, /*drop_queue=*/true);
      return;
    }
    if (conn->admin_in.find("\r\n\r\n") == std::string::npos &&
        conn->admin_in.find("\n\n") == std::string::npos) {
      continue;  // request head incomplete
    }
    // Request head complete: parse "METHOD SP PATH ..." off the first line.
    const std::string& req = conn->admin_in;
    const std::size_t line_end = std::min(req.find('\n'), req.size());
    const std::string_view line(req.data(), line_end);
    const std::size_t m_end = line.find(' ');
    std::string_view method =
        m_end == std::string_view::npos ? line : line.substr(0, m_end);
    std::string_view path_part;
    if (m_end != std::string_view::npos) {
      const std::size_t p_begin = m_end + 1;
      const std::size_t p_end = line.find(' ', p_begin);
      path_part = line.substr(p_begin, p_end == std::string_view::npos
                                           ? std::string_view::npos
                                           : p_end - p_begin);
    }
    const std::size_t query = path_part.find('?');
    if (query != std::string_view::npos) path_part = path_part.substr(0, query);

    const char* status = "200 OK";
    std::string body;
    if (method != "GET") {
      status = "405 Method Not Allowed";
      body = "only GET is served here\n";
    } else if (auto reply = admin_handler_(std::string(path_part))) {
      body = std::move(*reply);
    } else {
      status = "404 Not Found";
      body = "unknown path; try /metrics or /healthz\n";
    }
    std::string resp;
    resp.reserve(body.size() + 128);
    resp.append("HTTP/1.0 ").append(status).append("\r\n");
    resp.append("Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n");
    resp.append("Content-Length: ").append(std::to_string(body.size()));
    resp.append("\r\nConnection: close\r\n\r\n");
    resp.append(body);

    // One response per connection, then close-after-drain: the reply rides
    // the normal OutQueue/flush machinery (partial writes, EPOLLOUT) with a
    // queue private to this socket.
    auto out = std::make_shared<OutQueue>();
    out->state = OutQueue::State::kReady;
    out->fd = conn->fd;
    out->conn = conn;
    out->q_bytes = resp.size();
    out->q.push_back(std::move(resp));
    conn->out = std::move(out);
    conn->close_after_flush = true;
    flush(conn);
    return;
  }
}

void TcpTransport::start_dials() {
  std::vector<PeerId> requests;
  {
    std::lock_guard<std::mutex> lock(mu_);
    requests.swap(dial_requests_);
  }
  if (requests.empty()) return;
  std::sort(requests.begin(), requests.end());
  requests.erase(std::unique(requests.begin(), requests.end()), requests.end());
  for (const PeerId to : requests) {
    std::shared_ptr<OutQueue> out;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto& table = is_client_conn(to) ? clients_ : peers_;
      const auto it = table.find(to);
      if (it == table.end()) continue;  // queue retired since the request
      out = it->second;
    }
    Conn* conn = nullptr;
    bool needs_dial = false;
    {
      std::lock_guard<std::mutex> lock(out->mu);
      conn = out->conn;
      needs_dial =
          out->state == OutQueue::State::kDialing && out->conn == nullptr;
    }
    if (needs_dial) {
      start_dial(to, out);
    } else if (conn != nullptr && conn->fd >= 0 && !conn->connecting) {
      flush(conn);  // already connected: this wake is a flush request
    }
  }
}

void TcpTransport::start_dial(PeerId to, const std::shared_ptr<OutQueue>& out) {
  TcpPeer addr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = config_.peers.find(to);
    if (it == config_.peers.end()) {
      std::lock_guard<std::mutex> qlock(out->mu);
      out->state = OutQueue::State::kDead;
      conn_drops_.fetch_add(static_cast<std::int64_t>(out->q.size()),
                            std::memory_order_relaxed);
      out->q.clear();
      out->q_bytes = 0;
      return;
    }
    addr = it->second;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd >= 0 && config_.so_sndbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.so_sndbuf,
                 sizeof config_.so_sndbuf);
  }
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_port = htons(addr.port);
  bool failed = fd < 0 ||
                ::inet_pton(AF_INET, addr.host.c_str(), &sin.sin_addr) != 1;
  bool in_progress = false;
  if (!failed) {
    const int rc =
        ::connect(fd, reinterpret_cast<const sockaddr*>(&sin), sizeof sin);
    if (rc != 0) {
      if (errno == EINPROGRESS) {
        in_progress = true;
      } else {
        failed = true;
      }
    }
  }
  if (failed) {
    if (fd >= 0) ::close(fd);
    std::lock_guard<std::mutex> lock(out->mu);
    out->state = OutQueue::State::kBackoff;
    out->next_dial = std::chrono::steady_clock::now() + config_.dial_backoff;
    conn_drops_.fetch_add(static_cast<std::int64_t>(out->q.size()),
                          std::memory_order_relaxed);
    out->q.clear();
    out->q_bytes = 0;
    return;
  }
  auto conn = std::make_unique<Conn>(config_.max_frame);
  conn->fd = fd;
  conn->peer = to;
  conn->outbound = true;
  conn->connecting = in_progress;
  conn->out = out;
  conn->dial_deadline = std::chrono::steady_clock::now() + config_.dial_timeout;
  conn->last_write_progress = std::chrono::steady_clock::now();
  conn->want_write = in_progress;  // must mirror the registered event set
  epoll_event ev{};
  ev.events = EPOLLIN | (in_progress ? EPOLLOUT : 0u);
  ev.data.ptr = conn.get();
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    return;
  }
  Conn* raw = conn.get();
  conns_.push_back(std::move(conn));
  {
    // The handshake frame jumps the queue: it must be the first bytes on
    // the stream, ahead of whatever senders enqueued during the dial.
    std::lock_guard<std::mutex> lock(out->mu);
    out->conn = raw;
    std::string hs = handshake_frame(config_.self);
    out->q_bytes += hs.size();
    out->q.push_front(std::move(hs));
  }
  if (!in_progress) finish_dial(raw, true);
}

void TcpTransport::finish_dial(Conn* conn, bool ok) {
  conn->connecting = false;
  conn->dial_deadline = {};
  if (!ok) {
    close_conn(conn, /*drop_queue=*/true);
    return;
  }
  set_nodelay(conn->fd);
  {
    std::lock_guard<std::mutex> lock(conn->out->mu);
    conn->out->state = OutQueue::State::kReady;
    conn->out->fd = conn->fd;
  }
  conn->last_write_progress = std::chrono::steady_clock::now();
  // Drop the connect-phase EPOLLOUT — a connected socket with an empty
  // send buffer is *always* writable, and leaving the interest armed
  // turns the level-triggered loop into a busy spin. flush() re-arms it
  // for exactly as long as frames remain queued.
  update_interest(conn, /*want_write=*/false);
  flush(conn);
}

void TcpTransport::handle_readable(Conn* conn) {
  if (conn->is_admin) {
    handle_admin_readable(conn);
    return;
  }
  char chunk[kReadChunk];
  for (int round = 0; round < kMaxReadsPerEvent && conn->fd >= 0; ++round) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
    if (n == 0) {  // orderly EOF
      close_conn(conn, /*drop_queue=*/true);
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // drained
      close_conn(conn, /*drop_queue=*/true);
      return;
    }
    conn->in.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
    try {
      while (auto payload = conn->in.next()) {
        if (conn->awaiting_first) {
          conn->awaiting_first = false;
          // A peer opens with a handshake frame: its PeerId as a single
          // varint. Anything else marks a client connection — no
          // handshake, the stream goes straight into envelopes delivered
          // under a synthetic connection id (and answered over this same
          // socket).
          const auto id = parse_varint(*payload);
          if (id) {
            conn->peer = static_cast<PeerId>(*id);
            continue;
          }
          conn->peer = adopt_client_conn(conn);
          // fall through: the first frame is already client data
        }
        handler_(conn->peer, std::move(*payload));
      }
    } catch (const FramingError&) {
      // Garbage or oversized length prefix: the stream has no recovery
      // point. Close it; the dialer re-establishes on its next send.
      close_conn(conn, /*drop_queue=*/true);
      return;
    }
    if (static_cast<std::size_t>(n) < sizeof chunk) return;  // likely drained
  }
}

PeerId TcpTransport::adopt_client_conn(Conn* conn) {
  auto out = std::make_shared<OutQueue>();
  out->state = OutQueue::State::kReady;
  out->fd = conn->fd;
  out->conn = conn;
  conn->out = out;
  conn->last_write_progress = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  const PeerId id = next_client_id_--;
  clients_.emplace(id, std::move(out));
  return id;
}

void TcpTransport::handle_writable(Conn* conn) { flush(conn); }

void TcpTransport::flush(Conn* conn) {
  if (!conn->out || conn->fd < 0 || conn->connecting) return;
  bool failed = false;
  bool drained = false;
  {
    std::lock_guard<std::mutex> lock(conn->out->mu);
    auto& q = conn->out->q;
    if (q.empty()) {
      conn->had_pending = false;
      update_interest(conn, /*want_write=*/false);
      drained = true;
    } else {
      if (!conn->had_pending) {
        // Queue just went non-empty: start the stall clock now, not from
        // whenever the socket last happened to write.
        conn->had_pending = true;
        conn->last_write_progress = std::chrono::steady_clock::now();
      }
      // One vectored write per flush: every queued frame (up to kMaxIov)
      // rides one syscall, which is the whole point of queue-then-flush over
      // the old one-blocking-send-per-frame path. sendmsg rather than writev
      // for MSG_NOSIGNAL — a peer that closed mid-flush must surface as
      // EPIPE, not kill the process.
      iovec iov[kMaxIov];
      std::size_t iov_count = 0;
      for (const std::string& entry : q) {
        if (iov_count == kMaxIov) break;
        const std::size_t skip = iov_count == 0 ? conn->head_off : 0;
        iov[iov_count].iov_base = const_cast<char*>(entry.data() + skip);
        iov[iov_count].iov_len = entry.size() - skip;
        ++iov_count;
      }
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = iov_count;
      const ssize_t n = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          update_interest(conn, /*want_write=*/true);  // retry on readiness
          return;
        }
        failed = true;
      } else {
        flushes_.fetch_add(1, std::memory_order_relaxed);
        conn->last_write_progress = std::chrono::steady_clock::now();
        std::size_t written = static_cast<std::size_t>(n);
        conn->out->q_bytes -= written;
        std::int64_t whole_frames = 0;
        while (written > 0 && !q.empty()) {
          const std::size_t remaining = q.front().size() - conn->head_off;
          if (written >= remaining) {
            written -= remaining;
            conn->head_off = 0;
            q.pop_front();
            ++whole_frames;
          } else {
            conn->head_off += written;
            written = 0;
          }
        }
        flushed_frames_.fetch_add(whole_frames, std::memory_order_relaxed);
        conn->had_pending = !q.empty();
        update_interest(conn, /*want_write=*/!q.empty());
        drained = q.empty();
      }
    }
  }
  // close_conn re-locks out->mu, so both paths run outside the lock.
  if (failed) {
    close_conn(conn, /*drop_queue=*/true);
  } else if (drained && conn->close_after_flush) {
    close_conn(conn, /*drop_queue=*/false);
  }
}

void TcpTransport::update_interest(Conn* conn, bool want_write) {
  if (conn->fd < 0) return;
  if (want_write == conn->want_write) return;
  conn->want_write = want_write;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.ptr = conn;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void TcpTransport::close_conn(Conn* conn, bool drop_queue) {
  if (conn->fd < 0) return;
  if (conn->out) {
    if (is_client_conn(conn->peer)) {
      // Unpublish before the close: a sender that looks the id up after
      // this point gets "connection gone", and one already holding the
      // queue finds it dead — no window where a recycled fd number could
      // be addressed.
      {
        std::lock_guard<std::mutex> lock(mu_);
        clients_.erase(conn->peer);
      }
      std::lock_guard<std::mutex> lock(conn->out->mu);
      conn->out->state = OutQueue::State::kDead;
      conn->out->fd = -1;
      conn->out->conn = nullptr;
      conn->out->q.clear();
      conn->out->q_bytes = 0;
    } else {
      std::lock_guard<std::mutex> lock(conn->out->mu);
      if (conn->out->state != OutQueue::State::kDead) {
        // Failed dial / torn write / stall: arm the backoff so a dead peer
        // costs one bounded attempt per backoff window, not per
        // retransmission.
        conn->out->state = OutQueue::State::kBackoff;
        conn->out->next_dial =
            std::chrono::steady_clock::now() + config_.dial_backoff;
      }
      conn->out->fd = -1;
      conn->out->conn = nullptr;
      if (drop_queue) {
        conn_drops_.fetch_add(static_cast<std::int64_t>(conn->out->q.size()),
                              std::memory_order_relaxed);
        conn->out->q.clear();
        conn->out->q_bytes = 0;
      }
    }
  }
  ::close(conn->fd);  // implicitly EPOLL_CTL_DELs
  conn->fd = -1;      // reaped after the event batch
}

std::chrono::milliseconds TcpTransport::poll_timeout() const {
  auto next = std::chrono::steady_clock::time_point::max();
  for (const auto& conn : conns_) {
    if (conn->fd < 0) continue;
    if (conn->connecting) next = std::min(next, conn->dial_deadline);
    if (conn->out && !conn->connecting && conn->had_pending) {
      next = std::min(next,
                      conn->last_write_progress + config_.write_stall_timeout);
    }
  }
  if (next == std::chrono::steady_clock::time_point::max()) {
    return std::chrono::milliseconds(500);
  }
  const auto now = std::chrono::steady_clock::now();
  if (next <= now) return std::chrono::milliseconds(0);
  return std::chrono::duration_cast<std::chrono::milliseconds>(next - now) +
         std::chrono::milliseconds(1);
}

void TcpTransport::check_deadlines() {
  const auto now = std::chrono::steady_clock::now();
  for (auto& conn : conns_) {
    if (conn->fd < 0) continue;
    if (conn->connecting && now >= conn->dial_deadline) {
      finish_dial(conn.get(), false);
      continue;
    }
    if (!conn->out || conn->connecting) continue;
    bool queued = false;
    bool retired = false;
    {
      std::lock_guard<std::mutex> lock(conn->out->mu);
      queued = !conn->out->q.empty();
      retired = conn->out->state == OutQueue::State::kDead &&
                !is_client_conn(conn->peer);
    }
    if (retired) {
      // set_peer() replaced this queue; the connection serves no one.
      close_conn(conn.get(), /*drop_queue=*/false);
      continue;
    }
    if (queued && conn->had_pending &&
        now - conn->last_write_progress >= config_.write_stall_timeout) {
      // The socket accepted no bytes for the whole stall window while
      // frames waited: the drainer is effectively dead. Tear down so the
      // queue memory frees and (for peers) the backoff gates re-dialing.
      close_conn(conn.get(), /*drop_queue=*/true);
    }
  }
}

void TcpTransport::stop() {
  if (stopping_.exchange(true)) return;
  if (reactor_.joinable()) {
    wake_pending_.store(false);  // force the write-through even if set
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
    reactor_.join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  if (admin_listen_fd_ >= 0) ::close(admin_listen_fd_);
  admin_listen_fd_ = -1;
  if (wake_fd_ >= 0) ::close(wake_fd_);
  wake_fd_ = -1;
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  epoll_fd_ = -1;
}

}  // namespace mcp::transport
