#include "transport/frame.hpp"

#include <cstdint>

namespace mcp::transport {

namespace {
/// 64-bit values always fit in 10 varint bytes; an unterminated run this
/// long can only be garbage, not a torn prefix.
constexpr int kMaxVarintBytes = 10;
}  // namespace

std::string frame(std::string_view payload) {
  std::string out;
  std::uint64_t len = payload.size();
  while (len >= 0x80) {
    out.push_back(static_cast<char>((len & 0x7F) | 0x80));
    len >>= 7;
  }
  out.push_back(static_cast<char>(len));
  out.append(payload);
  return out;
}

std::optional<std::string> FrameBuffer::next() {
  if (poisoned_) throw FramingError("frame: stream already failed");

  // Parse the length prefix without committing pos_: the prefix itself may
  // be torn, in which case we must re-parse from the same spot next time.
  std::uint64_t len = 0;
  int shift = 0;
  std::size_t p = pos_;
  while (true) {
    if (p - pos_ >= static_cast<std::size_t>(kMaxVarintBytes)) {
      poisoned_ = true;
      throw FramingError("frame: length prefix is not a varint");
    }
    if (p >= buf_.size()) return std::nullopt;  // torn prefix: wait for more
    const auto byte = static_cast<std::uint8_t>(buf_[p++]);
    if (shift == 63 && byte > 1) {
      // The 10th byte contributes only bit 63: any higher payload bit
      // would be shifted out silently, turning a corrupt prefix into a
      // small bogus length that desyncs framing. Tear down instead.
      poisoned_ = true;
      throw FramingError("frame: length prefix overflows 64 bits");
    }
    len |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift >= 64) {
      poisoned_ = true;
      throw FramingError("frame: length prefix overflows 64 bits");
    }
  }
  // Validate the claimed length before any allocation sized by it.
  if (len > max_frame_) {
    poisoned_ = true;
    throw FramingError("frame: length " + std::to_string(len) +
                       " exceeds max_frame " + std::to_string(max_frame_));
  }
  if (len > buf_.size() - p) return std::nullopt;  // torn payload

  std::string payload = buf_.substr(p, static_cast<std::size_t>(len));
  pos_ = p + static_cast<std::size_t>(len);
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not accrete every frame it ever carried.
  if (pos_ > 4096 && pos_ >= buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return payload;
}

}  // namespace mcp::transport
