#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace mcp::transport {

/// Cluster-wide process identifier; the same id space the protocol
/// processes use (sim::NodeId), so a runtime::Node can hand Process::send
/// destinations straight to its transport.
using PeerId = sim::NodeId;

/// Carrier-level counters a backend may report (all zero by default).
/// Counter semantics mirror the node-level `net.*` metric names:
///
///  - `backpressure_drops` (net.backpressure.drops): frames refused
///    because a connection's bounded outbound queue was full — the
///    reactor's replacement for blocking-write timeouts.
///  - `flushes` / `flushed_frames` (net.flush.batch): writev flushes and
///    the frames they carried; flushed_frames / flushes is the syscall
///    coalescing factor.
///  - `conn_drops`: frames discarded because their connection died
///    (failed dial, write error, write stall) — ordinary carrier loss,
///    healed by protocol retransmission.
struct TransportStats {
  std::int64_t backpressure_drops = 0;
  std::int64_t flushes = 0;
  std::int64_t flushed_frames = 0;
  std::int64_t conn_drops = 0;
};

/// A point-to-point frame carrier for one cluster member.
///
/// Semantics are deliberately those of the paper's network model (and the
/// simulator's): frames may be lost (a dead peer, a torn connection, a
/// full queue) and — across reconnects — duplicated or reordered relative
/// to frames on other connections; they are never corrupted, because a
/// stream that fails framing validation is torn down, not repaired. The
/// protocol layer already tolerates all of this via retransmission.
///
/// Thread contract: send() may be called from any thread after start();
/// the receive handler is invoked on transport-owned threads and must not
/// block for long (runtime::Node's handler only enqueues into its
/// mailbox). stop() joins every transport thread; the handler is never
/// invoked after stop() returns.
class Transport {
 public:
  /// Receive callback: a complete frame payload from a connected peer.
  using FrameHandler = std::function<void(PeerId from, std::string frame)>;

  virtual ~Transport() = default;

  /// Begin delivering frames to `handler`. Called exactly once.
  virtual void start(FrameHandler handler) = 0;

  /// Ship one frame, fire-and-forget. Returns false when the frame was
  /// dropped immediately (unknown/unreachable peer, transport stopped);
  /// true means handed to the carrier, not that the peer received it.
  virtual bool send(PeerId to, std::string_view payload) = 0;

  /// Tear down connections and join all transport threads.
  virtual void stop() = 0;

  /// Backend label for metrics/bench rows ("thread", "tcp").
  virtual std::string name() const = 0;

  /// Carrier counters; backends without queue/flush machinery report
  /// zeros. Safe to call from any thread, including after stop().
  virtual TransportStats stats() const { return {}; }
};

}  // namespace mcp::transport
