#include "transport/socket_util.hpp"

#include <fcntl.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>

#include <cerrno>

namespace mcp::transport {

bool connect_with_timeout(int fd, const sockaddr_in& addr,
                          std::chrono::milliseconds timeout) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return false;
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  if (rc != 0) {
    if (errno != EINPROGRESS) return false;
    pollfd pfd{fd, POLLOUT, 0};
    rc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    if (rc <= 0) return false;  // timeout or poll error
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      return false;
    }
  }
  return ::fcntl(fd, F_SETFL, flags) == 0;  // restore blocking mode
}

bool send_all(int fd, std::string_view bytes,
              std::chrono::steady_clock::time_point deadline) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
    if (off < bytes.size() && std::chrono::steady_clock::now() >= deadline) {
      return false;  // partial progress cannot extend the budget forever
    }
  }
  return true;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void set_send_timeout(int fd, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

}  // namespace mcp::transport
