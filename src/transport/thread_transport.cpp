#include "transport/thread_transport.hpp"

#include <utility>
#include <vector>

namespace mcp::transport {

Transport& ThreadHub::endpoint(PeerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = endpoints_[id];
  if (!slot) slot = std::make_unique<Endpoint>(*this, id, max_queue_);
  return *slot;
}

ThreadHub::Endpoint* ThreadHub::find(PeerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = endpoints_.find(id);
  return it == endpoints_.end() ? nullptr : it->second.get();
}

Transport& ThreadHub::restart_endpoint(PeerId id) {
  std::unique_ptr<Endpoint> old;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = endpoints_.find(id);
    if (it != endpoints_.end()) {
      old = std::move(it->second);
      endpoints_.erase(it);
    }
  }
  // Stop outside the hub lock: the join waits on a delivery whose handler
  // may be sending (re-entering find() and mu_).
  if (old) old->stop();
  std::lock_guard<std::mutex> lock(mu_);
  if (old) retired_.push_back(std::move(old));
  auto& slot = endpoints_[id];
  slot = std::make_unique<Endpoint>(*this, id, max_queue_);
  return *slot;
}

void ThreadHub::stop_all() {
  // Collect first: Endpoint::stop joins a thread that may be delivering a
  // frame whose handler sends (re-entering find() and this mutex).
  std::vector<Endpoint*> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    all.reserve(endpoints_.size());
    for (auto& [id, ep] : endpoints_) all.push_back(ep.get());
  }
  for (Endpoint* ep : all) ep->stop();
}

void ThreadHub::Endpoint::start(FrameHandler handler) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_ || stopping_) return;
    handler_ = std::move(handler);
    started_ = true;
  }
  thread_ = std::thread([this] { run(); });
}

bool ThreadHub::Endpoint::send(PeerId to, std::string_view payload) {
  Endpoint* dst = hub_.find(to);
  if (dst == nullptr) return false;
  return dst->enqueue(self_, std::string(payload));
}

bool ThreadHub::Endpoint::enqueue(PeerId from, std::string payload) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return false;
    if (mailbox_.size() >= max_queue_) return false;  // overflow: drop
    mailbox_.emplace_back(from, std::move(payload));
  }
  cv_.notify_one();
  return true;
}

void ThreadHub::Endpoint::run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [this] { return stopping_ || !mailbox_.empty(); });
    if (stopping_) return;
    auto [from, payload] = std::move(mailbox_.front());
    mailbox_.pop_front();
    // Deliver unlocked: the handler may send (lock other mailboxes) or be
    // slow; senders must be able to keep enqueueing meanwhile.
    lock.unlock();
    handler_(from, std::move(payload));
    lock.lock();
  }
}

void ThreadHub::Endpoint::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Serialize concurrent stop() calls around the join; run() never takes
  // join_mu_, so this cannot deadlock with a draining delivery.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  if (thread_.joinable()) thread_.join();
}

}  // namespace mcp::transport
