#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace mcp::transport {

/// A framing-protocol violation by the remote end: an unparseable or
/// oversized length prefix. Streams raising it must be torn down — the
/// byte stream has no recoverable resynchronization point.
class FramingError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Frame one payload for a byte stream: a varint length prefix (the same
/// encoding as wire::Writer::put_bytes) followed by the payload bytes.
/// Transports ship wire::Envelope::encode() outputs as payloads, so what a
/// socket carries is exactly the bytes the simulator's byte counters
/// account for, plus this prefix.
std::string frame(std::string_view payload);

/// Incremental decoder for a stream of length-prefixed frames.
///
/// Feed whatever the stream produced — a frame may arrive torn across any
/// number of reads, and one read may contain many frames — then pop
/// complete frames with next(). Robustness rules, all enforced *before*
/// any payload-sized allocation happens:
///
///  - a length prefix that does not terminate within 10 bytes (garbage
///    0x80.. runs) or that overflows 64 bits throws FramingError;
///  - a length above `max_frame` throws FramingError, so an adversarial
///    prefix claiming 2^60 bytes cannot drive a huge reserve;
///  - anything else is just an incomplete frame: next() returns nullopt
///    until the remaining bytes arrive.
class FrameBuffer {
 public:
  static constexpr std::size_t kDefaultMaxFrame = 16u << 20;  // 16 MiB

  explicit FrameBuffer(std::size_t max_frame = kDefaultMaxFrame)
      : max_frame_(max_frame) {}

  /// Append raw stream bytes (never throws; validation happens in next()).
  void feed(std::string_view bytes) { buf_.append(bytes); }

  /// Pop the next complete frame's payload, or nullopt if the buffered
  /// bytes end mid-prefix or mid-payload. Throws FramingError per the
  /// class rules; after a throw the buffer is poisoned and every further
  /// next() rethrows (the stream must be closed).
  std::optional<std::string> next();

  /// Bytes buffered but not yet returned as frames.
  std::size_t buffered() const { return buf_.size() - pos_; }

  std::size_t max_frame() const { return max_frame_; }

 private:
  std::size_t max_frame_;
  std::string buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  bool poisoned_ = false;
};

}  // namespace mcp::transport
