#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "transport/frame.hpp"
#include "transport/transport.hpp"

namespace mcp::transport {

/// Where a peer listens.
struct TcpPeer {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct TcpConfig {
  PeerId self = 0;
  std::string listen_host = "127.0.0.1";
  /// 0 = ephemeral; bind_and_listen() reports the bound port so loopback
  /// clusters can exchange peer tables before anyone dials.
  std::uint16_t listen_port = 0;
  std::map<PeerId, TcpPeer> peers;
  std::size_t max_frame = FrameBuffer::kDefaultMaxFrame;
  /// Upper bound on how long one send() may block: dials use a
  /// non-blocking connect raced against this, writes a SO_SNDTIMEO of
  /// 4x it. A dead peer costs at most this per dial attempt, and at most
  /// one attempt per `dial_backoff` (failed dials gate re-dialing), so a
  /// caller's event loop is slowed, never wedged.
  std::chrono::milliseconds dial_timeout{250};
  std::chrono::milliseconds dial_backoff{1000};
};

/// TCP socket transport with length-prefixed framing.
///
/// Topology: two unidirectional streams per peer pair. Outbound frames go
/// over a lazily-dialed connection that opens with a handshake frame
/// announcing the dialer's PeerId; inbound connections are accepted on the
/// listen socket, their handshake read, and then drained by a dedicated
/// reader thread feeding a FrameBuffer — so torn frames and partial reads
/// reassemble, and a stream violating the framing rules (garbage or
/// oversized prefix) is closed without crashing the node.
///
/// Client connections: an accepted stream whose first frame is *not* a
/// pure-varint peer handshake is a service client — it skips the handshake
/// entirely and just starts sending envelopes. The connection is assigned
/// a synthetic PeerId (kFirstClientConn counting down; disjoint from every
/// real node id) under which its frames are delivered, and send() to that
/// id answers over the same socket, duplex. The id dies with the
/// connection: a reconnecting client is a new synthetic peer, and the
/// service layer's sessions — not the transport — carry its identity.
///
/// Loss semantics: a failed dial or write drops the frame and the cached
/// connection; the next send re-dials. Protocol retransmission recovers —
/// the same contract the simulated lossy network already imposes.
class TcpTransport final : public Transport {
 public:
  /// Synthetic ids handed to client connections, counting down from here
  /// (kNoNode is -1; real peers are >= 0).
  static constexpr PeerId kFirstClientConn = -2;
  static constexpr bool is_client_conn(PeerId id) { return id <= kFirstClientConn; }

  explicit TcpTransport(TcpConfig config);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Bind + listen on the configured address; returns the actual port
  /// (useful with listen_port = 0). Idempotent; start() calls it if the
  /// caller did not.
  std::uint16_t bind_and_listen();

  /// Add or replace a peer's address (before start()).
  void set_peer(PeerId id, TcpPeer peer);

  void start(FrameHandler handler) override;
  bool send(PeerId to, std::string_view payload) override;
  void stop() override;
  std::string name() const override { return "tcp"; }

  std::uint16_t listen_port() const { return bound_port_; }

  /// The handshake frame a dialer writes first: frame(varint(self)).
  /// Exposed so tests can speak the protocol over a raw socket.
  static std::string handshake_frame(PeerId self);

 private:
  /// One outbound connection's state. Per-peer locking: a peer whose dial
  /// or write blocks (bounded by dial_timeout / SO_SNDTIMEO) delays only
  /// sends to that peer, never the whole transport.
  struct OutConn {
    std::mutex mu;
    int fd = -1;
    /// Failed dials gate re-dialing until this instant (backoff), so a
    /// down peer costs one bounded dial per backoff window, not per send.
    std::chrono::steady_clock::time_point next_dial{};
  };
  /// Write half of a client connection, shared between the clients_ map
  /// (senders) and the owning InConn (whose reader closes the fd on exit,
  /// under `mu` so it never yanks the socket from under a mid-write
  /// reply).
  struct ClientConn {
    std::mutex mu;
    int fd = -1;
  };
  /// One accepted connection: its reader thread reaps itself by setting
  /// `done` (under mu_) after closing the fd; the accept loop joins and
  /// erases finished entries, so long-lived nodes with flappy peers do not
  /// accumulate dead threads.
  struct InConn {
    int fd = -1;
    bool done = false;  // guarded by mu_
    /// Engaged by the reader when the stream turns out to be a client
    /// connection (no peer handshake); null for peer streams.
    std::shared_ptr<ClientConn> client;  // set under mu_
    PeerId client_id = sim::kNoNode;     // guarded by mu_
    std::thread thread;
  };

  /// Budget for one whole frame write: SO_SNDTIMEO bounds each blocking
  /// send() call, this bounds their sum — a receiver draining a byte per
  /// timeout window cannot hold a sender past it.
  std::chrono::steady_clock::time_point write_deadline() const {
    return std::chrono::steady_clock::now() + 4 * config_.dial_timeout;
  }

  void accept_loop();
  void reap_finished_readers();
  void reader_loop(InConn* conn);
  /// Register `conn` as a client connection; returns its synthetic id.
  PeerId adopt_client_conn(InConn* conn);
  bool send_to_client(PeerId to, std::string_view payload);
  /// Dial `to` (bounded by dial_timeout) and shake hands; -1 on failure.
  int dial(PeerId to);
  void close_all_connections();

  TcpConfig config_;
  std::atomic<bool> stopping_{false};
  std::uint16_t bound_port_ = 0;
  int listen_fd_ = -1;
  FrameHandler handler_;

  std::mutex out_mu_;  // guards the map shape only, never held across I/O
  std::map<PeerId, std::shared_ptr<OutConn>> out_;
  std::mutex mu_;  // guards in_/clients_ bookkeeping
  std::list<std::unique_ptr<InConn>> in_;
  std::map<PeerId, std::shared_ptr<ClientConn>> clients_;
  PeerId next_client_id_ = kFirstClientConn;
  std::thread accept_thread_;
};

}  // namespace mcp::transport
