#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "transport/frame.hpp"
#include "transport/transport.hpp"

namespace mcp::transport {

/// Where a peer listens.
struct TcpPeer {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct TcpConfig {
  PeerId self = 0;
  std::string listen_host = "127.0.0.1";
  /// 0 = ephemeral; bind_and_listen() reports the bound port so loopback
  /// clusters can exchange peer tables before anyone dials.
  std::uint16_t listen_port = 0;
  std::map<PeerId, TcpPeer> peers;
  std::size_t max_frame = FrameBuffer::kDefaultMaxFrame;
  /// Upper bound on one non-blocking connect: a dial with no answer by
  /// this deadline fails, drops its queued frames, and arms the backoff —
  /// at most one attempt per `dial_backoff`, so a dead peer costs the
  /// reactor a timer check, never a blocked thread.
  std::chrono::milliseconds dial_timeout{250};
  std::chrono::milliseconds dial_backoff{1000};
  /// Bound on one connection's outbound queue. A receiver that stops
  /// draining fills its queue; further frames to it are refused at send()
  /// (counted as backpressure drops) while every other connection keeps
  /// flowing — queue bounds are the reactor's replacement for the old
  /// blocking-write SO_SNDTIMEO.
  std::size_t max_outbound_bytes = 4u << 20;
  /// A connection whose queue is non-empty but whose socket accepts no
  /// bytes for this long is torn down (its frames drop, dial backoff
  /// arms): bounds how long a dead-but-connected drainer can pin queue
  /// memory.
  std::chrono::milliseconds write_stall_timeout{2000};
  /// When nonzero, SO_SNDBUF for dialed sockets. Setting it disables the
  /// kernel's send-buffer autotuning, which otherwise absorbs hundreds of
  /// kilobytes for a stalled receiver — tests that need backpressure to
  /// surface deterministically pin this small. 0 keeps the kernel default.
  int so_sndbuf = 0;
};

/// TCP transport with length-prefixed framing over one epoll reactor.
///
/// All socket I/O — accept, connect, read, write — happens on a single
/// reactor thread driving level-triggered epoll over non-blocking
/// sockets. There are no per-connection threads: the thread count is
/// constant in the number of peers and client connections. Senders (any
/// thread) only append frames to per-connection bounded outbound queues
/// and wake the reactor through an eventfd; the reactor flushes each
/// queue with one writev per readiness (many frames per syscall) and
/// feeds inbound bytes through a per-connection FrameBuffer, so torn
/// frames reassemble and a stream violating the framing rules (garbage
/// or oversized prefix) is closed without crashing the node.
///
/// Topology: two unidirectional streams per peer pair. Outbound frames go
/// over a lazily-dialed connection that opens with a handshake frame
/// announcing the dialer's PeerId; inbound connections are accepted on
/// the listen socket and classified by their first frame.
///
/// Client connections: an accepted stream whose first frame is *not* a
/// pure-varint peer handshake is a service client — it skips the
/// handshake entirely and just starts sending envelopes. The connection
/// is assigned a synthetic PeerId (kFirstClientConn counting down;
/// disjoint from every real node id) under which its frames are
/// delivered, and send() to that id answers over the same socket, duplex.
/// The id dies with the connection: a reconnecting client is a new
/// synthetic peer, and the service layer's sessions — not the transport —
/// carry its identity.
///
/// Loss semantics: a failed dial, a write error, a full queue, or a write
/// stall drops frames and (except the full queue) the connection; the
/// next send re-dials. Protocol retransmission recovers — the same
/// contract the simulated lossy network already imposes.
class TcpTransport final : public Transport {
 public:
  /// Synthetic ids handed to client connections, counting down from here
  /// (kNoNode is -1; real peers are >= 0).
  static constexpr PeerId kFirstClientConn = -2;
  static constexpr bool is_client_conn(PeerId id) { return id <= kFirstClientConn; }

  explicit TcpTransport(TcpConfig config);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Bind + listen on the configured address; returns the actual port
  /// (useful with listen_port = 0). Idempotent; start() calls it if the
  /// caller did not.
  std::uint16_t bind_and_listen();

  /// Add or replace a peer's address. The cached connection (and its dial
  /// backoff) is retired so the next send dials the new address.
  void set_peer(PeerId id, TcpPeer peer);

  void start(FrameHandler handler) override;
  bool send(PeerId to, std::string_view payload) override;
  void stop() override;
  std::string name() const override { return "tcp"; }
  TransportStats stats() const override;

  std::uint16_t listen_port() const { return bound_port_; }

  /// Admin request handler: maps a GET path ("/metrics", "/healthz", ...)
  /// to a plaintext response body, or nullopt for 404. Runs on the
  /// reactor thread, so it must only touch thread-safe state (the
  /// node's Metrics registry is).
  using AdminHandler = std::function<std::optional<std::string>(const std::string&)>;

  /// Serve a plaintext HTTP admin endpoint on its own port over the same
  /// epoll reactor (no extra thread): minimal GET parsing, one response,
  /// close. Must be called before start(); port 0 binds an ephemeral
  /// port. Returns the bound port.
  std::uint16_t enable_admin(std::uint16_t port, AdminHandler handler);
  /// Bound admin port (0 when the endpoint is disabled).
  std::uint16_t admin_port() const { return admin_port_; }

  /// The handshake frame a dialer writes first: frame(varint(self)).
  /// Exposed so tests can speak the protocol over a raw socket.
  static std::string handshake_frame(PeerId self);

 private:
  struct Conn;

  /// One connection's outbound side, shared between sender threads
  /// (bounded enqueue under `mu`) and the reactor (drain + flush). For
  /// outbound peer links this object outlives individual connections:
  /// the dial backoff gate lives here too.
  struct OutQueue {
    std::mutex mu;
    std::deque<std::string> q;  // framed bytes, one entry per frame
    std::size_t q_bytes = 0;
    /// Reactor-owned fd this queue flushes to; -1 = not connected.
    /// Senders never touch it — they only observe `state`.
    int fd = -1;
    enum class State : std::uint8_t {
      kIdle,       // no connection; first enqueue requests a dial
      kDialing,    // non-blocking connect in flight
      kReady,      // connected (or adopted inbound client socket)
      kBackoff,    // last dial/write failed; drop sends until next_dial
      kDead,       // client connection gone; refuse sends forever
    };
    State state = State::kIdle;  // guarded by mu
    std::chrono::steady_clock::time_point next_dial{};  // guarded by mu
    /// Back-pointer to the reactor Conn currently flushing this queue
    /// (null when none). Written by the reactor under mu; only ever
    /// dereferenced on the reactor thread.
    Conn* conn = nullptr;
  };

  /// Reactor-side state of one socket (owned by the reactor thread).
  struct Conn {
    int fd = -1;
    /// Peer id frames from this socket are delivered under: kNoNode until
    /// the first frame classifies an accepted stream, the handshake id
    /// for peer streams, a synthetic id for clients. For outbound
    /// connections, the dialed peer.
    PeerId peer = sim::kNoNode;
    bool outbound = false;        // dialed by us (carries our handshake)
    bool connecting = false;      // non-blocking connect() not yet resolved
    bool awaiting_first = false;  // accepted, first frame not yet seen
    bool is_admin = false;        // accepted on the admin listen socket
    /// Close once the outbound queue drains (admin: response written).
    bool close_after_flush = false;
    /// Raw request bytes of an admin connection (no framing).
    std::string admin_in;
    FrameBuffer in;
    /// Outbound queue this socket flushes (outbound peer link or adopted
    /// client connection); null for pure-inbound peer streams.
    std::shared_ptr<OutQueue> out;
    std::size_t head_off = 0;  // bytes of out->q.front() already written
    bool want_write = false;   // EPOLLOUT currently registered
    /// Reactor's view of "frames are waiting on this socket" — the stall
    /// clock runs only while true, and starts when it flips true.
    bool had_pending = false;
    std::chrono::steady_clock::time_point dial_deadline{};
    /// Last instant the socket accepted outbound bytes (stall detection).
    std::chrono::steady_clock::time_point last_write_progress{};

    explicit Conn(std::size_t max_frame) : in(max_frame) {}
  };

  void reactor_loop();
  void wake();
  /// Sender half of send(): enqueue on `out` (bounded) and wake the
  /// reactor; false when the queue refused the frame.
  bool enqueue(const std::shared_ptr<OutQueue>& out, PeerId to,
               std::string_view payload);

  // Everything below runs on the reactor thread only.
  void handle_listen_ready();
  void handle_admin_listen_ready();
  void handle_admin_readable(Conn* conn);
  void start_dials();
  void start_dial(PeerId to, const std::shared_ptr<OutQueue>& out);
  void finish_dial(Conn* conn, bool ok);
  void handle_readable(Conn* conn);
  void handle_writable(Conn* conn);
  void flush(Conn* conn);
  void close_conn(Conn* conn, bool drop_queue);
  void update_interest(Conn* conn, bool want_write);
  PeerId adopt_client_conn(Conn* conn);
  std::chrono::milliseconds poll_timeout() const;
  void check_deadlines();

  TcpConfig config_;
  std::atomic<bool> stopping_{false};
  std::uint16_t bound_port_ = 0;
  int listen_fd_ = -1;
  int admin_listen_fd_ = -1;
  std::uint16_t admin_port_ = 0;
  AdminHandler admin_handler_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> wake_pending_{false};
  FrameHandler handler_;

  /// Guards peers_/clients_/dial_requests_ map shape; never held across
  /// I/O or handler calls.
  mutable std::mutex mu_;
  std::map<PeerId, std::shared_ptr<OutQueue>> peers_;
  std::map<PeerId, std::shared_ptr<OutQueue>> clients_;
  /// Peers whose queues want a connection; senders append, the reactor
  /// drains (under mu_).
  std::vector<PeerId> dial_requests_;
  PeerId next_client_id_ = kFirstClientConn;  // guarded by mu_

  /// Reactor-owned connection list (reactor thread only after start).
  std::list<std::unique_ptr<Conn>> conns_;

  // Stats (relaxed atomics: written by reactor + senders, read anywhere).
  std::atomic<std::int64_t> backpressure_drops_{0};
  std::atomic<std::int64_t> flushes_{0};
  std::atomic<std::int64_t> flushed_frames_{0};
  std::atomic<std::int64_t> conn_drops_{0};

  std::thread reactor_;
};

}  // namespace mcp::transport
