#pragma once

// Shared low-level socket helpers for the TCP transport and the service
// client channel — one copy, so the bounded-connect and bounded-write
// semantics cannot drift between the two.

#include <netinet/in.h>

#include <chrono>
#include <string_view>

namespace mcp::transport {

/// connect() bounded by `timeout`: non-blocking connect raced against
/// poll(POLLOUT), then back to blocking mode. Returns false on any
/// failure (the caller closes the fd).
bool connect_with_timeout(int fd, const sockaddr_in& addr,
                          std::chrono::milliseconds timeout);

/// write()-until-done with MSG_NOSIGNAL (a dead peer must surface as an
/// error return, not SIGPIPE), bounded by `deadline` across the WHOLE
/// write. The deadline matters even with SO_SNDTIMEO set: the socket
/// timeout only bounds a zero-progress send(), so a receiver draining a
/// byte per timeout window would otherwise hold the caller indefinitely.
/// Returns false on error or deadline (the connection should be dropped —
/// a partial frame is unrecoverable for the receiver's framing anyway).
bool send_all(int fd, std::string_view bytes,
              std::chrono::steady_clock::time_point deadline);

void set_nodelay(int fd);
/// SO_SNDTIMEO: bounds each individual blocking send() in send_all.
void set_send_timeout(int fd, std::chrono::milliseconds timeout);

}  // namespace mcp::transport
