#include "audit/inspect.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "cstruct/command.hpp"
#include "cstruct/serialize.hpp"
#include "genpaxos/auditor_core.hpp"
#include "paxos/ballot.hpp"
#include "paxos/quorum.hpp"
#include "storage/flight_recorder.hpp"

namespace mcp::audit {
namespace {

namespace fs = std::filesystem;

paxos::Ballot ballot_of(const util::JournalRecord& rec) {
  paxos::Ballot b;
  b.count = rec.ballot_count;
  b.coord = static_cast<sim::NodeId>(rec.ballot_coord);
  b.coord_inc = static_cast<int>(rec.ballot_inc);
  b.type = static_cast<paxos::RoundType>(rec.ballot_type);
  return b;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Everything accumulated for one consensus group during the replay.
struct GroupState {
  /// One node *lifetime*: a restart opens a new epoch, because a restarted
  /// learner legitimately re-learns — and its replica re-applies — the
  /// whole prefix during recovery. Exactly-once holds within a lifetime;
  /// across lifetimes only the conflicting-order check applies. Epochs are
  /// counted from the kMembership record Node::start() journals; a journal
  /// whose membership record was pruned by rotation lands in epoch 0.
  using Unit = std::pair<std::int64_t, std::uint32_t>;  // (node, epoch)

  /// An acceptor's reconstructed vote value: full kPhase2b records reset
  /// it, kPhase2bDelta records extend it. `valid` goes false when the
  /// chain's base was pruned away with its segment (or a delta fails to
  /// chain) — deltas are then skipped until the next full record
  /// re-anchors the chain.
  struct VoteChain {
    cstruct::History value;
    bool valid = false;
  };

  std::set<sim::NodeId> acceptors;           // distinct 2b senders
  /// 2b votes in timeline order, each with its reconstructed full value.
  std::vector<std::pair<const util::JournalRecord*, cstruct::History>> votes;
  std::map<std::int64_t, VoteChain> chains;  // acceptor → running vote value
  std::size_t orphan_delta_votes = 0;        // deltas whose base was pruned
  std::size_t rounds_started = 0;
  std::map<std::int64_t, std::uint32_t> epoch;  // node → current lifetime
  /// lifetime → learned commands, in learn order (from kLearn payloads).
  std::map<Unit, std::vector<cstruct::Command>> learned_seq;
  std::map<Unit, std::set<std::uint64_t>> learned_ids;
  std::map<Unit, std::uint64_t> learned_len;  // max kLearn `a`
  /// lifetime → applied command ids, in apply order (from kApply records).
  std::map<Unit, std::vector<std::uint64_t>> applied_seq;
  std::map<Unit, std::set<std::uint64_t>> applied_ids;
  std::vector<std::string> violations;
};

std::string unit_label(const GroupState::Unit& u) {
  std::string s = "node " + std::to_string(u.first);
  if (u.second > 1) s += " (restart " + std::to_string(u.second - 1) + ")";
  return s;
}

void check_kv(std::uint32_t gid, GroupState& g) {
  const cstruct::KeyConflict conflicts;
  const std::string tag = "group " + std::to_string(gid) + ": ";

  // Exactly-once learning / application per node lifetime. The engine's
  // LearnerCore only journals commands as they first enter the learned
  // prefix, and the replica applies each command once; a duplicate id in
  // either stream within one lifetime is a real protocol/runtime bug (or a
  // forged journal — which is the point of the corrupted-stream regression
  // test). A restart re-learns the prefix, which is why the streams are
  // keyed per lifetime, not per node.
  for (const auto& [unit, seq] : g.learned_seq) {
    std::set<std::uint64_t> seen;
    for (const cstruct::Command& c : seq) {
      if (!seen.insert(c.id).second) {
        g.violations.push_back(tag + unit_label(unit) + " learned command " +
                               std::to_string(c.id) + " twice");
      }
    }
  }
  for (const auto& [unit, seq] : g.applied_seq) {
    std::set<std::uint64_t> seen;
    for (std::uint64_t id : seq) {
      if (!seen.insert(id).second) {
        g.violations.push_back(tag + unit_label(unit) + " applied command " +
                               std::to_string(id) +
                               " twice (exactly-once broken)");
      }
    }
  }

  // applied ⊆ learned, per lifetime that journals both streams. (A journal
  // truncated by rotation may have applies without the matching learns;
  // only flag lifetimes whose learn stream is complete, i.e. whose learned
  // length equals the learn-sequence size.)
  for (const auto& [unit, applied] : g.applied_ids) {
    auto lit = g.learned_ids.find(unit);
    if (lit == g.learned_ids.end()) continue;
    const auto len_it = g.learned_len.find(unit);
    const bool complete_learn_stream =
        len_it != g.learned_len.end() &&
        len_it->second == g.learned_seq.at(unit).size();
    if (!complete_learn_stream) continue;
    for (std::uint64_t id : applied) {
      if (!lit->second.count(id)) {
        g.violations.push_back(tag + unit_label(unit) + " applied command " +
                               std::to_string(id) + " it never learned");
      }
    }
  }

  // Linearizable application across replicas: conflicting commands learned
  // by two lifetimes must be learned in the same relative order (commuting
  // commands may legally interleave differently — that is the generalized
  // consensus win, not a bug). Two lifetimes of the same node count too:
  // the re-learned prefix must order conflicting pairs like the original.
  std::vector<std::pair<GroupState::Unit, const std::vector<cstruct::Command>*>>
      units;
  for (const auto& [unit, seq] : g.learned_seq) units.emplace_back(unit, &seq);
  for (std::size_t i = 0; i < units.size(); ++i) {
    std::map<std::uint64_t, std::size_t> pos_i;
    for (std::size_t k = 0; k < units[i].second->size(); ++k) {
      pos_i.emplace((*units[i].second)[k].id, k);
    }
    for (std::size_t j = i + 1; j < units.size(); ++j) {
      const auto& seq_j = *units[j].second;
      // Walk j's order; any conflicting pair also present in i must keep
      // the same orientation.
      for (std::size_t a = 0; a < seq_j.size(); ++a) {
        auto ia = pos_i.find(seq_j[a].id);
        if (ia == pos_i.end()) continue;
        for (std::size_t b = a + 1; b < seq_j.size(); ++b) {
          auto ib = pos_i.find(seq_j[b].id);
          if (ib == pos_i.end()) continue;
          if (!conflicts.conflicts(seq_j[a], seq_j[b])) continue;
          if (ia->second > ib->second) {
            g.violations.push_back(
                tag + unit_label(units[i].first) + " and " +
                unit_label(units[j].first) + " learned conflicting commands " +
                std::to_string(seq_j[a].id) + " and " +
                std::to_string(seq_j[b].id) + " in opposite orders");
          }
        }
      }
    }
  }
}

}  // namespace

std::vector<std::string> find_journal_dirs(const std::string& root) {
  std::set<std::string> dirs;
  std::error_code ec;
  if (fs::is_directory(root, ec)) {
    for (fs::recursive_directory_iterator it(root, ec), end; !ec && it != end;
         it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      const fs::path& p = it->path();
      if (p.extension() == ".mcj" &&
          p.filename().string().rfind("journal-", 0) == 0) {
        dirs.insert(p.parent_path().string());
      }
    }
  }
  return {dirs.begin(), dirs.end()};
}

std::map<std::string, std::string> read_manifest(const std::string& root) {
  std::map<std::string, std::string> out;
  std::ifstream in(root + "/manifest.txt");
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    out[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return out;
}

InspectReport inspect(const std::vector<std::string>& journal_dirs,
                      InspectOptions options) {
  InspectReport report;
  report.journal_dirs = journal_dirs;

  // 1. Read every segment of every node and merge into one timeline. The
  // sink stamped wall-clock microseconds, so a stable sort on ts_us gives a
  // global order that preserves each node's own append order on ties.
  std::vector<util::JournalRecord> timeline;
  for (const std::string& dir : journal_dirs) {
    for (storage::FlightRecorder::SegmentData& seg :
         storage::FlightRecorder::read_dir(dir)) {
      ++report.segments;
      if (seg.torn) ++report.torn_segments;
      if (seg.rejected) {
        ++report.rejected_segments;
        continue;
      }
      for (util::JournalRecord& rec : seg.records) {
        timeline.push_back(std::move(rec));
      }
    }
  }
  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const util::JournalRecord& a, const util::JournalRecord& b) {
                     return a.ts_us < b.ts_us;
                   });
  report.events = timeline.size();
  if (!timeline.empty()) {
    report.first_ts_us = timeline.front().ts_us;
    report.last_ts_us = timeline.back().ts_us;
  }

  // 2. Single pass: per-node summaries and per-group state. 2b vote values
  // are reconstructed here (delta records chain onto the last full one),
  // so the replay in pass 3 sees full ballot-array entries.
  const cstruct::KeyConflict relation;
  const cstruct::History bottom(&relation);
  std::map<std::int64_t, NodeSummary> nodes;
  std::map<std::uint32_t, GroupState> groups;
  for (const util::JournalRecord& rec : timeline) {
    NodeSummary& ns = nodes[rec.node];
    ns.node = rec.node;
    if (ns.events == 0) ns.first_ts_us = rec.ts_us;
    ns.last_ts_us = rec.ts_us;
    ++ns.events;

    GroupState& g = groups[rec.group];
    switch (rec.kind) {
      case util::JournalKind::kRoundStart:
      case util::JournalKind::kJoin:
        ++g.rounds_started;
        ns.max_incarnation = std::max(ns.max_incarnation, rec.b);
        break;
      case util::JournalKind::kPhase2b:
      case util::JournalKind::kPhase2bDelta: {
        g.acceptors.insert(static_cast<sim::NodeId>(rec.node));
        ns.max_incarnation = std::max(ns.max_incarnation, rec.b);
        auto& chain = g.chains[rec.node];
        try {
          if (rec.kind == util::JournalKind::kPhase2b) {
            chain.value = cstruct::decode(bottom, rec.payload);
            chain.valid = true;
          } else if (chain.valid) {
            chain.value.apply_suffix(cstruct::decode_commands(rec.payload));
            if (chain.value.size() != rec.a) {
              g.violations.push_back(
                  "group " + std::to_string(rec.group) +
                  ": 2b delta from node " + std::to_string(rec.node) +
                  " does not chain (reconstructed " +
                  std::to_string(chain.value.size()) + " commands, record says " +
                  std::to_string(rec.a) + ")");
              chain.valid = false;
            }
          } else {
            // The chain's base rode a segment that rotation pruned: skip
            // this vote, re-anchor at the acceptor's next full 2b.
            ++g.orphan_delta_votes;
            break;
          }
        } catch (const std::exception& ex) {
          g.violations.push_back("group " + std::to_string(rec.group) +
                                 ": undecodable 2b payload from node " +
                                 std::to_string(rec.node) + ": " + ex.what());
          chain.valid = false;
          break;
        }
        if (chain.valid) g.votes.emplace_back(&rec, chain.value);
        break;
      }
      case util::JournalKind::kLearn: {
        const GroupState::Unit unit{rec.node, g.epoch[rec.node]};
        auto& seq = g.learned_seq[unit];
        for (cstruct::Command& c : cstruct::decode_commands(rec.payload)) {
          g.learned_ids[unit].insert(c.id);
          seq.push_back(std::move(c));
        }
        auto& len = g.learned_len[unit];
        len = std::max(len, rec.a);
        break;
      }
      case util::JournalKind::kApply: {
        const GroupState::Unit unit{rec.node, g.epoch[rec.node]};
        g.applied_seq[unit].push_back(rec.a);
        g.applied_ids[unit].insert(rec.a);
        break;
      }
      case util::JournalKind::kMembership:
        // Node::start() journals one membership record per hosted group:
        // each one opens a new lifetime, under which re-learning the
        // prefix is recovery, not a duplicate.
        ++g.epoch[rec.node];
        ns.roles.push_back(rec.payload + " g" + std::to_string(rec.group));
        ns.max_incarnation = std::max(ns.max_incarnation, rec.b);
        break;
      case util::JournalKind::kIncarnation:
        ns.max_incarnation = std::max(ns.max_incarnation, rec.b);
        break;
      default:
        break;
    }
  }

  // 3. Per group: replay the 2b stream through the Appendix-A ballot-array
  // invariants, then run the KV cross-checks.
  for (auto& [gid, g] : groups) {
    GroupReport gr;
    gr.gid = gid;
    gr.rounds_started = g.rounds_started;
    gr.orphan_votes = g.orphan_delta_votes;
    gr.acceptors_seen = g.acceptors.size();
    for (const auto& [unit, len] : g.learned_len) {
      gr.learned_commands = std::max<std::size_t>(gr.learned_commands, len);
    }
    for (const auto& [unit, seq] : g.applied_seq) {
      gr.applied_commands = std::max(gr.applied_commands, seq.size());
    }

    if (!g.votes.empty()) {
      const std::size_t n = g.acceptors.size();
      const int f = options.f >= 0 ? options.f
                                   : static_cast<int>((n - 1) / 2);
      // e = 0 is the conservative inference: underestimating E only makes
      // fast quorums *bigger* in the replay, so fewer values count as
      // chosen and no false "does not extend chosen" violations appear.
      const int e = options.e >= 0 ? options.e : 0;
      paxos::QuorumSystem quorums(
          std::vector<sim::NodeId>(g.acceptors.begin(), g.acceptors.end()), f, e);
      genpaxos::AuditorCore<cstruct::History> core(bottom, quorums);
      for (const auto& [vote, val] : g.votes) {
        ++gr.votes_replayed;
        core.record(static_cast<sim::NodeId>(vote->node), ballot_of(*vote), val);
      }
      for (const std::string& v : core.violations()) {
        g.violations.push_back("group " + std::to_string(gid) + ": " + v);
      }
    }

    check_kv(gid, g);
    gr.violations = g.violations;
    for (const std::string& v : g.violations) report.violations.push_back(v);
    report.groups.push_back(std::move(gr));
  }

  for (auto& [node, ns] : nodes) report.nodes.push_back(std::move(ns));
  return report;
}

InspectReport inspect_root(const std::string& root, InspectOptions options) {
  const auto manifest = read_manifest(root);
  if (options.f < 0) {
    if (auto it = manifest.find("f"); it != manifest.end()) {
      options.f = std::stoi(it->second);
    }
  }
  if (options.e < 0) {
    if (auto it = manifest.find("e"); it != manifest.end()) {
      options.e = std::stoi(it->second);
    }
  }
  return inspect(find_journal_dirs(root), options);
}

std::string render_text(const InspectReport& report) {
  std::ostringstream out;
  out << "mcpaxos_inspect: " << report.journal_dirs.size() << " journal dir(s), "
      << report.segments << " segment(s), " << report.events << " event(s)\n";
  if (report.torn_segments) {
    out << "  torn segments (truncated tail kept): " << report.torn_segments
        << "\n";
  }
  if (report.rejected_segments) {
    out << "  REJECTED segments (corrupt, dropped): " << report.rejected_segments
        << " — the timeline has holes\n";
  }
  if (report.events) {
    out << "  timeline: " << report.first_ts_us << "us .. " << report.last_ts_us
        << "us (" << (report.last_ts_us - report.first_ts_us) / 1000.0
        << " ms)\n";
  }
  for (const NodeSummary& ns : report.nodes) {
    out << "node " << ns.node << ": " << ns.events << " event(s)";
    if (ns.max_incarnation) out << ", incarnation " << ns.max_incarnation;
    if (!ns.roles.empty()) {
      out << ", roles:";
      for (const std::string& r : ns.roles) out << " [" << r << "]";
    }
    out << "\n";
  }
  for (const GroupReport& gr : report.groups) {
    out << "group " << gr.gid << ": " << gr.votes_replayed
        << " 2b vote(s) over " << gr.acceptors_seen << " acceptor(s), "
        << gr.rounds_started << " round transition(s), learned "
        << gr.learned_commands << ", applied " << gr.applied_commands << "\n";
    if (gr.orphan_votes > 0) {
      out << "  note: " << gr.orphan_votes
          << " delta 2b vote(s) skipped (chain base pruned with its segment)\n";
    }
  }
  if (report.violations.empty()) {
    out << "OK: 0 invariant violations\n";
  } else {
    out << "FAIL: " << report.violations.size() << " invariant violation(s)\n";
    for (const std::string& v : report.violations) out << "  VIOLATION: " << v << "\n";
  }
  return out.str();
}

std::string render_json(const InspectReport& report) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"segments\": " << report.segments << ",\n";
  out << "  \"torn_segments\": " << report.torn_segments << ",\n";
  out << "  \"rejected_segments\": " << report.rejected_segments << ",\n";
  out << "  \"events\": " << report.events << ",\n";
  out << "  \"first_ts_us\": " << report.first_ts_us << ",\n";
  out << "  \"last_ts_us\": " << report.last_ts_us << ",\n";
  out << "  \"nodes\": [";
  for (std::size_t i = 0; i < report.nodes.size(); ++i) {
    const NodeSummary& ns = report.nodes[i];
    out << (i ? ", " : "") << "{\"node\": " << ns.node
        << ", \"events\": " << ns.events
        << ", \"max_incarnation\": " << ns.max_incarnation << "}";
  }
  out << "],\n";
  out << "  \"groups\": [";
  for (std::size_t i = 0; i < report.groups.size(); ++i) {
    const GroupReport& gr = report.groups[i];
    out << (i ? ", " : "") << "{\"gid\": " << gr.gid
        << ", \"votes\": " << gr.votes_replayed
        << ", \"orphan_votes\": " << gr.orphan_votes
        << ", \"acceptors\": " << gr.acceptors_seen
        << ", \"rounds\": " << gr.rounds_started
        << ", \"learned\": " << gr.learned_commands
        << ", \"applied\": " << gr.applied_commands
        << ", \"violations\": " << gr.violations.size() << "}";
  }
  out << "],\n";
  out << "  \"violations\": [";
  for (std::size_t i = 0; i < report.violations.size(); ++i) {
    out << (i ? ", " : "") << "\"" << json_escape(report.violations[i]) << "\"";
  }
  out << "],\n";
  out << "  \"ok\": " << (report.ok() ? "true" : "false") << "\n";
  out << "}\n";
  return out.str();
}

}  // namespace mcp::audit
