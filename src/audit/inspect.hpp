#pragma once

// Post-mortem auditor over protocol flight-recorder journals: the library
// behind `examples/mcpaxos_inspect` (and its regression tests). Merges the
// per-node journals of a cluster into one wall-clock timeline, replays
// every 2b vote through the ballot-array invariants of the paper's
// Appendix A (genpaxos::AuditorCore — the same checks SafetyAuditor runs
// live in the simulator), and cross-checks the KV command flow for
// exactly-once, apply⊆learned, and conflicting-order agreement between
// replicas. The output is a structured report renderable as a
// human-readable incident summary or JSON for CI gating.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/journal.hpp"

namespace mcp::audit {

struct InspectOptions {
  /// Quorum tolerances of the recorded cluster. Negative = infer: the
  /// acceptor set is the distinct 2b senders per group, f = ⌊(n−1)/2⌋,
  /// e = 0 (the conservative choice — an underestimated e only makes the
  /// replay *slower* to call values chosen, never wrongly eager). A bundle
  /// manifest (manifest.txt: `f=..`, `e=..`) overrides inference.
  int f = -1;
  int e = -1;
};

/// Per-node roll-up of the merged timeline.
struct NodeSummary {
  std::int64_t node = -1;
  std::size_t events = 0;
  std::uint64_t first_ts_us = 0;
  std::uint64_t last_ts_us = 0;
  /// role labels from kMembership records, e.g. "coord g0".
  std::vector<std::string> roles;
  std::uint64_t max_incarnation = 0;
};

/// Per-consensus-group audit result.
struct GroupReport {
  std::uint32_t gid = 0;
  std::size_t votes_replayed = 0;   ///< 2b events fed to the auditor core
  /// Delta 2b votes skipped because their chain base rode a pruned
  /// segment — incomplete evidence, not a violation.
  std::size_t orphan_votes = 0;
  std::size_t acceptors_seen = 0;   ///< distinct 2b senders
  std::size_t rounds_started = 0;   ///< kRoundStart + kJoin events
  std::size_t learned_commands = 0; ///< max learned length over nodes
  std::size_t applied_commands = 0; ///< max applied count over nodes
  std::vector<std::string> violations;
};

struct InspectReport {
  std::vector<std::string> journal_dirs;
  std::size_t segments = 0;
  std::size_t torn_segments = 0;
  /// Segments dropped for checksum/decode corruption. Not an invariant
  /// violation (the protocol did nothing wrong) but reported prominently:
  /// the evidence has holes.
  std::size_t rejected_segments = 0;
  std::size_t events = 0;
  std::uint64_t first_ts_us = 0;
  std::uint64_t last_ts_us = 0;
  std::vector<NodeSummary> nodes;
  std::vector<GroupReport> groups;
  /// Every invariant violation, across groups (group-tagged copies of the
  /// GroupReport entries plus cross-cutting KV checks).
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

/// Directories under `root` (inclusive) holding journal-*.mcj segments —
/// one per node in a bundle layout (`bundle/node<id>/journal/`), or just
/// `root` itself when pointed straight at a node's journal dir.
std::vector<std::string> find_journal_dirs(const std::string& root);

/// Parse a bundle manifest (`key=value` lines; '#' comments) if present.
std::map<std::string, std::string> read_manifest(const std::string& root);

/// Audit the given journal directories as one cluster.
InspectReport inspect(const std::vector<std::string>& journal_dirs,
                      InspectOptions options = {});
/// Discover journals under `root` (applying root/manifest.txt overrides)
/// and audit them.
InspectReport inspect_root(const std::string& root, InspectOptions options = {});

/// Human-readable incident report.
std::string render_text(const InspectReport& report);
/// Machine-readable report; `violations` is the CI gate.
std::string render_json(const InspectReport& report);

}  // namespace mcp::audit
