#pragma once

#include <map>
#include <string>
#include <vector>

#include "genpaxos/auditor_core.hpp"
#include "genpaxos/engine.hpp"

namespace mcp::genpaxos {

/// Runtime safety oracle implementing the ballot-array abstractions of the
/// paper's Appendix A (Definitions 2–5 and the invariants behind
/// Propositions 1–3). Add its id to Config::learners and it receives the
/// same 2b stream as real learners, reconstructs the ballot array
/// bA[acceptor][round], and checks every vote against the invariants — the
/// checks themselves live in AuditorCore, shared with the offline
/// flight-recorder auditor (audit::inspect / mcpaxos_inspect), so the
/// simulator and a post-mortem journal replay apply the identical logic.
///
/// Violations are recorded, not thrown, so tests can assert on them; any
/// entry here means an engine bug (or a deliberately corrupted stream in
/// the auditor's own tests).
template <cstruct::CStructT CS>
class SafetyAuditor final : public sim::Process {
 public:
  explicit SafetyAuditor(const Config<CS>& config)
      : core_(config.bottom, config.quorum_system()) {
    register_wire_messages(decoders(), config.bottom);
  }

  std::string role() const override { return "auditor"; }

  void on_message(sim::NodeId from, const std::any& m) override {
    if (const auto* d2b = std::any_cast<Msg2bDelta>(&m)) {
      // Delta 2b: reconstruct from the last vote recorded for this
      // acceptor at this round (the same base a real learner holds); on a
      // chain gap, resync like a learner would.
      const CS* base = core_.vote(d2b->b, from);
      const std::size_t cached = base != nullptr ? base->size() : 0;
      switch (delta_fit(base != nullptr ? &cached : nullptr, d2b->delta.base_size)) {
        case DeltaFit::kStaleDuplicate:
          return;
        case DeltaFit::kResync:
          sim().metrics().incr("gen.2b_resync_requests");
          send(from, MsgResync2b{d2b->b});
          return;
        case DeltaFit::kApply:
          break;
      }
      CS next = *base;
      next.apply_suffix(d2b->delta.suffix);
      core_.record(from, d2b->b, next);
      return;
    }
    const auto* p2b = std::any_cast<Msg2b<CS>>(&m);
    if (p2b == nullptr) return;
    core_.record(from, p2b->b, *p2b->val);
  }

  /// Also usable without a live simulation (tests feed votes directly).
  void record(sim::NodeId acceptor, const paxos::Ballot& b, const CS& val) {
    core_.record(acceptor, b, val);
  }

  bool ok() const { return core_.ok(); }
  const std::vector<std::string>& violations() const { return core_.violations(); }
  /// Largest value known to be chosen at a round (Definition 3).
  const std::map<paxos::Ballot, CS>& chosen() const { return core_.chosen(); }

 private:
  AuditorCore<CS> core_;
};

}  // namespace mcp::genpaxos
