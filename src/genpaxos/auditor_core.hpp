#pragma once

// The ballot-array invariant machinery of the paper's Appendix A
// (Definitions 2–5, Propositions 1–3), factored out of SafetyAuditor so it
// runs in two places: live inside a simulation (SafetyAuditor, a
// sim::Process fed the real 2b stream) and offline over a flight-recorder
// journal (audit::inspect, replaying kPhase2b events post mortem). Depends
// only on paxos + cstruct — no sim::Process, no engine.

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cstruct/cstruct.hpp"
#include "paxos/ballot.hpp"
#include "paxos/quorum.hpp"
#include "sim/time.hpp"

namespace mcp::genpaxos {

/// Reconstructs the ballot array bA[acceptor][round] from a stream of 2b
/// votes and checks, on every vote:
///
///  - **monotonicity**: an acceptor's value at a round only ever extends
///    (acceptors re-vote growing c-structs within a round);
///  - **conservative rounds** (Prop. 3): any two values accepted at the
///    same *classic* round are compatible;
///  - **chosen compatibility** (Prop. 1 / Definition 3): the set of values
///    chosen (accepted by a full quorum) across all rounds is pairwise
///    compatible;
///  - **the core Paxos invariant** (from "safe at", Definition 5): if v is
///    chosen at round k, every value accepted at any round j > k extends v.
///
/// Violations are recorded, not thrown, so callers can assert on them; any
/// entry means an engine bug or a corrupted journal.
template <cstruct::CStructT CS>
class AuditorCore {
 public:
  AuditorCore(CS bottom, paxos::QuorumSystem quorums)
      : bottom_(std::move(bottom)), quorums_(std::move(quorums)) {}

  void record(sim::NodeId acceptor, const paxos::Ballot& b, const CS& val) {
    auto& round_votes = ballot_array_[b];
    auto it = round_votes.find(acceptor);
    if (it != round_votes.end()) {
      if (!val.extends(it->second) && !it->second.extends(val)) {
        report("acceptor " + std::to_string(acceptor) + " vote at " + b.str() +
               " neither extends nor is extended by its previous vote");
      }
      if (it->second.extends(val)) return;  // stale retransmission
      it->second = val;
    } else {
      round_votes.emplace(acceptor, val);
    }

    if (b.is_classic()) {
      for (const auto& [other, v] : round_votes) {
        if (other != acceptor && !v.compatible(val)) {
          report("classic round " + b.str() + " not conservative: acceptors " +
                 std::to_string(acceptor) + " and " + std::to_string(other) +
                 " accepted incompatible values");
        }
      }
    }

    // The new vote must extend everything chosen at lower rounds.
    for (const auto& [k, chosen] : chosen_) {
      if (k < b && !val.extends(chosen)) {
        report("vote at " + b.str() + " by acceptor " + std::to_string(acceptor) +
               " does not extend the value chosen at " + k.str());
      }
    }

    refresh_chosen(b);
  }

  bool ok() const { return violations_.empty(); }
  const std::vector<std::string>& violations() const { return violations_; }
  /// Largest value known to be chosen at a round (Definition 3).
  const std::map<paxos::Ballot, CS>& chosen() const { return chosen_; }

  /// The vote a given acceptor last cast at a round, or nullptr — the base
  /// a delta 2b applies against (SafetyAuditor's delta reconstruction).
  const CS* vote(const paxos::Ballot& b, sim::NodeId acceptor) const {
    const auto bit = ballot_array_.find(b);
    if (bit == ballot_array_.end()) return nullptr;
    const auto it = bit->second.find(acceptor);
    return it == bit->second.end() ? nullptr : &it->second;
  }

 private:
  void report(std::string message) { violations_.push_back(std::move(message)); }

  /// Recompute what is chosen at round b (Definition 3: some b-quorum all
  /// accepted an extension of v ⇔ v ⊑ the glb of that quorum's votes).
  void refresh_chosen(const paxos::Ballot& b) {
    const auto& round_votes = ballot_array_[b];
    const std::size_t q = quorums_.quorum_size(b);
    if (round_votes.size() < q) return;
    std::vector<CS> vals;
    vals.reserve(round_votes.size());
    for (const auto& [a, v] : round_votes) vals.push_back(v);
    CS chosen_here = bottom_;
    bool first = true;
    for (const auto& subset : paxos::combinations(vals.size(), q)) {
      std::vector<CS> quorum_vals;
      quorum_vals.reserve(q);
      for (std::size_t idx : subset) quorum_vals.push_back(vals[idx]);
      const CS m = cstruct::meet_all(quorum_vals);
      if (first) {
        chosen_here = m;
        first = false;
      } else if (chosen_here.compatible(m)) {
        chosen_here = chosen_here.join(m);
      } else {
        report("two incompatible values chosen within round " + b.str());
        return;
      }
    }

    auto [it, inserted] = chosen_.try_emplace(b, chosen_here);
    if (!inserted) {
      if (!it->second.compatible(chosen_here)) {
        report("chosen value at " + b.str() + " changed incompatibly");
        return;
      }
      it->second = it->second.join(chosen_here);
    }
    const CS& v = it->second;

    // Proposition 1: everything chosen anywhere must stay compatible.
    for (const auto& [k, w] : chosen_) {
      if (!(k == b) && !w.compatible(v)) {
        report("chosen values at " + k.str() + " and " + b.str() + " incompatible");
      }
    }
    // Core invariant, backward direction: votes already recorded at rounds
    // above b must extend what we now know is chosen at b.
    for (const auto& [j, votes] : ballot_array_) {
      if (!(b < j)) continue;
      for (const auto& [a, w] : votes) {
        if (!w.extends(v)) {
          report("vote at " + j.str() + " by acceptor " + std::to_string(a) +
                 " does not extend the value chosen at lower round " + b.str());
        }
      }
    }
  }

  CS bottom_;
  paxos::QuorumSystem quorums_;
  std::map<paxos::Ballot, std::map<sim::NodeId, CS>> ballot_array_;
  std::map<paxos::Ballot, CS> chosen_;
  std::vector<std::string> violations_;
};

}  // namespace mcp::genpaxos
