#include "genpaxos/engine.hpp"

// Explicit instantiations for the c-struct sets shipped with the library:
//  - History      → Generic Broadcast (§3.3) and the KV-store SMR layer,
//  - CSet         → the commute-everything degenerate case,
//  - SingleValue  → classical consensus through the generalized engine.
// Keeping them here gives every user a compiled engine without template
// bloat in each translation unit.

namespace mcp::genpaxos {

template class GenProposer<cstruct::History>;
template class GenCoordinator<cstruct::History>;
template class GenAcceptor<cstruct::History>;
template class LearnerCore<cstruct::History>;
template class GenLearner<cstruct::History>;

template class GenProposer<cstruct::CSet>;
template class GenCoordinator<cstruct::CSet>;
template class GenAcceptor<cstruct::CSet>;
template class LearnerCore<cstruct::CSet>;
template class GenLearner<cstruct::CSet>;

template class GenProposer<cstruct::SingleValue>;
template class GenCoordinator<cstruct::SingleValue>;
template class GenAcceptor<cstruct::SingleValue>;
template class LearnerCore<cstruct::SingleValue>;
template class GenLearner<cstruct::SingleValue>;

}  // namespace mcp::genpaxos
