#pragma once

#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "cstruct/cstruct.hpp"
#include "cstruct/serialize.hpp"
#include "paxos/ballot.hpp"
#include "paxos/leader.hpp"
#include "paxos/proved_safe.hpp"
#include "paxos/quorum.hpp"
#include "paxos/round_config.hpp"
#include "paxos/wire.hpp"
#include "sim/process.hpp"
#include "sim/simulation.hpp"
#include "util/journal.hpp"

namespace mcp::genpaxos {

/// Multicoordinated Generalized Paxos (§3.2), the paper's primary
/// contribution: a single never-ending instance of Generalized Consensus
/// over an arbitrary c-struct set CS, with single-, multi-coordinated and
/// fast rounds selected by a RoundPolicy.
///
/// Baselines drop out by configuration:
///  - Generalized Paxos (§2.3)  = fast/single ladder, singleton
///    coordinator quorums (policy fast_then_single).
///  - Generic Broadcast (§3.3)  = CS = cstruct::History with a conflict
///    relation.
///  - Classical consensus       = CS = cstruct::SingleValue.
///
/// Practical-issues coverage: collision detection and recovery (§4.2,
/// acceptors jump to the next round via spontaneous 1b), liveness machinery
/// (§4.3, nacks + Ω + retransmission), and the disk-write reduction for
/// rnd[a] (§4.4, block-persisted round counters, one extra write per
/// recovery).

using cstruct::Command;

/// A flight-recorder record stamped with a round: the ballot travels as raw
/// fields (util::JournalRecord has no paxos dependency) and is reassembled
/// by the offline auditor.
inline util::JournalRecord journal_record(util::JournalKind kind,
                                          const paxos::Ballot& b) {
  util::JournalRecord rec;
  rec.kind = kind;
  rec.ballot_count = b.count;
  rec.ballot_coord = b.coord;
  rec.ballot_inc = b.coord_inc;
  rec.ballot_type = static_cast<std::uint8_t>(b.type);
  return rec;
}

// --- messages -----------------------------------------------------------------

/// Wire tags for the c-struct-templated messages: one block of four per
/// c-struct kind, so e.g. Msg2a<History> and Msg2a<CSet> decode distinctly
/// while sharing the display name (byte counters aggregate per phase).
template <cstruct::CStructT CS>
constexpr std::uint32_t cs_msg_tag(std::uint32_t phase_index) {
  return 96 + 4 * wire::CStructKind<CS>::kKind + phase_index;
}

template <cstruct::CStructT CS>
struct Msg1a {
  paxos::Ballot b;

  static constexpr std::uint32_t kTag = cs_msg_tag<CS>(0);
  static constexpr const char* kName = "gen.1a";
  void encode(wire::Writer& w) const { wire::put_ballot(w, b); }
  static Msg1a decode(wire::Reader& r, const CS&) { return {wire::get_ballot(r)}; }
};
template <cstruct::CStructT CS>
struct Msg1b {
  paxos::Ballot b;
  paxos::Ballot vrnd;
  CS vval;

  static constexpr std::uint32_t kTag = cs_msg_tag<CS>(1);
  static constexpr const char* kName = "gen.1b";
  void encode(wire::Writer& w) const {
    wire::put_ballot(w, b);
    wire::put_ballot(w, vrnd);
    wire::put_cstruct(w, vval);
  }
  static Msg1b decode(wire::Reader& r, const CS& bottom) {
    return {wire::get_ballot(r), wire::get_ballot(r), wire::get_cstruct(r, bottom)};
  }
};
/// Full-value 2a/2b carry whole c-structs that fan out to many
/// destinations; the payload is shared immutable state so an in-memory
/// multicast costs refcounts, not deep copies of the command history (on
/// the wire the whole c-struct is serialized, which is exactly the cost
/// the byte counters are meant to expose). They are the fallback of the
/// delta-encoded variants below: the first 2a/2b of a chain, and every
/// resync after a receiver reports a stale base, ship the full value.
template <cstruct::CStructT CS>
struct Msg2a {
  paxos::Ballot b;
  std::shared_ptr<const CS> val;
  /// Sender's incarnation: within one incarnation a coordinator's cval only
  /// grows, so receivers use this to order the diverging values a recovered
  /// coordinator can produce at the same round (arrival order cannot).
  int inc = 0;

  static constexpr std::uint32_t kTag = cs_msg_tag<CS>(2);
  static constexpr const char* kName = "gen.2a";
  void encode(wire::Writer& w) const {
    if (!val) throw std::logic_error("gen.2a: null payload");
    wire::put_ballot(w, b);
    w.put_signed(inc);
    wire::put_cstruct(w, *val);
  }
  static Msg2a decode(wire::Reader& r, const CS& bottom) {
    Msg2a out;
    out.b = wire::get_ballot(r);
    out.inc = static_cast<int>(r.get_signed());
    out.val = std::make_shared<const CS>(wire::get_cstruct(r, bottom));
    return out;
  }
};
template <cstruct::CStructT CS>
struct Msg2b {
  paxos::Ballot b;
  std::shared_ptr<const CS> val;

  static constexpr std::uint32_t kTag = cs_msg_tag<CS>(3);
  static constexpr const char* kName = "gen.2b";
  void encode(wire::Writer& w) const {
    if (!val) throw std::logic_error("gen.2b: null payload");
    wire::put_ballot(w, b);
    wire::put_cstruct(w, *val);
  }
  static Msg2b decode(wire::Reader& r, const CS& bottom) {
    Msg2b out;
    out.b = wire::get_ballot(r);
    out.val = std::make_shared<const CS>(wire::get_cstruct(r, bottom));
    return out;
  }
};

/// Delta-encoded 2a (the fix for the paper's §3.3 large-c-struct caveat):
/// instead of re-shipping the whole c-struct, carry only the suffix
/// relative to the value this sender previously shipped at the same round.
/// `delta.base_size` names the base by its command count — values a sender
/// ships within one incarnation of a round form an extension chain, so the
/// size identifies the base uniquely and a mismatch means the receiver's
/// cached base is stale (it answers with a resync request and the sender
/// falls back to a full 2a). The payload is command ids, not c-structs, so
/// one message type serves all three c-struct sets; kName matches Msg2a so
/// the byte counters aggregate all 2a traffic under net.bytes.gen.2a.
struct Msg2aDelta {
  paxos::Ballot b;
  int inc = 0;  ///< sender incarnation, as in Msg2a
  wire::Delta delta;

  static constexpr std::uint32_t kTag = 84;
  static constexpr const char* kName = "gen.2a";
  void encode(wire::Writer& w) const {
    wire::put_ballot(w, b);
    w.put_signed(inc);
    wire::put_delta(w, delta);
  }
  static Msg2aDelta decode(wire::Reader& r) {
    Msg2aDelta out;
    out.b = wire::get_ballot(r);
    out.inc = static_cast<int>(r.get_signed());
    out.delta = wire::get_delta(r);
    return out;
  }
};
/// Delta-encoded 2b, acceptor → learners (and the round's coordinators in
/// fast rounds). No incarnation: an acceptor persists its vote before every
/// send, so its per-round 2b values form an extension chain even across
/// its own crashes.
struct Msg2bDelta {
  paxos::Ballot b;
  wire::Delta delta;

  static constexpr std::uint32_t kTag = 85;
  static constexpr const char* kName = "gen.2b";
  void encode(wire::Writer& w) const {
    wire::put_ballot(w, b);
    wire::put_delta(w, delta);
  }
  static Msg2bDelta decode(wire::Reader& r) {
    Msg2bDelta out;
    out.b = wire::get_ballot(r);
    out.delta = wire::get_delta(r);
    return out;
  }
};
/// How an incoming delta relates to the receiver's cached base — the one
/// chain rule every delta receiver (acceptor, learner, fast-round
/// coordinator, auditor) applies. Values a sender ships within one round
/// (and, for 2a, one incarnation) form an extension chain, so sizes order
/// them: a smaller claimed base means the delta's target is already folded
/// into the cache (drop it), an equal size means the cache IS the base
/// (apply), and anything else — including no cache at all — means the
/// chain has a gap and only a full value can repair it (resync).
enum class DeltaFit { kApply, kStaleDuplicate, kResync };
inline DeltaFit delta_fit(const std::size_t* cached_size, std::uint64_t claimed_base) {
  if (cached_size == nullptr) return DeltaFit::kResync;
  if (*cached_size > claimed_base) return DeltaFit::kStaleDuplicate;
  return *cached_size == claimed_base ? DeltaFit::kApply : DeltaFit::kResync;
}

/// Receiver → 2a sender: my cached base for your deltas at round b is
/// missing or stale; re-send the full value.
struct MsgResync2a {
  paxos::Ballot b;

  static constexpr std::uint32_t kTag = 86;
  static constexpr const char* kName = "gen.resync2a";
  void encode(wire::Writer& w) const { wire::put_ballot(w, b); }
  static MsgResync2a decode(wire::Reader& r) { return {wire::get_ballot(r)}; }
};
/// Receiver → 2b sender (an acceptor): same, for the 2b chain.
struct MsgResync2b {
  paxos::Ballot b;

  static constexpr std::uint32_t kTag = 87;
  static constexpr const char* kName = "gen.resync2b";
  void encode(wire::Writer& w) const { wire::put_ballot(w, b); }
  static MsgResync2b decode(wire::Reader& r) { return {wire::get_ballot(r)}; }
};
struct MsgPropose {
  Command c;

  static constexpr std::uint32_t kTag = 80;
  static constexpr const char* kName = "gen.propose";
  void encode(wire::Writer& w) const { wire::put_command(w, c); }
  static MsgPropose decode(wire::Reader& r) { return {wire::get_command(r)}; }
};
struct MsgNack {
  paxos::Ballot heard;

  static constexpr std::uint32_t kTag = 81;
  static constexpr const char* kName = "gen.nack";
  void encode(wire::Writer& w) const { wire::put_ballot(w, heard); }
  static MsgNack decode(wire::Reader& r) { return {wire::get_ballot(r)}; }
};
/// A whole flush window of proposals in one message (the batching lever of
/// the service layer): a classic-round coordinator appends every contained
/// command and answers with a *single* 2a, and a fast-round acceptor folds
/// the group into one vote write — amortizing the per-command 2a/2b cost
/// that MsgPropose pays. Semantics per command are identical to sending
/// the same commands as individual MsgPropose back to back.
struct MsgProposeBatch {
  std::vector<Command> commands;
  /// Sampled trace id following the first traced command of the window
  /// (0 = untraced). Encoded as an optional trailing varint only when
  /// set, so untraced batches stay byte-identical to the pre-tracing
  /// format and the byte-count gates are unperturbed.
  std::uint64_t trace_id = 0;

  static constexpr std::uint32_t kTag = 88;
  static constexpr const char* kName = "gen.propose_batch";
  void encode(wire::Writer& w) const {
    wire::put_commands(w, commands);
    if (trace_id != 0) w.put_varint(trace_id);
  }
  static MsgProposeBatch decode(wire::Reader& r) {
    MsgProposeBatch m{wire::get_commands(r), 0};
    if (!r.at_end()) m.trace_id = r.get_varint();
    return m;
  }
};
/// Learner → proposer: your command is contained in the learned c-struct.
struct MsgAck {
  std::uint64_t command_id;

  static constexpr std::uint32_t kTag = 82;
  static constexpr const char* kName = "gen.ack";
  void encode(wire::Writer& w) const { w.put_varint(command_id); }
  static MsgAck decode(wire::Reader& r) { return {r.get_varint()}; }
};

/// Full generalized-engine message set for one c-struct instantiation
/// (+ heartbeats); registered by every role, including the auditor.
template <cstruct::CStructT CS>
void register_wire_messages(wire::DecoderRegistry& reg, const CS& bottom) {
  reg.add<paxos::Heartbeat>();
  reg.add<MsgPropose>();
  reg.add<MsgProposeBatch>();
  reg.add<MsgNack>();
  reg.add<MsgAck>();
  reg.add<Msg1a<CS>>(bottom);
  reg.add<Msg1b<CS>>(bottom);
  reg.add<Msg2a<CS>>(bottom);
  reg.add<Msg2b<CS>>(bottom);
  reg.add<Msg2aDelta>();
  reg.add<Msg2bDelta>();
  reg.add<MsgResync2a>();
  reg.add<MsgResync2b>();
}

// --- configuration --------------------------------------------------------------

template <cstruct::CStructT CS>
struct Config {
  std::vector<sim::NodeId> proposers;
  std::vector<sim::NodeId> acceptors;
  std::vector<sim::NodeId> learners;
  const paxos::RoundPolicy* policy = nullptr;
  int f = 0;
  int e = 0;
  /// Prototype ⊥ (carries the conflict relation for History c-structs).
  CS bottom{};

  sim::Time disk_latency = 0;
  /// Send 2a/2b as deltas relative to the last value shipped for the same
  /// round, falling back to full values on first contact, round change, or
  /// when a receiver reports a stale base. Off re-ships whole c-structs
  /// in every 2a/2b (the paper's §3.3 caveat), for ablation.
  bool delta_messages = true;
  /// §4.2 collision handling by acceptors.
  bool collision_recovery = true;
  /// §4.4: keep rnd[a] volatile, persisting only round-count blocks.
  bool reduce_rnd_writes = true;
  std::int64_t rnd_block = 8;

  bool enable_liveness = true;
  paxos::FailureDetector::Config fd;
  sim::Time retry_interval = 400;
  sim::Time progress_timeout = 900;

  paxos::QuorumSystem quorum_system() const {
    return paxos::QuorumSystem(acceptors, f, e);
  }
};

// --- proposer ---------------------------------------------------------------------

/// Proposes a stream of commands; each is retransmitted until a learner
/// acknowledges that it is contained in the learned c-struct.
template <cstruct::CStructT CS>
class GenProposer final : public sim::Process {
 public:
  explicit GenProposer(const Config<CS>& config) : config_(config) {
    register_wire_messages(decoders(), config.bottom);
  }

  std::string role() const override { return "proposer"; }

  /// Submit a command (callable from Simulation::at closures).
  void propose(Command c) {
    c.proposer = id();
    pending_.emplace(c.id, c);
    send_proposal(c);
    if (config_.enable_liveness && !retry_armed_) {
      retry_armed_ = true;
      set_timer(config_.retry_interval, 0);
    }
  }

  void on_timer(int) override {
    retry_armed_ = false;
    if (pending_.empty()) return;
    for (const auto& [cid, c] : pending_) send_proposal(c);
    retry_armed_ = true;
    set_timer(config_.retry_interval, 0);
  }

  void on_message(sim::NodeId, const std::any& m) override {
    if (const auto* ack = std::any_cast<MsgAck>(&m)) {
      if (pending_.erase(ack->command_id) > 0) ++delivered_;
    }
  }

  std::size_t pending_count() const { return pending_.size(); }
  std::size_t delivered_count() const { return delivered_; }

 private:
  void send_proposal(const Command& c) {
    multicast(config_.policy->all_coordinators(), MsgPropose{c});
    multicast(config_.acceptors, MsgPropose{c});  // fast-round path
    sim().metrics().incr("gen.proposals_sent");
  }

  const Config<CS>& config_;
  std::map<std::uint64_t, Command> pending_;
  std::size_t delivered_ = 0;
  bool retry_armed_ = false;
};

// --- coordinator --------------------------------------------------------------------

template <cstruct::CStructT CS>
class GenCoordinator final : public sim::Process {
 public:
  explicit GenCoordinator(const Config<CS>& config)
      : config_(config),
        quorums_(config.quorum_system()),
        fd_(*this, config.policy->all_coordinators(), config.fd) {
    register_wire_messages(decoders(), config.bottom);
  }

  std::string role() const override { return "coordinator"; }
  sim::NodeId leader_hint() const override {
    return crnd_.is_zero() ? sim::kNoNode : crnd_.coord;
  }

  void on_start() override {
    if (config_.enable_liveness) {
      fd_.start();
      set_timer(config_.progress_timeout, kProgressToken);
    }
    maybe_lead();
  }

  void on_recover() override {
    // §4.4: a coordinator keeps nothing on stable storage; after recovery
    // it is a fresh identity (bumped incarnation in its ballots).
    crnd_ = paxos::Ballot::zero();
    cval_.reset();
    last_2a_.reset();
    promises_.clear();
    proposals_.clear();
    on_start();
  }

  const paxos::Ballot& crnd() const { return crnd_; }
  const std::optional<CS>& cval() const { return cval_; }

  void on_timer(int token) override {
    if (fd_.handle_timer(token)) return;
    if (token != kProgressToken) return;
    if (is_leader()) {
      if (crnd_.is_zero() ||
          (!cval_ && now() - round_started_at_ >= config_.progress_timeout)) {
        // No active round, or phase 1 stuck: move on.
        start_round(crnd_.count + 1);
      } else if (cval_) {
        // Retransmit the latest 2a so lossy links cannot stall the round.
        send_2a();
      }
    }
    set_timer(config_.progress_timeout, kProgressToken);
  }

  void on_message(sim::NodeId from, const std::any& m) override {
    if (fd_.handle_message(from, m)) {
      maybe_lead();
      return;
    }
    if (const auto* p = std::any_cast<MsgPropose>(&m)) {
      handle_propose(p->c);
      return;
    }
    if (const auto* batch = std::any_cast<MsgProposeBatch>(&m)) {
      handle_propose_batch(*batch);
      return;
    }
    if (const auto* p1b = std::any_cast<Msg1b<CS>>(&m)) {
      handle_1b(from, *p1b);
      return;
    }
    if (const auto* p2b = std::any_cast<Msg2b<CS>>(&m)) {
      handle_2b(from, p2b->b, *p2b->val);
      return;
    }
    if (const auto* d2b = std::any_cast<Msg2bDelta>(&m)) {
      handle_2b_delta(from, *d2b);
      return;
    }
    if (const auto* rs = std::any_cast<MsgResync2a>(&m)) {
      // An acceptor lost track of our 2a chain (first contact after its
      // recovery, or a lost delta): re-send the full value, off-chain.
      if (rs->b == crnd_ && cval_) {
        sim().metrics().incr("gen.2a_resyncs");
        send(from, Msg2a<CS>{crnd_, std::make_shared<const CS>(*cval_), incarnation()});
      }
      return;
    }
    if (const auto* nack = std::any_cast<MsgNack>(&m)) {
      if (nack->heard.count > crnd_.count && is_leader()) {
        start_round(nack->heard.count + 1);
      }
      return;
    }
  }

 private:
  static constexpr int kProgressToken = 1;

  /// Fast-round collision detection (§4.3): acceptors accepting
  /// incompatible c-structs can wedge the round; the leader notices from
  /// the 2b traffic and starts the next (classic) round to resolve it.
  void handle_2b(sim::NodeId from, const paxos::Ballot& b, const CS& val) {
    if (b != crnd_ || !crnd_.is_fast()) return;
    auto it = fast_votes_.find(from);
    if (it == fast_votes_.end()) {
      fast_votes_.emplace(from, val);
    } else if (val.extends(it->second)) {
      it->second = val;
    }
    for (const auto& [a, v] : fast_votes_) {
      if (!v.compatible(val)) {
        sim().metrics().incr("gen.fast_collisions_detected");
        start_round(crnd_.count + 1);
        return;
      }
    }
  }

  void handle_2b_delta(sim::NodeId from, const Msg2bDelta& d) {
    if (d.b != crnd_ || !crnd_.is_fast()) return;
    const auto it = fast_votes_.find(from);
    const std::size_t cached = it != fast_votes_.end() ? it->second.size() : 0;
    switch (delta_fit(it != fast_votes_.end() ? &cached : nullptr, d.delta.base_size)) {
      case DeltaFit::kStaleDuplicate:
        return;
      case DeltaFit::kResync:
        // Monitoring gap (we joined the fast round after this acceptor's
        // first 2b, or a delta was lost): ask for the full vote.
        sim().metrics().incr("gen.2b_resync_requests");
        send(from, MsgResync2b{d.b});
        return;
      case DeltaFit::kApply:
        break;
    }
    CS next = it->second;
    next.apply_suffix(d.delta.suffix);
    handle_2b(from, d.b, next);
  }

  bool is_leader() const {
    if (!config_.enable_liveness) return id() == config_.policy->all_coordinators().front();
    return fd_.leader() == id();
  }

  void maybe_lead() {
    if (crnd_.is_zero() && is_leader()) start_round(1);
  }

  void start_round(std::int64_t count) {
    if (count <= crnd_.count) count = crnd_.count + 1;
    join_round(config_.policy->make_ballot(count, id(), incarnation()));
    sim().metrics().incr("gen.rounds_started");
    multicast(config_.acceptors, Msg1a<CS>{crnd_});
  }

  void join_round(const paxos::Ballot& b) {
    crnd_ = b;
    cval_.reset();
    last_2a_.reset();
    promises_.clear();
    fast_votes_.clear();
    round_started_at_ = now();
    if (journaling()) {
      auto rec = journal_record(util::JournalKind::kRoundStart, b);
      rec.b = static_cast<std::uint64_t>(incarnation());
      journal_event(std::move(rec));
    }
  }

  void handle_propose(const Command& c) {
    proposals_.emplace(c.id, c);
    sim().metrics().incr("coord." + std::to_string(id()) + ".proposals");
    if (!cval_ || !crnd_.is_classic()) return;
    if (cval_->contains(c)) {
      if (config_.enable_liveness) send_2a();  // retransmission for stragglers
      return;
    }
    // Phase2aClassic: extend cval with the new command and forward it.
    cval_->append(c);
    send_2a();
  }

  /// Batched Phase2aClassic: one 2a for the whole group, so a flush window
  /// of N service commands costs one delta message instead of N.
  void handle_propose_batch(const MsgProposeBatch& batch) {
    const std::vector<Command>& cs = batch.commands;
    bool appended = false;
    for (const Command& c : cs) {
      proposals_.emplace(c.id, c);
      if (cval_ && crnd_.is_classic() && !cval_->contains(c)) {
        cval_->append(c);
        appended = true;
      }
    }
    sim().metrics().incr("coord." + std::to_string(id()) + ".proposals",
                         static_cast<std::int64_t>(cs.size()));
    if (!cval_ || !crnd_.is_classic()) return;
    // All already contained: a whole-batch retransmission from a frontend
    // that missed its replies; re-send the (empty-delta) 2a as for a single
    // contained MsgPropose.
    if (appended || config_.enable_liveness) {
      send_2a();
      if (batch.trace_id != 0) {
        trace_point(util::TracePoint::kCoord2a, batch.trace_id, cs.size());
      }
    }
  }

  void handle_1b(sim::NodeId from, const Msg1b<CS>& p1b) {
    // 1b for a higher round we coordinate: join it (normal phase 1 answer
    // or a §4.2 collision jump, which skips the explicit 1a).
    if (p1b.b.count > crnd_.count && config_.policy->info(p1b.b).is_coord(id())) {
      join_round(p1b.b);
    }
    if (p1b.b != crnd_ || cval_) return;
    promises_[from] = paxos::VoteReport<CS>{from, p1b.vrnd, p1b.vval};
    if (promises_.size() < quorums_.quorum_size(crnd_)) return;
    phase2_start();
  }

  /// Phase2Start: pick a safe value, extend it with everything proposed so
  /// far, and send the first 2a of the round.
  void phase2_start() {
    std::vector<paxos::VoteReport<CS>> reports;
    reports.reserve(promises_.size());
    for (const auto& [acc, r] : promises_) reports.push_back(r);
    std::vector<CS> safe = paxos::proved_safe(quorums_, reports);
    // Any element is pickable; keep the one with the most commands so the
    // least work is redone.
    CS picked = safe.front();
    for (const CS& v : safe) {
      if (v.size() > picked.size()) picked = v;
    }
    if (crnd_.is_classic()) {
      // Commands are appended in id order: deterministic across the
      // coordinators of a multicoordinated round, so identical proposal
      // sets yield identical (collision-free) 2a values.
      for (const auto& [cid, c] : proposals_) picked.append(c);
    }
    cval_ = picked;
    sim().metrics().incr("gen.phase2_starts");
    send_2a();
  }

  /// Ship cval to the acceptors: as the suffix since the round's previous
  /// 2a when possible (cval only grows within a round, so retransmissions
  /// become empty deltas), as the full value on the first 2a of a round.
  void send_2a() {
    sim().metrics().incr("coord." + std::to_string(id()) + ".2a_sent");
    if (journaling()) {
      auto rec = journal_record(util::JournalKind::kPhase2a, crnd_);
      rec.a = static_cast<std::uint64_t>(cval_->size());
      rec.b = static_cast<std::uint64_t>(incarnation());
      journal_event(std::move(rec));
    }
    if (config_.delta_messages && last_2a_) {
      if (auto suffix = cval_->suffix_after(*last_2a_)) {
        sim().metrics().incr("gen.2a_delta_sent");
        multicast(config_.acceptors,
                  Msg2aDelta{crnd_, incarnation(),
                             wire::Delta{last_2a_->size(), std::move(*suffix)}});
        last_2a_ = *cval_;
        return;
      }
    }
    sim().metrics().incr("gen.2a_full_sent");
    multicast(config_.acceptors,
              Msg2a<CS>{crnd_, std::make_shared<const CS>(*cval_), incarnation()});
    last_2a_ = *cval_;
  }

  const Config<CS>& config_;
  paxos::QuorumSystem quorums_;
  paxos::FailureDetector fd_;

  paxos::Ballot crnd_;
  std::optional<CS> cval_;   ///< engaged once Phase2Start ran for crnd_
  std::optional<CS> last_2a_;  ///< value carried by the round's latest 2a multicast
  std::map<sim::NodeId, paxos::VoteReport<CS>> promises_;
  std::map<std::uint64_t, Command> proposals_;
  std::map<sim::NodeId, CS> fast_votes_;  ///< fast-round collision monitor
  sim::Time round_started_at_ = 0;
};

// --- acceptor -----------------------------------------------------------------------

template <cstruct::CStructT CS>
class GenAcceptor final : public sim::Process {
 public:
  explicit GenAcceptor(const Config<CS>& config)
      : config_(config),
        quorums_(config.quorum_system()),
        vval_(config.bottom) {
    storage().set_write_latency(config.disk_latency);
    register_wire_messages(decoders(), config.bottom);
  }

  std::string role() const override { return "acceptor"; }
  /// An acceptor's best leadership guess is whoever owns the highest round
  /// it has joined.
  sim::NodeId leader_hint() const override {
    return rnd_.is_zero() ? sim::kNoNode : rnd_.coord;
  }

  const paxos::Ballot& rnd() const { return rnd_; }
  const paxos::Ballot& vrnd() const { return vrnd_; }
  const CS& vval() const { return vval_; }
  /// Per-ballot bookkeeping entries currently held (2a tracking and
  /// collision flags). Stays O(1) over a run because join() prunes every
  /// round below rnd_; grows without bound if that pruning regresses.
  std::size_t tracked_round_states() const { return twoa_.size() + collided_.size(); }
  /// Fast-path proposals awaiting a fast round; pruned of accepted
  /// commands on the retry timer, so a long-running classic-round service
  /// cluster holds only in-flight proposals here.
  std::size_t pending_proposals() const { return pending_.size(); }

  void on_start() override {
    if (config_.enable_liveness) set_timer(config_.retry_interval, kRetryToken);
  }

  void on_timer(int token) override {
    if (token != kRetryToken) return;
    // The paper's liveness rule: keep re-sending the last message. A lost
    // 2b otherwise starves a learner forever once the value stops growing.
    // With deltas on this is an empty delta; a learner that missed a
    // previous 2b answers with a resync request and gets the full value.
    if (!vrnd_.is_zero()) transmit_2b(/*to_fast_coords=*/false, 0);
    // Bound pending_: a proposal folded into the accepted value can never
    // be appended again (drain_pending_fast skips contained commands), so
    // under a service workload — every proposal multicast to acceptors for
    // the fast path, rounds mostly classic — the map would otherwise grow
    // for the cluster's whole lifetime. Amortized here, off the accept hot
    // path.
    for (auto it = pending_.begin(); it != pending_.end();) {
      it = vval_.contains(it->second) ? pending_.erase(it) : std::next(it);
    }
    set_timer(config_.retry_interval, kRetryToken);
  }

  void on_recover() override {
    on_start();
    // Votes are on disk (they are the system's memory); rnd is restored
    // conservatively from its persisted block (§4.4): strictly above
    // anything we may have promised before crashing.
    if (auto s = storage().read("vrnd")) vrnd_ = paxos::decode_ballot(*s);
    if (auto s = storage().read("vval")) vval_ = cstruct::decode(config_.bottom, *s);
    if (config_.reduce_rnd_writes) {
      const std::int64_t block = storage().read_int("rnd_block").value_or(0);
      rnd_ = paxos::Ballot{(block + 1) * config_.rnd_block,
                           std::numeric_limits<sim::NodeId>::max(),
                           std::numeric_limits<int>::max(), paxos::RoundType::kSingleCoord};
      persist_rnd_block(rnd_.count);  // the one extra write per recovery
    } else if (auto s = storage().read("rnd")) {
      rnd_ = paxos::decode_ballot(*s);
    }
    twoa_.clear();
    collided_.clear();
    pending_.clear();
    trace_pending_.clear();
    // The 2b chain cache is volatile: the next 2b after recovery goes out
    // full. (The persisted vval is an extension of everything ever sent,
    // so receivers could follow a delta — but only a cached base proves it.)
    last_2b_.reset();
  }

  void on_message(sim::NodeId from, const std::any& m) override {
    if (const auto* p = std::any_cast<MsgPropose>(&m)) {
      handle_propose(p->c);
      return;
    }
    if (const auto* batch = std::any_cast<MsgProposeBatch>(&m)) {
      // Fast-round path of the batch: every command lands in pending_ and
      // the whole group is absorbed by one vote write / one 2b.
      if (batch->trace_id != 0 && sim().trace().enabled() &&
          !batch->commands.empty() && trace_pending_.size() < 64) {
        // The batch's first command stands in for the traced window: its
        // vote write is the one the traced command rides.
        trace_pending_.emplace_back(batch->commands.front(), batch->trace_id);
      }
      for (const Command& c : batch->commands) pending_.emplace(c.id, c);
      drain_pending_fast();
      return;
    }
    if (const auto* p1a = std::any_cast<Msg1a<CS>>(&m)) {
      handle_1a(from, p1a->b);
      return;
    }
    if (const auto* p2a = std::any_cast<Msg2a<CS>>(&m)) {
      handle_2a(from, *p2a);
      return;
    }
    if (const auto* d2a = std::any_cast<Msg2aDelta>(&m)) {
      handle_2a_delta(from, *d2a);
      return;
    }
    if (std::any_cast<MsgResync2b>(&m) != nullptr) {
      // A learner (or fast-round coordinator) lost track of our 2b chain:
      // re-send the full vote, off-chain, to the requester only.
      if (!vrnd_.is_zero()) {
        sim().metrics().incr("gen.2b_resyncs");
        send(from, Msg2b<CS>{vrnd_, std::make_shared<const CS>(vval_)});
      }
      return;
    }
  }

 private:
  static constexpr int kRetryToken = 2;

  /// Last 2a received per (round, coordinator): the protocol state behind
  /// Phase2bClassic and the base of the coordinator's delta chain.
  struct TwoA {
    int inc = 0;  ///< sender incarnation that produced val
    CS val;
  };

  std::string me() const { return "acceptor." + std::to_string(id()); }

  /// Advance rnd (volatile) and persist it per the §4.4 block policy.
  void join(const paxos::Ballot& b) {
    if (b <= rnd_) return;
    rnd_ = b;
    // Stale-round state: 2a bookkeeping and collision flags for rounds
    // below rnd_ can never be read again (handle_2a nacks such rounds), so
    // drop them — otherwise the per-ballot maps grow for the whole run.
    twoa_.erase(twoa_.begin(), twoa_.lower_bound(rnd_));
    collided_.erase(collided_.begin(), collided_.lower_bound(rnd_));
    if (config_.reduce_rnd_writes) {
      persist_rnd_block(b.count);
    } else {
      storage().write("rnd", paxos::encode(rnd_));
      sim().metrics().incr(me() + ".disk_writes");
    }
    if (journaling()) {
      auto rec = journal_record(util::JournalKind::kJoin, b);
      rec.b = static_cast<std::uint64_t>(incarnation());
      journal_event(std::move(rec));
    }
  }

  void persist_rnd_block(std::int64_t count) {
    const std::int64_t block = count / std::max<std::int64_t>(1, config_.rnd_block);
    if (storage().read_int("rnd_block").value_or(-1) == block) return;  // volatile-only
    storage().write_int("rnd_block", block);
    sim().metrics().incr(me() + ".disk_writes");
  }

  /// Durable vote: the write every accepted value costs (§4.4).
  sim::Time persist_vote() {
    storage().write("vrnd", paxos::encode(vrnd_));
    const sim::Time lat = storage().write("vval", cstruct::encode(vval_));
    sim().metrics().incr(me() + ".disk_writes");
    sim().metrics().incr(me() + ".accepts");
    return lat;
  }

  /// Ship the current vote to the learners (and, in fast rounds, the
  /// round's coordinators, which monitor 2b traffic for collisions — §4.3)
  /// as the suffix since the last 2b of this round when possible (vval
  /// only grows within a round), full otherwise. The message is built once
  /// for all audiences: the suffix computation is O(history) and the full
  /// payload is shared immutable state, so a fast-round fan-out costs
  /// refcounts, not extra passes. Does not advance the chain cache —
  /// send_2b does, once per new value, so retransmissions reuse the base.
  void transmit_2b(bool to_fast_coords, sim::Time lat) {
    if (config_.delta_messages && last_2b_ && last_2b_rnd_ == vrnd_) {
      if (auto suffix = vval_.suffix_after(*last_2b_)) {
        sim().metrics().incr("gen.2b_delta_sent");
        const Msg2bDelta d{vrnd_, wire::Delta{last_2b_->size(), std::move(*suffix)}};
        multicast_after_sync(config_.learners, d, lat);
        if (to_fast_coords) {
          multicast_after_sync(config_.policy->info(vrnd_).coordinators, d, lat);
        }
        return;
      }
    }
    sim().metrics().incr("gen.2b_full_sent");
    const auto payload = std::make_shared<const CS>(vval_);
    multicast_after_sync(config_.learners, Msg2b<CS>{vrnd_, payload}, lat);
    if (to_fast_coords) {
      multicast_after_sync(config_.policy->info(vrnd_).coordinators,
                           Msg2b<CS>{vrnd_, payload}, lat);
    }
  }

  void send_2b() {
    const sim::Time lat = persist_vote();
    if (journaling()) {
      // The auditable ballot-array entry. The full vval is O(history) per
      // vote — journaled every time, an acceptor's journal grows
      // quadratically and the writes (plus segment-rotation fsyncs) land
      // on the event loop. So mirror transmit_2b: journal the suffix
      // since the previous 2b of this round when one exists, and a full
      // value every kJournal2bRefresh votes to re-anchor the chain — a
      // pruned segment then orphans at most that many deltas.
      auto rec = journal_record(util::JournalKind::kPhase2b, vrnd_);
      rec.a = static_cast<std::uint64_t>(vval_.size());
      rec.b = static_cast<std::uint64_t>(incarnation());
      if (journal_2b_since_full_ < kJournal2bRefresh && last_2b_ &&
          last_2b_rnd_ == vrnd_) {
        if (auto suffix = vval_.suffix_after(*last_2b_)) {
          rec.kind = util::JournalKind::kPhase2bDelta;
          rec.payload = cstruct::encode(*suffix);
        }
      }
      if (rec.kind == util::JournalKind::kPhase2bDelta) {
        ++journal_2b_since_full_;
      } else {
        rec.payload = cstruct::encode(vval_);
        journal_2b_since_full_ = 0;
      }
      journal_event(std::move(rec));
    }
    transmit_2b(vrnd_.is_fast(), lat);
    last_2b_ = vval_;
    last_2b_rnd_ = vrnd_;
    // Traced batches whose command this vote now covers: mark the
    // persisted-and-shipped point (arg = the modelled fsync latency).
    for (auto it = trace_pending_.begin(); it != trace_pending_.end();) {
      if (vval_.contains(it->first)) {
        trace_point(util::TracePoint::kAcceptorVote, it->second,
                    static_cast<std::uint64_t>(lat));
        it = trace_pending_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void handle_1a(sim::NodeId from, const paxos::Ballot& b) {
    if (b > rnd_) {
      join(b);
      multicast_after_sync(config_.policy->info(b).coordinators,
                           Msg1b<CS>{b, vrnd_, vval_}, storage().write_latency());
    } else if (b == rnd_) {
      multicast(config_.policy->info(b).coordinators, Msg1b<CS>{b, vrnd_, vval_});
    } else {
      send(from, MsgNack{rnd_});
    }
  }

  void handle_propose(const Command& c) {
    pending_.emplace(c.id, c);
    drain_pending_fast();
  }

  /// Phase2bFast: while vrnd = rnd and the round is fast, every known
  /// proposal can be appended (including ones that arrived before we joined
  /// the round). Batches all outstanding proposals into one vote write.
  void drain_pending_fast() {
    if (!rnd_.is_fast() || vrnd_ != rnd_) return;
    bool changed = false;
    for (const auto& [cid, c] : pending_) {
      if (!vval_.contains(c)) {
        vval_.append(c);
        changed = true;
        sim().metrics().incr("gen.fast_accepts");
      }
    }
    if (changed) send_2b();
  }

  void handle_2a(sim::NodeId from, const Msg2a<CS>& p2a) {
    if (p2a.b < rnd_) {
      send(from, MsgNack{rnd_});
      return;
    }
    accept_2a(from, p2a.b, p2a.inc, *p2a.val);
  }

  void handle_2a_delta(sim::NodeId from, const Msg2aDelta& d) {
    if (d.b < rnd_) {
      send(from, MsgNack{rnd_});
      return;
    }
    const auto bit = twoa_.find(d.b);
    const TwoA* base = nullptr;
    if (bit != twoa_.end()) {
      const auto it = bit->second.find(from);
      if (it != bit->second.end()) base = &it->second;
    }
    // The 2a chain is additionally keyed by the sender's incarnation: a
    // delta from an older incarnation is a pre-recovery straggler (drop),
    // one from a newer incarnation has no base here yet (resync).
    if (base != nullptr && d.inc < base->inc) return;
    const std::size_t cached = base != nullptr ? base->val.size() : 0;
    const bool same_inc = base != nullptr && d.inc == base->inc;
    switch (delta_fit(same_inc ? &cached : nullptr, d.delta.base_size)) {
      case DeltaFit::kStaleDuplicate:
        return;
      case DeltaFit::kResync:
        sim().metrics().incr("gen.2a_resync_requests");
        send(from, MsgResync2a{d.b});
        return;
      case DeltaFit::kApply:
        break;
    }
    CS next = base->val;
    next.apply_suffix(d.delta.suffix);
    accept_2a(from, d.b, d.inc, std::move(next));
  }

  void accept_2a(sim::NodeId from, const paxos::Ballot& b, int inc, CS val) {
    join(b);
    auto& received = twoa_[b];
    auto it = received.find(from);
    if (it == received.end()) {
      received.emplace(from, TwoA{inc, std::move(val)});
    } else if (inc < it->second.inc) {
      return;  // straggler from before the coordinator's crash: ignore
    } else {
      const bool diverged =
          !val.extends(it->second.val) && !it->second.val.extends(val);
      if (diverged) {
        // Neither value extends the other: the coordinator diverged across
        // a recovery (same incarnation cannot — cval only grows). Counted
        // so runs exercising this path are observable.
        sim().metrics().incr("gen.2a_divergence");
      }
      if (inc > it->second.inc || val.extends(it->second.val)) {
        // A newer incarnation always wins; within one, keep the extension.
        it->second = TwoA{inc, std::move(val)};
      } else if (diverged) {
        // Same incarnation yet diverged — not a correct coordinator; keep
        // the newer arrival, as before, so the run stays live.
        it->second = TwoA{inc, std::move(val)};
      }
      // else: stale retransmission (stored already extends val) — keep.
    }
    evaluate_2a(b);
  }

  /// Phase2bClassic (§3.2): accept the richest value supported by some
  /// quorum of the round's coordinators, and run §4.2 collision detection.
  void evaluate_2a(const paxos::Ballot& b) {
    const paxos::RoundInfo info = config_.policy->info(b);
    const auto& received = twoa_[b];
    if (received.size() < info.coord_quorum_size) return;

    // Collision detection first: any incompatible pair of forwarded values
    // in a classic round can wedge it.
    if (b.is_classic() && config_.collision_recovery && !collided_.count(b)) {
      for (auto i1 = received.begin(); i1 != received.end(); ++i1) {
        for (auto i2 = std::next(i1); i2 != received.end(); ++i2) {
          if (!i1->second.val.compatible(i2->second.val)) {
            collided_.insert(b);
            collision_jump(b);
            return;
          }
        }
      }
    }

    // Candidate value: the join of the glbs over every coordinator quorum
    // we have heard in full, restricted to those compatible with what we
    // already accepted at this round.
    std::vector<CS> vals;
    vals.reserve(received.size());
    for (const auto& [c, v] : received) vals.push_back(v.val);
    std::optional<CS> u;
    for (const auto& subset : paxos::combinations(vals.size(), info.coord_quorum_size)) {
      std::vector<CS> quorum_vals;
      quorum_vals.reserve(subset.size());
      for (std::size_t idx : subset) quorum_vals.push_back(vals[idx]);
      CS m = cstruct::meet_all(quorum_vals);
      if (vrnd_ == b && !vval_.compatible(m)) continue;
      if (u && !u->compatible(m)) continue;
      u = u ? u->join(m) : m;
    }
    if (!u) return;

    if (vrnd_ < b) {
      vrnd_ = b;
      vval_ = *u;
      sim().metrics().incr("gen.classic_accepts");
      send_2b();
    } else if (vrnd_ == b && !vval_.extends(*u)) {
      vval_ = vval_.join(*u);
      sim().metrics().incr("gen.classic_accepts");
      send_2b();
    }
    drain_pending_fast();  // fast rounds: absorb proposals seen before joining
  }

  void collision_jump(const paxos::Ballot& collided) {
    sim().metrics().incr("gen.collisions_detected");
    const paxos::Ballot next =
        config_.policy->make_ballot(collided.count + 1, collided.coord, collided.coord_inc);
    if (next <= rnd_) return;
    join(next);
    multicast(config_.policy->info(next).coordinators, Msg1b<CS>{next, vrnd_, vval_});
  }

  const Config<CS>& config_;
  paxos::QuorumSystem quorums_;
  paxos::Ballot rnd_;
  paxos::Ballot vrnd_;
  CS vval_;
  std::optional<CS> last_2b_;   ///< value carried by the latest send_2b
  paxos::Ballot last_2b_rnd_;   ///< round last_2b_ was sent at
  /// Delta 2b journal records since the last full one (see send_2b).
  static constexpr std::size_t kJournal2bRefresh = 64;
  std::size_t journal_2b_since_full_ = 0;
  std::map<std::uint64_t, Command> pending_;
  std::map<paxos::Ballot, std::map<sim::NodeId, TwoA>> twoa_;
  std::set<paxos::Ballot> collided_;
  /// Traced batches awaiting their covering vote (bounded; only populated
  /// while tracing is enabled): representative command -> trace id.
  std::vector<std::pair<Command, std::uint64_t>> trace_pending_;
};

// --- learner -------------------------------------------------------------------------

/// The learner role as a host-agnostic component: everything GenLearner
/// does — vote folding, delta/resync handling, ack bookkeeping — driven
/// through the public helpers of the process that owns it. Exists so a
/// process combining roles (the service frontend is a proposer, a learner
/// and a replica in one node) reuses the identical learning logic the
/// standalone GenLearner runs, the same way paxos::FailureDetector is
/// embedded rather than hosted.
///
/// Listeners registered with add_listener fire synchronously whenever
/// learned() grows — the notification that replaced smr::Replica's timer
/// polling, so apply latency is no longer quantized by a poll interval.
template <cstruct::CStructT CS>
class LearnerCore {
 public:
  LearnerCore(sim::Process& self, const Config<CS>& config)
      : self_(self),
        config_(config),
        quorums_(config.quorum_system()),
        acceptor_ids_(config.acceptors.begin(), config.acceptors.end()),
        learned_(config.bottom) {}

  const CS& learned() const { return learned_; }
  /// First simulated time each command id appeared in learned().
  const std::map<std::uint64_t, sim::Time>& learn_times() const { return learn_times_; }
  /// Rounds with vote state currently tracked; bounded over a run because
  /// ingest_2b prunes every round below the latest quorum-complete one.
  std::size_t tracked_vote_rounds() const { return votes_.size(); }

  /// Invoked (synchronously, possibly several times per message) right
  /// after learned() grew. Read learned() for the new state.
  void add_listener(std::function<void()> listener) {
    listeners_.push_back(std::move(listener));
  }

  /// Consensus group stamped onto this core's own outbound messages
  /// (resync requests, acks). Defaults to the owning process's group; a
  /// process embedding one core per shard (the sharded frontend) sets each
  /// core's group explicitly so acceptors route the replies back to the
  /// right stream.
  void set_wire_group(std::uint32_t group) { wire_group_ = group; }

  /// Consume a learner message; false when `m` is not one (the owning
  /// process handles it instead). Votes are only accepted from configured
  /// acceptors: ingest_2b counts *distinct senders* toward quorums, so
  /// without this check any connection that can reach the process — on a
  /// live node, a handshake-less client connection with a synthetic id —
  /// could forge quorum members and make the learner "learn" a value no
  /// real quorum accepted.
  bool handle_message(sim::NodeId from, const std::any& m) {
    if (const auto* d2b = std::any_cast<Msg2bDelta>(&m)) {
      if (!is_acceptor(from)) return true;  // consumed, not counted
      handle_2b_delta(from, *d2b);
      return true;
    }
    if (const auto* p2b = std::any_cast<Msg2b<CS>>(&m)) {
      if (!is_acceptor(from)) return true;
      ingest_2b(from, p2b->b, *p2b->val);
      return true;
    }
    return false;
  }

 private:
  /// Apply a delta 2b to the cached vote it extends; if we never saw the
  /// base (first contact or a lost delta), ask the acceptor for the full
  /// vote instead.
  void handle_2b_delta(sim::NodeId from, const Msg2bDelta& d) {
    const CS* base = nullptr;
    if (const auto bit = votes_.find(d.b); bit != votes_.end()) {
      if (const auto it = bit->second.find(from); it != bit->second.end()) {
        base = &it->second;
      }
    }
    const std::size_t cached = base != nullptr ? base->size() : 0;
    switch (delta_fit(base != nullptr ? &cached : nullptr, d.delta.base_size)) {
      case DeltaFit::kStaleDuplicate:
        return;
      case DeltaFit::kResync:
        self_.sim().metrics().incr("gen.2b_resync_requests");
        self_.send_group(wire_group(), from, MsgResync2b{d.b});
        return;
      case DeltaFit::kApply:
        break;
    }
    CS next = *base;
    next.apply_suffix(d.delta.suffix);
    ingest_2b(from, d.b, std::move(next));
  }

  void ingest_2b(sim::NodeId from, const paxos::Ballot& b, CS val) {
    auto& votes = votes_[b];
    auto it = votes.find(from);
    if (it == votes.end()) {
      votes.emplace(from, std::move(val));
    } else if (val.extends(it->second)) {
      it->second = std::move(val);
    } else {
      return;  // stale retransmission
    }
    const std::size_t q = quorums_.quorum_size(b);
    if (votes.size() < q) return;

    // Learn(l): anything accepted (as a prefix) by a whole quorum is
    // chosen; fold the glb of every quorum into the learned c-struct.
    std::vector<CS> vals;
    vals.reserve(votes.size());
    for (const auto& [a, v] : votes) vals.push_back(v);
    for (const auto& subset : paxos::combinations(vals.size(), q)) {
      std::vector<CS> quorum_vals;
      quorum_vals.reserve(subset.size());
      for (std::size_t idx : subset) quorum_vals.push_back(vals[idx]);
      const CS chosen = cstruct::meet_all(quorum_vals);
      if (!learned_.compatible(chosen)) {
        // Would contradict Proposition 1; any occurrence is an engine bug.
        throw std::logic_error("genpaxos: learned values incompatible (consistency violated)");
      }
      learned_ = learned_.join(chosen);
    }
    note_new_commands();
    // Stale-round state: once a whole b-quorum voted at b, anything chosen
    // at a lower round is subsumed by the fold above (values accepted at b
    // are safe, i.e. extend everything choosable below — Definition 5), so
    // the per-ballot vote maps below b are dead state. Dropping them also
    // drops the delta bases of stragglers still voting at old rounds; a
    // late delta 2b from one triggers a resync, not a wrong apply.
    votes_.erase(votes_.begin(), votes_.find(b));
  }

  void note_new_commands() {
    const std::size_t n = learned_.size();
    if (n == acked_.size()) return;
    self_.sim().metrics().incr("gen.commands_learned",
                               static_cast<std::int64_t>(n - acked_.size()));
    const bool journaling = self_.journaling();
    std::vector<Command> fresh;
    for_each_command(learned_, [&](const Command& c) {
      if (acked_.insert(c.id).second) {
        learn_times_[c.id] = self_.now();
        if (journaling) fresh.push_back(c);
        if (c.proposer >= 0) self_.send_group(wire_group(), c.proposer, MsgAck{c.id});
      }
    });
    if (journaling && !fresh.empty()) {
      // Only the newly learned suffix rides the journal; the offline
      // auditor concatenates per-node kLearn payloads back into the
      // learned-prefix sequence.
      util::JournalRecord rec;
      rec.kind = util::JournalKind::kLearn;
      rec.a = static_cast<std::uint64_t>(learned_.size());
      rec.payload = cstruct::encode(fresh);
      self_.journal_event(std::move(rec), wire_group());
    }
    for (const auto& listener : listeners_) listener();
  }

  template <typename F>
  static void for_each_command(const cstruct::History& h, F&& f) {
    for (const Command& c : h.sequence()) f(c);
  }
  template <typename F>
  static void for_each_command(const cstruct::CSet& s, F&& f) {
    for (const Command& c : s.commands()) f(c);
  }
  template <typename F>
  static void for_each_command(const cstruct::SingleValue& v, F&& f) {
    if (v.value()) f(*v.value());
  }

  bool is_acceptor(sim::NodeId from) const {
    if (acceptor_ids_.count(from) != 0) return true;
    self_.sim().metrics().incr("gen.2b_from_non_acceptor");
    return false;
  }

  std::uint32_t wire_group() const { return wire_group_.value_or(self_.group()); }

  sim::Process& self_;
  const Config<CS>& config_;
  paxos::QuorumSystem quorums_;
  std::set<sim::NodeId> acceptor_ids_;
  CS learned_;
  std::map<paxos::Ballot, std::map<sim::NodeId, CS>> votes_;
  std::set<std::uint64_t> acked_;
  std::map<std::uint64_t, sim::Time> learn_times_;
  std::vector<std::function<void()>> listeners_;
  std::optional<std::uint32_t> wire_group_;
};

/// The standalone learner process: a LearnerCore and nothing else.
template <cstruct::CStructT CS>
class GenLearner final : public sim::Process {
 public:
  explicit GenLearner(const Config<CS>& config) : core_(*this, config) {
    register_wire_messages(decoders(), config.bottom);
  }

  std::string role() const override { return "learner"; }

  LearnerCore<CS>& core() { return core_; }
  const LearnerCore<CS>& core() const { return core_; }

  const CS& learned() const { return core_.learned(); }
  const std::map<std::uint64_t, sim::Time>& learn_times() const {
    return core_.learn_times();
  }
  std::size_t tracked_vote_rounds() const { return core_.tracked_vote_rounds(); }

  void on_message(sim::NodeId from, const std::any& m) override {
    core_.handle_message(from, m);
  }

  bool group_progress(std::uint32_t g, std::uint64_t* learned,
                      std::uint64_t* applied) const override {
    if (g != group()) return false;
    *learned = static_cast<std::uint64_t>(core_.learned().size());
    *applied = *learned;  // a bare learner has no replica to lag
    return true;
  }

 private:
  LearnerCore<CS> core_;
};

}  // namespace mcp::genpaxos
