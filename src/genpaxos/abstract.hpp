#pragma once

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cstruct/cstruct.hpp"
#include "paxos/ballot.hpp"
#include "paxos/proved_safe.hpp"
#include "paxos/quorum.hpp"

namespace mcp::genpaxos {

/// Executable version of **Abstract Multicoordinated Paxos** (Appendix A.2
/// of the paper): the non-distributed state machine over
///   propCmd   — set of proposed commands,
///   maxTried  — per-balnum c-struct tried so far (none = ballot unstarted),
///   bA        — the ballot array (per-acceptor current balnum + votes),
///   learned   — per-learner c-struct,
/// with the seven atomic actions Propose / JoinBallot / StartBallot /
/// Suggest / ClassicVote / FastVote / AbstractLearn.
///
/// The predicates *chosen at*, *choosable at* and *safe at* (Definitions
/// 2–5) are implemented literally, by quorum enumeration — exponential and
/// only meant for the small universes of the exploration tests, where they
/// serve as the ground-truth oracle against which the production
/// `proved_safe` rule is checked (Proposition 2), and the three state
/// invariants of Appendix A.2 are validated after every action.
template <cstruct::CStructT CS>
class AbstractMCPaxos {
 public:
  using Ballot = paxos::Ballot;
  using Command = cstruct::Command;

  struct Config {
    paxos::QuorumSystem quorums;
    std::vector<Ballot> balnums;  ///< the (finite) universe of rounds, ascending
    CS bottom{};
    int learners = 2;

    std::vector<Ballot> balnums_with_zero() const {
      std::vector<Ballot> out{Ballot::zero()};
      out.insert(out.end(), balnums.begin(), balnums.end());
      return out;
    }
  };

  explicit AbstractMCPaxos(Config config) : config_(std::move(config)) {
    for (std::size_t a = 0; a < config_.quorums.n(); ++a) {
      acceptors_.push_back(AcceptorState{Ballot::zero(), {{Ballot::zero(), config_.bottom}}});
    }
    learned_.assign(static_cast<std::size_t>(config_.learners), config_.bottom);
    max_tried_[Ballot::zero()] = config_.bottom;
  }

  // --- state access ---------------------------------------------------------

  const std::set<Command>& prop_cmd() const { return prop_cmd_; }
  const std::vector<CS>& learned() const { return learned_; }
  std::optional<CS> max_tried(const Ballot& m) const {
    auto it = max_tried_.find(m);
    if (it == max_tried_.end()) return std::nullopt;
    return it->second;
  }
  const Ballot& mbal(std::size_t acceptor) const { return acceptors_[acceptor].mbal; }
  std::optional<CS> vote(std::size_t acceptor, const Ballot& m) const {
    auto it = acceptors_[acceptor].votes.find(m);
    if (it == acceptors_[acceptor].votes.end()) return std::nullopt;
    return it->second;
  }

  // --- Definitions 2–5 (ground-truth, by quorum enumeration) -----------------

  /// Definition 3: v is chosen at m iff some m-quorum all voted extensions.
  bool is_chosen_at(const CS& v, const Ballot& m) const {
    const std::size_t q = quorum_size(m);
    const auto quorums = paxos::combinations(acceptors_.size(), q);
    return std::any_of(quorums.begin(), quorums.end(), [&](const auto& Q) {
      return std::all_of(Q.begin(), Q.end(), [&](std::size_t a) {
        const auto w = vote(a, m);
        return w && w->extends(v);
      });
    });
  }

  /// Definition 4: v is choosable at m iff some m-quorum could still choose
  /// it (only members that moved past m are constrained by their vote).
  bool is_choosable_at(const CS& v, const Ballot& m) const {
    const std::size_t q = quorum_size(m);
    const auto quorums = paxos::combinations(acceptors_.size(), q);
    return std::any_of(quorums.begin(), quorums.end(), [&](const auto& Q) {
      return std::all_of(Q.begin(), Q.end(), [&](std::size_t a) {
        if (!(m < acceptors_[a].mbal)) return true;  // unconstrained
        const auto w = vote(a, m);
        return w && w->extends(v);
      });
    });
  }

  /// Definition 5 restricted to candidate values we can enumerate: v is
  /// *unsafe* at m iff some w choosable at some k < m is not a prefix of v.
  /// The choosable w worth checking are the per-quorum glbs of constrained
  /// votes (anything choosable is a prefix of one of those, or the quorum
  /// is entirely unconstrained — in which case arbitrary values are
  /// choosable and nothing is safe).
  bool is_safe_at(const CS& v, const Ballot& m) const {
    for (const Ballot& k : config_.balnums_with_zero()) {
      if (!(k < m)) continue;
      const std::size_t q = quorum_size(k);
      for (const auto& Q : paxos::combinations(acceptors_.size(), q)) {
        std::vector<CS> constrained;
        bool dead_quorum = false;  // a constrained member without a vote
        for (std::size_t a : Q) {
          if (!(k < acceptors_[a].mbal)) continue;
          const auto w = vote(a, k);
          if (!w) {
            dead_quorum = true;
            break;
          }
          constrained.push_back(*w);
        }
        if (dead_quorum) continue;  // nothing choosable via this quorum
        if (constrained.empty()) return false;  // arbitrary values choosable
        // The maximal value choosable via Q is the glb of the constrained
        // members' votes; v is safe w.r.t. Q iff it extends that bound
        // (and thereby every choosable prefix of it).
        const CS bound = cstruct::meet_all(constrained);
        if (!v.extends(bound)) return false;
      }
    }
    return true;
  }

  // --- the seven actions (return false when preconditions fail) ---------------

  bool propose(const Command& c) {
    if (prop_cmd_.count(c) != 0) return false;
    prop_cmd_.insert(c);
    return true;
  }

  bool join_ballot(std::size_t a, const Ballot& m) {
    if (!(acceptors_[a].mbal < m)) return false;
    acceptors_[a].mbal = m;
    return true;
  }

  bool start_ballot(const Ballot& m, const CS& w) {
    if (max_tried_.count(m) != 0) return false;
    if (!is_safe_at(w, m)) return false;
    if (!is_constructible_from_proposed(w)) return false;
    max_tried_[m] = w;
    return true;
  }

  bool suggest(const Ballot& m, const std::vector<Command>& sigma) {
    auto it = max_tried_.find(m);
    if (it == max_tried_.end()) return false;
    for (const Command& c : sigma) {
      if (prop_cmd_.count(c) == 0) return false;
    }
    it->second = cstruct::append_all(it->second, sigma);
    return true;
  }

  bool classic_vote(std::size_t a, const Ballot& m, const CS& v) {
    if (acceptors_[a].mbal > m) return false;
    auto tried = max_tried_.find(m);
    if (tried == max_tried_.end() || !tried->second.extends(v)) return false;
    if (!is_safe_at(v, m)) return false;
    const auto prev = vote(a, m);
    if (prev && !v.extends(*prev)) return false;
    acceptors_[a].mbal = m;
    acceptors_[a].votes[m] = v;
    return true;
  }

  bool fast_vote(std::size_t a, const Command& c) {
    const Ballot m = acceptors_[a].mbal;
    if (!m.is_fast() || prop_cmd_.count(c) == 0) return false;
    auto prev = vote(a, m);
    if (!prev) return false;
    prev->append(c);
    acceptors_[a].votes[m] = *prev;
    return true;
  }

  bool abstract_learn(std::size_t l, const CS& v) {
    if (!is_chosen(v)) return false;
    // Proposition 1 guarantees chosen values are compatible with anything
    // already learned; History::join throws otherwise, which the explorer
    // surfaces as a hard failure.
    learned_[l] = learned_[l].join(v);
    return true;
  }

  /// ProvedSafe over a quorum that joined m, via the production rule — the
  /// exploration asserts every returned pick is safe (Proposition 2).
  std::vector<CS> proved_safe_for(const std::vector<std::size_t>& joined,
                                  const Ballot& /*m*/) const {
    std::vector<paxos::VoteReport<CS>> reports;
    for (std::size_t a : joined) {
      const auto& votes = acceptors_[a].votes;
      // Highest-round vote of the acceptor (its vrnd / vval).
      auto best = votes.rbegin();
      reports.push_back(paxos::VoteReport<CS>{static_cast<sim::NodeId>(a), best->first,
                                              best->second});
    }
    return paxos::proved_safe(config_.quorums, reports);
  }

  // --- the Appendix A.2 invariants ---------------------------------------------

  /// Returns an explanation of the first violated invariant, or nullopt.
  std::optional<std::string> check_invariants() const {
    // maxTried invariant.
    for (const auto& [m, tried] : max_tried_) {
      if (m.is_zero()) continue;
      if (!is_constructible_from_proposed(tried)) {
        return "maxTried[" + m.str() + "] not constructible from proposals";
      }
      if (!is_safe_at(tried, m)) return "maxTried[" + m.str() + "] not safe";
    }
    // bA invariant.
    for (std::size_t a = 0; a < acceptors_.size(); ++a) {
      for (const auto& [m, v] : acceptors_[a].votes) {
        if (m.is_zero()) continue;
        if (!is_safe_at(v, m)) {
          return "vote of acceptor " + std::to_string(a) + " at " + m.str() + " not safe";
        }
        if (m.is_classic()) {
          auto tried = max_tried_.find(m);
          if (tried == max_tried_.end() || !tried->second.extends(v)) {
            return "classic vote at " + m.str() + " not a prefix of maxTried";
          }
        } else if (!is_constructible_from_proposed(v)) {
          return "fast vote at " + m.str() + " contains unproposed commands";
        }
      }
    }
    // learned invariant + Generalized Consensus safety.
    for (std::size_t l = 0; l < learned_.size(); ++l) {
      if (!is_constructible_from_proposed(learned_[l])) {
        return "learned[" + std::to_string(l) + "] contains unproposed commands";
      }
      for (std::size_t l2 = l + 1; l2 < learned_.size(); ++l2) {
        if (!learned_[l].compatible(learned_[l2])) {
          return "learned values of learners " + std::to_string(l) + " and " +
                 std::to_string(l2) + " incompatible";
        }
      }
    }
    return std::nullopt;
  }

  bool is_chosen(const CS& v) const {
    const auto& balnums = config_.balnums_with_zero();
    return std::any_of(balnums.begin(), balnums.end(),
                       [&](const Ballot& m) { return is_chosen_at(v, m); });
  }

 private:
  struct AcceptorState {
    Ballot mbal;
    std::map<Ballot, CS> votes;
  };

  std::size_t quorum_size(const Ballot& m) const { return config_.quorums.quorum_size(m); }

  /// CS1 / Str(P): v was built by appends, so it lies in Str(propCmd) iff
  /// every contained command was proposed.
  bool is_constructible_from_proposed(const CS& v) const {
    // Generic probe: a c-struct of size s must be coverable by s proposed
    // commands; we check contains() for each proposed command and compare
    // counts (sufficient for our duplicate-free command universes).
    std::size_t covered = 0;
    for (const Command& c : prop_cmd_) {
      if (v.contains(c)) ++covered;
    }
    return covered == v.size();
  }

  Config config_;
  std::set<Command> prop_cmd_;
  std::map<Ballot, CS> max_tried_;
  std::vector<AcceptorState> acceptors_;
  std::vector<CS> learned_;
};

}  // namespace mcp::genpaxos
