#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <set>
#include <vector>

#include "sim/time.hpp"

namespace mcp::runtime {

/// Deadline-ordered timer queue for a live node, reproducing the
/// simulator's timer contract (sim::EventQueue + Simulation::post_timer)
/// against a real clock that the owner samples and passes in:
///
///  - entries due at the same tick fire in scheduling order (stable);
///  - cancel() wins over firing even at the deadline instant itself, and
///    cancelling from inside an earlier action of the same tick still
///    suppresses the later one;
///  - an action scheduling a new entry with a deadline <= now fires it in
///    the same fire_due() drain (the simulator's run loop does the same);
///  - cancelling an already-fired or unknown handle is a no-op.
///
/// Single-threaded by design: the owning runtime::Node only touches it
/// from its loop thread, exactly as the Simulation owns its EventQueue.
class TimerWheel {
 public:
  /// Arrange for `action` to run once `now` reaches `at`. Returns a
  /// positive cancellation handle (unique per wheel).
  int schedule(sim::Time at, std::function<void()> action);

  /// Suppress a scheduled action. No-op for fired/unknown handles.
  void cancel(int handle);

  /// Earliest pending deadline (may belong to a cancelled entry, which
  /// yields at worst one spurious wakeup), or nullopt when idle.
  std::optional<sim::Time> next_deadline() const;

  /// Run every entry with deadline <= now, in (deadline, scheduling order);
  /// returns how many actions ran. Re-entrant scheduling/cancelling from
  /// inside actions is safe.
  std::size_t fire_due(sim::Time now);

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

 private:
  struct Entry {
    sim::Time at;
    std::uint64_t seq;
    int handle;
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::set<int> cancelled_;
  std::uint64_t next_seq_ = 0;
  int next_handle_ = 1;
};

}  // namespace mcp::runtime
