#pragma once

// Cluster membership files: the configuration a live deployment shares
// across its nodes (examples/mcpaxos_node, the kv client, and the service
// acceptance tests all parse the same format).
//
//   node <id> <host> <port> <role>   # '#' starts a comment
//
// Roles: coordinator | acceptor | learner | proposer | server. A `server`
// node hosts a service::Frontend — it is simultaneously a proposer and a
// learner, so builders must place its id in both lists.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace mcp::runtime {

struct ClusterMember {
  sim::NodeId id = 0;
  std::string host;
  std::uint16_t port = 0;
  std::string role;
};

/// Parse cluster-file text. Throws std::runtime_error on malformed lines,
/// unknown roles, duplicate ids, or an empty membership.
std::vector<ClusterMember> parse_cluster_text(const std::string& text,
                                              const std::string& origin = "<text>");

/// Parse a cluster file from disk (same validation).
std::vector<ClusterMember> parse_cluster_file(const std::string& path);

/// The members with the given role.
std::vector<ClusterMember> members_with_role(const std::vector<ClusterMember>& members,
                                             const std::string& role);

/// Role-derived id lists — the ONE place the role → protocol-membership
/// mapping lives, because every node of a live cluster must compute the
/// same learner/proposer sets from the same file: a `server` id appears
/// in `servers` AND in both `learners` and `proposers` (a frontend is
/// simultaneously a proposer and a learner).
struct ClusterRoles {
  std::vector<sim::NodeId> coordinators;
  std::vector<sim::NodeId> acceptors;
  std::vector<sim::NodeId> learners;
  std::vector<sim::NodeId> proposers;
  std::vector<sim::NodeId> servers;
};
ClusterRoles roles_of(const std::vector<ClusterMember>& members);

/// Throw std::runtime_error unless every member has a dialable (nonzero)
/// port. CLI entry points call this; port 0 is a placeholder only the
/// in-process tests may use (they bind ephemerally and patch the peer
/// tables afterwards).
void require_dialable_ports(const std::vector<ClusterMember>& members);

}  // namespace mcp::runtime
