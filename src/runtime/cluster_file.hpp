#pragma once

// Cluster membership files: the configuration a live deployment shares
// across its nodes (examples/mcpaxos_node, the kv client, and the service
// acceptance tests all parse the same format).
//
//   node <id> <host> <port> <role>            # '#' starts a comment
//   group <gid> hash <node-id> ...            # optional sharding lines
//   group <gid> range <lo> <hi> <node-id> ...
//
// Roles: coordinator | acceptor | learner | proposer | server. A `server`
// node hosts a service::Frontend — it is simultaneously a proposer and a
// learner, so builders must place its id in both lists.
//
// Group lines shard the service across consensus groups. Each names the
// nodes whose coordinator/acceptor processes serve that group; servers
// (and standalone learners/proposers) are implicitly members of every
// group. `hash` groups split keys by FNV-1a hash modulo the group count
// (ids must then be exactly 0..G-1); `range` groups own the lexicographic
// key interval [lo, hi) — `hi = +` means unbounded above. No group lines
// at all means the classic single group 0 spanning every node.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace mcp::runtime {

struct ClusterMember {
  sim::NodeId id = 0;
  std::string host;
  std::uint16_t port = 0;
  std::string role;
};

/// One consensus group declared by a `group` line.
struct ClusterGroup {
  std::uint32_t id = 0;
  /// Key-partition mode: "hash" or "range".
  std::string mode = "hash";
  /// Range mode only: the owned key interval [lo, hi); hi == "+" means
  /// unbounded above.
  std::string lo;
  std::string hi;
  /// Node ids whose protocol processes serve this group (coordinators and
  /// acceptors; servers join every group implicitly).
  std::vector<sim::NodeId> members;
};

/// A parsed cluster file: the membership plus its (possibly empty) group
/// declarations. Empty `groups` means the implicit single group 0.
struct ClusterLayout {
  std::vector<ClusterMember> members;
  std::vector<ClusterGroup> groups;
};

/// Parse cluster-file text, including group lines. Throws
/// std::runtime_error on malformed lines, unknown roles, duplicate node
/// ids, an empty membership — and on bad sharding: duplicate group ids,
/// overlapping key ranges, mixed hash/range modes, group members that are
/// not declared nodes, or a group with no acceptor among its members.
ClusterLayout parse_cluster_layout_text(const std::string& text,
                                        const std::string& origin = "<text>");

/// Parse a cluster file from disk (same validation).
ClusterLayout parse_cluster_layout_file(const std::string& path);

/// Membership-only views of the above (group lines are validated, then
/// dropped) — what single-group callers parse.
std::vector<ClusterMember> parse_cluster_text(const std::string& text,
                                              const std::string& origin = "<text>");
std::vector<ClusterMember> parse_cluster_file(const std::string& path);

/// The members with the given role.
std::vector<ClusterMember> members_with_role(const std::vector<ClusterMember>& members,
                                             const std::string& role);

/// Role-derived id lists — the ONE place the role → protocol-membership
/// mapping lives, because every node of a live cluster must compute the
/// same learner/proposer sets from the same file: a `server` id appears
/// in `servers` AND in both `learners` and `proposers` (a frontend is
/// simultaneously a proposer and a learner).
struct ClusterRoles {
  std::vector<sim::NodeId> coordinators;
  std::vector<sim::NodeId> acceptors;
  std::vector<sim::NodeId> learners;
  std::vector<sim::NodeId> proposers;
  std::vector<sim::NodeId> servers;
};
ClusterRoles roles_of(const std::vector<ClusterMember>& members);

/// Role lists restricted to one group: coordinators/acceptors are the
/// group's declared members filtered by role; learners, proposers and
/// servers are cluster-wide (a server fronts every group).
ClusterRoles roles_of_group(const std::vector<ClusterMember>& members,
                            const ClusterGroup& group);

/// Throw std::runtime_error unless every member has a dialable (nonzero)
/// port. CLI entry points call this; port 0 is a placeholder only the
/// in-process tests may use (they bind ephemerally and patch the peer
/// tables afterwards).
void require_dialable_ports(const std::vector<ClusterMember>& members);

}  // namespace mcp::runtime
