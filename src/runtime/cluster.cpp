#include "runtime/cluster.hpp"

#include <stdexcept>

namespace mcp::runtime {

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kThread:
      return "thread";
    case Backend::kTcp:
      return "tcp";
  }
  return "unknown";
}

LoopbackCluster::LoopbackCluster(ClusterOptions options) : options_(options) {
  if (options_.node_count == 0) {
    throw std::invalid_argument("LoopbackCluster: node_count must be > 0");
  }
  const auto n = static_cast<sim::NodeId>(options_.node_count);

  std::vector<transport::Transport*> transports;
  transports.reserve(options_.node_count);
  if (options_.backend == Backend::kThread) {
    hub_ = std::make_unique<transport::ThreadHub>();
    for (sim::NodeId id = 0; id < n; ++id) {
      transports.push_back(&hub_->endpoint(id));
    }
  } else {
    // Bind every listener first (ephemeral ports), then hand each node the
    // full peer table — nobody dials before start().
    for (sim::NodeId id = 0; id < n; ++id) {
      transport::TcpConfig config;
      config.self = id;
      config.listen_host = options_.host;
      auto t = std::make_unique<transport::TcpTransport>(config);
      t->bind_and_listen();
      tcp_.push_back(std::move(t));
    }
    for (sim::NodeId id = 0; id < n; ++id) {
      for (sim::NodeId peer = 0; peer < n; ++peer) {
        if (peer == id) continue;
        tcp_[static_cast<std::size_t>(id)]->set_peer(
            peer, {options_.host, tcp_[static_cast<std::size_t>(peer)]->listen_port()});
      }
      transports.push_back(tcp_[static_cast<std::size_t>(id)].get());
    }
  }

  nodes_.reserve(options_.node_count);
  for (sim::NodeId id = 0; id < n; ++id) {
    NodeOptions node_options;
    node_options.id = id;
    node_options.tick = options_.tick;
    node_options.rng_seed = options_.seed + static_cast<std::uint64_t>(id);
    if (!options_.journal_root.empty()) {
      node_options.journal_dir =
          options_.journal_root + "/node" + std::to_string(id);
    }
    nodes_.push_back(std::make_unique<Node>(
        node_options, *transports[static_cast<std::size_t>(id)]));
  }
}

LoopbackCluster::~LoopbackCluster() { stop(); }

void LoopbackCluster::start() {
  if (started_) return;
  started_ = true;
  for (auto& node : nodes_) node->start();
}

void LoopbackCluster::stop() {
  // Node::stop tears down its own transport; hub/tcp destructors are then
  // no-ops. Stop every loop before the transports so no node blocks on a
  // peer that is already gone.
  for (auto& node : nodes_) node->stop();
  if (hub_) hub_->stop_all();
  for (auto& t : tcp_) t->stop();
}

std::int64_t LoopbackCluster::counter_sum(const std::string& name) {
  std::int64_t total = 0;
  for (auto& node : nodes_) {
    total += node->call([&]() { return node->metrics().counter(name); });
  }
  return total;
}

}  // namespace mcp::runtime
