#pragma once

// Loopback cluster of generalized-engine (genpaxos) processes over command
// histories: the runtime twin of bench/harness.hpp's make_gen, shared by
// the cluster tests, bench_transport, and mcpaxos_node --demo. Ids are laid
// out densely in the order coordinators, acceptors, learners, proposers —
// the same convention the sim builders use, so a simulator run with the
// same shape sees identical process ids and an identical message flow.

#include <memory>
#include <utility>
#include <vector>

#include "cstruct/history.hpp"
#include "genpaxos/engine.hpp"
#include "paxos/round_config.hpp"
#include "runtime/cluster.hpp"

namespace mcp::runtime {

struct GenShape {
  int coordinators = 1;
  int acceptors = 3;
  int learners = 1;
  int proposers = 1;
  int f = 1;
  int e = 0;
  /// Liveness pacing in ticks (see NodeOptions::tick for the real duration
  /// of one tick). Defaults match genpaxos::Config.
  sim::Time retry_interval = 400;
  sim::Time progress_timeout = 900;
  bool delta_messages = true;
};

/// A started-on-demand generalized-engine cluster. Owns the round policy
/// and config (processes keep references to both), the conflict relation,
/// and the LoopbackCluster hosting one process per id.
class GenHistoryCluster {
 public:
  using History = cstruct::History;

  GenHistoryCluster(const GenShape& shape, ClusterOptions options)
      : shape_(shape) {
    sim::NodeId next = 0;
    std::vector<sim::NodeId> coords;
    for (int i = 0; i < shape.coordinators; ++i) coords.push_back(next++);
    for (int i = 0; i < shape.acceptors; ++i) config_.acceptors.push_back(next++);
    for (int i = 0; i < shape.learners; ++i) config_.learners.push_back(next++);
    for (int i = 0; i < shape.proposers; ++i) config_.proposers.push_back(next++);
    policy_ = shape.coordinators > 1
                  ? paxos::PatternPolicy::multi_then_single(coords)
                  : paxos::PatternPolicy::always_single(coords);
    config_.policy = policy_.get();
    config_.f = shape.f;
    config_.e = shape.e;
    config_.bottom = History(&conflicts_);
    config_.retry_interval = shape.retry_interval;
    config_.progress_timeout = shape.progress_timeout;
    config_.delta_messages = shape.delta_messages;

    options.node_count = static_cast<std::size_t>(next);
    cluster_ = std::make_unique<LoopbackCluster>(options);
    sim::NodeId id = 0;
    for (int i = 0; i < shape.coordinators; ++i) {
      coordinators_.push_back(
          &cluster_->make_process<genpaxos::GenCoordinator<History>>(id++, config_));
    }
    for (int i = 0; i < shape.acceptors; ++i) {
      acceptors_.push_back(
          &cluster_->make_process<genpaxos::GenAcceptor<History>>(id++, config_));
    }
    for (int i = 0; i < shape.learners; ++i) {
      learners_.push_back(
          &cluster_->make_process<genpaxos::GenLearner<History>>(id++, config_));
    }
    for (int i = 0; i < shape.proposers; ++i) {
      proposers_.push_back(
          &cluster_->make_process<genpaxos::GenProposer<History>>(id++, config_));
    }
  }

  LoopbackCluster& cluster() { return *cluster_; }
  const genpaxos::Config<History>& config() const { return config_; }
  const GenShape& shape() const { return shape_; }

  Node& node_of(const sim::Process& p) { return cluster_->node(p.id()); }

  genpaxos::GenProposer<History>& proposer(int i = 0) { return *proposers_.at(i); }
  genpaxos::GenLearner<History>& learner(int i = 0) { return *learners_.at(i); }
  genpaxos::GenCoordinator<History>& coordinator(int i = 0) {
    return *coordinators_.at(i);
  }
  genpaxos::GenAcceptor<History>& acceptor(int i = 0) { return *acceptors_.at(i); }

  void start() { cluster_->start(); }
  void stop() { cluster_->stop(); }

  /// Propose on proposer `i` from any thread (runs on its node's loop).
  void propose(int i, cstruct::Command c) {
    auto* p = proposers_.at(i);
    node_of(*p).call([&] { p->propose(std::move(c)); });
  }

  /// Commands a proposer has had acknowledged (thread-safe snapshot).
  std::size_t delivered_count(int i = 0) {
    auto* p = proposers_.at(i);
    return node_of(*p).call([&] { return p->delivered_count(); });
  }

  /// Snapshot of a learner's learned history (thread-safe copy).
  History learned(int i = 0) {
    auto* l = learners_.at(i);
    return node_of(*l).call([&] { return l->learned(); });
  }

 private:
  GenShape shape_;
  cstruct::KeyConflict conflicts_;
  std::unique_ptr<paxos::RoundPolicy> policy_;
  genpaxos::Config<History> config_;
  // Declared after config_/policy_: nodes (and their processes, which hold
  // references into both) must be destroyed first.
  std::unique_ptr<LoopbackCluster> cluster_;
  std::vector<genpaxos::GenCoordinator<History>*> coordinators_;
  std::vector<genpaxos::GenAcceptor<History>*> acceptors_;
  std::vector<genpaxos::GenLearner<History>*> learners_;
  std::vector<genpaxos::GenProposer<History>*> proposers_;
};

}  // namespace mcp::runtime
