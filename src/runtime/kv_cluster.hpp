#pragma once

// Loopback KV *service* cluster: coordinators + acceptors + frontends over
// live runtime::Nodes (thread or TCP backend), the serving twin of
// GenHistoryCluster. Ids are laid out coordinators, acceptors, servers;
// every server id appears in both Config::learners (the acceptors' 2b
// fan-out) and Config::proposers. Shared by the service tests, bench_kv
// (E12), and anything else that needs a live cluster answering
// service::Client traffic in one process.

#include <memory>
#include <utility>
#include <vector>

#include "cstruct/history.hpp"
#include "genpaxos/engine.hpp"
#include "paxos/round_config.hpp"
#include "runtime/cluster.hpp"
#include "service/client.hpp"
#include "service/frontend.hpp"
#include "smr/kv.hpp"

namespace mcp::runtime {

struct KvShape {
  int coordinators = 1;
  int acceptors = 3;
  int servers = 2;
  int f = 1;
  int e = 0;
  /// Liveness pacing in ticks (see NodeOptions::tick).
  sim::Time retry_interval = 400;
  sim::Time progress_timeout = 900;
  bool delta_messages = true;
  service::Frontend::Options frontend;
};

class KvServiceCluster {
 public:
  using History = cstruct::History;

  KvServiceCluster(const KvShape& shape, ClusterOptions options) : shape_(shape) {
    sim::NodeId next = 0;
    std::vector<sim::NodeId> coords;
    for (int i = 0; i < shape.coordinators; ++i) coords.push_back(next++);
    for (int i = 0; i < shape.acceptors; ++i) config_.acceptors.push_back(next++);
    for (int i = 0; i < shape.servers; ++i) {
      server_ids_.push_back(next);
      config_.learners.push_back(next);
      config_.proposers.push_back(next);
      ++next;
    }
    policy_ = shape.coordinators > 1
                  ? paxos::PatternPolicy::multi_then_single(coords)
                  : paxos::PatternPolicy::always_single(coords);
    config_.policy = policy_.get();
    config_.f = shape.f;
    config_.e = shape.e;
    config_.bottom = History(&conflicts_);
    config_.retry_interval = shape.retry_interval;
    config_.progress_timeout = shape.progress_timeout;
    config_.delta_messages = shape.delta_messages;

    options.node_count = static_cast<std::size_t>(next);
    cluster_ = std::make_unique<LoopbackCluster>(options);
    sim::NodeId id = 0;
    for (int i = 0; i < shape.coordinators; ++i) {
      cluster_->make_process<genpaxos::GenCoordinator<History>>(id++, config_);
    }
    for (int i = 0; i < shape.acceptors; ++i) {
      cluster_->make_process<genpaxos::GenAcceptor<History>>(id++, config_);
    }
    for (int i = 0; i < shape.servers; ++i) {
      frontends_.push_back(
          &cluster_->make_process<service::Frontend>(id++, config_, shape.frontend));
    }
  }

  LoopbackCluster& cluster() { return *cluster_; }
  const genpaxos::Config<History>& config() const { return config_; }
  const KvShape& shape() const { return shape_; }
  const std::vector<sim::NodeId>& server_ids() const { return server_ids_; }

  service::Frontend& frontend(int i = 0) { return *frontends_.at(i); }
  Node& server_node(int i = 0) { return cluster_->node(server_ids_.at(i)); }

  void start() { cluster_->start(); }
  void stop() { cluster_->stop(); }

  /// A client channel matching the cluster's backend: a fresh ThreadHub
  /// endpoint (thread; `client_id` must be unique per client and outside
  /// the node id range — use client_endpoint_id()) or a TCP channel with
  /// every server's loopback address (tcp; `client_id` unused).
  std::unique_ptr<service::ClientChannel> make_channel(sim::NodeId client_id) {
    if (auto* hub = cluster_->hub()) {
      return std::make_unique<service::HubClientChannel>(*hub, client_id);
    }
    std::map<sim::NodeId, service::ServerAddr> servers;
    for (const sim::NodeId id : server_ids_) {
      auto* tcp = cluster_->tcp_transport(id);
      servers[id] = {cluster_->options().host, tcp->listen_port()};
    }
    return std::make_unique<service::TcpClientChannel>(std::move(servers));
  }

  /// A hub endpoint id guaranteed clear of the cluster's node ids.
  sim::NodeId client_endpoint_id(int i) const {
    return static_cast<sim::NodeId>(1000 + i);
  }

  /// Thread-safe snapshots off the node loops.
  smr::KVStore store_snapshot(int i) {
    auto* f = frontends_.at(i);
    return server_node(i).call([&] { return f->store(); });
  }
  History learned_snapshot(int i) {
    auto* f = frontends_.at(i);
    return server_node(i).call([&] { return f->learned(); });
  }

 private:
  KvShape shape_;
  cstruct::KeyConflict conflicts_;
  std::unique_ptr<paxos::RoundPolicy> policy_;
  genpaxos::Config<History> config_;
  std::vector<sim::NodeId> server_ids_;
  // Declared after config_/policy_: nodes (whose processes reference both)
  // must be destroyed first.
  std::unique_ptr<LoopbackCluster> cluster_;
  std::vector<service::Frontend*> frontends_;
};

}  // namespace mcp::runtime
