#pragma once

// Loopback KV *service* cluster: coordinators + acceptors + frontends over
// live runtime::Nodes (thread or TCP backend), the serving twin of
// GenHistoryCluster. Ids are laid out coordinators, acceptors, servers;
// every server id appears in both Config::learners (the acceptors' 2b
// fan-out) and Config::proposers. Shared by the service tests, bench_kv
// (E12), and anything else that needs a live cluster answering
// service::Client traffic in one process.

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cstruct/history.hpp"
#include "genpaxos/engine.hpp"
#include "paxos/round_config.hpp"
#include "runtime/cluster.hpp"
#include "service/client.hpp"
#include "service/frontend.hpp"
#include "smr/kv.hpp"

namespace mcp::runtime {

struct KvShape {
  /// Coordinator NODES per consensus group (each group gets its own
  /// coordinator nodes, so killing one coordinator touches one group).
  int coordinators = 1;
  /// Acceptor NODES, shared by every group: each hosts one acceptor
  /// process per group, multiplexed on its single event loop.
  int acceptors = 3;
  int servers = 2;
  /// Consensus groups; keys are hash-partitioned across them. 1 = the
  /// classic unsharded service.
  int groups = 1;
  int f = 1;
  int e = 0;
  /// Liveness pacing in ticks (see NodeOptions::tick).
  sim::Time retry_interval = 400;
  sim::Time progress_timeout = 900;
  bool delta_messages = true;
  service::Frontend::Options frontend;
};

class KvServiceCluster {
 public:
  using History = cstruct::History;

  KvServiceCluster(const KvShape& shape, ClusterOptions options) : shape_(shape) {
    const int groups = shape.groups < 1 ? 1 : shape.groups;
    // Id layout: per-group coordinator nodes (group g owns ids
    // [g*C, (g+1)*C)), then the shared acceptor nodes, then the servers.
    sim::NodeId next = static_cast<sim::NodeId>(groups * shape.coordinators);
    std::vector<sim::NodeId> acceptor_ids;
    for (int i = 0; i < shape.acceptors; ++i) acceptor_ids.push_back(next++);
    for (int i = 0; i < shape.servers; ++i) server_ids_.push_back(next++);

    for (int g = 0; g < groups; ++g) {
      std::vector<sim::NodeId> coords;
      for (int i = 0; i < shape.coordinators; ++i) {
        coords.push_back(static_cast<sim::NodeId>(g * shape.coordinators + i));
      }
      policies_.push_back(shape.coordinators > 1
                              ? paxos::PatternPolicy::multi_then_single(coords)
                              : paxos::PatternPolicy::always_single(coords));
      auto config = std::make_unique<genpaxos::Config<History>>();
      config->acceptors = acceptor_ids;
      config->learners = server_ids_;
      config->proposers = server_ids_;
      config->policy = policies_.back().get();
      config->f = shape.f;
      config->e = shape.e;
      config->bottom = History(&conflicts_);
      config->retry_interval = shape.retry_interval;
      config->progress_timeout = shape.progress_timeout;
      config->delta_messages = shape.delta_messages;
      configs_.push_back(std::move(config));
    }

    options.node_count = static_cast<std::size_t>(next);
    cluster_ = std::make_unique<LoopbackCluster>(options);
    for (int g = 0; g < groups; ++g) {
      for (int i = 0; i < shape.coordinators; ++i) {
        cluster_->node(g * shape.coordinators + i)
            .make_process_for_group<genpaxos::GenCoordinator<History>>(
                static_cast<std::uint32_t>(g), *configs_[g]);
      }
    }
    for (const sim::NodeId id : acceptor_ids) {
      // One acceptor process per group, all on this node's one event loop.
      for (int g = 0; g < groups; ++g) {
        cluster_->node(id).make_process_for_group<genpaxos::GenAcceptor<History>>(
            static_cast<std::uint32_t>(g), *configs_[g]);
      }
    }
    std::vector<service::Frontend::GroupConfig> shard_configs;
    for (int g = 0; g < groups; ++g) {
      shard_configs.push_back({static_cast<std::uint32_t>(g), configs_[g].get()});
    }
    const auto partition =
        service::KeyPartition::hashed(static_cast<std::uint32_t>(groups));
    for (const sim::NodeId id : server_ids_) {
      auto& f = cluster_->node(id).make_process_for_group<service::Frontend>(
          0, shard_configs, partition, shape.frontend);
      // The one frontend process serves every group; route the other
      // groups' learned streams to it.
      for (int g = 1; g < groups; ++g) {
        cluster_->node(id).route_group(static_cast<std::uint32_t>(g), f);
      }
      frontends_.push_back(&f);
    }
  }

  LoopbackCluster& cluster() { return *cluster_; }
  const genpaxos::Config<History>& config() const { return *configs_.front(); }
  /// Group g's protocol config (coordinators differ per group).
  const genpaxos::Config<History>& group_config(int g) const { return *configs_.at(g); }
  int group_count() const { return static_cast<int>(configs_.size()); }
  /// Node id of group g's i-th coordinator.
  sim::NodeId coordinator_node(int g, int i = 0) const {
    return static_cast<sim::NodeId>(g * shape_.coordinators + i);
  }
  const KvShape& shape() const { return shape_; }
  const std::vector<sim::NodeId>& server_ids() const { return server_ids_; }

  service::Frontend& frontend(int i = 0) { return *frontends_.at(i); }
  Node& server_node(int i = 0) { return cluster_->node(server_ids_.at(i)); }

  void start() { cluster_->start(); }
  void stop() { cluster_->stop(); }

  /// A client channel matching the cluster's backend: a fresh ThreadHub
  /// endpoint (thread; `client_id` must be unique per client and outside
  /// the node id range — use client_endpoint_id()) or a TCP channel with
  /// every server's loopback address (tcp; `client_id` unused).
  std::unique_ptr<service::ClientChannel> make_channel(sim::NodeId client_id) {
    if (auto* hub = cluster_->hub()) {
      return std::make_unique<service::HubClientChannel>(*hub, client_id);
    }
    std::map<sim::NodeId, service::ServerAddr> servers;
    for (const sim::NodeId id : server_ids_) {
      auto* tcp = cluster_->tcp_transport(id);
      servers[id] = {cluster_->options().host, tcp->listen_port()};
    }
    return std::make_unique<service::TcpClientChannel>(std::move(servers));
  }

  /// A hub endpoint id guaranteed clear of the cluster's node ids.
  sim::NodeId client_endpoint_id(int i) const {
    return static_cast<sim::NodeId>(1000 + i);
  }

  /// Thread-safe snapshots off the node loops. The plain forms read shard
  /// 0 (the whole state of an unsharded cluster); store_data_snapshot
  /// merges every shard's store, and learned_snapshot(i, g) reads one
  /// group's history.
  smr::KVStore store_snapshot(int i) {
    auto* f = frontends_.at(i);
    return server_node(i).call([&] { return f->store(); });
  }
  std::map<std::string, std::string> store_data_snapshot(int i) {
    auto* f = frontends_.at(i);
    return server_node(i).call([&] { return f->store_data(); });
  }
  History learned_snapshot(int i) {
    auto* f = frontends_.at(i);
    return server_node(i).call([&] { return f->learned(); });
  }
  History learned_snapshot(int i, std::uint32_t gid) {
    auto* f = frontends_.at(i);
    return server_node(i).call([&] {
      const History* h = f->learned_for_group(gid);
      if (h == nullptr) throw std::logic_error("learned_snapshot: no such group");
      return *h;
    });
  }

 private:
  KvShape shape_;
  cstruct::KeyConflict conflicts_;
  std::vector<std::unique_ptr<paxos::RoundPolicy>> policies_;
  std::vector<std::unique_ptr<genpaxos::Config<History>>> configs_;
  std::vector<sim::NodeId> server_ids_;
  // Declared after configs_/policies_: nodes (whose processes reference
  // both) must be destroyed first.
  std::unique_ptr<LoopbackCluster> cluster_;
  std::vector<service::Frontend*> frontends_;
};

}  // namespace mcp::runtime
