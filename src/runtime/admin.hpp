#pragma once

#include <cstdint>
#include <string>

#include "runtime/node.hpp"
#include "transport/tcp_transport.hpp"

namespace mcp::runtime {

/// Wire a node's observability surface onto its TCP transport's admin
/// endpoint. Must run before node.start() / transport start. Returns the
/// bound admin port (useful with port 0).
///
/// Paths served:
///   /metrics  — Prometheus-style plaintext of every counter and histogram
///               in the node's registry (thread-safe snapshot; handled
///               entirely on the reactor thread).
///   /healthz  — one line per hosted group: role, incarnation, leader
///               hint — and, for learner-bearing roles, the learned prefix
///               length plus replica apply lag — plus node id / running /
///               recovered. Gathered via node.call() so process state is
///               read on the loop thread.
///   /trace    — the current trace ring as Perfetto JSON, without waiting
///               for process exit (the --trace-dir file only appears on
///               clean shutdown). Served straight off the ring's
///               concurrent snapshot, no loop-thread hop.
///   /dump     — flush the protocol flight recorder to disk and report its
///               location/size, so an operator can fetch a durable journal
///               from a live (possibly misbehaving) node before deciding
///               to restart it. "journal: disabled" when the node runs
///               without one.
/// Anything else is a 404.
std::uint16_t install_admin(Node& node, transport::TcpTransport& transport,
                            std::uint16_t port);

/// The /healthz body alone (exposed for tests).
std::string healthz_text(Node& node);

/// The /dump body alone (exposed for tests).
std::string dump_text(Node& node);

}  // namespace mcp::runtime
