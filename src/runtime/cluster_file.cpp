#include "runtime/cluster_file.hpp"

#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>

namespace mcp::runtime {

namespace {

bool known_role(const std::string& role) {
  return role == "coordinator" || role == "acceptor" || role == "learner" ||
         role == "proposer" || role == "server";
}

}  // namespace

namespace {

ClusterGroup parse_group_line(std::istringstream& ls, const std::string& line,
                              const std::string& origin) {
  ClusterGroup g;
  long long gid = -1;
  if (!(ls >> gid >> g.mode) || gid < 0 ||
      gid > static_cast<long long>(std::numeric_limits<std::uint32_t>::max())) {
    throw std::runtime_error(origin + ": bad group line: " + line);
  }
  g.id = static_cast<std::uint32_t>(gid);
  if (g.mode == "range") {
    if (!(ls >> g.lo >> g.hi)) {
      throw std::runtime_error(origin + ": group " + std::to_string(g.id) +
                               " range needs <lo> <hi> bounds: " + line);
    }
  } else if (g.mode != "hash") {
    throw std::runtime_error(origin + ": group " + std::to_string(g.id) +
                             " has unknown partition mode '" + g.mode +
                             "' (hash|range)");
  }
  sim::NodeId id = 0;
  while (ls >> id) g.members.push_back(id);
  if (!ls.eof()) {
    throw std::runtime_error(origin + ": bad group line: " + line);
  }
  if (g.members.empty()) {
    throw std::runtime_error(origin + ": group " + std::to_string(g.id) +
                             " lists no member nodes");
  }
  return g;
}

/// The [lo, hi) intervals of two range groups intersect ("+" = unbounded).
bool ranges_overlap(const ClusterGroup& a, const ClusterGroup& b) {
  const bool a_unbounded = a.hi == "+";
  const bool b_unbounded = b.hi == "+";
  const bool a_below_b = !a_unbounded && a.hi <= b.lo;
  const bool b_below_a = !b_unbounded && b.hi <= a.lo;
  return !(a_below_b || b_below_a);
}

void validate_groups(const std::vector<ClusterMember>& members,
                     std::vector<ClusterGroup>& groups, const std::string& origin) {
  std::set<std::uint32_t> gids;
  std::set<sim::NodeId> node_ids;
  std::set<sim::NodeId> acceptor_ids;
  for (const ClusterMember& m : members) {
    node_ids.insert(m.id);
    if (m.role == "acceptor") acceptor_ids.insert(m.id);
  }
  for (const ClusterGroup& g : groups) {
    if (!gids.insert(g.id).second) {
      throw std::runtime_error(origin + ": duplicate group id " +
                               std::to_string(g.id));
    }
    if (g.mode != groups.front().mode) {
      throw std::runtime_error(origin + ": groups mix hash and range "
                               "partitioning; pick one mode for the cluster");
    }
    bool has_acceptor = false;
    for (sim::NodeId id : g.members) {
      if (node_ids.count(id) == 0) {
        throw std::runtime_error(origin + ": group " + std::to_string(g.id) +
                                 " references unknown node id " +
                                 std::to_string(id));
      }
      has_acceptor = has_acceptor || acceptor_ids.count(id) != 0;
    }
    if (!has_acceptor) {
      throw std::runtime_error(origin + ": group " + std::to_string(g.id) +
                               " has an empty acceptor set (no member has the "
                               "acceptor role)");
    }
  }
  if (groups.front().mode == "hash") {
    // Hash routing is FNV-1a(key) % group-count, so ids must be dense.
    for (std::uint32_t want = 0; want < groups.size(); ++want) {
      if (gids.count(want) == 0) {
        throw std::runtime_error(origin + ": hash groups need dense ids 0.." +
                                 std::to_string(groups.size() - 1) +
                                 " (missing " + std::to_string(want) + ")");
      }
    }
  } else {
    for (std::size_t i = 0; i < groups.size(); ++i) {
      for (std::size_t j = i + 1; j < groups.size(); ++j) {
        if (ranges_overlap(groups[i], groups[j])) {
          throw std::runtime_error(origin + ": groups " +
                                   std::to_string(groups[i].id) + " and " +
                                   std::to_string(groups[j].id) +
                                   " own overlapping key ranges");
        }
      }
    }
  }
}

}  // namespace

ClusterLayout parse_cluster_layout_text(const std::string& text,
                                        const std::string& origin) {
  std::istringstream in(text);
  ClusterLayout layout;
  std::set<sim::NodeId> seen;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank
    if (kind == "group") {
      layout.groups.push_back(parse_group_line(ls, line, origin));
      continue;
    }
    if (kind != "node") {
      throw std::runtime_error(origin + ": bad cluster line: " + line);
    }
    ClusterMember m;
    int port = 0;
    if (!(ls >> m.id >> m.host >> port >> m.role) || port < 0 || port > 65535) {
      throw std::runtime_error(origin + ": bad cluster line: " + line);
    }
    if (!known_role(m.role)) {
      throw std::runtime_error(origin + ": unknown role '" + m.role +
                               "' (coordinator|acceptor|learner|proposer|server)");
    }
    if (!seen.insert(m.id).second) {
      throw std::runtime_error(origin + ": duplicate node id " +
                               std::to_string(m.id));
    }
    m.port = static_cast<std::uint16_t>(port);
    layout.members.push_back(std::move(m));
  }
  if (layout.members.empty()) {
    throw std::runtime_error(origin + ": empty cluster file");
  }
  if (!layout.groups.empty()) {
    validate_groups(layout.members, layout.groups, origin);
  }
  return layout;
}

ClusterLayout parse_cluster_layout_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open cluster file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_cluster_layout_text(text.str(), path);
}

std::vector<ClusterMember> parse_cluster_text(const std::string& text,
                                              const std::string& origin) {
  return parse_cluster_layout_text(text, origin).members;
}

std::vector<ClusterMember> parse_cluster_file(const std::string& path) {
  return parse_cluster_layout_file(path).members;
}

std::vector<ClusterMember> members_with_role(const std::vector<ClusterMember>& members,
                                             const std::string& role) {
  std::vector<ClusterMember> out;
  for (const ClusterMember& m : members) {
    if (m.role == role) out.push_back(m);
  }
  return out;
}

ClusterRoles roles_of_group(const std::vector<ClusterMember>& members,
                            const ClusterGroup& group) {
  const std::set<sim::NodeId> in_group(group.members.begin(), group.members.end());
  ClusterRoles roles;
  for (const ClusterMember& m : members) {
    if (m.role == "coordinator") {
      if (in_group.count(m.id) != 0) roles.coordinators.push_back(m.id);
    } else if (m.role == "acceptor") {
      if (in_group.count(m.id) != 0) roles.acceptors.push_back(m.id);
    } else if (m.role == "learner") {
      roles.learners.push_back(m.id);
    } else if (m.role == "proposer") {
      roles.proposers.push_back(m.id);
    } else {  // "server": fronts every group
      roles.servers.push_back(m.id);
      roles.learners.push_back(m.id);
      roles.proposers.push_back(m.id);
    }
  }
  return roles;
}

ClusterRoles roles_of(const std::vector<ClusterMember>& members) {
  ClusterRoles roles;
  for (const ClusterMember& m : members) {
    if (m.role == "coordinator") {
      roles.coordinators.push_back(m.id);
    } else if (m.role == "acceptor") {
      roles.acceptors.push_back(m.id);
    } else if (m.role == "learner") {
      roles.learners.push_back(m.id);
    } else if (m.role == "proposer") {
      roles.proposers.push_back(m.id);
    } else {  // "server" (parse rejects anything else)
      roles.servers.push_back(m.id);
      roles.learners.push_back(m.id);
      roles.proposers.push_back(m.id);
    }
  }
  return roles;
}

void require_dialable_ports(const std::vector<ClusterMember>& members) {
  for (const ClusterMember& m : members) {
    if (m.port == 0) {
      throw std::runtime_error("node " + std::to_string(m.id) +
                               " has port 0 — a real deployment needs every "
                               "port dialable (0 is the in-process tests' "
                               "ephemeral placeholder)");
    }
  }
}

}  // namespace mcp::runtime
