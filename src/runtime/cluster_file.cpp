#include "runtime/cluster_file.hpp"

#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace mcp::runtime {

namespace {

bool known_role(const std::string& role) {
  return role == "coordinator" || role == "acceptor" || role == "learner" ||
         role == "proposer" || role == "server";
}

}  // namespace

std::vector<ClusterMember> parse_cluster_text(const std::string& text,
                                              const std::string& origin) {
  std::istringstream in(text);
  std::vector<ClusterMember> members;
  std::set<sim::NodeId> seen;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank
    if (kind != "node") {
      throw std::runtime_error(origin + ": bad cluster line: " + line);
    }
    ClusterMember m;
    int port = 0;
    if (!(ls >> m.id >> m.host >> port >> m.role) || port < 0 || port > 65535) {
      throw std::runtime_error(origin + ": bad cluster line: " + line);
    }
    if (!known_role(m.role)) {
      throw std::runtime_error(origin + ": unknown role '" + m.role +
                               "' (coordinator|acceptor|learner|proposer|server)");
    }
    if (!seen.insert(m.id).second) {
      throw std::runtime_error(origin + ": duplicate node id " +
                               std::to_string(m.id));
    }
    m.port = static_cast<std::uint16_t>(port);
    members.push_back(std::move(m));
  }
  if (members.empty()) {
    throw std::runtime_error(origin + ": empty cluster file");
  }
  return members;
}

std::vector<ClusterMember> parse_cluster_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open cluster file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_cluster_text(text.str(), path);
}

std::vector<ClusterMember> members_with_role(const std::vector<ClusterMember>& members,
                                             const std::string& role) {
  std::vector<ClusterMember> out;
  for (const ClusterMember& m : members) {
    if (m.role == role) out.push_back(m);
  }
  return out;
}

ClusterRoles roles_of(const std::vector<ClusterMember>& members) {
  ClusterRoles roles;
  for (const ClusterMember& m : members) {
    if (m.role == "coordinator") {
      roles.coordinators.push_back(m.id);
    } else if (m.role == "acceptor") {
      roles.acceptors.push_back(m.id);
    } else if (m.role == "learner") {
      roles.learners.push_back(m.id);
    } else if (m.role == "proposer") {
      roles.proposers.push_back(m.id);
    } else {  // "server" (parse rejects anything else)
      roles.servers.push_back(m.id);
      roles.learners.push_back(m.id);
      roles.proposers.push_back(m.id);
    }
  }
  return roles;
}

void require_dialable_ports(const std::vector<ClusterMember>& members) {
  for (const ClusterMember& m : members) {
    if (m.port == 0) {
      throw std::runtime_error("node " + std::to_string(m.id) +
                               " has port 0 — a real deployment needs every "
                               "port dialable (0 is the in-process tests' "
                               "ephemeral placeholder)");
    }
  }
}

}  // namespace mcp::runtime
