#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/node.hpp"
#include "transport/tcp_transport.hpp"
#include "transport/thread_transport.hpp"

namespace mcp::runtime {

/// Which carrier a LoopbackCluster wires its nodes with.
enum class Backend { kThread, kTcp };

const char* backend_name(Backend backend);

struct ClusterOptions {
  Backend backend = Backend::kThread;
  std::size_t node_count = 0;
  /// Real duration of one protocol tick on every node (see NodeOptions).
  std::chrono::microseconds tick{1000};
  std::uint64_t seed = 1;
  /// TCP backend: all nodes listen on this host with ephemeral ports.
  std::string host = "127.0.0.1";
  /// Non-empty: every node runs a protocol flight recorder under
  /// <journal_root>/node<id>/ (see NodeOptions::journal_dir) — used by
  /// bench_kv --journal to price the recorder and by tests that want
  /// auditable journals out of a loopback cluster.
  std::string journal_root;
};

/// N runtime::Nodes with ids 0..N-1, wired all-to-all over one machine:
/// either endpoints of a ThreadHub, or TcpTransports on loopback ephemeral
/// ports with the peer table exchanged before anyone dials. The driver the
/// cluster tests, bench_transport, and the mcpaxos_node --demo mode share.
///
/// Usage: construct, make_process<Role>(id, ...) for every id, start(),
/// drive via node(id).call(...), stop().
class LoopbackCluster {
 public:
  explicit LoopbackCluster(ClusterOptions options);
  ~LoopbackCluster();

  LoopbackCluster(const LoopbackCluster&) = delete;
  LoopbackCluster& operator=(const LoopbackCluster&) = delete;

  Node& node(sim::NodeId id) { return *nodes_.at(static_cast<std::size_t>(id)); }
  std::size_t node_count() const { return nodes_.size(); }

  template <typename P, typename... Args>
  P& make_process(sim::NodeId id, Args&&... args) {
    return node(id).make_process<P>(std::forward<Args>(args)...);
  }

  /// Start every node (every node must have a process attached).
  void start();
  /// Stop every node, then the transports. Idempotent.
  void stop();

  /// Sum of one counter across every node's metrics.
  std::int64_t counter_sum(const std::string& name);

  const ClusterOptions& options() const { return options_; }

  /// The hub carrying a kThread cluster (nullptr under kTcp). Service
  /// clients join it as extra endpoints with ids outside the node range.
  transport::ThreadHub* hub() { return hub_.get(); }
  /// A kTcp node's transport (nullptr under kThread) — exposes the
  /// ephemeral listen port service clients dial.
  transport::TcpTransport* tcp_transport(sim::NodeId id) {
    return tcp_.empty() ? nullptr : tcp_.at(static_cast<std::size_t>(id)).get();
  }

 private:
  ClusterOptions options_;
  std::unique_ptr<transport::ThreadHub> hub_;                       // kThread
  std::vector<std::unique_ptr<transport::TcpTransport>> tcp_;      // kTcp
  std::vector<std::unique_ptr<Node>> nodes_;
  bool started_ = false;
};

}  // namespace mcp::runtime
