#include "runtime/node.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>

#include "paxos/wire.hpp"
#include "storage/file_storage.hpp"
#include "storage/flight_recorder.hpp"
#include "transport/tcp_transport.hpp"

namespace mcp::runtime {

/// Reserved storage key: the node-level crash counter (Process::
/// incarnation). Written by the host, not protocol code, so it shares the
/// medium but not the namespace of vrnd/vval/rnd_block.
static constexpr const char* kIncarnationKey = "node.incarnation";

Node::Node(NodeOptions options, transport::Transport& transport)
    : options_(options),
      transport_(transport),
      rng_(options.rng_seed),
      started_at_(std::chrono::steady_clock::now()) {
  if (!options_.journal_dir.empty()) {
    // The journal usually nests under a data dir that FileStorage has not
    // created yet (adoption runs later), so create the parents here.
    std::error_code ec;
    std::filesystem::create_directories(options_.journal_dir, ec);
    storage::FlightRecorderOptions jo;
    jo.segment_bytes = options_.journal_segment_bytes;
    jo.keep_segments = options_.journal_keep_segments;
    journal_ = std::make_unique<storage::FlightRecorder>(
        options_.id, options_.journal_dir, jo);
    set_journal(journal_.get());
  }
}

Node::~Node() { stop(); }

void Node::flush_journal() {
  if (journal_) journal_->flush();
}

void Node::adopt(std::unique_ptr<sim::Process> process, std::uint32_t group) {
  if (running_) throw std::logic_error("runtime::Node: adopt after start");
  if (!process) throw std::invalid_argument("runtime::Node: null process");
  if (by_group_.count(group) != 0) {
    throw std::logic_error("runtime::Node: group " + std::to_string(group) +
                           " already hosts a process");
  }
  bind(*process, this, options_.id);
  set_group(*process, group);
  Hosted hosted;
  hosted.group = group;
  if (!options_.data_dir.empty()) {
    storage::FileStorageOptions fo;
    fo.snapshot_every = options_.snapshot_every;
    // Group 0 keeps the directory root (pre-sharding layout); every other
    // group recovers independently from its own g<G> subdirectory — whose
    // parent must exist before FileStorage's one-level mkdir.
    std::string dir = options_.data_dir;
    if (group != 0) {
      if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
        throw std::runtime_error("runtime::Node: mkdir " + dir + ": " +
                                 std::strerror(errno));
      }
      dir += "/g" + std::to_string(group);
    }
    auto fs = std::make_unique<storage::FileStorage>(dir, fo);
    hosted.recovered = fs->recovered();
    recovered_ = recovered_ || hosted.recovered;
    attach_storage(*process, std::move(fs));
    // The real medium pays its latency synchronously inside write(), so
    // the modelled post-write send delay must be zero — otherwise every
    // write-before-reply path (send_after_sync) would pay the disk twice.
    process->storage().set_write_latency(0);
    if (hosted.recovered) {
      // §4.4 recovery protocol, host half: a restarted process acts under
      // a strictly higher incarnation, persisted before any handler runs
      // so a crash during recovery still bumps again.
      const auto prev = process->storage().read_int(kIncarnationKey).value_or(0);
      const int inc = static_cast<int>(prev) + 1;
      process->storage().write_int(kIncarnationKey, inc);
      set_incarnation(*process, inc);
      metrics_.incr("node.recoveries");
      if (journal_) {
        util::JournalRecord rec;
        rec.kind = util::JournalKind::kIncarnation;
        rec.group = group;
        rec.b = static_cast<std::uint64_t>(inc);
        rec.payload = process->role();
        journal_->append(std::move(rec));
      }
    } else {
      // First start on this directory: stamp incarnation 0 so the dir is
      // never empty. Without this, a process whose role persists nothing
      // of its own (e.g. a service frontend) would look freshly born on
      // every restart — no incarnation bump, no on_recover — instead of
      // recovering.
      process->storage().write_int(kIncarnationKey, 0);
    }
  }
  by_group_[group] = process.get();
  if (!primary_) primary_ = process.get();
  hosted.process = std::move(process);
  hosted_.push_back(std::move(hosted));
}

void Node::route_group(std::uint32_t group, sim::Process& process) {
  if (running_) throw std::logic_error("runtime::Node: route_group after start");
  bool owned = false;
  for (const auto& h : hosted_) owned = owned || h.process.get() == &process;
  if (!owned) {
    throw std::invalid_argument("runtime::Node: route_group target not hosted here");
  }
  auto [it, inserted] = by_group_.emplace(group, &process);
  if (!inserted && it->second != &process) {
    throw std::logic_error("runtime::Node: group " + std::to_string(group) +
                           " already hosts a process");
  }
}

sim::Time Node::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - started_at_;
  return static_cast<sim::Time>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed) /
      options_.tick);
}

void Node::start() {
  if (running_ || hosted_.empty()) return;
  started_at_ = std::chrono::steady_clock::now();
  {
    // Queued before the transport can deliver anything, so each process's
    // on_start (or, on a restart with durable state, on_recover — whose
    // implementations read back what they persisted and then run their
    // on_start logic) is always the first handler to run — as under the
    // simulator. Adoption order, so group bring-up is deterministic.
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = false;
    dead_ = false;
    mailbox_.emplace_back([this] {
      for (auto& h : hosted_) {
        if (journal_) {
          // The membership record anchors an incident bundle: which roles
          // this node hosted for which groups, under which incarnation.
          util::JournalRecord rec;
          rec.kind = util::JournalKind::kMembership;
          rec.group = h.group;
          rec.a = hosted_.size();
          rec.b = static_cast<std::uint64_t>(h.process->incarnation());
          rec.payload = h.process->role();
          journal_->append(std::move(rec));
        }
        if (h.recovered) {
          h.process->on_recover();
        } else {
          h.process->on_start();
        }
      }
    });
  }
  transport_.start([this](transport::PeerId from, std::string frame) {
    // Transport receive thread: enqueue only; the loop thread decodes and
    // dispatches, keeping the process single-threaded.
    post([this, from, frame = std::move(frame)] { deliver(from, frame); });
  });
  running_ = true;
  loop_ = std::thread([this] { run_loop(); });
  loop_id_ = loop_.get_id();
}

void Node::stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (loop_.joinable()) loop_.join();
  loop_id_ = std::thread::id{};
  // Only after the join: a call() that saw running_ == true must have its
  // task executed by the loop or by the drains below, never run inline
  // concurrently with a still-live loop.
  running_ = false;

  // The loop may have exited with queued tasks (including call() bodies
  // whose futures a driver thread is waiting on). Everything is effectively
  // single-threaded from here — the loop is dead and transport receive
  // threads only enqueue — so drain inline, silence the transport, mark the
  // mailbox dead (late posts are dropped, late call()s run inline), and
  // drain once more for stragglers enqueued in between.
  auto drain = [this] {
    while (true) {
      std::function<void()> task;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (mailbox_.empty()) return;
        task = std::move(mailbox_.front());
        mailbox_.pop_front();
      }
      task();
    }
  };
  drain();
  transport_.stop();
  // Fold the carrier's counters into node metrics so tests and benches
  // read backpressure/coalescing through the same metrics surface as
  // every other net.* number. Thread-backend nodes report zeros.
  const auto tstats = transport_.stats();
  if (tstats.backpressure_drops > 0) {
    metrics_.incr("net.backpressure.drops", tstats.backpressure_drops);
  }
  if (tstats.flushes > 0) {
    metrics_.incr("net.flush.batch.flushes", tstats.flushes);
    metrics_.incr("net.flush.batch.frames", tstats.flushed_frames);
  }
  if (tstats.conn_drops > 0) metrics_.incr("net.conn.drops", tstats.conn_drops);
  {
    std::lock_guard<std::mutex> lock(mu_);
    dead_ = true;
  }
  drain();
  flush_journal();
}

bool Node::try_post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_) return false;
    mailbox_.push_back(std::move(fn));
  }
  cv_.notify_one();
  return true;
}

void Node::post(std::function<void()> fn) { try_post(std::move(fn)); }

void Node::run_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    while (!mailbox_.empty()) {
      auto task = std::move(mailbox_.front());
      mailbox_.pop_front();
      lock.unlock();
      task();
      lock.lock();
    }
    if (stopping_) return;

    lock.unlock();
    wheel_.fire_due(now());
    const auto next = wheel_.next_deadline();
    lock.lock();
    if (stopping_) return;
    if (!mailbox_.empty()) continue;

    if (next) {
      // Sleep until the earliest timer's real-clock deadline (or mail).
      const auto deadline = started_at_ + *next * options_.tick;
      cv_.wait_until(lock, deadline,
                     [this] { return stopping_ || !mailbox_.empty(); });
    } else {
      cv_.wait(lock, [this] { return stopping_ || !mailbox_.empty(); });
    }
  }
}

void Node::post_message(sim::NodeId /*from*/, sim::NodeId to, std::any payload,
                        sim::Time extra_delay) {
  const auto* env_ptr =
      std::any_cast<std::shared_ptr<const wire::Envelope>>(&payload);
  if (env_ptr == nullptr) {
    // encode_messages() is always on, so every SelfEncoding message arrives
    // here as an envelope; anything else cannot leave a live node.
    throw std::logic_error("runtime: message type has no wire encoding");
  }
  metrics_.incr("net.sent");
  const auto bytes = static_cast<std::int64_t>((*env_ptr)->wire_size());
  metrics_.incr("net.bytes_sent", bytes);
  metrics_.incr("net.bytes." + wire::message_name((*env_ptr)->tag), bytes);
  // Per-consensus-group byte accounting, mirroring the simulator's
  // g<G>.net.bytes.* namespace.
  const std::string gp = "g" + std::to_string((*env_ptr)->group);
  metrics_.incr(gp + ".net.bytes_sent", bytes);
  metrics_.incr(gp + ".net.bytes." + wire::message_name((*env_ptr)->tag), bytes);
  if (extra_delay > 0) {
    // Disk-latency modelling (send_after_sync): a live node's storage is
    // either in-memory (latency 0 in sane configs) or a FileStorage that
    // fsyncs inside write() and reports write_latency 0 — so this branch
    // only runs for configs that deliberately model extra disk time.
    // Either way the write itself completed before the send was posted:
    // the write-before-reply invariant never depends on this delay.
    wheel_.schedule(now() + extra_delay,
                    [this, to, env = *env_ptr] { ship(to, env); });
    return;
  }
  ship(to, *env_ptr);
}

void Node::ship(sim::NodeId to, const std::shared_ptr<const wire::Envelope>& env) {
  if (to == options_.id) {
    // Self-sends skip the transport but still take the decode path, so the
    // process sees exactly what a remote peer would have seen.
    post([this, frame = env->encode()] { deliver(options_.id, frame); });
    return;
  }
  // Encode into the loop-owned scratch buffer: its capacity is reused
  // across every shipped message, so the steady-state encode path does
  // no heap allocation (the transport copies into its own queue entry).
  encode_scratch_.clear();
  env->encode_into(encode_scratch_);
  if (!transport_.send(to, encode_scratch_)) metrics_.incr("net.lost");
}

void Node::deliver(transport::PeerId from, const std::string& frame) {
  std::any msg;
  sim::Process* target = nullptr;
  std::uint32_t group = 0;
  try {
    const wire::Envelope env = wire::Envelope::decode(frame);
    group = env.group;
    // Route to the same-group process. A frame for a group this node does
    // not serve is dropped, not guessed at: decoding it with another
    // group's registry would feed one shard's protocol stream into
    // another's state machine.
    auto it = by_group_.find(env.group);
    if (it == by_group_.end()) {
      metrics_.incr("net.group_unknown");
      return;
    }
    target = it->second;
    if (transport::TcpTransport::is_client_conn(from) &&
        !target->decoders().allowed_from_clients(env.tag)) {
      // A client connection (synthetic sender id) may only deliver the
      // tags explicitly marked for clients. Anything else is an injection
      // attempt: protocol handlers count distinct sender ids toward
      // quorums, so an unchecked connection could forge 1b/2b quorum
      // members at whatever role this node runs.
      metrics_.incr("net.client_rejected");
      return;
    }
    msg = target->decoders().decode(env);
  } catch (const std::exception&) {
    // Malformed body or unknown tag: a garbage frame must not kill a live
    // node. (Exceptions from on_message itself — engine invariants — are
    // outside this try and still propagate.)
    metrics_.incr("net.decode_errors");
    return;
  }
  metrics_.incr("net.delivered");
  target->on_group_message(group, from, msg);
}

int Node::post_timer(sim::Process& owner, sim::Time delay, int token) {
  if (delay < 0) throw std::invalid_argument("post_timer: negative delay");
  // Hosted processes live until node destruction, past the last wheel fire.
  sim::Process* o = &owner;
  return wheel_.schedule(now() + delay, [o, token] { o->on_timer(token); });
}

void Node::cancel_timer(int handle) { wheel_.cancel(handle); }

}  // namespace mcp::runtime
