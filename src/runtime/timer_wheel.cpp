#include "runtime/timer_wheel.hpp"

#include <utility>

namespace mcp::runtime {

int TimerWheel::schedule(sim::Time at, std::function<void()> action) {
  const int handle = next_handle_++;
  heap_.push(Entry{at, next_seq_++, handle, std::move(action)});
  return handle;
}

void TimerWheel::cancel(int handle) {
  if (handle > 0 && handle < next_handle_) cancelled_.insert(handle);
}

std::optional<sim::Time> TimerWheel::next_deadline() const {
  if (heap_.empty()) return std::nullopt;
  return heap_.top().at;
}

std::size_t TimerWheel::fire_due(sim::Time now) {
  std::size_t fired = 0;
  while (!heap_.empty() && heap_.top().at <= now) {
    // Pop before running: the action may schedule re-entrantly (same
    // const_cast pattern as sim::EventQueue::run_next).
    Entry entry = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    if (cancelled_.erase(entry.handle) > 0) continue;
    entry.action();
    ++fired;
  }
  return fired;
}

}  // namespace mcp::runtime
