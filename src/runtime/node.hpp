#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/timer_wheel.hpp"
#include "sim/host.hpp"
#include "sim/process.hpp"
#include "transport/transport.hpp"

namespace mcp::storage {
class FlightRecorder;
}

namespace mcp::runtime {

struct NodeOptions {
  /// Cluster-wide id of the hosted process (its Process::id() and the
  /// PeerId other nodes address it by).
  sim::NodeId id = 0;
  /// Real duration of one sim::Time tick. Protocol configs are written in
  /// ticks (retry_interval = 400, ...); the default maps a tick to 1 ms,
  /// so those configs mean the same thing they meant in latency benches.
  std::chrono::microseconds tick{1000};
  std::uint64_t rng_seed = 1;
  /// Durable state: empty keeps the default in-memory StableStorage (state
  /// dies with the process, the pre-PR-6 behaviour); otherwise the hosted
  /// process's storage is a storage::FileStorage rooted here, and a node
  /// reopening a non-empty directory runs the recovery protocol — bump and
  /// persist the incarnation counter, then on_recover() instead of
  /// on_start() as the first loop task.
  std::string data_dir;
  /// FileStorage snapshot cadence (records between snapshots); only read
  /// when data_dir is set.
  std::int64_t snapshot_every = 256;
  /// Protocol flight recorder: non-empty roots a storage::FlightRecorder
  /// here (missing parents are created) and every hosted process journals
  /// its protocol events — round/ballot transitions, 2a/2b votes with full
  /// c-structs, learn/apply, membership — into rotated, checksummed
  /// segments. The journal is the evidence `mcpaxos_inspect` audits after
  /// an incident; empty (the default) records nothing.
  std::string journal_dir;
  /// FlightRecorder rotation size / retention; only read when journal_dir
  /// is set.
  std::uint64_t journal_segment_bytes = 1u << 20;
  std::size_t journal_keep_segments = 16;
};

/// A live host for protocol processes: the runtime counterpart of
/// sim::Simulation (the other sim::Host implementation).
///
/// A node hosts one process per consensus group — the classic single-group
/// node is just the `groups = {0}` case — all multiplexed over the one
/// shared transport, one TimerWheel, and one event loop; no extra threads.
/// Incoming frames are routed to the same-group process by the envelope's
/// group id; group 0 frames are byte-identical to the pre-sharding format.
///
/// The node owns a single-threaded event loop. Every handler of every
/// hosted process — on_start, on_message, on_timer — runs on that loop
/// thread, so protocol code keeps the single-threaded world view it was
/// written for; concurrency lives in the transport, whose receive threads
/// only enqueue into the node's mailbox.
///
///  - Process::send serializes into a wire::Envelope (encoding is always
///    on under a real transport) and the node ships Envelope::encode() as
///    one transport frame. Byte counters use the same names the simulator
///    uses (net.bytes_sent, net.bytes.<msg>, ...).
///  - Incoming frames decode through the process's own
///    wire::DecoderRegistry — unchanged from the simulator — so
///    on_message still sees typed messages.
///  - Timers map onto a TimerWheel driven by std::chrono::steady_clock,
///    preserving the simulator's ordering and cancellation contract.
class Node final : public sim::Host {
 public:
  Node(NodeOptions options, transport::Transport& transport);
  ~Node() override;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Construct and adopt a hosted process for consensus group 0 (the only
  /// group of an unsharded node — exactly the pre-sharding behaviour).
  template <typename P, typename... Args>
  P& make_process(Args&&... args) {
    return make_process_for_group<P>(0, std::forward<Args>(args)...);
  }

  /// Construct and adopt the hosted process for one consensus group. At
  /// most one process per group; durable state lives under
  /// `data_dir/g<G>` for G > 0 (group 0 keeps the directory root, so
  /// existing single-group data dirs recover unchanged).
  template <typename P, typename... Args>
  P& make_process_for_group(std::uint32_t group, Args&&... args) {
    auto owned = std::make_unique<P>(std::forward<Args>(args)...);
    P& ref = *owned;
    adopt(std::move(owned), group);
    return ref;
  }

  /// Route an additional group's frames to an already-hosted process — for
  /// a process that serves several groups at once (a sharded frontend).
  /// The process must override on_group_message to demultiplex.
  void route_group(std::uint32_t group, sim::Process& process);

  /// The first-adopted process (the node's only process pre-sharding).
  sim::Process& process() { return *primary_; }
  /// The process serving `group`, or nullptr if none is hosted/routed.
  sim::Process* process_for_group(std::uint32_t group) {
    auto it = by_group_.find(group);
    return it == by_group_.end() ? nullptr : it->second;
  }

  /// Start the transport and the loop thread; runs each hosted process's
  /// on_start() — or on_recover(), when its data dir held prior state — as
  /// the first loop task, in adoption order.
  void start();

  /// True when adoption found prior durable state for any hosted process
  /// (this run is a restart, not a first boot).
  bool recovered() const { return recovered_; }
  /// Drain no further work and join the loop thread, then stop the
  /// transport. Idempotent.
  void stop();
  bool running() const { return running_; }

  /// Run a closure on the loop thread (asynchronously). The only correct
  /// way for outside threads to poke the process (e.g. propose a command).
  /// After shutdown completes the closure is silently dropped.
  void post(std::function<void()> fn);

  /// Run a closure on the loop thread and wait for its result — the safe
  /// way to read process state from a test or driver thread. Runs inline
  /// when called from the loop thread itself (no self-deadlock) or when
  /// the loop is not running (construction/shutdown: single-threaded
  /// then). A call() racing stop() either executes during stop()'s drain
  /// or falls back to inline — it never hangs on a dropped task.
  template <typename F>
  auto call(F&& fn) -> std::invoke_result_t<F> {
    using R = std::invoke_result_t<F>;
    if (std::this_thread::get_id() == loop_id_.load()) return fn();
    if (!running_) return fn();
    std::promise<R> done;
    auto future = done.get_future();
    const bool posted = try_post([&] {
      if constexpr (std::is_void_v<R>) {
        fn();
        done.set_value();
      } else {
        done.set_value(fn());
      }
    });
    if (!posted) return fn();  // raced shutdown past the final drain
    return future.get();
  }

  const NodeOptions& options() const { return options_; }

  /// The node's flight recorder, or nullptr when journaling is off. The
  /// pointer is stable for the node's lifetime, so a fatal-signal handler
  /// may cache it and call signal_flush().
  storage::FlightRecorder* flight_recorder() { return journal_.get(); }
  /// fsync the journal (admin /dump, clean shutdown). Safe cross-thread;
  /// no-op when journaling is off.
  void flush_journal();

  /// Groups hosted or routed on this node, for health/introspection
  /// endpoints. Stable after start() (adoption happens strictly before).
  const std::map<std::uint32_t, sim::Process*>& group_table() const {
    return by_group_;
  }

  // --- sim::Host ------------------------------------------------------------
  sim::Time now() const override;
  /// Real-clock trace timestamps: microseconds since start(), so spans
  /// recorded by the loop thread and the transport reactor share a clock.
  std::uint64_t trace_now_us() const override {
    const auto dt = std::chrono::steady_clock::now() - started_at_;
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(dt);
    return us.count() > 0 ? static_cast<std::uint64_t>(us.count()) : 0;
  }
  util::Metrics& metrics() override { return metrics_; }
  util::Rng& rng() override { return rng_; }
  bool encode_messages() const override { return true; }
  void post_message(sim::NodeId from, sim::NodeId to, std::any payload,
                    sim::Time extra_delay) override;
  int post_timer(sim::Process& owner, sim::Time delay, int token) override;
  void cancel_timer(int handle) override;

 private:
  struct Hosted {
    std::unique_ptr<sim::Process> process;
    std::uint32_t group = 0;
    /// This process's own data dir held prior state at adoption.
    bool recovered = false;
  };

  void adopt(std::unique_ptr<sim::Process> process, std::uint32_t group);
  /// Enqueue unless shutdown already passed its final drain (then false:
  /// nothing would ever run the task).
  bool try_post(std::function<void()> fn);
  void run_loop();
  /// Ship an encoded envelope now (loop thread only).
  void ship(sim::NodeId to, const std::shared_ptr<const wire::Envelope>& env);
  /// Decode and dispatch one received frame (loop thread only).
  void deliver(transport::PeerId from, const std::string& frame);

  NodeOptions options_;
  transport::Transport& transport_;
  /// Owned flight recorder (Host::journal() points at it when enabled).
  std::unique_ptr<storage::FlightRecorder> journal_;
  /// Reusable encode buffer for ship() (loop thread only): message bytes
  /// are built here and handed to the transport by view, so steady-state
  /// sends allocate nothing.
  std::string encode_scratch_;
  bool recovered_ = false;
  util::Metrics metrics_;
  util::Rng rng_;
  std::vector<Hosted> hosted_;
  /// Envelope-group → hosted (or explicitly routed) process.
  std::map<std::uint32_t, sim::Process*> by_group_;
  sim::Process* primary_ = nullptr;
  std::chrono::steady_clock::time_point started_at_{};

  TimerWheel wheel_;  // loop thread only

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> mailbox_;
  bool stopping_ = false;   // guarded by mu_: loop must exit
  bool dead_ = false;       // guarded by mu_: final drain passed, drop posts
  std::atomic<bool> running_{false};
  std::atomic<std::thread::id> loop_id_{};
  std::mutex stop_mu_;  // serializes stop() callers
  std::thread loop_;
};

}  // namespace mcp::runtime
