#include "runtime/admin.hpp"

#include <optional>
#include <sstream>

#include "storage/flight_recorder.hpp"
#include "util/exposition.hpp"
#include "util/trace.hpp"

namespace mcp::runtime {

std::string healthz_text(Node& node) {
  // One call() gathers everything: process state is only coherent on the
  // loop thread. If the loop is not running (startup/shutdown) call() runs
  // inline, which is equally safe — nothing else is touching the process.
  return node.call([&node] {
    std::ostringstream out;
    out << "node " << node.options().id
        << " running=" << (node.running() ? 1 : 0)
        << " recovered=" << (node.recovered() ? 1 : 0) << "\n";
    for (const auto& [gid, process] : node.group_table()) {
      out << "group " << gid << " role=" << process->role()
          << " incarnation=" << process->incarnation();
      const sim::NodeId leader = process->leader_hint();
      out << " leader=";
      if (leader == sim::kNoNode) {
        out << "none";
      } else {
        out << leader;
      }
      // Learner-bearing roles also report consensus progress: learned
      // prefix length and replica apply lag, so a scraper can tell a
      // stuck group (learned frozen, or lag growing) from a healthy one.
      std::uint64_t learned = 0;
      std::uint64_t applied = 0;
      if (process->group_progress(gid, &learned, &applied)) {
        out << " learned=" << learned << " applied=" << applied
            << " lag=" << (learned >= applied ? learned - applied : 0);
      }
      out << "\n";
    }
    return out.str();
  });
}

std::string dump_text(Node& node) {
  storage::FlightRecorder* recorder = node.flight_recorder();
  if (recorder == nullptr) return "journal: disabled\n";
  node.flush_journal();
  std::ostringstream out;
  out << "journal: flushed dir=" << recorder->dir()
      << " events=" << recorder->events() << " bytes=" << recorder->bytes()
      << " segments=" << recorder->segments_created() << "\n";
  return out.str();
}

std::uint16_t install_admin(Node& node, transport::TcpTransport& transport,
                            std::uint16_t port) {
  return transport.enable_admin(
      port, [&node](const std::string& path) -> std::optional<std::string> {
        if (path == "/metrics") {
          // Metrics is internally locked; reading it from the reactor
          // thread while the loop thread writes is the designed use.
          return util::prometheus_exposition(node.metrics());
        }
        if (path == "/healthz" || path == "/health") {
          return healthz_text(node);
        }
        if (path == "/trace") {
          // Live trace export: the recorder is built for concurrent
          // snapshot-while-recording, so this needs no loop-thread hop —
          // the ring is readable even if the loop is wedged, which is
          // exactly when an operator wants it.
          return util::TraceRecorder::perfetto_json(node.trace().snapshot());
        }
        if (path == "/dump") {
          // Incident trigger: make the flight recorder durable now.
          return dump_text(node);
        }
        return std::nullopt;
      });
}

}  // namespace mcp::runtime
