#include "runtime/admin.hpp"

#include <optional>
#include <sstream>

#include "util/exposition.hpp"

namespace mcp::runtime {

std::string healthz_text(Node& node) {
  // One call() gathers everything: process state is only coherent on the
  // loop thread. If the loop is not running (startup/shutdown) call() runs
  // inline, which is equally safe — nothing else is touching the process.
  return node.call([&node] {
    std::ostringstream out;
    out << "node " << node.options().id
        << " running=" << (node.running() ? 1 : 0)
        << " recovered=" << (node.recovered() ? 1 : 0) << "\n";
    for (const auto& [gid, process] : node.group_table()) {
      out << "group " << gid << " role=" << process->role()
          << " incarnation=" << process->incarnation();
      const sim::NodeId leader = process->leader_hint();
      out << " leader=";
      if (leader == sim::kNoNode) {
        out << "none";
      } else {
        out << leader;
      }
      out << "\n";
    }
    return out.str();
  });
}

std::uint16_t install_admin(Node& node, transport::TcpTransport& transport,
                            std::uint16_t port) {
  return transport.enable_admin(
      port, [&node](const std::string& path) -> std::optional<std::string> {
        if (path == "/metrics") {
          // Metrics is internally locked; reading it from the reactor
          // thread while the loop thread writes is the designed use.
          return util::prometheus_exposition(node.metrics());
        }
        if (path == "/healthz" || path == "/health") {
          return healthz_text(node);
        }
        return std::nullopt;
      });
}

}  // namespace mcp::runtime
