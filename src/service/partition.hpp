#pragma once

// The ONE key → consensus-group mapping, shared by the frontend (routing
// client commands into shards), the benches (labelling per-group latency)
// and the acceptance tests (pinning workloads to a group). Every party of
// a sharded cluster must compute the same answer from the same cluster
// file, exactly like runtime::roles_of for role membership.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/cluster_file.hpp"

namespace mcp::service {

class KeyPartition {
 public:
  /// The trivial partition: everything maps to group 0.
  KeyPartition() = default;

  /// Hash-partition across groups 0..n-1.
  static KeyPartition hashed(std::uint32_t groups) {
    KeyPartition p;
    p.hash_groups_ = groups == 0 ? 1 : groups;
    return p;
  }

  /// Build from validated cluster-file group declarations (empty = the
  /// implicit single group 0).
  static KeyPartition from_groups(const std::vector<runtime::ClusterGroup>& groups) {
    if (groups.empty()) return KeyPartition{};
    if (groups.front().mode == "hash") {
      return hashed(static_cast<std::uint32_t>(groups.size()));
    }
    KeyPartition p;
    for (const auto& g : groups) p.ranges_.push_back({g.id, g.lo, g.hi});
    return p;
  }

  /// Consensus group owning `key`. Hash mode: FNV-1a(key) % groups. Range
  /// mode: the group whose [lo, hi) interval contains the key; keys no
  /// range owns fall back to the first declared group (validation keeps
  /// ranges disjoint but does not force them to cover the keyspace).
  std::uint32_t group_of(std::string_view key) const {
    if (ranges_.empty()) return static_cast<std::uint32_t>(hash(key) % hash_groups_);
    for (const auto& r : ranges_) {
      if (key >= r.lo && (r.hi == "+" || key < r.hi)) return r.gid;
    }
    return ranges_.front().gid;
  }

  /// Distinct groups this partition can return.
  std::uint32_t group_count() const {
    return ranges_.empty() ? hash_groups_
                           : static_cast<std::uint32_t>(ranges_.size());
  }

  /// All group ids, in declaration order (0..n-1 for hash mode).
  std::vector<std::uint32_t> group_ids() const {
    std::vector<std::uint32_t> ids;
    if (ranges_.empty()) {
      for (std::uint32_t g = 0; g < hash_groups_; ++g) ids.push_back(g);
    } else {
      for (const auto& r : ranges_) ids.push_back(r.gid);
    }
    return ids;
  }

  /// FNV-1a over the key bytes — stable across platforms and builds, so a
  /// cluster whose nodes disagree on std::hash still routes identically.
  static std::uint64_t hash(std::string_view key) {
    std::uint64_t h = 1469598103934665603ULL;
    for (const char c : key) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ULL;
    }
    return h;
  }

 private:
  struct Range {
    std::uint32_t gid;
    std::string lo;
    std::string hi;
  };
  std::uint32_t hash_groups_ = 1;
  std::vector<Range> ranges_;
};

}  // namespace mcp::service
