#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cstruct/command.hpp"
#include "service/messages.hpp"
#include "transport/frame.hpp"
#include "transport/thread_transport.hpp"

namespace mcp::service {

/// One client's connection substrate: ships wire::Envelope payloads to the
/// currently connected server and hands back reply payloads. Channels are
/// deliberately dumb — retry, dedup and redirect logic live in Client, so
/// a test channel can sit in between and inject loss or duplication.
class ClientChannel {
 public:
  virtual ~ClientChannel() = default;

  /// (Re)connect to `server`; false when the server is unknown/unreachable.
  virtual bool connect(sim::NodeId server) = 0;
  /// Ship one payload to the connected server (framing is the channel's
  /// business). False = connection is broken; caller reconnects.
  virtual bool send(std::string_view payload) = 0;
  /// Next reply payload, or nullopt when `timeout` passes first.
  virtual std::optional<std::string> recv(std::chrono::milliseconds timeout) = 0;
  virtual void close() = 0;
};

/// Where a server listens (TCP channel).
struct ServerAddr {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Client connection over a real TCP socket: varint-framed envelopes, no
/// peer handshake — the transport recognizes the connection as a client by
/// exactly that absence (see TcpTransport). One socket at a time; connect()
/// to another server drops the old one.
class TcpClientChannel final : public ClientChannel {
 public:
  explicit TcpClientChannel(std::map<sim::NodeId, ServerAddr> servers,
                            std::chrono::milliseconds dial_timeout =
                                std::chrono::milliseconds(250));
  ~TcpClientChannel() override;

  TcpClientChannel(const TcpClientChannel&) = delete;
  TcpClientChannel& operator=(const TcpClientChannel&) = delete;

  bool connect(sim::NodeId server) override;
  bool send(std::string_view payload) override;
  std::optional<std::string> recv(std::chrono::milliseconds timeout) override;
  void close() override;

 private:
  std::map<sim::NodeId, ServerAddr> servers_;
  std::chrono::milliseconds dial_timeout_;
  int fd_ = -1;
  transport::FrameBuffer frames_;
};

/// Client connection over an in-process ThreadHub: the client occupies a
/// hub endpoint of its own (its id must not collide with any cluster
/// node's), so frontend replies to that id land in this channel's queue.
class HubClientChannel final : public ClientChannel {
 public:
  HubClientChannel(transport::ThreadHub& hub, sim::NodeId self);
  ~HubClientChannel() override;

  bool connect(sim::NodeId server) override;
  bool send(std::string_view payload) override;
  std::optional<std::string> recv(std::chrono::milliseconds timeout) override;
  void close() override;

 private:
  transport::Transport& endpoint_;
  sim::NodeId server_ = sim::kNoNode;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::string> replies_;
};

/// Synchronous KV client: put/get with session-sequenced requests,
/// timeout-driven retransmission and redirect handling. One outstanding
/// operation at a time (the session dedup contract assumes it); not
/// thread-safe — give each client thread its own Client.
class Client {
 public:
  struct Options {
    /// Session identity; 0 picks a random one. Stable across reconnects.
    std::uint64_t client_id = 0;
    /// Servers to try, in rotation order (ids the channel understands).
    std::vector<sim::NodeId> servers;
    /// How long one attempt waits for a reply before retransmitting.
    std::chrono::milliseconds attempt_timeout{250};
    /// Attempts (first send included) before an op fails.
    int max_attempts = 40;
  };

  struct Result {
    bool ok = false;     ///< a reply arrived within the attempt budget
    bool found = false;  ///< reads: key existed; writes: always true
    std::string value;
  };

  Client(std::unique_ptr<ClientChannel> channel, Options options);

  Result put(std::string key, std::string value);
  Result get(std::string key);

  std::uint64_t client_id() const { return options_.client_id; }
  std::uint64_t seq() const { return seq_; }
  /// Retransmissions beyond each op's first send.
  std::uint64_t retries() const { return retries_; }
  std::uint64_t redirects_followed() const { return redirects_; }

 private:
  Result call(cstruct::OpType op, std::string key, std::string value);
  void rotate_server();

  std::unique_ptr<ClientChannel> channel_;
  Options options_;
  std::size_t server_index_ = 0;
  bool connected_ = false;
  std::uint64_t seq_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t redirects_ = 0;
};

}  // namespace mcp::service
