#include "service/frontend.hpp"

#include <stdexcept>
#include <utility>

namespace mcp::service {

Frontend::Frontend(const genpaxos::Config<cstruct::History>& config)
    : Frontend(config, Options()) {}

Frontend::Frontend(const genpaxos::Config<cstruct::History>& config, Options options)
    : Frontend(std::vector<GroupConfig>{{0, &config}}, KeyPartition{}, options) {}

Frontend::Frontend(const std::vector<GroupConfig>& groups, KeyPartition partition,
                   Options options)
    : options_(options), partition_(std::move(partition)) {
  if (groups.empty()) throw std::invalid_argument("Frontend: no groups");
  for (const GroupConfig& g : groups) {
    if (g.config == nullptr) throw std::invalid_argument("Frontend: null config");
    auto shard = std::make_unique<Shard>(*this, g.gid, *g.config);
    // The shard's own messages (resync requests after a lost delta) must
    // carry its group id, not the frontend process's (group 0), so the
    // acceptor answers into the right stream.
    shard->core.set_wire_group(g.gid);
    shard->replica.set_apply_listener(
        [this, gid = g.gid](const cstruct::Command& c, const smr::KVStore::Result& r) {
          if (journaling()) {
            util::JournalRecord rec;
            rec.kind = util::JournalKind::kApply;
            rec.a = c.id;
            journal_event(std::move(rec), gid);
          }
          on_applied(c, r);
        });
    if (!by_gid_.emplace(g.gid, shard.get()).second) {
      throw std::invalid_argument("Frontend: duplicate group id " +
                                  std::to_string(g.gid));
    }
    shards_.push_back(std::move(shard));
  }
  for (const std::uint32_t gid : partition_.group_ids()) {
    if (by_gid_.count(gid) == 0) {
      throw std::invalid_argument("Frontend: partition routes to group " +
                                  std::to_string(gid) + " but no such shard");
    }
  }
  genpaxos::register_wire_messages(decoders(), shards_.front()->config->bottom);
  register_client_messages(decoders());
}

void Frontend::on_recover() {
  sessions_.clear();
  pending_.clear();
  slow_ops_.clear();
  retry_armed_ = false;
  for (auto& shard : shards_) {
    shard->batch.clear();
    shard->flush_timer = -1;  // crash cancelled the host-side timer already
    // Drain anything the (embedded, never-crashed-separately) replica has
    // not applied yet; on a real restart both are empty and this is a no-op.
    shard->replica.poll();
  }
}

void Frontend::on_message(sim::NodeId from, const std::any& m) {
  // Group-less entry (direct test calls): unambiguous only because the
  // hosts always dispatch through on_group_message — route to the sole
  // shard, or treat as group-0 traffic when sharded.
  on_group_message(shards_.size() == 1 ? shards_.front()->gid : 0, from, m);
}

void Frontend::on_group_message(std::uint32_t group, sim::NodeId from,
                                const std::any& m) {
  // The learner half first: 2b/2b-delta traffic feeds the addressed
  // shard's core, which applies through its replica and — via on_applied —
  // answers clients. The group id is the only discriminator: on a live
  // node every shard's 2b stream arrives from the same acceptor node ids.
  if (Shard* shard = shard_of_group(group)) {
    if (shard->core.handle_message(from, m)) return;
  }
  if (const auto* req = std::any_cast<MsgClientRequest>(&m)) {
    // Clients are group-unaware (requests ride group 0); routing to a
    // shard happens by key inside handle_request.
    handle_request(from, *req);
    return;
  }
  // MsgAck and friends: the session table, not acks, tracks completion.
}

Frontend::Shard& Frontend::shard_of_key(const std::string& key) {
  // The constructor verified every partition target has a shard.
  return *by_gid_.at(partition_.group_of(key));
}

Frontend::Shard* Frontend::shard_of_group(std::uint32_t gid) {
  const auto it = by_gid_.find(gid);
  return it == by_gid_.end() ? nullptr : it->second;
}

void Frontend::handle_request(sim::NodeId from, const MsgClientRequest& req) {
  ++requests_received_;
  sim().metrics().incr("svc.requests");
  if (options_.redirect_to != sim::kNoNode) {
    MsgClientReply reply;
    reply.client_id = req.client_id;
    reply.seq = req.seq;
    reply.status = ReplyStatus::kRedirect;
    reply.redirect = options_.redirect_to;
    send(from, reply);
    sim().metrics().incr("svc.redirects");
    return;
  }

  Session& session = touch_session(req.client_id);
  if (req.seq != 0 && req.seq == session.completed_seq) {
    // Retry of the last completed op: its reply was lost. Answer from the
    // cache — the command must not reach consensus a second time.
    ++duplicates_dropped_;
    sim().metrics().incr("svc.duplicates");
    send(from, session.last_reply);
    ++replies_sent_;
    return;
  }
  if (req.seq < session.completed_seq) {
    // Older than anything we still cache: the client has since accepted
    // replies for later ops, so it cannot be waiting on this one.
    ++duplicates_dropped_;
    sim().metrics().incr("svc.duplicates");
    return;
  }
  if (const auto it = session.inflight.find(req.seq); it != session.inflight.end()) {
    // Retry of an op already proposed and not yet applied: keep consensus
    // untouched, but refresh the reply route — the client may have
    // reconnected on a new connection.
    ++duplicates_dropped_;
    sim().metrics().incr("svc.duplicates");
    if (const auto p = pending_.find(it->second); p != pending_.end()) {
      p->second.conn = from;
    }
    return;
  }

  Shard& shard = shard_of_key(req.key);
  Pending pending;
  pending.client_id = req.client_id;
  pending.seq = req.seq;
  pending.conn = from;
  pending.gid = shard.gid;
  pending.recv_at = now();
  pending.command.id = session_command_id(req.client_id, req.seq);
  // Replies flow through the session table, not learner MsgAck traffic.
  pending.command.proposer = sim::kNoNode;
  pending.command.type = req.op;
  pending.command.key = req.key;
  pending.command.value = req.value;

  // Every Nth accepted request gets a trace id that follows the command
  // through the batch, the consensus roles, and back out in its reply.
  ++accepted_for_trace_;
  if (options_.trace_sample_every > 0 && sim().trace().enabled() &&
      (accepted_for_trace_ - 1) % options_.trace_sample_every == 0) {
    // Deterministic in the session position (and never 0): the same op
    // retried through another frontend carries the same trace id.
    pending.trace_id = pending.command.id | 1;
    trace_point(util::TracePoint::kClientRecv, pending.trace_id, req.seq,
                shard.gid);
  }

  if (shard.core.learned().contains(pending.command)) {
    // The command is already chosen — a retry after failover or a redirect
    // landed here while another frontend proposed it (the deterministic
    // command id made the two proposals one). The apply-time result is
    // gone, so serve from the current store: the client has accepted no
    // reply for this op yet, so "applied now" is a valid completion.
    smr::KVStore::Result result{true, pending.command.value};
    if (req.op == cstruct::OpType::kRead) {
      const auto& data = shard.replica.store().data();
      const auto it = data.find(req.key);
      result.found = it != data.end();
      result.value = result.found ? it->second : std::string();
    }
    complete(std::move(pending), result);
    return;
  }

  session.inflight.emplace(req.seq, pending.command.id);
  shard.batch.push_back(pending.command.id);
  pending_.emplace(pending.command.id, std::move(pending));

  if (shard.batch.size() >= options_.batch_size || options_.batch_delay <= 0) {
    flush(shard);
  } else if (shard.flush_timer < 0) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (shards_[i].get() == &shard) {
        shard.flush_timer =
            set_timer(options_.batch_delay, kFlushTokenBase + static_cast<int>(i));
        break;
      }
    }
  }
}

Frontend::Session& Frontend::touch_session(std::uint64_t client_id) {
  Session& session = sessions_[client_id];
  session.last_touched = ++session_clock_;
  if (sessions_.size() > options_.max_sessions) {
    // Evict the least-recently-used idle session (never one with ops in
    // flight — pending_ routes replies through it). One eviction per
    // insertion keeps the map at the cap with O(n) scan cost only on the
    // requests that grow it.
    auto victim = sessions_.end();
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
      if (it->first == client_id || !it->second.inflight.empty()) continue;
      if (victim == sessions_.end() ||
          it->second.last_touched < victim->second.last_touched) {
        victim = it;
      }
    }
    if (victim != sessions_.end()) {
      sessions_.erase(victim);
      sim().metrics().incr("svc.sessions_evicted");
    }
  }
  return sessions_[client_id];
}

void Frontend::on_timer(int token) {
  if (token >= kFlushTokenBase) {
    const auto idx = static_cast<std::size_t>(token - kFlushTokenBase);
    if (idx >= shards_.size()) return;
    Shard& shard = *shards_[idx];
    shard.flush_timer = -1;
    flush(shard);
    return;
  }
  if (token != kRetryToken) return;
  retry_armed_ = false;
  if (pending_.empty()) return;
  // Liveness: re-propose everything not yet learned, one batch per shard.
  // The coordinator treats a fully-contained batch as a retransmission
  // request.
  std::map<std::uint32_t, std::vector<cstruct::Command>> per_shard;
  for (const auto& [id, p] : pending_) per_shard[p.gid].push_back(p.command);
  for (const auto& [gid, cmds] : per_shard) {
    // Retransmissions are not re-traced: the original spans already
    // cover the command, and a retry batch mixes many windows.
    if (Shard* shard = shard_of_group(gid)) propose_batch(*shard, cmds, 0);
  }
  sim().metrics().incr("svc.retries");
  retry_armed_ = true;
  set_timer(options_.retry_interval, kRetryToken);
}

void Frontend::flush(Shard& shard) {
  if (shard.flush_timer >= 0) {
    cancel_timer(shard.flush_timer);
    shard.flush_timer = -1;
  }
  if (shard.batch.empty()) return;
  std::vector<cstruct::Command> cmds;
  cmds.reserve(shard.batch.size());
  std::uint64_t batch_trace = 0;  // first traced command represents the window
  const sim::Time flush_now = now();
  for (const std::uint64_t id : shard.batch) {
    if (const auto it = pending_.find(id); it != pending_.end()) {
      Pending& p = it->second;
      cmds.push_back(p.command);
      p.flushed_at = flush_now;
      sim().metrics().sample("svc.lat.batch_wait",
                             static_cast<double>(flush_now - p.recv_at));
      if (p.trace_id != 0) {
        trace_point(util::TracePoint::kBatchFlush, p.trace_id,
                    shard.batch.size(), shard.gid);
        if (batch_trace == 0) batch_trace = p.trace_id;
      }
    }
  }
  shard.batch.clear();
  if (cmds.empty()) return;
  propose_batch(shard, cmds, batch_trace);
  if (journaling()) {
    util::JournalRecord rec;
    rec.kind = util::JournalKind::kBatch;
    rec.a = cmds.size();
    rec.b = cmds.front().id;
    journal_event(std::move(rec), shard.gid);
  }
  ++batches_flushed_;
  sim().metrics().incr("svc.batches");
  sim().metrics().incr("svc.batched_commands", static_cast<std::int64_t>(cmds.size()));
  if (!retry_armed_) {
    retry_armed_ = true;
    set_timer(options_.retry_interval, kRetryToken);
  }
}

void Frontend::propose_batch(Shard& shard, const std::vector<cstruct::Command>& cmds,
                             std::uint64_t trace_id) {
  const genpaxos::MsgProposeBatch batch{cmds, trace_id};
  multicast_group(shard.gid, shard.config->policy->all_coordinators(), batch);
  multicast_group(shard.gid, shard.config->acceptors, batch);  // fast-round path
}

void Frontend::on_applied(const cstruct::Command& c, const smr::KVStore::Result& result) {
  const auto it = pending_.find(c.id);
  if (it == pending_.end()) return;  // another frontend's client, or internal
  Pending pending = std::move(it->second);
  pending_.erase(it);
  pending.learned_at = now();
  if (pending.flushed_at >= 0) {
    const auto consensus = static_cast<double>(pending.learned_at - pending.flushed_at);
    sim().metrics().sample("svc.lat.consensus", consensus);
    sim().metrics().sample("g" + std::to_string(pending.gid) + ".svc.lat.consensus",
                           consensus);
  }
  if (pending.trace_id != 0) {
    trace_point(util::TracePoint::kLearned, pending.trace_id, 0, pending.gid);
  }
  complete(std::move(pending), result);
}

void Frontend::complete(Pending pending, const smr::KVStore::Result& result) {
  Session& session = sessions_[pending.client_id];
  session.inflight.erase(pending.seq);

  // Stage attribution: apply = quorum -> state-machine result (zero on
  // the synchronous path, nonzero once apply is ever deferred); reply =
  // the client-visible total, receive -> reply.
  const sim::Time done = now();
  const sim::Time learned_at = pending.learned_at >= 0 ? pending.learned_at : done;
  const sim::Time total = done - pending.recv_at;
  sim().metrics().sample("svc.lat.apply", static_cast<double>(done - learned_at));
  sim().metrics().sample("svc.lat.reply", static_cast<double>(total));
  if (pending.trace_id != 0) {
    trace_point(util::TracePoint::kApplied, pending.trace_id, 0, pending.gid);
  }

  MsgClientReply reply;
  reply.client_id = pending.client_id;
  reply.seq = pending.seq;
  reply.status = ReplyStatus::kOk;
  reply.found = result.found;
  reply.value = result.value;
  reply.trace_id = pending.trace_id;
  if (pending.seq > session.completed_seq) {
    session.completed_seq = pending.seq;
    session.last_reply = reply;
  }
  send(pending.conn, reply);
  ++replies_sent_;
  sim().metrics().incr("svc.replies");
  if (pending.trace_id != 0) {
    trace_point(util::TracePoint::kReplySent, pending.trace_id,
                static_cast<std::uint64_t>(total), pending.gid);
  }

  if (options_.slow_op_threshold > 0 && total >= options_.slow_op_threshold) {
    sim().metrics().incr("svc.slow_ops");
    trace_point(util::TracePoint::kSlowOp, pending.trace_id,
                static_cast<std::uint64_t>(total), pending.gid);
    slow_ops_.push_back(SlowOp{pending.client_id, pending.seq,
                               pending.command.key, pending.gid,
                               pending.recv_at, total, pending.trace_id});
    if (slow_ops_.size() > kSlowOpCap) slow_ops_.pop_front();
  }
}

const smr::KVStore* Frontend::store_for_group(std::uint32_t gid) const {
  const auto it = by_gid_.find(gid);
  return it == by_gid_.end() ? nullptr : &it->second->replica.store();
}

const cstruct::History* Frontend::learned_for_group(std::uint32_t gid) const {
  const auto it = by_gid_.find(gid);
  return it == by_gid_.end() ? nullptr : &it->second->core.learned();
}

std::map<std::string, std::string> Frontend::store_data() const {
  std::map<std::string, std::string> out;
  for (const auto& shard : shards_) {
    const auto& data = shard->replica.store().data();
    out.insert(data.begin(), data.end());
  }
  return out;
}

std::size_t Frontend::applied() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard->replica.applied();
  return n;
}

std::vector<std::uint32_t> Frontend::group_ids() const {
  std::vector<std::uint32_t> ids;
  ids.reserve(shards_.size());
  for (const auto& shard : shards_) ids.push_back(shard->gid);
  return ids;
}

bool Frontend::group_progress(std::uint32_t gid, std::uint64_t* learned,
                              std::uint64_t* applied) const {
  const auto it = by_gid_.find(gid);
  if (it == by_gid_.end()) return false;
  *learned = static_cast<std::uint64_t>(it->second->core.learned().size());
  *applied = static_cast<std::uint64_t>(it->second->replica.applied());
  return true;
}

}  // namespace mcp::service
