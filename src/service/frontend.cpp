#include "service/frontend.hpp"

#include <utility>

namespace mcp::service {

Frontend::Frontend(const genpaxos::Config<cstruct::History>& config)
    : Frontend(config, Options()) {}

Frontend::Frontend(const genpaxos::Config<cstruct::History>& config, Options options)
    : config_(config), options_(options), core_(*this, config), replica_(core_) {
  genpaxos::register_wire_messages(decoders(), config.bottom);
  register_client_messages(decoders());
  replica_.set_apply_listener(
      [this](const cstruct::Command& c, const smr::KVStore::Result& r) {
        on_applied(c, r);
      });
}

void Frontend::on_recover() {
  sessions_.clear();
  pending_.clear();
  batch_.clear();
  flush_timer_ = -1;   // crash cancelled the host-side timer already
  retry_armed_ = false;
  // Drain anything the (embedded, never-crashed-separately) replica has
  // not applied yet; on a real restart both are empty and this is a no-op.
  replica_.poll();
}

void Frontend::on_message(sim::NodeId from, const std::any& m) {
  // The learner half first: 2b/2b-delta traffic feeds the core, which
  // applies through the replica and — via on_applied — answers clients.
  if (core_.handle_message(from, m)) return;
  if (const auto* req = std::any_cast<MsgClientRequest>(&m)) {
    handle_request(from, *req);
    return;
  }
  // MsgAck and friends: the session table, not acks, tracks completion.
}

void Frontend::handle_request(sim::NodeId from, const MsgClientRequest& req) {
  ++requests_received_;
  sim().metrics().incr("svc.requests");
  if (options_.redirect_to != sim::kNoNode) {
    MsgClientReply reply;
    reply.client_id = req.client_id;
    reply.seq = req.seq;
    reply.status = ReplyStatus::kRedirect;
    reply.redirect = options_.redirect_to;
    send(from, reply);
    sim().metrics().incr("svc.redirects");
    return;
  }

  Session& session = touch_session(req.client_id);
  if (req.seq != 0 && req.seq == session.completed_seq) {
    // Retry of the last completed op: its reply was lost. Answer from the
    // cache — the command must not reach consensus a second time.
    ++duplicates_dropped_;
    sim().metrics().incr("svc.duplicates");
    send(from, session.last_reply);
    ++replies_sent_;
    return;
  }
  if (req.seq < session.completed_seq) {
    // Older than anything we still cache: the client has since accepted
    // replies for later ops, so it cannot be waiting on this one.
    ++duplicates_dropped_;
    sim().metrics().incr("svc.duplicates");
    return;
  }
  if (const auto it = session.inflight.find(req.seq); it != session.inflight.end()) {
    // Retry of an op already proposed and not yet applied: keep consensus
    // untouched, but refresh the reply route — the client may have
    // reconnected on a new connection.
    ++duplicates_dropped_;
    sim().metrics().incr("svc.duplicates");
    if (const auto p = pending_.find(it->second); p != pending_.end()) {
      p->second.conn = from;
    }
    return;
  }

  Pending pending;
  pending.client_id = req.client_id;
  pending.seq = req.seq;
  pending.conn = from;
  pending.command.id = session_command_id(req.client_id, req.seq);
  // Replies flow through the session table, not learner MsgAck traffic.
  pending.command.proposer = sim::kNoNode;
  pending.command.type = req.op;
  pending.command.key = req.key;
  pending.command.value = req.value;

  if (core_.learned().contains(pending.command)) {
    // The command is already chosen — a retry after failover or a redirect
    // landed here while another frontend proposed it (the deterministic
    // command id made the two proposals one). The apply-time result is
    // gone, so serve from the current store: the client has accepted no
    // reply for this op yet, so "applied now" is a valid completion.
    smr::KVStore::Result result{true, pending.command.value};
    if (req.op == cstruct::OpType::kRead) {
      const auto& data = replica_.store().data();
      const auto it = data.find(req.key);
      result.found = it != data.end();
      result.value = result.found ? it->second : std::string();
    }
    complete(std::move(pending), result);
    return;
  }

  session.inflight.emplace(req.seq, pending.command.id);
  batch_.push_back(pending.command.id);
  pending_.emplace(pending.command.id, std::move(pending));

  if (batch_.size() >= options_.batch_size || options_.batch_delay <= 0) {
    flush();
  } else if (flush_timer_ < 0) {
    flush_timer_ = set_timer(options_.batch_delay, kFlushToken);
  }
}

Frontend::Session& Frontend::touch_session(std::uint64_t client_id) {
  Session& session = sessions_[client_id];
  session.last_touched = ++session_clock_;
  if (sessions_.size() > options_.max_sessions) {
    // Evict the least-recently-used idle session (never one with ops in
    // flight — pending_ routes replies through it). One eviction per
    // insertion keeps the map at the cap with O(n) scan cost only on the
    // requests that grow it.
    auto victim = sessions_.end();
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
      if (it->first == client_id || !it->second.inflight.empty()) continue;
      if (victim == sessions_.end() ||
          it->second.last_touched < victim->second.last_touched) {
        victim = it;
      }
    }
    if (victim != sessions_.end()) {
      sessions_.erase(victim);
      sim().metrics().incr("svc.sessions_evicted");
    }
  }
  return sessions_[client_id];
}

void Frontend::on_timer(int token) {
  if (token == kFlushToken) {
    flush_timer_ = -1;
    flush();
    return;
  }
  if (token != kRetryToken) return;
  retry_armed_ = false;
  if (pending_.empty()) return;
  // Liveness: re-propose everything not yet learned, as one batch. The
  // coordinator treats a fully-contained batch as a retransmission request.
  std::vector<cstruct::Command> cmds;
  cmds.reserve(pending_.size());
  for (const auto& [id, p] : pending_) cmds.push_back(p.command);
  propose_batch(cmds);
  sim().metrics().incr("svc.retries");
  retry_armed_ = true;
  set_timer(options_.retry_interval, kRetryToken);
}

void Frontend::flush() {
  if (flush_timer_ >= 0) {
    cancel_timer(flush_timer_);
    flush_timer_ = -1;
  }
  if (batch_.empty()) return;
  std::vector<cstruct::Command> cmds;
  cmds.reserve(batch_.size());
  for (const std::uint64_t id : batch_) {
    if (const auto it = pending_.find(id); it != pending_.end()) {
      cmds.push_back(it->second.command);
    }
  }
  batch_.clear();
  if (cmds.empty()) return;
  propose_batch(cmds);
  ++batches_flushed_;
  sim().metrics().incr("svc.batches");
  sim().metrics().incr("svc.batched_commands", static_cast<std::int64_t>(cmds.size()));
  if (!retry_armed_) {
    retry_armed_ = true;
    set_timer(options_.retry_interval, kRetryToken);
  }
}

void Frontend::propose_batch(const std::vector<cstruct::Command>& cmds) {
  const genpaxos::MsgProposeBatch batch{cmds};
  multicast(config_.policy->all_coordinators(), batch);
  multicast(config_.acceptors, batch);  // fast-round path
}

void Frontend::on_applied(const cstruct::Command& c, const smr::KVStore::Result& result) {
  const auto it = pending_.find(c.id);
  if (it == pending_.end()) return;  // another frontend's client, or internal
  Pending pending = std::move(it->second);
  pending_.erase(it);
  complete(std::move(pending), result);
}

void Frontend::complete(Pending pending, const smr::KVStore::Result& result) {
  Session& session = sessions_[pending.client_id];
  session.inflight.erase(pending.seq);

  MsgClientReply reply;
  reply.client_id = pending.client_id;
  reply.seq = pending.seq;
  reply.status = ReplyStatus::kOk;
  reply.found = result.found;
  reply.value = result.value;
  if (pending.seq > session.completed_seq) {
    session.completed_seq = pending.seq;
    session.last_reply = reply;
  }
  send(pending.conn, reply);
  ++replies_sent_;
  sim().metrics().incr("svc.replies");
}

}  // namespace mcp::service
