#pragma once

// Closed-loop KV client for the simulator: the discrete-event twin of
// service::Client. One outstanding operation at a time, retransmitted on a
// timer until its reply arrives (the frontend's session dedup absorbs the
// duplicates), redirects followed. Used by the sim rows of bench_kv (E12)
// and by the deterministic service tests, where the simulated network's
// loss/duplication injection exercises exactly the retry paths a lossy
// datacenter would.

#include <cstdint>
#include <string>
#include <vector>

#include "service/messages.hpp"
#include "sim/process.hpp"
#include "util/strings.hpp"

namespace mcp::service {

class SimClient final : public sim::Process {
 public:
  struct Options {
    std::uint64_t client_id = 1;
    sim::NodeId server = 0;      ///< frontend to talk to
    std::size_t ops = 10;
    double read_fraction = 0.25;
    /// Keys cycle through `keys` slots under this prefix, so different
    /// clients writing the same prefix conflict and get ordered.
    std::string key_prefix = "k";
    std::size_t keys = 8;
    sim::Time retry_interval = 300;
  };

  explicit SimClient(Options options) : options_(options) {
    register_client_messages(decoders());
  }

  std::string role() const override { return "client"; }

  void on_start() override {
    if (options_.ops > 0) send_current();
  }

  void on_timer(int token) override {
    if (token != kRetryToken || done()) return;
    ++retries_;
    send_current();
  }

  void on_message(sim::NodeId, const std::any& m) override {
    const auto* reply = std::any_cast<MsgClientReply>(&m);
    if (reply == nullptr || done()) return;
    if (reply->client_id != options_.client_id || reply->seq != seq_) return;
    if (reply->status == ReplyStatus::kRedirect) {
      options_.server = reply->redirect;
      ++redirects_;
      send_current();  // same seq, new server
      return;
    }
    cancel_retry();
    if (reply->trace_id != 0) ++traced_replies_;
    latencies_.push_back(now() - sent_at_);
    ++completed_;
    if (!done()) send_current();
  }

  bool done() const { return completed_ >= options_.ops; }
  std::size_t completed() const { return completed_; }
  std::uint64_t retries() const { return retries_; }
  std::uint64_t redirects() const { return redirects_; }
  /// Replies that carried a sampled trace id (server-side sampling).
  std::uint64_t traced_replies() const { return traced_replies_; }
  /// Per-op request→reply times, in ticks.
  const std::vector<sim::Time>& latencies() const { return latencies_; }

 private:
  static constexpr int kRetryToken = 20;

  void send_current() {
    if (seq_ != completed_ + 1) {
      // First send of the next op (retries keep the current seq).
      seq_ = completed_ + 1;
      sent_at_ = now();
    }
    MsgClientRequest req;
    req.client_id = options_.client_id;
    req.seq = seq_;
    const std::uint64_t n = seq_ - 1;
    // Derived from (client, seq), NOT rolled from the RNG: a
    // retransmission must carry the op it retries — re-rolling could turn
    // a lost write into a read under the same session position, and the
    // frontend would dedup the late write against the committed read.
    const bool read =
        options_.read_fraction > 0 &&
        static_cast<double>(session_command_id(options_.client_id, seq_) % 1000) <
            options_.read_fraction * 1000.0;
    req.op = read ? cstruct::OpType::kRead : cstruct::OpType::kWrite;
    req.key = options_.key_prefix;
    req.key += std::to_string(n % options_.keys);
    req.value = util::concat("v", options_.client_id);
    req.value += '.';
    req.value += std::to_string(n);
    send(options_.server, req);
    cancel_retry();
    retry_timer_ = set_timer(options_.retry_interval, kRetryToken);
  }

  void cancel_retry() {
    if (retry_timer_ >= 0) cancel_timer(retry_timer_);
    retry_timer_ = -1;
  }

  Options options_;
  std::uint64_t seq_ = 0;  ///< seq of the op in flight (completed_ + 1)
  sim::Time sent_at_ = 0;
  int retry_timer_ = -1;
  std::size_t completed_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t redirects_ = 0;
  std::uint64_t traced_replies_ = 0;
  std::vector<sim::Time> latencies_;
};

}  // namespace mcp::service
