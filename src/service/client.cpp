#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <random>
#include <utility>

#include "transport/socket_util.hpp"

namespace mcp::service {

// --- TcpClientChannel --------------------------------------------------------

TcpClientChannel::TcpClientChannel(std::map<sim::NodeId, ServerAddr> servers,
                                   std::chrono::milliseconds dial_timeout)
    : servers_(std::move(servers)), dial_timeout_(dial_timeout) {}

TcpClientChannel::~TcpClientChannel() { close(); }

bool TcpClientChannel::connect(sim::NodeId server) {
  close();
  const auto it = servers_.find(server);
  if (it == servers_.end()) return false;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(it->second.port);
  if (::inet_pton(AF_INET, it->second.host.c_str(), &addr.sin_addr) != 1 ||
      !transport::connect_with_timeout(fd, addr, dial_timeout_)) {
    ::close(fd);
    return false;
  }
  transport::set_nodelay(fd);
  // Writes share the dial budget: SO_SNDTIMEO bounds each blocking send,
  // the send_all deadline bounds their sum — a server that accepts but
  // never drains cannot hold an op past it (attempt_timeout only covers
  // the recv side).
  transport::set_send_timeout(fd, dial_timeout_);
  fd_ = fd;
  frames_ = transport::FrameBuffer(frames_.max_frame());
  return true;
}

bool TcpClientChannel::send(std::string_view payload) {
  if (fd_ < 0) return false;
  if (!transport::send_all(fd_, transport::frame(payload),
                           std::chrono::steady_clock::now() + 4 * dial_timeout_)) {
    close();
    return false;
  }
  return true;
}

std::optional<std::string> TcpClientChannel::recv(std::chrono::milliseconds timeout) {
  if (fd_ < 0) return std::nullopt;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  char chunk[16 << 10];
  while (true) {
    try {
      if (auto payload = frames_.next()) return payload;
    } catch (const transport::FramingError&) {
      close();  // stream unrecoverable; the next op reconnects
      return std::nullopt;
    }
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) return std::nullopt;
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) return std::nullopt;  // timeout or poll error
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n == 0 || (n < 0 && errno != EINTR)) {
      close();  // server went away; caller reconnects and retries
      return std::nullopt;
    }
    if (n > 0) frames_.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
  }
}

void TcpClientChannel::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

// --- HubClientChannel --------------------------------------------------------

HubClientChannel::HubClientChannel(transport::ThreadHub& hub, sim::NodeId self)
    : endpoint_(hub.endpoint(self)) {
  endpoint_.start([this](transport::PeerId, std::string payload) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      replies_.push_back(std::move(payload));
    }
    cv_.notify_one();
  });
}

HubClientChannel::~HubClientChannel() { close(); }

bool HubClientChannel::connect(sim::NodeId server) {
  server_ = server;
  return true;
}

bool HubClientChannel::send(std::string_view payload) {
  if (server_ == sim::kNoNode) return false;
  return endpoint_.send(server_, payload);
}

std::optional<std::string> HubClientChannel::recv(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!cv_.wait_for(lock, timeout, [this] { return !replies_.empty(); })) {
    return std::nullopt;
  }
  std::string payload = std::move(replies_.front());
  replies_.pop_front();
  return payload;
}

void HubClientChannel::close() { endpoint_.stop(); }

// --- Client ------------------------------------------------------------------

Client::Client(std::unique_ptr<ClientChannel> channel, Options options)
    : channel_(std::move(channel)), options_(std::move(options)) {
  if (options_.client_id == 0) {
    std::random_device rd;
    options_.client_id =
        (static_cast<std::uint64_t>(rd()) << 32) ^ static_cast<std::uint64_t>(rd());
    if (options_.client_id == 0) options_.client_id = 1;
  }
  // Seqs start above any previous process's: a reused --client-id would
  // otherwise restart at 1 and collide with the server session's cached
  // positions — a new op at the cached seq would be answered from the old
  // run's reply and its write silently never proposed. Wall-clock
  // nanoseconds as the base: a later invocation starts above an earlier
  // one's reach unless the earlier one sustained over one op per
  // nanosecond of gap (impossible), and even back-to-back scripted
  // invocations are far more than a nanosecond apart. (A wall clock
  // stepped backwards between invocations can re-collide; dedup within
  // one process never relies on the clock.)
  seq_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

Client::Result Client::put(std::string key, std::string value) {
  return call(cstruct::OpType::kWrite, std::move(key), std::move(value));
}

Client::Result Client::get(std::string key) {
  return call(cstruct::OpType::kRead, std::move(key), std::string());
}

void Client::rotate_server() {
  if (options_.servers.empty()) return;
  server_index_ = (server_index_ + 1) % options_.servers.size();
  connected_ = false;
}

Client::Result Client::call(cstruct::OpType op, std::string key, std::string value) {
  if (options_.servers.empty()) return {};
  MsgClientRequest req;
  req.client_id = options_.client_id;
  req.seq = ++seq_;
  req.op = op;
  req.key = std::move(key);
  req.value = std::move(value);
  const std::string payload = wire::make_envelope(req).encode();

  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) ++retries_;
    if (!connected_) {
      connected_ = channel_->connect(options_.servers[server_index_]);
      if (!connected_) {
        rotate_server();
        continue;
      }
    }
    if (!channel_->send(payload)) {
      rotate_server();
      continue;
    }
    const auto deadline =
        std::chrono::steady_clock::now() + options_.attempt_timeout;
    while (true) {
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (remaining.count() <= 0) break;  // attempt over: retransmit
      auto frame = channel_->recv(remaining);
      if (!frame) break;
      MsgClientReply reply;
      try {
        const wire::Envelope env = wire::Envelope::decode(*frame);
        if (env.tag != MsgClientReply::kTag) continue;
        wire::Reader r(env.body);
        reply = MsgClientReply::decode(r);
      } catch (const std::exception&) {
        continue;  // not a (well-formed) reply; keep listening
      }
      if (reply.client_id != options_.client_id || reply.seq != seq_) {
        continue;  // late reply to an earlier attempt/op
      }
      if (reply.status == ReplyStatus::kRedirect) {
        ++redirects_;
        const auto it = std::find(options_.servers.begin(), options_.servers.end(),
                                  reply.redirect);
        if (it != options_.servers.end()) {
          server_index_ =
              static_cast<std::size_t>(it - options_.servers.begin());
          connected_ = false;
        } else {
          rotate_server();
        }
        break;  // resend to the new server (costs an attempt)
      }
      Result result;
      result.ok = true;
      result.found = reply.found;
      result.value = reply.value;
      return result;
    }
  }
  return {};
}

}  // namespace mcp::service
