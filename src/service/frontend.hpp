#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cstruct/history.hpp"
#include "genpaxos/engine.hpp"
#include "service/messages.hpp"
#include "service/partition.hpp"
#include "sim/process.hpp"
#include "smr/replica.hpp"

namespace mcp::service {

/// The serving process of a KV cluster: one node that is simultaneously a
/// proposer (it turns client requests into consensus commands), a learner
/// (an embedded genpaxos::LearnerCore receives the acceptors' 2b stream —
/// the frontend's id must be in Config::learners), and a replica (an
/// embedded smr::Replica applies the learned history and produces each
/// command's state-machine result). Client traffic arrives as
/// MsgClientRequest on dedicated client connections; the reply goes out
/// the moment the replica applies the command, carrying the read result
/// observed at the command's place in the learned linearization.
///
/// Sharding: a frontend serves one consensus group per shard — the classic
/// unsharded server is the one-shard case. Each shard embeds its own
/// learner core and replica (per-group learned stream, per-group store)
/// and keeps its own batch window; client commands route to a shard by the
/// cluster-wide KeyPartition, and every shard's completions merge into the
/// ONE session/dedup table, so exactly-once holds per client across
/// groups. Clients stay group-unaware: requests and replies ride group 0.
///
/// Sessions give at-most-once semantics on retry: requests are dedup'd by
/// (client id, seq) — an in-flight duplicate only refreshes the reply
/// route, a completed duplicate is answered from the cached reply, and the
/// consensus command id is a deterministic function of the pair
/// (session_command_id) so even a retry that lands on a *different*
/// frontend cannot double-apply.
///
/// Batching: requests accumulate per shard for at most `batch_delay` ticks
/// (or until `batch_size` of them are pending) and are proposed as one
/// MsgProposeBatch, which a classic-round coordinator folds into a single
/// delta 2a — the flush window amortizes the per-command 2a/2b cost.
class Frontend final : public sim::Process {
 public:
  struct Options {
    /// Flush a shard's pending batch once it holds this many commands...
    std::size_t batch_size = 16;
    /// ...or once the oldest pending command is this many ticks old.
    /// 0 proposes every request immediately (batching off).
    sim::Time batch_delay = 2;
    /// Re-propose commands not yet learned (lossy links, coordinator
    /// changeover) at this pace — the same liveness rule GenProposer uses.
    sim::Time retry_interval = 400;
    /// Standby mode: bounce every client to this server instead of
    /// serving. Exercises the client's redirect handling.
    sim::NodeId redirect_to = sim::kNoNode;
    /// Upper bound on retained sessions; the least-recently-used session
    /// with nothing in flight is evicted past it, so a long-lived server
    /// holds O(max_sessions) state however many one-shot clients it
    /// serves. Safe: a retry from an evicted session proposes the same
    /// deterministic command id, which the learned c-struct already
    /// contains, so it completes from the store instead of re-applying.
    std::size_t max_sessions = 4096;
    /// Trace every Nth accepted request end to end (0 = tracing off). A
    /// sampled command gets a trace id that rides MsgProposeBatch through
    /// the consensus roles and comes back in its MsgClientReply; span
    /// events land on the host's TraceRecorder. The host's recorder must
    /// also be enabled (sim().trace().set_enabled) for events to record.
    std::size_t trace_sample_every = 0;
    /// Log any command whose receive -> reply latency reaches this many
    /// ticks into the slow-op ring (0 = off); also counts svc.slow_ops.
    sim::Time slow_op_threshold = 0;
  };

  /// One entry of the slow-op log: a completed command whose end-to-end
  /// latency reached Options::slow_op_threshold.
  struct SlowOp {
    std::uint64_t client_id = 0;
    std::uint64_t seq = 0;
    std::string key;
    std::uint32_t gid = 0;
    sim::Time recv_at = 0;
    sim::Time total = 0;        ///< receive -> reply, ticks
    std::uint64_t trace_id = 0; ///< nonzero when the command was sampled
  };

  /// One consensus group this frontend serves. The config must outlive the
  /// frontend (as the single-group constructor always required).
  struct GroupConfig {
    std::uint32_t gid = 0;
    const genpaxos::Config<cstruct::History>* config = nullptr;
  };

  // Two overloads instead of `Options options = {}`: a default argument
  // here may not use Options' member initializers (they are only usable
  // once the enclosing class is complete).
  explicit Frontend(const genpaxos::Config<cstruct::History>& config);
  Frontend(const genpaxos::Config<cstruct::History>& config, Options options);
  /// Sharded frontend: one embedded learner/replica per declared group,
  /// commands routed by `partition` (whose group ids must match `groups`).
  Frontend(const std::vector<GroupConfig>& groups, KeyPartition partition,
           Options options);

  std::string role() const override { return "server"; }

  void on_timer(int token) override;
  void on_message(sim::NodeId from, const std::any& m) override;
  void on_group_message(std::uint32_t group, sim::NodeId from,
                        const std::any& m) override;
  /// A restarted frontend keeps nothing durable of its own: it drops all
  /// volatile session/batch state (under the simulator, where members
  /// survive the crash, this makes the object look freshly constructed,
  /// matching what a real restart yields). The session table then rebuilds
  /// lazily from the learned history: the embedded learner resyncs the
  /// full history from the acceptors (delta chain → MsgResync2b → full
  /// 2b), the replica replays it into a fresh store, and a client retry of
  /// an op completed before the crash hits the learned().contains() path
  /// in handle_request — the deterministic command id shows the command
  /// was already chosen, so it completes from the store instead of
  /// re-entering consensus. Exactly-once application survives the restart
  /// without the frontend persisting a byte.
  void on_recover() override;

  // --- state inspection (run on the hosting node's loop) ---------------------
  /// The first shard's store/learned history — the whole state of an
  /// unsharded frontend; sharded callers use the per-group accessors.
  const smr::KVStore& store() const { return shards_.front()->replica.store(); }
  const cstruct::History& learned() const { return shards_.front()->core.learned(); }
  /// Per-group views (nullptr for a group this frontend does not serve).
  const smr::KVStore* store_for_group(std::uint32_t gid) const;
  const cstruct::History* learned_for_group(std::uint32_t gid) const;
  /// Union of every shard's store — the full service state. Shards own
  /// disjoint key sets (the partition routes each key to one group), so
  /// the merge is conflict-free.
  std::map<std::string, std::string> store_data() const;
  std::size_t applied() const;
  const KeyPartition& partition() const { return partition_; }
  /// Group ids served, in shard order.
  std::vector<std::uint32_t> group_ids() const;
  std::size_t session_count() const { return sessions_.size(); }
  std::size_t pending_count() const { return pending_.size(); }
  std::uint64_t requests_received() const { return requests_received_; }
  std::uint64_t duplicates_dropped() const { return duplicates_dropped_; }
  std::uint64_t batches_flushed() const { return batches_flushed_; }
  std::uint64_t replies_sent() const { return replies_sent_; }
  /// Most recent slow commands (bounded at kSlowOpCap), oldest first.
  const std::deque<SlowOp>& slow_ops() const { return slow_ops_; }

  /// Per-group learned length + replica apply progress for /healthz: a
  /// scraper spotting learned > applied (or a learned length diverging
  /// across nodes) has found a stuck group, not just a missing leader.
  bool group_progress(std::uint32_t gid, std::uint64_t* learned,
                      std::uint64_t* applied) const override;

 private:
  static constexpr int kRetryToken = 11;
  /// Flush tokens are kFlushTokenBase + shard index (one window per shard).
  static constexpr int kFlushTokenBase = 100;

  /// One consensus group's serving state.
  struct Shard {
    Shard(Frontend& self, std::uint32_t gid_,
          const genpaxos::Config<cstruct::History>& cfg)
        : gid(gid_), config(&cfg), core(self, cfg), replica(core) {}

    std::uint32_t gid;
    const genpaxos::Config<cstruct::History>* config;
    genpaxos::LearnerCore<cstruct::History> core;
    smr::Replica replica;  // embedded, never hosted: driven purely by core
    std::vector<std::uint64_t> batch;  // command ids awaiting flush
    int flush_timer = -1;              // -1 = not armed
  };

  /// One client command between arrival and application.
  struct Pending {
    std::uint64_t client_id = 0;
    std::uint64_t seq = 0;
    sim::NodeId conn = sim::kNoNode;  ///< where the reply goes (latest route)
    std::uint32_t gid = 0;            ///< shard the command routed to
    cstruct::Command command;
    sim::Time recv_at = 0;     ///< request accepted (stage clock origin)
    sim::Time flushed_at = -1; ///< batch shipped; -1 until flushed
    sim::Time learned_at = -1; ///< quorum reached; -1 until learned
    std::uint64_t trace_id = 0; ///< nonzero when sampled for tracing
  };

  /// Per-client dedup state. `completed_seq` is the highest seq already
  /// applied and replied to; its reply is cached so a retry whose reply was
  /// lost is answered without touching consensus. Lower seqs need no
  /// cache: the synchronous client never retries an op after it accepted a
  /// reply for a later one.
  struct Session {
    std::uint64_t completed_seq = 0;  // seqs are nonzero; 0 = none completed
    MsgClientReply last_reply;
    std::map<std::uint64_t, std::uint64_t> inflight;  // seq -> command id
    std::uint64_t last_touched = 0;  ///< LRU stamp for eviction
  };

  Shard& shard_of_key(const std::string& key);
  Shard* shard_of_group(std::uint32_t gid);
  void handle_request(sim::NodeId from, const MsgClientRequest& req);
  Session& touch_session(std::uint64_t client_id);
  void flush(Shard& shard);
  void propose_batch(Shard& shard, const std::vector<cstruct::Command>& cmds,
                     std::uint64_t trace_id);
  void on_applied(const cstruct::Command& c, const smr::KVStore::Result& result);
  void complete(Pending pending, const smr::KVStore::Result& result);

  Options options_;
  KeyPartition partition_;
  /// Stable-address shards (cores/replicas hold references into them).
  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<std::uint32_t, Shard*> by_gid_;

  std::map<std::uint64_t, Session> sessions_;
  std::uint64_t session_clock_ = 0;  // advances per request, stamps LRU
  std::map<std::uint64_t, Pending> pending_;  // command id -> op
  bool retry_armed_ = false;

  std::uint64_t requests_received_ = 0;
  std::uint64_t duplicates_dropped_ = 0;
  std::uint64_t batches_flushed_ = 0;
  std::uint64_t replies_sent_ = 0;

  /// Slow-op ring (Options::slow_op_threshold), newest at the back.
  static constexpr std::size_t kSlowOpCap = 64;
  std::deque<SlowOp> slow_ops_;
  std::uint64_t accepted_for_trace_ = 0;  ///< accepted (non-dup) requests, for sampling
};

}  // namespace mcp::service
