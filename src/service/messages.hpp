#pragma once

// Client-facing wire protocol of the KV service layer. Client connections
// carry the same varint framing and wire::Envelope encoding the peer
// protocol uses, but a disjoint message set: a request names a session
// position (client id + per-client sequence number) and an operation; the
// reply echoes the position so a client can match retransmitted requests to
// late replies. See docs/ARCHITECTURE.md §5 for the session rules.

#include <cstdint>
#include <string>

#include "cstruct/command.hpp"
#include "paxos/wire.hpp"
#include "sim/time.hpp"

namespace mcp::service {

/// One client operation. `client_id` identifies the session (chosen by the
/// client, stable across reconnects and server failover); `seq` strictly
/// increases per operation (service::Client starts each process above any
/// earlier process's reach, so a reused client id cannot collide with the
/// server's cached positions), and a retransmission reuses the seq of the
/// operation it retries — that pair is the at-most-once dedup key.
struct MsgClientRequest {
  std::uint64_t client_id = 0;
  std::uint64_t seq = 0;
  cstruct::OpType op = cstruct::OpType::kWrite;
  std::string key;
  std::string value;

  static constexpr std::uint32_t kTag = 120;
  static constexpr const char* kName = "svc.request";
  void encode(wire::Writer& w) const {
    w.put_varint(client_id);
    w.put_varint(seq);
    w.put_u8(op == cstruct::OpType::kWrite ? 1 : 0);
    w.put_bytes(key);
    w.put_bytes(value);
  }
  static MsgClientRequest decode(wire::Reader& r) {
    MsgClientRequest out;
    out.client_id = r.get_varint();
    out.seq = r.get_varint();
    const std::uint8_t op = r.get_u8();
    if (op > 1) throw std::invalid_argument("svc.request: bad op byte");
    out.op = op == 1 ? cstruct::OpType::kWrite : cstruct::OpType::kRead;
    out.key = std::string(r.get_bytes());
    out.value = std::string(r.get_bytes());
    return out;
  }
};

enum class ReplyStatus : std::uint8_t {
  kOk = 0,        ///< operation applied; found/value carry the read result
  kRedirect = 1,  ///< not serving; retry against `redirect`
};

struct MsgClientReply {
  std::uint64_t client_id = 0;
  std::uint64_t seq = 0;
  ReplyStatus status = ReplyStatus::kOk;
  /// Read results (kOk): whether the key existed and its value at the point
  /// the command was applied. Writes report found=true and the stored value.
  bool found = false;
  std::string value;
  /// kRedirect: the server the client should talk to instead.
  sim::NodeId redirect = sim::kNoNode;
  /// Sampled trace id of the command (0 = untraced); lets a client tie its
  /// own timing to the server-side spans. Encoded as an optional trailing
  /// varint only when set — untraced replies stay byte-identical to the
  /// pre-tracing format.
  std::uint64_t trace_id = 0;

  static constexpr std::uint32_t kTag = 121;
  static constexpr const char* kName = "svc.reply";
  void encode(wire::Writer& w) const {
    w.put_varint(client_id);
    w.put_varint(seq);
    w.put_u8(static_cast<std::uint8_t>(status));
    wire::put_flag(w, found);
    w.put_bytes(value);
    w.put_signed(redirect);
    if (trace_id != 0) w.put_varint(trace_id);
  }
  static MsgClientReply decode(wire::Reader& r) {
    MsgClientReply out;
    out.client_id = r.get_varint();
    out.seq = r.get_varint();
    const std::uint8_t status = r.get_u8();
    if (status > 1) throw std::invalid_argument("svc.reply: bad status byte");
    out.status = static_cast<ReplyStatus>(status);
    out.found = wire::get_flag(r);
    out.value = std::string(r.get_bytes());
    out.redirect = static_cast<sim::NodeId>(r.get_signed());
    if (!r.at_end()) out.trace_id = r.get_varint();
    return out;
  }
};

/// Both directions of the client protocol; servers register it next to the
/// peer message set, clients alone (they only ever decode replies, but
/// registering the pair also names both byte counters). Requests are
/// marked client-allowed: on a live node they are the ONLY tag a client
/// connection may deliver — everything else (1b/2b/2a...) is dropped
/// before dispatch, because a synthetic connection id counted as a quorum
/// member would let any connecting socket forge protocol state.
inline void register_client_messages(wire::DecoderRegistry& reg) {
  reg.add_client<MsgClientRequest>();
  reg.add<MsgClientReply>();
}

/// The consensus command id of a session position. Deterministic in
/// (client_id, seq) so a retry that reaches a *different* frontend (after
/// failover or a redirect) proposes the same command id, and the c-struct's
/// set semantics — append() is a no-op on a contained command — make the
/// second proposal harmless: at-most-once holds across servers without
/// shared session state. splitmix64 over the pair keeps accidental
/// collisions with other sessions' ids at birthday-bound improbability.
inline std::uint64_t session_command_id(std::uint64_t client_id, std::uint64_t seq) {
  auto mix = [](std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  };
  return mix(mix(client_id) ^ seq);
}

}  // namespace mcp::service
