#include "multicoord/mc_consensus.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/simulation.hpp"

namespace mcp::multicoord {

using paxos::Ballot;
using paxos::RoundInfo;

// ---------------------------------------------------------------------------
// Proposer

Proposer::Proposer(const Config& config, Value value)
    : config_(config), value_(std::move(value)) {
  msg::register_wire_messages(decoders());
}

void Proposer::on_start() {
  if (start_delay > 0) {
    set_timer(start_delay, 0);
  } else {
    broadcast_proposal();
  }
}

void Proposer::broadcast_proposal() {
  msg::Propose p{value_, {}};
  const auto& coords = config_.policy->all_coordinators();
  if (config_.load_balance) {
    // §4.1: address one coordinator quorum and piggyback one acceptor
    // quorum, both picked at random, instead of broadcasting. The other
    // quorums remain usable if this one stalls (the retransmission path
    // re-picks, so a single crash only costs a retry).
    auto& rng = sim().rng();
    const RoundInfo info = config_.policy->info(config_.policy->first_ballot(coords.front()));
    const std::size_t cq = info.coord_quorum_size;
    const auto qs = config_.quorum_system();
    std::vector<sim::NodeId> coord_pick;
    for (std::size_t idx : rng.sample_indices(info.coordinators.size(), cq)) {
      coord_pick.push_back(info.coordinators[idx]);
    }
    for (std::size_t idx :
         rng.sample_indices(config_.acceptors.size(), qs.classic_quorum_size())) {
      p.target_acceptors.push_back(config_.acceptors[idx]);
    }
    multicast(coord_pick, p);
  } else {
    multicast(coords, p);
    // Fast rounds need the proposal at the acceptors as well.
    multicast(config_.acceptors, p);
  }
  sim().metrics().incr("mc.proposals_sent");
  if (config_.enable_liveness && !decided_) set_timer(config_.retry_interval, 0);
}

void Proposer::on_timer(int) {
  if (!decided_) broadcast_proposal();
}

void Proposer::on_message(sim::NodeId, const std::any& m) {
  if (const auto* learned = std::any_cast<msg::Learned>(&m)) decided_ = learned->v;
}

// ---------------------------------------------------------------------------
// Coordinator

Coordinator::Coordinator(const Config& config)
    : config_(config),
      quorums_(config.quorum_system()),
      fd_(*this, config.policy->all_coordinators(), config.fd) {
  msg::register_wire_messages(decoders());
}

bool Coordinator::is_leader() const {
  if (!config_.enable_liveness) return id() == config_.policy->all_coordinators().front();
  return fd_.leader() == id();
}

void Coordinator::on_start() {
  if (config_.enable_liveness) {
    fd_.start();
    set_timer(config_.progress_timeout, kProgressToken);
  }
  maybe_lead();
}

void Coordinator::on_recover() {
  // §4.4: coordinators keep nothing on disk; a recovered one is a fresh
  // process whose ballots carry the bumped incarnation.
  crnd_ = Ballot::zero();
  phase1_done_ = false;
  cval_.reset();
  sent_any_ = false;
  promises_.clear();
  proposals_.clear();
  on_start();
}

void Coordinator::maybe_lead() {
  if (decided_value_ || !is_leader()) return;
  if (crnd_.is_zero()) start_round(1);
}

void Coordinator::start_round(std::int64_t count) {
  if (count <= crnd_.count) count = crnd_.count + 1;
  join_round(config_.policy->make_ballot(count, id(), incarnation()));
  sim().metrics().incr("mc.rounds_started");
  multicast(config_.acceptors, msg::P1a{crnd_});
}

void Coordinator::join_round(const Ballot& b) {
  crnd_ = b;
  phase1_done_ = false;
  cval_.reset();
  sent_any_ = false;
  promises_.clear();
  round_started_at_ = now();
}

void Coordinator::phase2_start() {
  phase1_done_ = true;
  std::vector<paxos::SingleVoteReport<Value>> reports;
  reports.reserve(promises_.size());
  for (const auto& [acc, report] : promises_) reports.push_back(report);
  const auto forced = paxos::pick_single_value(quorums_, reports);
  if (forced) {
    send_2a(*forced);
  } else if (crnd_.is_fast()) {
    send_2a(std::nullopt);  // Any
  } else if (!proposals_.empty()) {
    send_2a(free_pick());
  }
  // Classic round, nothing proposed yet: 2a goes out on the next Propose.
}

Value Coordinator::free_pick() const {
  // When phase 1 leaves the choice free, pick the lowest command id among
  // the proposals seen so far. Coordinators of a multicoordinated round may
  // still diverge (different proposal *sets*), which is the §4.2 collision;
  // but as retransmissions spread the proposals, successive rounds converge
  // instead of re-colliding forever.
  const msg::Propose* best = &proposals_.front();
  for (const auto& p : proposals_) {
    if (p.v.id < best->v.id) best = &p;
  }
  return best->v;
}

void Coordinator::send_2a(const std::optional<Value>& v) {
  const RoundInfo info = config_.policy->info(crnd_);
  if (!info.is_coord(id())) return;
  std::vector<sim::NodeId> targets = config_.acceptors;
  if (v.has_value()) {
    cval_ = v;
    // §4.1: honour the proposer-selected acceptor quorum when present.
    for (const auto& p : proposals_) {
      if (p.v == *v && !p.target_acceptors.empty()) {
        targets = p.target_acceptors;
        break;
      }
    }
  } else {
    sent_any_ = true;
  }
  sim().metrics().incr("coord." + std::to_string(id()) + ".2a_sent");
  multicast(targets, msg::P2a{crnd_, v});
}

void Coordinator::on_message(sim::NodeId from, const std::any& m) {
  if (fd_.handle_message(from, m)) {
    maybe_lead();
    return;
  }
  if (const auto* p = std::any_cast<msg::Propose>(&m)) {
    const bool known = std::any_of(proposals_.begin(), proposals_.end(),
                                   [&](const msg::Propose& q) { return q.v == p->v; });
    if (!known) proposals_.push_back(*p);
    sim().metrics().incr("coord." + std::to_string(id()) + ".proposals");
    if (phase1_done_ && crnd_.is_classic()) {
      if (!cval_) {
        send_2a(free_pick());
      } else if (config_.enable_liveness) {
        // Single-value consensus: this round is already committed to cval_;
        // retransmit it so late acceptors still make progress.
        send_2a(*cval_);
      }
    }
    return;
  }
  if (const auto* p1b = std::any_cast<msg::P1b>(&m)) {
    // 1b messages both answer our 1a and announce collision-triggered round
    // jumps (§4.2): joining a higher round we coordinate is exactly the
    // "coordinated recovery" path, with no extra 1a step.
    if (p1b->b.count > crnd_.count && config_.policy->info(p1b->b).is_coord(id())) {
      join_round(p1b->b);
    }
    if (p1b->b != crnd_ || phase1_done_) return;
    promises_[from] = paxos::SingleVoteReport<Value>{from, p1b->vrnd, p1b->vval};
    if (promises_.size() >= quorums_.quorum_size(crnd_)) phase2_start();
    return;
  }
  if (const auto* nack = std::any_cast<msg::Nack>(&m)) {
    if (nack->heard.count > crnd_.count && is_leader() && !decided_value_) {
      start_round(nack->heard.count + 1);
    }
    return;
  }
  if (const auto* learned = std::any_cast<msg::Learned>(&m)) {
    decided_value_ = learned->v;
    return;
  }
}

void Coordinator::on_timer(int token) {
  if (fd_.handle_timer(token)) return;
  if (token == kProgressToken) {
    if (decided_value_) {
      multicast(config_.learners, msg::Learned{*decided_value_});
      multicast(config_.proposers, msg::Learned{*decided_value_});
    } else if (is_leader()) {
      const bool active = !crnd_.is_zero();
      if (!active || now() - round_started_at_ >= config_.progress_timeout) {
        start_round(crnd_.count + 1);
      } else if (cval_) {
        multicast(config_.acceptors, msg::P2a{crnd_, *cval_});  // retransmit
      }
    }
    set_timer(config_.progress_timeout, kProgressToken);
  }
}

// ---------------------------------------------------------------------------
// Acceptor

Acceptor::Acceptor(const Config& config)
    : config_(config), quorums_(config.quorum_system()) {
  storage().set_write_latency(config.disk_latency);
  msg::register_wire_messages(decoders());
}

void Acceptor::on_recover() {
  if (auto s = storage().read("rnd")) rnd_ = paxos::decode_ballot(*s);
  if (auto s = storage().read("vrnd")) vrnd_ = paxos::decode_ballot(*s);
  if (auto s = storage().read("vval"); s && !s->empty()) {
    vval_ = cstruct::decode_command(*s);
  }
  any_armed_ = false;
  pending_.clear();
  twoa_.clear();
  collided_.clear();
}

void Acceptor::join(const Ballot& b) {
  if (b <= rnd_) return;
  rnd_ = b;
  any_armed_ = false;
  storage().write("rnd", paxos::encode(rnd_));
  sim().metrics().incr("acceptor." + std::to_string(id()) + ".disk_writes");
}

void Acceptor::accept(const Ballot& b, const Value& v) {
  rnd_ = std::max(rnd_, b);
  vrnd_ = b;
  vval_ = v;
  storage().write("rnd", paxos::encode(rnd_));
  storage().write("vrnd", paxos::encode(vrnd_));
  const sim::Time lat = storage().write("vval", cstruct::encode(v));
  sim().metrics().incr("acceptor." + std::to_string(id()) + ".disk_writes");
  sim().metrics().incr("acceptor." + std::to_string(id()) + ".accepts");
  multicast_after_sync(config_.learners, msg::P2b{b, v}, lat);
}

void Acceptor::try_fast_accept() {
  if (!any_armed_ || !rnd_.is_fast() || vrnd_ == rnd_ || pending_.empty()) return;
  accept(rnd_, pending_.front());
}

void Acceptor::evaluate_2a(const Ballot& b) {
  const RoundInfo info = config_.policy->info(b);
  const auto& received = twoa_[b];

  if (b.is_fast()) {
    // Fast rounds have singleton coordinator quorums; a concrete value or
    // Any from the round's coordinator suffices.
    for (const auto& [coord, v] : received) {
      if (v.has_value()) {
        if (vrnd_ < b) accept(b, *v);
      } else {
        any_armed_ = true;
        try_fast_accept();
      }
    }
    return;
  }

  // Classic round: count identical values across the round's coordinators
  // and detect collisions (§3.1 Phase2b, §4.2).
  bool collision = false;
  std::optional<Value> quorum_value;
  for (const auto& [c1, v1] : received) {
    if (!v1) continue;
    std::size_t identical = 0;
    for (const auto& [c2, v2] : received) {
      if (v2 && *v1 == *v2) ++identical;
      if (v2 && !(*v1 == *v2)) collision = true;
    }
    if (identical >= info.coord_quorum_size) quorum_value = *v1;
  }
  if (quorum_value && vrnd_ < b) {
    accept(b, *quorum_value);
    return;
  }
  if (quorum_value && vrnd_ == b && vval_ && *vval_ == *quorum_value) {
    multicast(config_.learners, msg::P2b{b, *vval_});  // duplicate 2a: re-vote
    return;
  }
  if (collision && config_.collision_recovery && !collided_[b]) {
    collided_[b] = true;
    collision_jump(b);
  }
}

void Acceptor::collision_jump(const Ballot& collided) {
  // §4.2: behave as if a 1a for the next round had arrived; the next
  // round's coordinators receive our 1b and run Phase2Start directly
  // (single-coordinated successors avoid an immediate re-collision).
  sim().metrics().incr("mc.collisions_detected");
  const Ballot next =
      config_.policy->make_ballot(collided.count + 1, collided.coord, collided.coord_inc);
  if (next <= rnd_) return;
  join(next);
  const RoundInfo info = config_.policy->info(next);
  multicast(info.coordinators, msg::P1b{next, vrnd_, vval_});
}

void Acceptor::on_message(sim::NodeId from, const std::any& m) {
  if (const auto* p = std::any_cast<msg::Propose>(&m)) {
    const bool known = std::any_of(pending_.begin(), pending_.end(),
                                   [&](const Value& v) { return v == p->v; });
    if (!known) pending_.push_back(p->v);
    try_fast_accept();
    return;
  }
  if (const auto* p1a = std::any_cast<msg::P1a>(&m)) {
    if (p1a->b > rnd_) {
      join(p1a->b);
      const RoundInfo info = config_.policy->info(p1a->b);
      multicast_after_sync(info.coordinators, msg::P1b{rnd_, vrnd_, vval_},
                           storage().write_latency());
    } else if (p1a->b == rnd_) {
      const RoundInfo info = config_.policy->info(p1a->b);
      multicast(info.coordinators, msg::P1b{rnd_, vrnd_, vval_});
    } else {
      send(from, msg::Nack{rnd_});
    }
    return;
  }
  if (const auto* p2a = std::any_cast<msg::P2a>(&m)) {
    if (p2a->b < rnd_) {
      send(from, msg::Nack{rnd_});
      return;
    }
    join(p2a->b);
    twoa_[p2a->b][from] = p2a->v;
    evaluate_2a(p2a->b);
    return;
  }
}

// ---------------------------------------------------------------------------
// Learner

Learner::Learner(const Config& config)
    : config_(config), quorums_(config.quorum_system()) {
  msg::register_wire_messages(decoders());
}

void Learner::on_message(sim::NodeId from, const std::any& m) {
  if (const auto* announced = std::any_cast<msg::Learned>(&m)) {
    if (!learned_) {
      learned_ = announced->v;
      learned_at_ = now();
    } else if (!(*learned_ == announced->v)) {
      throw std::logic_error("multicoord: conflicting decisions (consistency violated)");
    }
    return;
  }
  const auto* p2b = std::any_cast<msg::P2b>(&m);
  if (p2b == nullptr) return;
  auto& votes = votes_[p2b->b];
  votes[from] = p2b->v;
  std::size_t agreeing = 0;
  for (const auto& [acc, v] : votes) {
    if (v == p2b->v) ++agreeing;
  }
  if (agreeing < quorums_.quorum_size(p2b->b)) return;
  if (learned_) {
    if (!(*learned_ == p2b->v)) {
      throw std::logic_error("multicoord: conflicting decisions (consistency violated)");
    }
    return;
  }
  learned_ = p2b->v;
  learned_at_ = now();
  sim().metrics().incr("mc.decisions");
  multicast(config_.proposers, msg::Learned{*learned_});
  const auto& coords = config_.policy->all_coordinators();
  multicast(coords, msg::Learned{*learned_});
}

}  // namespace mcp::multicoord
