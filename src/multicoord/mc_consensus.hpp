#pragma once

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "cstruct/command.hpp"
#include "paxos/ballot.hpp"
#include "paxos/leader.hpp"
#include "paxos/proved_safe.hpp"
#include "paxos/quorum.hpp"
#include "paxos/round_config.hpp"
#include "paxos/wire.hpp"
#include "sim/process.hpp"

namespace mcp::multicoord {

/// Multicoordinated Paxos, consensus instance (§3.1). One engine covers the
/// whole round spectrum via the RoundPolicy:
///   - single-coordinated rounds  ≡ Classic Paxos,
///   - fast rounds                ≡ Fast Paxos,
///   - multicoordinated rounds    = the paper's contribution: acceptors
///     accept a value only when an identical 2a arrives from a whole
///     quorum of the round's coordinators.
/// Collisions in multicoordinated rounds (coordinators forwarding different
/// values) are detected by acceptors, which jump to the next round by
/// spontaneously sending it a 1b message (§4.2) — costing two extra
/// communication steps and, unlike fast-round collisions, no wasted
/// acceptor disk write for a value that can never be learned.
using Value = cstruct::Command;

namespace msg {
struct Propose {
  Value v;
  /// §4.1 load balancing: when non-empty, coordinators forward the command
  /// only to these acceptors (a full acceptor quorum picked by the
  /// proposer).
  std::vector<sim::NodeId> target_acceptors;

  static constexpr std::uint32_t kTag = 64;
  static constexpr const char* kName = "mc.propose";
  void encode(wire::Writer& w) const {
    wire::put_command(w, v);
    wire::put_node_ids(w, target_acceptors);
  }
  static Propose decode(wire::Reader& r) {
    return {wire::get_command(r), wire::get_node_ids(r)};
  }
};
struct P1a {
  paxos::Ballot b;

  static constexpr std::uint32_t kTag = 65;
  static constexpr const char* kName = "mc.1a";
  void encode(wire::Writer& w) const { wire::put_ballot(w, b); }
  static P1a decode(wire::Reader& r) { return {wire::get_ballot(r)}; }
};
struct P1b {
  paxos::Ballot b;
  paxos::Ballot vrnd;
  std::optional<Value> vval;

  static constexpr std::uint32_t kTag = 66;
  static constexpr const char* kName = "mc.1b";
  void encode(wire::Writer& w) const {
    wire::put_ballot(w, b);
    wire::put_ballot(w, vrnd);
    wire::put_opt_command(w, vval);
  }
  static P1b decode(wire::Reader& r) {
    return {wire::get_ballot(r), wire::get_ballot(r), wire::get_opt_command(r)};
  }
};
struct P2a {
  paxos::Ballot b;
  std::optional<Value> v;  ///< nullopt encodes Any (fast rounds only)

  static constexpr std::uint32_t kTag = 67;
  static constexpr const char* kName = "mc.2a";
  void encode(wire::Writer& w) const {
    wire::put_ballot(w, b);
    wire::put_opt_command(w, v);
  }
  static P2a decode(wire::Reader& r) {
    return {wire::get_ballot(r), wire::get_opt_command(r)};
  }
};
struct P2b {
  paxos::Ballot b;
  Value v;

  static constexpr std::uint32_t kTag = 68;
  static constexpr const char* kName = "mc.2b";
  void encode(wire::Writer& w) const {
    wire::put_ballot(w, b);
    wire::put_command(w, v);
  }
  static P2b decode(wire::Reader& r) {
    return {wire::get_ballot(r), wire::get_command(r)};
  }
};
struct Nack {
  paxos::Ballot heard;

  static constexpr std::uint32_t kTag = 69;
  static constexpr const char* kName = "mc.nack";
  void encode(wire::Writer& w) const { wire::put_ballot(w, heard); }
  static Nack decode(wire::Reader& r) { return {wire::get_ballot(r)}; }
};
struct Learned {
  Value v;

  static constexpr std::uint32_t kTag = 70;
  static constexpr const char* kName = "mc.learned";
  void encode(wire::Writer& w) const { wire::put_command(w, v); }
  static Learned decode(wire::Reader& r) { return {wire::get_command(r)}; }
};

/// Full multicoordinated-consensus message set (+ heartbeats); registered
/// by every role.
inline void register_wire_messages(wire::DecoderRegistry& reg) {
  reg.add<paxos::Heartbeat>();
  reg.add<Propose>();
  reg.add<P1a>();
  reg.add<P1b>();
  reg.add<P2a>();
  reg.add<P2b>();
  reg.add<Nack>();
  reg.add<Learned>();
}
}  // namespace msg

struct Config {
  std::vector<sim::NodeId> proposers;
  std::vector<sim::NodeId> acceptors;
  std::vector<sim::NodeId> learners;
  const paxos::RoundPolicy* policy = nullptr;  ///< round structure (owns coordinator set)
  int f = 0;
  int e = 0;  ///< only used when the policy contains fast rounds

  sim::Time disk_latency = 0;
  /// §4.2: acceptors that observe incompatible 2a values for a classic
  /// round jump to the next round spontaneously.
  bool collision_recovery = true;
  /// §4.1: proposers address a random coordinator quorum + acceptor quorum
  /// per command instead of broadcasting.
  bool load_balance = false;

  bool enable_liveness = true;
  paxos::FailureDetector::Config fd;
  sim::Time retry_interval = 400;
  sim::Time progress_timeout = 800;

  paxos::QuorumSystem quorum_system() const {
    return paxos::QuorumSystem(acceptors, f, e);
  }
};

class Proposer final : public sim::Process {
 public:
  Proposer(const Config& config, Value value);

  std::string role() const override { return "proposer"; }
  void on_start() override;
  void on_message(sim::NodeId from, const std::any& msg) override;
  void on_timer(int token) override;

  bool decided() const { return decided_.has_value(); }
  const std::optional<Value>& decision() const { return decided_; }

  /// Delay before the first Propose is sent (lets tests measure the
  /// steady-state path with phase 1 already executed "a priori").
  sim::Time start_delay = 0;

 private:
  void broadcast_proposal();

  const Config& config_;
  Value value_;
  std::optional<Value> decided_;
};

class Coordinator final : public sim::Process {
 public:
  explicit Coordinator(const Config& config);

  std::string role() const override { return "coordinator"; }
  void on_start() override;
  void on_message(sim::NodeId from, const std::any& msg) override;
  void on_timer(int token) override;
  void on_recover() override;

  const paxos::Ballot& current_round() const { return crnd_; }
  bool sent_2a() const { return cval_.has_value(); }

  /// Start a new round with at least this count (benches and tests drive
  /// rounds explicitly when the liveness machinery is disabled).
  void start_round(std::int64_t count);

 private:
  static constexpr int kProgressToken = 1;

  bool is_leader() const;
  void maybe_lead();
  void join_round(const paxos::Ballot& b);
  void phase2_start();
  Value free_pick() const;
  void send_2a(const std::optional<Value>& v);

  const Config& config_;
  paxos::QuorumSystem quorums_;
  paxos::FailureDetector fd_;

  paxos::Ballot crnd_;
  bool phase1_done_ = false;
  std::optional<Value> cval_;  ///< value sent in this round's 2a (engaged once sent)
  bool sent_any_ = false;
  std::map<sim::NodeId, paxos::SingleVoteReport<Value>> promises_;
  std::deque<msg::Propose> proposals_;
  std::optional<Value> decided_value_;  ///< set once any learner announces
  sim::Time round_started_at_ = 0;
};

class Acceptor final : public sim::Process {
 public:
  explicit Acceptor(const Config& config);

  std::string role() const override { return "acceptor"; }
  void on_message(sim::NodeId from, const std::any& msg) override;
  void on_recover() override;

  const paxos::Ballot& rnd() const { return rnd_; }
  const paxos::Ballot& vrnd() const { return vrnd_; }
  const std::optional<Value>& vval() const { return vval_; }

 private:
  void join(const paxos::Ballot& b);
  void accept(const paxos::Ballot& b, const Value& v);
  void try_fast_accept();
  void evaluate_2a(const paxos::Ballot& b);
  void collision_jump(const paxos::Ballot& collided);

  const Config& config_;
  paxos::QuorumSystem quorums_;
  paxos::Ballot rnd_;
  paxos::Ballot vrnd_;
  std::optional<Value> vval_;
  bool any_armed_ = false;
  std::deque<Value> pending_;
  /// 2a values received per round, per coordinator.
  std::map<paxos::Ballot, std::map<sim::NodeId, std::optional<Value>>> twoa_;
  /// Rounds whose collision we already reacted to.
  std::map<paxos::Ballot, bool> collided_;
};

class Learner final : public sim::Process {
 public:
  explicit Learner(const Config& config);

  std::string role() const override { return "learner"; }
  void on_message(sim::NodeId from, const std::any& msg) override;

  bool learned() const { return learned_.has_value(); }
  const std::optional<Value>& value() const { return learned_; }
  sim::Time learned_at() const { return learned_at_; }

 private:
  const Config& config_;
  paxos::QuorumSystem quorums_;
  std::map<paxos::Ballot, std::map<sim::NodeId, Value>> votes_;
  std::optional<Value> learned_;
  sim::Time learned_at_ = -1;
};

}  // namespace mcp::multicoord
