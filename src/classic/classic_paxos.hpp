#pragma once

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "cstruct/command.hpp"
#include "paxos/ballot.hpp"
#include "paxos/leader.hpp"
#include "paxos/proved_safe.hpp"
#include "paxos/quorum.hpp"
#include "paxos/wire.hpp"
#include "sim/process.hpp"

namespace mcp::classic {

/// Classic Paxos (§2.1), one consensus instance, value type = Command.
/// This is the leader-based three-step baseline the paper extends; it is
/// implemented independently of the multicoordinated engine so the two can
/// be tested against each other.
using Value = cstruct::Command;

namespace msg {
struct Propose {
  Value v;

  static constexpr std::uint32_t kTag = 16;
  static constexpr const char* kName = "classic.propose";
  void encode(wire::Writer& w) const { wire::put_command(w, v); }
  static Propose decode(wire::Reader& r) { return {wire::get_command(r)}; }
};
struct P1a {
  paxos::Ballot b;

  static constexpr std::uint32_t kTag = 17;
  static constexpr const char* kName = "classic.1a";
  void encode(wire::Writer& w) const { wire::put_ballot(w, b); }
  static P1a decode(wire::Reader& r) { return {wire::get_ballot(r)}; }
};
struct P1b {
  paxos::Ballot b;
  paxos::Ballot vrnd;
  std::optional<Value> vval;

  static constexpr std::uint32_t kTag = 18;
  static constexpr const char* kName = "classic.1b";
  void encode(wire::Writer& w) const {
    wire::put_ballot(w, b);
    wire::put_ballot(w, vrnd);
    wire::put_opt_command(w, vval);
  }
  static P1b decode(wire::Reader& r) {
    return {wire::get_ballot(r), wire::get_ballot(r), wire::get_opt_command(r)};
  }
};
struct P2a {
  paxos::Ballot b;
  Value v;

  static constexpr std::uint32_t kTag = 19;
  static constexpr const char* kName = "classic.2a";
  void encode(wire::Writer& w) const {
    wire::put_ballot(w, b);
    wire::put_command(w, v);
  }
  static P2a decode(wire::Reader& r) {
    return {wire::get_ballot(r), wire::get_command(r)};
  }
};
struct P2b {
  paxos::Ballot b;
  Value v;

  static constexpr std::uint32_t kTag = 20;
  static constexpr const char* kName = "classic.2b";
  void encode(wire::Writer& w) const {
    wire::put_ballot(w, b);
    wire::put_command(w, v);
  }
  static P2b decode(wire::Reader& r) {
    return {wire::get_ballot(r), wire::get_command(r)};
  }
};
/// Sent by an acceptor that rejected a message for a stale round (§4.3).
struct Nack {
  paxos::Ballot heard;

  static constexpr std::uint32_t kTag = 21;
  static constexpr const char* kName = "classic.nack";
  void encode(wire::Writer& w) const { wire::put_ballot(w, heard); }
  static Nack decode(wire::Reader& r) { return {wire::get_ballot(r)}; }
};
/// Learner → proposers/coordinators: a decision was reached.
struct Learned {
  Value v;

  static constexpr std::uint32_t kTag = 22;
  static constexpr const char* kName = "classic.learned";
  void encode(wire::Writer& w) const { wire::put_command(w, v); }
  static Learned decode(wire::Reader& r) { return {wire::get_command(r)}; }
};

/// Decoders for the full Classic Paxos message set (+ failure-detector
/// heartbeats); every role registers all of them, so rerouted or
/// retransmitted messages can never hit a process without a decoder.
inline void register_wire_messages(wire::DecoderRegistry& reg) {
  reg.add<paxos::Heartbeat>();
  reg.add<Propose>();
  reg.add<P1a>();
  reg.add<P1b>();
  reg.add<P2a>();
  reg.add<P2b>();
  reg.add<Nack>();
  reg.add<Learned>();
}
}  // namespace msg

/// Shared static configuration of one Classic Paxos instance.
struct Config {
  std::vector<sim::NodeId> proposers;
  std::vector<sim::NodeId> coordinators;  ///< potential leaders, Ω group
  std::vector<sim::NodeId> acceptors;
  std::vector<sim::NodeId> learners;
  int f = 0;  ///< acceptor quorum = n − f

  sim::Time disk_latency = 0;  ///< cost of an acceptor's stable write

  /// Liveness machinery (heartbeats, retransmissions, round retries). When
  /// false the run relies on a reliable network and no crashes, and the
  /// event queue drains on its own.
  bool enable_liveness = true;
  paxos::FailureDetector::Config fd;
  sim::Time retry_interval = 400;     ///< proposer retransmission period
  sim::Time progress_timeout = 600;   ///< leader: round considered stuck

  paxos::QuorumSystem quorum_system() const {
    return paxos::QuorumSystem(acceptors, f, f);
  }
};

/// Proposer: sends its command to every coordinator and retransmits until
/// some decision is announced.
class Proposer final : public sim::Process {
 public:
  Proposer(const Config& config, Value value);

  std::string role() const override { return "proposer"; }
  void on_start() override;
  void on_message(sim::NodeId from, const std::any& msg) override;
  void on_timer(int token) override;

  bool decided() const { return decided_.has_value(); }
  const std::optional<Value>& decision() const { return decided_; }

  /// Delay before the first Propose is sent (lets tests measure the
  /// steady-state path with phase 1 already executed "a priori").
  sim::Time start_delay = 0;

 private:
  void broadcast_proposal();

  const Config& config_;
  Value value_;
  std::optional<Value> decided_;
};

/// Coordinator: runs phases 1a/2a of its rounds when it believes itself the
/// leader (Ω from the shared failure detector).
class Coordinator final : public sim::Process {
 public:
  explicit Coordinator(const Config& config);

  std::string role() const override { return "coordinator"; }
  void on_start() override;
  void on_message(sim::NodeId from, const std::any& msg) override;
  void on_timer(int token) override;
  void on_recover() override;

  const paxos::Ballot& current_round() const { return crnd_; }
  /// Start round `count` immediately (tests / benches drive rounds manually
  /// when liveness machinery is disabled).
  void start_round(std::int64_t count);

 private:
  static constexpr int kProgressToken = 1;

  bool is_leader() const;
  void maybe_lead();
  void new_round(std::int64_t count);
  void try_phase2();
  void send_2a(const Value& v);

  const Config& config_;
  paxos::QuorumSystem quorums_;
  paxos::FailureDetector fd_;

  paxos::Ballot crnd_;           ///< highest round this coordinator started
  bool phase1_done_ = false;
  std::optional<Value> sent2a_;  ///< value sent in this round's 2a, if any
  std::map<sim::NodeId, paxos::SingleVoteReport<Value>> promises_;
  std::optional<Value> must_pick_;  ///< value forced by phase 1, if any
  std::deque<Value> proposals_;
  std::optional<Value> decided_value_;  ///< set once any learner announces
  sim::Time round_started_at_ = 0;
};

/// Acceptor: persists rnd / vrnd / vval across crashes (its votes are the
/// system's memory; see §4.4 on why acceptors must write to disk).
class Acceptor final : public sim::Process {
 public:
  explicit Acceptor(const Config& config);

  std::string role() const override { return "acceptor"; }
  void on_start() override {}
  void on_message(sim::NodeId from, const std::any& msg) override;
  void on_recover() override;

  const paxos::Ballot& rnd() const { return rnd_; }
  const paxos::Ballot& vrnd() const { return vrnd_; }
  const std::optional<Value>& vval() const { return vval_; }

 private:
  void persist_vote();

  const Config& config_;
  paxos::Ballot rnd_;
  paxos::Ballot vrnd_;
  std::optional<Value> vval_;
};

/// Learner: learns v once a quorum of acceptors voted v in one round, then
/// announces the decision to proposers and coordinators.
class Learner final : public sim::Process {
 public:
  explicit Learner(const Config& config);

  std::string role() const override { return "learner"; }
  void on_message(sim::NodeId from, const std::any& msg) override;

  bool learned() const { return learned_.has_value(); }
  const std::optional<Value>& value() const { return learned_; }
  sim::Time learned_at() const { return learned_at_; }

 private:
  const Config& config_;
  std::map<paxos::Ballot, std::map<sim::NodeId, Value>> votes_;
  std::optional<Value> learned_;
  sim::Time learned_at_ = -1;
};

}  // namespace mcp::classic
