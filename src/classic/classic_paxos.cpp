#include "classic/classic_paxos.hpp"

#include <stdexcept>

#include "sim/simulation.hpp"

namespace mcp::classic {

using paxos::Ballot;

// ---------------------------------------------------------------------------
// Proposer

Proposer::Proposer(const Config& config, Value value)
    : config_(config), value_(std::move(value)) {
  msg::register_wire_messages(decoders());
}

void Proposer::on_start() {
  if (start_delay > 0) {
    set_timer(start_delay, 0);
  } else {
    broadcast_proposal();
  }
}

void Proposer::broadcast_proposal() {
  multicast(config_.coordinators, msg::Propose{value_});
  sim().metrics().incr("classic.proposals_sent");
  if (config_.enable_liveness && !decided_) set_timer(config_.retry_interval, 0);
}

void Proposer::on_timer(int) {
  if (!decided_) broadcast_proposal();
}

void Proposer::on_message(sim::NodeId, const std::any& m) {
  if (const auto* learned = std::any_cast<msg::Learned>(&m)) {
    decided_ = learned->v;
  }
}

// ---------------------------------------------------------------------------
// Coordinator

Coordinator::Coordinator(const Config& config)
    : config_(config),
      quorums_(config.quorum_system()),
      fd_(*this, config.coordinators, config.fd) {
  msg::register_wire_messages(decoders());
}

bool Coordinator::is_leader() const {
  // Without liveness machinery the lowest-id coordinator leads statically.
  if (!config_.enable_liveness) return id() == config_.coordinators.front();
  return fd_.leader() == id();
}

void Coordinator::on_start() {
  if (config_.enable_liveness) {
    fd_.start();
    set_timer(config_.progress_timeout, kProgressToken);
  }
  maybe_lead();
}

void Coordinator::on_recover() {
  // Volatile round state is gone; a recovered coordinator simply behaves as
  // a fresh one (§4.4: coordinators need no stable storage). Its new ballots
  // carry the bumped incarnation so they are distinct from pre-crash ones.
  crnd_ = Ballot::zero();
  phase1_done_ = false;
  sent2a_.reset();
  promises_.clear();
  must_pick_.reset();
  proposals_.clear();
  on_start();
}

void Coordinator::maybe_lead() {
  if (decided_value_ || !is_leader()) return;
  if (crnd_.is_zero()) new_round(1);
}

void Coordinator::start_round(std::int64_t count) { new_round(count); }

void Coordinator::new_round(std::int64_t count) {
  if (count <= crnd_.count) count = crnd_.count + 1;
  crnd_ = Ballot{count, id(), incarnation(), paxos::RoundType::kSingleCoord};
  phase1_done_ = false;
  sent2a_.reset();
  must_pick_.reset();
  promises_.clear();
  round_started_at_ = now();
  sim().metrics().incr("classic.rounds_started");
  multicast(config_.acceptors, msg::P1a{crnd_});
}

void Coordinator::on_timer(int token) {
  if (fd_.handle_timer(token)) return;
  if (token == kProgressToken) {
    if (decided_value_) {
      // Keep re-announcing the decision so learners that lost their 2b
      // messages still converge (the paper's retransmit-last-message rule).
      multicast(config_.learners, msg::Learned{*decided_value_});
      multicast(config_.proposers, msg::Learned{*decided_value_});
    } else if (is_leader()) {
      const bool started = !crnd_.is_zero() && crnd_.coord == id();
      const bool stuck = started && now() - round_started_at_ >= config_.progress_timeout;
      if (!started || stuck) {
        new_round(crnd_.count + 1);
      } else if (sent2a_) {
        multicast(config_.acceptors, msg::P2a{crnd_, *sent2a_});  // retransmit
      }
    }
    set_timer(config_.progress_timeout, kProgressToken);
  }
}

void Coordinator::on_message(sim::NodeId from, const std::any& m) {
  if (fd_.handle_message(from, m)) {
    maybe_lead();
    return;
  }
  if (const auto* p = std::any_cast<msg::Propose>(&m)) {
    proposals_.push_back(p->v);
    try_phase2();
    return;
  }
  if (const auto* p1b = std::any_cast<msg::P1b>(&m)) {
    if (p1b->b != crnd_ || phase1_done_) return;
    promises_[from] = paxos::SingleVoteReport<Value>{from, p1b->vrnd, p1b->vval};
    if (promises_.size() >= quorums_.classic_quorum_size()) {
      phase1_done_ = true;
      std::vector<paxos::SingleVoteReport<Value>> reports;
      reports.reserve(promises_.size());
      for (const auto& [acc, report] : promises_) reports.push_back(report);
      must_pick_ = paxos::pick_single_value(quorums_, reports);
      try_phase2();
    }
    return;
  }
  if (const auto* nack = std::any_cast<msg::Nack>(&m)) {
    if (nack->heard.count > crnd_.count && is_leader() && !decided_value_) {
      new_round(nack->heard.count + 1);
    }
    return;
  }
  if (const auto* learned = std::any_cast<msg::Learned>(&m)) {
    decided_value_ = learned->v;
    return;
  }
}

void Coordinator::try_phase2() {
  if (!phase1_done_ || sent2a_) return;
  if (must_pick_) {
    send_2a(*must_pick_);
  } else if (!proposals_.empty()) {
    send_2a(proposals_.front());
  }
  // Otherwise: phase 1 completed "a priori" (§2.1.2); the 2a goes out as
  // soon as the first proposal arrives.
}

void Coordinator::send_2a(const Value& v) {
  sent2a_ = v;
  sim().metrics().incr("classic.2a_sent");
  multicast(config_.acceptors, msg::P2a{crnd_, v});
}

// ---------------------------------------------------------------------------
// Acceptor

Acceptor::Acceptor(const Config& config) : config_(config) {
  storage().set_write_latency(config.disk_latency);
  msg::register_wire_messages(decoders());
}

void Acceptor::persist_vote() {
  storage().write("vrnd", paxos::encode(vrnd_));
  storage().write("vval", vval_ ? cstruct::encode(*vval_) : std::string{});
  sim().metrics().incr("acceptor." + std::to_string(id()) + ".disk_writes");
}

void Acceptor::on_recover() {
  if (auto s = storage().read("rnd")) rnd_ = paxos::decode_ballot(*s);
  if (auto s = storage().read("vrnd")) vrnd_ = paxos::decode_ballot(*s);
  if (auto s = storage().read("vval"); s && !s->empty()) {
    vval_ = cstruct::decode_command(*s);
  }
}

void Acceptor::on_message(sim::NodeId from, const std::any& m) {
  if (const auto* p1a = std::any_cast<msg::P1a>(&m)) {
    if (p1a->b > rnd_) {
      rnd_ = p1a->b;
      const sim::Time lat = storage().write("rnd", paxos::encode(rnd_));
      sim().metrics().incr("acceptor." + std::to_string(id()) + ".disk_writes");
      send_after_sync(from, msg::P1b{rnd_, vrnd_, vval_}, lat);
    } else if (p1a->b == rnd_) {
      send(from, msg::P1b{rnd_, vrnd_, vval_});  // duplicate 1a: re-promise
    } else {
      send(from, msg::Nack{rnd_});
    }
    return;
  }
  if (const auto* p2a = std::any_cast<msg::P2a>(&m)) {
    if (p2a->b >= rnd_ && p2a->b > vrnd_) {
      rnd_ = p2a->b;
      vrnd_ = p2a->b;
      vval_ = p2a->v;
      storage().write("rnd", paxos::encode(rnd_));
      persist_vote();
      const sim::Time lat = storage().write_latency();
      multicast_after_sync(config_.learners, msg::P2b{vrnd_, *vval_}, lat);
    } else if (p2a->b == vrnd_ && vval_ && *vval_ == p2a->v) {
      multicast(config_.learners, msg::P2b{vrnd_, *vval_});  // duplicate 2a
    } else {
      send(from, msg::Nack{rnd_});
    }
    return;
  }
}

// ---------------------------------------------------------------------------
// Learner

Learner::Learner(const Config& config) : config_(config) {
  msg::register_wire_messages(decoders());
}

void Learner::on_message(sim::NodeId from, const std::any& m) {
  if (const auto* announced = std::any_cast<msg::Learned>(&m)) {
    if (!learned_) {
      learned_ = announced->v;
      learned_at_ = now();
    } else if (!(*learned_ == announced->v)) {
      throw std::logic_error("classic: conflicting decisions (consistency violated)");
    }
    return;
  }
  const auto* p2b = std::any_cast<msg::P2b>(&m);
  if (p2b == nullptr) return;
  auto& round_votes = votes_[p2b->b];
  round_votes[from] = p2b->v;
  // All 2b values of one classic round carry the same value; validate this
  // core invariant at runtime (cheap, and it catches engine bugs early).
  for (const auto& [acc, v] : round_votes) {
    if (!(v == p2b->v)) {
      throw std::logic_error("classic: two values accepted in one round");
    }
  }
  if (round_votes.size() >= config_.quorum_system().classic_quorum_size()) {
    if (learned_) {
      if (!(*learned_ == p2b->v)) {
        throw std::logic_error("classic: conflicting decisions (consistency violated)");
      }
      return;
    }
    learned_ = p2b->v;
    learned_at_ = now();
    sim().metrics().incr("classic.decisions");
    multicast(config_.proposers, msg::Learned{*learned_});
    multicast(config_.coordinators, msg::Learned{*learned_});
  }
}

}  // namespace mcp::classic
