#include "classic/multi_paxos.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/simulation.hpp"

namespace mcp::classic {

using cstruct::Command;
using paxos::Ballot;

// ---------------------------------------------------------------------------
// MultiProposer

void MultiProposer::propose(Command cmd) {
  pending_.emplace(cmd.id, cmd);
  multicast(config_.coordinators, mmsg::Propose{cmd});
  if (config_.enable_liveness) set_timer(config_.retry_interval, 0);
}

void MultiProposer::on_timer(int) {
  if (pending_.empty()) return;
  for (const auto& [cid, cmd] : pending_) {
    multicast(config_.coordinators, mmsg::Propose{cmd});
  }
  set_timer(config_.retry_interval, 0);
}

void MultiProposer::on_message(sim::NodeId, const std::any& m) {
  if (const auto* learned = std::any_cast<mmsg::Learned>(&m)) {
    if (pending_.erase(learned->v.id) > 0) ++decided_;
  }
}

// ---------------------------------------------------------------------------
// MultiCoordinator

MultiCoordinator::MultiCoordinator(const MultiConfig& config)
    : config_(config),
      quorums_(config.quorum_system()),
      fd_(*this, config.coordinators, config.fd) {
  mmsg::register_wire_messages(decoders());
}

bool MultiCoordinator::is_leader() const {
  if (!config_.enable_liveness) return id() == config_.coordinators.front();
  return fd_.leader() == id();
}

void MultiCoordinator::on_start() {
  if (config_.enable_liveness) {
    fd_.start();
    set_timer(config_.progress_timeout, kProgressToken);
  }
  maybe_lead();
}

void MultiCoordinator::on_recover() {
  crnd_ = Ballot::zero();
  phase1_done_ = false;
  promises_.clear();
  backlog_.clear();
  assigned_.clear();
  in_flight_.clear();
  next_instance_ = 0;
  on_start();
}

void MultiCoordinator::maybe_lead() {
  if (!is_leader()) return;
  if (crnd_.is_zero() || crnd_.coord != id()) new_round();
}

void MultiCoordinator::new_round() {
  crnd_ = Ballot{crnd_.count + 1, id(), incarnation(), paxos::RoundType::kSingleCoord};
  phase1_done_ = false;
  promises_.clear();
  // Everything previously in flight must be re-proposed under the new round.
  for (const auto& [inst, cmd] : in_flight_) backlog_.push_back(cmd);
  in_flight_.clear();
  assigned_.clear();
  phase1_started_at_ = now();
  sim().metrics().incr("multipaxos.rounds_started");
  multicast(config_.acceptors, mmsg::P1a{crnd_, 0});
}

void MultiCoordinator::on_timer(int token) {
  if (fd_.handle_timer(token)) return;
  if (token == kProgressToken) {
    if (is_leader()) {
      if (!phase1_done_ && (crnd_.is_zero() || crnd_.coord != id() ||
                            now() - phase1_started_at_ >= config_.progress_timeout)) {
        new_round();
      } else if (phase1_done_) {
        // Retransmit everything still unlearned.
        for (const auto& [inst, cmd] : in_flight_) {
          multicast(config_.acceptors, mmsg::P2a{crnd_, inst, cmd});
        }
      }
    }
    set_timer(config_.progress_timeout, kProgressToken);
  }
}

void MultiCoordinator::assign_and_send(const Command& cmd) {
  if (assigned_.count(cmd.id) != 0) {
    // Retransmission of a known command: resend its 2a.
    const Instance inst = assigned_[cmd.id];
    auto it = in_flight_.find(inst);
    if (it != in_flight_.end()) {
      multicast(config_.acceptors, mmsg::P2a{crnd_, inst, it->second});
    }
    return;
  }
  const Instance inst = next_instance_++;
  assigned_[cmd.id] = inst;
  in_flight_[inst] = cmd;
  sim().metrics().incr("multipaxos.2a_sent");
  multicast(config_.acceptors, mmsg::P2a{crnd_, inst, cmd});
}

void MultiCoordinator::on_message(sim::NodeId from, const std::any& m) {
  if (fd_.handle_message(from, m)) {
    maybe_lead();
    return;
  }
  if (const auto* p = std::any_cast<mmsg::Propose>(&m)) {
    if (!is_leader()) return;
    if (phase1_done_) {
      assign_and_send(p->cmd);
    } else {
      backlog_.push_back(p->cmd);
    }
    return;
  }
  if (const auto* p1b = std::any_cast<mmsg::P1b>(&m)) {
    if (p1b->b != crnd_ || phase1_done_) return;
    promises_[from] = p1b->votes;
    if (promises_.size() < quorums_.classic_quorum_size()) return;
    phase1_done_ = true;
    // Per instance: gather reports and re-propose the forced value (or the
    // reported one) under our round.
    std::map<Instance, std::vector<paxos::SingleVoteReport<Command>>> by_instance;
    for (const auto& [acc, votes] : promises_) {
      for (const auto& v : votes) {
        by_instance[v.instance].push_back(
            paxos::SingleVoteReport<Command>{acc, v.vrnd, v.vval});
      }
    }
    for (auto& [inst, reports] : by_instance) {
      // Pad with "never voted" reports from promisers that had no vote for
      // this instance, so the picking rule sees the whole quorum.
      for (const auto& [acc, votes] : promises_) {
        const bool has = std::any_of(reports.begin(), reports.end(),
                                     [&, acc = acc](const auto& r) { return r.acceptor == acc; });
        if (!has) {
          reports.push_back(paxos::SingleVoteReport<Command>{acc, Ballot::zero(), std::nullopt});
        }
      }
      auto forced = paxos::pick_single_value(quorums_, reports);
      if (forced) {
        in_flight_[inst] = *forced;
        assigned_[forced->id] = inst;
        next_instance_ = std::max(next_instance_, inst + 1);
        multicast(config_.acceptors, mmsg::P2a{crnd_, inst, *forced});
      }
    }
    // Drain proposals that arrived during phase 1.
    for (const Command& cmd : backlog_) assign_and_send(cmd);
    backlog_.clear();
    return;
  }
  if (const auto* nack = std::any_cast<mmsg::Nack>(&m)) {
    if (nack->heard.count > crnd_.count && is_leader()) new_round();
    return;
  }
  if (const auto* learned = std::any_cast<mmsg::Learned>(&m)) {
    in_flight_.erase(learned->instance);
    return;
  }
}

// ---------------------------------------------------------------------------
// MultiAcceptor

MultiAcceptor::MultiAcceptor(const MultiConfig& config) : config_(config) {
  storage().set_write_latency(config.disk_latency);
  mmsg::register_wire_messages(decoders());
}

void MultiAcceptor::on_recover() {
  if (auto s = storage().read("rnd")) rnd_ = paxos::decode_ballot(*s);
  votes_.clear();
  if (auto s = storage().read("votes.count")) {
    const auto count = std::stoll(*s);
    for (std::int64_t i = 0; i < count; ++i) {
      const std::string prefix = "votes." + std::to_string(i);
      auto inst = storage().read_int(prefix + ".instance");
      auto vrnd = storage().read(prefix + ".vrnd");
      auto vval = storage().read(prefix + ".vval");
      if (inst && vrnd && vval) {
        votes_[*inst] = Vote{paxos::decode_ballot(*vrnd), cstruct::decode_command(*vval)};
      }
    }
  }
}

void MultiAcceptor::on_message(sim::NodeId from, const std::any& m) {
  const std::string me = "acceptor." + std::to_string(id());
  if (const auto* p1a = std::any_cast<mmsg::P1a>(&m)) {
    if (p1a->b > rnd_) {
      rnd_ = p1a->b;
      const sim::Time lat = storage().write("rnd", paxos::encode(rnd_));
      sim().metrics().incr(me + ".disk_writes");
      mmsg::P1b reply{rnd_, {}};
      for (const auto& [inst, vote] : votes_) {
        if (inst >= p1a->from_instance) {
          reply.votes.push_back(mmsg::InstanceVote{inst, vote.vrnd, vote.vval});
        }
      }
      send_after_sync(from, reply, lat);
    } else {
      send(from, mmsg::Nack{rnd_});
    }
    return;
  }
  if (const auto* p2a = std::any_cast<mmsg::P2a>(&m)) {
    auto it = votes_.find(p2a->instance);
    const Ballot prev_vrnd = it == votes_.end() ? Ballot::zero() : it->second.vrnd;
    if (p2a->b >= rnd_ && p2a->b > prev_vrnd) {
      rnd_ = p2a->b;
      votes_[p2a->instance] = Vote{p2a->b, p2a->v};
      // Persist the vote (single logical disk write per accept; the index
      // layout below is just the simulated encoding of a log record).
      const std::size_t slot = votes_.size() - 1;
      const std::string prefix = "votes." + std::to_string(slot);
      storage().write(prefix + ".instance", std::to_string(p2a->instance));
      storage().write(prefix + ".vrnd", paxos::encode(p2a->b));
      const sim::Time lat = storage().write(prefix + ".vval", cstruct::encode(p2a->v));
      storage().write_int("votes.count", static_cast<std::int64_t>(votes_.size()));
      storage().write("rnd", paxos::encode(rnd_));
      sim().metrics().incr(me + ".disk_writes");
      multicast_after_sync(config_.learners, mmsg::P2b{p2a->b, p2a->instance, p2a->v}, lat);
    } else if (p2a->b == prev_vrnd && it != votes_.end() && it->second.vval == p2a->v) {
      multicast(config_.learners, mmsg::P2b{p2a->b, p2a->instance, p2a->v});
    } else {
      send(from, mmsg::Nack{rnd_});
    }
    return;
  }
}

// ---------------------------------------------------------------------------
// MultiLearner

void MultiLearner::on_message(sim::NodeId from, const std::any& m) {
  const auto* p2b = std::any_cast<mmsg::P2b>(&m);
  if (p2b == nullptr) return;
  if (log_.count(p2b->instance) != 0) return;  // already decided
  // A value is chosen only when a quorum votes for it *in the same round*
  // (votes from different rounds must never be combined).
  auto& votes = votes_[p2b->instance][p2b->b];
  votes[from] = p2b->v;
  std::size_t agreeing = 0;
  for (const auto& [acc, v] : votes) {
    if (v == p2b->v) ++agreeing;
  }
  if (agreeing >= config_.quorum_system().classic_quorum_size()) {
    log_[p2b->instance] = p2b->v;
    decided_at_[p2b->instance] = now();
    sim().metrics().incr("multipaxos.decisions");
    multicast(config_.proposers, mmsg::Learned{p2b->instance, p2b->v});
    multicast(config_.coordinators, mmsg::Learned{p2b->instance, p2b->v});
  }
}

std::size_t MultiLearner::contiguous_prefix() const {
  std::size_t n = 0;
  for (const auto& [inst, cmd] : log_) {
    if (inst != static_cast<Instance>(n)) break;
    ++n;
  }
  return n;
}

}  // namespace mcp::classic
