#pragma once

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "cstruct/command.hpp"
#include "paxos/ballot.hpp"
#include "paxos/leader.hpp"
#include "paxos/proved_safe.hpp"
#include "paxos/quorum.hpp"
#include "sim/process.hpp"

namespace mcp::classic {

/// Multi-instance Classic Paxos (MultiPaxos): the state-machine-replication
/// deployment of §1/§2.1, with the leader executing phase 1 "a priori" for
/// every instance at once, so each command costs three communication steps
/// (propose → 2a → 2b) in the steady state. Serves as the baseline SMR
/// substrate that Generalized/Multicoordinated Paxos is compared against.
using Instance = std::int64_t;

namespace mmsg {
struct Propose {
  cstruct::Command cmd;
};
struct P1a {
  paxos::Ballot b;
  Instance from_instance;  ///< votes at or above this instance are reported
};
struct InstanceVote {
  Instance instance;
  paxos::Ballot vrnd;
  cstruct::Command vval;
};
struct P1b {
  paxos::Ballot b;
  std::vector<InstanceVote> votes;
};
struct P2a {
  paxos::Ballot b;
  Instance instance;
  cstruct::Command v;
};
struct P2b {
  paxos::Ballot b;
  Instance instance;
  cstruct::Command v;
};
struct Nack {
  paxos::Ballot heard;
};
struct Learned {
  Instance instance;
  cstruct::Command v;
};
}  // namespace mmsg

struct MultiConfig {
  std::vector<sim::NodeId> proposers;
  std::vector<sim::NodeId> coordinators;
  std::vector<sim::NodeId> acceptors;
  std::vector<sim::NodeId> learners;
  int f = 0;
  sim::Time disk_latency = 0;
  bool enable_liveness = true;
  paxos::FailureDetector::Config fd;
  sim::Time retry_interval = 400;
  sim::Time progress_timeout = 600;

  paxos::QuorumSystem quorum_system() const {
    return paxos::QuorumSystem(acceptors, f, f);
  }
};

/// Client-side: proposes a stream of commands, retransmitting each until it
/// is learned.
class MultiProposer final : public sim::Process {
 public:
  explicit MultiProposer(const MultiConfig& config) : config_(config) {}

  std::string role() const override { return "proposer"; }
  void on_message(sim::NodeId from, const std::any& msg) override;
  void on_timer(int token) override;

  /// Submit a command now (callable from sim().at closures).
  void propose(cstruct::Command cmd);

  std::size_t decided_count() const { return decided_; }
  std::size_t pending_count() const { return pending_.size(); }

 private:
  const MultiConfig& config_;
  std::map<std::uint64_t, cstruct::Command> pending_;
  std::size_t decided_ = 0;
};

class MultiCoordinator final : public sim::Process {
 public:
  explicit MultiCoordinator(const MultiConfig& config);

  std::string role() const override { return "coordinator"; }
  void on_start() override;
  void on_message(sim::NodeId from, const std::any& msg) override;
  void on_timer(int token) override;
  void on_recover() override;

  bool leading() const { return phase1_done_; }
  const paxos::Ballot& round() const { return crnd_; }

 private:
  static constexpr int kProgressToken = 1;

  bool is_leader() const;
  void maybe_lead();
  void new_round();
  void assign_and_send(const cstruct::Command& cmd);

  const MultiConfig& config_;
  paxos::QuorumSystem quorums_;
  paxos::FailureDetector fd_;

  paxos::Ballot crnd_;
  bool phase1_done_ = false;
  std::map<sim::NodeId, std::vector<mmsg::InstanceVote>> promises_;
  std::deque<cstruct::Command> backlog_;       ///< proposals awaiting phase 1
  std::map<std::uint64_t, Instance> assigned_; ///< command id → instance
  std::map<Instance, cstruct::Command> in_flight_;
  Instance next_instance_ = 0;
  sim::Time phase1_started_at_ = 0;
};

class MultiAcceptor final : public sim::Process {
 public:
  explicit MultiAcceptor(const MultiConfig& config);

  std::string role() const override { return "acceptor"; }
  void on_message(sim::NodeId from, const std::any& msg) override;
  void on_recover() override;

 private:
  struct Vote {
    paxos::Ballot vrnd;
    cstruct::Command vval;
  };

  const MultiConfig& config_;
  paxos::Ballot rnd_;
  std::map<Instance, Vote> votes_;
};

/// Learns per-instance decisions and exposes the contiguous decided prefix
/// (what a replica could apply).
class MultiLearner final : public sim::Process {
 public:
  explicit MultiLearner(const MultiConfig& config) : config_(config) {}

  std::string role() const override { return "learner"; }
  void on_message(sim::NodeId from, const std::any& msg) override;

  const std::map<Instance, cstruct::Command>& log() const { return log_; }
  /// Simulated time each instance was first decided (for latency benches).
  const std::map<Instance, sim::Time>& decided_at() const { return decided_at_; }
  /// Number of consecutive instances decided starting at 0.
  std::size_t contiguous_prefix() const;
  std::size_t decided_count() const { return log_.size(); }

 private:
  const MultiConfig& config_;
  std::map<Instance, std::map<paxos::Ballot, std::map<sim::NodeId, cstruct::Command>>> votes_;
  std::map<Instance, cstruct::Command> log_;
  std::map<Instance, sim::Time> decided_at_;
};

}  // namespace mcp::classic
