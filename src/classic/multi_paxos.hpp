#pragma once

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "cstruct/command.hpp"
#include "paxos/ballot.hpp"
#include "paxos/leader.hpp"
#include "paxos/proved_safe.hpp"
#include "paxos/quorum.hpp"
#include "paxos/wire.hpp"
#include "sim/process.hpp"

namespace mcp::classic {

/// Multi-instance Classic Paxos (MultiPaxos): the state-machine-replication
/// deployment of §1/§2.1, with the leader executing phase 1 "a priori" for
/// every instance at once, so each command costs three communication steps
/// (propose → 2a → 2b) in the steady state. Serves as the baseline SMR
/// substrate that Generalized/Multicoordinated Paxos is compared against.
using Instance = std::int64_t;

namespace mmsg {
struct Propose {
  cstruct::Command cmd;

  static constexpr std::uint32_t kTag = 32;
  static constexpr const char* kName = "multi.propose";
  void encode(wire::Writer& w) const { wire::put_command(w, cmd); }
  static Propose decode(wire::Reader& r) { return {wire::get_command(r)}; }
};
struct P1a {
  paxos::Ballot b;
  Instance from_instance;  ///< votes at or above this instance are reported

  static constexpr std::uint32_t kTag = 33;
  static constexpr const char* kName = "multi.1a";
  void encode(wire::Writer& w) const {
    wire::put_ballot(w, b);
    w.put_signed(from_instance);
  }
  static P1a decode(wire::Reader& r) {
    return {wire::get_ballot(r), r.get_signed()};
  }
};
struct InstanceVote {
  Instance instance;
  paxos::Ballot vrnd;
  cstruct::Command vval;
};
struct P1b {
  paxos::Ballot b;
  std::vector<InstanceVote> votes;

  static constexpr std::uint32_t kTag = 34;
  static constexpr const char* kName = "multi.1b";
  void encode(wire::Writer& w) const {
    wire::put_ballot(w, b);
    w.put_varint(votes.size());
    for (const InstanceVote& v : votes) {
      w.put_signed(v.instance);
      wire::put_ballot(w, v.vrnd);
      wire::put_command(w, v.vval);
    }
  }
  static P1b decode(wire::Reader& r) {
    P1b out;
    out.b = wire::get_ballot(r);
    const std::uint64_t n = wire::check_count(r, r.get_varint());
    out.votes.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      InstanceVote v;
      v.instance = r.get_signed();
      v.vrnd = wire::get_ballot(r);
      v.vval = wire::get_command(r);
      out.votes.push_back(std::move(v));
    }
    return out;
  }
};
struct P2a {
  paxos::Ballot b;
  Instance instance;
  cstruct::Command v;

  static constexpr std::uint32_t kTag = 35;
  static constexpr const char* kName = "multi.2a";
  void encode(wire::Writer& w) const {
    wire::put_ballot(w, b);
    w.put_signed(instance);
    wire::put_command(w, v);
  }
  static P2a decode(wire::Reader& r) {
    return {wire::get_ballot(r), r.get_signed(), wire::get_command(r)};
  }
};
struct P2b {
  paxos::Ballot b;
  Instance instance;
  cstruct::Command v;

  static constexpr std::uint32_t kTag = 36;
  static constexpr const char* kName = "multi.2b";
  void encode(wire::Writer& w) const {
    wire::put_ballot(w, b);
    w.put_signed(instance);
    wire::put_command(w, v);
  }
  static P2b decode(wire::Reader& r) {
    return {wire::get_ballot(r), r.get_signed(), wire::get_command(r)};
  }
};
struct Nack {
  paxos::Ballot heard;

  static constexpr std::uint32_t kTag = 37;
  static constexpr const char* kName = "multi.nack";
  void encode(wire::Writer& w) const { wire::put_ballot(w, heard); }
  static Nack decode(wire::Reader& r) { return {wire::get_ballot(r)}; }
};
struct Learned {
  Instance instance;
  cstruct::Command v;

  static constexpr std::uint32_t kTag = 38;
  static constexpr const char* kName = "multi.learned";
  void encode(wire::Writer& w) const {
    w.put_signed(instance);
    wire::put_command(w, v);
  }
  static Learned decode(wire::Reader& r) {
    return {r.get_signed(), wire::get_command(r)};
  }
};

/// Full MultiPaxos message set (+ heartbeats); registered by every role.
inline void register_wire_messages(wire::DecoderRegistry& reg) {
  reg.add<paxos::Heartbeat>();
  reg.add<Propose>();
  reg.add<P1a>();
  reg.add<P1b>();
  reg.add<P2a>();
  reg.add<P2b>();
  reg.add<Nack>();
  reg.add<Learned>();
}
}  // namespace mmsg

struct MultiConfig {
  std::vector<sim::NodeId> proposers;
  std::vector<sim::NodeId> coordinators;
  std::vector<sim::NodeId> acceptors;
  std::vector<sim::NodeId> learners;
  int f = 0;
  sim::Time disk_latency = 0;
  bool enable_liveness = true;
  paxos::FailureDetector::Config fd;
  sim::Time retry_interval = 400;
  sim::Time progress_timeout = 600;

  paxos::QuorumSystem quorum_system() const {
    return paxos::QuorumSystem(acceptors, f, f);
  }
};

/// Client-side: proposes a stream of commands, retransmitting each until it
/// is learned.
class MultiProposer final : public sim::Process {
 public:
  explicit MultiProposer(const MultiConfig& config) : config_(config) {
    mmsg::register_wire_messages(decoders());
  }

  std::string role() const override { return "proposer"; }
  void on_message(sim::NodeId from, const std::any& msg) override;
  void on_timer(int token) override;

  /// Submit a command now (callable from sim().at closures).
  void propose(cstruct::Command cmd);

  std::size_t decided_count() const { return decided_; }
  std::size_t pending_count() const { return pending_.size(); }

 private:
  const MultiConfig& config_;
  std::map<std::uint64_t, cstruct::Command> pending_;
  std::size_t decided_ = 0;
};

class MultiCoordinator final : public sim::Process {
 public:
  explicit MultiCoordinator(const MultiConfig& config);

  std::string role() const override { return "coordinator"; }
  void on_start() override;
  void on_message(sim::NodeId from, const std::any& msg) override;
  void on_timer(int token) override;
  void on_recover() override;

  bool leading() const { return phase1_done_; }
  const paxos::Ballot& round() const { return crnd_; }

 private:
  static constexpr int kProgressToken = 1;

  bool is_leader() const;
  void maybe_lead();
  void new_round();
  void assign_and_send(const cstruct::Command& cmd);

  const MultiConfig& config_;
  paxos::QuorumSystem quorums_;
  paxos::FailureDetector fd_;

  paxos::Ballot crnd_;
  bool phase1_done_ = false;
  std::map<sim::NodeId, std::vector<mmsg::InstanceVote>> promises_;
  std::deque<cstruct::Command> backlog_;       ///< proposals awaiting phase 1
  std::map<std::uint64_t, Instance> assigned_; ///< command id → instance
  std::map<Instance, cstruct::Command> in_flight_;
  Instance next_instance_ = 0;
  sim::Time phase1_started_at_ = 0;
};

class MultiAcceptor final : public sim::Process {
 public:
  explicit MultiAcceptor(const MultiConfig& config);

  std::string role() const override { return "acceptor"; }
  void on_message(sim::NodeId from, const std::any& msg) override;
  void on_recover() override;

 private:
  struct Vote {
    paxos::Ballot vrnd;
    cstruct::Command vval;
  };

  const MultiConfig& config_;
  paxos::Ballot rnd_;
  std::map<Instance, Vote> votes_;
};

/// Learns per-instance decisions and exposes the contiguous decided prefix
/// (what a replica could apply).
class MultiLearner final : public sim::Process {
 public:
  explicit MultiLearner(const MultiConfig& config) : config_(config) {
    mmsg::register_wire_messages(decoders());
  }

  std::string role() const override { return "learner"; }
  void on_message(sim::NodeId from, const std::any& msg) override;

  const std::map<Instance, cstruct::Command>& log() const { return log_; }
  /// Simulated time each instance was first decided (for latency benches).
  const std::map<Instance, sim::Time>& decided_at() const { return decided_at_; }
  /// Number of consecutive instances decided starting at 0.
  std::size_t contiguous_prefix() const;
  std::size_t decided_count() const { return log_.size(); }

 private:
  const MultiConfig& config_;
  std::map<Instance, std::map<paxos::Ballot, std::map<sim::NodeId, cstruct::Command>>> votes_;
  std::map<Instance, cstruct::Command> log_;
  std::map<Instance, sim::Time> decided_at_;
};

}  // namespace mcp::classic
