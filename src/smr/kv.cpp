#include "smr/kv.hpp"

#include "util/strings.hpp"

namespace mcp::smr {

KVStore::Result KVStore::apply(const cstruct::Command& c) {
  ++applied_;
  if (c.type == cstruct::OpType::kWrite) {
    data_[c.key] = c.value;
    return Result{true, c.value};
  }
  auto it = data_.find(c.key);
  if (it == data_.end()) return Result{false, {}};
  return Result{true, it->second};
}

using util::concat;

Workload::Workload(Spec spec, util::Rng& rng) {
  commands_.reserve(spec.commands);
  for (std::size_t i = 0; i < spec.commands; ++i) {
    const std::uint64_t id = spec.first_id + i;
    const bool hot = rng.chance(spec.conflict_fraction);
    const bool read = rng.chance(spec.read_fraction);
    const std::string key = hot ? "hot" : concat("cold", id);
    if (read) {
      commands_.push_back(cstruct::make_read(id, key));
    } else {
      commands_.push_back(cstruct::make_write(id, key, concat("v", id)));
    }
  }
}

}  // namespace mcp::smr
