#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cstruct/command.hpp"
#include "util/rng.hpp"

namespace mcp::smr {

/// Deterministic key-value state machine — the replicated service of the
/// paper's state-machine-replication framing (§1). Writes set a key; reads
/// return the current value (and do not change state, which is why they
/// commute).
class KVStore {
 public:
  struct Result {
    bool found = false;
    std::string value;
  };

  Result apply(const cstruct::Command& c);

  std::size_t applied_count() const { return applied_; }
  const std::map<std::string, std::string>& data() const { return data_; }

  /// Two replicas that applied equivalent command histories end in the
  /// same state; state equality is the replica-convergence check.
  friend bool operator==(const KVStore& a, const KVStore& b) {
    return a.data_ == b.data_;
  }
  friend bool operator!=(const KVStore& a, const KVStore& b) { return !(a == b); }

 private:
  std::map<std::string, std::string> data_;
  std::size_t applied_ = 0;
};

/// Synthetic client workload for the generic-broadcast experiments: a
/// stream of reads/writes whose conflict profile is controlled by the key
/// skew. `conflict_fraction` of the commands target a single hot key with
/// writes (every pair of them conflicts); the rest touch per-command cold
/// keys (never conflicting).
class Workload {
 public:
  struct Spec {
    std::size_t commands = 100;
    double conflict_fraction = 0.1;
    double read_fraction = 0.0;  ///< reads on the hot key still commute
    std::uint64_t first_id = 1;
  };

  Workload(Spec spec, util::Rng& rng);

  const std::vector<cstruct::Command>& commands() const { return commands_; }

 private:
  std::vector<cstruct::Command> commands_;
};

}  // namespace mcp::smr
