#pragma once

#include <vector>

#include "cstruct/history.hpp"
#include "genpaxos/engine.hpp"
#include "sim/process.hpp"
#include "smr/kv.hpp"

namespace mcp::smr {

/// A service replica: applies the commands of a learner's command history
/// to its local KVStore as they become learned. One Generalized Consensus
/// instance drives the whole replica lifetime (the paper's point in §1:
/// learners "augment their learned data structures", so no per-command
/// consensus instances are needed).
///
/// The learned history only ever grows by extension, and our History ⊔
/// keeps the previous linearization as a literal prefix, so applying the
/// new suffix in order is a valid execution; replicas applying equivalent
/// histories converge to the same state.
class Replica final : public sim::Process {
 public:
  Replica(const genpaxos::GenLearner<cstruct::History>& learner, sim::Time poll_interval)
      : learner_(learner), poll_interval_(poll_interval) {}

  std::string role() const override { return "replica"; }

  void on_start() override { set_timer(poll_interval_, 0); }

  void on_timer(int) override {
    poll();
    set_timer(poll_interval_, 0);
  }

  void on_message(sim::NodeId, const std::any&) override {}

  /// Apply any newly learned commands (also callable directly at the end
  /// of a run to drain the tail).
  void poll() {
    const auto& seq = learner_.learned().sequence();
    while (applied_ < seq.size()) {
      store_.apply(seq[applied_]);
      ++applied_;
    }
  }

  const KVStore& store() const { return store_; }
  std::size_t applied() const { return applied_; }

 private:
  const genpaxos::GenLearner<cstruct::History>& learner_;
  sim::Time poll_interval_;
  KVStore store_;
  std::size_t applied_ = 0;
};

/// True when every replica reached the same final state (call poll() on
/// each first).
bool replicas_converged(const std::vector<const Replica*>& replicas);

}  // namespace mcp::smr
