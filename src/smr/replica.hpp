#pragma once

#include <functional>
#include <vector>

#include "cstruct/history.hpp"
#include "genpaxos/engine.hpp"
#include "sim/process.hpp"
#include "smr/kv.hpp"

namespace mcp::smr {

/// A service replica: applies the commands of a learner's command history
/// to its local KVStore as they become learned. One Generalized Consensus
/// instance drives the whole replica lifetime (the paper's point in §1:
/// learners "augment their learned data structures", so no per-command
/// consensus instances are needed).
///
/// The learned history only ever grows by extension, and our History ⊔
/// keeps the previous linearization as a literal prefix, so applying the
/// new suffix in order is a valid execution; replicas applying equivalent
/// histories converge to the same state.
///
/// Application is notification-driven: the replica subscribes to the
/// LearnerCore's learned-growth listener at construction and applies the
/// new suffix the instant it is learned — no poll timer, so apply (and
/// client reply) latency is not quantized by a poll interval. The same
/// class serves both hosts: under the simulator it is registered as a
/// process of its own next to a GenLearner; inside a live runtime::Node it
/// is embedded by the service frontend, which owns the LearnerCore (the
/// replica never uses host facilities, so it needs no binding of its own).
class Replica final : public sim::Process {
 public:
  /// Observer of every applied command and its state-machine result (the
  /// service frontend uses it to answer the client whose command this was).
  using ApplyListener =
      std::function<void(const cstruct::Command&, const KVStore::Result&)>;

  explicit Replica(genpaxos::LearnerCore<cstruct::History>& learner)
      : learner_(learner) {
    // Gated on crashed(): the notification arrives through the *learner's*
    // message handling, which the simulator's crash injection does not
    // stop — a crashed replica must not keep mutating its store the way
    // the old (crash-cancelled) poll timer never would have.
    learner_.add_listener([this] {
      if (!crashed()) poll();
    });
  }
  explicit Replica(genpaxos::GenLearner<cstruct::History>& learner)
      : Replica(learner.core()) {}

  std::string role() const override { return "replica"; }

  void on_message(sim::NodeId, const std::any&) override {}

  /// Catch up on everything learned while crashed. (The in-memory store
  /// survives the crash, as all volatile state does under the simulator's
  /// model; a real restart would rebuild it by replaying the learned
  /// history from the start, ending in this same state.)
  void on_recover() override { poll(); }

  void set_apply_listener(ApplyListener listener) {
    apply_listener_ = std::move(listener);
  }

  /// Apply any learned-but-unapplied commands. The learner notification
  /// already calls this on every growth; it stays public as an idempotent
  /// drain for callers holding only the replica.
  void poll() {
    const auto& seq = learner_.learned().sequence();
    while (applied_ < seq.size()) {
      const cstruct::Command& c = seq[applied_];
      const KVStore::Result result = store_.apply(c);
      ++applied_;
      if (apply_listener_) apply_listener_(c, result);
    }
  }

  const KVStore& store() const { return store_; }
  std::size_t applied() const { return applied_; }

 private:
  genpaxos::LearnerCore<cstruct::History>& learner_;
  KVStore store_;
  std::size_t applied_ = 0;
  ApplyListener apply_listener_;
};

/// True when every replica reached the same final state (call poll() on
/// each first).
bool replicas_converged(const std::vector<const Replica*>& replicas);

}  // namespace mcp::smr
