#include "smr/replica.hpp"

namespace mcp::smr {

bool replicas_converged(const std::vector<const Replica*>& replicas) {
  if (replicas.empty()) return true;
  const KVStore& first = replicas.front()->store();
  for (const Replica* r : replicas) {
    if (r->store() != first) return false;
  }
  return true;
}

}  // namespace mcp::smr
