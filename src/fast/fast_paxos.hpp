#pragma once

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "cstruct/command.hpp"
#include "paxos/ballot.hpp"
#include "paxos/leader.hpp"
#include "paxos/proved_safe.hpp"
#include "paxos/quorum.hpp"
#include "paxos/wire.hpp"
#include "sim/process.hpp"

namespace mcp::fast {

/// Fast Paxos (§2.2), one consensus instance. Proposers send commands
/// directly to the acceptors; the coordinator opens a fast round with an
/// "Any" 2a message. Collisions (acceptors of a fast quorum accepting
/// different values) are resolved by one of the three mechanisms the paper
/// describes, all of which cost acceptor disk writes — the contrast with
/// multicoordinated rounds drawn in §4.2.
using Value = cstruct::Command;

/// §2.2: restart = new round from phase 1 (4 extra steps); coordinated =
/// the next round's coordinator reuses round-i 2b messages as 1b (2 steps);
/// uncoordinated = acceptors do the same locally and vote again in the next
/// fast round (1 step, may collide again).
enum class RecoveryMode { kRestart, kCoordinated, kUncoordinated };

namespace msg {
struct Propose {
  Value v;

  static constexpr std::uint32_t kTag = 48;
  static constexpr const char* kName = "fast.propose";
  void encode(wire::Writer& w) const { wire::put_command(w, v); }
  static Propose decode(wire::Reader& r) { return {wire::get_command(r)}; }
};
struct P1a {
  paxos::Ballot b;

  static constexpr std::uint32_t kTag = 49;
  static constexpr const char* kName = "fast.1a";
  void encode(wire::Writer& w) const { wire::put_ballot(w, b); }
  static P1a decode(wire::Reader& r) { return {wire::get_ballot(r)}; }
};
struct P1b {
  paxos::Ballot b;
  paxos::Ballot vrnd;
  std::optional<Value> vval;

  static constexpr std::uint32_t kTag = 50;
  static constexpr const char* kName = "fast.1b";
  void encode(wire::Writer& w) const {
    wire::put_ballot(w, b);
    wire::put_ballot(w, vrnd);
    wire::put_opt_command(w, vval);
  }
  static P1b decode(wire::Reader& r) {
    return {wire::get_ballot(r), wire::get_ballot(r), wire::get_opt_command(r)};
  }
};
struct P2a {
  paxos::Ballot b;
  std::optional<Value> v;  ///< nullopt encodes the special value Any

  static constexpr std::uint32_t kTag = 51;
  static constexpr const char* kName = "fast.2a";
  void encode(wire::Writer& w) const {
    wire::put_ballot(w, b);
    wire::put_opt_command(w, v);
  }
  static P2a decode(wire::Reader& r) {
    return {wire::get_ballot(r), wire::get_opt_command(r)};
  }
};
struct P2b {
  paxos::Ballot b;
  Value v;

  static constexpr std::uint32_t kTag = 52;
  static constexpr const char* kName = "fast.2b";
  void encode(wire::Writer& w) const {
    wire::put_ballot(w, b);
    wire::put_command(w, v);
  }
  static P2b decode(wire::Reader& r) {
    return {wire::get_ballot(r), wire::get_command(r)};
  }
};
struct Nack {
  paxos::Ballot heard;

  static constexpr std::uint32_t kTag = 53;
  static constexpr const char* kName = "fast.nack";
  void encode(wire::Writer& w) const { wire::put_ballot(w, heard); }
  static Nack decode(wire::Reader& r) { return {wire::get_ballot(r)}; }
};
struct Learned {
  Value v;

  static constexpr std::uint32_t kTag = 54;
  static constexpr const char* kName = "fast.learned";
  void encode(wire::Writer& w) const { wire::put_command(w, v); }
  static Learned decode(wire::Reader& r) { return {wire::get_command(r)}; }
};

/// Full Fast Paxos message set (+ heartbeats); registered by every role.
inline void register_wire_messages(wire::DecoderRegistry& reg) {
  reg.add<paxos::Heartbeat>();
  reg.add<Propose>();
  reg.add<P1a>();
  reg.add<P1b>();
  reg.add<P2a>();
  reg.add<P2b>();
  reg.add<Nack>();
  reg.add<Learned>();
}
}  // namespace msg

struct Config {
  std::vector<sim::NodeId> proposers;
  std::vector<sim::NodeId> coordinators;
  std::vector<sim::NodeId> acceptors;
  std::vector<sim::NodeId> learners;
  int f = 0;  ///< classic quorum = n − f
  int e = 0;  ///< fast quorum = n − e; requires n > 2e + f

  RecoveryMode recovery = RecoveryMode::kCoordinated;
  sim::Time disk_latency = 0;
  bool enable_liveness = true;
  paxos::FailureDetector::Config fd;
  sim::Time retry_interval = 400;
  sim::Time progress_timeout = 800;

  paxos::QuorumSystem quorum_system() const {
    return paxos::QuorumSystem(acceptors, f, e);
  }
  /// Round type ladder (§4.5): with coordinated recovery every fast round
  /// is followed by a classic one; restart/uncoordinated ladders stay fast
  /// but interleave a single-coordinated round every 4 counts as the
  /// liveness backstop §4.3 prescribes ("Multicoordinated Paxos can always
  /// switch to a single-coordinated round to ensure progress").
  paxos::RoundType type_of(std::int64_t count) const {
    if (recovery == RecoveryMode::kCoordinated) {
      return count % 2 == 0 ? paxos::RoundType::kSingleCoord : paxos::RoundType::kFast;
    }
    return count % 4 == 0 ? paxos::RoundType::kSingleCoord : paxos::RoundType::kFast;
  }
  paxos::Ballot ballot(std::int64_t count, sim::NodeId coord, int inc) const {
    return paxos::Ballot{count, coord, inc, type_of(count)};
  }
};

/// Proposer: sends its command to coordinators *and* acceptors (the fast
/// path) and retransmits until a decision is announced.
class Proposer final : public sim::Process {
 public:
  Proposer(const Config& config, Value value);

  std::string role() const override { return "proposer"; }
  void on_start() override;
  void on_message(sim::NodeId from, const std::any& msg) override;
  void on_timer(int token) override;

  bool decided() const { return decided_.has_value(); }
  const std::optional<Value>& decision() const { return decided_; }

  /// Delay before the first Propose is sent (lets tests measure the
  /// steady-state path with phase 1 already executed "a priori").
  sim::Time start_delay = 0;

 private:
  void broadcast_proposal();

  const Config& config_;
  Value value_;
  std::optional<Value> decided_;
};

class Coordinator final : public sim::Process {
 public:
  explicit Coordinator(const Config& config);

  std::string role() const override { return "coordinator"; }
  void on_start() override;
  void on_message(sim::NodeId from, const std::any& msg) override;
  void on_timer(int token) override;
  void on_recover() override;

  const paxos::Ballot& current_round() const { return crnd_; }

 private:
  static constexpr int kProgressToken = 1;

  bool is_leader() const;
  void maybe_lead();
  void new_round(std::int64_t count);
  void finish_phase1();
  void handle_2b(sim::NodeId from, const msg::P2b& p2b);
  void coordinated_recovery();

  const Config& config_;
  paxos::QuorumSystem quorums_;
  paxos::FailureDetector fd_;

  paxos::Ballot crnd_;
  bool phase1_done_ = false;
  bool sent2a_ = false;
  std::map<sim::NodeId, paxos::SingleVoteReport<Value>> promises_;
  std::deque<Value> proposals_;
  /// Round-i 2b votes observed (collision monitoring / coordinated
  /// recovery input).
  std::map<paxos::Ballot, std::map<sim::NodeId, Value>> votes_seen_;
  std::optional<Value> decided_value_;  ///< set once any learner announces
  sim::Time round_started_at_ = 0;
};

class Acceptor final : public sim::Process {
 public:
  explicit Acceptor(const Config& config);

  std::string role() const override { return "acceptor"; }
  void on_message(sim::NodeId from, const std::any& msg) override;
  void on_recover() override;

  const paxos::Ballot& rnd() const { return rnd_; }
  const paxos::Ballot& vrnd() const { return vrnd_; }
  const std::optional<Value>& vval() const { return vval_; }

 private:
  void accept(const paxos::Ballot& b, const Value& v);
  void try_fast_accept();
  void uncoordinated_recovery(const paxos::Ballot& collided);

  const Config& config_;
  paxos::QuorumSystem quorums_;
  paxos::Ballot rnd_;
  paxos::Ballot vrnd_;
  std::optional<Value> vval_;
  bool any_armed_ = false;  ///< current round is fast and its Any 2a arrived
  std::deque<Value> pending_;  ///< proposals in arrival order
  /// Peer 2b votes per round (only tracked under uncoordinated recovery).
  std::map<paxos::Ballot, std::map<sim::NodeId, Value>> peer_votes_;
};

class Learner final : public sim::Process {
 public:
  explicit Learner(const Config& config);

  std::string role() const override { return "learner"; }
  void on_message(sim::NodeId from, const std::any& msg) override;

  bool learned() const { return learned_.has_value(); }
  const std::optional<Value>& value() const { return learned_; }
  sim::Time learned_at() const { return learned_at_; }

 private:
  const Config& config_;
  paxos::QuorumSystem quorums_;
  std::map<paxos::Ballot, std::map<sim::NodeId, Value>> votes_;
  std::optional<Value> learned_;
  sim::Time learned_at_ = -1;
};

}  // namespace mcp::fast
