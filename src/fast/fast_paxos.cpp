#include "fast/fast_paxos.hpp"

#include <stdexcept>

#include "sim/simulation.hpp"

namespace mcp::fast {

using paxos::Ballot;

// ---------------------------------------------------------------------------
// Proposer

Proposer::Proposer(const Config& config, Value value)
    : config_(config), value_(std::move(value)) {
  msg::register_wire_messages(decoders());
}

void Proposer::on_start() {
  if (start_delay > 0) {
    set_timer(start_delay, 0);
  } else {
    broadcast_proposal();
  }
}

void Proposer::broadcast_proposal() {
  // The defining move of Fast Paxos: proposals go to coordinators *and*
  // acceptors so fast rounds can skip the coordinator hop.
  multicast(config_.coordinators, msg::Propose{value_});
  multicast(config_.acceptors, msg::Propose{value_});
  sim().metrics().incr("fast.proposals_sent");
  if (config_.enable_liveness && !decided_) set_timer(config_.retry_interval, 0);
}

void Proposer::on_timer(int) {
  if (!decided_) broadcast_proposal();
}

void Proposer::on_message(sim::NodeId, const std::any& m) {
  if (const auto* learned = std::any_cast<msg::Learned>(&m)) decided_ = learned->v;
}

// ---------------------------------------------------------------------------
// Coordinator

Coordinator::Coordinator(const Config& config)
    : config_(config),
      quorums_(config.quorum_system()),
      fd_(*this, config.coordinators, config.fd) {
  msg::register_wire_messages(decoders());
  if (!quorums_.meets_fast_requirement()) {
    throw std::invalid_argument("fast::Coordinator: n > 2E + F required (Assumption 2)");
  }
}

bool Coordinator::is_leader() const {
  if (!config_.enable_liveness) return id() == config_.coordinators.front();
  return fd_.leader() == id();
}

void Coordinator::on_start() {
  if (config_.enable_liveness) {
    fd_.start();
    set_timer(config_.progress_timeout, kProgressToken);
  }
  maybe_lead();
}

void Coordinator::on_recover() {
  crnd_ = Ballot::zero();
  phase1_done_ = false;
  sent2a_ = false;
  promises_.clear();
  proposals_.clear();
  votes_seen_.clear();
  on_start();
}

void Coordinator::maybe_lead() {
  if (decided_value_ || !is_leader()) return;
  if (crnd_.is_zero()) new_round(1);
}

void Coordinator::new_round(std::int64_t count) {
  if (count <= crnd_.count) count = crnd_.count + 1;
  crnd_ = config_.ballot(count, id(), incarnation());
  phase1_done_ = false;
  sent2a_ = false;
  promises_.clear();
  round_started_at_ = now();
  sim().metrics().incr("fast.rounds_started");
  multicast(config_.acceptors, msg::P1a{crnd_});
}

void Coordinator::finish_phase1() {
  phase1_done_ = true;
  std::vector<paxos::SingleVoteReport<Value>> reports;
  reports.reserve(promises_.size());
  for (const auto& [acc, report] : promises_) reports.push_back(report);
  const auto forced = paxos::pick_single_value(quorums_, reports);
  if (forced) {
    sent2a_ = true;
    multicast(config_.acceptors, msg::P2a{crnd_, *forced});
  } else if (crnd_.is_fast()) {
    // Free to pick: delegate the choice to the proposers (value Any).
    sent2a_ = true;
    sim().metrics().incr("fast.any_sent");
    multicast(config_.acceptors, msg::P2a{crnd_, std::nullopt});
  } else if (!proposals_.empty()) {
    sent2a_ = true;
    multicast(config_.acceptors, msg::P2a{crnd_, proposals_.front()});
  }
  // Classic round with no proposal yet: the 2a goes out on first Propose.
}

void Coordinator::on_message(sim::NodeId from, const std::any& m) {
  if (fd_.handle_message(from, m)) {
    maybe_lead();
    return;
  }
  if (const auto* p = std::any_cast<msg::Propose>(&m)) {
    proposals_.push_back(p->v);
    if (phase1_done_ && !sent2a_ && crnd_.is_classic()) {
      sent2a_ = true;
      multicast(config_.acceptors, msg::P2a{crnd_, proposals_.front()});
    }
    return;
  }
  if (const auto* p1b = std::any_cast<msg::P1b>(&m)) {
    if (p1b->b != crnd_ || phase1_done_) return;
    promises_[from] = paxos::SingleVoteReport<Value>{from, p1b->vrnd, p1b->vval};
    if (promises_.size() >= quorums_.quorum_size(crnd_)) finish_phase1();
    return;
  }
  if (const auto* p2b = std::any_cast<msg::P2b>(&m)) {
    handle_2b(from, *p2b);
    return;
  }
  if (const auto* nack = std::any_cast<msg::Nack>(&m)) {
    if (nack->heard.count > crnd_.count && is_leader() && !decided_value_) {
      new_round(nack->heard.count + 1);
    }
    return;
  }
  if (const auto* learned = std::any_cast<msg::Learned>(&m)) {
    decided_value_ = learned->v;
    return;
  }
}

void Coordinator::handle_2b(sim::NodeId from, const msg::P2b& p2b) {
  // Collision monitoring (§2.2): the coordinator watches 2b traffic of its
  // fast round; two distinct values mean the round may be stuck.
  auto& votes = votes_seen_[p2b.b];
  votes[from] = p2b.v;
  if (decided_value_ || p2b.b != crnd_ || !crnd_.is_fast()) return;
  bool collision = false;
  for (const auto& [acc, v] : votes) {
    if (!(v == p2b.v)) {
      collision = true;
      break;
    }
  }
  if (!collision) return;
  sim().metrics().incr("fast.collisions_detected");
  switch (config_.recovery) {
    case RecoveryMode::kRestart:
      // Start the next round from scratch (phase 1 and all): 4 extra steps.
      new_round(crnd_.count + 1);
      break;
    case RecoveryMode::kCoordinated:
      coordinated_recovery();
      break;
    case RecoveryMode::kUncoordinated:
      break;  // acceptors resolve it among themselves
  }
}

void Coordinator::coordinated_recovery() {
  // Interpret round-i 2b messages as round-(i+1) 1b messages (§2.2). We
  // need them from a classic quorum of the *next* round; i+1 is classic
  // under the coordinated ladder, so quorum size is n − F.
  const auto& votes = votes_seen_[crnd_];
  if (votes.size() < quorums_.classic_quorum_size()) return;  // wait for more 2b
  std::vector<paxos::SingleVoteReport<Value>> reports;
  reports.reserve(votes.size());
  for (const auto& [acc, v] : votes) {
    reports.push_back(paxos::SingleVoteReport<Value>{acc, crnd_, v});
  }
  const auto forced = paxos::pick_single_value(quorums_, reports);
  const Ballot next = config_.ballot(crnd_.count + 1, id(), incarnation());
  crnd_ = next;
  phase1_done_ = true;
  sent2a_ = true;
  round_started_at_ = now();
  promises_.clear();
  sim().metrics().incr("fast.coordinated_recoveries");
  Value v = forced              ? *forced
            : proposals_.empty() ? votes.begin()->second
                                 : proposals_.front();
  multicast(config_.acceptors, msg::P2a{crnd_, v});
}

void Coordinator::on_timer(int token) {
  if (fd_.handle_timer(token)) return;
  if (token == kProgressToken) {
    if (decided_value_) {
      multicast(config_.learners, msg::Learned{*decided_value_});
      multicast(config_.proposers, msg::Learned{*decided_value_});
    } else if (is_leader()) {
      const bool started = !crnd_.is_zero() && crnd_.coord == id();
      if (!started || now() - round_started_at_ >= config_.progress_timeout) {
        new_round(crnd_.count + 1);
      }
    }
    set_timer(config_.progress_timeout, kProgressToken);
  }
}

// ---------------------------------------------------------------------------
// Acceptor

Acceptor::Acceptor(const Config& config)
    : config_(config), quorums_(config.quorum_system()) {
  storage().set_write_latency(config.disk_latency);
  msg::register_wire_messages(decoders());
}

void Acceptor::on_recover() {
  if (auto s = storage().read("rnd")) rnd_ = paxos::decode_ballot(*s);
  if (auto s = storage().read("vrnd")) vrnd_ = paxos::decode_ballot(*s);
  if (auto s = storage().read("vval"); s && !s->empty()) {
    vval_ = cstruct::decode_command(*s);
  }
  any_armed_ = false;
  pending_.clear();
  peer_votes_.clear();
}

void Acceptor::accept(const Ballot& b, const Value& v) {
  rnd_ = b;
  vrnd_ = b;
  vval_ = v;
  storage().write("rnd", paxos::encode(rnd_));
  storage().write("vrnd", paxos::encode(vrnd_));
  const sim::Time lat = storage().write("vval", cstruct::encode(v));
  sim().metrics().incr("acceptor." + std::to_string(id()) + ".disk_writes");
  const msg::P2b vote{b, v};
  multicast_after_sync(config_.learners, vote, lat);
  multicast_after_sync(config_.coordinators, vote, lat);
  if (config_.recovery == RecoveryMode::kUncoordinated) {
    // Peers need the 2b traffic to run the recovery locally.
    multicast_after_sync(config_.acceptors, vote, lat);
  }
}

void Acceptor::try_fast_accept() {
  if (!any_armed_ || !rnd_.is_fast() || vrnd_ == rnd_ || pending_.empty()) return;
  // One value per round: take the first proposal that reached us.
  accept(rnd_, pending_.front());
}

void Acceptor::on_message(sim::NodeId from, const std::any& m) {
  if (const auto* p = std::any_cast<msg::Propose>(&m)) {
    const bool known = std::any_of(pending_.begin(), pending_.end(),
                                   [&](const Value& v) { return v == p->v; });
    if (!known) pending_.push_back(p->v);
    try_fast_accept();
    return;
  }
  if (const auto* p1a = std::any_cast<msg::P1a>(&m)) {
    if (p1a->b > rnd_) {
      rnd_ = p1a->b;
      any_armed_ = false;
      const sim::Time lat = storage().write("rnd", paxos::encode(rnd_));
      sim().metrics().incr("acceptor." + std::to_string(id()) + ".disk_writes");
      send_after_sync(from, msg::P1b{rnd_, vrnd_, vval_}, lat);
    } else if (p1a->b == rnd_) {
      send(from, msg::P1b{rnd_, vrnd_, vval_});
    } else {
      send(from, msg::Nack{rnd_});
    }
    return;
  }
  if (const auto* p2a = std::any_cast<msg::P2a>(&m)) {
    if (p2a->b < rnd_) {
      send(from, msg::Nack{rnd_});
      return;
    }
    if (p2a->v.has_value()) {
      if (p2a->b > vrnd_) accept(p2a->b, *p2a->v);
    } else {
      // Any value: accept the first proposal to arrive (now or later).
      rnd_ = p2a->b;
      any_armed_ = true;
      try_fast_accept();
    }
    return;
  }
  if (const auto* p2b = std::any_cast<msg::P2b>(&m)) {
    if (config_.recovery != RecoveryMode::kUncoordinated) return;
    auto& votes = peer_votes_[p2b->b];
    votes[from] = p2b->v;
    if (vrnd_ == p2b->b && vval_) votes[id()] = *vval_;  // count our own vote
    uncoordinated_recovery(p2b->b);
    return;
  }
}

void Acceptor::uncoordinated_recovery(const Ballot& collided) {
  if (!collided.is_fast() || collided != rnd_) return;
  const auto& votes = peer_votes_[collided];
  // Only act on an actual collision, once round-i 2b messages from an
  // i-quorum are available to stand in for round-(i+1) 1b messages.
  bool collision = false;
  for (const auto& [a1, v1] : votes) {
    for (const auto& [a2, v2] : votes) {
      if (!(v1 == v2)) collision = true;
    }
  }
  if (!collision || votes.size() < quorums_.quorum_size(collided)) return;

  std::vector<paxos::SingleVoteReport<Value>> reports;
  reports.reserve(votes.size());
  for (const auto& [acc, v] : votes) {
    reports.push_back(paxos::SingleVoteReport<Value>{acc, collided, v});
  }
  const auto forced = paxos::pick_single_value(quorums_, reports);
  const Ballot next = config_.ballot(collided.count + 1, collided.coord, collided.coord_inc);
  if (!next.is_fast()) return;  // uncoordinated recovery needs a fast successor
  sim().metrics().incr("fast.uncoordinated_recoveries");
  Value v;
  if (forced) {
    v = *forced;
  } else if (!pending_.empty()) {
    // §2.2: acceptors should apply a strategy that makes them likely to
    // pick the same value. When nothing is forced, any *proposed* value is
    // pickable; proposers broadcast to every acceptor, so the pending
    // proposal set is (almost always) identical everywhere — the smallest
    // command id in it is a convergent deterministic choice.
    v = pending_.front();
    for (const Value& cand : pending_) {
      if (cand.id < v.id) v = cand;
    }
  } else {
    v = votes.begin()->second;
  }
  accept(next, v);
}

// ---------------------------------------------------------------------------
// Learner

Learner::Learner(const Config& config)
    : config_(config), quorums_(config.quorum_system()) {
  msg::register_wire_messages(decoders());
}

void Learner::on_message(sim::NodeId from, const std::any& m) {
  if (const auto* announced = std::any_cast<msg::Learned>(&m)) {
    if (!learned_) {
      learned_ = announced->v;
      learned_at_ = now();
    } else if (!(*learned_ == announced->v)) {
      throw std::logic_error("fast: conflicting decisions (consistency violated)");
    }
    return;
  }
  const auto* p2b = std::any_cast<msg::P2b>(&m);
  if (p2b == nullptr) return;
  auto& votes = votes_[p2b->b];
  votes[from] = p2b->v;
  // Learned iff an i-quorum voted the *same* value in round i (fast rounds
  // may legitimately contain several values; that is not an error here).
  std::size_t agreeing = 0;
  for (const auto& [acc, v] : votes) {
    if (v == p2b->v) ++agreeing;
  }
  if (agreeing < quorums_.quorum_size(p2b->b)) return;
  if (learned_) {
    if (!(*learned_ == p2b->v)) {
      throw std::logic_error("fast: conflicting decisions (consistency violated)");
    }
    return;
  }
  learned_ = p2b->v;
  learned_at_ = now();
  sim().metrics().incr("fast.decisions");
  multicast(config_.proposers, msg::Learned{*learned_});
  multicast(config_.coordinators, msg::Learned{*learned_});
}

}  // namespace mcp::fast
