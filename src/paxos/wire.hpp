#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cstruct/cset.hpp"
#include "cstruct/history.hpp"
#include "cstruct/single_value.hpp"
#include "paxos/ballot.hpp"

namespace mcp::wire {

/// Binary wire format for the protocol messages: little-endian varints,
/// length-prefixed bytes. Every message the simulator carries is encoded
/// through this codec into a typed Envelope at the Process::send boundary
/// (unless NetworkConfig::encode_messages is off), so the codec is (a) the
/// stable-storage format's binary sibling, (b) the source of the
/// bytes-on-the-wire metrics, and (c) the starting point for a real
/// network transport.
class Writer {
 public:
  void put_varint(std::uint64_t value) {
    while (value >= 0x80) {
      buf_.push_back(static_cast<char>((value & 0x7F) | 0x80));
      value >>= 7;
    }
    buf_.push_back(static_cast<char>(value));
  }

  /// ZigZag-encoded signed integer.
  void put_signed(std::int64_t value) {
    put_varint((static_cast<std::uint64_t>(value) << 1) ^
               static_cast<std::uint64_t>(value >> 63));
  }

  void put_u8(std::uint8_t value) { buf_.push_back(static_cast<char>(value)); }

  void put_bytes(std::string_view bytes) {
    put_varint(bytes.size());
    buf_.append(bytes);
  }

  const std::string& data() const { return buf_; }
  std::string take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::uint64_t get_varint() {
    std::uint64_t value = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= data_.size()) throw std::invalid_argument("wire: truncated varint");
      const auto byte = static_cast<std::uint8_t>(data_[pos_++]);
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
      if (shift >= 64) throw std::invalid_argument("wire: varint overflow");
    }
    return value;
  }

  std::int64_t get_signed() {
    const std::uint64_t z = get_varint();
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  std::uint8_t get_u8() {
    if (pos_ >= data_.size()) throw std::invalid_argument("wire: truncated byte");
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::string_view get_bytes() {
    const std::uint64_t len = get_varint();
    // Compare against the remaining length: `pos_ + len` can wrap for
    // adversarial varint lengths close to 2^64.
    if (len > data_.size() - pos_) throw std::invalid_argument("wire: truncated bytes");
    std::string_view out = data_.substr(pos_, len);
    pos_ += static_cast<std::size_t>(len);
    return out;
  }

  bool at_end() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

// --- typed envelopes ---------------------------------------------------------

/// A message on the simulated wire: a consensus-group id, a numeric
/// message-type tag, and the length-prefixed encoded body. What
/// Process::send hands to the network when message encoding is on; a real
/// transport ships exactly these bytes.
///
/// Group-id encoding: the leading varint packs `(group << 8) | tag`. Every
/// message tag fits one byte (kMaxTag pins this), so group 0 — the only
/// group a single-group cluster ever uses — is byte-identical to the
/// pre-sharding format and old clients interoperate unchanged.
struct Envelope {
  std::uint32_t tag = 0;
  std::uint32_t group = 0;
  std::string body;

  /// Highest representable message tag: tags share the leading varint with
  /// the group id, taking its low 8 bits.
  static constexpr std::uint32_t kMaxTag = 0xFF;

  /// Serialized form: varint (group<<8)|tag, then length-prefixed body.
  std::string encode() const;
  /// Append the encoding to `out` without allocating a fresh buffer —
  /// the hot path for shipping: callers keep one scratch string per loop
  /// and reuse its capacity across messages. Byte-for-byte identical to
  /// encode() (the E11 cross-host byte check pins this).
  void encode_into(std::string& out) const;
  /// Inverse of encode(); throws std::invalid_argument on truncated or
  /// trailing bytes.
  static Envelope decode(std::string_view data);

  /// Bytes this envelope occupies on the wire (== encode().size(), without
  /// materializing the string).
  std::size_t wire_size() const;
};

/// A self-encoding message: carries its own tag, display name, and
/// encoder. Decoders are registered per process (they may need a c-struct
/// prototype), so decode is not part of the concept.
template <typename M>
concept SelfEncoding = requires(const M& m, Writer& w) {
  { M::kTag } -> std::convertible_to<std::uint32_t>;
  { M::kName } -> std::convertible_to<std::string_view>;
  m.encode(w);
};

/// Human-readable name for a message-type tag ("gen.2a", ...), used by the
/// per-message-type byte counters. Unknown tags map to "unknown".
const std::string& message_name(std::uint32_t tag);
/// Record the tag → name mapping; throws std::logic_error if the tag is
/// already bound to a different name (a tag collision between messages).
void register_message_name(std::uint32_t tag, std::string_view name);

/// Serialize a message into its envelope, addressed to a consensus group
/// (0 = the sole group of an unsharded cluster). Does NOT touch the name
/// table — names are registered once per process via DecoderRegistry::add,
/// not on the per-send hot path.
template <SelfEncoding M>
Envelope make_envelope(const M& msg, std::uint32_t group = 0) {
  static_assert(M::kTag <= Envelope::kMaxTag,
                "wire: message tags must fit the low byte of the envelope "
                "group/tag varint");
  Writer w;
  msg.encode(w);
  return Envelope{M::kTag, group, w.take()};
}

/// Tag → decoder table of one process. Each protocol role registers the
/// decoders for its full message set at construction; Simulation::deliver
/// uses the destination's registry to turn an Envelope back into the typed
/// message its on_message handler expects.
class DecoderRegistry {
 public:
  using DecodeFn = std::function<std::any(Reader&)>;

  /// Register a decoder under a message's tag (also records its name).
  /// Re-registering the same tag overwrites, so a process owning several
  /// components (e.g. a failure detector) can share message types.
  void add(std::uint32_t tag, std::string_view name, DecodeFn fn) {
    register_message_name(tag, name);
    decoders_[tag] = std::move(fn);
  }

  /// Convenience for messages with `static M decode(Reader&)`.
  template <typename M>
  void add() {
    add(M::kTag, M::kName, [](Reader& r) { return std::any(M::decode(r)); });
  }

  /// Like add(), additionally marking the tag as accepted from *client*
  /// connections. Live hosts drop every other tag arriving on a client
  /// connection before dispatch: client connections carry synthetic
  /// sender ids, so letting them inject protocol messages (1b/2b/2a...)
  /// would fabricate quorum members at whatever role the node runs.
  template <typename M>
  void add_client() {
    add<M>();
    client_tags_.insert(M::kTag);
  }

  /// Whether a tag may arrive on a client connection.
  bool allowed_from_clients(std::uint32_t tag) const {
    return client_tags_.count(tag) != 0;
  }

  /// Convenience for messages with `static M decode(Reader&, const Proto&)`
  /// (c-struct payloads need the ⊥ prototype).
  template <typename M, typename Proto>
  void add(Proto prototype) {
    add(M::kTag, M::kName, [prototype = std::move(prototype)](Reader& r) {
      return std::any(M::decode(r, prototype));
    });
  }

  bool knows(std::uint32_t tag) const { return decoders_.count(tag) != 0; }

  /// Decode an envelope body into the registered message type. Throws
  /// std::invalid_argument on malformed bodies (including trailing bytes)
  /// and std::logic_error if the tag has no registered decoder.
  std::any decode(const Envelope& env) const;

 private:
  std::map<std::uint32_t, DecodeFn> decoders_;
  std::set<std::uint32_t> client_tags_;
};

// --- protocol data types -----------------------------------------------------

void put_ballot(Writer& w, const paxos::Ballot& b);
paxos::Ballot get_ballot(Reader& r);

void put_command(Writer& w, const cstruct::Command& c);
cstruct::Command get_command(Reader& r);

void put_commands(Writer& w, const std::vector<cstruct::Command>& cmds);
std::vector<cstruct::Command> get_commands(Reader& r);

// C-struct payloads (decode needs the prototype, as in cstruct/serialize.hpp).
void put_cstruct(Writer& w, const cstruct::SingleValue& v);
void put_cstruct(Writer& w, const cstruct::CSet& v);
void put_cstruct(Writer& w, const cstruct::History& v);
cstruct::SingleValue get_cstruct(Reader& r, const cstruct::SingleValue& prototype);
cstruct::CSet get_cstruct(Reader& r, const cstruct::CSet& prototype);
cstruct::History get_cstruct(Reader& r, const cstruct::History& prototype);

/// Validated presence / boolean flag: any byte other than 0/1 is rejected
/// so garbage input throws instead of silently decoding.
void put_flag(Writer& w, bool flag);
bool get_flag(Reader& r);

/// Validate a decoded element count against the bytes actually left: every
/// element costs at least one byte, so a count above `remaining()` is
/// malformed. Rejecting it up front keeps adversarial counts from driving
/// a huge vector reserve before the per-element reads would fail.
inline std::uint64_t check_count(const Reader& r, std::uint64_t n) {
  if (n > r.remaining()) throw std::invalid_argument("wire: element count exceeds input");
  return n;
}

void put_opt_command(Writer& w, const std::optional<cstruct::Command>& c);
std::optional<cstruct::Command> get_opt_command(Reader& r);

/// A c-struct delta on the wire: the size of the base value the suffix
/// extends (so the receiver can detect that its cached base is stale) plus
/// the command suffix itself. Used by the delta-encoded 2a/2b variants of
/// the generalized engine.
struct Delta {
  std::uint64_t base_size = 0;
  std::vector<cstruct::Command> suffix;
};
void put_delta(Writer& w, const Delta& d);
Delta get_delta(Reader& r);

void put_node_ids(Writer& w, const std::vector<sim::NodeId>& ids);
std::vector<sim::NodeId> get_node_ids(Reader& r);

/// Dense per-c-struct discriminator used to derive distinct wire tags for
/// the c-struct-templated generalized-engine messages.
template <typename CS>
struct CStructKind;
template <>
struct CStructKind<cstruct::SingleValue> {
  static constexpr std::uint32_t kKind = 0;
};
template <>
struct CStructKind<cstruct::CSet> {
  static constexpr std::uint32_t kKind = 1;
};
template <>
struct CStructKind<cstruct::History> {
  static constexpr std::uint32_t kKind = 2;
};

/// Encoded size of a value, for bandwidth accounting.
template <typename T>
std::size_t wire_size(const T& value) {
  Writer w;
  if constexpr (std::is_same_v<T, paxos::Ballot>) {
    put_ballot(w, value);
  } else if constexpr (std::is_same_v<T, cstruct::Command>) {
    put_command(w, value);
  } else {
    put_cstruct(w, value);
  }
  return w.size();
}

}  // namespace mcp::wire
