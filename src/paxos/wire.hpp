#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "cstruct/cset.hpp"
#include "cstruct/history.hpp"
#include "cstruct/single_value.hpp"
#include "paxos/ballot.hpp"

namespace mcp::wire {

/// Binary wire format for the protocol messages: little-endian varints,
/// length-prefixed bytes. The simulator passes messages in-memory, so the
/// codec's role in this repository is (a) the stable-storage format's
/// binary sibling, (b) message-size accounting for bandwidth analysis, and
/// (c) the starting point for a real network transport.
class Writer {
 public:
  void put_varint(std::uint64_t value) {
    while (value >= 0x80) {
      buf_.push_back(static_cast<char>((value & 0x7F) | 0x80));
      value >>= 7;
    }
    buf_.push_back(static_cast<char>(value));
  }

  /// ZigZag-encoded signed integer.
  void put_signed(std::int64_t value) {
    put_varint((static_cast<std::uint64_t>(value) << 1) ^
               static_cast<std::uint64_t>(value >> 63));
  }

  void put_u8(std::uint8_t value) { buf_.push_back(static_cast<char>(value)); }

  void put_bytes(std::string_view bytes) {
    put_varint(bytes.size());
    buf_.append(bytes);
  }

  const std::string& data() const { return buf_; }
  std::string take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::uint64_t get_varint() {
    std::uint64_t value = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= data_.size()) throw std::invalid_argument("wire: truncated varint");
      const auto byte = static_cast<std::uint8_t>(data_[pos_++]);
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
      if (shift >= 64) throw std::invalid_argument("wire: varint overflow");
    }
    return value;
  }

  std::int64_t get_signed() {
    const std::uint64_t z = get_varint();
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  std::uint8_t get_u8() {
    if (pos_ >= data_.size()) throw std::invalid_argument("wire: truncated byte");
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::string_view get_bytes() {
    const std::uint64_t len = get_varint();
    if (pos_ + len > data_.size()) throw std::invalid_argument("wire: truncated bytes");
    std::string_view out = data_.substr(pos_, len);
    pos_ += len;
    return out;
  }

  bool at_end() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

// --- protocol data types -----------------------------------------------------

void put_ballot(Writer& w, const paxos::Ballot& b);
paxos::Ballot get_ballot(Reader& r);

void put_command(Writer& w, const cstruct::Command& c);
cstruct::Command get_command(Reader& r);

void put_commands(Writer& w, const std::vector<cstruct::Command>& cmds);
std::vector<cstruct::Command> get_commands(Reader& r);

// C-struct payloads (decode needs the prototype, as in cstruct/serialize.hpp).
void put_cstruct(Writer& w, const cstruct::SingleValue& v);
void put_cstruct(Writer& w, const cstruct::CSet& v);
void put_cstruct(Writer& w, const cstruct::History& v);
cstruct::SingleValue get_cstruct(Reader& r, const cstruct::SingleValue& prototype);
cstruct::CSet get_cstruct(Reader& r, const cstruct::CSet& prototype);
cstruct::History get_cstruct(Reader& r, const cstruct::History& prototype);

/// Encoded size of a value, for bandwidth accounting.
template <typename T>
std::size_t wire_size(const T& value) {
  Writer w;
  if constexpr (std::is_same_v<T, paxos::Ballot>) {
    put_ballot(w, value);
  } else if constexpr (std::is_same_v<T, cstruct::Command>) {
    put_command(w, value);
  } else {
    put_cstruct(w, value);
  }
  return w.size();
}

}  // namespace mcp::wire
