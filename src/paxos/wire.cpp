#include "paxos/wire.hpp"

#include <limits>

namespace mcp::wire {

namespace {

std::size_t varint_size(std::uint64_t value) {
  std::size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

std::map<std::uint32_t, std::string>& name_table() {
  static std::map<std::uint32_t, std::string> table;
  return table;
}

}  // namespace

std::string Envelope::encode() const {
  std::string out;
  encode_into(out);
  return out;
}

void Envelope::encode_into(std::string& out) const {
  if (tag > kMaxTag) {
    // Tags share the leading varint with the group id (low byte = tag), so
    // a tag above 0xFF would alias some (group, tag) pair on decode.
    throw std::logic_error("wire: envelope tag exceeds kMaxTag");
  }
  out.reserve(out.size() + wire_size());
  std::uint64_t value = (static_cast<std::uint64_t>(group) << 8) | tag;
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
  value = body.size();
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
  out.append(body);
}

Envelope Envelope::decode(std::string_view data) {
  Reader r(data);
  Envelope env;
  // Leading varint packs (group << 8) | tag; group 0 frames are identical
  // to the pre-sharding single-varint-tag format.
  const std::uint64_t packed = r.get_varint();
  const std::uint64_t group = packed >> 8;
  if (group > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("wire: envelope group out of range");
  }
  env.tag = static_cast<std::uint32_t>(packed & kMaxTag);
  env.group = static_cast<std::uint32_t>(group);
  env.body = std::string(r.get_bytes());
  if (!r.at_end()) throw std::invalid_argument("wire: trailing bytes after envelope");
  return env;
}

std::size_t Envelope::wire_size() const {
  return varint_size((static_cast<std::uint64_t>(group) << 8) | tag) +
         varint_size(body.size()) + body.size();
}

const std::string& message_name(std::uint32_t tag) {
  static const std::string kUnknown = "unknown";
  const auto& table = name_table();
  auto it = table.find(tag);
  return it == table.end() ? kUnknown : it->second;
}

void register_message_name(std::uint32_t tag, std::string_view name) {
  auto [it, inserted] = name_table().emplace(tag, name);
  if (!inserted && it->second != name) {
    throw std::logic_error("wire: tag " + std::to_string(tag) + " bound to both '" +
                           it->second + "' and '" + std::string(name) + "'");
  }
}

std::any DecoderRegistry::decode(const Envelope& env) const {
  auto it = decoders_.find(env.tag);
  if (it == decoders_.end()) {
    throw std::logic_error("wire: no decoder registered for message '" +
                           message_name(env.tag) + "' (tag " + std::to_string(env.tag) +
                           ")");
  }
  Reader r(env.body);
  std::any decoded = it->second(r);
  if (!r.at_end()) {
    throw std::invalid_argument("wire: trailing bytes in '" + message_name(env.tag) +
                                "' body");
  }
  return decoded;
}

void put_flag(Writer& w, bool flag) { w.put_u8(flag ? 1 : 0); }

bool get_flag(Reader& r) {
  const std::uint8_t byte = r.get_u8();
  if (byte > 1) throw std::invalid_argument("wire: bad presence flag");
  return byte == 1;
}

void put_opt_command(Writer& w, const std::optional<cstruct::Command>& c) {
  put_flag(w, c.has_value());
  if (c) put_command(w, *c);
}

std::optional<cstruct::Command> get_opt_command(Reader& r) {
  if (!get_flag(r)) return std::nullopt;
  return get_command(r);
}

void put_node_ids(Writer& w, const std::vector<sim::NodeId>& ids) {
  w.put_varint(ids.size());
  for (sim::NodeId id : ids) w.put_signed(id);
}

std::vector<sim::NodeId> get_node_ids(Reader& r) {
  const std::uint64_t n = check_count(r, r.get_varint());
  std::vector<sim::NodeId> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::int64_t id = r.get_signed();
    if (id < std::numeric_limits<sim::NodeId>::min() ||
        id > std::numeric_limits<sim::NodeId>::max()) {
      throw std::invalid_argument("wire: node id out of range");
    }
    out.push_back(static_cast<sim::NodeId>(id));
  }
  return out;
}

void put_ballot(Writer& w, const paxos::Ballot& b) {
  w.put_signed(b.count);
  w.put_signed(b.coord);
  w.put_signed(b.coord_inc);
  w.put_u8(static_cast<std::uint8_t>(b.type));
}

paxos::Ballot get_ballot(Reader& r) {
  paxos::Ballot b;
  b.count = r.get_signed();
  b.coord = static_cast<sim::NodeId>(r.get_signed());
  b.coord_inc = static_cast<int>(r.get_signed());
  b.type = static_cast<paxos::RoundType>(r.get_u8());
  if (b.type != paxos::RoundType::kSingleCoord && b.type != paxos::RoundType::kMultiCoord &&
      b.type != paxos::RoundType::kFast) {
    throw std::invalid_argument("wire: bad round type");
  }
  return b;
}

void put_command(Writer& w, const cstruct::Command& c) {
  w.put_varint(c.id);
  w.put_signed(c.proposer);
  w.put_u8(c.type == cstruct::OpType::kRead ? 0 : 1);
  w.put_bytes(c.key);
  w.put_bytes(c.value);
}

cstruct::Command get_command(Reader& r) {
  cstruct::Command c;
  c.id = r.get_varint();
  c.proposer = static_cast<int>(r.get_signed());
  c.type = r.get_u8() == 0 ? cstruct::OpType::kRead : cstruct::OpType::kWrite;
  c.key = std::string(r.get_bytes());
  c.value = std::string(r.get_bytes());
  return c;
}

void put_commands(Writer& w, const std::vector<cstruct::Command>& cmds) {
  w.put_varint(cmds.size());
  for (const auto& c : cmds) put_command(w, c);
}

std::vector<cstruct::Command> get_commands(Reader& r) {
  const std::uint64_t n = check_count(r, r.get_varint());
  std::vector<cstruct::Command> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(get_command(r));
  return out;
}

void put_delta(Writer& w, const Delta& d) {
  w.put_varint(d.base_size);
  put_commands(w, d.suffix);
}

Delta get_delta(Reader& r) {
  Delta d;
  d.base_size = r.get_varint();
  d.suffix = get_commands(r);
  return d;
}

void put_cstruct(Writer& w, const cstruct::SingleValue& v) {
  put_flag(w, !v.is_bottom());
  if (!v.is_bottom()) put_command(w, *v.value());
}

void put_cstruct(Writer& w, const cstruct::CSet& v) { put_commands(w, v.commands()); }

void put_cstruct(Writer& w, const cstruct::History& v) { put_commands(w, v.sequence()); }

cstruct::SingleValue get_cstruct(Reader& r, const cstruct::SingleValue&) {
  if (!get_flag(r)) return cstruct::SingleValue{};
  return cstruct::SingleValue{get_command(r)};
}

cstruct::CSet get_cstruct(Reader& r, const cstruct::CSet&) {
  cstruct::CSet out;
  for (const auto& c : get_commands(r)) out.append(c);
  return out;
}

cstruct::History get_cstruct(Reader& r, const cstruct::History& prototype) {
  return cstruct::History::from_sequence(prototype.relation(), get_commands(r));
}

}  // namespace mcp::wire
