#include "paxos/wire.hpp"

namespace mcp::wire {

void put_ballot(Writer& w, const paxos::Ballot& b) {
  w.put_signed(b.count);
  w.put_signed(b.coord);
  w.put_signed(b.coord_inc);
  w.put_u8(static_cast<std::uint8_t>(b.type));
}

paxos::Ballot get_ballot(Reader& r) {
  paxos::Ballot b;
  b.count = r.get_signed();
  b.coord = static_cast<sim::NodeId>(r.get_signed());
  b.coord_inc = static_cast<int>(r.get_signed());
  b.type = static_cast<paxos::RoundType>(r.get_u8());
  if (b.type != paxos::RoundType::kSingleCoord && b.type != paxos::RoundType::kMultiCoord &&
      b.type != paxos::RoundType::kFast) {
    throw std::invalid_argument("wire: bad round type");
  }
  return b;
}

void put_command(Writer& w, const cstruct::Command& c) {
  w.put_varint(c.id);
  w.put_signed(c.proposer);
  w.put_u8(c.type == cstruct::OpType::kRead ? 0 : 1);
  w.put_bytes(c.key);
  w.put_bytes(c.value);
}

cstruct::Command get_command(Reader& r) {
  cstruct::Command c;
  c.id = r.get_varint();
  c.proposer = static_cast<int>(r.get_signed());
  c.type = r.get_u8() == 0 ? cstruct::OpType::kRead : cstruct::OpType::kWrite;
  c.key = std::string(r.get_bytes());
  c.value = std::string(r.get_bytes());
  return c;
}

void put_commands(Writer& w, const std::vector<cstruct::Command>& cmds) {
  w.put_varint(cmds.size());
  for (const auto& c : cmds) put_command(w, c);
}

std::vector<cstruct::Command> get_commands(Reader& r) {
  const std::uint64_t n = r.get_varint();
  std::vector<cstruct::Command> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(get_command(r));
  return out;
}

void put_cstruct(Writer& w, const cstruct::SingleValue& v) {
  w.put_u8(v.is_bottom() ? 0 : 1);
  if (!v.is_bottom()) put_command(w, *v.value());
}

void put_cstruct(Writer& w, const cstruct::CSet& v) { put_commands(w, v.commands()); }

void put_cstruct(Writer& w, const cstruct::History& v) { put_commands(w, v.sequence()); }

cstruct::SingleValue get_cstruct(Reader& r, const cstruct::SingleValue&) {
  if (r.get_u8() == 0) return cstruct::SingleValue{};
  return cstruct::SingleValue{get_command(r)};
}

cstruct::CSet get_cstruct(Reader& r, const cstruct::CSet&) {
  cstruct::CSet out;
  for (const auto& c : get_commands(r)) out.append(c);
  return out;
}

cstruct::History get_cstruct(Reader& r, const cstruct::History& prototype) {
  return cstruct::History::from_sequence(prototype.relation(), get_commands(r));
}

}  // namespace mcp::wire
