#pragma once

#include <cstddef>
#include <vector>

#include "paxos/ballot.hpp"
#include "sim/time.hpp"

namespace mcp::paxos {

/// Size-based acceptor quorum system (§3.3): with n acceptors, any set of
/// n−F acceptors is a classic quorum and any set of n−E acceptors is a fast
/// quorum. Assumption 1 (classic intersection) requires n > 2F; Assumption 2
/// (fast intersection) additionally requires n > 2E + F.
class QuorumSystem {
 public:
  QuorumSystem(std::vector<sim::NodeId> acceptors, int f, int e);

  /// Majority classic quorums (F = ⌊(n−1)/2⌋) with the largest fast-failure
  /// tolerance E allowed by n > 2E + F.
  static QuorumSystem with_max_tolerance(std::vector<sim::NodeId> acceptors);

  const std::vector<sim::NodeId>& acceptors() const { return acceptors_; }
  std::size_t n() const { return acceptors_.size(); }
  int f() const { return f_; }
  int e() const { return e_; }

  std::size_t classic_quorum_size() const { return acceptors_.size() - static_cast<std::size_t>(f_); }
  std::size_t fast_quorum_size() const { return acceptors_.size() - static_cast<std::size_t>(e_); }
  std::size_t quorum_size(bool fast_round) const {
    return fast_round ? fast_quorum_size() : classic_quorum_size();
  }
  std::size_t quorum_size(const Ballot& b) const { return quorum_size(b.is_fast()); }

  /// Assumption 1: any two quorums (classic or fast) intersect.
  bool meets_classic_requirement() const;
  /// Assumption 2: a quorum intersects the intersection of any two fast
  /// quorums (n > 2E + F, together with the classic requirement).
  bool meets_fast_requirement() const;

  /// Minimum realizable size of Q ∩ R where Q is a phase-1 quorum of size
  /// `q_size` and R is a quorum of a round whose type is `k_fast` — the
  /// cardinality the value-picking rule of §3.3.2 / Definition 1 enumerates.
  /// (For k classic with |Q| = n−F this is the paper's n−2F.)
  std::size_t proved_safe_threshold(std::size_t q_size, bool k_fast) const;

 private:
  std::vector<sim::NodeId> acceptors_;
  int f_;
  int e_;
};

/// All subsets of `items` of exactly `k` elements, in lexicographic index
/// order. Used to enumerate the quorum intersections of Definition 1;
/// intended for the small n of simulations (guarded against blow-up).
std::vector<std::vector<std::size_t>> combinations(std::size_t n, std::size_t k);

}  // namespace mcp::paxos
