#pragma once

#include <compare>
#include <cstdint>
#include <ostream>
#include <string>

#include "sim/time.hpp"

namespace mcp::paxos {

/// Kind of a round (§3.1, §4.5). Single- and multi-coordinated rounds are
/// both *classic* in the paper's terminology; fast rounds let proposers
/// reach acceptors directly.
enum class RoundType : std::uint8_t { kSingleCoord = 0, kMultiCoord = 1, kFast = 2 };

inline bool is_classic(RoundType t) { return t != RoundType::kFast; }
std::string to_string(RoundType t);

/// A round (ballot) number, following §4.4: a record
/// ⟨Count, Id, Incarnation, Type⟩ ordered lexicographically on the first
/// three fields. `coord_inc` is the incarnation counter that lets a
/// recovered coordinator assume a fresh identity without stable storage.
/// The round type rides along for convenience (it is a function of Count in
/// any fixed policy, so it never affects the order).
struct Ballot {
  std::int64_t count = 0;
  sim::NodeId coord = -1;
  int coord_inc = 0;
  RoundType type = RoundType::kSingleCoord;

  /// The paper's round 0: lower than every real round; every acceptor
  /// implicitly accepts ⊥ at this round.
  static Ballot zero() { return Ballot{}; }
  bool is_zero() const { return count == 0; }

  bool is_fast() const { return type == RoundType::kFast; }
  bool is_classic() const { return !is_fast(); }

  friend std::strong_ordering operator<=>(const Ballot& a, const Ballot& b) {
    if (auto c = a.count <=> b.count; c != 0) return c;
    if (auto c = a.coord <=> b.coord; c != 0) return c;
    return a.coord_inc <=> b.coord_inc;
  }
  friend bool operator==(const Ballot& a, const Ballot& b) {
    return (a <=> b) == std::strong_ordering::equal;
  }

  std::string str() const;
};

std::ostream& operator<<(std::ostream& os, const Ballot& b);

/// Stable-storage codec (acceptors persist rnd / vrnd across crashes).
std::string encode(const Ballot& b);
Ballot decode_ballot(const std::string& s);

}  // namespace mcp::paxos
