#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "paxos/ballot.hpp"
#include "sim/time.hpp"

namespace mcp::paxos {

/// Static description of one round: its type, its coordinator set, and the
/// size of its coordinator quorums (Assumption 3 holds whenever
/// 2·coord_quorum_size > coordinators.size(); single-coordinated rounds use
/// one coordinator with quorum size 1).
struct RoundInfo {
  RoundType type = RoundType::kSingleCoord;
  std::vector<sim::NodeId> coordinators;
  std::size_t coord_quorum_size = 1;

  bool is_coord(sim::NodeId id) const {
    for (sim::NodeId c : coordinators) {
      if (c == id) return true;
    }
    return false;
  }
};

/// Assigns a structure to the round number line (§4.5): which counts are
/// fast, which are multicoordinated, who coordinates, and how ballots are
/// minted. Deployments pick a policy per expected workload (the paper's
/// "clustered" vs "conflict prone" scenarios).
class RoundPolicy {
 public:
  virtual ~RoundPolicy() = default;

  /// Round structure for a ballot (derived from its count / type fields).
  virtual RoundInfo info(const Ballot& b) const = 0;

  /// Mint the ballot with a given count for an initiating coordinator.
  virtual Ballot make_ballot(std::int64_t count, sim::NodeId initiator,
                             int incarnation) const = 0;

  /// Every process that coordinates some round under this policy.
  virtual const std::vector<sim::NodeId>& all_coordinators() const = 0;

  Ballot first_ballot(sim::NodeId initiator, int incarnation = 0) const {
    return make_ballot(1, initiator, incarnation);
  }
  Ballot next_ballot(const Ballot& cur, sim::NodeId initiator, int incarnation = 0) const {
    return make_ballot(cur.count + 1, initiator, incarnation);
  }
};

/// Round types repeat a fixed pattern over the count line:
/// type(count) = pattern[(count − 1) mod pattern.size()].
///
///  - kSingleCoord round: coordinated by the ballot's initiator alone.
///  - kMultiCoord round: coordinated by the full configured coordinator
///    set; any `mc_quorum_size` of them form a coordinator quorum.
///  - kFast round: the initiator is the (only) coordinator running phases
///    1/2Start; proposers talk to acceptors directly afterwards.
///
/// Common instantiations (factories below):
///  - always_single:          Classic Paxos round structure.
///  - always_multi:           every round multicoordinated.
///  - multi_then_single:      multicoordinated rounds, collisions recover
///                            into a single-coordinated round (§4.2).
///  - fast_then_single:       Fast Paxos with coordinated recovery (§4.5
///                            "conflicts rare but persistent").
///  - always_fast:            Fast Paxos with uncoordinated recovery (§4.5
///                            "clustered systems").
class PatternPolicy final : public RoundPolicy {
 public:
  PatternPolicy(std::vector<RoundType> pattern, std::vector<sim::NodeId> coordinators,
                std::size_t mc_quorum_size = 0);  // 0 = majority of coordinators

  RoundInfo info(const Ballot& b) const override;
  Ballot make_ballot(std::int64_t count, sim::NodeId initiator, int incarnation) const override;
  const std::vector<sim::NodeId>& all_coordinators() const override { return coordinators_; }

  RoundType type_of(std::int64_t count) const;

  static std::unique_ptr<PatternPolicy> always_single(std::vector<sim::NodeId> coords);
  /// §4.5 "clustered systems": ranges of `fast_range` fast rounds followed
  /// by one single-coordinated recovery round.
  static std::unique_ptr<PatternPolicy> clustered(std::vector<sim::NodeId> coords,
                                                  std::size_t fast_range);
  static std::unique_ptr<PatternPolicy> always_multi(std::vector<sim::NodeId> coords,
                                                     std::size_t mc_quorum_size = 0);
  static std::unique_ptr<PatternPolicy> multi_then_single(std::vector<sim::NodeId> coords,
                                                          std::size_t mc_quorum_size = 0);
  static std::unique_ptr<PatternPolicy> fast_then_single(std::vector<sim::NodeId> coords);
  static std::unique_ptr<PatternPolicy> always_fast(std::vector<sim::NodeId> coords);

 private:
  std::vector<RoundType> pattern_;
  std::vector<sim::NodeId> coordinators_;
  std::size_t mc_quorum_size_;
};

/// §4.5's gradual fallback: successive rounds use ever-smaller coordinator
/// sets — "a series of multi-coordinated rounds with smaller quorums,
/// minimizing the risk of collisions while still allowing for the benefits
/// of multi-coordination". Round count k uses the first
/// max(1, nc − (k−1)·shrink_per_round) configured coordinators with
/// majority quorums; once a single coordinator remains the round is
/// single-coordinated (owned by the ballot's initiator).
class ShrinkingMultiPolicy final : public RoundPolicy {
 public:
  ShrinkingMultiPolicy(std::vector<sim::NodeId> coordinators, int shrink_per_round = 1);

  RoundInfo info(const Ballot& b) const override;
  Ballot make_ballot(std::int64_t count, sim::NodeId initiator, int incarnation) const override;
  const std::vector<sim::NodeId>& all_coordinators() const override { return coordinators_; }

  std::size_t width_of(std::int64_t count) const;

 private:
  std::vector<sim::NodeId> coordinators_;
  int shrink_per_round_;
};

}  // namespace mcp::paxos
