#pragma once

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <vector>

#include "cstruct/cstruct.hpp"
#include "paxos/ballot.hpp"
#include "paxos/quorum.hpp"

namespace mcp::paxos {

/// One acceptor's phase "1b" report: the round at which it last accepted a
/// value and that value.
template <cstruct::CStructT CS>
struct VoteReport {
  sim::NodeId acceptor = sim::kNoNode;
  Ballot vrnd;
  CS vval;
};

/// ProvedSafe(Q, 1bMsg) — Definition 1 of the paper, for size-based quorum
/// systems (the cardinality formulation of §3.3.2). `reports` holds one
/// entry per acceptor of the phase-1 quorum Q.
///
/// Returns the non-empty set of c-structs that are pickable: no value
/// outside an extension of a returned c-struct can have been (or can still
/// be) chosen at any round below the one being started.
///
/// Case analysis:
///  - Let k be the highest vrnd reported and `kacceptors` its reporters.
///  - If no k-quorum R can have Q ∩ R ⊆ kacceptors (i.e. |kacceptors| is
///    below the minimum realizable intersection), nothing was or can be
///    chosen at k, and every reported value at k is pickable.
///  - Otherwise Γ = { ⊓ vals(S) : S ⊆ kacceptors, |S| = threshold } collects
///    a bound for every k-quorum; the Fast Quorum Requirement makes Γ
///    compatible, and ⊔Γ is the unique safe pick.
template <cstruct::CStructT CS>
std::vector<CS> proved_safe(const QuorumSystem& qs, const std::vector<VoteReport<CS>>& reports) {
  if (reports.empty()) throw std::invalid_argument("proved_safe: empty quorum");

  const Ballot k = std::max_element(reports.begin(), reports.end(),
                                    [](const auto& a, const auto& b) { return a.vrnd < b.vrnd; })
                       ->vrnd;

  std::vector<CS> kvals;
  for (const auto& r : reports) {
    if (r.vrnd == k) kvals.push_back(r.vval);
  }

  const std::size_t threshold = qs.proved_safe_threshold(reports.size(), k.is_fast());

  if (kvals.size() < threshold) {
    // QinterRAtk = {}: no k-quorum completed; any reported value at k works.
    return kvals;
  }

  // Fast path covering every classic k (all k-votes equal by Assumption 3)
  // and collision-free fast rounds.
  const bool all_equal = std::all_of(kvals.begin(), kvals.end(),
                                     [&](const CS& v) { return v == kvals.front(); });
  if (all_equal) return {kvals.front()};

  std::vector<CS> gamma;
  for (const auto& subset : combinations(kvals.size(), threshold)) {
    std::vector<CS> vals;
    vals.reserve(subset.size());
    for (std::size_t idx : subset) vals.push_back(kvals[idx]);
    gamma.push_back(cstruct::meet_all(vals));
  }
  if (!cstruct::all_compatible(gamma)) {
    // Reachable only if the quorum assumptions were violated.
    throw std::logic_error("proved_safe: incompatible glb set (quorum requirement violated?)");
  }
  return {cstruct::join_all(gamma)};
}

/// The single-value selection rule of Classic/Fast Paxos (§2.1–2.2), shared
/// by the Classic, Fast, and Multicoordinated consensus engines.
///
/// Returns the value that has been or might be chosen at a lower round, or
/// nullopt when the coordinator is free to pick any proposed value.
template <typename V>
struct SingleVoteReport {
  sim::NodeId acceptor = sim::kNoNode;
  Ballot vrnd;              ///< zero() when the acceptor never accepted
  std::optional<V> vval;    ///< engaged iff vrnd > zero
};

template <typename V>
std::optional<V> pick_single_value(const QuorumSystem& qs,
                                   const std::vector<SingleVoteReport<V>>& reports) {
  if (reports.empty()) throw std::invalid_argument("pick_single_value: empty quorum");

  const Ballot k = std::max_element(reports.begin(), reports.end(),
                                    [](const auto& a, const auto& b) { return a.vrnd < b.vrnd; })
                       ->vrnd;
  if (k.is_zero()) return std::nullopt;  // nothing ever accepted below

  std::vector<V> kvals;
  for (const auto& r : reports) {
    if (r.vrnd == k) {
      if (!r.vval) throw std::logic_error("pick_single_value: vote without value");
      kvals.push_back(*r.vval);
    }
  }

  if (!k.is_fast()) {
    // At most one value can be accepted at a classic round (a single 2a in
    // single-coordinated rounds; intersecting coordinator quorums force a
    // unique value in multicoordinated ones).
    return kvals.front();
  }

  // Fast k: v might have been chosen iff enough of Q reported (k, v) that a
  // fast k-quorum could be completed by the unheard acceptors (rule O4).
  const std::size_t threshold = qs.proved_safe_threshold(reports.size(), /*k_fast=*/true);
  std::optional<V> candidate;
  for (const V& v : kvals) {
    const auto votes = static_cast<std::size_t>(std::count(kvals.begin(), kvals.end(), v));
    if (votes >= threshold) {
      if (candidate && !(*candidate == v)) {
        throw std::logic_error("pick_single_value: two choosable values (fast quorum requirement violated?)");
      }
      candidate = v;
    }
  }
  return candidate;  // nullopt: collision at k, any proposal is pickable
}

}  // namespace mcp::paxos
