#pragma once

#include <any>
#include <map>
#include <vector>

#include "sim/process.hpp"
#include "sim/time.hpp"

namespace mcp::paxos {

/// Heartbeat exchanged by the members of a failure-detection group.
struct Heartbeat {
  static constexpr std::uint32_t kTag = 1;
  static constexpr const char* kName = "hb";
  void encode(wire::Writer&) const {}
  static Heartbeat decode(wire::Reader&) { return {}; }
};

/// Unreliable failure detector + Ω leader oracle (§4.3 relies on one to
/// avoid dueling round initiators). Members broadcast heartbeats every
/// `interval`; a peer unheard-of for `timeout` is suspected; the leader is
/// the lowest-id unsuspected member.
///
/// The detector is a component owned by a Process; the owner must forward
/// messages and timer callbacks (handle_message / handle_timer return true
/// when they consumed the event).
class FailureDetector {
 public:
  struct Config {
    sim::Time interval = 50;
    sim::Time timeout = 175;
  };

  static constexpr int kTimerToken = -7001;

  FailureDetector(sim::Process& owner, std::vector<sim::NodeId> group, Config config);

  /// Begin heartbeating (call from on_start and again from on_recover).
  void start();

  bool handle_message(sim::NodeId from, const std::any& msg);
  bool handle_timer(int token);

  bool is_alive(sim::NodeId id) const;
  /// Lowest-id member currently considered alive (the owner always counts).
  sim::NodeId leader() const;
  bool owner_is_leader() const { return leader() == owner_.id(); }

  const std::vector<sim::NodeId>& group() const { return group_; }

 private:
  void tick();

  sim::Process& owner_;
  std::vector<sim::NodeId> group_;
  Config config_;
  std::map<sim::NodeId, sim::Time> last_heard_;
};

}  // namespace mcp::paxos
