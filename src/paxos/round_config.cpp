#include "paxos/round_config.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcp::paxos {

PatternPolicy::PatternPolicy(std::vector<RoundType> pattern,
                             std::vector<sim::NodeId> coordinators,
                             std::size_t mc_quorum_size)
    : pattern_(std::move(pattern)),
      coordinators_(std::move(coordinators)),
      mc_quorum_size_(mc_quorum_size) {
  if (pattern_.empty()) throw std::invalid_argument("PatternPolicy: empty pattern");
  if (coordinators_.empty()) throw std::invalid_argument("PatternPolicy: no coordinators");
  if (mc_quorum_size_ == 0) mc_quorum_size_ = coordinators_.size() / 2 + 1;
  if (2 * mc_quorum_size_ <= coordinators_.size()) {
    // Assumption 3 (coordinator quorums of a classic round intersect).
    throw std::invalid_argument("PatternPolicy: coordinator quorums would not intersect");
  }
}

RoundType PatternPolicy::type_of(std::int64_t count) const {
  if (count <= 0) return RoundType::kSingleCoord;  // round zero placeholder
  return pattern_[static_cast<std::size_t>((count - 1) % static_cast<std::int64_t>(pattern_.size()))];
}

RoundInfo PatternPolicy::info(const Ballot& b) const {
  RoundInfo info;
  info.type = b.is_zero() ? RoundType::kSingleCoord : type_of(b.count);
  switch (info.type) {
    case RoundType::kMultiCoord:
      info.coordinators = coordinators_;
      info.coord_quorum_size = mc_quorum_size_;
      break;
    case RoundType::kSingleCoord:
    case RoundType::kFast:
      info.coordinators = {b.coord};
      info.coord_quorum_size = 1;
      break;
  }
  return info;
}

Ballot PatternPolicy::make_ballot(std::int64_t count, sim::NodeId initiator,
                                  int incarnation) const {
  if (count <= 0) throw std::invalid_argument("make_ballot: count must be positive");
  return Ballot{count, initiator, incarnation, type_of(count)};
}

std::unique_ptr<PatternPolicy> PatternPolicy::always_single(std::vector<sim::NodeId> coords) {
  return std::make_unique<PatternPolicy>(std::vector<RoundType>{RoundType::kSingleCoord},
                                         std::move(coords));
}

std::unique_ptr<PatternPolicy> PatternPolicy::always_multi(std::vector<sim::NodeId> coords,
                                                           std::size_t mc_quorum_size) {
  return std::make_unique<PatternPolicy>(std::vector<RoundType>{RoundType::kMultiCoord},
                                         std::move(coords), mc_quorum_size);
}

std::unique_ptr<PatternPolicy> PatternPolicy::multi_then_single(std::vector<sim::NodeId> coords,
                                                                std::size_t mc_quorum_size) {
  return std::make_unique<PatternPolicy>(
      std::vector<RoundType>{RoundType::kMultiCoord, RoundType::kSingleCoord},
      std::move(coords), mc_quorum_size);
}

std::unique_ptr<PatternPolicy> PatternPolicy::fast_then_single(std::vector<sim::NodeId> coords) {
  return std::make_unique<PatternPolicy>(
      std::vector<RoundType>{RoundType::kFast, RoundType::kSingleCoord}, std::move(coords));
}

std::unique_ptr<PatternPolicy> PatternPolicy::always_fast(std::vector<sim::NodeId> coords) {
  return std::make_unique<PatternPolicy>(std::vector<RoundType>{RoundType::kFast},
                                         std::move(coords));
}

std::unique_ptr<PatternPolicy> PatternPolicy::clustered(std::vector<sim::NodeId> coords,
                                                        std::size_t fast_range) {
  if (fast_range == 0) throw std::invalid_argument("clustered: fast_range must be >= 1");
  std::vector<RoundType> pattern(fast_range, RoundType::kFast);
  pattern.push_back(RoundType::kSingleCoord);
  return std::make_unique<PatternPolicy>(std::move(pattern), std::move(coords));
}

ShrinkingMultiPolicy::ShrinkingMultiPolicy(std::vector<sim::NodeId> coordinators,
                                           int shrink_per_round)
    : coordinators_(std::move(coordinators)), shrink_per_round_(shrink_per_round) {
  if (coordinators_.empty()) {
    throw std::invalid_argument("ShrinkingMultiPolicy: no coordinators");
  }
  if (shrink_per_round_ < 1) {
    throw std::invalid_argument("ShrinkingMultiPolicy: shrink_per_round must be >= 1");
  }
}

std::size_t ShrinkingMultiPolicy::width_of(std::int64_t count) const {
  if (count <= 0) return coordinators_.size();
  const std::int64_t shrunk = static_cast<std::int64_t>(coordinators_.size()) -
                              (count - 1) * shrink_per_round_;
  return static_cast<std::size_t>(std::max<std::int64_t>(1, shrunk));
}

RoundInfo ShrinkingMultiPolicy::info(const Ballot& b) const {
  RoundInfo info;
  const std::size_t width = width_of(b.count);
  if (width <= 1) {
    info.type = RoundType::kSingleCoord;
    info.coordinators = {b.coord};
    info.coord_quorum_size = 1;
    return info;
  }
  info.type = RoundType::kMultiCoord;
  info.coordinators.assign(coordinators_.begin(),
                           coordinators_.begin() + static_cast<std::ptrdiff_t>(width));
  info.coord_quorum_size = width / 2 + 1;
  return info;
}

Ballot ShrinkingMultiPolicy::make_ballot(std::int64_t count, sim::NodeId initiator,
                                         int incarnation) const {
  if (count <= 0) throw std::invalid_argument("make_ballot: count must be positive");
  const RoundType type =
      width_of(count) <= 1 ? RoundType::kSingleCoord : RoundType::kMultiCoord;
  return Ballot{count, initiator, incarnation, type};
}

}  // namespace mcp::paxos
