#include "paxos/ballot.hpp"

#include <sstream>
#include <stdexcept>

namespace mcp::paxos {

std::string to_string(RoundType t) {
  switch (t) {
    case RoundType::kSingleCoord:
      return "single";
    case RoundType::kMultiCoord:
      return "multi";
    case RoundType::kFast:
      return "fast";
  }
  return "?";
}

std::string Ballot::str() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Ballot& b) {
  os << "(" << b.count << "," << b.coord << "." << b.coord_inc << ","
     << to_string(b.type) << ")";
  return os;
}

std::string encode(const Ballot& b) {
  std::ostringstream os;
  os << b.count << " " << b.coord << " " << b.coord_inc << " "
     << static_cast<int>(b.type);
  return os.str();
}

Ballot decode_ballot(const std::string& s) {
  std::istringstream is(s);
  Ballot b;
  int type = 0;
  is >> b.count >> b.coord >> b.coord_inc >> type;
  if (is.fail()) throw std::invalid_argument("decode_ballot: malformed '" + s + "'");
  b.type = static_cast<RoundType>(type);
  return b;
}

}  // namespace mcp::paxos
