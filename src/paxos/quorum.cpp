#include "paxos/quorum.hpp"

#include <stdexcept>

namespace mcp::paxos {

QuorumSystem::QuorumSystem(std::vector<sim::NodeId> acceptors, int f, int e)
    : acceptors_(std::move(acceptors)), f_(f), e_(e) {
  if (acceptors_.empty()) throw std::invalid_argument("QuorumSystem: no acceptors");
  if (f_ < 0 || e_ < 0) throw std::invalid_argument("QuorumSystem: negative tolerance");
  if (e_ > f_) {
    // Fast quorums must be at least as large as classic ones (E ≤ F);
    // anything else would make fast rounds *more* tolerant than classic
    // ones, which Assumption 2 forbids for n > 2E + F anyway.
    throw std::invalid_argument("QuorumSystem: requires E <= F");
  }
  if (static_cast<std::size_t>(f_) >= acceptors_.size()) {
    throw std::invalid_argument("QuorumSystem: F >= n");
  }
}

QuorumSystem QuorumSystem::with_max_tolerance(std::vector<sim::NodeId> acceptors) {
  const int n = static_cast<int>(acceptors.size());
  const int f = (n - 1) / 2;          // majority classic quorums
  const int e = std::max(0, (n - f - 1) / 2);  // largest E with n > 2E + F
  return QuorumSystem(std::move(acceptors), f, e);
}

bool QuorumSystem::meets_classic_requirement() const {
  return acceptors_.size() > 2 * static_cast<std::size_t>(f_);
}

bool QuorumSystem::meets_fast_requirement() const {
  return meets_classic_requirement() &&
         acceptors_.size() > 2 * static_cast<std::size_t>(e_) + static_cast<std::size_t>(f_);
}

std::size_t QuorumSystem::proved_safe_threshold(std::size_t q_size, bool k_fast) const {
  const std::size_t fk = static_cast<std::size_t>(k_fast ? e_ : f_);
  if (q_size <= fk) {
    // Would mean a k-quorum can avoid Q entirely; forbidden by Assumptions
    // 1–2 for any valid configuration, so reject misuse loudly.
    throw std::logic_error("proved_safe_threshold: quorum too small for safety");
  }
  return q_size - fk;
}

std::vector<std::vector<std::size_t>> combinations(std::size_t n, std::size_t k) {
  if (k > n) return {};
  // Guard against accidental exponential blow-up; simulations use small n.
  double est = 1.0;
  for (std::size_t i = 0; i < k; ++i) est *= static_cast<double>(n - i) / static_cast<double>(i + 1);
  if (est > 200000.0) throw std::invalid_argument("combinations: too many subsets");

  std::vector<std::vector<std::size_t>> out;
  std::vector<std::size_t> cur(k);
  // Iterative lexicographic enumeration.
  for (std::size_t i = 0; i < k; ++i) cur[i] = i;
  while (true) {
    out.push_back(cur);
    if (k == 0) break;
    // Advance.
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (cur[i] != i + n - k) {
        ++cur[i];
        for (std::size_t j = i + 1; j < k; ++j) cur[j] = cur[j - 1] + 1;
        break;
      }
      if (i == 0) return out;
    }
  }
  return out;
}

}  // namespace mcp::paxos
