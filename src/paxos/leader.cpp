#include "paxos/leader.hpp"

#include <algorithm>

namespace mcp::paxos {

FailureDetector::FailureDetector(sim::Process& owner, std::vector<sim::NodeId> group,
                                 Config config)
    : owner_(owner), group_(std::move(group)), config_(config) {
  std::sort(group_.begin(), group_.end());
  // The detector is a self-contained component: any process that owns one
  // can decode the heartbeats its peers send, without the owning protocol
  // having to know about them.
  owner_.decoders().add<Heartbeat>();
}

void FailureDetector::start() {
  // Assume everyone alive at startup so the lowest id wins immediately and
  // a freshly recovered member does not grab leadership by suspicion.
  for (sim::NodeId id : group_) last_heard_[id] = owner_.now();
  tick();
}

void FailureDetector::tick() {
  for (sim::NodeId id : group_) {
    if (id != owner_.id()) owner_.send(id, Heartbeat{});
  }
  owner_.set_timer(config_.interval, kTimerToken);
}

bool FailureDetector::handle_message(sim::NodeId from, const std::any& msg) {
  if (std::any_cast<Heartbeat>(&msg) == nullptr) return false;
  last_heard_[from] = owner_.now();
  return true;
}

bool FailureDetector::handle_timer(int token) {
  if (token != kTimerToken) return false;
  tick();
  return true;
}

bool FailureDetector::is_alive(sim::NodeId id) const {
  if (id == owner_.id()) return true;
  auto it = last_heard_.find(id);
  if (it == last_heard_.end()) return false;
  return owner_.now() - it->second <= config_.timeout;
}

sim::NodeId FailureDetector::leader() const {
  for (sim::NodeId id : group_) {  // sorted ascending
    if (is_alive(id)) return id;
  }
  return owner_.id();
}

}  // namespace mcp::paxos
