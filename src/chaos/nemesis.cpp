#include "chaos/nemesis.hpp"

#include <chrono>

namespace mcp::chaos {

void Nemesis::run() {
  const auto t0 = std::chrono::steady_clock::now();
  for (const Action& action : schedule_) {
    std::this_thread::sleep_until(t0 + std::chrono::milliseconds(action.at_ms));
    dispatch(action);
    {
      std::lock_guard<std::mutex> lock(mu_);
      executed_.push_back(action);
    }
  }
}

void Nemesis::start() {
  if (thread_.joinable()) return;
  thread_ = std::thread([this] { run(); });
}

void Nemesis::join() {
  if (thread_.joinable()) thread_.join();
}

void Nemesis::dispatch(const Action& action) {
  switch (action.kind) {
    case ActionKind::kKill:
      if (hooks_.kill) hooks_.kill(action.a);
      return;
    case ActionKind::kRestart:
      if (hooks_.restart) hooks_.restart(action.a);
      return;
    case ActionKind::kPartition:
      if (hooks_.partition) hooks_.partition(action.a, action.b);
      return;
    case ActionKind::kHeal:
      if (hooks_.heal) hooks_.heal();
      return;
    case ActionKind::kSlow:
      if (hooks_.slow) hooks_.slow(action.a, action.delay_ms);
      return;
    case ActionKind::kFast:
      if (hooks_.fast) hooks_.fast(action.a);
      return;
    case ActionKind::kDrop:
      if (hooks_.drop) hooks_.drop(action.a, action.b, action.p);
      return;
  }
}

std::string Nemesis::executed_log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return schedule_string(executed_);
}

std::size_t Nemesis::executed_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return executed_.size();
}

}  // namespace mcp::chaos
