#pragma once

// A restartable live KV service cluster — the chaos twin of
// runtime::KvServiceCluster. Same id layout (per-group coordinator nodes,
// shared acceptor nodes hosting one acceptor process per group, servers
// running one multi-group frontend; every server in both learners and
// proposers), same processes,
// but: every node's transport is wrapped in a chaos::FaultyTransport
// consulting one shared LinkFaults table, every node persists to its own
// FileStorage data dir, and members can be killed and restarted
// individually — the restart reopening the same data dir, so the §4.4
// recovery path (WAL+snapshot replay, incarnation bump, on_recover) runs
// on a real process boundary instead of the simulator's.

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "chaos/faults.hpp"
#include "chaos/nemesis.hpp"
#include "chaos/scenario.hpp"
#include "cstruct/history.hpp"
#include "genpaxos/engine.hpp"
#include "paxos/round_config.hpp"
#include "runtime/cluster.hpp"
#include "runtime/kv_cluster.hpp"
#include "service/client.hpp"
#include "service/frontend.hpp"
#include "smr/kv.hpp"

namespace mcp::chaos {

struct ChaosKvOptions {
  runtime::Backend backend = runtime::Backend::kThread;
  runtime::KvShape shape;
  /// Required: every node persists under <data_root>/node<id>/ (created).
  std::string data_root;
  std::chrono::microseconds tick{1000};
  std::uint64_t seed = 1;
  /// FileStorage snapshot cadence — small by default so even short chaos
  /// runs cross a snapshot boundary and recovery replays snapshot+suffix.
  std::int64_t snapshot_every = 64;
  std::string host = "127.0.0.1";
  /// Protocol flight recorder per member (under <data_dir>/journal). On by
  /// default: the journal is the evidence capture_incident() bundles and
  /// mcpaxos_inspect audits, and chaos runs are exactly where incidents
  /// happen.
  bool journal = true;
  std::uint64_t journal_segment_bytes = 256 * 1024;
};

class ChaosKvCluster {
 public:
  using History = cstruct::History;

  explicit ChaosKvCluster(ChaosKvOptions options);
  ~ChaosKvCluster();

  ChaosKvCluster(const ChaosKvCluster&) = delete;
  ChaosKvCluster& operator=(const ChaosKvCluster&) = delete;

  void start();
  void stop();

  // --- nemesis surface -------------------------------------------------------
  /// Stop the node's loop and destroy it + its transport (the live
  /// equivalent of SIGKILL: no flush, no goodbye — only what FileStorage
  /// already fsync'd survives). No-op on an already-dead node.
  void kill(sim::NodeId id);
  /// Rebuild transport + node over the same data dir and start it: the
  /// FileStorage recovery path, incarnation bump included. No-op if alive.
  void restart(sim::NodeId id);
  /// Restart every dead member (harnesses call this after a schedule so
  /// convergence is always possible even for scenarios that end killed).
  void revive_all();

  /// Hooks bound to this cluster (kill/restart) and its fault table
  /// (partition/heal/slow/fast/drop) — plug into a Nemesis.
  Nemesis::Hooks hooks();
  /// The role table scenarios compile against.
  RoleTable roles() const;
  LinkFaults& faults() { return faults_; }

  // --- client plumbing (mirrors KvServiceCluster) ----------------------------
  std::unique_ptr<service::ClientChannel> make_channel(sim::NodeId client_id);
  sim::NodeId client_endpoint_id(int i) const {
    return static_cast<sim::NodeId>(1000 + i);
  }
  const std::vector<sim::NodeId>& server_ids() const { return server_ids_; }
  const std::vector<sim::NodeId>& acceptor_ids() const { return acceptor_ids_; }
  const std::vector<sim::NodeId>& coordinator_ids() const { return coordinator_ids_; }
  int group_count() const { return static_cast<int>(configs_.size()); }
  /// Node id of group g's i-th coordinator (the kill target of group_kill).
  sim::NodeId coordinator_node(int g, int i = 0) const {
    return coordinator_ids_.at(
        static_cast<std::size_t>(g * options_.shape.coordinators + i));
  }

  // --- inspection ------------------------------------------------------------
  bool alive(sim::NodeId id) const;
  /// These run on the target node's loop; id must name a live server.
  /// store_snapshot/learned_snapshot read shard 0 (the whole state of an
  /// unsharded cluster); the merged/per-group forms cover sharded ones.
  smr::KVStore store_snapshot(sim::NodeId server_id);
  std::map<std::string, std::string> store_data_snapshot(sim::NodeId server_id);
  History learned_snapshot(sim::NodeId server_id);
  History learned_snapshot(sim::NodeId server_id, std::uint32_t gid);
  std::size_t applied_count(sim::NodeId server_id);
  /// Process::incarnation() of a live member.
  int incarnation(sim::NodeId id);
  /// FileStorage replay accounting of a live member (0s if somehow not
  /// file-backed): {replayed_records, loaded_snapshot}.
  std::pair<std::int64_t, bool> recovery_stats(sim::NodeId id);

  /// Capture a post-mortem incident bundle under `bundle_dir`: every
  /// member's flight-recorder journal (flushed first on live members, and
  /// copied as-left-on-disk for killed ones), plus per-live-member metrics
  /// exposition and trace JSON, plus a manifest.txt carrying the quorum
  /// tolerances so `mcpaxos_inspect <bundle_dir>` replays with the real
  /// f/e. Called automatically by run_chaos_workload when an acceptance
  /// invariant fails; safe to call on a healthy cluster too (CI bundles
  /// every smoke run and gates on inspect reporting 0 violations).
  void capture_incident(const std::string& bundle_dir,
                        const std::string& scenario_name = "");

  std::int64_t kill_count() const;
  std::int64_t restart_count() const;
  /// Wall-clock duration of the slowest restart() so far (transport
  /// rebuild + WAL/snapshot replay + recovery bookkeeping) — the bounded
  /// recovery time E10-live reports.
  double max_restart_ms() const;

  const ChaosKvOptions& options() const { return options_; }
  const genpaxos::Config<History>& config() const { return *configs_.front(); }
  const genpaxos::Config<History>& group_config(int g) const { return *configs_.at(g); }

 private:
  struct Member {
    std::string role;  // "coordinator" | "acceptor" | "server"
    std::string data_dir;
    std::uint16_t port = 0;  // kTcp: fixed after the initial bind
    std::unique_ptr<transport::TcpTransport> tcp;
    std::shared_ptr<FaultyTransport> faulty;
    std::unique_ptr<runtime::Node> node;
    service::Frontend* frontend = nullptr;
  };

  /// Build transport + node + process for `id` (mu_ held by caller).
  void build_member(sim::NodeId id);
  transport::Transport& make_inner_transport(sim::NodeId id);
  Member& member(sim::NodeId id) { return members_.at(static_cast<std::size_t>(id)); }
  const Member& member(sim::NodeId id) const {
    return members_.at(static_cast<std::size_t>(id));
  }

  ChaosKvOptions options_;
  cstruct::KeyConflict conflicts_;
  std::vector<std::unique_ptr<paxos::RoundPolicy>> policies_;
  std::vector<std::unique_ptr<genpaxos::Config<History>>> configs_;
  std::vector<sim::NodeId> coordinator_ids_;
  std::vector<sim::NodeId> acceptor_ids_;
  std::vector<sim::NodeId> server_ids_;

  LinkFaults faults_;
  DelayPump pump_;
  std::unique_ptr<transport::ThreadHub> hub_;  // kThread

  /// Serializes kill/restart/stop/inspection against each other (the
  /// nemesis thread races the harness thread on the member table).
  mutable std::mutex mu_;
  std::vector<Member> members_;
  bool started_ = false;
  std::int64_t kills_ = 0;
  std::int64_t restarts_ = 0;
  double max_restart_ms_ = 0;
};

}  // namespace mcp::chaos
