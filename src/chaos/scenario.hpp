#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace mcp::chaos {

/// What one scheduled fault does to the live cluster. The vocabulary is
/// the depfast EPaxos harness's (disconnect / unreliable / slow) plus the
/// process-level crash/restart this repo's recovery story needs.
enum class ActionKind {
  kKill,       ///< stop the target node's process (SIGKILL equivalent)
  kRestart,    ///< bring it back with the same data dir (recovery path)
  kPartition,  ///< cut the link between two nodes, both directions
  kHeal,       ///< remove every partition and drop rule
  kSlow,       ///< add fixed delay to all of the target's outbound links
  kFast,       ///< remove the target's delay
  kDrop,       ///< make the link between two nodes lossy (probability p)
};

const char* action_name(ActionKind kind);

/// One fully resolved schedule entry: `at` milliseconds after the nemesis
/// starts, apply `kind` to node `a` (and `b` for the link actions).
struct Action {
  sim::Time at_ms = 0;
  ActionKind kind = ActionKind::kHeal;
  sim::NodeId a = sim::kNoNode;
  sim::NodeId b = sim::kNoNode;
  double p = 0;             ///< kDrop: per-frame loss probability
  sim::Time delay_ms = 0;   ///< kSlow: added one-way link delay
};

/// One parsed-but-unresolved scenario line: targets are still symbolic
/// ("acceptor.0", "any-acceptor", "server.1") so the same file drives any
/// cluster shape; compile() resolves them against a concrete role table.
struct ScenarioEvent {
  sim::Time at_ms = 0;
  ActionKind kind = ActionKind::kHeal;
  std::string target_a;
  std::string target_b;
  double p = 0;
  sim::Time delay_ms = 0;
};

/// A chaos scenario file (tests/scenarios/*.chaos):
///
///   # comment
///   name  crash-acceptor
///   duration-ms  4000
///   at 500  kill     acceptor.0
///   at 1500 restart  acceptor.0
///   at 800  partition acceptor.1 server.0
///   at 1200 heal
///   at 600  slow     any-acceptor 25
///   at 900  fast     any-acceptor
///   at 300  drop     coordinator.0 acceptor.2 0.3
///
/// Targets: `<role>.<index>` (coordinator | acceptor | server, index into
/// that role's id list), `node.<id>` (a raw cluster id), or `any-<role>`
/// (one seeded-random member of the role, resolved at compile time so the
/// schedule — not the run — carries all the randomness).
struct Scenario {
  std::string name;
  sim::Time duration_ms = 0;
  std::vector<ScenarioEvent> events;
};

/// Parse scenario text; throws std::runtime_error on malformed lines.
Scenario parse_scenario_text(const std::string& text,
                             const std::string& origin = "<text>");
Scenario parse_scenario_file(const std::string& path);

/// The concrete cluster a scenario compiles against.
struct RoleTable {
  std::vector<sim::NodeId> coordinators;
  std::vector<sim::NodeId> acceptors;
  std::vector<sim::NodeId> servers;
};

/// Resolve every symbolic target into node ids and sort by time (stable:
/// same-instant events keep file order). All `any-*` picks draw from one
/// Rng(seed), so scenario + seed fully determine the schedule — the
/// determinism the nemesis tests assert by comparing schedule_string()s.
/// Throws std::runtime_error on unknown targets or out-of-range indices.
std::vector<Action> compile(const Scenario& scenario, const RoleTable& roles,
                            std::uint64_t seed);

/// Canonical one-line-per-action rendering ("t=500 kill node=3"), the
/// comparable log the determinism test and the JSON reports use.
std::string schedule_string(const std::vector<Action>& schedule);

}  // namespace mcp::chaos
