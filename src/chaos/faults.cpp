#include "chaos/faults.hpp"

#include <utility>

namespace mcp::chaos {

// --- LinkFaults ---------------------------------------------------------------

void LinkFaults::partition(sim::NodeId a, sim::NodeId b) {
  std::lock_guard<std::mutex> lock(mu_);
  cut_.insert(link(a, b));
}

void LinkFaults::drop(sim::NodeId a, sim::NodeId b, double p) {
  std::lock_guard<std::mutex> lock(mu_);
  lossy_[link(a, b)] = p;
}

void LinkFaults::heal() {
  std::lock_guard<std::mutex> lock(mu_);
  cut_.clear();
  lossy_.clear();
}

void LinkFaults::slow(sim::NodeId node, sim::Time delay_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  slow_[node] = delay_ms;
}

void LinkFaults::fast(sim::NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  slow_.erase(node);
}

bool LinkFaults::should_drop(sim::NodeId from, sim::NodeId to) {
  std::lock_guard<std::mutex> lock(mu_);
  if (cut_.count(link(from, to)) != 0) {
    ++dropped_;
    return true;
  }
  if (const auto it = lossy_.find(link(from, to)); it != lossy_.end()) {
    if (rng_.chance(it->second)) {
      ++dropped_;
      return true;
    }
  }
  return false;
}

std::chrono::milliseconds LinkFaults::delay(sim::NodeId from, sim::NodeId to) const {
  std::lock_guard<std::mutex> lock(mu_);
  sim::Time ms = 0;
  if (const auto it = slow_.find(from); it != slow_.end()) ms = it->second;
  if (const auto it = slow_.find(to); it != slow_.end() && it->second > ms) {
    ms = it->second;
  }
  return std::chrono::milliseconds(ms);
}

std::int64_t LinkFaults::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

// --- DelayPump ----------------------------------------------------------------

DelayPump::DelayPump() : thread_([this] { run(); }) {}

DelayPump::~DelayPump() { stop(); }

void DelayPump::enqueue(std::chrono::steady_clock::time_point due,
                        std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    queue_.emplace(due, std::move(fn));
  }
  cv_.notify_one();
}

void DelayPump::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    while (!queue_.empty()) queue_.pop();
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void DelayPump::run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (stopping_) return;
    if (queue_.empty()) {
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      continue;
    }
    const auto due = queue_.top().first;
    if (std::chrono::steady_clock::now() < due) {
      cv_.wait_until(lock, due);
      continue;
    }
    auto fn = std::move(const_cast<Entry&>(queue_.top()).second);
    queue_.pop();
    lock.unlock();
    fn();
    lock.lock();
  }
}

// --- FaultyTransport ----------------------------------------------------------

void FaultyTransport::start(FrameHandler handler) {
  transport::Transport* inner = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    inner = inner_;
  }
  inner->start(std::move(handler));
}

bool FaultyTransport::send(transport::PeerId to, std::string_view payload) {
  if (faults_.should_drop(self_, to)) {
    // The frame was "handed to the carrier" and lost on the wire: success
    // from the sender's point of view, as with any lossy transport.
    return true;
  }
  const auto delay = faults_.delay(self_, to);
  if (delay.count() > 0) {
    pump_.enqueue(std::chrono::steady_clock::now() + delay,
                  [weak = weak_from_this(), to, frame = std::string(payload)] {
                    if (const auto self = weak.lock()) {
                      self->send_delayed(to, frame);
                    }
                  });
    return true;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) return false;
  return inner_->send(to, payload);
}

void FaultyTransport::send_delayed(transport::PeerId to, const std::string& payload) {
  // Serialized with stop() on mu_: either we see stopped_ and drop, or we
  // finish the send before stop() can return (and the inner transport be
  // destroyed).
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) return;
  inner_->send(to, payload);
}

void FaultyTransport::stop() {
  transport::Transport* inner = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    inner = inner_;
  }
  // Inner stop outside mu_: a TCP transport's stop joins reader threads
  // whose handlers may be mid-send through this wrapper.
  inner->stop();
}

std::string FaultyTransport::name() const {
  std::lock_guard<std::mutex> lock(mu_);
  return "chaos(" + inner_->name() + ")";
}

}  // namespace mcp::chaos
