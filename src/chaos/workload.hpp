#pragma once

// The acceptance harness of the chaos layer: bench_kv-style client traffic
// pushed through a ChaosKvCluster while a Nemesis executes its schedule,
// followed by heal + revive_all and the E4 checks — every acknowledged
// write present on every replica, no command learned twice, all replica
// stores equal. Ops that exhausted their attempt budget mid-chaos are
// counted as failed and excluded from the lost-write accounting (their
// outcome is ambiguous by definition); everything the cluster acked must
// survive.

#include <chrono>
#include <cstdint>

#include "chaos/kv_chaos_cluster.hpp"
#include "chaos/nemesis.hpp"

namespace mcp::chaos {

struct WorkloadOptions {
  int clients = 4;
  int ops_per_client = 40;
  /// Every Nth op per client is a read of a key that client already wrote
  /// (and got acked); 0 disables reads. Reads conflict with the writes
  /// they follow, so a correct run returns the written value — anything
  /// else counts as a stale read.
  int read_every = 5;
  /// Pause between a client's ops. Pick ~scenario duration / ops_per_client
  /// so the traffic actually overlaps the whole schedule — an unpaced
  /// workload on a fast backend finishes before the first fault fires.
  std::chrono::milliseconds op_delay{0};
  std::chrono::milliseconds attempt_timeout{250};
  int max_attempts = 60;
  /// Budget for the post-chaos convergence wait (heal + revive first).
  std::chrono::milliseconds converge_timeout{20000};
  std::chrono::milliseconds converge_poll{50};
  /// Non-empty: when an acceptance invariant fails (no convergence, lost
  /// writes, duplicate applies, stale reads), capture a post-mortem bundle
  /// here via ChaosKvCluster::capture_incident — journals + metrics +
  /// traces, ready for `mcpaxos_inspect`.
  std::string incident_dir;
  /// Scenario label stamped into the bundle manifest.
  std::string scenario_name;
};

struct WorkloadReport {
  // --- traffic ---------------------------------------------------------------
  std::int64_t ops = 0;
  std::int64_t acked = 0;
  std::int64_t failed = 0;
  std::int64_t retries = 0;      ///< client retransmissions beyond first sends
  std::int64_t stale_reads = 0;  ///< acked reads that missed an earlier acked write
  double makespan_ms = 0;        ///< traffic start → all clients done

  // --- acceptance ------------------------------------------------------------
  bool converged = false;      ///< stores equal + every acked write present
  double convergence_ms = 0;   ///< heal/revive → converged
  std::int64_t lost_writes = 0;  ///< acked writes absent or wrong in final state
  std::int64_t dup_applies = 0;  ///< duplicate ids in learned sequences, plus
                                 ///< applied-beyond-learned excess per server
  std::int64_t learned = 0;      ///< learned-history size once converged
  /// A failing run wrote its incident bundle here (empty otherwise).
  std::string incident_bundle;
};

/// Runs the schedule and the traffic concurrently, then settles and checks.
/// The cluster must already be started.
WorkloadReport run_chaos_workload(ChaosKvCluster& cluster, Nemesis& nemesis,
                                  WorkloadOptions options = {});

}  // namespace mcp::chaos
