#include "chaos/kv_chaos_cluster.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "storage/file_storage.hpp"
#include "util/exposition.hpp"
#include "util/trace.hpp"

namespace mcp::chaos {

ChaosKvCluster::ChaosKvCluster(ChaosKvOptions options)
    : options_(std::move(options)), faults_(options_.seed) {
  if (options_.data_root.empty()) {
    throw std::invalid_argument("ChaosKvCluster: data_root is required");
  }
  if (::mkdir(options_.data_root.c_str(), 0755) != 0 && errno != EEXIST) {
    throw std::runtime_error("ChaosKvCluster: mkdir " + options_.data_root + ": " +
                             std::strerror(errno));
  }

  const runtime::KvShape& shape = options_.shape;
  const int groups = shape.groups < 1 ? 1 : shape.groups;
  // Same id layout as KvServiceCluster: group g's coordinator nodes are
  // [g*C, (g+1)*C), then the shared acceptor nodes, then the servers.
  sim::NodeId next = 0;
  for (int g = 0; g < groups; ++g) {
    for (int i = 0; i < shape.coordinators; ++i) coordinator_ids_.push_back(next++);
  }
  for (int i = 0; i < shape.acceptors; ++i) acceptor_ids_.push_back(next++);
  for (int i = 0; i < shape.servers; ++i) server_ids_.push_back(next++);

  for (int g = 0; g < groups; ++g) {
    std::vector<sim::NodeId> coords;
    for (int i = 0; i < shape.coordinators; ++i) {
      coords.push_back(coordinator_ids_[static_cast<std::size_t>(
          g * shape.coordinators + i)]);
    }
    policies_.push_back(shape.coordinators > 1
                            ? paxos::PatternPolicy::multi_then_single(coords)
                            : paxos::PatternPolicy::always_single(coords));
    auto config = std::make_unique<genpaxos::Config<History>>();
    config->acceptors = acceptor_ids_;
    config->learners = server_ids_;
    config->proposers = server_ids_;
    config->policy = policies_.back().get();
    config->f = shape.f;
    config->e = shape.e;
    config->bottom = History(&conflicts_);
    config->retry_interval = shape.retry_interval;
    config->progress_timeout = shape.progress_timeout;
    config->delta_messages = shape.delta_messages;
    configs_.push_back(std::move(config));
  }

  members_.resize(static_cast<std::size_t>(next));
  for (sim::NodeId id = 0; id < next; ++id) {
    Member& m = member(id);
    if (id < static_cast<sim::NodeId>(coordinator_ids_.size())) {
      m.role = "coordinator";
    } else if (id < next - static_cast<sim::NodeId>(server_ids_.size())) {
      m.role = "acceptor";
    } else {
      m.role = "server";
    }
    m.data_dir = options_.data_root + "/node" + std::to_string(id);
  }

  if (options_.backend == runtime::Backend::kThread) {
    hub_ = std::make_unique<transport::ThreadHub>();
  } else {
    // Bind every listener up front on ephemeral ports; the port a member
    // gets here is its address for the cluster's whole life — a restarted
    // member rebinds the same port (SO_REUSEADDR) so peers' tables and
    // their dial-retry loops keep working across the kill.
    for (sim::NodeId id = 0; id < next; ++id) {
      transport::TcpConfig tc;
      tc.self = id;
      tc.listen_host = options_.host;
      auto t = std::make_unique<transport::TcpTransport>(tc);
      member(id).port = t->bind_and_listen();
      member(id).tcp = std::move(t);
    }
    for (sim::NodeId id = 0; id < next; ++id) {
      for (sim::NodeId peer = 0; peer < next; ++peer) {
        if (peer == id) continue;
        member(id).tcp->set_peer(peer, {options_.host, member(peer).port});
      }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (sim::NodeId id = 0; id < next; ++id) build_member(id);
}

ChaosKvCluster::~ChaosKvCluster() { stop(); }

transport::Transport& ChaosKvCluster::make_inner_transport(sim::NodeId id) {
  if (hub_) {
    // restart_endpoint also serves the first build: no prior endpoint
    // means it simply creates a fresh one.
    return hub_->restart_endpoint(id);
  }
  Member& m = member(id);
  if (!m.tcp) {
    transport::TcpConfig tc;
    tc.self = id;
    tc.listen_host = options_.host;
    tc.listen_port = m.port;  // the address peers still dial
    for (sim::NodeId peer = 0; peer < static_cast<sim::NodeId>(members_.size());
         ++peer) {
      if (peer == id) continue;
      tc.peers[peer] = {options_.host, member(peer).port};
    }
    m.tcp = std::make_unique<transport::TcpTransport>(tc);
    m.tcp->bind_and_listen();
  }
  return *m.tcp;
}

void ChaosKvCluster::build_member(sim::NodeId id) {
  Member& m = member(id);
  transport::Transport& inner = make_inner_transport(id);
  m.faulty = std::make_shared<FaultyTransport>(inner, faults_, pump_, id);

  runtime::NodeOptions no;
  no.id = id;
  no.tick = options_.tick;
  no.rng_seed = options_.seed + static_cast<std::uint64_t>(id);
  no.data_dir = m.data_dir;
  no.snapshot_every = options_.snapshot_every;
  if (options_.journal) {
    // The journal sits next to (not inside) the FileStorage WAL so a
    // restart's storage recovery never scans it; a restarted member opens
    // a fresh segment after the killed incarnation's last one.
    no.journal_dir = m.data_dir + "/journal";
    no.journal_segment_bytes = options_.journal_segment_bytes;
  }
  m.node = std::make_unique<runtime::Node>(no, *m.faulty);

  const int groups = group_count();
  if (m.role == "coordinator") {
    const int g = static_cast<int>(id) / options_.shape.coordinators;
    m.node->make_process_for_group<genpaxos::GenCoordinator<History>>(
        static_cast<std::uint32_t>(g), *configs_[static_cast<std::size_t>(g)]);
  } else if (m.role == "acceptor") {
    // One acceptor process per group, all on this node's one event loop,
    // all persisting under per-group subdirs of the same data dir.
    for (int g = 0; g < groups; ++g) {
      m.node->make_process_for_group<genpaxos::GenAcceptor<History>>(
          static_cast<std::uint32_t>(g), *configs_[static_cast<std::size_t>(g)]);
    }
  } else {
    std::vector<service::Frontend::GroupConfig> shard_configs;
    for (int g = 0; g < groups; ++g) {
      shard_configs.push_back({static_cast<std::uint32_t>(g),
                               configs_[static_cast<std::size_t>(g)].get()});
    }
    m.frontend = &m.node->make_process_for_group<service::Frontend>(
        0, shard_configs,
        service::KeyPartition::hashed(static_cast<std::uint32_t>(groups)),
        options_.shape.frontend);
    for (int g = 1; g < groups; ++g) {
      m.node->route_group(static_cast<std::uint32_t>(g), *m.frontend);
    }
  }
}

void ChaosKvCluster::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  for (Member& m : members_) {
    if (m.node) m.node->start();
  }
}

void ChaosKvCluster::stop() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Member& m : members_) {
    if (m.node) m.node->stop();
  }
  pump_.stop();
  if (hub_) hub_->stop_all();
  for (Member& m : members_) {
    if (m.tcp) m.tcp->stop();
  }
}

void ChaosKvCluster::kill(sim::NodeId id) {
  std::lock_guard<std::mutex> lock(mu_);
  Member& m = member(id);
  if (!m.node) return;
  m.node->stop();  // joins the loop; FaultyTransport (and inner) stop too
  m.node.reset();
  m.frontend = nullptr;
  m.faulty.reset();
  m.tcp.reset();  // kTcp: release the port so the restart can rebind it
  ++kills_;
}

void ChaosKvCluster::restart(sim::NodeId id) {
  std::lock_guard<std::mutex> lock(mu_);
  Member& m = member(id);
  if (m.node) return;
  const auto t0 = std::chrono::steady_clock::now();
  build_member(id);
  if (started_) m.node->start();
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  if (ms > max_restart_ms_) max_restart_ms_ = ms;
  ++restarts_;
}

void ChaosKvCluster::revive_all() {
  for (sim::NodeId id = 0; id < static_cast<sim::NodeId>(members_.size()); ++id) {
    if (!alive(id)) restart(id);
  }
}

Nemesis::Hooks ChaosKvCluster::hooks() {
  Nemesis::Hooks h;
  h.kill = [this](sim::NodeId id) { kill(id); };
  h.restart = [this](sim::NodeId id) { restart(id); };
  h.partition = [this](sim::NodeId a, sim::NodeId b) { faults_.partition(a, b); };
  h.heal = [this] { faults_.heal(); };
  h.slow = [this](sim::NodeId id, sim::Time ms) { faults_.slow(id, ms); };
  h.fast = [this](sim::NodeId id) { faults_.fast(id); };
  h.drop = [this](sim::NodeId a, sim::NodeId b, double p) { faults_.drop(a, b, p); };
  return h;
}

RoleTable ChaosKvCluster::roles() const {
  RoleTable roles;
  roles.coordinators = coordinator_ids_;
  roles.acceptors = acceptor_ids_;
  roles.servers = server_ids_;
  return roles;
}

std::unique_ptr<service::ClientChannel> ChaosKvCluster::make_channel(
    sim::NodeId client_id) {
  if (hub_) {
    return std::make_unique<service::HubClientChannel>(*hub_, client_id);
  }
  std::map<sim::NodeId, service::ServerAddr> servers;
  std::lock_guard<std::mutex> lock(mu_);
  for (const sim::NodeId id : server_ids_) {
    servers[id] = {options_.host, member(id).port};
  }
  return std::make_unique<service::TcpClientChannel>(std::move(servers));
}

bool ChaosKvCluster::alive(sim::NodeId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return member(id).node != nullptr;
}

smr::KVStore ChaosKvCluster::store_snapshot(sim::NodeId server_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Member& m = member(server_id);
  if (!m.node || !m.frontend) {
    throw std::logic_error("store_snapshot: server is not alive");
  }
  service::Frontend* f = m.frontend;
  return m.node->call([f] { return f->store(); });
}

std::map<std::string, std::string> ChaosKvCluster::store_data_snapshot(
    sim::NodeId server_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Member& m = member(server_id);
  if (!m.node || !m.frontend) {
    throw std::logic_error("store_data_snapshot: server is not alive");
  }
  service::Frontend* f = m.frontend;
  return m.node->call([f] { return f->store_data(); });
}

ChaosKvCluster::History ChaosKvCluster::learned_snapshot(sim::NodeId server_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Member& m = member(server_id);
  if (!m.node || !m.frontend) {
    throw std::logic_error("learned_snapshot: server is not alive");
  }
  service::Frontend* f = m.frontend;
  return m.node->call([f] { return f->learned(); });
}

ChaosKvCluster::History ChaosKvCluster::learned_snapshot(sim::NodeId server_id,
                                                         std::uint32_t gid) {
  std::lock_guard<std::mutex> lock(mu_);
  Member& m = member(server_id);
  if (!m.node || !m.frontend) {
    throw std::logic_error("learned_snapshot: server is not alive");
  }
  service::Frontend* f = m.frontend;
  return m.node->call([f, gid] {
    const History* h = f->learned_for_group(gid);
    if (h == nullptr) throw std::logic_error("learned_snapshot: no such group");
    return *h;
  });
}

std::size_t ChaosKvCluster::applied_count(sim::NodeId server_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Member& m = member(server_id);
  if (!m.node || !m.frontend) return 0;
  service::Frontend* f = m.frontend;
  return m.node->call([f] { return f->applied(); });
}

int ChaosKvCluster::incarnation(sim::NodeId id) {
  std::lock_guard<std::mutex> lock(mu_);
  Member& m = member(id);
  if (!m.node) return -1;
  runtime::Node* node = m.node.get();
  return node->call([node] { return node->process().incarnation(); });
}

std::pair<std::int64_t, bool> ChaosKvCluster::recovery_stats(sim::NodeId id) {
  std::lock_guard<std::mutex> lock(mu_);
  Member& m = member(id);
  if (!m.node) return {0, false};
  runtime::Node* node = m.node.get();
  return node->call([node]() -> std::pair<std::int64_t, bool> {
    const auto* fs =
        dynamic_cast<const storage::FileStorage*>(&node->process().storage());
    if (fs == nullptr) return {0, false};
    return {fs->replayed_records(), fs->loaded_snapshot()};
  });
}

void ChaosKvCluster::capture_incident(const std::string& bundle_dir,
                                      const std::string& scenario_name) {
  namespace fs = std::filesystem;
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  fs::create_directories(bundle_dir, ec);

  {
    std::ofstream manifest(bundle_dir + "/manifest.txt");
    manifest << "# mcpaxos incident bundle\n";
    if (!scenario_name.empty()) manifest << "scenario=" << scenario_name << "\n";
    manifest << "f=" << options_.shape.f << "\n";
    manifest << "e=" << options_.shape.e << "\n";
    manifest << "groups=" << group_count() << "\n";
    manifest << "acceptors=";
    for (std::size_t i = 0; i < acceptor_ids_.size(); ++i) {
      manifest << (i ? "," : "") << acceptor_ids_[i];
    }
    manifest << "\n";
  }

  for (sim::NodeId id = 0; id < static_cast<sim::NodeId>(members_.size()); ++id) {
    Member& m = member(id);
    const std::string node_dir = bundle_dir + "/node" + std::to_string(id);
    if (m.node) {
      // Live member: make the journal durable and snapshot the volatile
      // observability state (metrics, trace ring) while we still can. A
      // killed member contributes only what its recorder already fsync'd —
      // which is the realistic crash evidence.
      m.node->flush_journal();
      fs::create_directories(node_dir, ec);
      std::ofstream metrics(node_dir + "/metrics.prom");
      metrics << util::prometheus_exposition(m.node->metrics());
      std::ofstream trace(node_dir + "/trace.json");
      trace << util::TraceRecorder::perfetto_json(m.node->trace().snapshot());
    }
    const fs::path journal_src = fs::path(m.data_dir) / "journal";
    if (fs::is_directory(journal_src, ec)) {
      fs::create_directories(node_dir, ec);
      fs::copy(journal_src, fs::path(node_dir) / "journal",
               fs::copy_options::recursive | fs::copy_options::overwrite_existing,
               ec);
    }
  }
}

std::int64_t ChaosKvCluster::kill_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return kills_;
}

std::int64_t ChaosKvCluster::restart_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return restarts_;
}

double ChaosKvCluster::max_restart_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_restart_ms_;
}

}  // namespace mcp::chaos
