#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "transport/transport.hpp"
#include "util/rng.hpp"

namespace mcp::chaos {

/// The cluster-wide fault table the nemesis mutates and every
/// FaultyTransport consults on each send. Partitions and drop rules are
/// symmetric (stored on the unordered pair); slow rules are per node and
/// delay all of that node's links. Thread-safe: nemesis and transport
/// threads race on it by design.
class LinkFaults {
 public:
  explicit LinkFaults(std::uint64_t seed = 1) : rng_(seed) {}

  void partition(sim::NodeId a, sim::NodeId b);
  void drop(sim::NodeId a, sim::NodeId b, double p);
  /// Remove every partition and drop rule (slow rules stay — the DSL's
  /// `fast` removes those).
  void heal();
  void slow(sim::NodeId node, sim::Time delay_ms);
  void fast(sim::NodeId node);

  /// Should this frame be lost? (Cut link, or a lossy link's coin toss.)
  bool should_drop(sim::NodeId from, sim::NodeId to);
  /// Added one-way latency for this link (max of both endpoints' slow
  /// rules; zero when neither is slowed).
  std::chrono::milliseconds delay(sim::NodeId from, sim::NodeId to) const;

  std::int64_t dropped() const;

 private:
  static std::pair<sim::NodeId, sim::NodeId> link(sim::NodeId a, sim::NodeId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  mutable std::mutex mu_;
  std::set<std::pair<sim::NodeId, sim::NodeId>> cut_;
  std::map<std::pair<sim::NodeId, sim::NodeId>, double> lossy_;
  std::map<sim::NodeId, sim::Time> slow_;
  util::Rng rng_;
  std::int64_t dropped_ = 0;
};

/// One background thread delivering delayed closures at their deadlines —
/// the "wire time" of slowed links. Tasks hold weak references to their
/// transports (see FaultyTransport::send), so a task outliving its node's
/// kill is a safe no-op.
class DelayPump {
 public:
  DelayPump();
  ~DelayPump();

  DelayPump(const DelayPump&) = delete;
  DelayPump& operator=(const DelayPump&) = delete;

  void enqueue(std::chrono::steady_clock::time_point due,
               std::function<void()> fn);
  /// Discard queued tasks and join the thread. Idempotent.
  void stop();

 private:
  void run();

  using Entry = std::pair<std::chrono::steady_clock::time_point,
                          std::function<void()>>;
  struct Later {
    bool operator()(const Entry& x, const Entry& y) const {
      return x.first > y.first;
    }
  };

  std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  bool stopping_ = false;
  std::thread thread_;
};

/// A transport wrapper that subjects every outbound frame to the shared
/// fault table: partitioned/lossy links drop (claiming success, exactly
/// like a lossy wire), slowed links route through the DelayPump. Inbound
/// frames pass through untouched — both directions of a cut are enforced
/// because each sender checks its own outbound half.
///
/// Lifetime: managed by shared_ptr (the chaos cluster's), because delayed
/// sends capture weak_ptrs — a frame in flight when its sender is killed
/// dissolves instead of dereferencing a dead transport. stop() is
/// serialized with delayed delivery on mu_, so after stop() returns no
/// task can touch the inner transport again and the caller may destroy it.
class FaultyTransport final : public transport::Transport,
                              public std::enable_shared_from_this<FaultyTransport> {
 public:
  FaultyTransport(transport::Transport& inner, LinkFaults& faults,
                  DelayPump& pump, sim::NodeId self)
      : inner_(&inner), faults_(faults), pump_(pump), self_(self) {}

  void start(FrameHandler handler) override;
  bool send(transport::PeerId to, std::string_view payload) override;
  void stop() override;
  std::string name() const override;
  transport::TransportStats stats() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return stopped_ ? transport::TransportStats{} : inner_->stats();
  }

 private:
  void send_delayed(transport::PeerId to, const std::string& payload);

  mutable std::mutex mu_;
  transport::Transport* inner_;  // guarded by mu_ after start
  LinkFaults& faults_;
  DelayPump& pump_;
  sim::NodeId self_;
  bool stopped_ = false;
};

}  // namespace mcp::chaos
