#include "chaos/scenario.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace mcp::chaos {

const char* action_name(ActionKind kind) {
  switch (kind) {
    case ActionKind::kKill: return "kill";
    case ActionKind::kRestart: return "restart";
    case ActionKind::kPartition: return "partition";
    case ActionKind::kHeal: return "heal";
    case ActionKind::kSlow: return "slow";
    case ActionKind::kFast: return "fast";
    case ActionKind::kDrop: return "drop";
  }
  return "unknown";
}

namespace {

[[noreturn]] void bad_line(const std::string& origin, int lineno,
                           const std::string& why) {
  throw std::runtime_error("scenario " + origin + ":" + std::to_string(lineno) +
                           ": " + why);
}

bool parse_kind(const std::string& word, ActionKind* out) {
  if (word == "kill") *out = ActionKind::kKill;
  else if (word == "restart") *out = ActionKind::kRestart;
  else if (word == "partition") *out = ActionKind::kPartition;
  else if (word == "heal") *out = ActionKind::kHeal;
  else if (word == "slow") *out = ActionKind::kSlow;
  else if (word == "fast") *out = ActionKind::kFast;
  else if (word == "drop") *out = ActionKind::kDrop;
  else return false;
  return true;
}

/// How many targets (and which trailing numeric argument) each verb takes.
struct Arity {
  int targets = 0;
  bool has_delay = false;
  bool has_prob = false;
};

Arity arity_of(ActionKind kind) {
  switch (kind) {
    case ActionKind::kKill:
    case ActionKind::kRestart:
    case ActionKind::kFast:
      return {1, false, false};
    case ActionKind::kPartition:
      return {2, false, false};
    case ActionKind::kHeal:
      return {0, false, false};
    case ActionKind::kSlow:
      return {1, true, false};
    case ActionKind::kDrop:
      return {2, false, true};
  }
  return {};
}

}  // namespace

Scenario parse_scenario_text(const std::string& text, const std::string& origin) {
  Scenario scenario;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream words(line);
    std::string word;
    if (!(words >> word)) continue;  // blank/comment line

    if (word == "name") {
      if (!(words >> scenario.name)) bad_line(origin, lineno, "name needs a value");
      continue;
    }
    if (word == "duration-ms") {
      if (!(words >> scenario.duration_ms) || scenario.duration_ms < 0) {
        bad_line(origin, lineno, "duration-ms needs a non-negative integer");
      }
      continue;
    }
    if (word != "at") bad_line(origin, lineno, "unknown directive '" + word + "'");

    ScenarioEvent ev;
    if (!(words >> ev.at_ms) || ev.at_ms < 0) {
      bad_line(origin, lineno, "'at' needs a non-negative millisecond offset");
    }
    std::string verb;
    if (!(words >> verb) || !parse_kind(verb, &ev.kind)) {
      bad_line(origin, lineno, "unknown action '" + verb + "'");
    }
    const Arity arity = arity_of(ev.kind);
    if (arity.targets >= 1 && !(words >> ev.target_a)) {
      bad_line(origin, lineno, verb + " needs a target");
    }
    if (arity.targets >= 2 && !(words >> ev.target_b)) {
      bad_line(origin, lineno, verb + " needs two targets");
    }
    if (arity.has_delay && (!(words >> ev.delay_ms) || ev.delay_ms < 0)) {
      bad_line(origin, lineno, verb + " needs a delay in ms");
    }
    if (arity.has_prob && (!(words >> ev.p) || ev.p < 0 || ev.p > 1)) {
      bad_line(origin, lineno, verb + " needs a probability in [0,1]");
    }
    std::string extra;
    if (words >> extra) bad_line(origin, lineno, "trailing junk '" + extra + "'");
    scenario.events.push_back(std::move(ev));
  }
  if (scenario.name.empty()) {
    throw std::runtime_error("scenario " + origin + ": missing 'name'");
  }
  if (scenario.duration_ms <= 0) {
    throw std::runtime_error("scenario " + origin + ": missing 'duration-ms'");
  }
  for (const ScenarioEvent& ev : scenario.events) {
    if (ev.at_ms > scenario.duration_ms) {
      throw std::runtime_error("scenario " + origin +
                               ": event past duration-ms");
    }
  }
  return scenario;
}

Scenario parse_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("scenario: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_scenario_text(buf.str(), path);
}

namespace {

sim::NodeId resolve(const std::string& target, const RoleTable& roles,
                    util::Rng& rng) {
  auto from_role = [&](const std::string& role,
                       const std::vector<sim::NodeId>& ids,
                       const std::string& index_str) -> sim::NodeId {
    std::size_t index = 0;
    try {
      index = static_cast<std::size_t>(std::stoul(index_str));
    } catch (const std::exception&) {
      throw std::runtime_error("scenario: bad index in target '" + target + "'");
    }
    if (index >= ids.size()) {
      throw std::runtime_error("scenario: target '" + target + "' out of range (" +
                               role + " has " + std::to_string(ids.size()) +
                               " members)");
    }
    return ids[index];
  };

  if (target.rfind("any-", 0) == 0) {
    const std::string role = target.substr(4);
    const std::vector<sim::NodeId>* ids = nullptr;
    if (role == "coordinator") ids = &roles.coordinators;
    else if (role == "acceptor") ids = &roles.acceptors;
    else if (role == "server") ids = &roles.servers;
    if (ids == nullptr || ids->empty()) {
      throw std::runtime_error("scenario: no members for target '" + target + "'");
    }
    return rng.pick(*ids);
  }
  const auto dot = target.find('.');
  if (dot == std::string::npos) {
    throw std::runtime_error("scenario: malformed target '" + target + "'");
  }
  const std::string role = target.substr(0, dot);
  const std::string index = target.substr(dot + 1);
  if (role == "coordinator") return from_role(role, roles.coordinators, index);
  if (role == "acceptor") return from_role(role, roles.acceptors, index);
  if (role == "server") return from_role(role, roles.servers, index);
  if (role == "node") {
    try {
      return static_cast<sim::NodeId>(std::stoi(index));
    } catch (const std::exception&) {
      throw std::runtime_error("scenario: bad node id in '" + target + "'");
    }
  }
  throw std::runtime_error("scenario: unknown role in target '" + target + "'");
}

}  // namespace

std::vector<Action> compile(const Scenario& scenario, const RoleTable& roles,
                            std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Action> schedule;
  schedule.reserve(scenario.events.size());
  for (const ScenarioEvent& ev : scenario.events) {
    Action a;
    a.at_ms = ev.at_ms;
    a.kind = ev.kind;
    a.p = ev.p;
    a.delay_ms = ev.delay_ms;
    // Resolve in file order, unconditionally: the rng consumption pattern
    // depends only on the file, so one seed → one schedule.
    if (!ev.target_a.empty()) a.a = resolve(ev.target_a, roles, rng);
    if (!ev.target_b.empty()) a.b = resolve(ev.target_b, roles, rng);
    schedule.push_back(a);
  }
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const Action& x, const Action& y) { return x.at_ms < y.at_ms; });
  return schedule;
}

std::string schedule_string(const std::vector<Action>& schedule) {
  std::ostringstream out;
  for (const Action& a : schedule) {
    out << "t=" << a.at_ms << " " << action_name(a.kind);
    if (a.a != sim::kNoNode) out << " node=" << a.a;
    if (a.b != sim::kNoNode) out << " peer=" << a.b;
    if (a.kind == ActionKind::kSlow) out << " delay=" << a.delay_ms;
    if (a.kind == ActionKind::kDrop) out << " p=" << a.p;
    out << "\n";
  }
  return out.str();
}

}  // namespace mcp::chaos
