#pragma once

#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "chaos/scenario.hpp"

namespace mcp::chaos {

/// Executes a compiled chaos schedule against a live cluster in real time.
///
/// The schedule is fully precomputed (see chaos::compile) — the nemesis
/// adds no randomness of its own, so the same scenario + seed always
/// performs the same actions in the same order at the same offsets, and
/// the only nondeterminism in a chaos run is the cluster's. Hooks are how
/// the actions reach the cluster driver; every executed action is appended
/// to a log the harness can print or compare.
class Nemesis {
 public:
  struct Hooks {
    std::function<void(sim::NodeId)> kill;
    std::function<void(sim::NodeId)> restart;
    std::function<void(sim::NodeId, sim::NodeId)> partition;
    std::function<void()> heal;
    std::function<void(sim::NodeId, sim::Time)> slow;
    std::function<void(sim::NodeId)> fast;
    std::function<void(sim::NodeId, sim::NodeId, double)> drop;
  };

  Nemesis(std::vector<Action> schedule, Hooks hooks)
      : schedule_(std::move(schedule)), hooks_(std::move(hooks)) {}
  ~Nemesis() { join(); }

  Nemesis(const Nemesis&) = delete;
  Nemesis& operator=(const Nemesis&) = delete;

  /// Run the whole schedule on the calling thread (sleeping between
  /// actions), then return.
  void run();
  /// Run on a background thread; join() waits for the end of the schedule.
  void start();
  void join();

  const std::vector<Action>& schedule() const { return schedule_; }
  /// One line per executed action, in execution order — identical to
  /// schedule_string(schedule()) once the run finished, which is exactly
  /// what the determinism test checks across runs.
  std::string executed_log() const;
  std::size_t executed_count() const;

 private:
  void dispatch(const Action& action);

  std::vector<Action> schedule_;
  Hooks hooks_;
  std::thread thread_;

  mutable std::mutex mu_;
  std::vector<Action> executed_;
};

}  // namespace mcp::chaos
