#include "chaos/workload.hpp"

#include <map>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

namespace mcp::chaos {
namespace {

struct ClientOutcome {
  std::int64_t ops = 0;
  std::int64_t acked = 0;
  std::int64_t failed = 0;
  std::int64_t retries = 0;
  std::int64_t stale_reads = 0;
  /// (key, value) pairs the cluster acknowledged — the writes that must
  /// survive whatever the nemesis did.
  std::vector<std::pair<std::string, std::string>> acked_writes;
};

ClientOutcome run_client(ChaosKvCluster& cluster, int index,
                         const WorkloadOptions& options) {
  service::Client::Options co;
  co.client_id = 0x1000 + static_cast<std::uint64_t>(index);
  co.servers = cluster.server_ids();
  co.attempt_timeout = options.attempt_timeout;
  co.max_attempts = options.max_attempts;
  service::Client client(
      cluster.make_channel(cluster.client_endpoint_id(index)), co);

  ClientOutcome out;
  for (int j = 0; j < options.ops_per_client; ++j) {
    if (j > 0 && options.op_delay.count() > 0) {
      std::this_thread::sleep_for(options.op_delay);
    }
    const std::string key =
        "c" + std::to_string(index) + ".k" + std::to_string(j);
    const std::string value =
        "v" + std::to_string(index) + "." + std::to_string(j);
    ++out.ops;
    const auto put = client.put(key, value);
    if (put.ok) {
      ++out.acked;
      out.acked_writes.emplace_back(key, value);
    } else {
      ++out.failed;
    }

    if (options.read_every > 0 && (j + 1) % options.read_every == 0 &&
        !out.acked_writes.empty()) {
      // Read back this client's most recent acked write. The read
      // conflicts with that write, so every correct linearization orders
      // it after — the reply must carry the written value.
      const auto& [rkey, rvalue] = out.acked_writes.back();
      ++out.ops;
      const auto got = client.get(rkey);
      if (!got.ok) {
        ++out.failed;
      } else {
        ++out.acked;
        if (!got.found || got.value != rvalue) ++out.stale_reads;
      }
    }
  }
  out.retries = static_cast<std::int64_t>(client.retries());
  return out;
}

}  // namespace

WorkloadReport run_chaos_workload(ChaosKvCluster& cluster, Nemesis& nemesis,
                                  WorkloadOptions options) {
  WorkloadReport report;

  const auto traffic_t0 = std::chrono::steady_clock::now();
  nemesis.start();

  std::vector<ClientOutcome> outcomes(
      static_cast<std::size_t>(options.clients));
  {
    std::vector<std::thread> threads;
    threads.reserve(outcomes.size());
    for (int i = 0; i < options.clients; ++i) {
      threads.emplace_back([&cluster, &options, &outcomes, i] {
        outcomes[static_cast<std::size_t>(i)] =
            run_client(cluster, i, options);
      });
    }
    for (auto& t : threads) t.join();
  }
  report.makespan_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - traffic_t0)
                           .count();
  nemesis.join();

  std::vector<std::pair<std::string, std::string>> acked_writes;
  for (const ClientOutcome& out : outcomes) {
    report.ops += out.ops;
    report.acked += out.acked;
    report.failed += out.failed;
    report.retries += out.retries;
    report.stale_reads += out.stale_reads;
    acked_writes.insert(acked_writes.end(), out.acked_writes.begin(),
                        out.acked_writes.end());
  }

  // Settle: undo whatever link faults are still in force and bring every
  // killed member back (through its FileStorage recovery path), then wait
  // for the replicas to agree on a state containing all acked writes.
  cluster.faults().heal();
  cluster.revive_all();

  const auto settle_t0 = std::chrono::steady_clock::now();
  const auto deadline = settle_t0 + options.converge_timeout;
  const auto& servers = cluster.server_ids();
  while (true) {
    // Merged across shards: a sharded cluster converges when every group's
    // replica state agrees on every server, which the union captures
    // (shards own disjoint key sets).
    std::vector<std::map<std::string, std::string>> stores;
    stores.reserve(servers.size());
    for (const sim::NodeId id : servers) {
      stores.push_back(cluster.store_data_snapshot(id));
    }

    bool equal = true;
    for (std::size_t i = 1; i < stores.size(); ++i) {
      if (stores[i] != stores[0]) {
        equal = false;
        break;
      }
    }
    std::int64_t lost = 0;
    if (equal) {
      for (const auto& [key, value] : acked_writes) {
        const auto it = stores[0].find(key);
        if (it == stores[0].end() || it->second != value) ++lost;
      }
    }
    if (equal && lost == 0) {
      report.converged = true;
      report.lost_writes = 0;
      break;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      report.converged = false;
      report.lost_writes = lost;
      break;
    }
    std::this_thread::sleep_for(options.converge_poll);
  }
  report.convergence_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - settle_t0)
                              .count();

  // Exactly-once: no learned history may carry a command id twice — not
  // even across groups (the deterministic command id routes to exactly one
  // shard) — and no replica may have applied more commands than its
  // histories hold.
  for (const sim::NodeId id : servers) {
    std::unordered_set<std::uint64_t> ids;
    std::int64_t learned = 0;
    for (int g = 0; g < cluster.group_count(); ++g) {
      const auto history =
          cluster.learned_snapshot(id, static_cast<std::uint32_t>(g));
      learned += static_cast<std::int64_t>(history.size());
      for (const auto& c : history.sequence()) {
        if (!ids.insert(c.id).second) ++report.dup_applies;
      }
    }
    const auto applied = static_cast<std::int64_t>(cluster.applied_count(id));
    if (applied > learned) report.dup_applies += applied - learned;
    if (learned > report.learned) report.learned = learned;
  }

  // Forensics: a failed acceptance check freezes the evidence immediately,
  // while the cluster (and its volatile metrics/trace state) is still up.
  const bool failed_acceptance = !report.converged || report.lost_writes != 0 ||
                                 report.dup_applies != 0 ||
                                 report.stale_reads != 0;
  if (failed_acceptance && !options.incident_dir.empty()) {
    cluster.capture_incident(options.incident_dir, options.scenario_name);
    report.incident_bundle = options.incident_dir;
  }
  return report;
}

}  // namespace mcp::chaos
