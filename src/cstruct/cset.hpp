#pragma once

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "cstruct/command.hpp"

namespace mcp::cstruct {

/// The c-struct set where every pair of commands commutes: a c-struct is
/// simply the set of appended commands. ⊓ is intersection, ⊔ is union, and
/// every pair of c-structs is compatible — the degenerate "no collisions
/// possible" end of the Generalized Consensus spectrum.
class CSet {
 public:
  CSet() = default;

  void append(const Command& c) { cmds_.emplace(c.id, c); }

  bool contains(const Command& c) const { return cmds_.count(c.id) != 0; }

  bool extends(const CSet& w) const {
    return std::all_of(w.cmds_.begin(), w.cmds_.end(),
                       [&](const auto& kv) { return cmds_.count(kv.first) != 0; });
  }

  bool compatible(const CSet&) const { return true; }

  CSet meet(const CSet& w) const {
    CSet out;
    for (const auto& [id, c] : cmds_) {
      if (w.cmds_.count(id) != 0) out.cmds_.emplace(id, c);
    }
    return out;
  }

  CSet join(const CSet& w) const {
    CSet out = *this;
    out.cmds_.insert(w.cmds_.begin(), w.cmds_.end());
    return out;
  }

  std::size_t size() const { return cmds_.size(); }

  /// Delta codec: the commands missing from base (in id order), or nullopt
  /// when *this does not extend base.
  std::optional<std::vector<Command>> suffix_after(const CSet& base) const {
    if (!extends(base)) return std::nullopt;
    std::vector<Command> out;
    out.reserve(cmds_.size() - base.cmds_.size());
    for (const auto& [id, c] : cmds_) {
      if (base.cmds_.count(id) == 0) out.push_back(c);
    }
    return out;
  }
  void apply_suffix(const std::vector<Command>& suffix) {
    for (const Command& c : suffix) append(c);
  }

  /// Commands in id order (a valid linearization: all commands commute).
  std::vector<Command> commands() const {
    std::vector<Command> out;
    out.reserve(cmds_.size());
    for (const auto& [id, c] : cmds_) out.push_back(c);
    return out;
  }

  friend bool operator==(const CSet& a, const CSet& b) {
    if (a.cmds_.size() != b.cmds_.size()) return false;
    return std::equal(a.cmds_.begin(), a.cmds_.end(), b.cmds_.begin(),
                      [](const auto& x, const auto& y) { return x.first == y.first; });
  }
  friend bool operator!=(const CSet& a, const CSet& b) { return !(a == b); }

 private:
  std::map<std::uint64_t, Command> cmds_;
};

}  // namespace mcp::cstruct
