#include "cstruct/history.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace mcp::cstruct {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

std::size_t find_id(const std::vector<Command>& seq, std::uint64_t id) {
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (seq[i].id == id) return i;
  }
  return kNpos;
}

/// True when `shorter` is an elementwise prefix of `longer` (fast path: the
/// common protocol case where one value literally grew out of the other).
bool literal_prefix(const std::vector<Command>& shorter,
                    const std::vector<Command>& longer) {
  if (shorter.size() > longer.size()) return false;
  for (std::size_t i = 0; i < shorter.size(); ++i) {
    if (shorter[i].id != longer[i].id) return false;
  }
  return true;
}

/// Length of the longest shared elementwise prefix of two sequences.
///
/// The Prefix / AreCompatible / ⊔ recursions of §3.3.1 all consume equal
/// heads unconditionally (the head is found at position 0 of the other
/// sequence, before any conflicting command, with no pending ancestors), so
/// each operator factors as  op(P ++ ta, P ++ tb) = P ++ op(ta, tb).
/// Protocol traffic consists of values that recently diverged from a long
/// common prefix, which this reduces from O(total²) to O(tail²).
std::size_t common_prefix_len(const std::vector<Command>& a, const std::vector<Command>& b) {
  const std::size_t limit = std::min(a.size(), b.size());
  std::size_t i = 0;
  while (i < limit && a[i].id == b[i].id) ++i;
  return i;
}

}  // namespace

bool History::conflicts(const Command& a, const Command& b) const {
  if (a.id == b.id) return false;  // a command never conflicts with itself
  if (!rel_) return true;          // no relation given: be conservative
  return rel_->conflicts(a, b);
}

std::size_t History::index_of(const Command& c) const { return find_id(seq_, c.id); }

void History::append(const Command& c) {
  if (!contains(c)) seq_.push_back(c);
}

bool History::contains(const Command& c) const { return index_of(c) != kNpos; }

bool History::compatible(const History& w) const {
  if (literal_prefix(seq_, w.seq_) || literal_prefix(w.seq_, seq_)) return true;
  // AreCompatible(H, I, A) of §3.3.1 on the diverging tails, iteratively.
  // A collects commands of H that are missing from I (they would have to be
  // appended *after* I's current contents, so any later H-command present
  // in I must not conflict with them).
  const std::size_t common = common_prefix_len(seq_, w.seq_);
  std::vector<Command> h(seq_.begin() + static_cast<std::ptrdiff_t>(common), seq_.end());
  std::vector<Command> i(w.seq_.begin() + static_cast<std::ptrdiff_t>(common), w.seq_.end());
  std::vector<Command> ancestors;
  std::size_t hpos = 0;
  while (hpos < h.size() && !i.empty()) {
    const Command& head = h[hpos];
    std::size_t j_eq = kNpos;
    std::size_t j_conf = kNpos;
    for (std::size_t j = 0; j < i.size(); ++j) {
      if (j_eq == kNpos && i[j].id == head.id) j_eq = j;
      if (j_conf == kNpos && conflicts(head, i[j])) j_conf = j;
      if (j_eq != kNpos && j_conf != kNpos) break;
    }
    if (j_conf != kNpos && (j_eq == kNpos || j_conf < j_eq)) {
      // Some command of I conflicts with head and precedes head's position
      // in I (or head is absent from I): the two orders cannot be merged.
      return false;
    }
    if (j_eq != kNpos) {
      for (const Command& f : ancestors) {
        if (conflicts(head, f)) return false;
      }
      i.erase(i.begin() + static_cast<std::ptrdiff_t>(j_eq));
      ++hpos;
    } else {
      ancestors.push_back(head);
      ++hpos;
    }
  }
  return true;
}

History History::meet(const History& w) const {
  if (literal_prefix(seq_, w.seq_)) return *this;
  if (literal_prefix(w.seq_, seq_)) return w;
  // Factor out the shared prefix, then run Prefix(H, I) of §3.3.1 on the
  // diverging tails, iteratively.
  const std::size_t common = common_prefix_len(seq_, w.seq_);
  History out(rel_ ? rel_ : w.rel_);
  out.seq_.assign(seq_.begin(), seq_.begin() + static_cast<std::ptrdiff_t>(common));
  std::vector<Command> h(seq_.begin() + static_cast<std::ptrdiff_t>(common), seq_.end());
  std::vector<Command> i(w.seq_.begin() + static_cast<std::ptrdiff_t>(common), w.seq_.end());
  while (!h.empty() && !i.empty()) {
    const Command head = h.front();
    const std::size_t j = find_id(i, head.id);
    bool take = false;
    if (j != kNpos) {
      take = true;
      for (std::size_t k = 0; k < j; ++k) {
        if (conflicts(head, i[k])) {
          take = false;
          break;
        }
      }
    }
    if (take) {
      out.seq_.push_back(head);
      h.erase(h.begin());
      i.erase(i.begin() + static_cast<std::ptrdiff_t>(j));
    } else {
      // Drop head and everything that (transitively) succeeds it in H: those
      // commands are ordered after head and cannot be in the common prefix.
      std::vector<Command> blocked{head};
      std::vector<Command> rest;
      for (std::size_t k = 1; k < h.size(); ++k) {
        const bool succ = std::any_of(blocked.begin(), blocked.end(),
                                      [&](const Command& b) { return conflicts(h[k], b); });
        if (succ) {
          blocked.push_back(h[k]);
        } else {
          rest.push_back(h[k]);
        }
      }
      h = std::move(rest);
    }
  }
  return out;
}

History History::join(const History& w) const {
  if (literal_prefix(seq_, w.seq_)) return w;
  if (literal_prefix(w.seq_, seq_)) return *this;
  if (!compatible(w)) {
    throw std::logic_error("History::join of incompatible histories");
  }
  // H ⊔ I of §3.3.1 on the diverging tails: walk H, consuming matching
  // commands of I; the commands of I that remain are appended at the end in
  // I's order.
  const std::size_t common = common_prefix_len(seq_, w.seq_);
  History out(rel_ ? rel_ : w.rel_);
  out.seq_ = seq_;
  std::vector<Command> i(w.seq_.begin() + static_cast<std::ptrdiff_t>(common), w.seq_.end());
  for (std::size_t k = common; k < seq_.size(); ++k) {
    const std::size_t j = find_id(i, seq_[k].id);
    if (j != kNpos) i.erase(i.begin() + static_cast<std::ptrdiff_t>(j));
  }
  for (const Command& c : i) out.seq_.push_back(c);
  return out;
}

std::optional<std::vector<Command>> History::suffix_after(const History& base) const {
  if (!extends(base)) return std::nullopt;
  // Fast path: the base is a literal prefix of our linearization (the
  // common protocol case — the value literally grew out of the base).
  if (literal_prefix(base.seq_, seq_)) {
    return std::vector<Command>(seq_.begin() + static_cast<std::ptrdiff_t>(base.seq_.size()),
                                seq_.end());
  }
  // General case: our linearization interleaves commuting commands with the
  // base's. Since *this = base • σ, the commands of σ are exactly those
  // missing from base, and our linearization restricted to them is a valid
  // ordering of σ (conflicting pairs keep their poset order).
  std::unordered_set<std::uint64_t> in_base;
  in_base.reserve(base.seq_.size());
  for (const Command& c : base.seq_) in_base.insert(c.id);
  std::vector<Command> out;
  out.reserve(seq_.size() - base.seq_.size());
  for (const Command& c : seq_) {
    if (in_base.count(c.id) == 0) out.push_back(c);
  }
  return out;
}

void History::apply_suffix(const std::vector<Command>& suffix) {
  for (const Command& c : suffix) append(c);
}

bool History::extends(const History& w) const {
  if (literal_prefix(w.seq_, seq_)) return true;
  if (w.seq_.size() > seq_.size()) return false;
  return meet(w) == w;
}

bool operator==(const History& a, const History& b) {
  if (a.seq_.size() != b.seq_.size()) return false;
  if (literal_prefix(a.seq_, b.seq_)) return true;
  // Poset equality factors over a shared literal prefix as well: prefix
  // pairs are identically ordered, and prefix-vs-tail pairs are
  // positionally ordered the same way in both sequences. Only the tails
  // need the quadratic conflicting-pair comparison.
  const std::size_t common = common_prefix_len(a.seq_, b.seq_);
  std::unordered_map<std::uint64_t, std::size_t> pos_b;
  pos_b.reserve(b.seq_.size() - common);
  for (std::size_t j = common; j < b.seq_.size(); ++j) pos_b[b.seq_[j].id] = j;
  for (std::size_t x = common; x < a.seq_.size(); ++x) {
    if (pos_b.find(a.seq_[x].id) == pos_b.end()) return false;
  }
  for (std::size_t x = common; x < a.seq_.size(); ++x) {
    for (std::size_t y = x + 1; y < a.seq_.size(); ++y) {
      if (!a.conflicts(a.seq_[x], a.seq_[y])) continue;
      // a orders x before y; b must agree.
      if (pos_b[a.seq_[x].id] > pos_b[a.seq_[y].id]) return false;
    }
  }
  return true;
}

}  // namespace mcp::cstruct
