#pragma once

#include <string>

#include "cstruct/cset.hpp"
#include "cstruct/history.hpp"
#include "cstruct/single_value.hpp"

namespace mcp::cstruct {

/// Stable-storage codecs for the c-struct implementations. Decoding needs a
/// prototype (carrying e.g. the conflict relation of a History) so that the
/// reconstructed value lives in the same c-struct set.

inline std::string encode(const SingleValue& v) {
  return v.is_bottom() ? std::string{} : encode(*v.value());
}
inline SingleValue decode(const SingleValue& /*prototype*/, const std::string& s) {
  if (s.empty()) return SingleValue{};
  return SingleValue{decode_command(s)};
}

inline std::string encode(const CSet& v) { return encode(v.commands()); }
inline CSet decode(const CSet& /*prototype*/, const std::string& s) {
  CSet out;
  for (const Command& c : decode_commands(s)) out.append(c);
  return out;
}

inline std::string encode(const History& v) { return encode(v.sequence()); }
inline History decode(const History& prototype, const std::string& s) {
  return History::from_sequence(prototype.relation(), decode_commands(s));
}

}  // namespace mcp::cstruct
