#pragma once

#include <optional>
#include <vector>

#include "cstruct/command.hpp"

namespace mcp::cstruct {

/// Command history c-struct (§3.3.1 of the paper): a partially ordered set
/// of commands, represented as one of its linearizations plus the external
/// conflict relation. Two histories are equal when they contain the same
/// commands and order every conflicting pair the same way.
///
/// The conflict relation is *not* owned; it is shared configuration whose
/// lifetime must cover every history built from it (typically a constant
/// owned by the protocol configuration).
class History {
 public:
  History() = default;
  explicit History(const ConflictRelation* rel) : rel_(rel) {}

  /// Rebuild a history from a stored linearization (deserialization). The
  /// sequence must already respect the conflict order, which holds for any
  /// sequence produced by sequence().
  static History from_sequence(const ConflictRelation* rel, std::vector<Command> seq) {
    History h(rel);
    h.seq_ = std::move(seq);
    return h;
  }

  const ConflictRelation* relation() const { return rel_; }

  /// The • operator: append C unless it is already contained.
  void append(const Command& c);

  bool contains(const Command& c) const;

  /// w ⊑ *this, i.e. *this = w • σ for some command sequence σ.
  bool extends(const History& w) const;

  /// AreCompatible of §3.3.1: do the two histories admit a common upper
  /// bound (no conflicting pair ordered differently, and no command of one
  /// inserted "before" already-appended conflicting commands of the other)?
  bool compatible(const History& w) const;

  /// Greatest lower bound ⊓: the longest common prefix (Prefix operator of
  /// §3.3.1, folded over both orders).
  History meet(const History& w) const;

  /// Least upper bound ⊔ (requires compatible(w); throws otherwise).
  History join(const History& w) const;

  /// Delta codec: the command sequence σ with base • σ ≡ *this, or nullopt
  /// when *this does not extend base (no such σ exists). σ is this
  /// history's linearization restricted to commands absent from base, so
  /// apply_suffix on base — or on anything poset-equal to base —
  /// reconstructs a history poset-equal to *this.
  std::optional<std::vector<Command>> suffix_after(const History& base) const;
  /// v • σ in place (appends each command, skipping ones already present).
  void apply_suffix(const std::vector<Command>& suffix);

  std::size_t size() const { return seq_.size(); }
  bool empty() const { return seq_.empty(); }

  /// The stored linearization (consistent with the conflict partial order).
  const std::vector<Command>& sequence() const { return seq_; }

  /// Poset equality.
  friend bool operator==(const History& a, const History& b);
  friend bool operator!=(const History& a, const History& b) { return !(a == b); }

 private:
  bool conflicts(const Command& a, const Command& b) const;
  /// Index of command with c's id, or npos.
  std::size_t index_of(const Command& c) const;

  const ConflictRelation* rel_ = nullptr;
  std::vector<Command> seq_;
};

}  // namespace mcp::cstruct
