#pragma once

#include <optional>
#include <stdexcept>
#include <vector>

#include "cstruct/command.hpp"

namespace mcp::cstruct {

/// The c-struct set that makes Generalized Consensus collapse to classical
/// consensus (Lamport, "Generalized Consensus and Paxos" §4): a c-struct is
/// either ⊥ or a single command, and appending to a non-⊥ c-struct is a
/// no-op.
class SingleValue {
 public:
  SingleValue() = default;
  explicit SingleValue(Command c) : value_(std::move(c)) {}

  bool is_bottom() const { return !value_.has_value(); }
  const std::optional<Command>& value() const { return value_; }

  void append(const Command& c) {
    if (!value_) value_ = c;
  }

  bool contains(const Command& c) const { return value_ && *value_ == c; }

  /// w ⊑ *this: everything extends ⊥; a decided value extends only itself.
  bool extends(const SingleValue& w) const { return w.is_bottom() || *this == w; }

  bool compatible(const SingleValue& w) const {
    return is_bottom() || w.is_bottom() || *this == w;
  }

  SingleValue meet(const SingleValue& w) const {
    return (*this == w) ? *this : SingleValue{};
  }

  SingleValue join(const SingleValue& w) const {
    if (is_bottom()) return w;
    if (w.is_bottom() || *this == w) return *this;
    throw std::logic_error("SingleValue::join of incompatible values");
  }

  std::size_t size() const { return value_ ? 1 : 0; }

  /// Delta codec: empty when equal, the single command when base is ⊥ and
  /// *this is decided, nullopt when *this does not extend base.
  std::optional<std::vector<Command>> suffix_after(const SingleValue& base) const {
    if (!extends(base)) return std::nullopt;
    if (value_ && base.is_bottom()) return std::vector<Command>{*value_};
    return std::vector<Command>{};
  }
  void apply_suffix(const std::vector<Command>& suffix) {
    for (const Command& c : suffix) append(c);
  }

  friend bool operator==(const SingleValue& a, const SingleValue& b) {
    return a.value_ == b.value_;
  }
  friend bool operator!=(const SingleValue& a, const SingleValue& b) { return !(a == b); }

 private:
  std::optional<Command> value_;
};

}  // namespace mcp::cstruct
