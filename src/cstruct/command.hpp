#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace mcp::cstruct {

/// Operation class of a command; used by conflict relations (reads commute
/// with reads on the same key, writes do not).
enum class OpType { kRead, kWrite };

/// A proposed command (element of the paper's set Cmd).
///
/// Identity is the unique `id`; the remaining fields carry the application
/// payload (used by the KV state machine and by conflict relations).
struct Command {
  std::uint64_t id = 0;
  int proposer = -1;
  OpType type = OpType::kWrite;
  std::string key;
  std::string value;

  friend bool operator==(const Command& a, const Command& b) { return a.id == b.id; }
  friend bool operator!=(const Command& a, const Command& b) { return !(a == b); }
  friend bool operator<(const Command& a, const Command& b) { return a.id < b.id; }
};

std::ostream& operator<<(std::ostream& os, const Command& c);

/// Convenience factories used by tests, examples and benches.
Command make_write(std::uint64_t id, std::string key, std::string value,
                   int proposer = -1);
Command make_read(std::uint64_t id, std::string key, int proposer = -1);

/// Stable-storage codec (length-prefixed fields; safe for arbitrary bytes
/// in key/value).
std::string encode(const Command& c);
Command decode_command(const std::string& s);
/// Codec for command sequences (used to persist histories and c-sets).
std::string encode(const std::vector<Command>& cmds);
std::vector<Command> decode_commands(const std::string& s);

/// The conflict relation "≍" of the Generic Broadcast problem (§3.3):
/// commands that conflict must be ordered the same way by all learners.
class ConflictRelation {
 public:
  virtual ~ConflictRelation() = default;
  virtual bool conflicts(const Command& a, const Command& b) const = 0;
  virtual std::string name() const = 0;
};

/// Every pair conflicts: command histories degenerate to totally ordered
/// sequences (total order broadcast; consensus-per-slot semantics).
class AlwaysConflict final : public ConflictRelation {
 public:
  bool conflicts(const Command&, const Command&) const override { return true; }
  std::string name() const override { return "always"; }
};

/// No pair conflicts: command histories degenerate to command sets.
class NeverConflict final : public ConflictRelation {
 public:
  bool conflicts(const Command&, const Command&) const override { return false; }
  std::string name() const override { return "never"; }
};

/// The KV-store relation the paper motivates: operations on different keys
/// commute, and reads on the same key commute with each other.
class KeyConflict final : public ConflictRelation {
 public:
  bool conflicts(const Command& a, const Command& b) const override {
    if (a.key != b.key) return false;
    return a.type == OpType::kWrite || b.type == OpType::kWrite;
  }
  std::string name() const override { return "key"; }
};

}  // namespace mcp::cstruct

template <>
struct std::hash<mcp::cstruct::Command> {
  std::size_t operator()(const mcp::cstruct::Command& c) const noexcept {
    return std::hash<std::uint64_t>{}(c.id);
  }
};
