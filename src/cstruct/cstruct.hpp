#pragma once

#include <concepts>
#include <optional>
#include <stdexcept>
#include <vector>

#include "cstruct/command.hpp"

namespace mcp::cstruct {

/// The c-struct interface of Generalized Consensus (§2.3.1). A model of this
/// concept provides:
///   append(C)        the • operator (in place)
///   contains(C)      membership of a command
///   extends(w)       w ⊑ *this  (the paper's "v extends w")
///   compatible(w)    ∃ common upper bound
///   meet(w)          greatest lower bound ⊓ (always exists, CS3)
///   join(w)          least upper bound ⊔ (requires compatible, CS3)
///   size()           number of commands contained
///   operator==       c-struct equality (poset equality for histories)
///   suffix_after(w)  some σ with w • σ = *this, nullopt unless extends(w)
///   apply_suffix(σ)  v • σ in place (inverse of suffix_after)
///
/// The suffix pair is the delta codec behind the engine's delta-encoded
/// 2a/2b messages: a sender ships σ instead of the whole c-struct and the
/// receiver reconstructs the value from the base it already holds.
///
/// Axioms CS0–CS4 are checked by property tests in tests/cstruct_axioms_test.
template <typename CS>
concept CStructT = std::copyable<CS> && requires(CS v, const CS c, const Command& cmd,
                                                 const std::vector<Command>& seq) {
  { v.append(cmd) };
  { c.contains(cmd) } -> std::convertible_to<bool>;
  { c.extends(c) } -> std::convertible_to<bool>;
  { c.compatible(c) } -> std::convertible_to<bool>;
  { c.meet(c) } -> std::convertible_to<CS>;
  { c.join(c) } -> std::convertible_to<CS>;
  { c.size() } -> std::convertible_to<std::size_t>;
  { c == c } -> std::convertible_to<bool>;
  { c.suffix_after(c) } -> std::convertible_to<std::optional<std::vector<Command>>>;
  { v.apply_suffix(seq) };
};

/// v • σ for a sequence σ of commands.
template <CStructT CS>
CS append_all(CS v, const std::vector<Command>& seq) {
  for (const Command& c : seq) v.append(c);
  return v;
}

/// ⊓ of a non-empty set of c-structs (folds pairwise, as in §3.3.1).
template <CStructT CS>
CS meet_all(const std::vector<CS>& set) {
  if (set.empty()) throw std::invalid_argument("meet_all: empty set");
  CS acc = set.front();
  for (std::size_t i = 1; i < set.size(); ++i) acc = acc.meet(set[i]);
  return acc;
}

/// ⊔ of a non-empty compatible set of c-structs.
template <CStructT CS>
CS join_all(const std::vector<CS>& set) {
  if (set.empty()) throw std::invalid_argument("join_all: empty set");
  CS acc = set.front();
  for (std::size_t i = 1; i < set.size(); ++i) acc = acc.join(set[i]);
  return acc;
}

/// Pairwise compatibility of a set (the paper's "compatible set").
template <CStructT CS>
bool all_compatible(const std::vector<CS>& set) {
  for (std::size_t i = 0; i < set.size(); ++i) {
    for (std::size_t j = i + 1; j < set.size(); ++j) {
      if (!set[i].compatible(set[j])) return false;
    }
  }
  return true;
}

}  // namespace mcp::cstruct
