#include "cstruct/command.hpp"

#include <stdexcept>

namespace mcp::cstruct {

std::ostream& operator<<(std::ostream& os, const Command& c) {
  os << (c.type == OpType::kRead ? "R" : "W") << "#" << c.id;
  if (!c.key.empty()) os << "(" << c.key << ")";
  return os;
}

Command make_write(std::uint64_t id, std::string key, std::string value, int proposer) {
  return Command{id, proposer, OpType::kWrite, std::move(key), std::move(value)};
}

Command make_read(std::uint64_t id, std::string key, int proposer) {
  return Command{id, proposer, OpType::kRead, std::move(key), {}};
}

namespace {

void put_field(std::string& out, const std::string& field) {
  out += std::to_string(field.size());
  out += ':';
  out += field;
}

std::string take_field(const std::string& s, std::size_t& pos) {
  const std::size_t colon = s.find(':', pos);
  if (colon == std::string::npos) throw std::invalid_argument("decode: missing length");
  const std::size_t len = std::stoull(s.substr(pos, colon - pos));
  if (colon + 1 + len > s.size()) throw std::invalid_argument("decode: truncated field");
  std::string field = s.substr(colon + 1, len);
  pos = colon + 1 + len;
  return field;
}

}  // namespace

std::string encode(const Command& c) {
  std::string out;
  put_field(out, std::to_string(c.id));
  put_field(out, std::to_string(c.proposer));
  put_field(out, std::string(1, c.type == OpType::kRead ? 'r' : 'w'));
  put_field(out, c.key);
  put_field(out, c.value);
  return out;
}

Command decode_command(const std::string& s) {
  std::size_t pos = 0;
  Command c;
  c.id = std::stoull(take_field(s, pos));
  c.proposer = std::stoi(take_field(s, pos));
  c.type = take_field(s, pos) == "r" ? OpType::kRead : OpType::kWrite;
  c.key = take_field(s, pos);
  c.value = take_field(s, pos);
  return c;
}

std::string encode(const std::vector<Command>& cmds) {
  std::string out;
  for (const Command& c : cmds) put_field(out, encode(c));
  return out;
}

std::vector<Command> decode_commands(const std::string& s) {
  std::vector<Command> out;
  std::size_t pos = 0;
  while (pos < s.size()) out.push_back(decode_command(take_field(s, pos)));
  return out;
}

}  // namespace mcp::cstruct
