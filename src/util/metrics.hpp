#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mcp::util {

/// Online summary of a stream of samples (latencies, sizes, ...).
class Histogram {
 public:
  void add(double sample);

  std::size_t count() const { return samples_.size(); }
  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;
  /// q in [0, 1]; nearest-rank percentile over the recorded samples.
  double percentile(double q) const;
  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

/// Named counters + histograms shared by a simulation run.
///
/// Counters use hierarchical dotted names ("acceptor.2.disk_writes") so
/// benches can aggregate by prefix.
class Metrics {
 public:
  void incr(const std::string& name, std::int64_t by = 1) { counters_[name] += by; }
  std::int64_t counter(const std::string& name) const;
  /// Sum of all counters whose name starts with `prefix`.
  std::int64_t counter_prefix_sum(const std::string& prefix) const;
  /// All counters with the given prefix, in name order.
  std::vector<std::pair<std::string, std::int64_t>> counters_with_prefix(
      const std::string& prefix) const;

  void sample(const std::string& name, double value) { histograms_[name].add(value); }
  const Histogram& histogram(const std::string& name) const;
  bool has_histogram(const std::string& name) const {
    return histograms_.count(name) != 0;
  }

  void clear() {
    counters_.clear();
    histograms_.clear();
  }

  const std::map<std::string, std::int64_t>& all_counters() const { return counters_; }

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace mcp::util
