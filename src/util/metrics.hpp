#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mcp::util {

/// Online summary of a stream of samples (latencies, sizes, ...) with a
/// bounded footprint: samples land in fixed log-spaced buckets (32
/// sub-buckets per octave) instead of an ever-growing vector, so a
/// histogram fed by a week-long run costs the same memory as one fed by a
/// bench loop. Each bucket keeps a count AND a sum, so the percentile
/// representative is the mean of the samples that actually landed there —
/// exact when a bucket holds one distinct value (the common case for
/// tick-valued sim latencies) and within one bucket width (~2.2%)
/// otherwise. min/max/mean/stddev are tracked exactly as scalars.
class Histogram {
 public:
  void add(double sample);
  /// Fold another histogram into this one (bucket-wise; exact scalars).
  void merge(const Histogram& other);

  std::size_t count() const { return static_cast<std::size_t>(count_); }
  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;
  double sum() const { return sum_; }
  /// q in [0, 1]; nearest-rank percentile. q=0 / q=1 return the exact
  /// min / max; interior ranks resolve to their bucket's sample mean.
  double percentile(double q) const;

 private:
  // Bucket layout: index 0 catches underflow (zero, negatives, tiny
  // values below 2^kMinExp); then kSubBuckets linear sub-buckets per
  // power-of-two exponent in [kMinExp, kMaxExp]. 85 octaves cover
  // ~1e-6 .. 1e19 — microseconds through wire bytes with room to spare.
  static constexpr int kMinExp = -20;
  static constexpr int kMaxExp = 64;
  static constexpr std::size_t kSubBuckets = 32;
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(kMaxExp - kMinExp + 1) * kSubBuckets + 1;
  static std::size_t bucket_index(double v);

  struct Bucket {
    std::uint64_t n = 0;
    double sum = 0.0;
  };
  std::vector<Bucket> buckets_;  // sized kBucketCount on first add
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

/// Named counters + histograms shared by a simulation run or a live node.
///
/// Counters use hierarchical dotted names ("acceptor.2.disk_writes") so
/// benches can aggregate by prefix. All accessors are safe for concurrent
/// callers: on a live node the loop thread, the transport reactor, and an
/// admin scrape all touch the same registry, so both maps sit behind a
/// mutex. Reads return snapshots (by value), never references into the
/// guarded maps.
class Metrics {
 public:
  Metrics() = default;
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  void incr(const std::string& name, std::int64_t by = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    counters_[name] += by;
  }
  std::int64_t counter(const std::string& name) const;
  /// Sum of all counters whose name starts with `prefix`.
  std::int64_t counter_prefix_sum(const std::string& prefix) const;
  /// All counters with the given prefix, in name order.
  std::vector<std::pair<std::string, std::int64_t>> counters_with_prefix(
      const std::string& prefix) const;

  void sample(const std::string& name, double value) {
    std::lock_guard<std::mutex> lock(mu_);
    histograms_[name].add(value);
  }
  /// Snapshot of the named histogram; throws std::out_of_range when absent.
  Histogram histogram(const std::string& name) const;
  bool has_histogram(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    return histograms_.count(name) != 0;
  }
  /// Snapshot of every histogram, in name order (for exposition).
  std::vector<std::pair<std::string, Histogram>> all_histograms() const;

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    counters_.clear();
    histograms_.clear();
  }

  std::map<std::string, std::int64_t> all_counters() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace mcp::util
