#include "util/rng.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcp::util {

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("exponential mean must be > 0");
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_indices: k > n");
  // Partial Fisher–Yates over an index vector; O(n) setup, fine for the
  // small process counts used in simulations.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  std::sort(idx.begin(), idx.end());
  return idx;
}

}  // namespace mcp::util
