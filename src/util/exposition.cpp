#include "util/exposition.hpp"

#include <cctype>
#include <sstream>

namespace mcp::util {

std::string prometheus_name(std::string_view name) {
  std::string out = "mcp_";
  out.reserve(name.size() + 4);
  for (const char c : name) {
    const auto u = static_cast<unsigned char>(c);
    out.push_back(std::isalnum(u) || c == '_' ? c : '_');
  }
  return out;
}

std::string prometheus_exposition(const Metrics& metrics) {
  std::ostringstream out;
  for (const auto& [name, value] : metrics.all_counters()) {
    const std::string p = prometheus_name(name);
    out << "# TYPE " << p << " counter\n" << p << " " << value << "\n";
  }
  for (const auto& [name, h] : metrics.all_histograms()) {
    const std::string p = prometheus_name(name);
    out << "# TYPE " << p << " summary\n";
    if (h.count() > 0) {
      for (const double q : {0.5, 0.9, 0.99}) {
        out << p << "{quantile=\"" << q << "\"} " << h.percentile(q) << "\n";
      }
      out << p << "_min " << h.min() << "\n" << p << "_max " << h.max() << "\n";
    }
    out << p << "_sum " << h.sum() << "\n" << p << "_count " << h.count() << "\n";
  }
  return out.str();
}

}  // namespace mcp::util
