#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace mcp::util {

/// Deterministic pseudo-random source used throughout the simulator.
///
/// Every run of a simulation is fully determined by the seed passed to its
/// Rng, so any failure found by a randomized test can be replayed exactly.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean);

  /// Pick a uniformly random element index of a container of size n (n > 0).
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Pick a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[index(v.size())];
  }

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// Choose k distinct indices from [0, n) uniformly at random.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Derive an independent child generator (for sharding randomness).
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mcp::util
