#include "util/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace mcp::util {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Stage name for the slice ENDING at point `p` (the time since the
/// previous span point is attributed to the work that produced `p`).
const char* stage_ending_at(TracePoint p) {
  switch (p) {
    case TracePoint::kBatchFlush: return "batch_wait";
    case TracePoint::kCoord2a: return "ship_2a";
    case TracePoint::kAcceptorVote: return "vote_2b";
    case TracePoint::kLearned: return "quorum_wait";
    case TracePoint::kApplied: return "apply";
    case TracePoint::kReplySent: return "reply";
    default: return nullptr;
  }
}

}  // namespace

const char* trace_point_name(TracePoint p) {
  switch (p) {
    case TracePoint::kClientRecv: return "client_recv";
    case TracePoint::kBatchFlush: return "batch_flush";
    case TracePoint::kCoord2a: return "coord_2a";
    case TracePoint::kAcceptorVote: return "acceptor_vote";
    case TracePoint::kLearned: return "learned";
    case TracePoint::kApplied: return "applied";
    case TracePoint::kReplySent: return "reply_sent";
    case TracePoint::kSlowOp: return "slow_op";
  }
  return "unknown";
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : slots_(round_up_pow2(capacity < 2 ? 2 : capacity)) {
  mask_ = slots_.size() - 1;
}

void TraceRecorder::record(const TraceEvent& e) {
  if (!enabled()) return;
  const std::uint64_t claim = head_.fetch_add(1, std::memory_order_acq_rel);
  Slot& s = slots_[claim & mask_];
  // Invalidate first so a reader never pairs the old ticket with new
  // fields, then publish the new ticket after the fields are in place.
  s.ticket.store(0, std::memory_order_release);
  s.trace_id.store(e.trace_id, std::memory_order_relaxed);
  s.ts_us.store(e.ts_us, std::memory_order_relaxed);
  const std::uint64_t meta =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.node)) << 32) |
      (static_cast<std::uint64_t>(e.group & 0xFFFFFFu) << 8) |
      static_cast<std::uint64_t>(e.point);
  s.meta.store(meta, std::memory_order_relaxed);
  s.arg.store(e.arg, std::memory_order_relaxed);
  s.ticket.store(claim + 1, std::memory_order_release);
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t cap = slots_.size();
  const std::uint64_t start = head > cap ? head - cap : 0;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(head - start));
  for (std::uint64_t i = start; i < head; ++i) {
    const Slot& s = slots_[i & mask_];
    if (s.ticket.load(std::memory_order_acquire) != i + 1) continue;
    TraceEvent e;
    e.trace_id = s.trace_id.load(std::memory_order_relaxed);
    e.ts_us = s.ts_us.load(std::memory_order_relaxed);
    const std::uint64_t meta = s.meta.load(std::memory_order_relaxed);
    e.arg = s.arg.load(std::memory_order_relaxed);
    // A writer may have lapped us mid-copy; the ticket re-check rejects
    // the (atomically read, but mixed-generation) fields in that case.
    if (s.ticket.load(std::memory_order_acquire) != i + 1) continue;
    e.node = static_cast<std::int32_t>(meta >> 32);
    e.group = static_cast<std::uint32_t>((meta >> 8) & 0xFFFFFFu);
    e.point = static_cast<TracePoint>(meta & 0xFFu);
    out.push_back(e);
  }
  return out;
}

std::string TraceRecorder::perfetto_json(const std::vector<TraceEvent>& events) {
  // Each sampled trace gets its own thread track under one "pipeline"
  // process, so the receive -> reply slices of a command tile one row
  // with no gaps; node/group ride along as args.
  std::vector<TraceEvent> sorted = events;
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              return static_cast<int>(a.point) < static_cast<int>(b.point);
            });

  std::ostringstream out;
  out << "{\"traceEvents\":[\n";
  out << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"mcpaxos pipeline\"}}";

  std::map<std::uint64_t, int> tids;  // trace id -> compact thread id
  auto tid_of = [&](std::uint64_t trace_id) {
    auto it = tids.find(trace_id);
    if (it != tids.end()) return it->second;
    const int tid = static_cast<int>(tids.size()) + 1;
    tids.emplace(trace_id, tid);
    char name[64];
    std::snprintf(name, sizeof(name), "trace %llx",
                  static_cast<unsigned long long>(trace_id));
    out << ",\n{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\"" << name << "\"}}";
    return tid;
  };

  auto emit_common = [&](const TraceEvent& e, int tid) {
    out << "\"pid\":1,\"tid\":" << tid << ",\"args\":{\"node\":" << e.node
        << ",\"group\":" << e.group << ",\"arg\":" << e.arg << "}}";
  };

  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const TraceEvent& e = sorted[i];
    const int tid = e.trace_id == 0 ? 0 : tid_of(e.trace_id);
    // Slice from the previous span point of the same trace to this one.
    if (e.trace_id != 0 && i > 0 && sorted[i - 1].trace_id == e.trace_id) {
      if (const char* stage = stage_ending_at(e.point)) {
        const TraceEvent& prev = sorted[i - 1];
        const std::uint64_t dur = e.ts_us >= prev.ts_us ? e.ts_us - prev.ts_us : 0;
        out << ",\n{\"ph\":\"X\",\"name\":\"" << stage
            << "\",\"ts\":" << prev.ts_us << ",\"dur\":" << dur << ",";
        emit_common(e, tid);
      }
    }
    out << ",\n{\"ph\":\"i\",\"s\":\"t\",\"name\":\"" << trace_point_name(e.point)
        << "\",\"ts\":" << e.ts_us << ",";
    emit_common(e, tid);
  }
  out << "\n]}\n";
  return out.str();
}

}  // namespace mcp::util
