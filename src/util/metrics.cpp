#include "util/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mcp::util {

std::size_t Histogram::bucket_index(double v) {
  if (!(v > 0.0) || !std::isfinite(v)) return 0;
  int exp = 0;
  const double m = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  if (exp < kMinExp) return 0;
  if (exp > kMaxExp) exp = kMaxExp;
  const auto sub = static_cast<std::size_t>((m - 0.5) * 2.0 *
                                            static_cast<double>(kSubBuckets));
  return 1 + static_cast<std::size_t>(exp - kMinExp) * kSubBuckets +
         std::min(sub, kSubBuckets - 1);
}

void Histogram::add(double sample) {
  if (buckets_.empty()) buckets_.resize(kBucketCount);
  Bucket& b = buckets_[bucket_index(sample)];
  b.n += 1;
  b.sum += sample;
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  count_ += 1;
  sum_ += sample;
  sum_sq_ += sample * sample;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (buckets_.empty()) buckets_.resize(kBucketCount);
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    buckets_[i].n += other.buckets_[i].n;
    buckets_[i].sum += other.buckets_[i].sum;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

double Histogram::min() const {
  if (count_ == 0) throw std::logic_error("Histogram::min on empty histogram");
  return min_;
}

double Histogram::max() const {
  if (count_ == 0) throw std::logic_error("Histogram::max on empty histogram");
  return max_;
}

double Histogram::mean() const {
  if (count_ == 0) throw std::logic_error("Histogram::mean on empty histogram");
  return sum_ / static_cast<double>(count_);
}

double Histogram::stddev() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double m = sum_ / n;
  const double var = std::max(0.0, sum_sq_ / n - m * m);
  return std::sqrt(var);
}

double Histogram::percentile(double q) const {
  if (count_ == 0) throw std::logic_error("Histogram::percentile on empty histogram");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile: q out of [0,1]");
  const auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1) + 0.5);
  if (rank == 0) return min_;
  if (rank >= count_ - 1) return max_;
  std::uint64_t seen = 0;
  for (const Bucket& b : buckets_) {
    seen += b.n;
    if (seen > rank) {
      const double rep = b.sum / static_cast<double>(b.n);
      return std::clamp(rep, min_, max_);
    }
  }
  return max_;  // unreachable: ranks are < count_
}

std::int64_t Metrics::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::int64_t Metrics::counter_prefix_sum(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t total = 0;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    total += it->second;
  }
  return total;
}

std::vector<std::pair<std::string, std::int64_t>> Metrics::counters_with_prefix(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(it->first, it->second);
  }
  return out;
}

Histogram Metrics::histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    throw std::out_of_range("no histogram named '" + name + "'");
  }
  return it->second;
}

std::vector<std::pair<std::string, Histogram>> Metrics::all_histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Histogram>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h);
  return out;
}

}  // namespace mcp::util
