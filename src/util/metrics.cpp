#include "util/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mcp::util {

void Histogram::add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
  sum_ += sample;
  sum_sq_ += sample * sample;
}

double Histogram::min() const {
  if (samples_.empty()) throw std::logic_error("Histogram::min on empty histogram");
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
  if (samples_.empty()) throw std::logic_error("Histogram::max on empty histogram");
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::mean() const {
  if (samples_.empty()) throw std::logic_error("Histogram::mean on empty histogram");
  return sum_ / static_cast<double>(samples_.size());
}

double Histogram::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double n = static_cast<double>(samples_.size());
  const double m = sum_ / n;
  const double var = std::max(0.0, sum_sq_ / n - m * m);
  return std::sqrt(var);
}

double Histogram::percentile(double q) const {
  if (samples_.empty()) throw std::logic_error("Histogram::percentile on empty histogram");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile: q out of [0,1]");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[std::min(rank, samples_.size() - 1)];
}

std::int64_t Metrics::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::int64_t Metrics::counter_prefix_sum(const std::string& prefix) const {
  std::int64_t total = 0;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    total += it->second;
  }
  return total;
}

std::vector<std::pair<std::string, std::int64_t>> Metrics::counters_with_prefix(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, std::int64_t>> out;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(it->first, it->second);
  }
  return out;
}

const Histogram& Metrics::histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    throw std::out_of_range("no histogram named '" + name + "'");
  }
  return it->second;
}

}  // namespace mcp::util
