#pragma once

#include <cstdint>
#include <string>

namespace mcp::util {

/// "prefix" + std::to_string(n), spelled as append onto an lvalue: GCC
/// 12/13 inline operator+(const char*, std::string&&) and emit -Wrestrict
/// / -Wmaybe-uninitialized false positives from inside libstdc++ (GCC PR
/// 105329). Use this wherever a literal-plus-number key is built in code
/// that must stay clean under -Werror.
inline std::string concat(const char* prefix, std::uint64_t n) {
  std::string out(prefix);
  out += std::to_string(n);
  return out;
}

}  // namespace mcp::util
