#pragma once

// Protocol flight-recorder vocabulary: the event record every node journals
// and the sink interface the hosts expose. Lives in util (below paxos/sim)
// so `sim::Host` can hold a sink pointer without a protocol dependency —
// ballots travel as their raw fields and are reassembled by the offline
// auditor (audit::inspect).

#include <cstdint>
#include <string>

namespace mcp::util {

/// What happened. The set mirrors the protocol surface the paper's safety
/// argument ranges over (ballot/round transitions, 2a/2b, learning,
/// application) plus the operational context an incident reader needs
/// (membership, incarnations, client batches).
enum class JournalKind : std::uint8_t {
  /// A coordinator started / joined a round (ballot = the new round).
  kRoundStart = 1,
  /// An acceptor joined a higher round (ballot = new rnd).
  kJoin = 2,
  /// A coordinator sent a phase-2a (ballot = crnd, a = |cval|).
  kPhase2a = 3,
  /// An acceptor cast a 2b vote (ballot = vrnd, a = |vval|, payload =
  /// cstruct::encode(vval)). The payload is the auditable ballot-array
  /// entry; it re-anchors the delta chain below, so the offline replay
  /// recovers even when older segments are lost.
  kPhase2b = 4,
  /// A learner extended its learned prefix (a = new learned size, payload =
  /// cstruct::encode of only the newly learned commands).
  kLearn = 5,
  /// A replica applied one command to the state machine (a = command id).
  kApply = 6,
  /// A frontend flushed a client batch into consensus (a = batch size,
  /// b = first command id).
  kBatch = 7,
  /// A node adopted a process for a group (a = process count, b =
  /// incarnation; payload = role label).
  kMembership = 8,
  /// A process recovered with a bumped incarnation (b = new incarnation).
  kIncarnation = 9,
  /// A coordinator's leader hint changed (a = hinted node).
  kLeaderHint = 10,
  /// A 2b vote journaled as the suffix since this acceptor's previous 2b
  /// of the same round (ballot = vrnd, a = |vval| after the suffix,
  /// payload = encoded suffix commands). vval only grows within a round,
  /// so journaling the full value per vote would cost O(history) each —
  /// the auditor re-chains deltas onto the last full kPhase2b instead.
  kPhase2bDelta = 11,
};

const char* journal_kind_name(JournalKind kind);

/// One journal entry. `ts_us`/`node` are stamped by the sink (wall-clock
/// microseconds, so per-node journals merge into one cluster timeline);
/// everything else is filled at the emit site. Ballot fields are the raw
/// ⟨count, coord, coord_inc, type⟩ of paxos::Ballot.
struct JournalRecord {
  JournalKind kind = JournalKind::kRoundStart;
  std::uint64_t ts_us = 0;
  std::int64_t node = -1;
  std::uint32_t group = 0;
  std::int64_t ballot_count = 0;
  std::int64_t ballot_coord = -1;
  std::int64_t ballot_inc = 0;
  std::uint8_t ballot_type = 0;
  /// Kind-specific scalars (see JournalKind comments).
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  /// Kind-specific bytes (encoded c-structs, role labels).
  std::string payload;
};

/// Where journal records go. The production implementation is
/// storage::FlightRecorder (rotated, checksummed segment files); tests may
/// substitute an in-memory sink. append() must be cheap — it runs on the
/// node event loop — and must stamp ts_us/node.
class JournalSink {
 public:
  virtual ~JournalSink() = default;
  virtual void append(JournalRecord rec) = 0;
  /// Make everything appended so far durable (fsync). Safe cross-thread.
  virtual void flush() = 0;
};

inline const char* journal_kind_name(JournalKind kind) {
  switch (kind) {
    case JournalKind::kRoundStart: return "round_start";
    case JournalKind::kJoin: return "join";
    case JournalKind::kPhase2a: return "2a";
    case JournalKind::kPhase2b: return "2b";
    case JournalKind::kLearn: return "learn";
    case JournalKind::kApply: return "apply";
    case JournalKind::kBatch: return "batch";
    case JournalKind::kMembership: return "membership";
    case JournalKind::kIncarnation: return "incarnation";
    case JournalKind::kLeaderHint: return "leader_hint";
    case JournalKind::kPhase2bDelta: return "2b_delta";
  }
  return "unknown";
}

}  // namespace mcp::util
